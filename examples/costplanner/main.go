// Costplanner: plan an experiment under a budget, the way the paper's
// §4.2 suggests — estimate per-run cost from a scaling test, add a buffer
// for the unexpected, and choose between static clusters and auto-scaling.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

func main() {
	const budgetUSD = 5000.0

	spec, err := apps.EnvByKey("aws-eks-cpu")
	if err != nil {
		log.Fatal(err)
	}
	amg := apps.NewAMG2023()
	rng := sim.NewStream(3, "costplanner")

	// 1. Benchmark the trade-off between node cost and execution time.
	fmt.Printf("AMG2023 on %s ($%.2f/node-hr)\n", spec.Label, spec.Instance.HourlyUSD)
	fmt.Printf("%-8s %-12s %-12s %s\n", "nodes", "wall", "cost/run", "runs in budget")
	var phases []cloud.WorkloadPhase
	for _, nodes := range spec.Scales {
		r := amg.Run(spec.Env, nodes, rng)
		costPerRun := float64(nodes) * r.Wall.Hours() * spec.Instance.HourlyUSD
		fmt.Printf("%-8d %-12v $%-11.2f %.0f\n",
			nodes, r.Wall.Round(time.Second), costPerRun, budgetUSD/costPerRun)
		phases = append(phases, cloud.WorkloadPhase{
			Width: nodes, Busy: 5 * r.Wall, Idle: 30 * time.Minute,
		})
	}

	// 2. Compare provisioning strategies for the full sweep (§4.1:
	// auto-scaling is for infrequent batches; well-defined experiments
	// should bring up static clusters of exactly the sizes needed).
	cfg := cloud.AutoscaleConfig{HeadNodes: 1, ScaleUpDelay: 8 * time.Minute, ScaleDownLag: 5 * time.Minute}
	static := cloud.StaticClusterCost(spec.Instance, phases)
	auto := cloud.AutoscaleCost(spec.Instance, cfg, phases)
	exact := cloud.ExactStaticCost(spec.Instance, phases)
	fmt.Printf("\nprovisioning strategies for the sweep (5 iterations/size):\n")
	fmt.Printf("  one static max-size cluster: $%.2f\n", static)
	fmt.Printf("  auto-scaling head+workers:   $%.2f\n", auto)
	fmt.Printf("  exact per-size clusters:     $%.2f  <- paper's suggestion\n", exact)

	// 3. Budget with a buffer for the unexpected (the study hit a $2.2k
	// provisioning stall on EKS alone).
	const buffer = 1.25
	fmt.Printf("\nplan: $%.2f + %d%% buffer = $%.2f against a $%.0f budget\n",
		exact, int((buffer-1)*100), exact*buffer, budgetUSD)
	if exact*buffer > budgetUSD {
		fmt.Println("over budget: drop the largest size or reduce iterations")
	} else {
		fmt.Println("fits: proceed, and pause between sizes to let cost reporting catch up")
	}
}
