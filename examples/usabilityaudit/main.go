// Usabilityaudit: derive a qualitative usability assessment from a study
// trace — the workflow behind the paper's Table 3.
//
// Instead of running the full study, this example drives the substrates
// directly for a single environment (AKS GPU), letting the trace record
// the friction: the custom InfiniBand daemonset, the Azure container
// bases, the defective 7/8-GPU node, and the Flux Operator shell-ins.
// The scorer then folds the trace into effort scores.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/k8s"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

func main() {
	const env = "azure-aks-gpu"
	s := sim.New(11)
	logbook := trace.NewLog()
	meter := cloud.NewMeter(s, logbook)
	quota := cloud.NewQuotaManager(s, logbook)
	placement := cloud.NewPlacementService(s, logbook)
	prov := cloud.NewProvisioner(s, logbook, meter, quota, placement)

	// Resources: ask for a spare node — the study anticipated the
	// recurring 7/8-GPU node and requested quota for 33.
	quota.Request(cloud.Azure, cloud.GPU, 33)

	// Containers: the Azure bases need UCX and proprietary bits.
	builder := containers.NewBuilder(s, logbook)
	for _, app := range []string{"amg2023", "lammps", "osu"} {
		if _, err := builder.Build(containers.CorrectSpec(app, cloud.Azure, cloud.GPU)); err != nil {
			log.Fatal(err)
		}
	}

	// Cluster: 32 × ND40rs v2, then the custom daemonset, then Flux.
	cat := cloud.NewCatalog()
	it, err := cat.Lookup(cloud.Azure, "ND40rs v2")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := prov.Provision(cloud.ProvisionRequest{
		Env: env, Type: it, Nodes: 32, Kubernetes: true, AllowSpareNode: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	kc := k8s.NewCluster(s, logbook, env, k8s.AKS, cluster)
	kc.Apply(k8s.AKSInfiniBandInstall)
	kc.Apply(k8s.NVIDIADevicePlugin)
	if _, err := kc.DeployFluxOperator(); err != nil {
		log.Fatal(err)
	}

	// Score the trace.
	a := usability.NewScorer().Score(logbook, env)
	fmt.Print(usability.Table([]usability.Assessment{a}))
	fmt.Println("\nevidence:")
	for _, cat := range usability.Categories {
		for _, e := range a.Evidence[cat] {
			fmt.Printf("  %-20s %-10s %s\n", cat, e.Severity, e.Msg)
		}
	}
	fmt.Printf("\nspend so far: $%.2f (reported: $%.2f — mind the billing lag)\n",
		meter.Spend(cloud.Azure), meter.ReportedSpend(cloud.Azure))
}
