// Scalingstudy: compare how one application scales across fabrics.
//
// The paper's core performance question is "which environments can strong-
// scale tightly coupled applications?" This example sweeps LAMMPS and
// Kripke across three CPU environments with very different interconnects
// (EFA, InfiniBand HDR, Google premium networking) and prints speedups and
// parallel efficiencies — reproducing the reasoning behind Figures 1 and 4.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/sim"
)

func main() {
	envKeys := []string{"aws-parallelcluster-cpu", "azure-cyclecloud-cpu", "google-gke-cpu"}
	scales := []int{32, 64, 128, 256}

	for _, model := range []apps.Model{apps.NewLAMMPS(), apps.NewKripke()} {
		fmt.Printf("== %s (%s; higher-is-better=%v) ==\n", model.Name(), model.Unit(), model.HigherIsBetter())
		for _, key := range envKeys {
			spec, err := apps.EnvByKey(key)
			if err != nil {
				log.Fatal(err)
			}
			rng := sim.NewStream(7, "scalingstudy/"+key+"/"+model.Name())

			var series metrics.Series
			series.Label = key
			for _, nodes := range scales {
				var samples []float64
				for i := 0; i < 5; i++ {
					r := model.Run(spec.Env, nodes, rng)
					if r.Err != nil {
						continue
					}
					samples = append(samples, r.FOM)
				}
				if len(samples) > 0 {
					series.Add(float64(nodes), metrics.Summarize(samples))
				}
			}

			fmt.Printf("%-26s", key)
			for _, nodes := range scales {
				if y, ok := series.At(float64(nodes)); ok {
					fmt.Printf(" %12.4g", y.Mean)
				} else {
					fmt.Printf(" %12s", "–")
				}
			}
			if sp, err := series.Speedup(32, 256); err == nil {
				if !model.HigherIsBetter() {
					sp = 1 / sp
				}
				eff, _ := series.ParallelEfficiency(32, 256)
				if !model.HigherIsBetter() {
					eff = sp / 8
				}
				fmt.Printf("   speedup(32→256)=%.2f eff=%.0f%%", sp, eff*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
