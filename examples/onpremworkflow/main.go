// Onpremworkflow: the full on-premises path of the study on cluster A —
// concretize and install AMG2023 with Spack (minding the hypre integer
// flags), load the module, submit the scaling sweep through Slurm with a
// wall limit, and archive every run's output to an OCI registry via ORAS.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/oras"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/slurm"
	"cloudhpc/internal/spack"
	"cloudhpc/internal/trace"
)

func main() {
	s := sim.New(5)
	logbook := trace.NewLog()

	// 1. Build: spack install amg2023 ^hypre +bigint (the CPU-safe spec —
	// without +bigint the large systems segfault, as the study found).
	repo := spack.StudyRepo()
	builder := spack.NewBuilder(s, logbook, "onprem-a-cpu")

	wrong, _ := spack.Parse("amg2023")
	cWrong, _ := repo.Concretize(wrong)
	if _, defect, _ := builder.Install(cWrong); defect != "" {
		fmt.Printf("naive build rejected: %s\n", defect)
	}
	right, _ := spack.Parse("amg2023 ^hypre +bigint ^openmpi@4.1.2")
	cRight, err := repo.Concretize(right)
	if err != nil {
		log.Fatal(err)
	}
	order, defect, _ := builder.Install(cRight)
	fmt.Printf("spack installed %d new packages; defect=%q\n", len(order), defect)

	loaded, err := builder.ModuleLoad(cRight.Hash())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module load pulls in: %v\n\n", loaded)

	// 2. Run: the 32–256 node weak-scaling sweep through Slurm on A.
	spec, err := apps.EnvByKey("onprem-a-cpu")
	if err != nil {
		log.Fatal(err)
	}
	amg := apps.NewAMG2023()
	ctl := slurm.NewController(s, logbook, spec.Key, slurm.Partition{Name: "pbatch", Nodes: 1544})
	rng := s.Stream("onpremworkflow")

	reg := oras.NewRegistry()
	type rowT struct {
		nodes int
		fom   float64
		state slurm.JobState
	}
	var rows []rowT
	for _, nodes := range spec.Scales {
		r := amg.Run(spec.Env, nodes, rng)
		script := fmt.Sprintf(`#SBATCH --job-name=amg-%d
#SBATCH --nodes=%d
#SBATCH --ntasks-per-node=112
#SBATCH --time=00:20:00
#SBATCH --partition=pbatch`, nodes, nodes)
		nodesCopy, fom := nodes, r.FOM
		if _, err := ctl.Sbatch(script, r.Wall, func(j *slurm.Job) {
			rows = append(rows, rowT{nodesCopy, fom, j.State})
			// 3. Archive: push the run output via ORAS.
			out := fmt.Sprintf("FOM %.4g nnz_AP/s\nnodes %d\nstate %s\n", fom, nodesCopy, j.State)
			if _, err := reg.Push(
				fmt.Sprintf("results/onprem-a-cpu/amg2023-%d", nodesCopy),
				"application/vnd.cloudhpc.run.v1",
				map[string][]byte{"amg.out": []byte(out)},
				map[string]string{"nodes": fmt.Sprint(nodesCopy)},
			); err != nil {
				log.Fatal(err)
			}
		}); err != nil {
			log.Fatal(err)
		}
	}
	s.Run()

	fmt.Printf("%-8s %-14s %s\n", "nodes", "FOM (nnz/s)", "state")
	for _, row := range rows {
		fmt.Printf("%-8d %-14.4g %s\n", row.nodes, row.fom, row.state)
	}
	fmt.Printf("\narchived artifacts: %v\n", reg.Tags())
	fmt.Printf("simulated wall clock (incl. builds + %v queue waits): %v\n",
		time.Duration(20)*time.Minute, s.Now().Round(time.Minute))
}
