// Quickstart: evaluate one application on one cloud environment.
//
// This is the smallest useful cloudhpc program: look up a study
// environment, run LAMMPS across the study's scales, and print the figure
// of merit — no provisioning, billing, or scheduling involved.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/sim"
)

func main() {
	// Pick an environment from the study matrix (paper Table 1).
	spec, err := apps.EnvByKey("google-gke-cpu")
	if err != nil {
		log.Fatal(err)
	}

	// Pick an application model (paper §2.8).
	lammps := apps.NewLAMMPS()
	rng := sim.NewStream(42, "quickstart")

	fmt.Printf("LAMMPS ReaxFF on %s (%d cores/node, %s)\n",
		spec.Label, spec.Instance.Cores, spec.Instance.Fabric)
	fmt.Printf("%-8s %-16s %s\n", "nodes", lammps.Unit(), "wall")
	for _, nodes := range spec.Scales {
		r := lammps.Run(spec.Env, nodes, rng)
		if r.Err != nil {
			fmt.Printf("%-8d failed: %v\n", nodes, r.Err)
			continue
		}
		fmt.Printf("%-8d %-16.2f %v\n", nodes, r.FOM, r.Wall.Round(1e9))
	}

	// The same call against the on-premises cluster shows the gap the
	// paper reports in Figure 4.
	onprem, err := apps.EnvByKey("onprem-a-cpu")
	if err != nil {
		log.Fatal(err)
	}
	r := lammps.Run(onprem.Env, 256, rng)
	fmt.Printf("\non-premises A at 256 nodes: %.2f %s\n", r.FOM, r.Unit)
}
