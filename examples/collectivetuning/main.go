// Collectivetuning: the anatomy of the AWS allreduce spike (paper Fig. 5
// and §3.3) — sweep the message sizes through the buggy and the fixed
// OpenMPI tuning tables on an EFA-shaped fabric, and show why the same
// tables are harmless on InfiniBand.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/mpi"
)

func main() {
	const ranks = 256
	efa := mpi.NetParams{AlphaUs: 16, BytesPerSec: 11e9}   // EFA Gen1.5
	ib := mpi.NetParams{AlphaUs: 1.8, BytesPerSec: 23.5e9} // InfiniBand HDR

	fmt.Printf("MPI_Allreduce across %d ranks (µs)\n\n", ranks)
	fmt.Printf("%-10s %-14s %-14s %-14s\n", "bytes", "EFA buggy", "EFA fixed", "IB buggy")
	for bytes := 1024.0; bytes <= 1<<20; bytes *= 4 {
		buggy, err := mpi.TableCost(mpi.BuggyAWSTable(), ranks, bytes, efa)
		if err != nil {
			log.Fatal(err)
		}
		fixed, err := mpi.TableCost(mpi.FixedAWSTable(), ranks, bytes, efa)
		if err != nil {
			log.Fatal(err)
		}
		ibBuggy, err := mpi.TableCost(mpi.BuggyAWSTable(), ranks, bytes, ib)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if buggy > 3*fixed {
			marker = "  <- the Figure 5 spike"
		}
		fmt.Printf("%-10.0f %-14.0f %-14.0f %-14.0f%s\n", bytes, buggy, fixed, ibBuggy, marker)
	}

	fmt.Println("\nThe defective table picks a segmented binomial tree in the")
	fmt.Println("16–64 KiB band. Each 4 KiB segment pays full per-message latency:")
	fmt.Println("harmless at InfiniBand's 1.8 µs, catastrophic at EFA's 16 µs.")
	fmt.Println("AWS's OpenMPI change (paper ref. [82]) amounts to the fixed table.")
}
