// Elasticensemble: size a cluster for an ensemble of MPI jobs.
//
// The paper's §4.1 recommends auto-scaling only for infrequent batches
// and static clusters of exact sizes for well-defined experiments (and
// cites workload-driven elasticity for MPI ensembles as the emerging
// alternative). This example runs the same 40-job LAMMPS ensemble through
// a simulated Flux scheduler at several fixed cluster widths, then prices
// the three provisioning strategies for the winning width.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sched"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func main() {
	spec, err := apps.EnvByKey("aws-eks-cpu")
	if err != nil {
		log.Fatal(err)
	}
	lammps := apps.NewLAMMPS()

	// The ensemble: 40 independent 8-node LAMMPS members.
	const members, width = 40, 8

	fmt.Printf("ensemble: %d × %d-node LAMMPS members on %s ($%.2f/node-hr)\n\n",
		members, width, spec.Label, spec.Instance.HourlyUSD)
	fmt.Printf("%-14s %-12s %-12s %-10s\n", "cluster nodes", "makespan", "node-hours", "cost")

	type outcome struct {
		nodes    int
		makespan time.Duration
		cost     float64
	}
	var best outcome
	for _, clusterNodes := range []int{8, 16, 32, 64, 128} {
		s := sim.New(42)
		logbook := trace.NewLog()
		flux := sched.NewFlux(s, logbook, spec.Key, clusterNodes)
		rng := s.Stream("ensemble")

		done := 0
		for i := 0; i < members; i++ {
			r := lammps.Run(spec.Env, width, rng)
			if err := flux.Submit(&sched.Job{
				Name: fmt.Sprintf("member-%02d", i), Nodes: width,
				Duration: r.Wall, Hookup: 12 * time.Second,
				OnFinish: func(*sched.Job) { done++ },
			}); err != nil {
				log.Fatal(err)
			}
		}
		s.Run()
		if done != members {
			log.Fatalf("only %d/%d members finished", done, members)
		}
		makespan := s.Now()
		cost := float64(clusterNodes) * makespan.Hours() * spec.Instance.HourlyUSD
		fmt.Printf("%-14d %-12v %-12.1f $%.2f\n",
			clusterNodes, makespan.Round(time.Second), float64(clusterNodes)*makespan.Hours(), cost)
		if best.nodes == 0 || cost < best.cost {
			best = outcome{clusterNodes, makespan, cost}
		}
	}

	fmt.Printf("\ncheapest width: %d nodes ($%.2f, makespan %v)\n",
		best.nodes, best.cost, best.makespan.Round(time.Second))

	// Price the §4.1 strategies at the cheapest width.
	phases := []cloud.WorkloadPhase{{Width: best.nodes, Busy: best.makespan, Idle: 8 * time.Hour}}
	cfg := cloud.AutoscaleConfig{HeadNodes: 1, ScaleUpDelay: 8 * time.Minute, ScaleDownLag: 5 * time.Minute}
	fmt.Printf("\nif this ensemble repeats daily with ~8h idle between batches:\n")
	fmt.Printf("  held static cluster: $%.2f/batch\n", cloud.StaticClusterCost(spec.Instance, phases))
	fmt.Printf("  auto-scaled workers: $%.2f/batch  <- §4.1: right for infrequent batches\n",
		cloud.AutoscaleCost(spec.Instance, cfg, phases))
	fmt.Printf("  exact static + teardown: $%.2f/batch <- right for well-defined experiments\n",
		cloud.ExactStaticCost(spec.Instance, phases))
}
