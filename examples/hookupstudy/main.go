// Hookupstudy: measure hookup time the way the paper did (§3.2) —
// subtract the application's self-reported wall time from the workload
// manager's wrapper time, per environment and scale.
//
// The study discovered that Azure's InfiniBand bring-up inside the job
// produces hookups that *fall* with scale on GPU but *double per size* on
// AKS CPU — this example reproduces the full matrix from job records.
package main

import (
	"fmt"
	"log"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sched"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func main() {
	envs, err := apps.StudyEnvironments()
	if err != nil {
		log.Fatal(err)
	}
	lammps := apps.NewLAMMPS()
	hookup := network.NewHookupModel()
	s := sim.New(7)
	logbook := trace.NewLog()

	fmt.Printf("%-28s %-8s %-12s %-12s %-12s\n", "environment", "nodes", "wrapper", "app wall", "derived hookup")
	for _, spec := range apps.Deployable(envs) {
		for _, nodes := range spec.Scales {
			if nodes > apps.MaxNodesFor(spec) {
				continue
			}
			rng := s.Stream("hookup/" + spec.Key)
			r := lammps.Run(spec.Env, nodes, rng)
			if r.Err != nil {
				continue
			}
			h := hookup.Hookup(spec.Provider, spec.Acc, spec.Kubernetes, nodes, rng)

			// Run it through a scheduler to get the wrapper time the way
			// the study read it off the workload manager.
			flux := sched.NewFlux(s, logbook, spec.Key, nodes)
			var wrapper time.Duration
			flux.Submit(&sched.Job{Name: "lammps", Nodes: nodes, Duration: r.Wall, Hookup: h,
				OnFinish: func(j *sched.Job) { wrapper = j.FinishedAt - j.StartedAt }})
			s.Run()

			derived := wrapper - r.Wall // the paper's subtraction
			flag := ""
			if spec.Provider == cloud.Azure && derived > 40*time.Second {
				flag = "  <- Azure InfiniBand bring-up"
			}
			fmt.Printf("%-28s %-8d %-12v %-12v %-12v%s\n",
				spec.Key, nodes, wrapper.Round(100*time.Millisecond),
				r.Wall.Round(100*time.Millisecond), derived.Round(100*time.Millisecond), flag)
		}
	}
}
