// Fullstudy: run the entire cross-cloud study once via a declarative
// study spec and slice the cached dataset three ways.
//
// core.CachedRunSpec memoizes one study execution per canonical spec
// hash for the life of the process, so asking for a dataset repeatedly —
// as this example, the root benchmarks, and the cmd/ tools all do — pays
// for the simulation once. Execution follows the spec's partitioning
// policy (here: env×app granularity, so the worker pool scales past the
// environment count); the dataset is byte-identical for any granularity
// and worker count, so a cached result is interchangeable with a fresh
// one.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
)

func main() {
	// The default spec is the paper's full matrix. Specs are plain text —
	// this one could equally be loaded from a file with core.LoadSpec.
	spec, err := core.ParseSpec(`
seed 2025
envs *            # the full Table 1 matrix
apps *            # all 11 proxy applications
iterations 5
granularity env-app
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.CachedRunSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Slice 1: dataset size per environment.
	fmt.Printf("%d runs across %d environments\n\n", len(res.Runs), len(res.Hookups))

	// Slice 2: the cheapest and dearest AMG2023 environments (Table 4).
	rows := res.Table4()
	fmt.Printf("AMG2023 cost range: $%.2f (%s) to $%.2f (%s)\n\n",
		rows[0].TotalUSD, rows[0].Label, rows[len(rows)-1].TotalUSD, rows[len(rows)-1].Label)

	// Slice 3: per-cloud spend (§3.4). The default spec at the same seed
	// hashes identically to the spec above (granularity never enters the
	// hash), so this second call returns the identical cached dataset
	// without re-running.
	again, err := core.CachedRunSpec(core.DefaultSpec(2025))
	if err != nil {
		log.Fatal(err)
	}
	costs := again.StudyCosts()
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		fmt.Printf("%-8s $%.2f\n", p, costs[p])
	}

	// A scenario is a different spec, not a code change: the same study
	// restricted to the Azure environments at two scales. (Scales are
	// bounded by the study's quota model — Azure GPU grants 33 nodes, so a
	// 64-node override would fail the GPU environments, correctly.)
	azure, err := core.CachedRunSpec(&core.StudySpec{
		Seed: 2025, Envs: []string{"azure-*"}, Scales: []int{16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nazure-only scenario: %d runs across %d environments\n",
		len(azure.Runs), len(azure.Hookups))
}
