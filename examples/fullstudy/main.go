// Fullstudy: run the entire cross-cloud study once and slice the cached
// dataset three ways.
//
// core.CachedRunFull memoizes one study execution per seed for the life of
// the process, so asking for the dataset repeatedly — as this example, the
// root benchmarks, and the cmd/ tools all do — pays for the simulation
// once. The execution itself is sharded per environment over a worker
// pool; the dataset is byte-identical for any worker count, so a cached
// result is interchangeable with a fresh one.
package main

import (
	"fmt"
	"log"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
)

func main() {
	res, err := core.CachedRunFull(2025)
	if err != nil {
		log.Fatal(err)
	}

	// Slice 1: dataset size per environment.
	fmt.Printf("%d runs across %d environments\n\n", len(res.Runs), len(res.Hookups))

	// Slice 2: the cheapest and dearest AMG2023 environments (Table 4).
	rows := res.Table4()
	fmt.Printf("AMG2023 cost range: $%.2f (%s) to $%.2f (%s)\n\n",
		rows[0].TotalUSD, rows[0].Label, rows[len(rows)-1].TotalUSD, rows[len(rows)-1].Label)

	// Slice 3: per-cloud spend (§3.4). A second CachedRunFull call with
	// the same seed returns the identical dataset without re-running.
	again, err := core.CachedRunFull(2025)
	if err != nil {
		log.Fatal(err)
	}
	costs := again.StudyCosts()
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		fmt.Printf("%-8s $%.2f\n", p, costs[p])
	}
}
