// Fullstudy: run the entire cross-cloud study as an observable
// core.Runner session — watching its progress events live — and slice
// the cached dataset three ways.
//
// Runner.Start returns a Session: a subscribable event stream
// (study/env/unit started·finished·cached, injected incidents,
// percent-complete from the partition plan), cooperative cancellation,
// and Wait. Events are pure observation — the dataset is byte-identical
// with or without subscribers. Runner.Run (and the CachedRunSpec
// wrapper) memoizes one execution per canonical spec hash for the life
// of the process and single-flights concurrent same-spec callers, so
// asking for a dataset repeatedly — as this example, the root
// benchmarks, and the cmd/ tools all do — pays for the simulation once.
package main

import (
	"context"
	"fmt"
	"log"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
)

func main() {
	// The default spec is the paper's full matrix. Specs are plain text —
	// this one could equally be loaded from a file with core.LoadSpec.
	spec, err := core.ParseSpec(`
seed 2025
envs *            # the full Table 1 matrix
apps *            # all 11 proxy applications
iterations 5
granularity env-app
`)
	if err != nil {
		log.Fatal(err)
	}

	// Start the study as a session and watch it execute. Cancelling ctx
	// (or calling sess.Cancel) would stop dispatching work, drain what is
	// in flight, and return ctx's error from Wait.
	runner := &core.Runner{}
	sess, err := runner.Start(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	events, unsubscribe := sess.Subscribe()
	go func() {
		for ev := range events {
			switch ev.Kind {
			case core.EventStudyStarted:
				fmt.Printf("started: %d work units planned\n", ev.Total)
			case core.EventEnvFinished:
				done, total := sess.Progress()
				fmt.Printf("  %-26s done (%d/%d units, %.0f%%)\n",
					ev.Env, done, total, 100*float64(done)/float64(total))
			case core.EventStudyCached:
				fmt.Printf("served from the %s cache\n", ev.Tier)
			}
		}
	}()
	res, err := sess.Wait()
	unsubscribe()
	if err != nil {
		log.Fatal(err)
	}

	// Slice 1: dataset size per environment.
	fmt.Printf("\n%d runs across %d environments\n\n", len(res.Runs), len(res.Hookups))

	// Slice 2: the cheapest and dearest AMG2023 environments (Table 4).
	rows := res.Table4()
	fmt.Printf("AMG2023 cost range: $%.2f (%s) to $%.2f (%s)\n\n",
		rows[0].TotalUSD, rows[0].Label, rows[len(rows)-1].TotalUSD, rows[len(rows)-1].Label)

	// Slice 3: per-cloud spend (§3.4). The default spec at the same seed
	// hashes identically to the spec above (granularity never enters the
	// hash), so this second call returns the identical memoized dataset
	// without re-running — Runner.Run blocks like the old CachedRunSpec,
	// which still exists as exactly this wrapper.
	again, err := runner.Run(context.Background(), core.DefaultSpec(2025))
	if err != nil {
		log.Fatal(err)
	}
	costs := again.StudyCosts()
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		fmt.Printf("%-8s $%.2f\n", p, costs[p])
	}

	// A scenario is a different spec, not a code change: the same study
	// restricted to the Azure environments at two scales. (Scales are
	// bounded by the study's quota model — Azure GPU grants 33 nodes, so a
	// 64-node override would fail the GPU environments, correctly.)
	azure, err := runner.Run(context.Background(), &core.StudySpec{
		Seed: 2025, Envs: []string{"azure-*"}, Scales: []int{16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nazure-only scenario: %d runs across %d environments\n",
		len(azure.Runs), len(azure.Hookups))
}
