// Package cloudhpc's root benchmark harness regenerates every table and
// figure of the paper's evaluation section. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the headline quantities of its artifact as custom
// metrics (b.ReportMetric), so `go test -bench` output doubles as a
// compact reproduction log; cmd/figures prints the full artifacts.
package cloudhpc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

// The full study is shared across benchmarks via core.CachedRunFull;
// regenerating artifacts from the cached dataset is what each bench times
// (plus the benches below that time the full study itself).
func studyResults(b *testing.B) *core.Results {
	b.Helper()
	res, err := core.CachedRunFull(2025)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// reportPeakRSS attaches the process's peak resident set (VmHWM from
// /proc/self/status, Linux only) as a custom metric, giving
// scripts/bench_baseline.sh a memory axis without needing an external
// time(1) binary. The high-water mark is process-wide and monotone, so
// within one `go test -bench` invocation the value reflects the peak up
// to the end of this benchmark — run benchmarks in isolation (as the
// baseline script's regexes do) when the absolute number matters.
func reportPeakRSS(b *testing.B) {
	b.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return // not Linux: skip the axis rather than fail the bench
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, ok := strings.CutPrefix(line, "VmHWM:")
		if !ok {
			continue
		}
		if f := strings.Fields(rest); len(f) > 0 {
			if kb, err := strconv.ParseFloat(f[0], 64); err == nil {
				b.ReportMetric(kb, "peakRSS-kB")
			}
		}
		return
	}
}

// BenchmarkFullStudy times the entire 13-environment, 11-application,
// 5-iteration study — the producer of every artifact below — at the
// default worker count (one shard per environment over runtime.NumCPU()
// workers).
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := core.New(uint64(2025 + i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := st.RunFull()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Runs)), "runs")
	}
	reportPeakRSS(b)
}

// BenchmarkFullStudyWorkers sweeps the executor's worker count. The
// dataset is byte-identical across the sweep (see the core determinism
// tests); only the wall time changes, roughly in proportion to available
// cores until the longest single environment shard dominates.
func BenchmarkFullStudyWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := core.New(uint64(2025 + i))
				if err != nil {
					b.Fatal(err)
				}
				st.Opts.Workers = workers
				res, err := st.RunFull()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.Runs)), "runs")
			}
		})
	}
}

// BenchmarkFullStudyGranularity sweeps the work-partitioning plan:
// granularity=env caps parallelism at the environment count (13 shards),
// while granularity=env-app fans each environment's model evaluations out
// into one unit per (env, app) pair (>140 units), so worker counts beyond
// 13 keep shrinking the critical path — the longest shard sheds its model
// evaluation share onto the pool and only its lifecycle replay stays
// serial. The dataset is byte-identical across every cell of the sweep
// (TestRunFullWorkerCountInvariant); only wall time may differ, and on a
// machine with more than 13 cores the env-app rows at high worker counts
// run fastest. Compare:
//
//	go test -bench 'FullStudyGranularity' -benchtime=5x
func BenchmarkFullStudyGranularity(b *testing.B) {
	for _, gran := range []core.Granularity{core.GranularityEnv, core.GranularityEnvApp} {
		for _, workers := range []int{1, 4, 13, 32} {
			b.Run(fmt.Sprintf("granularity=%s/workers=%d", gran, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					st, err := core.New(uint64(2025 + i))
					if err != nil {
						b.Fatal(err)
					}
					st.Opts.Workers = workers
					st.Opts.Granularity = gran
					res, err := st.RunFull()
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(len(res.Runs)), "runs")
				}
				reportPeakRSS(b)
			})
		}
	}
}

// BenchmarkUnitPrecompute isolates the work the env-app granularity moves
// off the environments' critical path: the pure model/hookup evaluation
// of the full matrix, one (env, app) unit at a time. Its share of
// BenchmarkFullStudy is the parallelizable fraction beyond 13 workers.
func BenchmarkUnitPrecompute(b *testing.B) {
	spec, err := core.DefaultSpec(2025).Resolve()
	if err != nil {
		b.Fatal(err)
	}
	hookup := network.NewHookupModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		units := 0
		for _, env := range spec.Envs {
			if env.Unavailable != "" {
				continue
			}
			for _, m := range spec.Models {
				core.PlanUnitForBench(uint64(2025+i), env, m, spec.Iterations, hookup)
				units++
			}
		}
		b.ReportMetric(float64(units), "units")
	}
	reportPeakRSS(b)
}

// --- Tables ---

// BenchmarkTable1EnvironmentCharacteristics regenerates Table 1.
func BenchmarkTable1EnvironmentCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		envs, err := apps.StudyEnvironments()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(envs)), "environments")
		b.ReportMetric(float64(len(apps.Deployable(envs))), "deployable")
	}
}

// BenchmarkTable2NodesAndNetwork regenerates Table 2.
func BenchmarkTable2NodesAndNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := cloud.NewCatalog()
		all := cat.All()
		var maxCores int
		for _, it := range all {
			if it.Cores > maxCores {
				maxCores = it.Cores
			}
		}
		b.ReportMetric(float64(len(all)), "SKUs")
		b.ReportMetric(float64(maxCores), "max-cores/node")
	}
}

// BenchmarkTable3Usability regenerates the usability assessment.
func BenchmarkTable3Usability(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as := res.Table3()
		sum := usability.Summary(as)
		b.ReportMetric(float64(len(as)), "rows")
		b.ReportMetric(float64(sum[usability.High]), "high-scores")
		b.ReportMetric(float64(sum[usability.Low]), "low-scores")
	}
}

// BenchmarkTable4AMGCosts regenerates the AMG2023 cost table.
func BenchmarkTable4AMGCosts(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := res.Table4()
		if len(rows) == 0 {
			b.Fatal("empty Table 4")
		}
		b.ReportMetric(rows[0].TotalUSD, "cheapest-$")
		b.ReportMetric(rows[len(rows)-1].TotalUSD, "dearest-$")
	}
}

// --- Figures ---

// figBench regenerates one figure and reports the best series at x.
func figBench(b *testing.B, app string, acc cloud.Accelerator, atX float64) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := res.FigureFor(app, acc)
		if err != nil {
			b.Fatal(err)
		}
		if best, err := fig.BestAt(atX); err == nil {
			bs, _ := fig.Get(best).At(atX)
			b.ReportMetric(bs.Mean, "best-FOM@"+fig.XLabel)
		}
		b.ReportMetric(float64(len(fig.Series)), "series")
	}
}

// BenchmarkFigure1KripkeGrindTime regenerates Figure 1 (CPU grind time).
func BenchmarkFigure1KripkeGrindTime(b *testing.B) { figBench(b, "kripke", cloud.CPU, 256) }

// BenchmarkFigure2AMG2023FOM regenerates Figure 2 (CPU and GPU panels).
func BenchmarkFigure2AMG2023FOM(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := res.FigureFor("amg2023", cloud.CPU)
		if err != nil {
			b.Fatal(err)
		}
		gpu, err := res.FigureFor("amg2023", cloud.GPU)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cpu.Series)+len(gpu.Series)), "series")
	}
}

// BenchmarkFigure3LaghosFOM regenerates Figure 3.
func BenchmarkFigure3LaghosFOM(b *testing.B) { figBench(b, "laghos", cloud.CPU, 64) }

// BenchmarkFigure4LAMMPS regenerates Figure 4 (CPU panel; GPU shares code).
func BenchmarkFigure4LAMMPS(b *testing.B) { figBench(b, "lammps", cloud.CPU, 256) }

// BenchmarkFigure5OSU regenerates the OSU sweeps at the largest CPU size.
func BenchmarkFigure5OSU(b *testing.B) {
	envs, err := apps.StudyEnvironments()
	if err != nil {
		b.Fatal(err)
	}
	osu := apps.NewOSU()
	rng := sim.NewStream(2025, "bench/osu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var points int
		for _, spec := range apps.Deployable(envs) {
			if spec.Acc != cloud.CPU {
				continue
			}
			points += len(osu.LatencySeries(spec.Env, rng))
			points += len(osu.BandwidthSeries(spec.Env, rng))
			points += len(osu.AllReduceSeries(spec.Env, 256, rng))
		}
		b.ReportMetric(float64(points), "points")
	}
}

// BenchmarkFigure6MiniFE regenerates Figure 6.
func BenchmarkFigure6MiniFE(b *testing.B) { figBench(b, "minife", cloud.CPU, 32) }

// BenchmarkFigure7MTGEMM regenerates Figure 7 (GPU GFLOP/s).
func BenchmarkFigure7MTGEMM(b *testing.B) { figBench(b, "mt-gemm", cloud.GPU, 128) }

// BenchmarkFigure8Quicksilver regenerates Figure 8 (CPU).
func BenchmarkFigure8Quicksilver(b *testing.B) { figBench(b, "quicksilver", cloud.CPU, 256) }

// --- Section 3 findings ---

// BenchmarkHookupTimes regenerates the §3.2 hookup-time measurements.
func BenchmarkHookupTimes(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, aks := res.HookupSeries("azure-aks-cpu")
		_, gke := res.HookupSeries("google-gke-cpu")
		if len(aks) == 0 || len(gke) == 0 {
			b.Fatal("missing hookup series")
		}
		b.ReportMetric(aks[len(aks)-1].Seconds(), "aks-256-hookup-s")
		b.ReportMetric(gke[len(gke)-1].Seconds(), "gke-256-hookup-s")
	}
}

// BenchmarkStreamTriad regenerates the §3.3 STREAM Triad numbers.
func BenchmarkStreamTriad(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := res.FigureFor("stream", cloud.CPU)
		if err != nil {
			b.Fatal(err)
		}
		gpu, err := res.FigureFor("stream", cloud.GPU)
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := cpu.Get("google-gke-cpu").At(64); ok {
			b.ReportMetric(s.Mean, "gke-cpu-64-GBps")
		}
		if s, ok := gpu.Get("google-gke-gpu").At(256); ok {
			b.ReportMetric(s.Mean, "gke-gpu-triad-GBps")
		}
	}
}

// BenchmarkMixbenchECC regenerates the ECC survey.
func BenchmarkMixbenchECC(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var azureOn float64
		var others int
		for env, on := range res.ECCOn {
			spec, err := apps.EnvByKey(env)
			if err != nil {
				b.Fatal(err)
			}
			if spec.Provider == cloud.Azure {
				azureOn = on
			} else if on == 1.0 {
				others++
			}
		}
		b.ReportMetric(azureOn*100, "azure-ecc-on-%")
		b.ReportMetric(float64(others), "clean-clouds")
	}
}

// BenchmarkSingleNodeAudit regenerates the supermarket-fish audit.
func BenchmarkSingleNodeAudit(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(len(res.Findings)), "anomalous-nodes")
	}
}

// BenchmarkStudyCosts regenerates the §3.4 per-cloud spend.
func BenchmarkStudyCosts(b *testing.B) {
	res := studyResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs := res.StudyCosts()
		b.ReportMetric(costs[cloud.AWS], "aws-$")
		b.ReportMetric(costs[cloud.Azure], "azure-$")
		b.ReportMetric(costs[cloud.Google], "google-$")
	}
}

// BenchmarkEKSStuckProvisioning reproduces the §4.1 finding: recreating
// the 256-node EKS cluster never fully provisions and burns ~$2.2k.
func BenchmarkEKSStuckProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i + 1))
		log := trace.NewLog()
		meter := cloud.NewMeter(s, log)
		quota := cloud.NewQuotaManager(s, log)
		prov := cloud.NewProvisioner(s, log, meter, quota, cloud.NewPlacementService(s, log))
		quota.Request(cloud.AWS, cloud.CPU, 256)
		it, err := cloud.NewCatalog().Lookup(cloud.AWS, "Hpc6a")
		if err != nil {
			b.Fatal(err)
		}
		req := cloud.ProvisionRequest{Env: "aws-eks-cpu", Type: it, Nodes: 256, Kubernetes: true}
		if _, err := prov.Provision(req); err != nil {
			b.Fatal(err)
		}
		before := meter.Spend(cloud.AWS)
		if _, err := prov.Provision(req); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meter.Spend(cloud.AWS)-before, "wasted-$")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationAMGTopology quantifies the -P 8 4 2 vs -P 4 4 4 gain.
func BenchmarkAblationAMGTopology(b *testing.B) {
	spec, err := apps.EnvByKey("google-gke-gpu")
	if err != nil {
		b.Fatal(err)
	}
	amg := apps.NewAMG2023()
	rng := sim.NewStream(2025, "bench/topology")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var k8s, vm float64
		for j := 0; j < 50; j++ {
			k8s += amg.RunWithTopology(spec.Env, 8, apps.TopologyK8s, rng).FOM
			vm += amg.RunWithTopology(spec.Env, 8, apps.TopologyVM, rng).FOM
		}
		b.ReportMetric((k8s/vm-1)*100, "topology-gain-%")
	}
}

// BenchmarkAblationFabricSensitivity swaps the fabric under LAMMPS at 256
// nodes to isolate how much of the environment ordering is network.
func BenchmarkAblationFabricSensitivity(b *testing.B) {
	spec, err := apps.EnvByKey("azure-cyclecloud-cpu")
	if err != nil {
		b.Fatal(err)
	}
	lammps := apps.NewLAMMPS()
	rng := sim.NewStream(2025, "bench/fabric")
	fabrics := []cloud.Fabric{cloud.InfiniBandHDR, cloud.EFAGen15, cloud.GooglePremium}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var base float64
		for _, f := range fabrics {
			e := spec.Env
			m, err := network.Lookup(f)
			if err != nil {
				b.Fatal(err)
			}
			e.Net = m
			fom := lammps.Run(e, 256, rng).FOM
			if f == cloud.InfiniBandHDR {
				base = fom
			} else if f == cloud.GooglePremium {
				b.ReportMetric(base/fom, "IB-vs-premium-speedup")
			}
		}
	}
}

// BenchmarkAblationQuicksilverPinningFix shows what the GPU runs would
// have produced had the processes been pinned correctly.
func BenchmarkAblationQuicksilverPinningFix(b *testing.B) {
	spec, err := apps.EnvByKey("azure-aks-gpu")
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewStream(2025, "bench/pinning")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broken := apps.NewQuicksilver()
		fixed := apps.NewQuicksilver()
		fixed.GPUPinningBug = false
		if r := broken.Run(spec.Env, 4, rng); r.Err == nil {
			b.Fatal("the pinning bug should prevent completion")
		}
		r := fixed.Run(spec.Env, 4, rng)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(r.FOM, "fixed-FOM")
	}
}

// BenchmarkAutoscalerDynamics runs the event-driven autoscaler through a
// bursty day and reports scaling operations and spend — the §4.1 metric
// ("minimizing scaling operations and total time of nodes going up and
// down relative to the work").
func BenchmarkAutoscalerDynamics(b *testing.B) {
	it, err := cloud.NewCatalog().Lookup(cloud.AWS, "Hpc6a")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := sim.New(uint64(i + 1))
		log := trace.NewLog()
		meter := cloud.NewMeter(s, log)
		as := cloud.NewAutoscaler(s, log, meter, "aws-autoscale", it)
		as.MinWorkers = 1 // the persistent head
		for batch := 0; batch < 6; batch++ {
			if err := as.SetDemand(32); err != nil {
				b.Fatal(err)
			}
			s.Run()
			if err := as.RunBusy(as.Workers(), 45*time.Minute); err != nil {
				b.Fatal(err)
			}
			s.Clock.Advance(45 * time.Minute)
			as.SetDemand(0)
			s.Run()
			s.Clock.Advance(3 * time.Hour) // idle gap between batches
		}
		up, down := as.Ops()
		b.ReportMetric(float64(up+down), "scaling-ops")
		b.ReportMetric(meter.Spend(cloud.AWS), "spend-$")
	}
}

// BenchmarkAutoscalingTradeoff prices the §4.1 provisioning strategies.
func BenchmarkAutoscalingTradeoff(b *testing.B) {
	it, err := cloud.NewCatalog().Lookup(cloud.AWS, "Hpc6a")
	if err != nil {
		b.Fatal(err)
	}
	bursty := []cloud.WorkloadPhase{
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
	}
	cfg := cloud.AutoscaleConfig{HeadNodes: 1, ScaleUpDelay: 10 * time.Minute, ScaleDownLag: 5 * time.Minute}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static := cloud.StaticClusterCost(it, bursty)
		auto := cloud.AutoscaleCost(it, cfg, bursty)
		exact := cloud.ExactStaticCost(it, bursty)
		b.ReportMetric(static/auto, "autoscale-advantage")
		b.ReportMetric(exact, "exact-static-$")
	}
}

// BenchmarkStudyStoreCold and BenchmarkStudyStoreWarm quantify what the
// persistent result store buys. Cold is the worst case: the memory tier
// is flushed, the store is fresh, so the study computes end to end and
// every artifact — study bundle plus 143 unit artifacts — is serialized
// into a new on-disk store. Warm flushes only the memory tier: the
// dataset decodes whole from the store, no simulation at all.
// scripts/bench_baseline.sh turns the pair into the BENCH_store.json
// cold-vs-warm data point; compare the ratio, not the absolutes.
func BenchmarkStudyStoreCold(b *testing.B) {
	defer core.SetDefaultResultStore(nil)
	defer core.FlushCachedRuns()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs, err := core.OpenResultStore(filepath.Join(b.TempDir(), fmt.Sprintf("store-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		rs.Logf = nil
		core.SetDefaultResultStore(rs)
		core.FlushCachedRuns()
		b.StartTimer()
		if _, err := core.CachedRunFull(2025); err != nil {
			b.Fatal(err)
		}
	}
	reportPeakRSS(b)
}

func BenchmarkStudyStoreWarm(b *testing.B) {
	rs, err := core.OpenResultStore(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	rs.Logf = nil
	core.SetDefaultResultStore(rs)
	defer core.SetDefaultResultStore(nil)
	defer core.FlushCachedRuns()
	core.FlushCachedRuns()
	if _, err := core.CachedRunFull(2025); err != nil { // populate the store
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core.FlushCachedRuns()
		b.StartTimer()
		if _, err := core.CachedRunFull(2025); err != nil {
			b.Fatal(err)
		}
	}
	reportPeakRSS(b)
}

// BenchmarkRunnerStudyCold and BenchmarkRunnerStudySubscribed quantify
// what the session layer costs. Cold is BenchmarkStudyStoreCold's exact
// workload — full compute serialized into a fresh on-disk store — but
// driven through a core.Runner session with no subscribers: the
// acceptance bar is parity within noise (≤2%) of the store-cold number,
// because unobserved sessions pay only atomic counters. Subscribed
// attaches one actively-draining subscriber to the same workload, the
// upper bound anyone pays for watching a study live.
// scripts/bench_baseline.sh turns the pair plus the store-cold
// reference into BENCH_runner.json.
func BenchmarkRunnerStudyCold(b *testing.B) {
	benchRunnerStudy(b, false)
}

func BenchmarkRunnerStudySubscribed(b *testing.B) {
	benchRunnerStudy(b, true)
}

func benchRunnerStudy(b *testing.B, subscribe bool) {
	defer core.SetDefaultResultStore(nil)
	defer core.FlushCachedRuns()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs, err := core.OpenResultStore(filepath.Join(b.TempDir(), fmt.Sprintf("store-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		rs.Logf = nil
		core.FlushCachedRuns()
		r := &core.Runner{Store: rs}
		b.StartTimer()
		sess, err := r.Start(context.Background(), core.DefaultSpec(2025))
		if err != nil {
			b.Fatal(err)
		}
		var drain func() int
		if subscribe {
			ch, _ := sess.Subscribe()
			done := make(chan int, 1)
			go func() {
				n := 0
				for range ch {
					n++
				}
				done <- n
			}()
			drain = func() int { return <-done }
		}
		res, err := sess.Wait()
		if err != nil {
			b.Fatal(err)
		}
		if drain != nil {
			b.ReportMetric(float64(drain()), "events")
		}
		b.ReportMetric(float64(len(res.Runs)), "runs")
	}
	reportPeakRSS(b)
}

// BenchmarkFleetLocalFallback is BenchmarkRunnerStudyCold's workload
// with a fleet coordinator attached but no workers registered: every
// unit's offload takes the zero-live-workers fast path and computes
// locally. The acceptance bar is parity within noise (≤2%) of the
// runner-cold number — an attached-but-empty fleet must cost one mutex
// acquisition per unit, nothing more. scripts/bench_baseline.sh turns
// the pair into BENCH_fleet.json.
func BenchmarkFleetLocalFallback(b *testing.B) {
	defer core.SetDefaultResultStore(nil)
	defer core.FlushCachedRuns()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs, err := core.OpenResultStore(filepath.Join(b.TempDir(), fmt.Sprintf("store-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		rs.Logf = nil
		core.FlushCachedRuns()
		co := fleet.New(fleet.Options{}, rs)
		r := &core.Runner{Store: rs, Fleet: co}
		b.StartTimer()
		res, err := r.Run(context.Background(), core.DefaultSpec(2025))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s := co.Stats()
		co.Close()
		b.StartTimer()
		b.ReportMetric(float64(len(res.Runs)), "runs")
		b.ReportMetric(float64(s.Fallbacks), "fallbacks")
	}
	reportPeakRSS(b)
}
