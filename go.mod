module cloudhpc

go 1.22
