#!/bin/sh
# Regenerates BENCH_baseline.json — the committed data point of the perf
# trajectory — from the executor benchmarks. Run from the repo root:
#
#	sh scripts/bench_baseline.sh > BENCH_baseline.json
#
# Keep regenerations deliberate (new hardware, or a change that moves the
# numbers on purpose) and note the machine in the "host" field.
set -e

go test -run XXX -bench 'BenchmarkFullStudy$|BenchmarkFullStudyGranularity|BenchmarkUnitPrecompute' -benchtime=10x 2>/dev/null |
awk '
BEGIN {
	printf "{\n"
	printf "  \"note\": \"full-study executor wall-clock baseline; ns_per_op medians move with hardware — compare shapes, not absolutes\",\n"
	"date -u +%Y-%m-%dT%H:%M:%SZ" | getline d
	printf "  \"recorded\": \"%s\",\n", d
	"go env GOOS" | getline os
	"go env GOARCH" | getline arch
	"nproc" | getline cores
	printf "  \"host\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpus\": %s},\n", os, arch, cores
	printf "  \"benchmarks\": [\n"
	first = 1
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3
}
END {
	printf "\n  ]\n}\n"
}'
