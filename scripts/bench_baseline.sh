#!/bin/sh
# Regenerates a committed benchmark data point from the executor
# benchmarks. With no arguments it produces BENCH_baseline.json (the
# full-study executor baseline); with a bench regex and a note it
# produces any other data point — the store cold/warm comparison is:
#
#	sh scripts/bench_baseline.sh \
#	  'BenchmarkStudyStoreCold$|BenchmarkStudyStoreWarm$' \
#	  'cold = full compute + serialize into a fresh on-disk store; warm = whole-study decode from the store, no simulation; compare the cold/warm ratio, not absolutes' \
#	  > BENCH_store.json
#
# and the fleet local-fallback overhead point (an attached-but-empty
# coordinator must sit within noise of the plain runner) is:
#
#	sh scripts/bench_baseline.sh \
#	  'BenchmarkRunnerStudyCold$|BenchmarkFleetLocalFallback$' \
#	  'fallback = runner-cold workload with a fleet coordinator attached and zero workers registered; every unit offload takes the no-live-workers fast path; compare against runner-cold, acceptance is <2% overhead' \
#	  > BENCH_fleet.json
#
# Each entry carries a peak_rss_kb axis (the bench process's VmHWM, via
# reportPeakRSS in bench_test.go; 0 where a benchmark does not report
# it). VmHWM is process-wide and monotone, so the number is only
# meaningful for benchmarks run in isolation — which is exactly how the
# regexes above slice them.
#
# A third argument narrows (or widens) the package list; the default
# covers the root executor benchmarks plus the hot-path microbenches
# (trace log, draw streams) so the committed baseline pins both layers.
#
# Run from the repo root:
#
#	sh scripts/bench_baseline.sh > BENCH_baseline.json
#
# Keep regenerations deliberate (new hardware, or a change that moves the
# numbers on purpose) and note the machine in the "host" field.
set -e

pattern="${1:-BenchmarkFullStudy\$|BenchmarkFullStudyGranularity|BenchmarkUnitPrecompute|BenchmarkTraceLog|BenchmarkStreamDraws}"
note="${2:-full-study executor wall-clock baseline; ns_per_op medians move with hardware — compare shapes, not absolutes}"
packages="${3:-. ./internal/trace ./internal/sim}"

# The note reaches awk via the environment (awk -v mangles backslash
# escapes) and is JSON-escaped before interpolation.
BENCH_NOTE="$note"
export BENCH_NOTE
# $packages is intentionally unquoted: it is a space-separated list.
go test -run XXX -bench "$pattern" -benchtime=10x -benchmem $packages 2>/dev/null |
awk '
BEGIN {
	note = ENVIRON["BENCH_NOTE"]
	gsub(/\\/, "&&", note) # & = the matched backslash; && doubles it
	gsub(/"/, "\\\"", note)
	printf "{\n"
	printf "  \"note\": \"%s\",\n", note
	"date -u +%Y-%m-%dT%H:%M:%SZ" | getline d
	printf "  \"recorded\": \"%s\",\n", d
	"go env GOOS" | getline os
	"go env GOARCH" | getline arch
	"nproc" | getline cores
	printf "  \"host\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpus\": %s},\n", os, arch, cores
	printf "  \"benchmarks\": [\n"
	first = 1
}
/^Benchmark/ {
	# With -benchmem every line carries a B/op and allocs/op column —
	# the memory axis ROADMAP asks for rides along on every data point.
	# Custom metrics (ReportMetric: "runs", "units") shift the columns,
	# so locate each value by the unit token that follows it.
	name = $1
	sub(/-[0-9]+$/, "", name)
	bytes = 0; allocs = 0; rss = 0
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
		if ($(i + 1) == "peakRSS-kB") rss = $i
	}
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"peak_rss_kb\": %s}", name, $2, $3, bytes, allocs, rss
}
END {
	printf "\n  ]\n}\n"
}'
