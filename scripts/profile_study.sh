#!/bin/sh
# One-command profile of a full study run: builds cmd/report, runs it
# with -cpuprofile/-memprofile (the cli-layer hooks), and prints the
# pprof top tables for CPU and allocated space. Every perf PR starts
# from this evidence — attack whatever is at the top, not a hunch.
#
# Usage (from the repo root):
#
#	sh scripts/profile_study.sh              # default study
#	sh scripts/profile_study.sh -workers 4   # extra report flags pass through
#
# Profiles and the rendered report land in a temp directory that is
# printed at the end, so `go tool pprof` can re-examine them
# interactively (e.g. -http=:8080, or -top -sample_index=alloc_objects).
set -e

dir="$(mktemp -d "${TMPDIR:-/tmp}/profile_study.XXXXXX")"
go build -o "$dir/report" ./cmd/report
"$dir/report" -cpuprofile "$dir/cpu.out" -memprofile "$dir/mem.out" \
	-o "$dir/report.md" "$@"

echo
echo "=== CPU (top 15) ==="
go tool pprof -top -nodecount=15 "$dir/report" "$dir/cpu.out"
echo
echo "=== Allocated space (top 15) ==="
go tool pprof -top -nodecount=15 -sample_index=alloc_space "$dir/report" "$dir/mem.out"
echo
echo "profiles: $dir/cpu.out $dir/mem.out (report: $dir/report.md)"
