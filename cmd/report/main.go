// Command report runs the study and writes the complete results report as
// markdown — every table, figure, audit, and failure in one document.
//
// Usage:
//
//	report [-spec FILE] [-seed N] [-workers N] [-granularity env|env-app] [-store DIR] [-progress auto|on|off] [-o report.md] [-chaos default|FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/core"
	"cloudhpc/internal/report"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	out := flag.String("o", "", "output file (default stdout)")
	pause := flag.Duration("pause", 0, "pause between scales for cost reporting (e.g. 26h)")
	testClusters := flag.Bool("test-clusters", false, "shake out each environment on a small test cluster first")
	flag.Parse()

	// No non-spec options: the runner shares the process-wide spec-keyed
	// cache; with them, it bypasses the cached tiers (the dataset depends
	// on more than the spec).
	var configure func(*core.Options)
	if *pause != 0 || *testClusters {
		configure = func(o *core.Options) {
			o.PauseBetweenScales = *pause
			o.TestClusters = *testClusters
		}
	}
	res, _, err := study.Run(configure)
	if err != nil {
		cli.Fail("report", err)
	}
	md, err := report.Markdown(res)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(md))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
