// Command report runs the study and writes the complete results report as
// markdown — every table, figure, audit, and failure in one document.
//
// Usage:
//
//	report [-seed N] [-o report.md] [-chaos default|FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/chaos"
	"cloudhpc/internal/core"
	"cloudhpc/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2025, "simulation seed")
	out := flag.String("o", "", "output file (default stdout)")
	pause := flag.Duration("pause", 0, "pause between scales for cost reporting (e.g. 26h)")
	testClusters := flag.Bool("test-clusters", false, "shake out each environment on a small test cluster first")
	workers := flag.Int("workers", 0, "environment shards to run concurrently (0 = all CPUs); the dataset is identical for every value")
	chaosArg := flag.String("chaos", "", `fault-injection plan: "default" or a plan file path (adds a recovery section to the report)`)
	flag.Parse()

	plan, err := chaos.LoadPlan(*chaosArg)
	if err != nil {
		fatal(err)
	}

	var res *core.Results
	if *pause == 0 && !*testClusters && *workers == 0 && plan.Empty() {
		// Default options: share the process-wide cached dataset.
		res, err = core.CachedRunFull(*seed)
	} else {
		var st *core.Study
		st, err = core.New(*seed)
		if err != nil {
			fatal(err)
		}
		st.Opts.PauseBetweenScales = *pause
		st.Opts.TestClusters = *testClusters
		st.Opts.Workers = *workers
		st.Opts.Chaos = plan
		res, err = st.RunFull()
	}
	if err != nil {
		fatal(err)
	}
	md, err := report.Markdown(res)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(md))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
