// Command chaosbench runs the study under a fault-injection plan and
// reports what the chaos cost: the injected incidents, the recovery
// accounting (preemptions, re-queued jobs, lost node-hours, billing
// impact), and the spend/failure deltas against the fault-free baseline
// for the same spec.
//
// The chaotic dataset is exactly as reproducible as the clean one: at a
// fixed (spec, plan) the run is byte-identical for every -workers value
// and -granularity.
//
// Usage:
//
//	chaosbench [-spec FILE] [-seed N] [-chaos default|FILE] [-workers N] [-granularity env|env-app] [-store DIR] [-progress auto|on|off] [-no-baseline] [-incidents]
//
// Plan files are line-oriented (see internal/chaos):
//
//	spot-reclaim env=*       prob=0.08 frac=0.5 requeue=true
//	stockout     env=aws-*   prob=0.15 retries=3 backoff=10m
//	quota-revoke env=azure-* prob=0.10 nodes=16 regrant=2h
//	net-degrade  env=google-* prob=0.20 latency=2.5 bandwidth=1.15
//	pull-fail    env=*       prob=0.20 retries=2 backoff=45s
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/report"
)

func main() {
	study := cli.Register(flag.CommandLine, "default")
	noBaseline := flag.Bool("no-baseline", false, "skip the fault-free baseline run and its delta report")
	showIncidents := flag.Bool("incidents", false, "print the full incident transcript")
	flag.Parse()

	spec, err := study.Spec()
	if err != nil {
		fatal(err)
	}
	if spec.Chaos == "" || spec.Chaos == "none" {
		fatal(fmt.Errorf("no chaos plan: pass -chaos default or a plan file"))
	}

	res, err := study.RunSpec(spec, nil)
	if err != nil {
		cli.Fail("chaosbench", err)
	}

	fmt.Printf("chaotic study complete: %d runs, %d injected incidents (seed %d)\n\n",
		len(res.Runs), len(res.Incidents), spec.Seed)

	fmt.Println("== Recovery accounting ==")
	fmt.Print(report.Recovery(res.Recovery))

	fmt.Println("\n== Per-cloud spend under chaos ==")
	fmt.Print(report.Costs(res.StudyCosts()))

	if !*noBaseline {
		// The fault-free baseline is the same spec with the plan removed —
		// a different canonical hash, so the two datasets never collide in
		// the spec-keyed cache.
		clean := *spec
		clean.Chaos = ""
		base, err := study.RunSpec(&clean, nil)
		if err != nil {
			cli.Fail("chaosbench", err)
		}
		fmt.Println("\n== Chaos vs fault-free baseline ==")
		fmt.Printf("%-10s %12s %12s %12s\n", "cloud", "baseline", "chaotic", "delta")
		for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
			b, c := base.Meter.Spend(p), res.Meter.Spend(p)
			fmt.Printf("%-10s $%11.2f $%11.2f $%+11.2f\n", p, b, c, c-b)
		}
		fmt.Printf("%-10s %12d %12d %+12d  (failed runs)\n",
			"runs", countFailures(base), countFailures(res), countFailures(res)-countFailures(base))
	}

	if *showIncidents {
		fmt.Println("\n== Incidents ==")
		fmt.Print(report.Incidents(res.Incidents))
	}
}

// countFailures totals failed runs across the dataset.
func countFailures(res *core.Results) int {
	n := 0
	for _, byApp := range res.FailureSummary() {
		for _, c := range byApp {
			n += c
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaosbench:", err)
	os.Exit(1)
}
