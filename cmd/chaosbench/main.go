// Command chaosbench runs the study under a fault-injection plan and
// reports what the chaos cost: the injected incidents, the recovery
// accounting (preemptions, re-queued jobs, lost node-hours, billing
// impact), and the spend/failure deltas against the fault-free baseline
// at the same seed.
//
// The chaotic dataset is exactly as reproducible as the clean one: at a
// fixed (seed, plan) the run is byte-identical for every -workers value.
//
// Usage:
//
//	chaosbench [-seed N] [-plan default|FILE] [-workers N] [-no-baseline] [-incidents]
//
// Plan files are line-oriented (see internal/chaos):
//
//	spot-reclaim env=*       prob=0.08 frac=0.5 requeue=true
//	stockout     env=aws-*   prob=0.15 retries=3 backoff=10m
//	quota-revoke env=azure-* prob=0.10 nodes=16 regrant=2h
//	net-degrade  env=google-* prob=0.20 latency=2.5 bandwidth=1.15
//	pull-fail    env=*       prob=0.20 retries=2 backoff=45s
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2025, "simulation seed")
	planArg := flag.String("plan", "default", `chaos plan: "default" or a plan file path`)
	workers := flag.Int("workers", 0, "environment shards to run concurrently (0 = all CPUs); the dataset is identical for every value")
	noBaseline := flag.Bool("no-baseline", false, "skip the fault-free baseline run and its delta report")
	showIncidents := flag.Bool("incidents", false, "print the full incident transcript")
	flag.Parse()

	plan, err := chaos.LoadPlan(*planArg)
	if err != nil {
		fatal(err)
	}
	if plan.Empty() {
		fatal(fmt.Errorf("no chaos plan: pass -plan default or a plan file"))
	}

	st, err := core.New(*seed)
	if err != nil {
		fatal(err)
	}
	st.Opts.Workers = *workers
	st.Opts.Chaos = plan
	res, err := st.RunFull()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("chaotic study complete: %d runs, %d injected incidents (seed %d)\n\n",
		len(res.Runs), len(res.Incidents), *seed)

	fmt.Println("== Recovery accounting ==")
	fmt.Print(report.Recovery(res.Recovery))

	fmt.Println("\n== Per-cloud spend under chaos ==")
	fmt.Print(report.Costs(res.StudyCosts()))

	if !*noBaseline {
		base, err := core.CachedRunFull(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\n== Chaos vs fault-free baseline ==")
		fmt.Printf("%-10s %12s %12s %12s\n", "cloud", "baseline", "chaotic", "delta")
		for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
			b, c := base.Meter.Spend(p), res.Meter.Spend(p)
			fmt.Printf("%-10s $%11.2f $%11.2f $%+11.2f\n", p, b, c, c-b)
		}
		fmt.Printf("%-10s %12d %12d %+12d  (failed runs)\n",
			"runs", countFailures(base), countFailures(res), countFailures(res)-countFailures(base))
	}

	if *showIncidents {
		fmt.Println("\n== Incidents ==")
		fmt.Print(report.Incidents(res.Incidents))
	}
}

// countFailures totals failed runs across the dataset.
func countFailures(res *core.Results) int {
	n := 0
	for _, byApp := range res.FailureSummary() {
		for _, c := range byApp {
			n += c
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaosbench:", err)
	os.Exit(1)
}
