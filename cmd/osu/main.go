// Command osu runs the OSU micro-benchmark sweeps (osu_latency, osu_bw,
// osu_allreduce) against any study environment's fabric — the standalone
// version of Figure 5.
//
// Usage:
//
//	osu [-env aws-eks-cpu] [-nodes 256] [-bench latency|bw|allreduce|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/report"
	"cloudhpc/internal/sim"
)

func main() {
	envKey := flag.String("env", "aws-eks-cpu", "environment key (see cmd/figures -only table1)")
	nodes := flag.Int("nodes", 256, "cluster size for the allreduce sweep")
	bench := flag.String("bench", "all", "latency | bw | allreduce | all")
	seed := flag.Uint64("seed", 2025, "random seed")
	flag.Parse()

	spec, err := apps.EnvByKey(*envKey)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		fmt.Fprintln(os.Stderr, "available environments:")
		if envs, err := apps.StudyEnvironments(); err == nil {
			for _, e := range envs {
				fmt.Fprintf(os.Stderr, "  %s\n", e.Key)
			}
		}
		os.Exit(1)
	}

	osu := apps.NewOSU()
	rng := sim.NewStream(*seed, "osu/"+*envKey)
	fmt.Printf("fabric: %s (sampling %d nodes, ≤%d pairs)\n\n",
		spec.Instance.Fabric, osu.SampleNodes, osu.MaxPairs)

	if *bench == "latency" || *bench == "all" {
		fmt.Print(report.OSUSeries("osu_latency "+*envKey, "µs", osu.LatencySeries(spec.Env, rng)))
		fmt.Println()
	}
	if *bench == "bw" || *bench == "all" {
		fmt.Print(report.OSUSeries("osu_bw "+*envKey, "MB/s", osu.BandwidthSeries(spec.Env, rng)))
		fmt.Println()
	}
	if *bench == "allreduce" || *bench == "all" {
		fmt.Print(report.OSUSeries(
			fmt.Sprintf("osu_allreduce %s (%d nodes, %d ranks)", *envKey, *nodes, spec.Env.Units(*nodes)),
			"µs", osu.AllReduceSeries(spec.Env, *nodes, rng)))
	}
}
