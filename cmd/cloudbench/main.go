// Command cloudbench runs the cross-cloud study — by default every
// deployable environment, every application, every scale, five
// iterations; any other scenario via -spec — and prints the dataset
// summary: run counts, failures, per-cloud spend, and the usability
// assessment.
//
// Usage:
//
//	cloudbench [-spec FILE] [-seed N] [-workers N] [-granularity env|env-app] [-store DIR] [-progress auto|on|off] [-trace]
package main

import (
	"flag"
	"fmt"
	"sort"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cli"
	"cloudhpc/internal/core"
	"cloudhpc/internal/report"
	"cloudhpc/internal/usability"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	showTrace := flag.Bool("trace", false, "dump the full event trace")
	pause := flag.Duration("pause", 0, "pause between cluster sizes for cost reporting to catch up (§4.2)")
	testClusters := flag.Bool("test-clusters", false, "shake out each environment on a small test cluster first (§4.2)")
	abortOverBudget := flag.Bool("abort-over-budget", false, "stop an environment when its spend exceeds its share of the provider budget")
	flag.Parse()

	var configure func(*core.Options)
	if *pause != 0 || *testClusters || *abortOverBudget {
		configure = func(o *core.Options) {
			o.PauseBetweenScales = *pause
			o.TestClusters = *testClusters
			o.AbortOverBudget = *abortOverBudget
		}
	}
	res, spec, err := study.Run(configure)
	if err != nil {
		cli.Fail("cloudbench", err)
	}

	fmt.Printf("study complete: %d runs across %d environments (seed %d)\n\n",
		len(res.Runs), len(apps.Deployable(res.Envs)), spec.Seed)

	fmt.Println("== Per-cloud spend (paper §3.4) ==")
	fmt.Print(report.Costs(res.StudyCosts()))

	fmt.Println("\n== Usability (paper Table 3) ==")
	fmt.Print(usability.Table(res.Table3()))

	fmt.Println("\n== AMG2023 costs (paper Table 4) ==")
	fmt.Print(report.Table4(res.Table4()))

	funnel := res.Builds
	fmt.Printf("\n== Container builds (paper: 220 built, 97 intended, 74 used) ==\n")
	fmt.Printf("attempted %d, built %d, usable %d, failed %d\n",
		funnel.Attempted, funnel.Built, funnel.Usable, funnel.Failed)

	fmt.Println("\n== Failures ==")
	fails := res.FailureSummary()
	for _, spec := range res.Envs { // canonical matrix order, not map order
		byApp := fails[spec.Key]
		apps := make([]string, 0, len(byApp))
		for app := range byApp {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			fmt.Printf("%-26s %-12s %d failed runs\n", spec.Key, app, byApp[app])
		}
	}

	if len(res.Findings) > 0 {
		fmt.Println("\n== Single-node audit ==")
		for _, f := range res.Findings {
			fmt.Printf("%s: %s\n", f.NodeID, f.Detail)
		}
	}

	if len(res.Incidents) > 0 {
		fmt.Printf("\n== Fault injection (%d incidents) ==\n", len(res.Incidents))
		fmt.Print(report.Recovery(res.Recovery))
	}

	if *showTrace {
		fmt.Println("\n== Event trace ==")
		fmt.Print(res.Log.Render())
	}
}
