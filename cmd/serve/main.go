// Command serve is the study service daemon: core.Runner sessions over
// line-oriented JSON-RPC 2.0. By default it speaks the protocol on
// stdin/stdout (one connection, initialize required); with -http it
// serves any number of clients over streamable HTTP (POST /rpc with
// NDJSON request lines, responses and event notifications streamed
// back; GET /healthz reports structured health JSON). Submissions are
// single-flight by spec hash: every client submitting the same study
// shares one execution and one sequence-numbered event stream, and a
// disconnected client reattaches with study.subscribe {after: <last
// seq>} to resume exactly where it left off. See ARCHITECTURE.md,
// "Study service".
//
// A daemon started with -store is also a store-federation hub: the
// store.* method family (inventory, fetch, put, refs) exposes its
// result store for digest-exchange sync, and `serve -sync URL -store
// DIR` is the branch side — push the local store's novel artifacts to
// the hub, pull what the hub has that the branch lacks, so two stores
// converge to the union and every subsequent run on either side is
// warm. See ARCHITECTURE.md, "Store federation".
//
// A daemon started with -fleet additionally coordinates remote unit
// workers: (env, app) units that miss every cache tier are published to
// a lease table, and `serve -worker URL` processes claim them, compute
// them, and push the artifacts back through the store sync verbs. Every
// fleet failure mode — no workers, crashed worker, stale artifact —
// degrades to local compute with byte-identical results. See
// ARCHITECTURE.md, "Distributed unit execution".
//
// Usage:
//
//	serve [-http ADDR] [-store DIR] [-fleet] [-lease DUR] [-straggler DUR]
//	      [-drain wait|cancel] [-replay N]
//	serve -connect URL -spec FILE [-after N]      # client: submit + stream events
//	serve -connect URL -stop                      # client: drain and stop the daemon
//	serve -sync URL -store DIR                    # client: reconcile stores (push, then pull)
//	serve -worker URL                             # worker: claim and compute units
//
// The daemon exits 0 after a graceful drain — on SIGTERM, SIGINT, or a
// shutdown RPC — with the result store consistent: sessions end through
// the executor's cooperative path and every store write is atomic. A
// worker exits 0 on SIGTERM/SIGINT after finishing and delivering its
// in-flight unit, if any.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/core"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/rpc"
)

func main() {
	httpAddr := flag.String("http", "", "serve over HTTP on this address (e.g. 127.0.0.1:8787) instead of stdio")
	store := flag.String("store", "", "persistent result store directory shared by every session")
	drain := flag.String("drain", rpc.DrainWait, `shutdown drain policy: "wait" lets running studies finish, "cancel" cancels them first`)
	replay := flag.Int("replay", 0, fmt.Sprintf("per-session replay-ring bound for reattaching subscribers (0 = %d)", rpc.DefaultServerReplay))
	fleetOn := flag.Bool("fleet", false, "coordinate remote unit workers (needs -store: the store is the artifact exchange)")
	lease := flag.Duration("lease", 0, fmt.Sprintf("fleet lease TTL before an unheartbeated unit re-queues (0 = %s)", fleet.DefaultLeaseTTL))
	straggler := flag.Duration("straggler", 0, fmt.Sprintf("longest a study waits on the fleet per unit before computing locally (0 = %s)", fleet.DefaultStraggler))
	connect := flag.String("connect", "", "client mode: base URL of a running daemon (e.g. http://127.0.0.1:8787)")
	spec := flag.String("spec", "", `client mode: study spec to submit, "default" or a spec file path`)
	after := flag.Uint64("after", 0, "client mode: resume the event stream after this sequence number")
	stop := flag.Bool("stop", false, "client mode: ask the daemon to drain and exit (prints its closing health report)")
	syncURL := flag.String("sync", "", "client mode: reconcile the local -store with a running daemon's store (push, then pull)")
	workerURL := flag.String("worker", "", "worker mode: base URL of a coordinating daemon to claim units from")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	if *workerURL != "" {
		info := rpc.Implementation{Name: "cloudhpc-serve-worker"}
		if err := cli.ServeWorker(*workerURL, info, logf); err != nil {
			cli.Fail("serve", err)
		}
		return
	}

	if *syncURL != "" {
		if *store == "" {
			cli.Fail("serve", fmt.Errorf("-sync needs -store DIR (the local store to reconcile)"))
		}
		if err := cli.ServeSync(context.Background(), *syncURL, *store, logf); err != nil {
			cli.Fail("serve", err)
		}
		return
	}

	if *connect != "" {
		ctx := context.Background()
		if *stop {
			if err := cli.ServeShutdown(ctx, *connect, os.Stdout); err != nil {
				cli.Fail("serve", err)
			}
			return
		}
		if *spec == "" {
			cli.Fail("serve", fmt.Errorf("client mode needs -spec (or -stop)"))
		}
		if err := cli.ServeClient(ctx, *connect, *spec, *after, os.Stdout, os.Stderr); err != nil {
			cli.Fail("serve", err)
		}
		return
	}

	switch *drain {
	case rpc.DrainWait, rpc.DrainCancel:
	default:
		cli.Fail("serve", fmt.Errorf("unknown -drain policy %q (want %q or %q)", *drain, rpc.DrainWait, rpc.DrainCancel))
	}
	var rs *core.ResultStore
	if *store != "" {
		var err error
		if rs, err = core.OpenResultStore(*store); err != nil {
			cli.Fail("serve", err)
		}
		core.SetDefaultResultStore(rs)
	}
	runner := &core.Runner{Store: rs}
	srv := &rpc.Server{
		Runner: runner,
		Drain:  *drain,
		Replay: *replay,
		Logf:   logf,
		Info:   rpc.Implementation{Name: "cloudhpc-serve"},
	}
	if *fleetOn {
		if rs == nil {
			cli.Fail("serve", fmt.Errorf("-fleet needs -store DIR (the store is the unit-artifact exchange)"))
		}
		co := fleet.New(fleet.Options{LeaseTTL: *lease, Straggler: *straggler}, rs)
		defer co.Close()
		runner.Fleet = co
		srv.Fleet = co
		logf("serve: fleet coordination enabled (lease %s, straggler %s)",
			durOrDefault(*lease, fleet.DefaultLeaseTTL), durOrDefault(*straggler, fleet.DefaultStraggler))
	}
	if err := cli.ServeDaemon(srv, *httpAddr, logf); err != nil {
		cli.Fail("serve", err)
	}
}

func durOrDefault(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}
