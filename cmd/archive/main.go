// Command archive runs the study and archives everything the way the
// study's release does: per-(environment, application) result datasets as
// ORAS artifacts, plus the full event trace — all content-addressed in an
// OCI registry (the paper's release carries 25,541 datasets this way).
//
// With -store DIR the registry is backed by the persistent on-disk store
// shared with the result cache, so the archive survives the process:
// re-running archive against the same store deduplicates every unchanged
// blob, and the study itself is served warm from the store instead of
// recomputed.
//
// Usage:
//
//	archive [-spec FILE] [-seed N] [-store DIR] [-progress auto|on|off] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/oras"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	verify := flag.Bool("verify", true, "pull every artifact back and verify digests")
	flag.Parse()

	rs, err := study.OpenStore()
	if err != nil {
		fatal(err)
	}
	res, _, err := study.Run(nil)
	if err != nil {
		cli.Fail("archive", err)
	}

	// Share the result store's registry when one is configured: the
	// archive then lands in the same content-addressed store as the
	// cached studies and persists across runs.
	var reg *oras.Registry
	if rs != nil {
		reg = rs.Registry()
	} else {
		reg = oras.NewRegistry()
	}

	tags, err := dataset.Push(reg, res.Records())
	if err != nil {
		fatal(err)
	}

	traceData, err := res.Log.MarshalJSONL()
	if err != nil {
		fatal(err)
	}
	traceDigest, err := reg.Push("trace/study", "application/vnd.cloudhpc.trace.v1",
		map[string][]byte{"events.jsonl": traceData}, nil)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("archived %d result artifacts + 1 trace artifact\n", len(tags))
	fmt.Printf("registry: %d blobs, %d manifests\n", reg.BlobCount(), reg.ManifestCount())
	fmt.Printf("trace: %s (%d events, %d bytes)\n", traceDigest, res.Log.Len(), len(traceData))

	if *verify {
		records := 0
		for _, tag := range tags {
			recs, err := dataset.Load(reg, tag)
			if err != nil {
				fatal(fmt.Errorf("verify %s: %w", tag, err))
			}
			records += len(recs)
		}
		if records != len(res.Runs) {
			fatal(fmt.Errorf("verify: archive holds %d records, study produced %d", records, len(res.Runs)))
		}
		fmt.Printf("verified: %d records across %d artifacts match the study dataset\n", records, len(tags))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "archive:", err)
	os.Exit(1)
}
