// Command trace runs the study and queries its event log — the audit
// trail behind every usability score.
//
// Usage:
//
//	trace [-spec FILE] [-seed N] [-store DIR] [-progress auto|on|off] [-env azure-aks-cpu] [-severity unexpected|blocking] [-category setup|development|application-setup|manual-intervention] [-json]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/trace"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	env := flag.String("env", "", "filter by environment key")
	severity := flag.String("severity", "", "minimum severity: routine | unexpected | blocking")
	category := flag.String("category", "", "filter by category")
	asJSON := flag.Bool("json", false, "emit JSONL instead of text")
	flag.Parse()

	minSev := trace.Routine
	switch *severity {
	case "", "routine":
	case "unexpected":
		minSev = trace.Unexpected
	case "blocking":
		minSev = trace.Blocking
	default:
		fatal(fmt.Errorf("unknown severity %q", *severity))
	}

	res, _, err := study.Run(nil)
	if err != nil {
		cli.Fail("trace", err)
	}

	filtered := trace.NewLog()
	res.Log.All(func(e trace.Event) bool {
		if *env != "" && e.Env != *env {
			return true
		}
		if e.Severity < minSev {
			return true
		}
		if *category != "" && string(e.Category) != *category {
			return true
		}
		filtered.Add(e)
		return true
	})

	if *asJSON {
		data, err := filtered.MarshalJSONL()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		return
	}
	fmt.Printf("%d of %d events match\n", filtered.Len(), res.Log.Len())
	fmt.Print(filtered.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
