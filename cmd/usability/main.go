// Command usability runs the study and prints the qualitative effort
// assessment (paper Table 3) with the evidence behind every non-low score.
//
// Usage:
//
//	usability [-spec FILE] [-seed N] [-store DIR] [-progress auto|on|off] [-evidence]
package main

import (
	"flag"
	"fmt"

	"cloudhpc/internal/cli"
	"cloudhpc/internal/usability"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	evidence := flag.Bool("evidence", false, "print the events behind each score")
	flag.Parse()

	res, _, err := study.Run(nil)
	if err != nil {
		cli.Fail("usability", err)
	}

	assessments := res.Table3()
	fmt.Print(usability.Table(assessments))

	sum := usability.Summary(assessments)
	fmt.Printf("\nscores: %d low, %d medium, %d high\n",
		sum[usability.Low], sum[usability.Medium], sum[usability.High])
	fmt.Println("hardest environments first:")
	for i, env := range usability.HardestEnvironments(assessments) {
		fmt.Printf("  %2d. %s\n", i+1, env)
	}

	if *evidence {
		fmt.Println("\nevidence:")
		for _, a := range assessments {
			for _, cat := range usability.Categories {
				for _, e := range a.Evidence[cat] {
					fmt.Printf("%-26s %-20s %-10s %s\n", a.Env, cat, e.Severity, e.Msg)
				}
			}
		}
	}
}
