// Command figures regenerates every table and figure of the paper from a
// fresh study run.
//
// Usage:
//
//	figures [-spec FILE] [-seed N] [-store DIR] [-progress auto|on|off] [-only table1|table2|table3|table4|fig1|...|fig8|hookup|stream|ecc|costs] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cli"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/report"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/usability"
)

func main() {
	study := cli.Register(flag.CommandLine, "")
	only := flag.String("only", "", "emit a single artifact (table1..table4, fig1..fig8, hookup, stream, ecc, costs)")
	csv := flag.Bool("csv", false, "emit figures as CSV")
	flag.Parse()

	// Every artifact below derives from one cached study execution.
	res, spec, err := study.Run(nil)
	if err != nil {
		cli.Fail("figures", err)
	}

	renderFig := func(fig *metrics.Figure) string {
		if *csv {
			return report.FigureCSV(fig)
		}
		return report.Figure(fig)
	}
	fig := func(app string, acc cloud.Accelerator, title string) string {
		f, err := res.FigureFor(app, acc)
		if err != nil {
			fatal(err)
		}
		f.Title = title
		return renderFig(f)
	}

	artifacts := []struct {
		key, title string
		render     func() string
	}{
		{"table1", "Table 1: Environment Characteristics", func() string {
			return report.Table1(res.Envs)
		}},
		{"table2", "Table 2: Nodes and Network", func() string {
			return report.Table2(cloud.NewCatalog())
		}},
		{"table3", "Table 3: Environment Usability", func() string {
			return usability.Table(res.Table3())
		}},
		{"table4", "Table 4: AMG2023 Total Costs By Environment", func() string {
			return report.Table4(res.Table4())
		}},
		{"fig1", "Figure 1: Kripke grind time (CPU)", func() string {
			return fig("kripke", cloud.CPU, "Figure 1: Kripke grind time (CPU, lower is better)")
		}},
		{"fig2", "Figure 2: AMG2023 FOM", func() string {
			return fig("amg2023", cloud.CPU, "Figure 2a: AMG2023 FOM (CPU)") +
				fig("amg2023", cloud.GPU, "Figure 2b: AMG2023 FOM (GPU)")
		}},
		{"fig3", "Figure 3: Laghos major kernels rate (CPU)", func() string {
			return fig("laghos", cloud.CPU, "Figure 3: Laghos megadofs×steps/s (CPU)")
		}},
		{"fig4", "Figure 4: LAMMPS M-atom steps/s", func() string {
			return fig("lammps", cloud.CPU, "Figure 4a: LAMMPS (CPU)") +
				fig("lammps", cloud.GPU, "Figure 4b: LAMMPS (GPU)")
		}},
		{"fig5", "Figure 5: OSU benchmarks at 256 CPU nodes", func() string { return osuFigure(res, spec.Seed) }},
		{"fig6", "Figure 6: MiniFE CG MFLOP/s", func() string {
			return fig("minife", cloud.CPU, "Figure 6a: MiniFE (CPU)") +
				fig("minife", cloud.GPU, "Figure 6b: MiniFE (GPU)")
		}},
		{"fig7", "Figure 7: MT-GEMM GFLOP/s (GPU)", func() string {
			return fig("mt-gemm", cloud.GPU, "Figure 7: MT-GEMM (GPU)")
		}},
		{"fig8", "Figure 8: Quicksilver segments/cycle-tracking-time (CPU)", func() string {
			return fig("quicksilver", cloud.CPU, "Figure 8: Quicksilver (CPU)")
		}},
		{"hookup", "Hookup times (paper §3.2)", func() string { return hookupReport(res) }},
		{"stream", "STREAM Triad (paper §3.3)", func() string {
			return fig("stream", cloud.CPU, "STREAM Triad aggregate (CPU)") +
				fig("stream", cloud.GPU, "STREAM Triad per GPU")
		}},
		{"ecc", "Mixbench ECC survey (paper §3.3)", func() string { return eccReport(res) }},
		{"costs", "Study costs (paper §3.4)", func() string { return report.Costs(res.StudyCosts()) }},
	}

	for _, a := range artifacts {
		if *only != "" && a.key != *only {
			continue
		}
		fmt.Printf("==== %s ====\n%s\n", a.title, a.render())
	}
}

// osuFigure runs the Figure 5 sweeps on the 256-node CPU environments.
func osuFigure(res *core.Results, seed uint64) string {
	osu := apps.NewOSU()
	out := ""
	for _, spec := range apps.Deployable(res.Envs) {
		if spec.Acc != cloud.CPU {
			continue
		}
		rng := sim.NewStream(seed, "figures/osu/"+spec.Key)
		out += report.OSUSeries("osu_latency "+spec.Key, "µs", osu.LatencySeries(spec.Env, rng))
		out += report.OSUSeries("osu_bw "+spec.Key, "MB/s", osu.BandwidthSeries(spec.Env, rng))
		out += report.OSUSeries("osu_allreduce "+spec.Key+" (256 nodes)", "µs", osu.AllReduceSeries(spec.Env, 256, rng))
	}
	return out
}

func hookupReport(res *core.Results) string {
	out := fmt.Sprintf("%-28s %-8s %s\n", "Environment", "Nodes", "Hookup")
	for _, spec := range apps.Deployable(res.Envs) {
		nodes, times := res.HookupSeries(spec.Key)
		for i, n := range nodes {
			out += fmt.Sprintf("%-28s %-8d %v\n", spec.Key, n, times[i].Round(100_000_000))
		}
	}
	return out
}

func eccReport(res *core.Results) string {
	out := fmt.Sprintf("%-28s %s\n", "Environment", "ECC On")
	for _, spec := range apps.Deployable(res.Envs) {
		if on, ok := res.ECCOn[spec.Key]; ok {
			out += fmt.Sprintf("%-28s %.1f%%\n", spec.Key, on*100)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
