package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/rpc"
)

// TestDaemonReadHeaderTimeout: the daemon's HTTP server must shed a
// client that connects and never finishes its request headers, instead
// of parking a goroutine on it forever. The timeout is shrunk to
// something testable and the connection watched for the server-side
// close.
func TestDaemonReadHeaderTimeout(t *testing.T) {
	saved := serveReadHeaderTimeout
	serveReadHeaderTimeout = 100 * time.Millisecond
	defer func() { serveReadHeaderTimeout = saved }()

	hs := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "served\n")
	}))
	if hs.ReadHeaderTimeout != 100*time.Millisecond {
		t.Fatalf("newHTTPServer dropped the header timeout: %v", hs.ReadHeaderTimeout)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	// A client that opens the request but never ends its headers.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow"); err != nil {
		t.Fatal(err)
	}
	// On timeout the server answers with an error status and closes; if
	// it never times out, ReadAll blocks until the deadline trips and
	// errors instead.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("server kept the half-headered connection open past the timeout: %v", err)
	}
	if bytes.Contains(got, []byte("200 OK")) {
		t.Fatalf("half-headered request was served: %q", got)
	}

	// An honest client is unaffected.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("well-formed request after timeout config: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

// fakeDaemon is a canned /rpc endpoint: it answers each request line
// from a fixed method → result table, so client-side behavior can be
// pinned against daemon states that are hard to stage for real (here: a
// subscribe stream that ends without ever delivering an event).
func fakeDaemon(t *testing.T, results map[string]any) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/rpc" {
			http.NotFound(w, r)
			return
		}
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var req struct {
				ID     json.RawMessage `json:"id"`
				Method string          `json:"method"`
			}
			if err := json.Unmarshal(line, &req); err != nil {
				t.Errorf("fake daemon got unparseable line %q: %v", line, err)
				return
			}
			res, ok := results[req.Method]
			if !ok {
				t.Errorf("fake daemon got unexpected method %q", req.Method)
				return
			}
			reply, _ := json.Marshal(map[string]any{"jsonrpc": "2.0", "id": req.ID, "result": res})
			w.Write(append(reply, '\n'))
		}
	}))
}

// TestServeClientDetectsSilentFailure is the reattach-after-failure
// regression: a subscribe whose cursor is at or past a failed session's
// final event receives nothing, and ServeClient used to read that
// silence as success. It must fall back to the session's recorded state
// and report the failure.
func TestServeClientDetectsSilentFailure(t *testing.T) {
	t.Parallel()
	ts := fakeDaemon(t, map[string]any{
		"study.submit": rpc.SubmitResult{Session: "S1", SpecHash: strings.Repeat("ab", 32), Created: false},
		// Subscribe acknowledges and the stream ends: zero events.
		"study.subscribe": rpc.SubscribeResult{Session: "S1", After: 40},
		"study.progress":  rpc.ProgressResult{Session: "S1", State: "failed", Err: "executor: boom"},
	})
	defer ts.Close()

	var out, info bytes.Buffer
	err := ServeClient(t.Context(), ts.URL, "default", 40, &out, &info)
	if err == nil {
		t.Fatalf("reattach to a failed study reported success (info: %s)", info.String())
	}
	if !strings.Contains(err.Error(), "failed") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not carry the recorded failure: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("event output should be empty, got %q", out.String())
	}
}

// TestServeClientSilentFinishedIsSuccess: the same silent reattach
// against a session that finished cleanly must stay a success.
func TestServeClientSilentFinishedIsSuccess(t *testing.T) {
	t.Parallel()
	ts := fakeDaemon(t, map[string]any{
		"study.submit":    rpc.SubmitResult{Session: "S1", SpecHash: strings.Repeat("cd", 32), Created: false},
		"study.subscribe": rpc.SubscribeResult{Session: "S1", After: 40},
		"study.progress":  rpc.ProgressResult{Session: "S1", State: "finished", Done: 4, Total: 4},
	})
	defer ts.Close()

	var out, info bytes.Buffer
	if err := ServeClient(t.Context(), ts.URL, "default", 40, &out, &info); err != nil {
		t.Fatalf("silent reattach to a finished study: %v", err)
	}
	if !strings.Contains(info.String(), `state "finished"`) {
		t.Fatalf("info does not record the fallback poll: %s", info.String())
	}
}
