// Package cli deduplicates the study flag plumbing shared by the cmd/
// mains (report, cloudbench, chaosbench, figures, trace, usability,
// archive): the -seed, -workers, -chaos, -granularity, -spec, -store,
// -progress, -cpuprofile, and -memprofile flags, the precedence rule
// that combines them into one core.StudySpec, and the shared run
// harness (RunSpec: a core.Runner session with SIGINT → graceful
// cancellation, the stderr progress renderer, and pprof profile
// bracketing). Before this package each main grew its own copy of the
// same flags and they drifted; now a main registers the set once,
// resolves it once, and runs through one harness.
package cli

import (
	"flag"
	"os"

	"cloudhpc/internal/core"
)

// StudyFlags is the shared flag set. Register it before flag.Parse and
// resolve it after.
type StudyFlags struct {
	fs          *flag.FlagSet
	seed        *uint64
	workers     *int
	chaos       *string
	spec        *string
	granularity *string
	store       *string
	progress    *string
	cpuprofile  *string
	memprofile  *string
	chaosDflt   string

	storeOpened bool
	storeHandle *core.ResultStore
}

// Register installs the shared study flags on fs. chaosDefault is the
// plan reference used when neither -chaos nor the spec names one — ""
// for the fault-free tools, "default" for chaosbench.
func Register(fs *flag.FlagSet, chaosDefault string) *StudyFlags {
	f := &StudyFlags{fs: fs, chaosDflt: chaosDefault}
	f.seed = fs.Uint64("seed", core.DefaultSeed, "simulation seed (overrides the spec file's seed when set)")
	f.workers = fs.Int("workers", 0, "concurrent work units (0 = all CPUs); the dataset is identical for every value")
	f.chaos = fs.String("chaos", chaosDefault, `fault-injection plan: "none", "default", or a plan file path`)
	f.spec = fs.String("spec", "", `study spec: "default" or a spec file path (envs, apps, scales, iterations, chaos, workers, granularity)`)
	f.granularity = fs.String("granularity", "", `work-partitioning unit: "env" or "env-app"; the dataset is identical for either`)
	f.store = fs.String("store", "", "persistent result store directory: studies and (env, app) units are content-addressed there and reused across runs")
	f.progress = fs.String("progress", "auto", `study progress feed on stderr: "auto" (only when stderr is a terminal), "on", or "off"`)
	f.cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the study run to this file")
	f.memprofile = fs.String("memprofile", "", "write a pprof heap profile taken after the study run to this file")
	return f
}

// progressOn resolves the -progress flag: "on" and "off" are explicit;
// "auto" (and anything else) enables the feed only when stderr is a
// terminal, so piped and CI runs stay quiet by default.
func (f *StudyFlags) progressOn() bool {
	switch *f.progress {
	case "on":
		return true
	case "off":
		return false
	}
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// OpenStore resolves the -store flag: when set, it opens (creating if
// needed) the on-disk result store and installs it as the process
// default, so every study — cached or hand-built — reads and writes it.
// It returns the store (nil when the flag is unset) for mains that also
// want the underlying registry (cmd/archive shares it to make the
// archive durable). Spec calls it implicitly, so a main that only needs
// the spec cannot forget the store; the first call wins.
func (f *StudyFlags) OpenStore() (*core.ResultStore, error) {
	if f.storeOpened {
		return f.storeHandle, nil
	}
	if *f.store == "" {
		f.storeOpened = true
		return nil, nil
	}
	rs, err := core.OpenResultStore(*f.store)
	if err != nil {
		return nil, err
	}
	core.SetDefaultResultStore(rs)
	f.storeOpened = true
	f.storeHandle = rs
	return rs, nil
}

// Spec resolves the flags into a StudySpec: the -spec reference is loaded
// (the full default study when empty), then every shared flag the user
// set explicitly overrides the corresponding spec field. An unset -chaos
// falls back to the registered default only when the spec left its chaos
// reference unset — a spec's own plan, or its explicit "chaos none",
// survives unrelated flag use.
func (f *StudyFlags) Spec() (*core.StudySpec, error) {
	// Honour -store before any study can run: resolving the spec is the
	// one step every main performs, so the store can never be silently
	// ignored by a main that forgets a second call.
	if _, err := f.OpenStore(); err != nil {
		return nil, err
	}
	spec, err := core.LoadSpec(*f.spec)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	f.fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if set["seed"] {
		spec.Seed = *f.seed
	}
	if set["workers"] {
		spec.Workers = *f.workers
	}
	if set["chaos"] {
		spec.Chaos = *f.chaos
	} else if spec.Chaos == "" && f.chaosDflt != "" {
		spec.Chaos = f.chaosDflt
	}
	if set["granularity"] {
		g, err := core.ParseGranularity(*f.granularity)
		if err != nil {
			return nil, err
		}
		spec.Granularity = g
	}
	return spec, nil
}
