package cli

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/rpc"
	"cloudhpc/internal/store"
)

// serveReadHeaderTimeout bounds how long a connected client may take to
// finish its request headers. Without it one slow-header (or silent)
// client parks a connection goroutine forever — a trivial resource-
// exhaustion hole for a daemon meant to outlive its clients. A var so
// the daemon test can shrink it to something testable.
var serveReadHeaderTimeout = 10 * time.Second

// newHTTPServer builds the daemon's HTTP server around a handler —
// shared by ServeDaemon and the header-timeout regression test, so the
// test exercises exactly the configuration the daemon runs.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{Handler: h, ReadHeaderTimeout: serveReadHeaderTimeout}
}

// The serve harness: the daemon and client halves of cmd/serve, kept
// here so the main stays a flag shell and the behavior is testable from
// the package that owns the rest of the CLI plumbing.

// ServeDaemon runs srv until it drains: over streamable HTTP when
// httpAddr is set, over stdin/stdout otherwise. SIGTERM and SIGINT
// trigger a graceful shutdown (per srv's drain policy); so does a
// shutdown RPC from any client, and — on stdio — the peer closing its
// end of the pipe. The return is nil exactly when the daemon drained
// cleanly, with every session ended through the executor's cooperative
// path and the result store quiescent.
func ServeDaemon(srv *rpc.Server, httpAddr string, logf func(format string, args ...any)) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if httpAddr == "" {
		// Stdio: one connection, one client. The daemon lives as long as
		// the conversation (or until a signal interrupts it).
		connDone := make(chan error, 1)
		go func() {
			connDone <- srv.ServeConn(ctx, os.Stdin, os.Stdout)
		}()
		select {
		case err := <-connDone:
			srv.Shutdown()
			return err
		case <-ctx.Done():
			logf("serve: signal received, draining (%s policy)", srv.Drain)
			srv.Shutdown()
			return nil
		}
	}

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return err
	}
	hs := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logf("serve: listening on http://%s (POST /rpc, GET /healthz)", ln.Addr())
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		logf("serve: signal received, draining (%s policy)", srv.Drain)
	case <-srv.Drained():
		logf("serve: shutdown requested over RPC, drained")
	}
	srv.Shutdown()
	// Close rather than http.Server.Shutdown: subscribe streams are
	// open-ended responses that would hold a graceful HTTP shutdown
	// forever, and every study is already drained — the sockets carry
	// nothing durable.
	hs.Close()
	return nil
}

// ServeClient is the daemon's counterpart for scripts and the CI smoke:
// it submits the spec to a running daemon, subscribes from the given
// cursor, and echoes every study.event notification line verbatim to
// out — raw wire bytes, so two clients (or one client before and after
// a reattach) can be compared byte for byte. Session identity and
// replay accounting go to info (stderr), keeping out pure. It returns
// once the stream ends: the session completed and the terminal event
// was delivered.
func ServeClient(ctx context.Context, url, specRef string, after uint64, out, info io.Writer) error {
	spec, err := core.LoadSpec(specRef)
	if err != nil {
		return err
	}
	client := &rpc.Client{URL: url}
	sub, err := client.Submit(ctx, spec.String())
	if err != nil {
		return err
	}
	fmt.Fprintf(info, "serve-client: session %s (spec %s, created=%v), subscribing after %d\n",
		sub.Session, sub.SpecHash[:12], sub.Created, after)
	var last rpc.StudyEvent
	res, err := client.Subscribe(ctx, sub.Session, after, func(raw []byte, ev rpc.StudyEvent) error {
		last = ev
		_, werr := fmt.Fprintf(out, "%s\n", raw)
		return werr
	})
	if err != nil {
		return err
	}
	if res.Missed > 0 {
		fmt.Fprintf(info, "serve-client: warning: cursor %d predates the replay window, %d event(s) unrecoverable\n", after, res.Missed)
	}
	if last.Kind == string(core.EventStudyFailed) {
		return fmt.Errorf("study failed: %s", last.Err)
	}
	if last.Kind != string(core.EventStudyFinished) {
		// The stream can end without delivering a terminal event: a
		// reattach whose after cursor is at or past the session's final
		// sequence number subscribes to a completed stream and receives
		// nothing. The zero-valued last would sail past the failure check
		// above and report success for a study that failed — fall back to
		// the session's recorded state instead of trusting silence.
		pr, perr := client.Progress(ctx, sub.Session)
		if perr != nil {
			return fmt.Errorf("stream ended without a terminal event and the state poll failed: %w", perr)
		}
		fmt.Fprintf(info, "serve-client: stream ended without a terminal event; session state %q\n", pr.State)
		if pr.State == "failed" || pr.State == "cancelled" {
			return fmt.Errorf("study %s: %s", pr.State, pr.Err)
		}
	}
	return nil
}

// ServeSync reconciles a local store directory with a running daemon's
// store over the store.* method family: first push every blob and ref
// the daemon lacks, then pull everything it has that the local store
// lacks. Both stores converge to the union — two machines that each ran
// half of an env matrix end up each serving the full matrix warm — and
// re-syncing converged stores transfers zero blobs.
func ServeSync(ctx context.Context, url, dir string, logf func(format string, args ...any)) error {
	bs, err := store.Open(dir)
	if err != nil {
		return err
	}
	peer := rpc.StorePeer{C: &rpc.Client{URL: url}}
	pushed, err := store.Push(ctx, bs, peer)
	if err != nil {
		return fmt.Errorf("sync push: %w", err)
	}
	logf("serve-sync: pushed %s to %s", pushed, url)
	pulled, err := store.Pull(ctx, bs, peer)
	if err != nil {
		return fmt.Errorf("sync pull: %w", err)
	}
	logf("serve-sync: pulled %s from %s", pulled, url)
	return nil
}

// ServeShutdown asks a running daemon to drain and exit, returning once
// the drain has completed. The daemon's post-drain health snapshot —
// its closing session and fleet tallies — is printed to out as JSON.
func ServeShutdown(ctx context.Context, url string, out io.Writer) error {
	res, err := (&rpc.Client{URL: url}).Shutdown(ctx)
	if err != nil {
		return err
	}
	if res.Health != nil && out != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Health); err != nil {
			return err
		}
	}
	return nil
}

// ServeWorker is cmd/serve's -worker mode: a remote unit worker that
// registers with a coordinating daemon and loops claim → compute → push
// until interrupted. SIGTERM and SIGINT drain: the in-flight unit (if
// any) finishes and is delivered before the process exits 0.
func ServeWorker(url string, info rpc.Implementation, logf func(format string, args ...any)) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return rpc.RunWorker(ctx, &rpc.Client{URL: url}, info, logf)
}

// IsInterruptOrClosed extends IsInterrupt for client streams cut by a
// daemon teardown mid-subscribe.
func IsInterruptOrClosed(err error) bool {
	return IsInterrupt(err) || errors.Is(err, io.ErrUnexpectedEOF)
}
