package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cloudhpc/internal/core"
)

func parse(t *testing.T, chaosDefault string, args ...string) *core.StudySpec {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, chaosDefault)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestDefaults(t *testing.T) {
	t.Parallel()
	spec := parse(t, "")
	if spec.Seed != core.DefaultSeed || spec.Workers != 0 || spec.Chaos != "" || spec.Granularity != core.GranularityEnv {
		t.Fatalf("default resolution: %+v", spec)
	}
}

func TestExplicitFlagsOverrideSpecFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "study.spec")
	src := "seed 7\nenvs azure-*\nworkers 2\nchaos default\ngranularity env\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// No overrides: the spec file wins.
	spec := parse(t, "", "-spec", path)
	if spec.Seed != 7 || spec.Workers != 2 || spec.Chaos != "default" {
		t.Fatalf("spec file not honored: %+v", spec)
	}
	// Explicit flags override their fields; untouched fields survive.
	spec = parse(t, "", "-spec", path, "-seed", "9", "-workers", "32", "-granularity", "env-app")
	if spec.Seed != 9 || spec.Workers != 32 || spec.Granularity != core.GranularityEnvApp {
		t.Fatalf("explicit overrides not applied: %+v", spec)
	}
	if spec.Chaos != "default" || len(spec.Envs) != 1 || spec.Envs[0] != "azure-*" {
		t.Fatalf("non-overridden spec fields drifted: %+v", spec)
	}
	// -chaos none overrides a spec's plan with the explicit clean spelling
	// (which resolves to no plan and blocks any registered default).
	spec = parse(t, "", "-spec", path, "-chaos", "none")
	if spec.Chaos != "none" {
		t.Fatalf("-chaos none left %q", spec.Chaos)
	}
}

func TestChaosDefaultOnlyFillsEmpty(t *testing.T) {
	t.Parallel()
	// chaosbench-style default: no flags → built-in plan.
	spec := parse(t, "default")
	if spec.Chaos != "default" {
		t.Fatalf("chaos default not applied: %q", spec.Chaos)
	}
	// A spec file's own plan wins over the registered default.
	dir := t.TempDir()
	path := filepath.Join(dir, "study.spec")
	if err := os.WriteFile(path, []byte("chaos myplan.txt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec = parse(t, "default", "-spec", path)
	if spec.Chaos != "myplan.txt" {
		t.Fatalf("spec plan overridden by registered default: %q", spec.Chaos)
	}
	// A spec's explicit "chaos none" also blocks the registered default —
	// a file that declares itself clean must never be fault-injected.
	clean := filepath.Join(dir, "clean.spec")
	if err := os.WriteFile(clean, []byte("chaos none\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec = parse(t, "default", "-spec", clean)
	if spec.Chaos != "none" {
		t.Fatalf("explicit chaos none was replaced by %q", spec.Chaos)
	}
}

func TestBadGranularityRejected(t *testing.T) {
	t.Parallel()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse([]string{"-granularity", "per-iteration"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Spec(); err == nil {
		t.Fatal("unknown granularity must be rejected")
	}
}

// TestOpenStore covers the -store flag: unset means no store (and no
// process default mutated); set opens/creates the directory and installs
// the process default for CachedRunSpec.
func TestOpenStore(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	rs, err := f.OpenStore()
	if err != nil || rs != nil {
		t.Fatalf("unset -store: got %v %v", rs, err)
	}

	dir := filepath.Join(t.TempDir(), "study-store")
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := Register(fs2, "")
	if err := fs2.Parse([]string{"-store", dir}); err != nil {
		t.Fatal(err)
	}
	rs2, err := f2.OpenStore()
	if err != nil || rs2 == nil {
		t.Fatalf("-store %s: %v %v", dir, rs2, err)
	}
	t.Cleanup(func() { core.SetDefaultResultStore(nil) })
	if core.DefaultResultStore() != rs2 {
		t.Fatal("OpenStore did not install the process default")
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs")); err != nil {
		t.Fatalf("store directory not created: %v", err)
	}
}

func TestStartProfilesWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s not written: %v", p, err)
		}
	}
}

func TestStartProfilesNoFlagsIsNoop(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	stop() // must not panic or create files
}
