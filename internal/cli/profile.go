// The permanent form of the profiling hook the serialization and
// compute optimization passes used ad hoc: every study main accepts
// -cpuprofile and -memprofile and brackets its run with them, so "where
// does the time/memory go" is one flag away on any workload instead of
// a bench-harness-only capability.
package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles honours the -cpuprofile/-memprofile flags: when set, it
// starts CPU profiling and returns a stop function that ends the CPU
// profile and writes the heap profile. The stop function must run
// before the process exits (RunSpec defers it ahead of any Fail), or
// the profile files are empty. With neither flag set both start and
// stop are no-ops.
func (f *StudyFlags) StartProfiles() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpuprofile != "" {
		cpuFile, err = os.Create(*f.cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	memPath := *f.memprofile
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			mf, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			// Collect garbage first so the heap profile shows the live
			// set, not whatever the last GC cycle left uncollected.
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			mf.Close()
		}
	}, nil
}
