// The shared progress renderer and run harness: every study-running
// main executes through RunSpec, which wires SIGINT → graceful session
// cancellation and (when stderr is a terminal, or -progress on) renders
// the session's event stream as a compact line-oriented feed. Rendering
// is pure observation on a Runner session — it can never change the
// dataset — and everything goes to stderr so piped stdout stays clean.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"cloudhpc/internal/core"
)

// RunSpec executes spec through a core.Runner session: SIGINT/SIGTERM
// cancel the run cooperatively (in-flight work drains, the store is
// left consistent) and the shared progress feed renders on stderr per
// the -progress flag. configure, when non-nil, adjusts non-spec options
// (such runs bypass the cached study tiers). On interruption the error
// satisfies IsInterrupt; mains report it via Fail.
func (f *StudyFlags) RunSpec(spec *core.StudySpec, configure func(*core.Options)) (*core.Results, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProfiles, err := f.StartProfiles()
	if err != nil {
		return nil, err
	}
	defer stopProfiles()
	r := &core.Runner{Configure: configure}
	sess, err := r.Start(ctx, spec)
	if err != nil {
		return nil, err
	}
	var drain func()
	if f.progressOn() {
		drain = Progress(os.Stderr, sess)
	}
	res, err := sess.Wait()
	if drain != nil {
		drain()
	}
	return res, err
}

// Run is RunSpec over the flags' own resolved spec, returning the spec
// alongside the dataset (mains print its seed).
func (f *StudyFlags) Run(configure func(*core.Options)) (*core.Results, *core.StudySpec, error) {
	spec, err := f.Spec()
	if err != nil {
		return nil, nil, err
	}
	res, err := f.RunSpec(spec, configure)
	return res, spec, err
}

// IsInterrupt reports whether a run error came from cooperative
// cancellation (SIGINT/SIGTERM or an explicit Session.Cancel) rather
// than a study failure.
func IsInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Fail is the shared main-error exit: interrupts report the clean
// cancellation and exit 130 (the conventional SIGINT status), anything
// else prints the error and exits 1.
func Fail(tool string, err error) {
	if IsInterrupt(err) {
		fmt.Fprintf(os.Stderr, "%s: interrupted — in-flight work drained, partial results discarded, store left consistent\n", tool)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Progress subscribes to sess and renders its event stream on w as a
// line-oriented feed (environment lifecycle, plan completion, incident
// and unit-reuse tallies). The returned func blocks until the stream is
// fully drained — call it after Wait so the closing line lands before
// the main's own output.
func Progress(w io.Writer, sess *core.Session) func() {
	ch, _ := sess.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		incidents, unitsCached, unitsRemote, leasesLost := 0, 0, 0, 0
		for ev := range ch {
			switch ev.Kind {
			case core.EventStudyStarted:
				if ev.Total > 0 {
					fmt.Fprintf(w, "study: started — %d work units planned\n", ev.Total)
				} else {
					fmt.Fprintf(w, "study: attached to an in-flight execution of the same spec\n")
				}
			case core.EventStudyCached:
				fmt.Fprintf(w, "study: served from the %s cache, no execution needed\n", ev.Tier)
			case core.EventEnvStarted:
				fmt.Fprintf(w, "  env %-26s started\n", ev.Env)
			case core.EventEnvFinished:
				done, total := sess.Progress()
				pct := 0.0
				if total > 0 {
					pct = 100 * float64(done) / float64(total)
				}
				fmt.Fprintf(w, "  env %-26s done        [%3.0f%% — %d/%d units]\n", ev.Env, pct, done, total)
			case core.EventEnvSkipped:
				fmt.Fprintf(w, "  env %-26s not deployed\n", ev.Env)
			case core.EventEnvFailed:
				fmt.Fprintf(w, "  env %-26s FAILED: %v\n", ev.Env, ev.Err)
			case core.EventUnitCached:
				unitsCached++
			case core.EventUnitRemote:
				unitsRemote++
			case core.EventUnitLeaseExpired:
				leasesLost++
			case core.EventIncident:
				incidents++
			case core.EventStudyFinished:
				if ev.Total == 0 {
					continue // cache-served: the study-cached line already told the story
				}
				fmt.Fprintf(w, "study: complete — %d/%d work units", ev.Done, ev.Total)
				if unitsCached > 0 {
					fmt.Fprintf(w, ", %d units served from the store", unitsCached)
				}
				if unitsRemote > 0 {
					fmt.Fprintf(w, ", %d units computed by fleet workers", unitsRemote)
				}
				if leasesLost > 0 {
					fmt.Fprintf(w, ", %d leases expired and re-queued", leasesLost)
				}
				if incidents > 0 {
					fmt.Fprintf(w, ", %d injected incidents", incidents)
				}
				fmt.Fprintln(w)
			case core.EventStudyFailed:
				if IsInterrupt(ev.Err) {
					fmt.Fprintf(w, "study: cancelled at %d/%d work units — draining cleanly\n", ev.Done, ev.Total)
				} else {
					fmt.Fprintf(w, "study: failed at %d/%d work units: %v\n", ev.Done, ev.Total, ev.Err)
				}
			}
		}
	}()
	return func() { <-done }
}
