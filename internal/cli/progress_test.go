package cli

import (
	"context"
	"errors"
	"flag"
	"strings"
	"testing"

	"cloudhpc/internal/core"
)

// TestProgressRendersSessionFeed drives the shared renderer with a real
// (small) Runner session and checks the feed's shape: a started line
// with the plan size, one line per environment, and the closing
// complete line.
func TestProgressRendersSessionFeed(t *testing.T) {
	t.Parallel()
	spec := &core.StudySpec{Seed: 550001, Envs: []string{"google-gke-cpu", "onprem-a-cpu"}, Scales: []int{2}, Iterations: 1}
	sess, err := (&core.Runner{}).Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	drain := Progress(&b, sess)
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	drain()
	out := b.String()
	for _, want := range []string{
		"study: started — 2 work units planned",
		"env google-gke-cpu",
		"env onprem-a-cpu",
		"study: complete — 2/2 work units",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress feed missing %q:\n%s", want, out)
		}
	}
}

// TestProgressReportsCancellation: an interrupted session renders the
// cancelled line, and IsInterrupt classifies its error.
func TestProgressReportsCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	spec := &core.StudySpec{Seed: 550002, Workers: 1}
	sess, err := (&core.Runner{}).Start(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	drain := Progress(&b, sess)
	cancel()
	_, err = sess.Wait()
	drain()
	if !IsInterrupt(err) {
		t.Fatalf("Wait after cancel = %v, want an interrupt error", err)
	}
	if !strings.Contains(b.String(), "study: cancelled") && !strings.Contains(b.String(), "study: started") {
		// The cancel may land before the executor emits anything; the feed
		// must at least not claim completion.
		t.Logf("feed: %q", b.String())
	}
	if strings.Contains(b.String(), "study: complete") {
		t.Fatalf("cancelled session rendered a completion line:\n%s", b.String())
	}
	if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

// TestProgressFlagParses pins the -progress flag's accepted values.
func TestProgressFlagParses(t *testing.T) {
	t.Parallel()
	for val, want := range map[string]bool{"on": true, "off": false} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := Register(fs, "")
		if err := fs.Parse([]string{"-progress", val}); err != nil {
			t.Fatal(err)
		}
		if got := f.progressOn(); got != want {
			t.Errorf("-progress %s: progressOn = %v, want %v", val, got, want)
		}
	}
	// auto under a test harness: stderr is not a terminal.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.progressOn() {
		t.Error("auto should disable the feed when stderr is not a terminal")
	}
}
