package oras_test

import (
	"fmt"

	"cloudhpc/internal/oras"
)

// The study's archival pattern: push run output as a tagged artifact,
// pull it back with digests verified end to end.
func ExampleRegistry_Push() {
	reg := oras.NewRegistry()
	_, err := reg.Push("results/gke/lammps-256", "application/vnd.cloudhpc.run.v1",
		map[string][]byte{"lammps.out": []byte("FOM 55.35 M-atom steps/s")},
		map[string]string{"nodes": "256"})
	if err != nil {
		panic(err)
	}
	files, err := reg.Pull("results/gke/lammps-256")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", files["lammps.out"])
	fmt.Printf("blobs stored: %d\n", reg.BlobCount())
	// Output:
	// FOM 55.35 M-atom steps/s
	// blobs stored: 1
}
