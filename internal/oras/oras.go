// Package oras implements the content-addressable OCI registry the study
// leaned on: container images were "deployed to the registry alongside the
// repository", and job output was "saved to file and pushed to a registry"
// via ORAS (paper §2.7, §2.9 — the release holds 25,541 run datasets).
//
// The model follows the OCI distribution spec's skeleton: blobs are
// addressed by SHA-256 digest, manifests reference blob descriptors plus
// an artifact type, and tags name manifests. Pushing identical content
// twice deduplicates, and every pull verifies digests end to end.
//
// Storage is pluggable: a Registry keeps *all* of its state — blobs,
// manifests (as canonical-JSON blobs), and tags (as refs) — in a
// store.BlobStore. NewRegistry uses the in-memory store (tests, transient
// runs); NewRegistryWith accepts any backend, and over store.Disk the
// registry is durable: a re-opened store yields a registry that resolves
// every previously pushed tag, which is what cmd/archive and the
// persistent result store build on.
package oras

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cloudhpc/internal/store"
)

// Digest is a "sha256:<hex>" content address.
type Digest string

// DigestOf computes the canonical digest of a byte string.
func DigestOf(data []byte) Digest {
	return Digest(store.DigestOf(data))
}

// Descriptor points at a blob: digest, size, and media type.
type Descriptor struct {
	MediaType string `json:"mediaType"`
	Digest    Digest `json:"digest"`
	Size      int64  `json:"size"`
	// Annotations carry ORAS-style metadata (file name, env, app...).
	Annotations map[string]string `json:"annotations,omitempty"`
}

// Manifest ties descriptors together under an artifact type.
type Manifest struct {
	ArtifactType string            `json:"artifactType"`
	Layers       []Descriptor      `json:"layers"`
	Annotations  map[string]string `json:"annotations,omitempty"`
}

// encode renders the manifest's canonical form: JSON with struct fields
// in declaration order and map keys sorted (encoding/json's map
// behaviour), so identical manifests always serialize identically. The
// encoding doubles as the stored representation, making the manifest its
// own content-addressed blob.
func (m Manifest) encode() ([]byte, error) {
	return json.Marshal(m)
}

// digest computes the manifest's own address from its canonical encoding.
func (m Manifest) digest() (Digest, error) {
	data, err := m.encode()
	if err != nil {
		return "", err
	}
	return DigestOf(data), nil
}

// Registry errors.
var (
	ErrBlobUnknown     = errors.New("oras: blob unknown to registry")
	ErrManifestUnknown = errors.New("oras: manifest unknown")
	ErrTagUnknown      = errors.New("oras: tag unknown")
	ErrDigestMismatch  = errors.New("oras: content does not match digest")
)

// Ref-name prefixes inside the blob store. Manifests are marked with a
// ref so the registry can tell them apart from content blobs without a
// separate index; tags are refs from name to manifest digest.
const (
	manifestRefPrefix = "oras/manifest/"
	tagRefPrefix      = "oras/tag/"
)

// Registry is a content-addressed OCI registry over a pluggable blob
// store. Safe for concurrent use within one process: the backends
// serialize their own state, concurrent pushes are idempotent, and the
// registry's own lock makes GC mutually exclusive with reads and with
// the one-shot Push verb (a sweep between a layer's Put and its
// manifest's existence check could otherwise collect blobs nothing
// references *yet*). Hand-composing PushBlob → PushManifest → Tag holds
// the lock only per call, so do not run a composed push concurrently
// with GC. Sharing one backend directory between processes is safe for
// pushes but not for GC.
type Registry struct {
	// mu is held shared by every push/read operation and exclusively by
	// GC: pushes may interleave freely with each other, never with a
	// sweep.
	mu    sync.RWMutex
	blobs store.BlobStore

	// pins are digests GC must treat as live even though no tag reaches
	// them yet: blobs landed by a store-sync ingest whose refs have not
	// arrived. An in-flight Push is protected by mu; a sync spans many
	// RPC round trips and cannot hold a lock that long, so it pins
	// instead (see Pin).
	pinMu sync.Mutex
	pins  map[string]int
}

// NewRegistry returns an empty registry over an in-memory store.
func NewRegistry() *Registry {
	return NewRegistryWith(store.NewMemory())
}

// NewRegistryWith returns a registry over the given backend. Over a
// store.Disk backend the registry is persistent: every blob, manifest,
// and tag previously pushed into the same directory is visible.
func NewRegistryWith(bs store.BlobStore) *Registry {
	return &Registry{blobs: bs}
}

// Backend returns the registry's blob store.
func (r *Registry) Backend() store.BlobStore { return r.blobs }

// PushBlob stores content and returns its descriptor. Identical content
// deduplicates to the same digest.
func (r *Registry) PushBlob(mediaType string, data []byte) (Descriptor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, err := r.blobs.Put(data)
	if err != nil {
		return Descriptor{}, err
	}
	return Descriptor{MediaType: mediaType, Digest: Digest(d), Size: int64(len(data))}, nil
}

// FetchBlob retrieves and verifies a blob.
func (r *Registry) FetchBlob(d Digest) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fetchBlobLocked(d)
}

func (r *Registry) fetchBlobLocked(d Digest) ([]byte, error) {
	data, err := r.blobs.Get(string(d))
	switch {
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrBadDigest):
		return nil, fmt.Errorf("%w: %s", ErrBlobUnknown, d)
	case errors.Is(err, store.ErrCorrupt):
		return nil, fmt.Errorf("%w: %s", ErrDigestMismatch, d)
	case err != nil:
		return nil, err
	}
	return data, nil
}

// PushManifest stores a manifest after checking every referenced layer
// exists, and returns the manifest digest.
func (r *Registry) PushManifest(m Manifest) (Digest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pushManifestLocked(m)
}

func (r *Registry) pushManifestLocked(m Manifest) (Digest, error) {
	for _, l := range m.Layers {
		if !r.blobs.Has(string(l.Digest)) {
			return "", fmt.Errorf("%w: manifest references %s", ErrBlobUnknown, l.Digest)
		}
	}
	data, err := m.encode()
	if err != nil {
		return "", err
	}
	dig, err := r.blobs.Put(data)
	if err != nil {
		return "", err
	}
	if err := r.blobs.SetRef(manifestRefPrefix+dig, dig); err != nil {
		return "", err
	}
	return Digest(dig), nil
}

// Tag points a name at a manifest digest.
func (r *Registry) Tag(name string, d Digest) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tagLocked(name, d)
}

func (r *Registry) tagLocked(name string, d Digest) error {
	if _, ok := r.blobs.Ref(manifestRefPrefix + string(d)); !ok {
		return fmt.Errorf("%w: %s", ErrManifestUnknown, d)
	}
	return r.blobs.SetRef(tagRefPrefix+name, string(d))
}

// Resolve returns the manifest a tag points at.
func (r *Registry) Resolve(name string) (Manifest, Digest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resolveLocked(name)
}

func (r *Registry) resolveLocked(name string) (Manifest, Digest, error) {
	dig, ok := r.blobs.Ref(tagRefPrefix + name)
	if !ok {
		return Manifest{}, "", fmt.Errorf("%w: %q", ErrTagUnknown, name)
	}
	m, err := r.manifestAt(Digest(dig))
	if err != nil {
		return Manifest{}, "", err
	}
	return m, Digest(dig), nil
}

// manifestAt fetches and decodes a stored manifest blob.
func (r *Registry) manifestAt(d Digest) (Manifest, error) {
	data, err := r.blobs.Get(string(d))
	switch {
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrBadDigest):
		return Manifest{}, fmt.Errorf("%w: %s", ErrManifestUnknown, d)
	case errors.Is(err, store.ErrCorrupt):
		return Manifest{}, fmt.Errorf("%w: manifest %s", ErrDigestMismatch, d)
	case err != nil:
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("oras: decoding manifest %s: %w", d, err)
	}
	return m, nil
}

// Tags lists all tag names, sorted.
func (r *Registry) Tags() []string {
	var out []string
	for _, ref := range r.blobs.Refs() {
		if name, ok := strings.CutPrefix(ref, tagRefPrefix); ok {
			out = append(out, name)
		}
	}
	return out // Refs() is sorted and the prefix is constant, so out is too
}

// BlobCount reports the number of content blobs (dedup visible here);
// manifest blobs are accounted separately by ManifestCount.
func (r *Registry) BlobCount() int {
	return r.blobs.Len() - r.ManifestCount()
}

// ManifestCount reports the number of stored manifests.
func (r *Registry) ManifestCount() int {
	n := 0
	for _, ref := range r.blobs.Refs() {
		if strings.HasPrefix(ref, manifestRefPrefix) {
			n++
		}
	}
	return n
}

// LiveDigests returns the digests reachable from the registry's tags:
// every tagged manifest blob plus every layer those manifests reference.
// Tags are the roots — a manifest no tag points at anymore (a bundle
// whose tag moved to a newer push) is garbage, which is exactly what GC
// exists to reclaim. Anything else in the backend also counts as
// garbage here; a caller sharing the store with other users must union
// in their live sets.
func (r *Registry) LiveDigests() (map[string]bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.liveDigestsLocked()
}

func (r *Registry) liveDigestsLocked() (map[string]bool, error) {
	live := map[string]bool{}
	for _, ref := range r.blobs.Refs() {
		if !strings.HasPrefix(ref, tagRefPrefix) {
			continue
		}
		dig, ok := r.blobs.Ref(ref)
		if !ok {
			continue
		}
		live[dig] = true
		m, err := r.manifestAt(Digest(dig))
		if err != nil {
			continue // corrupt manifest: keep the blob, skip its layers
		}
		for _, l := range m.Layers {
			live[string(l.Digest)] = true
		}
	}
	return live, nil
}

// SyncInventory snapshots the backend's sync manifest (see
// store.TakeInventory) under the registry's shared lock, so a
// concurrent GC cannot tear the snapshot between the blob scan and the
// ref filter.
func (r *Registry) SyncInventory() store.Inventory {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return store.TakeInventory(r.blobs)
}

// IngestBlob stores sync-delivered bytes and pins the resulting digest
// until release runs. Put and Pin happen under the registry's shared
// lock, so a GC sweep can never land between them — the ingested blob
// is continuously protected from the moment it exists until its refs
// arrive (or the ingest is abandoned and release runs anyway).
func (r *Registry) IngestBlob(data []byte) (digest string, release func(), err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, err := r.blobs.Put(data)
	if err != nil {
		return "", nil, err
	}
	return d, r.Pin(d), nil
}

// ReconcileRefs applies a sync ref batch last-writer-wins, skipping any
// name whose target blob the backend does not hold — a ref must never
// outrun its content. It runs under the registry's shared lock, so the
// presence check and the application cannot interleave with a GC sweep.
func (r *Registry) ReconcileRefs(refs map[string]string) (applied, skipped int, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	apply := make(map[string]string, len(refs))
	for name, d := range refs {
		if r.blobs.Has(d) {
			apply[name] = d
		} else {
			skipped++
		}
	}
	if len(apply) == 0 {
		return 0, skipped, nil
	}
	if err := r.blobs.SetRefs(apply); err != nil {
		return 0, skipped, err
	}
	return len(apply), skipped, nil
}

// Pin marks digests as live for GC until the returned release runs —
// how a store-sync ingest keeps just-transferred blobs alive across the
// window between their Put and the ref batch that anchors them, the
// same protection an in-flight Push gets from the registry lock.
// Pins nest (the same digest pinned twice needs two releases); release
// is idempotent.
func (r *Registry) Pin(digests ...string) (release func()) {
	r.pinMu.Lock()
	if r.pins == nil {
		r.pins = make(map[string]int)
	}
	for _, d := range digests {
		r.pins[d]++
	}
	r.pinMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.pinMu.Lock()
			for _, d := range digests {
				if r.pins[d]--; r.pins[d] <= 0 {
					delete(r.pins, d)
				}
			}
			r.pinMu.Unlock()
		})
	}
}

// pinned snapshots the currently pinned digests.
func (r *Registry) pinned() map[string]bool {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	out := make(map[string]bool, len(r.pins))
	for d := range r.pins {
		out[d] = true
	}
	return out
}

// GC reclaims everything no tag reaches: it drops the manifest markers
// of untagged manifests (so the refs stop pinning their blobs) and then
// sweeps the unreachable blobs. The exclusive lock makes the sweep
// mutually exclusive with in-flight pushes and reads — a push's layers
// cannot be collected between their Put and the manifest's existence
// check, and a Pull cannot fetch a manifest mid-sweep. Pinned digests
// (in-flight sync ingests, whose refs have not landed yet) survive the
// sweep exactly like tagged content. Returns how many blobs were
// removed.
func (r *Registry) GC() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live, err := r.liveDigestsLocked()
	if err != nil {
		return 0, err
	}
	for d := range r.pinned() {
		live[d] = true
	}
	var stale []string
	for _, ref := range r.blobs.Refs() {
		if dig, ok := strings.CutPrefix(ref, manifestRefPrefix); ok && !live[dig] {
			stale = append(stale, ref)
		}
	}
	if err := r.blobs.DeleteRefs(stale); err != nil {
		return 0, err
	}
	return r.blobs.GC(live)
}

// Push is the ORAS convenience verb: store files as layers under one
// manifest and tag it. Files map name → content; names land in layer
// annotations like `oras push` does, in sorted name order so the layer
// list — and therefore the manifest digest — is deterministic.
func (r *Registry) Push(tag, artifactType string, files map[string][]byte, annotations map[string]string) (Digest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	m := Manifest{ArtifactType: artifactType, Annotations: annotations}
	for _, n := range names {
		dig, err := r.blobs.Put(files[n])
		if err != nil {
			return "", err
		}
		m.Layers = append(m.Layers, Descriptor{
			MediaType: "application/octet-stream", Digest: Digest(dig), Size: int64(len(files[n])),
			Annotations: map[string]string{"org.opencontainers.image.title": n},
		})
	}
	// One batched ref update covers the manifest marker and the tag, so
	// an artifact push persists the backing index once, not twice.
	data, err := m.encode()
	if err != nil {
		return "", err
	}
	dig, err := r.blobs.Put(data)
	if err != nil {
		return "", err
	}
	if err := r.blobs.SetRefs(map[string]string{
		manifestRefPrefix + dig: dig,
		tagRefPrefix + tag:      dig,
	}); err != nil {
		return "", err
	}
	return Digest(dig), nil
}

// Pull fetches all files of a tagged artifact.
func (r *Registry) Pull(tag string) (map[string][]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, _, err := r.resolveLocked(tag)
	if err != nil {
		return nil, err
	}
	return r.pullManifestLocked(m)
}

// PullDigest fetches all files of an artifact by its manifest digest,
// with no tag in between — how the fleet coordinator reads a pushed unit
// artifact for verification before any ref anchors it. The manifest blob
// need not carry a manifest marker yet (sync-delivered blobs are plain
// ingests); it only has to decode as a manifest whose layers are present.
func (r *Registry) PullDigest(d Digest) (map[string][]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.manifestAt(d)
	if err != nil {
		return nil, err
	}
	return r.pullManifestLocked(m)
}

func (r *Registry) pullManifestLocked(m Manifest) (map[string][]byte, error) {
	out := make(map[string][]byte, len(m.Layers))
	for i, l := range m.Layers {
		data, err := r.fetchBlobLocked(l.Digest)
		if err != nil {
			return nil, err
		}
		name := l.Annotations["org.opencontainers.image.title"]
		if name == "" {
			name = fmt.Sprintf("layer-%d", i)
		}
		out[name] = data
	}
	return out, nil
}

// TagIfAbsent points a name at a manifest digest only if the name is
// currently unbound — first-write-wins, the property that makes duplicate
// fleet completions harmless: the first verified artifact claims the tag
// and every later completion of the same unit becomes a no-op. Unlike
// Tag, the target may be a plain ingested blob; it is validated here (it
// must decode as a manifest and every layer must be present) and gains
// its manifest marker together with the tag. The exclusive lock makes the
// absence check and the ref write atomic against concurrent taggers.
func (r *Registry) TagIfAbsent(name string, d Digest) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.blobs.Ref(tagRefPrefix + name); ok {
		return false, nil
	}
	m, err := r.manifestAt(d)
	if err != nil {
		return false, err
	}
	for _, l := range m.Layers {
		if !r.blobs.Has(string(l.Digest)) {
			return false, fmt.Errorf("%w: manifest references %s", ErrBlobUnknown, l.Digest)
		}
	}
	if err := r.blobs.SetRefs(map[string]string{
		manifestRefPrefix + string(d): string(d),
		tagRefPrefix + name:           string(d),
	}); err != nil {
		return false, err
	}
	return true, nil
}
