// Package oras implements the content-addressable OCI registry the study
// leaned on: container images were "deployed to the registry alongside the
// repository", and job output was "saved to file and pushed to a registry"
// via ORAS (paper §2.7, §2.9 — the release holds 25,541 run datasets).
//
// The model follows the OCI distribution spec's skeleton: blobs are
// addressed by SHA-256 digest, manifests reference blob descriptors plus
// an artifact type, and tags name manifests. Pushing identical content
// twice deduplicates, and every pull verifies digests end to end.
package oras

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Digest is a "sha256:<hex>" content address.
type Digest string

// DigestOf computes the canonical digest of a byte string.
func DigestOf(data []byte) Digest {
	sum := sha256.Sum256(data)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

// Descriptor points at a blob: digest, size, and media type.
type Descriptor struct {
	MediaType string
	Digest    Digest
	Size      int64
	// Annotations carry ORAS-style metadata (file name, env, app...).
	Annotations map[string]string
}

// Manifest ties descriptors together under an artifact type.
type Manifest struct {
	ArtifactType string
	Layers       []Descriptor
	Annotations  map[string]string
}

// digest computes the manifest's own address from its canonical encoding.
func (m Manifest) digest() Digest {
	// Canonical encoding: artifact type, then layers in order, then
	// sorted annotations. Good enough for identity inside the simulation.
	s := "artifactType=" + m.ArtifactType + "\n"
	for _, l := range m.Layers {
		s += fmt.Sprintf("layer %s %s %d\n", l.MediaType, l.Digest, l.Size)
	}
	keys := make([]string, 0, len(m.Annotations))
	for k := range m.Annotations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s += k + "=" + m.Annotations[k] + "\n"
	}
	return DigestOf([]byte(s))
}

// Registry errors.
var (
	ErrBlobUnknown     = errors.New("oras: blob unknown to registry")
	ErrManifestUnknown = errors.New("oras: manifest unknown")
	ErrTagUnknown      = errors.New("oras: tag unknown")
	ErrDigestMismatch  = errors.New("oras: content does not match digest")
)

// Registry is an in-memory OCI registry. Safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	blobs     map[Digest][]byte
	manifests map[Digest]Manifest
	tags      map[string]Digest
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		blobs:     make(map[Digest][]byte),
		manifests: make(map[Digest]Manifest),
		tags:      make(map[string]Digest),
	}
}

// PushBlob stores content and returns its descriptor. Identical content
// deduplicates to the same digest.
func (r *Registry) PushBlob(mediaType string, data []byte) Descriptor {
	d := DigestOf(data)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.blobs[d]; !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		r.blobs[d] = cp
	}
	return Descriptor{MediaType: mediaType, Digest: d, Size: int64(len(data))}
}

// FetchBlob retrieves and verifies a blob.
func (r *Registry) FetchBlob(d Digest) ([]byte, error) {
	r.mu.RLock()
	data, ok := r.blobs[d]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobUnknown, d)
	}
	if DigestOf(data) != d {
		return nil, fmt.Errorf("%w: %s", ErrDigestMismatch, d)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// PushManifest stores a manifest after checking every referenced layer
// exists, and returns the manifest digest.
func (r *Registry) PushManifest(m Manifest) (Digest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range m.Layers {
		if _, ok := r.blobs[l.Digest]; !ok {
			return "", fmt.Errorf("%w: manifest references %s", ErrBlobUnknown, l.Digest)
		}
	}
	d := m.digest()
	r.manifests[d] = m
	return d, nil
}

// Tag points a name at a manifest digest.
func (r *Registry) Tag(name string, d Digest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.manifests[d]; !ok {
		return fmt.Errorf("%w: %s", ErrManifestUnknown, d)
	}
	r.tags[name] = d
	return nil
}

// Resolve returns the manifest a tag points at.
func (r *Registry) Resolve(name string) (Manifest, Digest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.tags[name]
	if !ok {
		return Manifest{}, "", fmt.Errorf("%w: %q", ErrTagUnknown, name)
	}
	return r.manifests[d], d, nil
}

// Tags lists all tag names, sorted.
func (r *Registry) Tags() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tags))
	for t := range r.tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// BlobCount and ManifestCount report store sizes (dedup visible here).
func (r *Registry) BlobCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.blobs)
}

func (r *Registry) ManifestCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.manifests)
}

// Push is the ORAS convenience verb: store files as layers under one
// manifest and tag it. Files map name → content; names land in layer
// annotations like `oras push` does.
func (r *Registry) Push(tag, artifactType string, files map[string][]byte, annotations map[string]string) (Digest, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	m := Manifest{ArtifactType: artifactType, Annotations: annotations}
	for _, n := range names {
		desc := r.PushBlob("application/octet-stream", files[n])
		desc.Annotations = map[string]string{"org.opencontainers.image.title": n}
		m.Layers = append(m.Layers, desc)
	}
	d, err := r.PushManifest(m)
	if err != nil {
		return "", err
	}
	return d, r.Tag(tag, d)
}

// Pull fetches all files of a tagged artifact.
func (r *Registry) Pull(tag string) (map[string][]byte, error) {
	m, _, err := r.Resolve(tag)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(m.Layers))
	for i, l := range m.Layers {
		data, err := r.FetchBlob(l.Digest)
		if err != nil {
			return nil, err
		}
		name := l.Annotations["org.opencontainers.image.title"]
		if name == "" {
			name = fmt.Sprintf("layer-%d", i)
		}
		out[name] = data
	}
	return out, nil
}
