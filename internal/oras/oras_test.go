package oras

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"cloudhpc/internal/store"
)

func TestDigestOfStable(t *testing.T) {
	t.Parallel()
	a := DigestOf([]byte("hello"))
	b := DigestOf([]byte("hello"))
	if a != b {
		t.Fatalf("digest not deterministic")
	}
	if a == DigestOf([]byte("world")) {
		t.Fatalf("different content same digest")
	}
	if a[:7] != "sha256:" {
		t.Fatalf("digest format: %s", a)
	}
}

func TestPushFetchBlob(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc, err := r.PushBlob("text/plain", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if desc.Size != 4 {
		t.Fatalf("size = %d", desc.Size)
	}
	got, err := r.FetchBlob(desc.Digest)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("fetch: %q %v", got, err)
	}
	if _, err := r.FetchBlob("sha256:0000"); !errors.Is(err, ErrBlobUnknown) {
		t.Fatalf("unknown blob: %v", err)
	}
}

func TestBlobDeduplication(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.PushBlob("a", []byte("same"))
	r.PushBlob("b", []byte("same"))
	if r.BlobCount() != 1 {
		t.Fatalf("identical content should deduplicate, have %d blobs", r.BlobCount())
	}
}

func TestFetchReturnsCopy(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc, _ := r.PushBlob("t", []byte("immutable"))
	got, _ := r.FetchBlob(desc.Digest)
	got[0] = 'X'
	again, _ := r.FetchBlob(desc.Digest)
	if again[0] != 'i' {
		t.Fatalf("registry content mutated through a fetch")
	}
}

func TestManifestNeedsLayers(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	_, err := r.PushManifest(Manifest{Layers: []Descriptor{{Digest: "sha256:missing"}}})
	if !errors.Is(err, ErrBlobUnknown) {
		t.Fatalf("dangling layer accepted: %v", err)
	}
}

func TestTagResolve(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc, _ := r.PushBlob("t", []byte("x"))
	d, err := r.PushManifest(Manifest{ArtifactType: "test", Layers: []Descriptor{desc}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Tag("v1", d); err != nil {
		t.Fatal(err)
	}
	m, got, err := r.Resolve("v1")
	if err != nil || got != d || m.ArtifactType != "test" {
		t.Fatalf("resolve: %v %v", got, err)
	}
	if err := r.Tag("bad", "sha256:nope"); !errors.Is(err, ErrManifestUnknown) {
		t.Fatalf("tagging unknown manifest: %v", err)
	}
	if _, _, err := r.Resolve("absent"); !errors.Is(err, ErrTagUnknown) {
		t.Fatalf("unknown tag: %v", err)
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	files := map[string][]byte{
		"lammps-256.out": []byte("FOM 443.9"),
		"hostfile":       []byte("node0\nnode1"),
	}
	if _, err := r.Push("results/run1", "app/results", files, map[string]string{"env": "gke"}); err != nil {
		t.Fatal(err)
	}
	got, err := r.Pull("results/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got["lammps-256.out"], files["lammps-256.out"]) {
		t.Fatalf("round trip lost data: %v", got)
	}
	tags := r.Tags()
	if len(tags) != 1 || tags[0] != "results/run1" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestManifestDigestCanonical(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc, _ := r.PushBlob("t", []byte("x"))
	m1 := Manifest{ArtifactType: "a", Layers: []Descriptor{desc},
		Annotations: map[string]string{"k1": "v1", "k2": "v2"}}
	m2 := Manifest{ArtifactType: "a", Layers: []Descriptor{desc},
		Annotations: map[string]string{"k2": "v2", "k1": "v1"}}
	d1, _ := r.PushManifest(m1)
	d2, _ := r.PushManifest(m2)
	if d1 != d2 {
		t.Fatalf("annotation order changed manifest identity")
	}
}

func TestConcurrentPushes(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				data := []byte{byte(i), byte(j)}
				desc, err := r.PushBlob("t", data)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if got, err := r.FetchBlob(desc.Digest); err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent fetch mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if r.BlobCount() != 16*50 {
		t.Fatalf("blob count = %d", r.BlobCount())
	}
}

func TestBlobRoundTripProperty(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	f := func(data []byte) bool {
		desc, err := r.PushBlob("t", data)
		if err != nil {
			return false
		}
		got, err := r.FetchBlob(desc.Digest)
		return err == nil && bytes.Equal(got, data) && desc.Size == int64(len(data))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryPersistsOverDiskStore proves the pluggable backend end to
// end: a registry over a disk store survives process exit — reopening the
// same directory yields a registry that resolves every tag and verifies
// every blob.
func TestRegistryPersistsOverDiskStore(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	bs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRegistryWith(bs)
	files := map[string][]byte{"runs.jsonl": []byte(`{"env":"e"}` + "\n")}
	if _, err := r1.Push("results/e/app", "app/results", files, map[string]string{"records": "1"}); err != nil {
		t.Fatal(err)
	}

	bs2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistryWith(bs2)
	if tags := r2.Tags(); len(tags) != 1 || tags[0] != "results/e/app" {
		t.Fatalf("tags after reopen = %v", tags)
	}
	got, err := r2.Pull("results/e/app")
	if err != nil || !bytes.Equal(got["runs.jsonl"], files["runs.jsonl"]) {
		t.Fatalf("pull after reopen: %v %q", err, got)
	}
	if r2.BlobCount() != 1 || r2.ManifestCount() != 1 {
		t.Fatalf("counts after reopen: %d blobs, %d manifests", r2.BlobCount(), r2.ManifestCount())
	}
}

// TestFetchCorruptBlobReportsMismatch pins the verification path: bytes
// damaged underneath the registry surface as ErrDigestMismatch, never as
// silently wrong content.
func TestFetchCorruptBlobReportsMismatch(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	desc, _ := r.PushBlob("t", []byte("pristine"))
	bs.Corrupt(string(desc.Digest))
	if _, err := r.FetchBlob(desc.Digest); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("want ErrDigestMismatch, got %v", err)
	}
}

// TestLiveDigestsCoverManifestClosure: GC against the registry's live set
// sweeps an untagged orphan blob but keeps every manifest and layer.
func TestLiveDigestsCoverManifestClosure(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	if _, err := r.Push("keep", "t", map[string][]byte{"a": []byte("layer-a")}, nil); err != nil {
		t.Fatal(err)
	}
	orphan, _ := bs.Put([]byte("orphan"))
	live, err := r.LiveDigests()
	if err != nil {
		t.Fatal(err)
	}
	removed, err := bs.GC(live)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || bs.Has(orphan) {
		t.Fatalf("gc removed %d, orphan present=%v", removed, bs.Has(orphan))
	}
	if _, err := r.Pull("keep"); err != nil {
		t.Fatalf("gc broke a tagged artifact: %v", err)
	}
}

// TestGCExcludesInFlightPushes races GC sweeps against artifact pushes:
// the registry's lock must prevent a sweep from collecting layer blobs
// between their Put and their manifest's existence check, so every
// pushed artifact pulls back intact.
func TestGCExcludesInFlightPushes(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := r.GC(); err != nil {
				t.Errorf("gc: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		tag := fmt.Sprintf("results/run-%d", i)
		if _, err := r.Push(tag, "t", map[string][]byte{"out": []byte(fmt.Sprintf("payload %d", i))}, nil); err != nil {
			t.Fatalf("push %s: %v", tag, err)
		}
		if _, err := r.Pull(tag); err != nil {
			t.Fatalf("pull %s after concurrent gc: %v", tag, err)
		}
	}
	<-done
}

// TestGCReclaimsSupersededArtifacts: when a tag moves to a new manifest,
// the old manifest and its unshared layers become unreachable and GC
// must actually reclaim them (tags are the liveness roots — manifest
// markers alone must not pin garbage forever).
func TestGCReclaimsSupersededArtifacts(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	if _, err := r.Push("results/x", "t", map[string][]byte{"a": []byte("version one")}, nil); err != nil {
		t.Fatal(err)
	}
	before := bs.Len()
	if _, err := r.Push("results/x", "t", map[string][]byte{"a": []byte("version two")}, nil); err != nil {
		t.Fatal(err)
	}
	removed, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	// The superseded manifest and its layer must both go.
	if removed != 2 {
		t.Fatalf("gc removed %d blobs, want 2 (old layer + old manifest)", removed)
	}
	if bs.Len() != before {
		t.Fatalf("store holds %d blobs after gc, want %d", bs.Len(), before)
	}
	if r.ManifestCount() != 1 {
		t.Fatalf("manifest count = %d, want 1", r.ManifestCount())
	}
	got, err := r.Pull("results/x")
	if err != nil || string(got["a"]) != "version two" {
		t.Fatalf("live artifact damaged by gc: %v %q", err, got)
	}
	// Idempotent: nothing left to sweep.
	if removed, _ := r.GC(); removed != 0 {
		t.Fatalf("second gc removed %d", removed)
	}
}

// TestGCExcludesPinnedSyncIngests: a blob delivered by a store sync has
// no ref until the peer's ref batch lands, so only its pin keeps GC
// away. Pinned it must survive a sweep; released it is garbage again.
func TestGCExcludesPinnedSyncIngests(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	d, release, err := r.IngestBlob([]byte("mid-sync payload"))
	if err != nil {
		t.Fatal(err)
	}
	if removed, err := r.GC(); err != nil || removed != 0 {
		t.Fatalf("gc swept a pinned sync ingest: removed=%d err=%v", removed, err)
	}
	if !bs.Has(d) {
		t.Fatal("pinned blob gone after gc")
	}
	release()
	release() // idempotent
	if removed, err := r.GC(); err != nil || removed != 1 {
		t.Fatalf("gc after release: removed=%d err=%v, want 1", removed, err)
	}
	if bs.Has(d) {
		t.Fatal("released unanchored blob survived gc")
	}
}

// TestPinNesting: the same digest pinned twice needs two releases
// before GC may take it.
func TestPinNesting(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	d, rel1, err := r.IngestBlob([]byte("doubly wanted"))
	if err != nil {
		t.Fatal(err)
	}
	rel2 := r.Pin(d)
	rel1()
	if removed, _ := r.GC(); removed != 0 {
		t.Fatalf("gc ignored the remaining pin: removed=%d", removed)
	}
	rel2()
	if removed, _ := r.GC(); removed != 1 {
		t.Fatalf("gc after final release: removed=%d, want 1", removed)
	}
}

// TestReconcileRefsSkipsMissingTargets: a sync ref batch may reference
// blobs the backend lost (or that GC swept between POSTs over HTTP) —
// those names must be skipped, never applied dangling.
func TestReconcileRefsSkipsMissingTargets(t *testing.T) {
	t.Parallel()
	bs := store.NewMemory()
	r := NewRegistryWith(bs)
	d, err := bs.Put([]byte("present"))
	if err != nil {
		t.Fatal(err)
	}
	absent := string(DigestOf([]byte("never stored")))
	applied, skipped, err := r.ReconcileRefs(map[string]string{
		"oras/tag/study/here":  d,
		"oras/tag/study/there": absent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", applied, skipped)
	}
	if got, ok := bs.Ref("oras/tag/study/here"); !ok || got != d {
		t.Fatalf("servable ref not applied: %q %v", got, ok)
	}
	if _, ok := bs.Ref("oras/tag/study/there"); ok {
		t.Fatal("dangling ref applied")
	}
}
