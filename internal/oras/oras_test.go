package oras

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestDigestOfStable(t *testing.T) {
	t.Parallel()
	a := DigestOf([]byte("hello"))
	b := DigestOf([]byte("hello"))
	if a != b {
		t.Fatalf("digest not deterministic")
	}
	if a == DigestOf([]byte("world")) {
		t.Fatalf("different content same digest")
	}
	if a[:7] != "sha256:" {
		t.Fatalf("digest format: %s", a)
	}
}

func TestPushFetchBlob(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc := r.PushBlob("text/plain", []byte("data"))
	if desc.Size != 4 {
		t.Fatalf("size = %d", desc.Size)
	}
	got, err := r.FetchBlob(desc.Digest)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("fetch: %q %v", got, err)
	}
	if _, err := r.FetchBlob("sha256:0000"); !errors.Is(err, ErrBlobUnknown) {
		t.Fatalf("unknown blob: %v", err)
	}
}

func TestBlobDeduplication(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.PushBlob("a", []byte("same"))
	r.PushBlob("b", []byte("same"))
	if r.BlobCount() != 1 {
		t.Fatalf("identical content should deduplicate, have %d blobs", r.BlobCount())
	}
}

func TestFetchReturnsCopy(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc := r.PushBlob("t", []byte("immutable"))
	got, _ := r.FetchBlob(desc.Digest)
	got[0] = 'X'
	again, _ := r.FetchBlob(desc.Digest)
	if again[0] != 'i' {
		t.Fatalf("registry content mutated through a fetch")
	}
}

func TestManifestNeedsLayers(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	_, err := r.PushManifest(Manifest{Layers: []Descriptor{{Digest: "sha256:missing"}}})
	if !errors.Is(err, ErrBlobUnknown) {
		t.Fatalf("dangling layer accepted: %v", err)
	}
}

func TestTagResolve(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc := r.PushBlob("t", []byte("x"))
	d, err := r.PushManifest(Manifest{ArtifactType: "test", Layers: []Descriptor{desc}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Tag("v1", d); err != nil {
		t.Fatal(err)
	}
	m, got, err := r.Resolve("v1")
	if err != nil || got != d || m.ArtifactType != "test" {
		t.Fatalf("resolve: %v %v", got, err)
	}
	if err := r.Tag("bad", "sha256:nope"); !errors.Is(err, ErrManifestUnknown) {
		t.Fatalf("tagging unknown manifest: %v", err)
	}
	if _, _, err := r.Resolve("absent"); !errors.Is(err, ErrTagUnknown) {
		t.Fatalf("unknown tag: %v", err)
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	files := map[string][]byte{
		"lammps-256.out": []byte("FOM 443.9"),
		"hostfile":       []byte("node0\nnode1"),
	}
	if _, err := r.Push("results/run1", "app/results", files, map[string]string{"env": "gke"}); err != nil {
		t.Fatal(err)
	}
	got, err := r.Pull("results/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got["lammps-256.out"], files["lammps-256.out"]) {
		t.Fatalf("round trip lost data: %v", got)
	}
	tags := r.Tags()
	if len(tags) != 1 || tags[0] != "results/run1" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestManifestDigestCanonical(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	desc := r.PushBlob("t", []byte("x"))
	m1 := Manifest{ArtifactType: "a", Layers: []Descriptor{desc},
		Annotations: map[string]string{"k1": "v1", "k2": "v2"}}
	m2 := Manifest{ArtifactType: "a", Layers: []Descriptor{desc},
		Annotations: map[string]string{"k2": "v2", "k1": "v1"}}
	d1, _ := r.PushManifest(m1)
	d2, _ := r.PushManifest(m2)
	if d1 != d2 {
		t.Fatalf("annotation order changed manifest identity")
	}
}

func TestConcurrentPushes(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				data := []byte{byte(i), byte(j)}
				desc := r.PushBlob("t", data)
				if got, err := r.FetchBlob(desc.Digest); err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent fetch mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if r.BlobCount() != 16*50 {
		t.Fatalf("blob count = %d", r.BlobCount())
	}
}

func TestBlobRoundTripProperty(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	f := func(data []byte) bool {
		desc := r.PushBlob("t", data)
		got, err := r.FetchBlob(desc.Digest)
		return err == nil && bytes.Equal(got, data) && desc.Size == int64(len(data))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
