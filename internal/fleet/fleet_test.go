package fleet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/core"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/fleet"
	"cloudhpc/internal/store"
)

// fastOpts are coordinator timings scaled for tests: leases expire in
// tens of milliseconds and backoffs are short, so the failure paths run
// in real time without slow tests.
func fastOpts() fleet.Options {
	return fleet.Options{
		LeaseTTL:     50 * time.Millisecond,
		MaxAttempts:  3,
		Straggler:    5 * time.Second,
		RequeueDelay: 5 * time.Millisecond,
		MaxClaimWait: 100 * time.Millisecond,
	}
}

func newStore(t *testing.T) *core.ResultStore {
	t.Helper()
	return core.NewResultStore(store.NewMemory())
}

// makeWork builds a self-consistent unit work tuple the same way the
// executor does: the key is the sub-hash of exactly these coordinates.
func makeWork(t *testing.T, seed uint64, envKey, app string, scales []int, iters int) core.UnitWork {
	t.Helper()
	env, err := apps.EnvByKey(envKey)
	if err != nil {
		t.Fatal(err)
	}
	env.Scales = scales
	return core.UnitWork{
		Key:        core.UnitKey(seed, env, app, iters, nil),
		Seed:       seed,
		Env:        envKey,
		Scales:     scales,
		App:        app,
		Iterations: iters,
	}
}

// pushArtifact computes a unit honestly and stages its artifact in the
// shared store under a staging tag — what a worker's store.put upload
// achieves — returning the manifest digest for Complete.
func pushArtifact(t *testing.T, rs *core.ResultStore, work core.UnitWork) string {
	t.Helper()
	files, err := core.ComputeUnitFiles(work)
	if err != nil {
		t.Fatalf("compute unit %s: %v", work.Key, err)
	}
	dig, err := rs.Registry().Push("staging/"+work.Key, dataset.UnitArtifactType, files, nil)
	if err != nil {
		t.Fatalf("staging unit %s: %v", work.Key, err)
	}
	return string(dig)
}

func register(t *testing.T, co *fleet.Coordinator) string {
	t.Helper()
	reg, err := co.Register("test-worker", "test")
	if err != nil {
		t.Fatal(err)
	}
	return reg.Worker
}

// claimOne polls until the worker holds a lease or the deadline passes.
func claimOne(t *testing.T, co *fleet.Coordinator, worker string) *fleet.Assignment {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a, err := co.Claim(context.Background(), worker, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("claim: %v", err)
		}
		if a != nil {
			return a
		}
	}
	t.Fatal("no unit claimable within 5s")
	return nil
}

func TestOffloadCompleteRoundTrip(t *testing.T) {
	rs := newStore(t)
	co := fleet.New(fastOpts(), rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 101, "google-gke-cpu", "lammps", []int{2, 4}, 1)

	var events []core.EventKind
	var evMu sync.Mutex
	done := make(chan bool, 1)
	go func() {
		done <- co.Offload(context.Background(), work, func(k core.EventKind) {
			evMu.Lock()
			events = append(events, k)
			evMu.Unlock()
		})
	}()

	a := claimOne(t, co, worker)
	if a.Work.Key != work.Key {
		t.Fatalf("claimed key %s, published %s", a.Work.Key, work.Key)
	}
	dup, err := co.Complete(worker, a.Lease, work.Key, pushArtifact(t, rs, work))
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if dup {
		t.Fatal("first completion reported duplicate")
	}
	if !<-done {
		t.Fatal("offload reported fallback after a verified completion")
	}
	// The accepted artifact must be loadable exactly like a warm store
	// hit: the unit ref landed under its key.
	if _, err := rs.Registry().Pull("unit/" + work.Key); err != nil {
		t.Fatalf("accepted unit not tagged in store: %v", err)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) == 0 || events[0] != core.EventUnitLeased {
		t.Fatalf("observer saw %v, want unit-leased first", events)
	}
	s := co.Stats()
	if s.Completed != 1 || s.Pending != 0 || s.Leased != 0 {
		t.Fatalf("stats after completion: %+v", s)
	}
}

func TestOffloadNoLiveWorkersFallsBackImmediately(t *testing.T) {
	co := fleet.New(fastOpts(), newStore(t))
	defer co.Close()
	work := makeWork(t, 102, "google-gke-cpu", "lammps", []int{2}, 1)
	start := time.Now()
	if co.Offload(context.Background(), work, nil) {
		t.Fatal("offload succeeded with no workers registered")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("empty-fleet fallback took %s; want immediate", d)
	}
	if s := co.Stats(); s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
}

func TestLeaseExpiryRequeuesThenCompletes(t *testing.T) {
	rs := newStore(t)
	co := fleet.New(fastOpts(), rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 103, "aws-eks-cpu", "osu", []int{2}, 1)

	var expired atomic.Int64
	done := make(chan bool, 1)
	go func() {
		done <- co.Offload(context.Background(), work, func(k core.EventKind) {
			if k == core.EventUnitLeaseExpired {
				expired.Add(1)
			}
		})
	}()

	// First claim: the worker "dies" — no heartbeat, no completion. The
	// lease must expire and the unit re-queue.
	first := claimOne(t, co, worker)
	second := claimOne(t, co, worker)
	if second.Lease == first.Lease {
		t.Fatal("re-claim returned the expired lease")
	}
	if second.Work.Key != work.Key {
		t.Fatalf("re-claimed key %s, want %s", second.Work.Key, work.Key)
	}
	if _, err := co.Complete(worker, second.Lease, work.Key, pushArtifact(t, rs, work)); err != nil {
		t.Fatalf("complete after requeue: %v", err)
	}
	if !<-done {
		t.Fatal("offload fell back even though the second lease completed")
	}
	if expired.Load() == 0 {
		t.Fatal("observer never saw unit-lease-expired")
	}
	s := co.Stats()
	if s.Expired == 0 || s.Requeued == 0 || s.Completed != 1 {
		t.Fatalf("stats after expiry+completion: %+v", s)
	}
}

func TestDuplicateCompleteIsHarmless(t *testing.T) {
	rs := newStore(t)
	co := fleet.New(fastOpts(), rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 104, "google-gke-cpu", "minife", []int{2}, 1)
	done := make(chan bool, 1)
	go func() { done <- co.Offload(context.Background(), work, nil) }()
	a := claimOne(t, co, worker)
	manifest := pushArtifact(t, rs, work)
	if dup, err := co.Complete(worker, a.Lease, work.Key, manifest); err != nil || dup {
		t.Fatalf("first complete: dup=%v err=%v", dup, err)
	}
	// Same lease again, and a made-up lease: both must ack as duplicates
	// without error — content-addressing makes re-delivery free.
	if dup, err := co.Complete(worker, a.Lease, work.Key, manifest); err != nil || !dup {
		t.Fatalf("second complete: dup=%v err=%v", dup, err)
	}
	if dup, err := co.Complete(worker, "L9999", work.Key, manifest); err != nil || !dup {
		t.Fatalf("stale-lease complete: dup=%v err=%v", dup, err)
	}
	if !<-done {
		t.Fatal("offload fell back")
	}
	if s := co.Stats(); s.Completed != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed)
	}
}

func TestStaleArtifactRejectedDegradesToLocal(t *testing.T) {
	rs := newStore(t)
	opts := fastOpts()
	opts.MaxAttempts = 2
	co := fleet.New(opts, rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 105, "azure-aks-cpu", "kripke", []int{2}, 1)

	// The artifact of a DIFFERENT unit: well-formed, but its metadata and
	// schedule belong to another key — the stale/malicious worker case.
	other := makeWork(t, 106, "azure-aks-cpu", "kripke", []int{2}, 1)
	stale := pushArtifact(t, rs, other)

	done := make(chan bool, 1)
	go func() { done <- co.Offload(context.Background(), work, nil) }()
	for i := 0; i < opts.MaxAttempts; i++ {
		a := claimOne(t, co, worker)
		if _, err := co.Complete(worker, a.Lease, a.Work.Key, stale); err == nil {
			t.Fatal("coordinator accepted an artifact for the wrong unit")
		}
	}
	if <-done {
		t.Fatal("offload reported success after every attempt delivered a stale artifact")
	}
	// The bad artifact must not be reachable under the unit's key.
	if _, err := rs.Registry().Pull("unit/" + work.Key); err == nil {
		t.Fatal("rejected artifact was tagged under the unit key")
	}
	if s := co.Stats(); s.Rejected != int64(opts.MaxAttempts) {
		t.Fatalf("rejected = %d, want %d", s.Rejected, opts.MaxAttempts)
	}
}

func TestNackRequeuesAndCapsToFallback(t *testing.T) {
	opts := fastOpts()
	opts.MaxAttempts = 2
	co := fleet.New(opts, newStore(t))
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 107, "google-gke-cpu", "amg2023", []int{2}, 1)
	done := make(chan bool, 1)
	go func() { done <- co.Offload(context.Background(), work, nil) }()
	for i := 0; i < opts.MaxAttempts; i++ {
		a := claimOne(t, co, worker)
		if err := co.Nack(worker, a.Lease, "synthetic failure"); err != nil {
			t.Fatalf("nack %d: %v", i, err)
		}
	}
	if <-done {
		t.Fatal("offload succeeded though every attempt was nacked")
	}
	s := co.Stats()
	if s.Nacked != int64(opts.MaxAttempts) || s.Fallbacks != 1 {
		t.Fatalf("stats after nack cap: %+v", s)
	}
}

func TestStragglerDeadlineFallsBackButLateResultLands(t *testing.T) {
	rs := newStore(t)
	opts := fastOpts()
	opts.Straggler = 50 * time.Millisecond
	co := fleet.New(opts, rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 108, "aws-eks-cpu", "laghos", []int{2}, 1)

	// Nobody claims: the offload must fall back at the straggler deadline.
	if co.Offload(context.Background(), work, nil) {
		t.Fatal("offload succeeded with no claim")
	}
	// The unit stayed published; a late worker completes it and the
	// artifact still lands in the store for the next study.
	a := claimOne(t, co, worker)
	if _, err := co.Complete(worker, a.Lease, work.Key, pushArtifact(t, rs, work)); err != nil {
		t.Fatalf("late complete: %v", err)
	}
	if _, err := rs.Registry().Pull("unit/" + work.Key); err != nil {
		t.Fatalf("late artifact not tagged: %v", err)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	rs := newStore(t)
	co := fleet.New(fastOpts(), rs)
	defer co.Close()
	worker := register(t, co)
	work := makeWork(t, 109, "google-gke-cpu", "mixbench", []int{2}, 1)
	done := make(chan bool, 1)
	go func() { done <- co.Offload(context.Background(), work, nil) }()
	a := claimOne(t, co, worker)
	// Hold the lease for 4 TTLs via heartbeats — it must never expire.
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, err := co.Heartbeat(worker, a.Lease); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if _, err := co.Complete(worker, a.Lease, work.Key, pushArtifact(t, rs, work)); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if !<-done {
		t.Fatal("offload fell back")
	}
	if s := co.Stats(); s.Expired != 0 {
		t.Fatalf("lease expired despite heartbeats: %+v", s)
	}
}

func TestHeartbeatUnknownLease(t *testing.T) {
	co := fleet.New(fastOpts(), newStore(t))
	defer co.Close()
	worker := register(t, co)
	if _, err := co.Heartbeat(worker, "L42"); !errors.Is(err, fleet.ErrUnknownLease) {
		t.Fatalf("heartbeat on unknown lease: %v", err)
	}
	if _, err := co.Heartbeat("W404", "L42"); !errors.Is(err, fleet.ErrUnknownWorker) {
		t.Fatalf("heartbeat from unknown worker: %v", err)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	co := fleet.New(fastOpts(), newStore(t))
	worker := register(t, co)
	work := makeWork(t, 110, "google-gke-cpu", "quicksilver", []int{2}, 1)
	done := make(chan bool, 1)
	go func() { done <- co.Offload(context.Background(), work, nil) }()
	claimed := make(chan error, 1)
	go func() {
		// Loop until an error: the first claim takes the published unit,
		// later ones park (or churn through its expiry requeues) until the
		// close surfaces as ErrClosed.
		for {
			if _, err := co.Claim(context.Background(), worker, 30*time.Second); err != nil {
				claimed <- err
				return
			}
		}
	}()
	// Both a waiting offload and a parked claim must unblock promptly.
	time.Sleep(20 * time.Millisecond)
	co.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("offload succeeded through a close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("offload still blocked after Close")
	}
	select {
	case err := <-claimed:
		if !errors.Is(err, fleet.ErrClosed) {
			t.Fatalf("parked claim returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("claim still parked after Close")
	}
	if _, err := co.Register("late", "test"); !errors.Is(err, fleet.ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
}

func TestOffloadContextCancellation(t *testing.T) {
	co := fleet.New(fastOpts(), newStore(t))
	defer co.Close()
	register(t, co)
	work := makeWork(t, 111, "google-gke-cpu", "single-node", []int{2}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- co.Offload(ctx, work, nil) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled offload reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("offload ignored context cancellation")
	}
}

// TestStudyByteIdentity is the tentpole guarantee end to end: a study
// whose units were all computed by a remote worker produces the exact
// bytes of a plain local run — records and trace alike.
func TestStudyByteIdentity(t *testing.T) {
	spec := func() *core.StudySpec {
		return &core.StudySpec{
			Seed:        880777,
			Envs:        []string{"google-gke-cpu", "aws-eks-cpu"},
			Scales:      []int{2, 4},
			Iterations:  2,
			Workers:     4,
			Granularity: core.GranularityEnvApp,
		}
	}

	// Reference: plain local run, its own store, no fleet.
	local, err := (&core.Runner{Store: newStore(t)}).Run(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}

	// Fleet run: separate store, a coordinator, and one honest in-process
	// worker.
	rs := newStore(t)
	co := fleet.New(fastOpts(), rs)
	defer co.Close()
	worker := register(t, co)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			a, err := co.Claim(ctx, worker, 50*time.Millisecond)
			if err != nil {
				return // closed or cancelled
			}
			if a == nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			files, err := core.ComputeUnitFiles(a.Work)
			if err != nil {
				co.Nack(worker, a.Lease, err.Error())
				continue
			}
			dig, err := rs.Registry().Push("staging/"+a.Work.Key, dataset.UnitArtifactType, files, nil)
			if err != nil {
				co.Nack(worker, a.Lease, err.Error())
				continue
			}
			if _, err := co.Complete(worker, a.Lease, a.Work.Key, string(dig)); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
	}()

	// The Configure hook changes a non-observation option (Workers — the
	// executor is byte-identical across worker counts), which makes the
	// runner bypass the process-wide memory tier the local reference run
	// just memoized into. Units still flow through the unit tier: cold
	// store, then the fleet.
	remote, err := (&core.Runner{
		Store:     rs,
		Fleet:     co,
		Configure: func(o *core.Options) { o.Workers = 3 },
	}).Run(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()

	if s := co.Stats(); s.Completed == 0 {
		t.Fatalf("no units completed remotely — the fleet path never ran: %+v", s)
	}

	localRecs, err := dataset.MarshalJSONL(local.Records())
	if err != nil {
		t.Fatal(err)
	}
	remoteRecs, err := dataset.MarshalJSONL(remote.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localRecs, remoteRecs) {
		t.Fatalf("fleet-computed study differs from local run:\nlocal  %d bytes\nremote %d bytes", len(localRecs), len(remoteRecs))
	}
	localTrace, err := local.Log.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	remoteTrace, err := remote.Log.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localTrace, remoteTrace) {
		t.Fatal("fleet-computed study trace differs from local run")
	}
}

// fleetGoroutines is the goleak-style probe from internal/rpc: count
// live goroutines running module code, excluding test frames.
func fleetGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(stack, "cloudhpc/internal/") &&
			!strings.Contains(stack, "testing.tRunner") &&
			!strings.Contains(stack, "testing.(*T).Run") {
			count++
		}
	}
	return count
}

func assertNoFleetGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := fleetGoroutines(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d module goroutines, baseline %d\n%s", fleetGoroutines(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCoordinatorChurn hammers the lease table from every side at once
// — offloads, claims, heartbeats, completes, nacks, worker churn — and
// then closes it mid-flight. Run with -race; afterwards no coordinator
// goroutine may survive.
func TestCoordinatorChurn(t *testing.T) {
	baseline := fleetGoroutines()
	rs := newStore(t)
	opts := fastOpts()
	opts.LeaseTTL = 20 * time.Millisecond
	opts.Straggler = 2 * time.Second
	co := fleet.New(opts, rs)

	const offloaders = 8
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Pre-stage honest artifacts so worker loops can complete instantly.
	works := make([]core.UnitWork, offloaders)
	manifests := make([]string, offloaders)
	byKey := make(map[string]string, offloaders)
	envs := []string{"google-gke-cpu", "aws-eks-cpu", "azure-aks-cpu"}
	appsList := []string{"lammps", "osu", "minife", "kripke"}
	for i := range works {
		works[i] = makeWork(t, uint64(900+i), envs[i%len(envs)], appsList[i%len(appsList)], []int{2}, 1)
		manifests[i] = pushArtifact(t, rs, works[i])
		byKey[works[i].Key] = manifests[i]
	}

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg, err := co.Register(fmt.Sprintf("churn-%d", w), "test")
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				a, err := co.Claim(ctx, reg.Worker, 20*time.Millisecond)
				if err != nil || ctx.Err() != nil {
					return
				}
				if a == nil {
					continue
				}
				switch i % 3 {
				case 0: // abandon: let the lease expire
				case 1:
					co.Nack(reg.Worker, a.Lease, "churn")
				default:
					co.Heartbeat(reg.Worker, a.Lease)
					co.Complete(reg.Worker, a.Lease, a.Work.Key, byKey[a.Work.Key])
				}
			}
		}()
	}

	for i := 0; i < offloaders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each offloader publishes its unit repeatedly: after a fallback
			// (attempt cap) the key was dropped, so the next round restarts.
			for round := 0; round < 3 && ctx.Err() == nil; round++ {
				co.Offload(ctx, works[i], nil)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	co.Close()
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("churn goroutines did not unwind after Close")
	}
	co.Stats() // must not race or panic post-close
	assertNoFleetGoroutineLeak(t, baseline)
}
