// Package fleet is the coordination half of distributed unit execution:
// a lease table between the executor's unit dispatch (core.FleetDelegate)
// and a fleet of remote worker processes speaking the rpc layer's
// fleet.* method family.
//
// The shape is deliberately simple — the hard determinism problems are
// already solved below this layer. UnitKey makes a unit a pure function
// of its work tuple, the result store's content addressing makes
// duplicate completions dedup to identical bytes, and AcceptUnit
// verifies every pushed artifact against the exact draw schedule before
// a ref lands. What is left for the coordinator is pure liveness
// bookkeeping:
//
//	pending ──claim──▶ leased ──complete──▶ done
//	   ▲                 │
//	   └──requeue────────┘  (expiry, nack, rejected artifact;
//	        capped attempts, jittered backoff; cap ⇒ failed)
//
// Every path out of the table degrades to local compute — a study with a
// fleet attached can stall on it for at most the straggler deadline per
// unit, and a dead fleet (zero live workers) is bypassed per unit with
// one mutex acquisition, which is why an attached-but-empty fleet costs
// ~nothing over plain local execution (BenchmarkFleetLocalFallback).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cloudhpc/internal/core"
)

// Defaults for the zero Options value.
const (
	DefaultLeaseTTL     = 15 * time.Second
	DefaultMaxAttempts  = 3
	DefaultStraggler    = time.Minute
	DefaultRequeueDelay = 500 * time.Millisecond
	DefaultMaxClaimWait = 30 * time.Second
)

// Coordinator errors, mapped onto the lease-protocol RPC codes by the
// rpc layer.
var (
	ErrClosed        = errors.New("fleet: coordinator closed")
	ErrUnknownWorker = errors.New("fleet: unknown worker")
	ErrUnknownLease  = errors.New("fleet: unknown lease")
)

// Options tunes the lease table. The zero value uses the defaults above.
type Options struct {
	// LeaseTTL is how long a claimed unit stays leased without a
	// heartbeat before it re-queues.
	LeaseTTL time.Duration
	// MaxAttempts caps how many leases one unit may burn (expiries,
	// nacks, rejected artifacts) before the coordinator gives up on the
	// fleet and the waiting shard computes the unit locally.
	MaxAttempts int
	// Straggler is the longest one Offload call blocks waiting for a
	// remote result before falling back to local compute — the bound
	// that guarantees a wedged fleet can never wedge a study. An
	// abandoned unit stays in the table: a late verified completion
	// still lands and warms the store for the next study.
	Straggler time.Duration
	// RequeueDelay is the base of the jittered exponential backoff a
	// re-queued unit waits before it may be claimed again.
	RequeueDelay time.Duration
	// MaxClaimWait caps a claim long-poll server-side, whatever the
	// worker asks for.
	MaxClaimWait time.Duration
	// LivenessWindow is how recently a worker must have spoken (register,
	// claim, heartbeat, complete) to count as live. Zero derives it from
	// the claim-poll cadence: max(4×LeaseTTL, 2×MaxClaimWait).
	LivenessWindow time.Duration
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (o Options) straggler() time.Duration {
	if o.Straggler > 0 {
		return o.Straggler
	}
	return DefaultStraggler
}

func (o Options) requeueDelay() time.Duration {
	if o.RequeueDelay > 0 {
		return o.RequeueDelay
	}
	return DefaultRequeueDelay
}

func (o Options) maxClaimWait() time.Duration {
	if o.MaxClaimWait > 0 {
		return o.MaxClaimWait
	}
	return DefaultMaxClaimWait
}

func (o Options) livenessWindow() time.Duration {
	if o.LivenessWindow > 0 {
		return o.LivenessWindow
	}
	w := 4 * o.leaseTTL()
	if m := 2 * o.maxClaimWait(); m > w {
		w = m
	}
	return w
}

// Acceptor verifies and admits one pushed unit artifact — implemented by
// core.ResultStore.AcceptUnit. An error refuses the artifact and
// re-queues the lease.
type Acceptor interface {
	AcceptUnit(work core.UnitWork, manifestDigest string) error
}

// Stats is a point-in-time snapshot of the lease table, the fleet half
// of the daemon's /healthz report.
type Stats struct {
	Workers     int   `json:"workers"`
	LiveWorkers int   `json:"liveWorkers"`
	Pending     int   `json:"pending"`
	Leased      int   `json:"leased"`
	Completed   int64 `json:"completed"`
	Requeued    int64 `json:"requeued"`
	Expired     int64 `json:"expired"`
	Nacked      int64 `json:"nacked"`
	Rejected    int64 `json:"rejected"`
	Fallbacks   int64 `json:"fallbacks"`
}

// Assignment is one claimed unit: the work tuple plus its lease.
type Assignment struct {
	Work  core.UnitWork
	Lease string
	TTL   time.Duration
}

// Registration is the coordinator's half of the fleet.register
// handshake.
type Registration struct {
	Worker string
	// TTL is the lease TTL; Heartbeat the suggested heartbeat cadence
	// (TTL/3); MaxWait the server-side claim long-poll cap.
	TTL, Heartbeat, MaxWait time.Duration
}

type unitState int

const (
	statePending unitState = iota
	stateLeased
	stateDone
)

// waiter is one blocked Offload call: a buffered outcome channel plus
// the session-observation callback for lease-lifecycle events.
type waiter struct {
	ch      chan bool
	observe func(core.EventKind)
}

type unit struct {
	work      core.UnitWork
	state     unitState
	attempts  int
	notBefore time.Time // backoff gate while pending
	waiters   []*waiter
	lease     string
	worker    string
	deadline  time.Time
	expire    *time.Timer
}

func (u *unit) observeAll(kind core.EventKind) {
	for _, w := range u.waiters {
		if w.observe != nil {
			w.observe(kind)
		}
	}
}

type workerInfo struct {
	name     string
	version  string
	lastSeen time.Time
}

// Coordinator is the lease table. Safe for concurrent use by any number
// of Offload callers (executor shards) and RPC connections (workers).
type Coordinator struct {
	opts   Options
	accept Acceptor

	mu         sync.Mutex
	closed     bool
	units      map[string]*unit
	queue      []string          // pending unit keys, claim order
	leases     map[string]string // lease ID → unit key
	workers    map[string]*workerInfo
	wake       chan struct{} // closed+replaced on new work and on Close
	nextWorker int
	nextLease  int
	rng        *rand.Rand

	completed, requeued, expired, nacked, rejected, fallbacks int64
}

// New builds a coordinator that admits artifacts through accept
// (normally the daemon store's AcceptUnit).
func New(opts Options, accept Acceptor) *Coordinator {
	return &Coordinator{
		opts:    opts,
		accept:  accept,
		units:   make(map[string]*unit),
		leases:  make(map[string]string),
		workers: make(map[string]*workerInfo),
		wake:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// wakeLocked wakes every parked claim long-poll.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	window := c.opts.livenessWindow()
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= window {
			n++
		}
	}
	return n
}

// Register admits one worker after a version handshake (done at the rpc
// layer) and returns its identity and the protocol timings.
func (c *Coordinator) Register(name, version string) (Registration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Registration{}, ErrClosed
	}
	c.nextWorker++
	id := fmt.Sprintf("W%d", c.nextWorker)
	c.workers[id] = &workerInfo{name: name, version: version, lastSeen: time.Now()}
	// New capacity: pending units parked behind a zero-live-worker fleet
	// are now claimable, and parked claimants are none — but an Offload
	// arriving after this sees the worker immediately.
	ttl := c.opts.leaseTTL()
	return Registration{Worker: id, TTL: ttl, Heartbeat: ttl / 3, MaxWait: c.opts.maxClaimWait()}, nil
}

// Offload implements core.FleetDelegate: publish the unit, wait for a
// verified remote completion, or report false so the caller computes
// locally. False is always prompt-ish: the straggler deadline bounds the
// wait, a closed coordinator or a fleet with zero live workers answers
// in one mutex acquisition, and ctx cancellation unblocks immediately.
func (c *Coordinator) Offload(ctx context.Context, work core.UnitWork, observe func(core.EventKind)) bool {
	c.mu.Lock()
	now := time.Now()
	if c.closed || c.liveWorkersLocked(now) == 0 {
		c.fallbacks++
		c.mu.Unlock()
		return false
	}
	u, ok := c.units[work.Key]
	if !ok {
		u = &unit{work: work, state: statePending}
		c.units[work.Key] = u
		c.queue = append(c.queue, work.Key)
		c.wakeLocked()
	} else if u.state == stateDone {
		// Another study's shard already completed this key remotely.
		c.mu.Unlock()
		return true
	}
	w := &waiter{ch: make(chan bool, 1), observe: observe}
	u.waiters = append(u.waiters, w)
	c.mu.Unlock()

	straggler := time.NewTimer(c.opts.straggler())
	defer straggler.Stop()
	select {
	case ok := <-w.ch:
		if !ok {
			c.mu.Lock()
			c.fallbacks++
			c.mu.Unlock()
		}
		return ok
	case <-straggler.C:
	case <-ctx.Done():
	}
	// Straggler deadline or cancellation: detach this waiter and fall
	// back. The unit stays in the table — a late verified completion
	// still lands in the store for the next study.
	c.mu.Lock()
	if u := c.units[work.Key]; u != nil {
		for i, other := range u.waiters {
			if other == w {
				u.waiters = append(u.waiters[:i], u.waiters[i+1:]...)
				break
			}
		}
	}
	c.fallbacks++
	c.mu.Unlock()
	// The outcome may have been delivered while we were detaching.
	select {
	case ok := <-w.ch:
		return ok
	default:
		return false
	}
}

// Claim hands the worker one pending unit, long-polling up to wait
// (capped by MaxClaimWait) when the table is empty. A nil Assignment
// with nil error means the poll elapsed with nothing to do — poll again.
// ErrClosed means the coordinator shut down and the worker should drain.
func (c *Coordinator) Claim(ctx context.Context, workerID string, wait time.Duration) (*Assignment, error) {
	if max := c.opts.maxClaimWait(); wait <= 0 || wait > max {
		wait = max
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
		}
		now := time.Now()
		w.lastSeen = now
		u, backoff := c.popLocked(now)
		if u != nil {
			a := c.leaseLocked(u, workerID, now)
			c.mu.Unlock()
			return a, nil
		}
		wake := c.wake
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		sleep := remaining
		if backoff > 0 && backoff < sleep {
			sleep = backoff
		}
		timer := time.NewTimer(sleep)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

// popLocked dequeues the first claimable pending unit. When every
// pending unit is still inside its backoff window it returns the
// shortest remaining backoff so the claimant sleeps just long enough.
func (c *Coordinator) popLocked(now time.Time) (*unit, time.Duration) {
	var backoff time.Duration
	keep := c.queue[:0]
	var picked *unit
	for i, key := range c.queue {
		if picked != nil {
			keep = append(keep, c.queue[i:]...)
			break
		}
		u := c.units[key]
		if u == nil || u.state != statePending {
			continue // stale queue entry (completed elsewhere, failed, re-queued later in line)
		}
		if d := u.notBefore.Sub(now); d > 0 {
			if backoff == 0 || d < backoff {
				backoff = d
			}
			keep = append(keep, key)
			continue
		}
		picked = u
	}
	c.queue = keep
	return picked, backoff
}

// leaseLocked moves a pending unit to leased under a fresh lease.
func (c *Coordinator) leaseLocked(u *unit, workerID string, now time.Time) *Assignment {
	c.nextLease++
	ttl := c.opts.leaseTTL()
	u.state = stateLeased
	u.lease = fmt.Sprintf("L%d", c.nextLease)
	u.worker = workerID
	u.deadline = now.Add(ttl)
	c.leases[u.lease] = u.work.Key
	key, lease := u.work.Key, u.lease
	u.expire = time.AfterFunc(ttl, func() { c.expireLease(key, lease) })
	u.observeAll(core.EventUnitLeased)
	return &Assignment{Work: u.work, Lease: u.lease, TTL: ttl}
}

// expireLease fires when a lease's TTL elapses. A heartbeat may have
// pushed the deadline past the timer — re-arm instead of expiring, so a
// lease held alive costs one timer rather than one goroutine.
func (c *Coordinator) expireLease(key, lease string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	u := c.units[key]
	if u == nil || u.state != stateLeased || u.lease != lease {
		return
	}
	if now := time.Now(); now.Before(u.deadline) {
		u.expire = time.AfterFunc(u.deadline.Sub(now), func() { c.expireLease(key, lease) })
		return
	}
	c.expired++
	u.observeAll(core.EventUnitLeaseExpired)
	c.requeueLocked(u)
}

// requeueLocked returns a leased unit to the pending queue with a
// jittered exponential backoff, or fails it when its attempts are
// exhausted (every waiter then falls back to local compute).
func (c *Coordinator) requeueLocked(u *unit) {
	delete(c.leases, u.lease)
	u.lease, u.worker = "", ""
	if u.expire != nil {
		u.expire.Stop()
		u.expire = nil
	}
	u.attempts++
	if u.attempts >= c.opts.maxAttempts() {
		c.failLocked(u)
		return
	}
	base := c.opts.requeueDelay() << (u.attempts - 1)
	if cap := 16 * c.opts.requeueDelay(); base > cap {
		base = cap
	}
	// Jitter to [base/2, base): re-queued units from one incident don't
	// stampede back in lockstep.
	u.notBefore = time.Now().Add(base/2 + time.Duration(c.rng.Int63n(int64(base/2)+1)))
	u.state = statePending
	c.queue = append(c.queue, u.work.Key)
	c.requeued++
	// Wake claimants once the backoff gate opens (plus the immediate wake
	// for pollers computing their own sleep from popLocked's backoff).
	c.wakeLocked()
}

// failLocked drops a unit whose attempts are exhausted: waiters fall
// back to local compute and the key is forgotten, so a later study may
// try the fleet again from a clean slate.
func (c *Coordinator) failLocked(u *unit) {
	for _, w := range u.waiters {
		w.ch <- false
	}
	u.waiters = nil
	delete(c.units, u.work.Key)
}

// Heartbeat extends a live lease by one TTL and returns the remaining
// time. ErrUnknownLease means the lease already expired or its unit
// completed — the worker should abandon the unit (a completed push for
// it would still be accepted and deduped).
func (c *Coordinator) Heartbeat(workerID, lease string) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	w, ok := c.workers[workerID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	now := time.Now()
	w.lastSeen = now
	key, ok := c.leases[lease]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLease, lease)
	}
	u := c.units[key]
	if u == nil || u.state != stateLeased || u.lease != lease {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLease, lease)
	}
	u.deadline = now.Add(c.opts.leaseTTL())
	return c.opts.leaseTTL(), nil
}

// Nack is a worker's explicit failure report for a claimed unit: the
// lease re-queues immediately (still counting an attempt).
func (c *Coordinator) Nack(workerID, lease, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	w, ok := c.workers[workerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = time.Now()
	key, ok := c.leases[lease]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownLease, lease)
	}
	u := c.units[key]
	if u == nil || u.state != stateLeased || u.lease != lease {
		return fmt.Errorf("%w: %q", ErrUnknownLease, lease)
	}
	c.nacked++
	c.requeueLocked(u)
	return nil
}

// Complete admits one pushed artifact: verify through the Acceptor
// (schedule validation + first-write-wins tag), then release every
// waiter. duplicate reports a unit already completed — harmless by
// construction, acknowledged as success. A verification failure refuses
// the artifact, re-queues the lease (when it is still current), and
// returns the error. Acceptance does not require a current lease: a
// worker whose lease expired mid-push still lands a verified artifact,
// which warms the store even if the waiting shard already fell back.
func (c *Coordinator) Complete(workerID, lease, key, manifestDigest string) (duplicate bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false, ErrClosed
	}
	w, ok := c.workers[workerID]
	if !ok {
		c.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = time.Now()
	u := c.units[key]
	if u == nil || u.state == stateDone {
		c.mu.Unlock()
		return true, nil
	}
	work := u.work
	c.mu.Unlock()

	// Verification happens outside the table lock: it reads blobs and
	// decodes records, and claims/heartbeats must not stall behind it.
	// Concurrent completes for one key are safe — AcceptUnit's tag is
	// first-write-wins, and the table transition below re-checks state.
	acceptErr := c.accept.AcceptUnit(work, manifestDigest)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, ErrClosed
	}
	u = c.units[key]
	if acceptErr != nil {
		c.rejected++
		if u != nil && u.state == stateLeased && u.lease == lease {
			// A stale or malformed artifact is a failed attempt, exactly
			// like a nack: re-queue (or fail over to local compute).
			c.requeueLocked(u)
		}
		return false, acceptErr
	}
	if u == nil || u.state == stateDone {
		return true, nil
	}
	if u.expire != nil {
		u.expire.Stop()
		u.expire = nil
	}
	delete(c.leases, u.lease)
	u.lease, u.worker = "", ""
	u.state = stateDone
	c.completed++
	for _, w := range u.waiters {
		w.ch <- true
	}
	u.waiters = nil
	// The artifact is tagged in the store now, so every future study hits
	// the store tier before ever asking the fleet; dropping the entry
	// keeps the table bounded by in-flight work, not daemon lifetime.
	delete(c.units, key)
	return false, nil
}

// Close shuts the table down: every waiter falls back to local compute,
// every parked claim returns ErrClosed, and every lease timer stops. The
// server closes the coordinator before draining sessions, so studies
// blocked on Offload unblock and the drain completes.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for key, u := range c.units {
		if u.expire != nil {
			u.expire.Stop()
			u.expire = nil
		}
		for _, w := range u.waiters {
			w.ch <- false
		}
		u.waiters = nil
		delete(c.units, key)
	}
	c.queue = nil
	c.leases = make(map[string]string)
	c.wakeLocked()
}

// Stats snapshots the table for /healthz.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Workers:     len(c.workers),
		LiveWorkers: c.liveWorkersLocked(time.Now()),
		Completed:   c.completed,
		Requeued:    c.requeued,
		Expired:     c.expired,
		Nacked:      c.nacked,
		Rejected:    c.rejected,
		Fallbacks:   c.fallbacks,
	}
	for _, u := range c.units {
		switch u.state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		}
	}
	return s
}
