// Package store is the persistent content-addressed blob store under the
// result pipeline: sha256-named blobs written with atomic renames, a
// small index file carrying named references, and a mark-and-sweep GC.
// It is the durable half of the archival discipline the study practiced —
// the paper's release content-addresses 25,541 run datasets in an OCI
// registry — lifted out of process memory so that every cmd/ invocation
// and CI step can share one store instead of recomputing the study.
//
// Two implementations share the BlobStore interface: Disk, the on-disk
// store (one file per blob under <dir>/blobs, an index.json for refs),
// and Memory, the in-process store the tests and the default in-memory
// oras registry use. Content addressing makes writes idempotent and reads
// self-verifying: Get re-hashes every blob and returns ErrCorrupt when
// the bytes no longer match their name, which is what lets the cache
// layers above fall back to recompute instead of serving damaged data.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store errors. Disk and Memory wrap them with context; callers match
// with errors.Is.
var (
	// ErrNotFound reports a digest (or ref target) absent from the store.
	ErrNotFound = errors.New("store: blob not found")
	// ErrCorrupt reports a blob whose bytes no longer hash to its name.
	ErrCorrupt = errors.New("store: blob content does not match digest")
	// ErrBadDigest reports a malformed digest string (wrong scheme or not
	// 64 hex digits — also the guard against path traversal on disk).
	ErrBadDigest = errors.New("store: malformed digest")
)

// DigestOf computes the canonical "sha256:<hex>" content address.
func DigestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// ValidDigest reports whether d is a well-formed "sha256:<hex>" content
// address — the early guard wire handlers apply before staging any
// payload under the name.
func ValidDigest(d string) bool {
	_, err := parseDigest(d)
	return err == nil
}

// parseDigest validates a digest and returns its hex part.
func parseDigest(d string) (string, error) {
	hexPart, ok := strings.CutPrefix(d, "sha256:")
	if !ok || len(hexPart) != sha256.Size*2 {
		return "", fmt.Errorf("%w: %q", ErrBadDigest, d)
	}
	for _, c := range hexPart {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("%w: %q", ErrBadDigest, d)
		}
	}
	return hexPart, nil
}

// BlobStore is the storage contract shared by the on-disk and in-memory
// stores, and the pluggable backend of the oras registry. Blobs are
// immutable and content-addressed; refs are mutable names pointing at
// digests (tags, manifest markers, cache keys). Implementations are safe
// for concurrent use within one process.
type BlobStore interface {
	// Put stores data under its content digest and returns the digest.
	// Storing identical content twice deduplicates.
	Put(data []byte) (string, error)
	// Get returns a copy of the blob's bytes, verifying the content
	// against the digest (ErrCorrupt on mismatch, ErrNotFound if absent).
	Get(digest string) ([]byte, error)
	// Has reports whether the digest is present.
	Has(digest string) bool
	// Len reports the number of stored blobs.
	Len() int
	// Digests returns every stored blob digest, sorted — the inventory
	// half of a sync manifest (see TakeInventory).
	Digests() []string
	// SetRef points name at an existing digest (ErrNotFound otherwise).
	SetRef(name, digest string) error
	// SetRefs points several names at existing digests with at most one
	// index persist — the batch form composite pushes use so an
	// N-artifact ingest writes the index N times, not 2N. All targets
	// are validated before any ref moves.
	SetRefs(refs map[string]string) error
	// Ref resolves a name to its digest.
	Ref(name string) (string, bool)
	// Refs returns all ref names, sorted.
	Refs() []string
	// DeleteRef removes a ref; deleting an absent ref is a no-op.
	DeleteRef(name string) error
	// DeleteRefs removes several refs with at most one index persist —
	// the batch form GC uses to drop stale manifest markers.
	DeleteRefs(names []string) error
	// GC deletes every blob that is neither in live nor the direct target
	// of a ref, returning how many were removed. Callers that layer
	// indirection on top of refs (a manifest blob referencing layer
	// blobs) must close over that indirection when building live.
	GC(live map[string]bool) (removed int, err error)
}

// Memory is the in-process BlobStore: the test backend, and the default
// backend of an oras registry. The zero value is not usable; call
// NewMemory.
type Memory struct {
	mu    sync.Mutex
	blobs map[string][]byte
	refs  map[string]string
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{blobs: make(map[string][]byte), refs: make(map[string]string)}
}

// Put implements BlobStore. Like Disk.Put it self-heals: re-storing a
// digest whose held bytes were damaged (the Corrupt test hook) replaces
// them with the pristine content.
func (m *Memory) Put(data []byte) (string, error) {
	d := DigestOf(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if held, ok := m.blobs[d]; !ok || DigestOf(held) != d {
		cp := make([]byte, len(data))
		copy(cp, data)
		m.blobs[d] = cp
	}
	return d, nil
}

// Get implements BlobStore. Memory verifies content like Disk does, so a
// test that reaches in and damages a blob observes the same ErrCorrupt
// path production would.
func (m *Memory) Get(digest string) ([]byte, error) {
	if _, err := parseDigest(digest); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.blobs[digest]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if DigestOf(data) != digest {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, digest)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Has implements BlobStore.
func (m *Memory) Has(digest string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.blobs[digest]
	return ok
}

// Len implements BlobStore.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// Digests implements BlobStore.
func (m *Memory) Digests() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.blobs))
	for d := range m.blobs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SetRef implements BlobStore.
func (m *Memory) SetRef(name, digest string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[digest]; !ok {
		return fmt.Errorf("%w: ref %q target %s", ErrNotFound, name, digest)
	}
	m.refs[name] = digest
	return nil
}

// SetRefs implements BlobStore.
func (m *Memory) SetRefs(refs map[string]string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, digest := range refs {
		if _, ok := m.blobs[digest]; !ok {
			return fmt.Errorf("%w: ref %q target %s", ErrNotFound, name, digest)
		}
	}
	for name, digest := range refs {
		m.refs[name] = digest
	}
	return nil
}

// Ref implements BlobStore.
func (m *Memory) Ref(name string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.refs[name]
	return d, ok
}

// Refs implements BlobStore.
func (m *Memory) Refs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedKeys(m.refs)
}

// DeleteRef implements BlobStore.
func (m *Memory) DeleteRef(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.refs, name)
	return nil
}

// DeleteRefs implements BlobStore.
func (m *Memory) DeleteRefs(names []string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range names {
		delete(m.refs, name)
	}
	return nil
}

// GC implements BlobStore.
func (m *Memory) GC(live map[string]bool) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	removed := 0
	for d := range m.blobs {
		if live[d] || m.refTargetLocked(d) {
			continue
		}
		delete(m.blobs, d)
		removed++
	}
	return removed, nil
}

// Corrupt overwrites a stored blob's bytes without renaming it — a test
// hook for exercising the ErrCorrupt fallback paths. It reports whether
// the digest was present.
func (m *Memory) Corrupt(digest string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[digest]; !ok {
		return false
	}
	m.blobs[digest] = []byte("corrupted")
	return true
}

func (m *Memory) refTargetLocked(digest string) bool {
	for _, d := range m.refs {
		if d == digest {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
