package store

// Digest-exchange reconciliation between two content-addressed stores —
// the federation primitive (ROADMAP: "multi-branch sync", modeled on the
// enterprise multi-branch database synchronization scheme: branches
// exchange what the other is missing, and conflicts are impossible by
// construction). The protocol is three steps:
//
//  1. Inventory: each side lists the digests it can serve and the refs
//     it carries (refs whose target blob is unservable are withheld).
//  2. Diff: set subtraction on digests, per-name comparison on refs.
//  3. Transfer: only the missing blobs move, each verified against its
//     digest on arrival; then refs reconcile last-writer-wins per name.
//
// Blobs are immutable and self-verifying, so blob "conflicts" cannot
// exist: two stores holding the same digest hold the same bytes. Refs
// are derived names ("study/<spec-hash>", "unit/<sub-hash>" behind the
// oras prefixes): identical keys always name identical content, so
// last-writer-wins is a formality — a genuine divergence under one name
// means one side predates a deliberate schema bump, and the incoming
// value simply wins.
//
// The remote half of an exchange is the Peer interface: four verbs that
// Local satisfies in-process and internal/rpc's StorePeer carries over
// JSON-RPC (store.inventory / store.fetch / store.put / store.refs), so
// the same Push and Pull drive a same-process test and a two-daemon
// federation.

import (
	"context"
	"fmt"
	"sort"
)

// Inventory is one store's sync manifest: every blob digest it can
// serve and every ref it carries. Refs are filtered to servable targets
// when taken (see TakeInventory), so a manifest never advertises
// content the store cannot deliver.
type Inventory struct {
	Digests []string          `json:"digests"`
	Refs    map[string]string `json:"refs"`
}

// TakeInventory snapshots a store's manifest. A ref whose target blob
// is absent (evicted after external loss, or racing a GC) is withheld
// rather than advertised.
func TakeInventory(s BlobStore) Inventory {
	inv := Inventory{Digests: s.Digests(), Refs: make(map[string]string)}
	have := make(map[string]bool, len(inv.Digests))
	for _, d := range inv.Digests {
		have[d] = true
	}
	for _, name := range s.Refs() {
		if d, ok := s.Ref(name); ok && have[d] {
			inv.Refs[name] = d
		}
	}
	return inv
}

// Delta is what a destination is missing relative to a source: the
// blobs to transfer and the refs to apply (absent at the destination,
// or pointing elsewhere — last-writer-wins, the source value).
type Delta struct {
	Blobs []string
	Refs  map[string]string
}

// Diff computes the delta that makes dst carry everything src does.
// Blobs are a set subtraction; refs compare per name. The result is
// deterministic: Blobs comes out sorted.
func Diff(src, dst Inventory) Delta {
	have := make(map[string]bool, len(dst.Digests))
	for _, d := range dst.Digests {
		have[d] = true
	}
	delta := Delta{Refs: make(map[string]string)}
	for _, d := range src.Digests {
		if !have[d] {
			delta.Blobs = append(delta.Blobs, d)
		}
	}
	sort.Strings(delta.Blobs)
	for name, d := range src.Refs {
		if dst.Refs[name] != d {
			delta.Refs[name] = d
		}
	}
	return delta
}

// Peer is the remote half of a sync exchange — the verb set a store
// exposes to a syncing counterpart. Local adapts an in-process
// BlobStore; rpc.StorePeer speaks the same verbs to a daemon.
type Peer interface {
	// Inventory returns the peer's current manifest.
	Inventory(ctx context.Context) (Inventory, error)
	// Fetch returns one blob's bytes. The caller re-verifies the digest
	// on arrival; the peer verifies on its side too (Get semantics).
	Fetch(ctx context.Context, digest string) ([]byte, error)
	// Put stores one blob at the peer and returns the digest the peer
	// computed — the arrival-side verification.
	Put(ctx context.Context, data []byte) (string, error)
	// SetRefs applies a ref batch last-writer-wins, skipping any ref
	// whose target blob the peer does not hold, and reports how many
	// were applied.
	SetRefs(ctx context.Context, refs map[string]string) (applied int, err error)
}

// Local adapts an in-process BlobStore into a Peer, so one Push/Pull
// implementation serves both same-process reconciliation (two store
// directories on one machine) and the wire.
type Local struct{ S BlobStore }

// Inventory implements Peer.
func (l Local) Inventory(ctx context.Context) (Inventory, error) {
	return TakeInventory(l.S), nil
}

// Fetch implements Peer.
func (l Local) Fetch(ctx context.Context, digest string) ([]byte, error) {
	return l.S.Get(digest)
}

// Put implements Peer.
func (l Local) Put(ctx context.Context, data []byte) (string, error) {
	return l.S.Put(data)
}

// SetRefs implements Peer: refs whose targets are absent are skipped,
// not errors — the blob may have been withheld (source-side corruption
// discovered mid-transfer) and the ref must not outrun its content.
func (l Local) SetRefs(ctx context.Context, refs map[string]string) (int, error) {
	apply := make(map[string]string, len(refs))
	for name, d := range refs {
		if l.S.Has(d) {
			apply[name] = d
		}
	}
	if len(apply) == 0 {
		return 0, nil
	}
	if err := l.S.SetRefs(apply); err != nil {
		return 0, err
	}
	return len(apply), nil
}

// SyncStats reports what one Push or Pull moved. A re-sync of
// already-converged stores reports all zeros — the cheap-no-op property
// the convergence tests pin.
type SyncStats struct {
	BlobsSent    int   // blobs transferred (absent at the receiver)
	BlobsSkipped int   // advertised blobs that could not be read at the source
	BytesSent    int64 // total transferred payload
	RefsApplied  int   // refs created or re-pointed at the receiver
}

func (st SyncStats) String() string {
	return fmt.Sprintf("%d blob(s), %d byte(s), %d ref(s), %d skipped",
		st.BlobsSent, st.BytesSent, st.RefsApplied, st.BlobsSkipped)
}

// Push transfers to dst every blob it lacks from src, then reconciles
// refs. Each blob is verified on arrival by the receiver (Put recomputes
// the digest); a mismatch is a hard error, because it means the
// transport altered bytes. A blob src advertises but can no longer
// serve is skipped — src's Get evicts it from the inventory — and any
// refs pointing at it are withheld so dst never gains a dangling name.
func Push(ctx context.Context, src BlobStore, dst Peer) (SyncStats, error) {
	dinv, err := dst.Inventory(ctx)
	if err != nil {
		return SyncStats{}, fmt.Errorf("sync: peer inventory: %w", err)
	}
	return transfer(ctx, Diff(TakeInventory(src), dinv), Local{src}, dst)
}

// Pull transfers from src every blob dst lacks, then reconciles refs —
// Push with the roles reversed, so the two compose into a bidirectional
// exchange that converges both stores to the union.
func Pull(ctx context.Context, dst BlobStore, src Peer) (SyncStats, error) {
	sinv, err := src.Inventory(ctx)
	if err != nil {
		return SyncStats{}, fmt.Errorf("sync: peer inventory: %w", err)
	}
	return transfer(ctx, Diff(sinv, TakeInventory(dst)), src, Local{dst})
}

// transfer moves one delta from a source peer to a destination peer:
// blobs first (verified on arrival), refs last, so a ref can never land
// before the content it names.
func transfer(ctx context.Context, delta Delta, from, to Peer) (SyncStats, error) {
	var st SyncStats
	unserved := make(map[string]bool)
	for _, d := range delta.Blobs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		data, err := from.Fetch(ctx, d)
		if err != nil {
			// The source advertised a blob it cannot serve (lost or
			// corrupted since the inventory). Skip it and withhold its
			// refs; the next exchange sees a truthful inventory.
			st.BlobsSkipped++
			unserved[d] = true
			continue
		}
		if got := DigestOf(data); got != d {
			return st, fmt.Errorf("sync: fetched %s but content hashes to %s", d, got)
		}
		got, err := to.Put(ctx, data)
		if err != nil {
			return st, fmt.Errorf("sync: storing %s: %w", d, err)
		}
		if got != d {
			return st, fmt.Errorf("sync: stored %s but receiver reports %s", d, got)
		}
		st.BlobsSent++
		st.BytesSent += int64(len(data))
	}
	refs := make(map[string]string, len(delta.Refs))
	for name, d := range delta.Refs {
		if !unserved[d] {
			refs[name] = d
		}
	}
	if len(refs) > 0 {
		applied, err := to.SetRefs(ctx, refs)
		if err != nil {
			return st, fmt.Errorf("sync: reconciling refs: %w", err)
		}
		st.RefsApplied = applied
	}
	return st, nil
}
