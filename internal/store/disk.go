package store

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cloudhpc/internal/jsonl"
)

// Disk is the on-disk BlobStore. Layout under the root directory:
//
//	blobs/<hex>    one file per blob, named by its sha256
//	index.json     ref snapshot (name → digest); blobs inventoried by scan
//	refs.jsonl     append-only ref journal since the snapshot
//
// Every blob and snapshot write goes through a temporary file and an
// atomic rename, so readers never observe a partial file and a crash
// mid-write leaves at worst an orphan temp file. Ref mutations do not
// rewrite the snapshot — they append one journal line, so an N-artifact
// ingest costs O(N) journal bytes instead of the O(N²) it would pay
// rewriting a growing index per push. Open replays the journal over the
// snapshot and compacts (fresh snapshot, journal removed); a torn
// trailing journal line just truncates the replay there. Writes are not
// fsynced (the store is a cache; recompute covers loss), so a power
// loss can tear a recently-renamed blob — torn content is caught by
// Get's digest verification and healed by the next Put of the same
// digest, and an orphan blob (crash before any ref write) is adopted by
// Open's directory rescan: content addressing means an orphan is never
// wrong, only unindexed.
//
// A Disk store is safe for concurrent use within one process. Sharing one
// directory between processes is safe for blobs (idempotent, atomic) but
// not for refs — concurrent journal appends interleave safely (O_APPEND),
// but a second Open compacts and may drop entries the first process
// appends afterwards; the study tooling treats that as acceptable because
// every writer stores the same content under the same keys.
type Disk struct {
	dir string

	mu         sync.Mutex
	blobs      map[string]int64  // digest → size
	refs       map[string]string // name → digest
	journalLen int               // entries appended since the last snapshot
}

// indexFile is the persisted snapshot of the refs. The blob inventory is
// deliberately not persisted — the blobs directory is the truth and Open
// rebuilds the inventory by scanning it — and ref mutations between
// snapshots live in the journal, so neither Put nor SetRefs ever rewrites
// this file on the hot path.
type indexFile struct {
	Version int               `json:"version"`
	Refs    map[string]string `json:"refs"`
}

const indexVersion = 1

// refJournalEntry is one line of refs.jsonl: refs to set and refs to
// delete, applied in order during replay. A batched SetRefs is one entry.
type refJournalEntry struct {
	Set map[string]string `json:"set,omitempty"`
	Del []string          `json:"del,omitempty"`
}

// journalCompactAt bounds journal growth for long-lived stores (daemons):
// once the journal holds this many entries AND dwarfs the live ref set,
// the next mutation folds it into a fresh snapshot. High enough that a
// full cold study (a few hundred ref batches) never compacts mid-run.
const journalCompactAt = 1024

// Open opens (creating if needed) a disk store rooted at dir.
func Open(dir string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Disk{
		dir:   dir,
		blobs: make(map[string]int64),
		refs:  make(map[string]string),
	}
	replay, err := s.loadIndex()
	if err != nil {
		return nil, err
	}
	if replay {
		s.replayJournal()
	}
	if err := s.reconcile(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Disk) Dir() string { return s.dir }

func (s *Disk) indexPath() string        { return filepath.Join(s.dir, "index.json") }
func (s *Disk) journalPath() string      { return filepath.Join(s.dir, "refs.jsonl") }
func (s *Disk) blobPath(h string) string { return filepath.Join(s.dir, "blobs", h) }

// loadIndex reads the index.json snapshot. A missing or damaged
// snapshot is an empty baseline (the blobs directory scan in reconcile
// recovers any existing content, and the journal — written by this
// schema — is still worth replaying over it). The returned bool says
// whether the journal may be replayed: false only when the snapshot
// carries an unknown version, because then the journal was plausibly
// written by that same future build and cannot be trusted either.
func (s *Disk) loadIndex() (replayJournal bool, err error) {
	data, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: reading index: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		// A torn or damaged snapshot is recoverable: the blobs are the
		// truth and the journal holds every ref written since the last
		// good snapshot. Rebuild rather than refuse to open.
		return true, nil
	}
	if idx.Version != indexVersion {
		// An index written by an unknown (future) schema must not be
		// parsed as v1 — its refs may mean something else entirely — and
		// neither may the journal that build left behind. Treat both
		// like damaged state: the blob scan recovers the content, the
		// refs are lost, and the format can evolve without corrupting
		// old readers.
		log.Printf("store: %s: index version %d (this build reads v%d); rebuilding refs from the blob scan",
			s.indexPath(), idx.Version, indexVersion)
		return false, nil
	}
	if idx.Refs != nil {
		s.refs = idx.Refs
	}
	return true, nil
}

// reconcile makes the in-memory inventory agree with the blobs directory:
// orphan files (crash between blob rename and index write) are adopted,
// indexed-but-missing blobs are dropped, and refs whose target vanished
// are deleted.
func (s *Disk) reconcile() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return fmt.Errorf("store: scanning blobs: %w", err)
	}
	onDisk := make(map[string]int64, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), "tmp-") {
			continue
		}
		if _, err := parseDigest("sha256:" + e.Name()); err != nil {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		onDisk["sha256:"+e.Name()] = info.Size()
	}
	s.blobs = onDisk
	for name, d := range s.refs {
		if _, ok := s.blobs[d]; !ok {
			delete(s.refs, name)
		}
	}
	return s.compactRefsLocked()
}

// replayJournal applies refs.jsonl on top of the snapshot loadIndex
// read. Replay stops at the first malformed line — a torn trailing
// append loses only that entry; the refs are cache metadata and the
// recompute path covers anything dropped.
func (s *Disk) replayJournal() {
	data, err := os.ReadFile(s.journalPath())
	if err != nil {
		return
	}
	d := jsonl.NewDecoder[refJournalEntry]("store: ref journal", data)
	for {
		e, ok, err := d.Next()
		if err != nil {
			log.Printf("store: %s: %v; dropping the journal tail", s.journalPath(), err)
			return
		}
		if !ok {
			return
		}
		for name, digest := range e.Set {
			s.refs[name] = digest
		}
		for _, name := range e.Del {
			delete(s.refs, name)
		}
	}
}

// appendRefsLocked journals one ref mutation (already applied to
// s.refs): a single O_APPEND write instead of a whole-snapshot rewrite.
// When the journal has grown far past the live ref set it is folded
// into a fresh snapshot. Callers hold s.mu.
func (s *Disk) appendRefsLocked(e refJournalEntry) error {
	if s.journalLen >= journalCompactAt && s.journalLen >= 4*len(s.refs) {
		return s.compactRefsLocked()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(s.journalPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening ref journal: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: appending ref journal: %w", werr)
	}
	s.journalLen++
	return nil
}

// compactRefsLocked folds the journal into a fresh snapshot: write
// index.json, then remove refs.jsonl. A crash between the two replays
// already-snapshotted entries on the next Open — harmless, the replay
// is idempotent. Callers hold s.mu (or have exclusive access in Open).
func (s *Disk) compactRefsLocked() error {
	if err := s.persistIndexLocked(); err != nil {
		return err
	}
	if err := os.Remove(s.journalPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: removing ref journal: %w", err)
	}
	s.journalLen = 0
	return nil
}

// persistIndexLocked atomically rewrites index.json. Callers hold s.mu
// (or have exclusive access during Open).
func (s *Disk) persistIndexLocked() error {
	data, err := json.Marshal(indexFile{Version: indexVersion, Refs: s.refs})
	if err != nil {
		return err
	}
	return s.atomicWrite(s.indexPath(), data)
}

// atomicWrite writes data to path via a temp file + rename in the same
// directory, so readers never observe a partial file.
func (s *Disk) atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: renaming into %s: %w", path, err)
	}
	return nil
}

// Put implements BlobStore. A duplicate Put verifies the existing file
// and rewrites it when the bytes no longer hash to the digest — the
// self-healing path: after a torn write or bit rot, the recompute that
// the corruption forced re-stores pristine content instead of leaving
// the digest permanently poisoned behind the dedup check.
func (s *Disk) Put(data []byte) (string, error) {
	d := DigestOf(data)
	h, _ := parseDigest(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[d]; ok {
		if onDisk, err := os.ReadFile(s.blobPath(h)); err == nil && DigestOf(onDisk) == d {
			return d, nil
		}
		// Damaged or unreadable: fall through and rewrite.
	}
	if err := s.atomicWrite(s.blobPath(h), data); err != nil {
		return "", err
	}
	// No index write: the blob file itself is the durable record (Open
	// rescans the directory), so Put costs one file write, not two.
	s.blobs[d] = int64(len(data))
	return d, nil
}

// Get implements BlobStore: reads and re-verifies the blob end to end.
// A blob that turns out unservable — the file vanished under us, or its
// bytes no longer hash to the digest — is evicted from the inventory, so
// Has stops answering true and SetRef refuses to point new refs at it.
// Without the eviction a sync manifest would keep advertising content
// this store can never deliver.
func (s *Disk) Get(digest string) ([]byte, error) {
	h, err := parseDigest(digest)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.blobPath(h))
	if os.IsNotExist(err) {
		s.evict(digest)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", digest, err)
	}
	if DigestOf(data) != digest {
		// Leave the damaged file for Put's self-healing rewrite, but stop
		// advertising it: a federation peer must see the truthful
		// inventory, and the next Put of this digest restores both.
		s.evict(digest)
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, digest)
	}
	return data, nil
}

// evict drops a digest from the in-memory inventory along with any refs
// pointing at it (mirroring Open's reconcile). The index file is not
// rewritten: eviction is cache coherence, not durable state — the next
// Open's blob scan and ref reconcile reach the same conclusion from the
// directory itself.
func (s *Disk) evict(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, digest)
	for name, d := range s.refs {
		if d == digest {
			delete(s.refs, name)
		}
	}
}

// Has implements BlobStore.
func (s *Disk) Has(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[digest]
	return ok
}

// Len implements BlobStore.
func (s *Disk) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// Digests implements BlobStore.
func (s *Disk) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.blobs))
	for d := range s.blobs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SetRef implements BlobStore. Re-pointing a ref at the digest it
// already holds — every warm re-push does this — skips the journal
// append entirely, so only genuinely new refs pay a write.
func (s *Disk) SetRef(name, digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[digest]; !ok {
		return fmt.Errorf("%w: ref %q target %s", ErrNotFound, name, digest)
	}
	if s.refs[name] == digest {
		return nil
	}
	s.refs[name] = digest
	return s.appendRefsLocked(refJournalEntry{Set: map[string]string{name: digest}})
}

// SetRefs implements BlobStore: all targets validated up front, all
// refs applied, one journal append (none if nothing changed).
func (s *Disk) SetRefs(refs map[string]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, digest := range refs {
		if _, ok := s.blobs[digest]; !ok {
			return fmt.Errorf("%w: ref %q target %s", ErrNotFound, name, digest)
		}
	}
	changed := make(map[string]string, len(refs))
	for name, digest := range refs {
		if s.refs[name] != digest {
			s.refs[name] = digest
			changed[name] = digest
		}
	}
	if len(changed) == 0 {
		return nil
	}
	return s.appendRefsLocked(refJournalEntry{Set: changed})
}

// Ref implements BlobStore.
func (s *Disk) Ref(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.refs[name]
	return d, ok
}

// Refs implements BlobStore.
func (s *Disk) Refs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedKeys(s.refs)
}

// DeleteRef implements BlobStore.
func (s *Disk) DeleteRef(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.refs[name]; !ok {
		return nil
	}
	delete(s.refs, name)
	return s.appendRefsLocked(refJournalEntry{Del: []string{name}})
}

// DeleteRefs implements BlobStore: all removals, one journal append
// (none if nothing was present).
func (s *Disk) DeleteRefs(names []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []string
	for _, name := range names {
		if _, ok := s.refs[name]; ok {
			delete(s.refs, name)
			removed = append(removed, name)
		}
	}
	if len(removed) == 0 {
		return nil
	}
	return s.appendRefsLocked(refJournalEntry{Del: removed})
}

// GC implements BlobStore: sweeps blobs that are neither in live nor the
// direct target of a ref. Refs are untouched, so no index write happens —
// the blob files and the in-memory inventory are the only casualties.
func (s *Disk) GC(live map[string]bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	targets := make(map[string]bool, len(s.refs))
	for _, d := range s.refs {
		targets[d] = true
	}
	removed := 0
	for d := range s.blobs {
		if live[d] || targets[d] {
			continue
		}
		h, err := parseDigest(d)
		if err != nil {
			continue
		}
		if err := os.Remove(s.blobPath(h)); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("store: gc %s: %w", d, err)
		}
		delete(s.blobs, d)
		removed++
	}
	return removed, nil
}
