package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Regression tests for the inventory-coherence fixes in Disk: a blob
// that vanishes or rots under an open store must drop out of the
// in-memory inventory the moment Get discovers it, and an index written
// by an unknown schema version must not be parsed as v1.

func TestDiskGetEvictsVanishedBlob(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Put([]byte("ephemeral"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("study/gone", d); err != nil {
		t.Fatal(err)
	}
	h, _ := parseDigest(d)
	if err := os.Remove(filepath.Join(dir, "blobs", h)); err != nil {
		t.Fatal(err)
	}

	// Before the fix, the failed Get left the stale inventory entry
	// behind: Has stayed true and SetRef happily pointed new names at a
	// blob that could never be served.
	if _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after file removal: %v, want ErrNotFound", err)
	}
	if s.Has(d) {
		t.Fatal("Has still true after Get discovered the blob vanished")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after eviction, want 0", s.Len())
	}
	if err := s.SetRef("study/new", d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetRef at evicted digest: %v, want ErrNotFound", err)
	}
	if _, ok := s.Ref("study/gone"); ok {
		t.Fatal("ref to the vanished blob survived eviction")
	}
}

func TestDiskGetEvictsCorruptBlobAndPutHeals(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("pristine")
	d, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := parseDigest(d)
	if err := os.WriteFile(filepath.Join(dir, "blobs", h), []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of damaged blob: %v, want ErrCorrupt", err)
	}
	if s.Has(d) {
		t.Fatal("Has still true after Get discovered corruption")
	}

	// Self-healing: re-storing the digest rewrites the damaged file and
	// readmits it to the inventory.
	if _, err := s.Put(content); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatalf("Get after healing Put: %v", err)
	}
	if string(got) != string(content) {
		t.Fatalf("healed blob reads %q, want %q", got, content)
	}
}

func TestDiskLoadIndexRejectsUnknownVersion(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Put([]byte("survives the schema bump"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("study/v1", d); err != nil {
		t.Fatal(err)
	}

	// Simulate a future build having rewritten the index: same refs
	// key, unknown version. A v1 reader must not trust those refs.
	idx := `{"version":99,"refs":{"study/v1":"` + d + `","study/phantom":"` + d + `"}}`
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(idx), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over a future-version index: %v", err)
	}
	// The blob scan recovers the content; the foreign refs are dropped.
	if !re.Has(d) {
		t.Fatal("blob lost across the version-mismatch rebuild")
	}
	if refs := re.Refs(); len(refs) != 0 {
		t.Fatalf("refs from a version-99 index were adopted: %v", refs)
	}
	// The rebuilt store persists a clean v1 index it can trust next time.
	if err := re.SetRef("study/v1", d); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := again.Ref("study/v1"); !ok || got != d {
		t.Fatalf("rewritten v1 index did not round-trip: %q %v", got, ok)
	}
}

func TestDiskJournalTornTrailingLine(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := s.Put([]byte("survives"))
	d2, _ := s.Put([]byte("also survives"))
	if err := s.SetRef("study/a", d1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("study/b", d2); err != nil {
		t.Fatal(err)
	}

	// Simulate a power loss mid-append: a torn, half-written trailing
	// journal line. Replay must keep every complete entry before it.
	f, err := os.OpenFile(filepath.Join(dir, "refs.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"set":{"study/torn":"sha`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over a torn journal: %v", err)
	}
	if got, ok := re.Ref("study/a"); !ok || got != d1 {
		t.Fatalf("complete entry lost to the torn tail: %q %v", got, ok)
	}
	if got, ok := re.Ref("study/b"); !ok || got != d2 {
		t.Fatalf("complete entry lost to the torn tail: %q %v", got, ok)
	}
	if _, ok := re.Ref("study/torn"); ok {
		t.Fatal("torn entry must not be adopted")
	}
	if _, err := os.Stat(filepath.Join(dir, "refs.jsonl")); !os.IsNotExist(err) {
		t.Fatal("Open should compact the journal into a fresh snapshot")
	}
}

func TestDiskJournalDeleteReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Put([]byte("ref churn"))
	if err := s.SetRef("study/keep", d); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("study/drop", d); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteRef("study/drop"); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Ref("study/drop"); ok {
		t.Fatal("journaled delete not replayed")
	}
	if got, ok := re.Ref("study/keep"); !ok || got != d {
		t.Fatalf("surviving ref lost: %q %v", got, ok)
	}
}
