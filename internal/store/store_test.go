package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// both runs a subtest against a Disk store and a Memory store, proving
// the two BlobStore implementations are interchangeable.
func both(t *testing.T, fn func(t *testing.T, s BlobStore)) {
	t.Helper()
	t.Run("disk", func(t *testing.T) {
		t.Parallel()
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, s)
	})
	t.Run("memory", func(t *testing.T) {
		t.Parallel()
		fn(t, NewMemory())
	})
}

func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		data := []byte("the supermarket fish problem")
		d, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		if d != DigestOf(data) || !strings.HasPrefix(d, "sha256:") {
			t.Fatalf("digest = %q", d)
		}
		got, err := s.Get(d)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("get: %v %q", err, got)
		}
		if !s.Has(d) || s.Len() != 1 {
			t.Fatalf("Has=%v Len=%d", s.Has(d), s.Len())
		}
		// Idempotent: same content, same digest, no growth.
		if d2, _ := s.Put(data); d2 != d || s.Len() != 1 {
			t.Fatalf("dedup broken: %q len=%d", d2, s.Len())
		}
	})
}

func TestGetMissingAndMalformed(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		if _, err := s.Get(DigestOf([]byte("absent"))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		for _, bad := range []string{"", "sha256:short", "md5:abc", "sha256:../../../etc/passwd", "sha256:" + strings.Repeat("Z", 64)} {
			if _, err := s.Get(bad); !errors.Is(err, ErrBadDigest) {
				t.Fatalf("digest %q: want ErrBadDigest, got %v", bad, err)
			}
		}
	})
}

func TestRefs(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		d, _ := s.Put([]byte("v1"))
		if err := s.SetRef("study/abc", "sha256:"+strings.Repeat("0", 64)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("ref to missing blob accepted: %v", err)
		}
		if err := s.SetRef("study/abc", d); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Ref("study/abc")
		if !ok || got != d {
			t.Fatalf("ref = %q %v", got, ok)
		}
		d2, _ := s.Put([]byte("v2"))
		if err := s.SetRef("study/abc", d2); err != nil { // refs are mutable
			t.Fatal(err)
		}
		if got, _ := s.Ref("study/abc"); got != d2 {
			t.Fatalf("ref not updated: %q", got)
		}
		s.SetRef("unit/x", d)
		if refs := s.Refs(); len(refs) != 2 || refs[0] != "study/abc" || refs[1] != "unit/x" {
			t.Fatalf("refs = %v", refs)
		}
		if err := s.DeleteRef("unit/x"); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteRef("unit/x"); err != nil { // idempotent
			t.Fatal(err)
		}
		if refs := s.Refs(); len(refs) != 1 {
			t.Fatalf("refs after delete = %v", refs)
		}
	})
}

func TestGCKeepsLiveAndRefTargets(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		kept, _ := s.Put([]byte("live"))
		tagged, _ := s.Put([]byte("tagged"))
		doomed, _ := s.Put([]byte("doomed"))
		s.SetRef("tags/x", tagged)
		removed, err := s.GC(map[string]bool{kept: true})
		if err != nil {
			t.Fatal(err)
		}
		if removed != 1 {
			t.Fatalf("removed %d, want 1", removed)
		}
		if !s.Has(kept) || !s.Has(tagged) || s.Has(doomed) {
			t.Fatalf("gc kept wrong set: live=%v tagged=%v doomed=%v", s.Has(kept), s.Has(tagged), s.Has(doomed))
		}
		if _, err := s.Get(doomed); !errors.Is(err, ErrNotFound) {
			t.Fatalf("swept blob still readable: %v", err)
		}
	})
}

func TestBlobRoundTripProperty(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		f := func(data []byte) bool {
			d, err := s.Put(data)
			if err != nil {
				return false
			}
			got, err := s.Get(d)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConcurrentPuts(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, s BlobStore) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					data := []byte(fmt.Sprintf("blob-%d-%d", i, j))
					d, err := s.Put(data)
					if err != nil {
						t.Errorf("put: %v", err)
						return
					}
					if got, err := s.Get(d); err != nil || !bytes.Equal(got, data) {
						t.Errorf("get after put: %v", err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if s.Len() != 8*20 {
			t.Fatalf("len = %d, want %d", s.Len(), 8*20)
		}
	})
}

func TestDiskPersistsAcrossOpen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s1.Put([]byte("durable"))
	if err := s1.SetRef("study/k", d); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(d)
	if err != nil || string(got) != "durable" {
		t.Fatalf("reopen lost blob: %v %q", err, got)
	}
	if ref, ok := s2.Ref("study/k"); !ok || ref != d {
		t.Fatalf("reopen lost ref: %q %v", ref, ok)
	}
}

func TestDiskRebuildsFromBlobsWhenIndexLost(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s1, _ := Open(dir)
	d, _ := s1.Put([]byte("orphan-adopted"))
	s1.SetRef("tags/x", d)

	// A lost snapshot alone is survivable: the ref journal holds every
	// mutation since the last compaction, so replay recovers the ref.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(d) {
		t.Fatal("blob not recovered from directory scan")
	}
	if ref, ok := s2.Ref("tags/x"); !ok || ref != d {
		t.Fatalf("journal replay should recover the ref: %q %v", ref, ok)
	}

	// Losing both snapshot and journal loses the refs; the blobs are
	// still the truth and the scan recovers the content.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "refs.jsonl")); err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Has(d) {
		t.Fatal("blob not recovered from directory scan")
	}
	if _, ok := s3.Ref("tags/x"); ok {
		t.Fatal("refs should not survive losing both snapshot and journal")
	}
}

func TestDiskDetectsCorruption(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, _ := Open(dir)
	data := []byte("will be damaged")
	d, _ := s.Put(data)

	h := strings.TrimPrefix(d, "sha256:")
	if err := os.WriteFile(filepath.Join(dir, "blobs", h), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestMemoryCorruptHook(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	d, _ := m.Put([]byte("pristine"))
	if !m.Corrupt(d) {
		t.Fatal("Corrupt reported absent digest")
	}
	if _, err := m.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if m.Corrupt("sha256:" + strings.Repeat("0", 64)) {
		t.Fatal("Corrupt invented a digest")
	}
}

func TestDiskLeavesNoTempFiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 10; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("blob %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, sub := range []string{dir, filepath.Join(dir, "blobs")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "tmp-") {
				t.Fatalf("leftover temp file %s", e.Name())
			}
		}
	}
}

// TestPutHealsCorruptBlob pins the self-healing path: re-storing pristine
// content for a digest whose bytes were damaged replaces the damage, so a
// recompute-after-corruption repairs the store instead of leaving the
// digest permanently poisoned behind the dedup check.
func TestPutHealsCorruptBlob(t *testing.T) {
	t.Parallel()
	t.Run("disk", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		s, _ := Open(dir)
		data := []byte("heal me")
		d, _ := s.Put(data)
		h := strings.TrimPrefix(d, "sha256:")
		if err := os.WriteFile(filepath.Join(dir, "blobs", h), []byte("damage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(d); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("setup: want ErrCorrupt, got %v", err)
		}
		if _, err := s.Put(data); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(d)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("blob not healed: %v %q", err, got)
		}
	})
	t.Run("memory", func(t *testing.T) {
		t.Parallel()
		m := NewMemory()
		data := []byte("heal me")
		d, _ := m.Put(data)
		m.Corrupt(d)
		if _, err := m.Put(data); err != nil {
			t.Fatal(err)
		}
		if got, err := m.Get(d); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("blob not healed: %v %q", err, got)
		}
	})
}
