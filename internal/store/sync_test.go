package store

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// seedStore fills a store with n deterministic blobs (seed-keyed
// content) and a ref per blob, returning the digests in Put order.
func seedStore(t *testing.T, s BlobStore, seed int64, n int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	digests := make([]string, 0, n)
	for i := 0; i < n; i++ {
		data := make([]byte, 16+rng.Intn(64))
		rng.Read(data)
		d, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetRef(fmt.Sprintf("study/%d-%d", seed, i), d); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	return digests
}

// assertConverged asserts two stores are identical: same refs resolving
// to the same digests, same blob count, byte-identical blobs.
func assertConverged(t *testing.T, a, b BlobStore) {
	t.Helper()
	if got, want := a.Len(), b.Len(); got != want {
		t.Fatalf("Len: %d vs %d", got, want)
	}
	ar, br := a.Refs(), b.Refs()
	if len(ar) != len(br) {
		t.Fatalf("Refs: %d vs %d (%v vs %v)", len(ar), len(br), ar, br)
	}
	for i, name := range ar {
		if br[i] != name {
			t.Fatalf("ref name %d: %q vs %q", i, name, br[i])
		}
		da, _ := a.Ref(name)
		db, _ := b.Ref(name)
		if da != db {
			t.Fatalf("ref %q: %s vs %s", name, da, db)
		}
	}
	for _, d := range a.Digests() {
		ba, err := a.Get(d)
		if err != nil {
			t.Fatalf("a.Get(%s): %v", d, err)
		}
		bb, err := b.Get(d)
		if err != nil {
			t.Fatalf("b.Get(%s): %v", d, err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("blob %s differs between converged stores", d)
		}
	}
}

// TestSyncPushIdempotent pins the cheap-no-op property: a Push into an
// empty peer transfers everything, a re-Push of converged stores
// transfers zero blobs and zero refs, and Pull in the converged state
// is equally free.
func TestSyncPushIdempotent(t *testing.T) {
	t.Parallel()
	both(t, func(t *testing.T, src BlobStore) {
		ctx := context.Background()
		seedStore(t, src, 1, 8)
		dst := NewMemory()

		st, err := Push(ctx, src, Local{dst})
		if err != nil {
			t.Fatal(err)
		}
		if st.BlobsSent != 8 || st.RefsApplied != 8 || st.BlobsSkipped != 0 {
			t.Fatalf("first push moved %+v, want 8 blobs and 8 refs", st)
		}
		assertConverged(t, src, dst)

		for i, resync := range []func() (SyncStats, error){
			func() (SyncStats, error) { return Push(ctx, src, Local{dst}) },
			func() (SyncStats, error) { return Pull(ctx, src, Local{dst}) },
			func() (SyncStats, error) { return Push(ctx, dst, Local{src}) },
		} {
			st, err := resync()
			if err != nil {
				t.Fatal(err)
			}
			if st != (SyncStats{}) {
				t.Fatalf("re-sync %d of converged stores moved %+v, want all zeros", i, st)
			}
		}
	})
}

// TestSyncBidirectionalConvergence is the convergence property test:
// two stores populated from divergent (partially overlapping) content,
// reconciled by interleaved bidirectional syncs, converge to identical
// Refs()/Len() with byte-identical blobs — and the converged state is a
// fixed point.
func TestSyncBidirectionalConvergence(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			a, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			b := NewMemory()
			seedStore(t, a, 100+seed, 5) // a-only content
			seedStore(t, b, 200+seed, 7) // b-only content
			shared := seedStore(t, a, 300+seed, 3)
			for i, d := range shared { // overlap: same blobs, same ref names
				data, _ := a.Get(d)
				if _, err := b.Put(data); err != nil {
					t.Fatal(err)
				}
				if err := b.SetRef(fmt.Sprintf("study/%d-%d", 300+seed, i), d); err != nil {
					t.Fatal(err)
				}
			}
			// A divergent ref: same name, different targets on each side.
			// LWW means whoever syncs into a store last owns the name; the
			// final exchange below makes both sides agree.
			da, _ := a.Ref(fmt.Sprintf("study/%d-0", 100+seed))
			db, _ := b.Ref(fmt.Sprintf("study/%d-0", 200+seed))
			if err := a.SetRef("unit/divergent", da); err != nil {
				t.Fatal(err)
			}
			if err := b.SetRef("unit/divergent", db); err != nil {
				t.Fatal(err)
			}

			// Interleaved bidirectional exchange.
			if _, err := Push(ctx, a, Local{b}); err != nil {
				t.Fatal(err)
			}
			if _, err := Pull(ctx, a, Local{b}); err != nil {
				t.Fatal(err)
			}
			// After a→b then b→a, "unit/divergent" holds b's value in both
			// stores... except the pull also rewrote a. One more a→b push
			// settles any name the pull flipped; convergence must follow.
			if st, err := Push(ctx, a, Local{b}); err != nil || st.BlobsSent != 0 {
				t.Fatalf("settling push moved blobs (%+v, err %v); blobs were already converged", st, err)
			}
			assertConverged(t, a, b)

			// Fixed point: nothing moves in either direction anymore.
			st1, err := Push(ctx, a, Local{b})
			if err != nil {
				t.Fatal(err)
			}
			st2, err := Pull(ctx, a, Local{b})
			if err != nil {
				t.Fatal(err)
			}
			if st1 != (SyncStats{}) || st2 != (SyncStats{}) {
				t.Fatalf("converged stores still transferred: push %+v pull %+v", st1, st2)
			}
		})
	}
}

// TestSyncSkipsUnservableBlobs pins the federation half of the Disk.Get
// eviction fix: a blob lost on disk after inventory is skipped, its ref
// is withheld (the peer never gains a dangling name), and the source's
// own manifest stops advertising it.
func TestSyncSkipsUnservableBlobs(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	dir := t.TempDir()
	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digests := seedStore(t, src, 42, 4)

	// Lose one blob file out from under the open store.
	lost := digests[2]
	if err := os.Remove(filepath.Join(dir, "blobs", lost[len("sha256:"):])); err != nil {
		t.Fatal(err)
	}

	dst := NewMemory()
	st, err := Push(ctx, src, Local{dst})
	if err != nil {
		t.Fatal(err)
	}
	if st.BlobsSent != 3 || st.BlobsSkipped != 1 {
		t.Fatalf("push stats %+v, want 3 sent 1 skipped", st)
	}
	if dst.Has(lost) {
		t.Fatal("peer received a blob the source could not serve")
	}
	if _, ok := dst.Ref("study/42-2"); ok {
		t.Fatal("peer gained a ref whose blob was never transferred")
	}
	// The failed Get evicted the blob: the next inventory is truthful
	// and a re-push moves nothing.
	if src.Has(lost) {
		t.Fatal("source still advertises the lost blob")
	}
	st, err = Push(ctx, src, Local{dst})
	if err != nil {
		t.Fatal(err)
	}
	if st != (SyncStats{}) {
		t.Fatalf("re-push after eviction moved %+v, want zeros", st)
	}
}

// TestTakeInventoryWithholdsDanglingRefs: a ref whose target blob is
// absent must not be advertised, whatever store it came from.
func TestTakeInventoryWithholdsDanglingRefs(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	d, err := m.Put([]byte("anchored"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRef("study/ok", d); err != nil {
		t.Fatal(err)
	}
	// Reach in: drop the blob, leaving the ref dangling.
	m.mu.Lock()
	delete(m.blobs, d)
	m.mu.Unlock()
	inv := TakeInventory(m)
	if len(inv.Digests) != 0 || len(inv.Refs) != 0 {
		t.Fatalf("inventory advertises unservable content: %+v", inv)
	}
}
