// Package lsf implements the batch front-end of the study's cluster B:
// IBM Spectrum LSF's bsub/bjobs/bkill interface over the shared
// simulation clock. B is the on-premises GPU system (IBM POWER9, 4 × V100
// per node, InfiniBand EDR) where all on-premises GPU runs queued.
package lsf

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// JobState mirrors bjobs states.
type JobState string

const (
	StatePend JobState = "PEND"
	StateRun  JobState = "RUN"
	StateDone JobState = "DONE"
	StateExit JobState = "EXIT" // non-zero exit (bad node, bkill, limit)
)

// Request is a bsub submission: -nnodes, -W (minutes), -J name.
type Request struct {
	Name   string
	Nodes  int
	Limit  time.Duration // -W wall limit; 0 = none
	RunFor time.Duration // true body duration
	OnEnd  func(*Job)
}

// Job is a tracked submission.
type Job struct {
	ID        int
	Req       Request
	State     JobState
	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	ExitInfo  string
}

// Cluster is the LSF management host (mbatchd) over a node pool.
type Cluster struct {
	sim *sim.Simulation
	log *trace.Log
	env string

	totalNodes int
	freeNodes  int
	queue      []*Job
	jobs       map[int]*Job
	nextID     int
}

// ErrTooLarge is returned when a job can never fit the cluster.
var ErrTooLarge = errors.New("lsf: job exceeds cluster size")

// New creates the controller.
func New(s *sim.Simulation, log *trace.Log, env string, nodes int) *Cluster {
	return &Cluster{sim: s, log: log, env: env, totalNodes: nodes, freeNodes: nodes,
		jobs: make(map[int]*Job)}
}

// Bsub submits a job and returns its ID.
func (c *Cluster) Bsub(req Request) (int, error) {
	if req.Nodes <= 0 {
		return 0, fmt.Errorf("lsf: job %q requests %d nodes", req.Name, req.Nodes)
	}
	if req.Nodes > c.totalNodes {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, req.Nodes, c.totalNodes)
	}
	c.nextID++
	j := &Job{ID: c.nextID, Req: req, State: StatePend, Submitted: c.sim.Now()}
	c.jobs[j.ID] = j
	c.queue = append(c.queue, j)
	c.log.Addf(c.sim.Now(), c.env, trace.Info, trace.Routine,
		"Job <%d> is submitted to default queue <normal>.", j.ID)
	c.dispatch()
	return j.ID, nil
}

// dispatch starts queued jobs FIFO.
func (c *Cluster) dispatch() {
	remaining := c.queue[:0]
	for _, j := range c.queue {
		if j.Req.Nodes > c.freeNodes {
			remaining = append(remaining, j)
			continue
		}
		c.freeNodes -= j.Req.Nodes
		j.State = StateRun
		j.Started = c.sim.Now()
		dur := j.Req.RunFor
		killed := false
		if j.Req.Limit > 0 && dur > j.Req.Limit {
			dur = j.Req.Limit
			killed = true
		}
		job := j
		c.sim.After(dur, fmt.Sprintf("lsf job %d ends", j.ID), func() { c.finish(job, killed) })
	}
	c.queue = remaining
}

// finish terminates a job.
func (c *Cluster) finish(j *Job, killed bool) {
	if j.State != StateRun {
		return // bkilled while running: already terminal
	}
	c.freeNodes += j.Req.Nodes
	j.Ended = c.sim.Now()
	if killed {
		j.State = StateExit
		j.ExitInfo = fmt.Sprintf("TERM_RUNLIMIT: job killed after reaching LSF run time limit %v", j.Req.Limit)
		c.log.Addf(c.sim.Now(), c.env, trace.Manual, trace.Unexpected, "job %d hit its run limit", j.ID)
	} else {
		j.State = StateDone
	}
	if j.Req.OnEnd != nil {
		j.Req.OnEnd(j)
	}
	c.dispatch()
}

// Bkill cancels a job. Pending jobs leave the queue; running jobs free
// their nodes immediately.
func (c *Cluster) Bkill(id int) error {
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("lsf: job <%d> is not found", id)
	}
	switch j.State {
	case StatePend:
		for i, q := range c.queue {
			if q == j {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
	case StateRun:
		c.freeNodes += j.Req.Nodes
	default:
		return fmt.Errorf("lsf: job <%d> already finished", id)
	}
	j.State = StateExit
	j.ExitInfo = "TERM_OWNER: job killed by owner"
	j.Ended = c.sim.Now()
	if j.Req.OnEnd != nil {
		j.Req.OnEnd(j)
	}
	c.dispatch()
	return nil
}

// Job looks a job up by ID.
func (c *Cluster) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// FreeNodes reports idle nodes.
func (c *Cluster) FreeNodes() int { return c.freeNodes }

// Bjobs renders the queue view for non-terminal jobs ("bjobs"), or all
// jobs when all is true ("bjobs -a").
func (c *Cluster) Bjobs(all bool) string {
	var ids []int
	for id, j := range c.jobs {
		if all || j.State == StatePend || j.State == StateRun {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %-6s %-8s %s\n", "JOBID", "JOB_NAME", "STAT", "NODES", "RUN_TIME")
	for _, id := range ids {
		j := c.jobs[id]
		elapsed := time.Duration(0)
		switch {
		case j.State == StateRun:
			elapsed = c.sim.Now() - j.Started
		case j.Ended > j.Started:
			elapsed = j.Ended - j.Started
		}
		fmt.Fprintf(&b, "%-8d %-10s %-6s %-8d %s\n", j.ID, j.Req.Name, j.State, j.Req.Nodes, elapsed.Round(time.Second))
	}
	return b.String()
}
