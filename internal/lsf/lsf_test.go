package lsf

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func newB() (*sim.Simulation, *Cluster) {
	s := sim.New(1)
	// Cluster B: 795 nodes.
	return s, New(s, trace.NewLog(), "onprem-b-gpu", 795)
}

func TestBsubRunsToDone(t *testing.T) {
	s, c := newB()
	var ended *Job
	id, err := c.Bsub(Request{Name: "amg2023", Nodes: 64, RunFor: 10 * time.Minute,
		OnEnd: func(j *Job) { ended = j }})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if ended == nil || ended.ID != id || ended.State != StateDone {
		t.Fatalf("job: %+v", ended)
	}
	if c.FreeNodes() != 795 {
		t.Fatalf("nodes not freed: %d", c.FreeNodes())
	}
}

func TestRunLimitKill(t *testing.T) {
	s, c := newB()
	var final *Job
	c.Bsub(Request{Name: "quicksilver-gpu", Nodes: 32, RunFor: 3 * time.Hour,
		Limit: time.Hour, OnEnd: func(j *Job) { final = j }})
	s.Run()
	if final.State != StateExit || !strings.Contains(final.ExitInfo, "TERM_RUNLIMIT") {
		t.Fatalf("job: %+v", final)
	}
	if s.Now() != time.Hour {
		t.Fatalf("killed at %v", s.Now())
	}
}

func TestQueueWhenFull(t *testing.T) {
	s, c := newB()
	var order []string
	mk := func(name string, nodes int) {
		c.Bsub(Request{Name: name, Nodes: nodes, RunFor: time.Minute,
			OnEnd: func(j *Job) { order = append(order, j.Req.Name) }})
	}
	mk("first", 795)
	mk("second", 795)
	if got := c.Bjobs(false); !strings.Contains(got, "PEND") {
		t.Fatalf("second job should be pending:\n%s", got)
	}
	s.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestBkillPendingAndRunning(t *testing.T) {
	s, c := newB()
	idRun, _ := c.Bsub(Request{Name: "hog", Nodes: 795, RunFor: time.Hour})
	idPend, _ := c.Bsub(Request{Name: "victim", Nodes: 795, RunFor: time.Hour})
	if err := c.Bkill(idPend); err != nil {
		t.Fatal(err)
	}
	if j, _ := c.Job(idPend); j.State != StateExit {
		t.Fatalf("pending kill: %+v", j)
	}
	if err := c.Bkill(idRun); err != nil {
		t.Fatal(err)
	}
	if c.FreeNodes() != 795 {
		t.Fatalf("running kill should free nodes: %d", c.FreeNodes())
	}
	if err := c.Bkill(idRun); err == nil {
		t.Fatalf("double bkill must fail")
	}
	if err := c.Bkill(424242); err == nil {
		t.Fatalf("unknown job bkill must fail")
	}
	s.Run() // the stale completion event must not corrupt state
	if c.FreeNodes() != 795 {
		t.Fatalf("stale completion double-freed nodes: %d", c.FreeNodes())
	}
}

func TestBsubRejections(t *testing.T) {
	_, c := newB()
	if _, err := c.Bsub(Request{Name: "zero", Nodes: 0}); err == nil {
		t.Fatalf("zero nodes accepted")
	}
	if _, err := c.Bsub(Request{Name: "huge", Nodes: 1000}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestBjobsRendering(t *testing.T) {
	s, c := newB()
	c.Bsub(Request{Name: "lammps", Nodes: 16, RunFor: time.Minute})
	out := c.Bjobs(false)
	if !strings.Contains(out, "lammps") || !strings.Contains(out, "RUN") {
		t.Fatalf("bjobs:\n%s", out)
	}
	s.Run()
	if out := c.Bjobs(false); strings.Contains(out, "lammps") {
		t.Fatalf("finished job shown without -a:\n%s", out)
	}
	if out := c.Bjobs(true); !strings.Contains(out, "DONE") {
		t.Fatalf("bjobs -a should show finished jobs:\n%s", out)
	}
}
