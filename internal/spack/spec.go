// Package spack simulates the on-premises software build path of the
// study: Spack specs with variants, a small package repository, a
// concretizer that resolves a spec against it, and a builder that runs
// the DAG in dependency order and exposes results as environment modules
// (paper §2.7: "CPU and GPU variants of AMG2023 were built using the
// Spack package manager, and all other applications were built from
// respective open source repositories").
package spack

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is a parsed package request: name@version with +/~variants and
// ^dependency constraints, e.g.
//
//	amg2023@1.2 +cuda ^hypre@2.31 +mixedint
type Spec struct {
	Name     string
	Version  string          // "" = any
	Variants map[string]bool // +v → true, ~v → false
	Deps     []Spec          // ^dep constraints
}

// Parse parses Spack's spec syntax (the subset the study used).
func Parse(s string) (Spec, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Spec{}, fmt.Errorf("spack: empty spec")
	}
	root, rest, err := parseOne(fields)
	if err != nil {
		return Spec{}, err
	}
	for len(rest) > 0 {
		if !strings.HasPrefix(rest[0], "^") {
			return Spec{}, fmt.Errorf("spack: unexpected token %q (want ^dependency)", rest[0])
		}
		rest[0] = strings.TrimPrefix(rest[0], "^")
		var dep Spec
		dep, rest, err = parseOne(rest)
		if err != nil {
			return Spec{}, err
		}
		root.Deps = append(root.Deps, dep)
	}
	return root, nil
}

// parseOne parses "name@ver +v ~w" until the next ^dep or end.
func parseOne(fields []string) (Spec, []string, error) {
	head := fields[0]
	sp := Spec{Variants: map[string]bool{}}
	if at := strings.IndexByte(head, '@'); at >= 0 {
		sp.Name, sp.Version = head[:at], head[at+1:]
		if sp.Version == "" {
			return Spec{}, nil, fmt.Errorf("spack: dangling @ in %q", head)
		}
	} else {
		sp.Name = head
	}
	if sp.Name == "" {
		return Spec{}, nil, fmt.Errorf("spack: spec with no package name")
	}
	i := 1
	for ; i < len(fields); i++ {
		f := fields[i]
		switch {
		case strings.HasPrefix(f, "+"):
			sp.Variants[f[1:]] = true
		case strings.HasPrefix(f, "~"):
			sp.Variants[f[1:]] = false
		case strings.HasPrefix(f, "^"):
			return sp, fields[i:], nil
		default:
			return Spec{}, nil, fmt.Errorf("spack: unexpected token %q", f)
		}
	}
	return sp, nil, nil
}

// String renders the spec canonically (sorted variants).
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Version != "" {
		b.WriteByte('@')
		b.WriteString(s.Version)
	}
	keys := make([]string, 0, len(s.Variants))
	for k := range s.Variants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if s.Variants[k] {
			b.WriteString(" +" + k)
		} else {
			b.WriteString(" ~" + k)
		}
	}
	for _, d := range s.Deps {
		b.WriteString(" ^" + d.String())
	}
	return b.String()
}
