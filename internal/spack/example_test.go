package spack_test

import (
	"fmt"

	"cloudhpc/internal/spack"
)

// Concretizing the study's AMG2023 GPU spec: the hypre +mixedint variant
// is what keeps the build from segfaulting at scale (paper §2.8).
func ExampleRepo_Concretize() {
	repo := spack.StudyRepo()
	spec, err := spack.Parse("amg2023 +cuda ^hypre +cuda +mixedint ^openmpi@4.1.2")
	if err != nil {
		panic(err)
	}
	concrete, err := repo.Concretize(spec)
	if err != nil {
		panic(err)
	}
	for _, n := range spack.BuildOrder(concrete) {
		fmt.Println(n.Name + "@" + n.Version)
	}
	// Output:
	// cmake@3.23.1
	// openmpi@4.1.2
	// hypre@2.31.0
	// amg2023@1.2
}
