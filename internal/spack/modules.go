package spack

import (
	"fmt"
	"sort"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Builder installs concretized DAGs on a bare-metal system and publishes
// the results as environment modules — the on-premises workflow of the
// study (build with Spack or from source, `module load`, submit).
type Builder struct {
	sim *sim.Simulation
	log *trace.Log
	env string

	installed map[string]*Concrete
	// AMGCorrectness mirrors the §2.8 discovery: AMG2023 CPU builds
	// without hypre +bigint, and GPU (+cuda) builds without +mixedint,
	// segfault at scale. Install reports the latent defect.
}

// NewBuilder returns a builder logging into the study trace.
func NewBuilder(s *sim.Simulation, log *trace.Log, env string) *Builder {
	return &Builder{sim: s, log: log, env: env, installed: make(map[string]*Concrete)}
}

// buildTime estimates one package compile.
func buildTime(n *Concrete) time.Duration {
	base := map[string]time.Duration{
		"cmake": 6 * time.Minute, "openmpi": 18 * time.Minute, "hypre": 12 * time.Minute,
		"mfem": 15 * time.Minute, "amg2023": 8 * time.Minute, "laghos": 10 * time.Minute,
		"lammps": 25 * time.Minute, "kripke": 7 * time.Minute,
		"quicksilver": 6 * time.Minute, "minife": 4 * time.Minute,
	}
	if d, ok := base[n.Name]; ok {
		return d
	}
	return 10 * time.Minute
}

// Install builds the DAG dependency-first, skipping already-installed
// hashes, and returns the install order plus any latent runtime defect
// (empty when the build is sound).
func (b *Builder) Install(root *Concrete) ([]string, string, error) {
	var order []string
	for _, n := range BuildOrder(root) {
		if _, done := b.installed[n.Hash()]; done {
			continue
		}
		b.sim.Clock.Advance(buildTime(n))
		b.installed[n.Hash()] = n
		order = append(order, n.Hash())
		b.log.Addf(b.sim.Now(), b.env, trace.AppSetup, trace.Routine, "spack installed %s", n.Hash())
	}
	return order, b.latentDefect(root), nil
}

// latentDefect reports the AMG2023/hypre integer-width hazards.
func (b *Builder) latentDefect(root *Concrete) string {
	if root.Name != "amg2023" {
		return ""
	}
	var hypre *Concrete
	for _, d := range root.Deps {
		if d.Name == "hypre" {
			hypre = d
		}
	}
	if hypre == nil {
		return "amg2023 concretized without hypre"
	}
	cuda := root.Variants["cuda"]
	switch {
	case cuda && !hypre.Variants["mixedint"]:
		return "segfault: GPU build needs hypre +mixedint (HYPRE_BigInt = long long int)"
	case !cuda && !hypre.Variants["bigint"]:
		return "segfault: CPU build needs hypre +bigint to solve larger systems"
	}
	return ""
}

// ModuleAvail lists installed module names, sorted — `module avail`.
func (b *Builder) ModuleAvail() []string {
	out := make([]string, 0, len(b.installed))
	for h := range b.installed {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// ModuleLoad resolves a module and its dependency closure — `module load`.
// It fails if the module was never installed.
func (b *Builder) ModuleLoad(hash string) ([]string, error) {
	n, ok := b.installed[hash]
	if !ok {
		return nil, fmt.Errorf("spack: module %q not installed", hash)
	}
	var loaded []string
	for _, d := range BuildOrder(n) {
		loaded = append(loaded, d.Hash())
	}
	return loaded, nil
}
