package spack

import "testing"

// FuzzParse hardens the spec parser: no panics, and accepted specs must
// round-trip through their canonical form.
func FuzzParse(f *testing.F) {
	f.Add("amg2023@1.2 +cuda ^hypre +mixedint")
	f.Add("hypre")
	f.Add("pkg@")
	f.Add("a ~b +c ^d@1 ~e")
	f.Add("^lonely")
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := Parse(in)
		if err != nil {
			return
		}
		if sp.Name == "" {
			t.Fatalf("accepted spec with empty name from %q", in)
		}
		re, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", sp.String(), err)
		}
		if re.String() != sp.String() {
			t.Fatalf("canonical form unstable: %q vs %q", re.String(), sp.String())
		}
	})
}
