package spack

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Package is a repository entry: known versions (ascending), declared
// variants with defaults, and dependencies.
type Package struct {
	Name      string
	Versions  []string
	Variants  map[string]bool // name → default
	DependsOn []string
}

// Repo is the package repository the study's builds draw from.
type Repo struct {
	packages map[string]Package
}

// StudyRepo returns a repository covering the study's §2.7 stack.
func StudyRepo() *Repo {
	r := &Repo{packages: map[string]Package{}}
	for _, p := range []Package{
		{Name: "cmake", Versions: []string{"3.20.0", "3.23.1"}},
		{Name: "openmpi", Versions: []string{"4.1.0", "4.1.2"}, DependsOn: []string{"cmake"}},
		{Name: "hypre", Versions: []string{"2.28.0", "2.31.0"},
			Variants:  map[string]bool{"mixedint": false, "bigint": false, "cuda": false},
			DependsOn: []string{"openmpi"}},
		{Name: "amg2023", Versions: []string{"1.0", "1.2"},
			Variants: map[string]bool{"cuda": false}, DependsOn: []string{"hypre", "openmpi"}},
		{Name: "mfem", Versions: []string{"4.6"}, DependsOn: []string{"hypre"}},
		{Name: "laghos", Versions: []string{"3.1"}, DependsOn: []string{"mfem", "openmpi"}},
		{Name: "lammps", Versions: []string{"20230802"}, Variants: map[string]bool{"reaxff": true, "cuda": false},
			DependsOn: []string{"openmpi", "cmake"}},
		{Name: "kripke", Versions: []string{"1.2.7"}, DependsOn: []string{"openmpi", "cmake"}},
		{Name: "quicksilver", Versions: []string{"1.0"}, DependsOn: []string{"openmpi"}},
		{Name: "minife", Versions: []string{"2.2.0"}, DependsOn: []string{"openmpi"}},
	} {
		r.packages[p.Name] = p
	}
	return r
}

// Lookup returns a package definition.
func (r *Repo) Lookup(name string) (Package, error) {
	p, ok := r.packages[name]
	if !ok {
		return Package{}, fmt.Errorf("spack: unknown package %q", name)
	}
	return p, nil
}

// Concrete is a fully resolved node: exact version, all variants decided,
// dependencies concretized.
type Concrete struct {
	Name     string
	Version  string
	Variants map[string]bool
	Deps     []*Concrete
}

// Hash returns a stable identity string for the concrete node, including
// its dependency closure — the DAG hash. Two builds of the same package
// against different dependency variants are different installs (e.g.
// amg2023 against hypre+bigint vs hypre~bigint).
func (c *Concrete) Hash() string {
	keys := make([]string, 0, len(c.Variants))
	for k := range c.Variants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := c.Name + "@" + c.Version
	for _, k := range keys {
		if c.Variants[k] {
			s += "+" + k
		} else {
			s += "~" + k
		}
	}
	if len(c.Deps) > 0 {
		depHashes := make([]string, 0, len(c.Deps))
		for _, d := range c.Deps {
			depHashes = append(depHashes, d.Hash())
		}
		sort.Strings(depHashes)
		sum := sha256.Sum256([]byte(strings.Join(depHashes, ";")))
		s += "/" + hex.EncodeToString(sum[:4])
	}
	return s
}

// Errors from concretization.
var (
	ErrNoSuchVersion = errors.New("spack: requested version not in repository")
	ErrNoSuchVariant = errors.New("spack: variant not declared by package")
)

// Concretize resolves a spec: picks the newest version satisfying the
// request, fills variant defaults, applies ^dep constraints, and recurses.
// The result shares nodes for identical sub-specs (a proper DAG).
func (r *Repo) Concretize(spec Spec) (*Concrete, error) {
	memo := map[string]*Concrete{}
	return r.concretize(spec, constraintsOf(spec), memo)
}

// constraintsOf indexes a root spec's ^dep constraints by package name.
func constraintsOf(spec Spec) map[string]Spec {
	m := map[string]Spec{}
	for _, d := range spec.Deps {
		m[d.Name] = d
	}
	return m
}

func (r *Repo) concretize(spec Spec, constraints map[string]Spec, memo map[string]*Concrete) (*Concrete, error) {
	pkg, err := r.Lookup(spec.Name)
	if err != nil {
		return nil, err
	}

	version := pkg.Versions[len(pkg.Versions)-1] // newest by default
	if spec.Version != "" {
		found := false
		for _, v := range pkg.Versions {
			if v == spec.Version {
				version, found = v, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s@%s (have %v)", ErrNoSuchVersion, spec.Name, spec.Version, pkg.Versions)
		}
	}

	variants := map[string]bool{}
	for k, def := range pkg.Variants {
		variants[k] = def
	}
	for k, v := range spec.Variants {
		if _, declared := pkg.Variants[k]; !declared {
			return nil, fmt.Errorf("%w: %s has no variant %q", ErrNoSuchVariant, spec.Name, k)
		}
		variants[k] = v
	}

	node := &Concrete{Name: spec.Name, Version: version, Variants: variants}
	for _, depName := range pkg.DependsOn {
		depSpec := Spec{Name: depName, Variants: map[string]bool{}}
		if c, ok := constraints[depName]; ok {
			depSpec = c
		}
		dep, err := r.concretize(depSpec, constraints, memo)
		if err != nil {
			return nil, err
		}
		node.Deps = append(node.Deps, dep)
	}
	// Memoize on the full DAG hash so identical sub-specs share one node.
	if existing, ok := memo[node.Hash()]; ok {
		return existing, nil
	}
	memo[node.Hash()] = node
	return node, nil
}

// BuildOrder returns the DAG in dependency-first topological order, each
// node exactly once.
func BuildOrder(root *Concrete) []*Concrete {
	var order []*Concrete
	seen := map[*Concrete]bool{}
	var visit func(n *Concrete)
	visit = func(n *Concrete) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, d := range n.Deps {
			visit(d)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}
