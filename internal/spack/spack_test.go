package spack

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func TestParseSimple(t *testing.T) {
	t.Parallel()
	sp, err := Parse("amg2023@1.2 +cuda ^hypre@2.31.0 +mixedint ~bigint")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "amg2023" || sp.Version != "1.2" || !sp.Variants["cuda"] {
		t.Fatalf("root parsed wrong: %+v", sp)
	}
	if len(sp.Deps) != 1 {
		t.Fatalf("deps = %d", len(sp.Deps))
	}
	dep := sp.Deps[0]
	if dep.Name != "hypre" || dep.Version != "2.31.0" || !dep.Variants["mixedint"] || dep.Variants["bigint"] {
		t.Fatalf("dep parsed wrong: %+v", dep)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{"", "pkg@", "pkg bogus", "pkg ^"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	t.Parallel()
	in := "amg2023@1.2 +cuda ^hypre +mixedint"
	sp, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(sp.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", sp.String(), err)
	}
	if re.String() != sp.String() {
		t.Fatalf("round trip unstable: %q vs %q", re.String(), sp.String())
	}
}

func TestConcretizePicksNewestVersion(t *testing.T) {
	t.Parallel()
	r := StudyRepo()
	sp, _ := Parse("hypre")
	c, err := r.Concretize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != "2.31.0" {
		t.Fatalf("version = %s, want newest 2.31.0", c.Version)
	}
	if c.Variants["mixedint"] || c.Variants["bigint"] {
		t.Fatalf("defaults should be off: %+v", c.Variants)
	}
}

func TestConcretizeRespectsConstraints(t *testing.T) {
	t.Parallel()
	r := StudyRepo()
	sp, _ := Parse("amg2023 +cuda ^hypre +mixedint ^openmpi@4.1.2")
	c, err := r.Concretize(sp)
	if err != nil {
		t.Fatal(err)
	}
	var hypre, ompi *Concrete
	for _, n := range BuildOrder(c) {
		switch n.Name {
		case "hypre":
			hypre = n
		case "openmpi":
			ompi = n
		}
	}
	if hypre == nil || !hypre.Variants["mixedint"] {
		t.Fatalf("hypre constraint lost: %+v", hypre)
	}
	if ompi == nil || ompi.Version != "4.1.2" {
		t.Fatalf("openmpi constraint lost: %+v", ompi)
	}
}

func TestConcretizeErrors(t *testing.T) {
	t.Parallel()
	r := StudyRepo()
	sp, _ := Parse("hypre@9.9.9")
	if _, err := r.Concretize(sp); !errors.Is(err, ErrNoSuchVersion) {
		t.Fatalf("bad version: %v", err)
	}
	sp, _ = Parse("hypre +warp")
	if _, err := r.Concretize(sp); !errors.Is(err, ErrNoSuchVariant) {
		t.Fatalf("bad variant: %v", err)
	}
	sp, _ = Parse("nonexistent")
	if _, err := r.Concretize(sp); err == nil {
		t.Fatalf("unknown package accepted")
	}
}

func TestBuildOrderDependenciesFirst(t *testing.T) {
	t.Parallel()
	r := StudyRepo()
	sp, _ := Parse("laghos")
	c, err := r.Concretize(sp)
	if err != nil {
		t.Fatal(err)
	}
	order := BuildOrder(c)
	pos := map[string]int{}
	for i, n := range order {
		if _, dup := pos[n.Name]; dup {
			t.Fatalf("package %s built twice", n.Name)
		}
		pos[n.Name] = i
	}
	for _, pair := range [][2]string{{"cmake", "openmpi"}, {"openmpi", "hypre"}, {"hypre", "mfem"}, {"mfem", "laghos"}} {
		if pos[pair[0]] > pos[pair[1]] {
			t.Fatalf("%s must build before %s: %v", pair[0], pair[1], pos)
		}
	}
	if order[len(order)-1].Name != "laghos" {
		t.Fatalf("root must build last")
	}
}

func TestSharedDependenciesAreOneNode(t *testing.T) {
	t.Parallel()
	// amg2023 depends on hypre and openmpi; hypre also depends on
	// openmpi — the DAG must share the openmpi node.
	r := StudyRepo()
	sp, _ := Parse("amg2023")
	c, err := r.Concretize(sp)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, n := range BuildOrder(c) {
		if n.Name == "openmpi" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("openmpi appears %d times, want 1 (shared node)", count)
	}
}

func TestAMGIntegerDefects(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	b := NewBuilder(s, trace.NewLog(), "onprem-a-cpu")
	r := StudyRepo()

	// CPU build without +bigint: latent segfault (the study's discovery).
	sp, _ := Parse("amg2023")
	c, _ := r.Concretize(sp)
	_, defect, err := b.Install(c)
	if err != nil || !strings.Contains(defect, "bigint") {
		t.Fatalf("CPU build defect = %q (%v)", defect, err)
	}

	// Correct CPU build.
	sp, _ = Parse("amg2023 ^hypre +bigint")
	c, _ = r.Concretize(sp)
	if _, defect, _ = b.Install(c); defect != "" {
		t.Fatalf("correct CPU build flagged: %q", defect)
	}

	// GPU build needs mixedint, not bigint.
	sp, _ = Parse("amg2023 +cuda ^hypre +cuda")
	c, _ = r.Concretize(sp)
	if _, defect, _ = b.Install(c); !strings.Contains(defect, "mixedint") {
		t.Fatalf("GPU build defect = %q", defect)
	}
	sp, _ = Parse("amg2023 +cuda ^hypre +cuda +mixedint")
	c, _ = r.Concretize(sp)
	if _, defect, _ = b.Install(c); defect != "" {
		t.Fatalf("correct GPU build flagged: %q", defect)
	}
}

func TestInstallSkipsInstalled(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	b := NewBuilder(s, trace.NewLog(), "env")
	r := StudyRepo()
	sp, _ := Parse("kripke")
	c, _ := r.Concretize(sp)
	first, _, err := b.Install(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 { // cmake, openmpi, kripke
		t.Fatalf("first install built %d packages: %v", len(first), first)
	}
	second, _, err := b.Install(c)
	if err != nil || len(second) != 0 {
		t.Fatalf("reinstall should be a no-op, built %v", second)
	}
	// A different app reuses the shared toolchain.
	sp, _ = Parse("minife")
	c, _ = r.Concretize(sp)
	third, _, _ := b.Install(c)
	if len(third) != 1 {
		t.Fatalf("minife should only build itself, built %v", third)
	}
}

func TestModules(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	b := NewBuilder(s, trace.NewLog(), "env")
	r := StudyRepo()
	sp, _ := Parse("lammps")
	c, _ := r.Concretize(sp)
	b.Install(c)
	avail := b.ModuleAvail()
	if len(avail) != 3 {
		t.Fatalf("module avail = %v", avail)
	}
	loaded, err := b.ModuleLoad(c.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 || loaded[len(loaded)-1] != c.Hash() {
		t.Fatalf("module load closure = %v", loaded)
	}
	if _, err := b.ModuleLoad("ghost@1.0"); err == nil {
		t.Fatalf("loading an uninstalled module must fail")
	}
}

// Property: any parseable spec's canonical form re-parses to the same
// canonical form (idempotent round trip) for a generated subset of specs.
func TestCanonicalFormProperty(t *testing.T) {
	t.Parallel()
	names := []string{"hypre", "amg2023", "lammps", "openmpi"}
	variants := []string{"cuda", "bigint", "mixedint", "reaxff"}
	f := func(nameIdx, varIdx uint8, on bool) bool {
		spec := names[int(nameIdx)%len(names)] + " "
		if on {
			spec += "+" + variants[int(varIdx)%len(variants)]
		} else {
			spec += "~" + variants[int(varIdx)%len(variants)]
		}
		sp, err := Parse(spec)
		if err != nil {
			return false
		}
		again, err := Parse(sp.String())
		return err == nil && again.String() == sp.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
