package sched

import (
	"testing"
	"time"
)

func TestBackfillSmallJobJumpsBlockedHead(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "bf", TotalNodes: 100, Backfill: true})
	var order []string
	submit := func(name string, nodes int, dur time.Duration) {
		if err := sc.Submit(&Job{Name: name, Nodes: nodes, Duration: dur,
			OnFinish: func(j *Job) { order = append(order, j.Name) }}); err != nil {
			t.Fatal(err)
		}
	}
	// Occupy 60 nodes for 1h; the 80-node head must wait for it.
	submit("running", 60, time.Hour)
	submit("head", 80, time.Hour)
	// A 30-minute, 40-node job fits the idle 40 nodes and finishes before
	// the head could ever start — a textbook backfill.
	submit("filler", 40, 30*time.Minute)
	s.Run()
	if len(order) != 3 {
		t.Fatalf("finished %d jobs", len(order))
	}
	if order[0] != "filler" {
		t.Fatalf("filler should complete first via backfill: %v", order)
	}
	// The head must not have been delayed: it starts when "running" ends
	// (1h) and finishes at 2h.
	for _, j := range sc.Done() {
		if j.Name == "head" && j.StartedAt != time.Hour {
			t.Fatalf("head delayed by backfill: started at %v", j.StartedAt)
		}
	}
}

func TestBackfillRefusesHeadDelayingJob(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "bf", TotalNodes: 100, Backfill: true})
	var order []string
	submit := func(name string, nodes int, dur time.Duration) {
		sc.Submit(&Job{Name: name, Nodes: nodes, Duration: dur,
			OnFinish: func(j *Job) { order = append(order, j.Name) }})
	}
	submit("running", 60, time.Hour)
	submit("head", 80, time.Hour)
	// This candidate fits the idle nodes but would still be running when
	// the head could start, and its nodes overlap the head's need.
	submit("greedy", 40, 2*time.Hour)
	s.Run()
	// The head must still start at 1h.
	for _, j := range sc.Done() {
		if j.Name == "head" && j.StartedAt != time.Hour {
			t.Fatalf("greedy job delayed the head: started %v", j.StartedAt)
		}
	}
}

func TestBackfillSparesHeadNodes(t *testing.T) {
	t.Parallel()
	// A long candidate can backfill if the head will not need its nodes.
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "bf", TotalNodes: 100, Backfill: true})
	var starts = map[string]time.Duration{}
	submit := func(name string, nodes int, dur time.Duration) {
		sc.Submit(&Job{Name: name, Nodes: nodes, Duration: dur,
			OnFinish: func(j *Job) { starts[j.Name] = j.StartedAt }})
	}
	submit("running", 60, time.Hour)
	submit("head", 50, time.Hour)
	// 10 nodes for 3h: at the head's earliest start (1h) there will be
	// 100 free; the head takes 50; 10 more still fit — no delay.
	submit("long-side", 10, 3*time.Hour)
	s.Run()
	if starts["long-side"] != 0 {
		t.Fatalf("side job should start immediately: %v", starts["long-side"])
	}
	if starts["head"] != time.Hour {
		t.Fatalf("head delayed: %v", starts["head"])
	}
}

func TestBackfillOffKeepsStrictFIFO(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "fifo", TotalNodes: 100})
	var order []string
	submit := func(name string, nodes int, dur time.Duration) {
		sc.Submit(&Job{Name: name, Nodes: nodes, Duration: dur,
			OnFinish: func(j *Job) { order = append(order, j.Name) }})
	}
	submit("running", 60, time.Hour)
	submit("head", 80, time.Hour)
	submit("filler", 40, 30*time.Minute)
	s.Run()
	// Without backfill the filler waits behind the head.
	if order[0] == "filler" {
		t.Fatalf("strict FIFO should not let the filler jump: %v", order)
	}
}
