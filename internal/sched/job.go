// Package sched simulates the workload managers of the study: Slurm (the
// on-premises CPU cluster A, AWS ParallelCluster, Azure CycleCloud), LSF
// (the on-premises GPU cluster B), and Flux (every Kubernetes environment
// via the Flux Operator, and the Compute Engine VM clusters).
//
// The schedulers share one engine — a FIFO queue over a fixed node pool —
// parameterized with the per-environment behaviours the paper reports:
// on-premises queue waits, CycleCloud job stalls that needed manual kicks,
// and on-premises bad nodes that error jobs and force resubmission.
package sched

import (
	"errors"
	"fmt"
	"time"
)

// State is the lifecycle state of a job.
type State int

const (
	Pending State = iota
	Stalled       // accepted but wedged (CycleCloud behaviour); needs a kick
	Running
	Completed
	Failed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Stalled:
		return "stalled"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrNoCapacity is returned when a job asks for more nodes than the
// scheduler's pool will ever have.
var ErrNoCapacity = errors.New("sched: job exceeds total cluster capacity")

// Job is one submission. Duration is the application's execution time
// (computed by an app model); the scheduler adds queue wait and hookup.
type Job struct {
	ID       int
	Name     string
	Nodes    int
	Duration time.Duration
	// Hookup is time between job start and application start (paper §3.2).
	Hookup time.Duration

	State       State
	SubmittedAt time.Duration
	StartedAt   time.Duration
	FinishedAt  time.Duration
	Err         error
	Retries     int
	// estEnd is the scheduler's completion estimate, set when the job is
	// committed to nodes; backfill reasons from it.
	estEnd time.Duration
	// OnFinish runs when the job completes or fails (after state is set).
	OnFinish func(*Job)
}

// WrapperTime is the workload-manager-visible duration: hookup plus
// application time. The paper derives hookup by subtracting application
// wall time from this.
func (j *Job) WrapperTime() time.Duration { return j.Hookup + j.Duration }

// QueueWait is how long the job sat in the queue before starting.
func (j *Job) QueueWait() time.Duration { return j.StartedAt - j.SubmittedAt }
