package sched

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// jobEventName builds "<verb> job <id>" — the simulator event labels the
// scheduler stamps on every deferred transition. One small allocation
// instead of fmt's verb parse + boxing; the label bytes are unchanged.
func jobEventName(verb string, id int) string {
	var a [32]byte
	b := append(a[:0], verb...)
	b = append(b, " job "...)
	b = strconv.AppendInt(b, int64(id), 10)
	return string(b)
}

// Kind names a workload manager flavour.
type Kind string

const (
	Slurm Kind = "Slurm"
	LSF   Kind = "LSF"
	Flux  Kind = "Flux"
)

// Config parameterizes a scheduler with per-environment behaviour.
type Config struct {
	Kind       Kind
	Env        string // trace key
	TotalNodes int

	// MeanQueueWait is the average queue wait when the cluster is
	// otherwise free — effectively zero on dedicated cloud clusters, and
	// substantial on the shared on-premises machines where the study's
	// jobs "needed to wait in the queue".
	MeanQueueWait time.Duration
	// StallProb is the chance a job wedges at start (CycleCloud: stalls
	// blamed on process management, module loading, Slurm, or the
	// environment) and must be noticed and kicked.
	StallProb float64
	// StallNoticeDelay is how long until a human notices and kicks a
	// stalled job — pure manual-intervention cost.
	StallNoticeDelay time.Duration
	// BadNodeProb is the chance a run dies on a bad node (the on-premises
	// failure mode: "often the runs were not successful due to a bad
	// node") and must be resubmitted by the user.
	BadNodeProb float64
	// MaxRetries bounds automatic resubmission after bad-node failures.
	MaxRetries int
	// Backfill enables conservative backfill: when the queue head does
	// not fit, later jobs may start if doing so cannot delay the head
	// (their wrapper time fits inside the head's earliest start). The
	// shared on-premises machines run backfill; the study's dedicated
	// cloud clusters did not need it.
	Backfill bool
}

// FaultInjector decides injected job failures — spot/preemptible node
// reclaims in the chaos engine's case. The scheduler consults it once per
// started job; frac is the fraction of the job's duration completed when
// the fault strikes, and requeue asks the scheduler to resubmit the job
// (bounded by Config.MaxRetries like bad-node retries). Implementations
// must be safe for concurrent use. A nil injector means no injected
// faults.
type FaultInjector interface {
	JobFault(name string, nodes int, dur time.Duration) (frac float64, requeue, ok bool)
}

// ErrPreempted marks jobs killed by an injected node reclaim.
var ErrPreempted = errors.New("sched: job preempted by node reclaim")

// Scheduler is the FIFO engine all three workload managers share.
type Scheduler struct {
	cfg     Config
	sim     *sim.Simulation
	log     *trace.Log
	rng     *sim.Stream
	faults  FaultInjector
	free    int
	queue   []*Job
	next    int
	running map[int]*Job

	// Completed and failed jobs, in finish order.
	done []*Job

	// finishScratch is headEarliestStart's reusable sort buffer; backfill
	// runs once per scheduling round, so the buffer never aliases live data.
	finishScratch []jobFinish
}

// jobFinish is one running job's projected completion, for backfill's
// shadow-time estimate.
type jobFinish struct {
	at    time.Duration
	nodes int
}

// New builds a scheduler over a node pool.
func New(s *sim.Simulation, log *trace.Log, cfg Config) *Scheduler {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	return &Scheduler{
		cfg:     cfg,
		sim:     s,
		log:     log,
		rng:     s.Stream("sched/" + cfg.Env),
		free:    cfg.TotalNodes,
		running: make(map[int]*Job),
	}
}

// Kind returns the workload manager flavour.
func (sc *Scheduler) Kind() Kind { return sc.cfg.Kind }

// SetFaultInjector attaches an injector consulted when jobs start
// running. Pass nil to detach.
func (sc *Scheduler) SetFaultInjector(fi FaultInjector) { sc.faults = fi }

// FreeNodes reports currently unallocated nodes.
func (sc *Scheduler) FreeNodes() int { return sc.free }

// QueueLen reports jobs waiting to start.
func (sc *Scheduler) QueueLen() int { return len(sc.queue) }

// Done returns finished jobs in completion order.
func (sc *Scheduler) Done() []*Job { return sc.done }

// Submit enqueues a job. The job starts when enough nodes free up; the
// simulation must be run (sim.Run) for anything to happen.
func (sc *Scheduler) Submit(j *Job) error {
	if j.Nodes <= 0 {
		return fmt.Errorf("sched: job %q requests %d nodes", j.Name, j.Nodes)
	}
	if j.Nodes > sc.cfg.TotalNodes {
		return fmt.Errorf("%w: want %d, cluster has %d", ErrNoCapacity, j.Nodes, sc.cfg.TotalNodes)
	}
	sc.next++
	j.ID = sc.next
	j.State = Pending
	j.SubmittedAt = sc.sim.Now()
	sc.queue = append(sc.queue, j)
	// Hand-built "%s: submitted job %d %q (%d nodes)" — the single
	// hottest log line of a study (one per run plus retries).
	var a [96]byte
	b := append(a[:0], sc.cfg.Kind...)
	b = append(b, ": submitted job "...)
	b = strconv.AppendInt(b, int64(j.ID), 10)
	b = append(b, ' ')
	b = strconv.AppendQuote(b, j.Name)
	b = append(b, " ("...)
	b = strconv.AppendInt(b, int64(j.Nodes), 10)
	b = append(b, " nodes)"...)
	sc.log.Add(trace.Event{At: sc.sim.Now(), Env: sc.cfg.Env,
		Category: trace.Info, Severity: trace.Routine, Msg: string(b)})
	sc.trySchedule()
	return nil
}

// trySchedule starts queued jobs FIFO while nodes are available, then
// optionally backfills around a blocked head.
func (sc *Scheduler) trySchedule() {
	for len(sc.queue) > 0 && sc.queue[0].Nodes <= sc.free {
		sc.launch(sc.queue[0])
		sc.queue = sc.queue[1:]
	}
	if sc.cfg.Backfill && len(sc.queue) > 0 {
		sc.backfill()
	}
}

// launch dispatches one job (after any queue wait). The job is committed
// to its nodes immediately so backfill can reason about it.
func (sc *Scheduler) launch(j *Job) {
	sc.free -= j.Nodes
	wait := time.Duration(0)
	if sc.cfg.MeanQueueWait > 0 {
		// Long-tailed queue wait around the configured mean.
		wait = time.Duration(sc.rng.Jitter(float64(sc.cfg.MeanQueueWait), 0.5))
	}
	j.estEnd = sc.sim.Now() + wait + j.WrapperTime()
	sc.running[j.ID] = j
	sc.sim.After(wait, jobEventName("start", j.ID), func() { sc.start(j) })
}

// backfill starts later queued jobs that cannot delay the blocked head:
// conservative EASY backfill using the jobs' declared wrapper times. The
// head's earliest start is when enough running jobs have finished; a
// candidate may jump the queue only if it finishes by then or fits in
// nodes the head will not need.
func (sc *Scheduler) backfill() {
	head := sc.queue[0]
	shadow, freeAtShadow := sc.headEarliestStart(head)
	kept := sc.queue[:1]
	for _, j := range sc.queue[1:] {
		fitsNow := j.Nodes <= sc.free
		finishesBeforeShadow := sc.sim.Now()+j.WrapperTime() <= shadow
		sparesTheHead := j.Nodes <= freeAtShadow-head.Nodes
		if fitsNow && (finishesBeforeShadow || sparesTheHead) {
			if sparesTheHead && !finishesBeforeShadow {
				freeAtShadow -= j.Nodes
			}
			sc.launch(j)
			continue
		}
		kept = append(kept, j)
	}
	sc.queue = kept
}

// headEarliestStart estimates when the queue head could start: walk the
// running jobs' completion times until enough nodes free up. Returns that
// time and the free nodes available then.
func (sc *Scheduler) headEarliestStart(head *Job) (time.Duration, int) {
	finishes := sc.finishScratch[:0]
	for _, j := range sc.running {
		finishes = append(finishes, jobFinish{at: j.estEnd, nodes: j.Nodes})
	}
	sc.finishScratch = finishes
	sort.Slice(finishes, func(i, k int) bool { return finishes[i].at < finishes[k].at })
	free := sc.free
	for _, f := range finishes {
		free += f.nodes
		if free >= head.Nodes {
			return f.at, free
		}
	}
	// Head can start now or the estimate is unknowable; be conservative.
	return sc.sim.Now(), free
}

// start transitions a job to Running (or Stalled first).
func (sc *Scheduler) start(j *Job) {
	if sc.cfg.StallProb > 0 && sc.rng.Bernoulli(sc.cfg.StallProb) {
		j.State = Stalled
		sc.log.Addf(sc.sim.Now(), sc.cfg.Env, trace.Manual, trace.Unexpected,
			"%s: job %d %q stalled at start; monitoring required", sc.cfg.Kind, j.ID, j.Name)
		sc.sim.After(sc.cfg.StallNoticeDelay, jobEventName("kick", j.ID), func() {
			sc.log.Addf(sc.sim.Now(), sc.cfg.Env, trace.Manual, trace.Unexpected,
				"%s: kicked stalled job %d", sc.cfg.Kind, j.ID)
			sc.run(j)
		})
		return
	}
	sc.run(j)
}

// run executes the job body and schedules its completion. Two failure
// sources can cut the job short: the environment's own bad nodes
// (Config.BadNodeProb, drawn from the scheduler's stream) and injected
// faults from the attached FaultInjector (drawn from the injector's own
// stream, so enabling injection never perturbs the bad-node draws).
func (sc *Scheduler) run(j *Job) {
	j.State = Running
	j.StartedAt = sc.sim.Now()
	dur := j.WrapperTime()
	if sc.cfg.BadNodeProb > 0 && sc.rng.Bernoulli(sc.cfg.BadNodeProb) {
		// Job dies partway through on a bad node.
		dur = time.Duration(sc.rng.Uniform(0.1, 0.9) * float64(dur))
		sc.sim.After(dur, jobEventName("finish", j.ID), func() {
			sc.finish(j, fmt.Errorf("sched: job %d died on a bad node", j.ID), true)
		})
		return
	}
	if sc.faults != nil {
		if frac, requeue, ok := sc.faults.JobFault(j.Name, j.Nodes, dur); ok {
			cut := time.Duration(frac * float64(dur))
			sc.sim.After(cut, jobEventName("finish", j.ID), func() {
				sc.finish(j, fmt.Errorf("%w: job %d %q", ErrPreempted, j.ID, j.Name), requeue)
			})
			return
		}
	}
	sc.sim.After(dur, jobEventName("finish", j.ID), func() { sc.finish(j, nil, false) })
}

// finish completes or fails a job, freeing nodes and — when requeue is
// set — resubmitting the failure up to MaxRetries times.
func (sc *Scheduler) finish(j *Job, failure error, requeue bool) {
	sc.free += j.Nodes
	delete(sc.running, j.ID)
	j.FinishedAt = sc.sim.Now()
	if failure != nil {
		j.State = Failed
		j.Err = failure
		verb := "failed on a bad node"
		if errors.Is(failure, ErrPreempted) {
			verb = "preempted by a node reclaim"
		}
		// Hand-built "%s: job %d %q %s (retry %d)".
		var a [112]byte
		b := append(a[:0], sc.cfg.Kind...)
		b = append(b, ": job "...)
		b = strconv.AppendInt(b, int64(j.ID), 10)
		b = append(b, ' ')
		b = strconv.AppendQuote(b, j.Name)
		b = append(b, ' ')
		b = append(b, verb...)
		b = append(b, " (retry "...)
		b = strconv.AppendInt(b, int64(j.Retries), 10)
		b = append(b, ')')
		sc.log.Add(trace.Event{At: sc.sim.Now(), Env: sc.cfg.Env,
			Category: trace.Manual, Severity: trace.Unexpected, Msg: string(b)})
		if requeue && j.Retries < sc.cfg.MaxRetries {
			retry := &Job{
				Name: j.Name, Nodes: j.Nodes, Duration: j.Duration,
				Hookup: j.Hookup, Retries: j.Retries + 1, OnFinish: j.OnFinish,
			}
			sc.done = append(sc.done, j)
			if j.OnFinish != nil {
				j.OnFinish(j)
			}
			if err := sc.Submit(retry); err != nil {
				sc.log.Addf(sc.sim.Now(), sc.cfg.Env, trace.Manual, trace.Blocking,
					"%s: resubmission failed: %v", sc.cfg.Kind, err)
			}
			sc.trySchedule()
			return
		}
	} else {
		j.State = Completed
	}
	sc.done = append(sc.done, j)
	if j.OnFinish != nil {
		j.OnFinish(j)
	}
	sc.trySchedule()
}
