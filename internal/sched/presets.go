package sched

import (
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Presets for the study's environments (paper Table 1).

// NewOnPremSlurm models cluster A: Slurm, shared machine, real queue
// waits, and the occasional bad node that errors runs.
func NewOnPremSlurm(s *sim.Simulation, log *trace.Log, env string, nodes int) *Scheduler {
	return New(s, log, Config{
		Kind: Slurm, Env: env, TotalNodes: nodes,
		MeanQueueWait: 20 * time.Minute,
		BadNodeProb:   0.015,
		Backfill:      true, // the center's Slurm runs conservative backfill
	})
}

// NewOnPremLSF models cluster B: LSF, shared machine, queue waits, bad
// nodes.
func NewOnPremLSF(s *sim.Simulation, log *trace.Log, env string, nodes int) *Scheduler {
	return New(s, log, Config{
		Kind: LSF, Env: env, TotalNodes: nodes,
		MeanQueueWait: 30 * time.Minute,
		BadNodeProb:   0.015,
		Backfill:      true, // LSF backfills on cluster B
	})
}

// NewCycleCloudSlurm models Azure CycleCloud: dedicated nodes, but job
// submissions stall and must be monitored and kicked (paper §3.1 ascribes
// high manual-intervention effort to exactly this).
func NewCycleCloudSlurm(s *sim.Simulation, log *trace.Log, env string, nodes int) *Scheduler {
	return New(s, log, Config{
		Kind: Slurm, Env: env, TotalNodes: nodes,
		StallProb:        0.25,
		StallNoticeDelay: 10 * time.Minute,
	})
}

// NewParallelClusterSlurm models AWS ParallelCluster: dedicated, smooth.
func NewParallelClusterSlurm(s *sim.Simulation, log *trace.Log, env string, nodes int) *Scheduler {
	return New(s, log, Config{Kind: Slurm, Env: env, TotalNodes: nodes})
}

// NewFlux models the Flux scheduler as deployed by the Flux Operator on
// Kubernetes, or directly on Compute Engine VM clusters. Dedicated nodes,
// no stalls; the k8s-specific friction lives in package k8s.
func NewFlux(s *sim.Simulation, log *trace.Log, env string, nodes int) *Scheduler {
	return New(s, log, Config{Kind: Flux, Env: env, TotalNodes: nodes})
}
