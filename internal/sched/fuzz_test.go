package sched

import (
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// FuzzSubmitOrdering hardens the scheduling engine against arbitrary job
// submission sequences (mirroring internal/slurm's batch-script fuzz).
// Each fuzz input byte pair encodes one job's shape; whatever the
// ordering, the engine must conserve nodes, finish every accepted job,
// and keep per-job timestamps coherent — with backfill both on and off.
func FuzzSubmitOrdering(f *testing.F) {
	f.Add([]byte{4, 10, 2, 5, 8, 1}, uint8(16), true)
	f.Add([]byte{1, 1, 1, 1}, uint8(4), false)
	f.Add([]byte{16, 60, 16, 60, 1, 1}, uint8(16), true)
	f.Add([]byte{255, 255, 0, 0}, uint8(32), true)
	f.Add([]byte{}, uint8(8), false)
	f.Add([]byte{7}, uint8(8), true)
	f.Fuzz(func(t *testing.T, raw []byte, totalNodes uint8, backfill bool) {
		nodes := int(totalNodes)
		if nodes <= 0 {
			nodes = 1
		}
		if len(raw) > 64 {
			raw = raw[:64] // keep the event queue bounded
		}
		s := sim.New(7)
		sc := New(s, trace.NewLog(), Config{
			Kind: Flux, Env: "fuzz", TotalNodes: nodes, Backfill: backfill,
		})

		submitted := 0
		for i := 0; i+1 < len(raw); i += 2 {
			j := &Job{
				Name:     "fuzz",
				Nodes:    int(raw[i]%uint8(min(nodes, 255))) + 1,
				Duration: time.Duration(raw[i+1]) * time.Minute,
			}
			if err := sc.Submit(j); err != nil {
				continue // oversized asks are rejected up front; fine
			}
			submitted++
		}
		s.Run()

		if sc.FreeNodes() != nodes {
			t.Fatalf("node leak: %d free of %d after drain", sc.FreeNodes(), nodes)
		}
		if sc.QueueLen() != 0 {
			t.Fatalf("%d jobs stuck in queue after drain", sc.QueueLen())
		}
		done := sc.Done()
		if len(done) != submitted {
			t.Fatalf("finished %d jobs, submitted %d", len(done), submitted)
		}
		for _, j := range done {
			if j.State != Completed {
				t.Fatalf("job %d finished in state %v", j.ID, j.State)
			}
			if j.StartedAt < j.SubmittedAt {
				t.Fatalf("job %d started %v before submission %v", j.ID, j.StartedAt, j.SubmittedAt)
			}
			if j.FinishedAt < j.StartedAt {
				t.Fatalf("job %d finished %v before start %v", j.ID, j.FinishedAt, j.StartedAt)
			}
			if j.FinishedAt-j.StartedAt != j.WrapperTime() {
				t.Fatalf("job %d ran %v, wrapper time %v", j.ID, j.FinishedAt-j.StartedAt, j.WrapperTime())
			}
		}
	})
}
