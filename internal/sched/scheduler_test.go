package sched

import (
	"errors"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func newSched(seed uint64, cfg Config) (*sim.Simulation, *trace.Log, *Scheduler) {
	s := sim.New(seed)
	log := trace.NewLog()
	return s, log, New(s, log, cfg)
}

func TestSubmitAndComplete(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Flux, Env: "e", TotalNodes: 64})
	var finished *Job
	j := &Job{Name: "lammps", Nodes: 32, Duration: 10 * time.Minute, Hookup: 10 * time.Second,
		OnFinish: func(j *Job) { finished = j }}
	if err := sc.Submit(j); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s.Run()
	if finished == nil || finished.State != Completed {
		t.Fatalf("job did not complete: %+v", finished)
	}
	if got := finished.FinishedAt - finished.StartedAt; got != 10*time.Minute+10*time.Second {
		t.Fatalf("run time = %v, want wrapper time", got)
	}
	if sc.FreeNodes() != 64 {
		t.Fatalf("nodes not freed: %d", sc.FreeNodes())
	}
}

func TestWrapperTimeIsHookupPlusDuration(t *testing.T) {
	t.Parallel()
	j := &Job{Duration: 5 * time.Minute, Hookup: 30 * time.Second}
	if j.WrapperTime() != 5*time.Minute+30*time.Second {
		t.Fatalf("WrapperTime = %v", j.WrapperTime())
	}
}

func TestFIFOOrdering(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "e", TotalNodes: 32})
	var order []string
	mk := func(name string) *Job {
		return &Job{Name: name, Nodes: 32, Duration: time.Minute,
			OnFinish: func(j *Job) { order = append(order, j.Name) }}
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := sc.Submit(mk(n)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestConcurrentJobsSharePool(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Flux, Env: "e", TotalNodes: 64})
	var finishes []time.Duration
	mk := func() *Job {
		return &Job{Name: "half", Nodes: 32, Duration: time.Hour,
			OnFinish: func(j *Job) { finishes = append(finishes, j.FinishedAt) }}
	}
	sc.Submit(mk())
	sc.Submit(mk())
	s.Run()
	// Both fit simultaneously → both finish at 1h, not 2h.
	for _, f := range finishes {
		if f != time.Hour {
			t.Fatalf("parallel jobs should finish together at 1h: %v", finishes)
		}
	}
}

func TestOversizedJobRejected(t *testing.T) {
	t.Parallel()
	_, _, sc := newSched(1, Config{Kind: Flux, Env: "e", TotalNodes: 16})
	err := sc.Submit(&Job{Name: "big", Nodes: 32, Duration: time.Minute})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if err := sc.Submit(&Job{Name: "zero", Nodes: 0}); err == nil {
		t.Fatalf("zero-node job must be rejected")
	}
}

func TestOnPremQueueWait(t *testing.T) {
	t.Parallel()
	s, _, sc := newSched(1, Config{Kind: Slurm, Env: "onprem", TotalNodes: 256,
		MeanQueueWait: 20 * time.Minute})
	j := &Job{Name: "amg", Nodes: 64, Duration: time.Minute}
	sc.Submit(j)
	s.Run()
	if j.QueueWait() < time.Minute {
		t.Fatalf("on-prem jobs should wait in the queue, waited %v", j.QueueWait())
	}
}

func TestCycleCloudStallsAreKickedAndLogged(t *testing.T) {
	t.Parallel()
	s := sim.New(3)
	log := trace.NewLog()
	sc := NewCycleCloudSlurm(s, log, "azure-cc-cpu", 256)
	done := 0
	for i := 0; i < 40; i++ {
		sc.Submit(&Job{Name: "k", Nodes: 256, Duration: time.Minute,
			OnFinish: func(j *Job) { done++ }})
	}
	s.Run()
	if done != 40 {
		t.Fatalf("all jobs must eventually finish, got %d", done)
	}
	stalls := log.Filter(func(e trace.Event) bool {
		return e.Category == trace.Manual && e.Severity == trace.Unexpected
	})
	if len(stalls) == 0 {
		t.Fatalf("CycleCloud must produce manual-intervention stall events")
	}
}

func TestBadNodeRetry(t *testing.T) {
	t.Parallel()
	s := sim.New(5)
	log := trace.NewLog()
	sc := New(s, log, Config{Kind: LSF, Env: "onprem-gpu", TotalNodes: 64,
		BadNodeProb: 0.5, MaxRetries: 10})
	completed := 0
	for i := 0; i < 20; i++ {
		sc.Submit(&Job{Name: "qs", Nodes: 64, Duration: time.Minute,
			OnFinish: func(j *Job) {
				if j.State == Completed {
					completed++
				}
			}})
	}
	s.Run()
	if completed != 20 {
		t.Fatalf("completed %d of 20 despite retries", completed)
	}
	var failures int
	for _, j := range sc.Done() {
		if j.State == Failed {
			failures++
		}
	}
	if failures == 0 {
		t.Fatalf("with 50%% bad-node probability there must be failures")
	}
}

func TestStateString(t *testing.T) {
	t.Parallel()
	want := map[State]string{Pending: "pending", Stalled: "stalled", Running: "running",
		Completed: "completed", Failed: "failed", State(42): "state(42)"}
	for st, w := range want {
		if st.String() != w {
			t.Fatalf("State(%d) = %q, want %q", int(st), st.String(), w)
		}
	}
}

func TestPresetsKinds(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	log := trace.NewLog()
	if sc := NewOnPremSlurm(s, log, "a", 10); sc.Kind() != Slurm {
		t.Fatalf("cluster A runs Slurm")
	}
	if sc := NewOnPremLSF(s, log, "b", 10); sc.Kind() != LSF {
		t.Fatalf("cluster B runs LSF")
	}
	if sc := NewFlux(s, log, "k", 10); sc.Kind() != Flux {
		t.Fatalf("Kubernetes environments run Flux")
	}
	if sc := NewParallelClusterSlurm(s, log, "pc", 10); sc.Kind() != Slurm {
		t.Fatalf("ParallelCluster runs Slurm")
	}
	if sc := NewCycleCloudSlurm(s, log, "cc", 10); sc.Kind() != Slurm {
		t.Fatalf("CycleCloud runs Slurm")
	}
}

func TestDeterministicReplay(t *testing.T) {
	t.Parallel()
	run := func() []time.Duration {
		s := sim.New(99)
		log := trace.NewLog()
		sc := NewCycleCloudSlurm(s, log, "cc", 128)
		var finishes []time.Duration
		for i := 0; i < 10; i++ {
			sc.Submit(&Job{Name: "j", Nodes: 64, Duration: 5 * time.Minute,
				OnFinish: func(j *Job) { finishes = append(finishes, j.FinishedAt) }})
		}
		s.Run()
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replays diverged in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
