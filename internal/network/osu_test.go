package network

import (
	"testing"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

func TestStandardMessageSizes(t *testing.T) {
	t.Parallel()
	sizes := StandardMessageSizes()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 1<<20 {
		t.Fatalf("sizes span %v..%v, want 1..1MiB", sizes[0], sizes[len(sizes)-1])
	}
	if len(sizes) != 21 {
		t.Fatalf("len = %d, want 21 powers of two", len(sizes))
	}
}

func TestSamplePairsRespectsLimits(t *testing.T) {
	t.Parallel()
	rng := sim.NewStream(1, "pairs")
	pairs := SamplePairs(256, 8, 28, rng)
	if len(pairs) != 28 {
		t.Fatalf("len = %d, want 28 (C(8,2) = 28)", len(pairs))
	}
	seen := map[[2]int]bool{}
	nodes := map[int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("self-pair %v", p)
		}
		if p[0] < 0 || p[0] >= 256 || p[1] < 0 || p[1] >= 256 {
			t.Fatalf("pair out of range: %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		nodes[p[0]] = true
		nodes[p[1]] = true
	}
	if len(nodes) != 8 {
		t.Fatalf("pairs drawn from %d nodes, want 8", len(nodes))
	}
}

func TestSamplePairsSmallCluster(t *testing.T) {
	t.Parallel()
	rng := sim.NewStream(2, "pairs")
	pairs := SamplePairs(4, 8, 28, rng)
	// C(4,2) = 6 possible pairs.
	if len(pairs) != 6 {
		t.Fatalf("len = %d, want 6", len(pairs))
	}
}

func TestRunLatencySeries(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.InfiniBandHDR)
	rng := sim.NewStream(3, "osu")
	series := RunLatency(m, Path{Colocated: true}, 28, rng)
	if len(series) != len(StandardMessageSizes()) {
		t.Fatalf("series length %d", len(series))
	}
	if series[0].Value <= 0 {
		t.Fatalf("latency must be positive")
	}
	if series[len(series)-1].Value <= series[0].Value {
		t.Fatalf("1MiB latency should exceed 1B latency")
	}
}

func TestRunBandwidthSeries(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.EFAGen15)
	series := RunBandwidth(m, Path{Colocated: true}, 28, sim.NewStream(4, "osu"))
	if series[len(series)-1].Value <= series[0].Value {
		t.Fatalf("bandwidth should rise with message size")
	}
}

func TestRunAllReduceFindsSpike(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.EFAGen15)
	series := RunAllReduce(m, 256, Path{Colocated: true}, 5, sim.NewStream(5, "osu"))
	var at32k, at8k float64
	for _, s := range series {
		switch s.Bytes {
		case 32768:
			at32k = s.Value
		case 8192:
			at8k = s.Value
		}
	}
	if at32k < 2*at8k {
		t.Fatalf("averaged allreduce series lost the 32KiB spike: %f vs %f", at32k, at8k)
	}
}
