// Package network models the interconnects of the study: point-to-point
// latency and bandwidth curves per fabric, an allreduce collective model
// (including the AWS OpenMPI spike at 32 KiB), and the hookup-time model
// behind the paper's §3.2 observations about Azure InfiniBand.
//
// The models are analytic — parameterized LogP-style curves — calibrated so
// that the relative ordering and shapes of the paper's Figure 5 hold:
// InfiniBand fabrics and the on-premises low-latency fabrics have the
// lowest latencies, Azure CycleCloud the highest bandwidth, and both AWS
// environments a latency spike for AllReduce at a 32,768-byte message size.
package network

import (
	"fmt"
	"math"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Model holds the analytic parameters of one fabric.
type Model struct {
	Fabric cloud.Fabric
	// ZeroByteLatencyUs is the small-message point-to-point latency.
	ZeroByteLatencyUs float64
	// PeakBandwidthMBs is the large-message point-to-point bandwidth.
	PeakBandwidthMBs float64
	// HalfPeakBytes is the message size at which half of peak bandwidth is
	// reached (the classic n_1/2 parameter).
	HalfPeakBytes float64
	// OSBypass marks RDMA/OS-bypass fabrics (EFA, InfiniBand, Omni-Path);
	// overlay-network penalties do not apply to them (paper §1.1).
	OSBypass bool
	// AllReduceSpike describes a latency spike at one message size, as AWS
	// exhibited at 32 KiB before their OpenMPI AllReduce fix.
	AllReduceSpike *Spike
	// JitterRel is the run-to-run relative noise of measurements.
	JitterRel float64
}

// Spike is a localized slowdown at a specific collective message size.
type Spike struct {
	AtBytes  float64
	Factor   float64 // multiplier on the allreduce time at AtBytes
	WidthOct float64 // width in octaves over which the spike decays
}

// Models returns the study's calibrated fabric models keyed by fabric.
func Models() map[cloud.Fabric]*Model {
	awsSpike := &Spike{AtBytes: 32768, Factor: 6.0, WidthOct: 1.0}
	return map[cloud.Fabric]*Model{
		cloud.OmniPath100: {
			Fabric: cloud.OmniPath100, ZeroByteLatencyUs: 1.5,
			PeakBandwidthMBs: 11500, HalfPeakBytes: 8192, OSBypass: true, JitterRel: 0.03,
		},
		cloud.InfiniBandHDR: {
			Fabric: cloud.InfiniBandHDR, ZeroByteLatencyUs: 1.8,
			PeakBandwidthMBs: 23500, HalfPeakBytes: 16384, OSBypass: true, JitterRel: 0.05,
		},
		cloud.InfiniBandEDR: {
			Fabric: cloud.InfiniBandEDR, ZeroByteLatencyUs: 1.7,
			PeakBandwidthMBs: 11800, HalfPeakBytes: 8192, OSBypass: true, JitterRel: 0.04,
		},
		cloud.EFAGen15: {
			Fabric: cloud.EFAGen15, ZeroByteLatencyUs: 16.0,
			PeakBandwidthMBs: 11000, HalfPeakBytes: 65536, OSBypass: true,
			AllReduceSpike: awsSpike, JitterRel: 0.06,
		},
		cloud.EFAGen1: {
			Fabric: cloud.EFAGen1, ZeroByteLatencyUs: 19.0,
			PeakBandwidthMBs: 10500, HalfPeakBytes: 65536, OSBypass: true,
			AllReduceSpike: awsSpike, JitterRel: 0.06,
		},
		cloud.GooglePremium: {
			Fabric: cloud.GooglePremium, ZeroByteLatencyUs: 28.0,
			PeakBandwidthMBs: 3800, HalfPeakBytes: 131072, OSBypass: false, JitterRel: 0.08,
		},
		cloud.GoogleTier1: {
			Fabric: cloud.GoogleTier1, ZeroByteLatencyUs: 26.0,
			PeakBandwidthMBs: 9500, HalfPeakBytes: 131072, OSBypass: false, JitterRel: 0.08,
		},
		cloud.GoogleStd: {
			Fabric: cloud.GoogleStd, ZeroByteLatencyUs: 35.0,
			PeakBandwidthMBs: 3000, HalfPeakBytes: 131072, OSBypass: false, JitterRel: 0.10,
		},
	}
}

// Lookup returns the model for a fabric or an error for unknown fabrics.
func Lookup(f cloud.Fabric) (*Model, error) {
	m, ok := Models()[f]
	if !ok {
		return nil, fmt.Errorf("network: no model for fabric %q", f)
	}
	return m, nil
}

// Path describes the conditions of a measurement between two nodes.
type Path struct {
	// Colocated: both endpoints inside the placement group / same rack
	// domain. Non-colocated paths pay extra latency.
	Colocated bool
	// Interference: another benchmark running on the same nodes (the study
	// ran EKS/AKS point-to-point latency and bandwidth simultaneously).
	Interference bool
	// Overlay: traffic crosses a container overlay network rather than the
	// host fabric (non-OS-bypass Kubernetes paths).
	Overlay bool
}

// latencyPenalty multiplies zero-byte latency for path conditions.
func (m *Model) latencyPenalty(p Path) float64 {
	f := 1.0
	if !p.Colocated {
		f *= 2.2 // cross-zone/rack hop
	}
	if p.Interference {
		f *= 1.5
	}
	if p.Overlay && !m.OSBypass {
		f *= 1.8 // kube-proxy / CNI hop without RDMA bypass
	}
	return f
}

// bandwidthPenalty multiplies peak bandwidth (values < 1 slow the path).
func (m *Model) bandwidthPenalty(p Path) float64 {
	f := 1.0
	if !p.Colocated {
		f *= 0.7
	}
	if p.Interference {
		f *= 0.65
	}
	if p.Overlay && !m.OSBypass {
		f *= 0.75
	}
	return f
}

// Latency returns the point-to-point latency in microseconds for a message
// of size bytes over the path. rng may be nil for the noiseless model value.
func (m *Model) Latency(bytes float64, p Path, rng *sim.Stream) float64 {
	base := m.ZeroByteLatencyUs * m.latencyPenalty(p)
	bw := m.PeakBandwidthMBs * 1e6 * m.bandwidthPenalty(p) // bytes/s
	serial := bytes / bw * 1e6                             // µs
	v := base + serial
	if rng != nil {
		v = rng.Jitter(v, m.JitterRel)
	}
	return v
}

// Bandwidth returns the achieved point-to-point bandwidth in MB/s for a
// message of size bytes: peak · n/(n + n_1/2), with path penalties.
func (m *Model) Bandwidth(bytes float64, p Path, rng *sim.Stream) float64 {
	peak := m.PeakBandwidthMBs * m.bandwidthPenalty(p)
	v := peak * bytes / (bytes + m.HalfPeakBytes)
	if rng != nil {
		v = rng.Jitter(v, m.JitterRel)
	}
	return v
}

// AllReduce returns the time in microseconds for an MPI_Allreduce across
// ranks with the given per-rank message size, using a latency–bandwidth
// (Rabenseifner-style) model: ceil(log2(ranks)) latency steps plus
// 2·(ranks−1)/ranks of the data over the bandwidth term.
func (m *Model) AllReduce(ranks int, bytes float64, p Path, rng *sim.Stream) float64 {
	if ranks < 2 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(ranks)))
	lat := m.ZeroByteLatencyUs * m.latencyPenalty(p) * steps
	bw := m.PeakBandwidthMBs * 1e6 * m.bandwidthPenalty(p)
	vol := 2 * (float64(ranks) - 1) / float64(ranks) * bytes
	v := lat + vol/bw*1e6
	if s := m.AllReduceSpike; s != nil && bytes > 0 {
		// Spike decays with distance in octaves from the afflicted size.
		d := math.Abs(math.Log2(bytes / s.AtBytes))
		if d < s.WidthOct {
			v *= 1 + (s.Factor-1)*(1-d/s.WidthOct)
		}
	}
	if rng != nil {
		v = rng.Jitter(v, m.JitterRel)
	}
	return v
}
