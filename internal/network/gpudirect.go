package network

import (
	"errors"
	"fmt"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// GPU transfer modes for the OSU CUDA benchmarks (paper §2.8): the study
// ran host-to-host ("cuda -d H H") everywhere because only the InfiniBand
// fabrics support GPUDirect — device-to-device RDMA without staging
// through host memory.

// GPUMode selects the endpoint memory for a GPU-aware transfer.
type GPUMode string

const (
	HostToHost     GPUMode = "H H"
	DeviceToDevice GPUMode = "D D"
)

// ErrNoGPUDirect is returned for D-D transfers on fabrics without
// GPUDirect support.
var ErrNoGPUDirect = errors.New("network: fabric does not support GPUDirect (device-to-device RDMA)")

// gpuDirectFabrics lists the fabrics with GPUDirect in the study's
// environments. EFA's GPUDirect arrived on later generations than the
// Gen1/1.5 adapters of the study's instances.
var gpuDirectFabrics = map[cloud.Fabric]bool{
	cloud.InfiniBandHDR: true,
	cloud.InfiniBandEDR: true,
}

// SupportsGPUDirect reports whether the model's fabric can do D-D RDMA.
func (m *Model) SupportsGPUDirect() bool { return gpuDirectFabrics[m.Fabric] }

// Host-staging costs for H-H mode: a cudaMemcpy each side (latency) and a
// PCIe 3.0 x16 ceiling on achievable bandwidth.
const (
	hostStagingLatencyUs = 1.6
	pciePeakMBs          = 12800.0
)

// GPULatency returns the GPU-aware point-to-point latency in µs for the
// given transfer mode.
func (m *Model) GPULatency(bytes float64, p Path, mode GPUMode, rng *sim.Stream) (float64, error) {
	switch mode {
	case HostToHost:
		// Stage through host memory on both ends.
		staging := 2*hostStagingLatencyUs + bytes/(pciePeakMBs*1e6)*1e6
		return m.Latency(bytes, p, rng) + staging, nil
	case DeviceToDevice:
		if !m.SupportsGPUDirect() {
			return 0, fmt.Errorf("%w: %s", ErrNoGPUDirect, m.Fabric)
		}
		return m.Latency(bytes, p, rng), nil
	default:
		return 0, fmt.Errorf("network: unknown GPU mode %q", mode)
	}
}

// GPUBandwidth returns the GPU-aware bandwidth in MB/s for the mode.
func (m *Model) GPUBandwidth(bytes float64, p Path, mode GPUMode, rng *sim.Stream) (float64, error) {
	switch mode {
	case HostToHost:
		bw := m.Bandwidth(bytes, p, rng)
		if bw > pciePeakMBs {
			bw = pciePeakMBs // staged transfers cannot beat the PCIe link
		}
		return bw, nil
	case DeviceToDevice:
		if !m.SupportsGPUDirect() {
			return 0, fmt.Errorf("%w: %s", ErrNoGPUDirect, m.Fabric)
		}
		return m.Bandwidth(bytes, p, rng), nil
	default:
		return 0, fmt.Errorf("network: unknown GPU mode %q", mode)
	}
}
