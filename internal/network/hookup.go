package network

import (
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// HookupModel predicts the "hookup time" of §3.2 — the gap between the
// workload manager starting a job and the application actually running.
// The study measured it by subtracting LAMMPS's self-reported wall time
// from the wrapper time.
//
// Observed behaviour:
//   - Azure (InfiniBand bring-up inside the job): GPU hookup *decreases*
//     with node count (≈43, 30, 20, 10 s at 4/8/16/32 nodes) while CPU
//     hookup *doubles per size* (≈50, 100, 200, >400 s at 32/64/128/256).
//   - All other clouds: flat 3–4 s (GPU) and 10–15 s (CPU) regardless of
//     scale.
type HookupModel struct {
	// AzureGPUBase is the GPU hookup at the smallest (4-node) size.
	AzureGPUBase time.Duration
	// AzureCPUBase is the CPU hookup at the smallest (32-node) size.
	AzureCPUBase time.Duration
}

// NewHookupModel returns the model calibrated to §3.2.
func NewHookupModel() *HookupModel {
	return &HookupModel{
		AzureGPUBase: 43 * time.Second,
		AzureCPUBase: 50 * time.Second,
	}
}

// Hookup returns the hookup time for a job on the given provider and
// accelerator at the given node count. kubernetes distinguishes AKS from
// CycleCloud: the doubling CPU hookups were measured on the Kubernetes
// environment (the AKS 256-node LAMMPS run hooked up in 8.82 minutes),
// while Table 4's CycleCloud costs rule out the same penalty there.
// rng may be nil for the noiseless model value.
func (h *HookupModel) Hookup(p cloud.Provider, acc cloud.Accelerator, kubernetes bool, nodes int, rng *sim.Stream) time.Duration {
	var base time.Duration
	switch {
	case p == cloud.Azure && acc == cloud.GPU:
		// Halves with every doubling above 4 nodes, floor at ~8s.
		base = h.AzureGPUBase
		for n := 4; n < nodes && base > 8*time.Second; n *= 2 {
			base /= 2
			if base < 8*time.Second {
				base = 8 * time.Second
			}
		}
	case p == cloud.Azure && acc == cloud.CPU && kubernetes:
		// Doubles with every doubling above 32 nodes.
		base = h.AzureCPUBase
		for n := 32; n < nodes; n *= 2 {
			base *= 2
		}
	case p == cloud.Azure && acc == cloud.CPU:
		base = 15 * time.Second // CycleCloud: InfiniBand up before jobs start
	case acc == cloud.GPU:
		base = 3500 * time.Millisecond // 3–4 s across sizes
	default:
		base = 12 * time.Second // 10–15 s across sizes
	}
	if p == cloud.OnPrem {
		// On-prem jobs start almost immediately once scheduled; queue wait
		// is modelled by the scheduler, not as hookup.
		base = 2 * time.Second
	}
	if rng != nil {
		base = time.Duration(rng.Jitter(float64(base), 0.12))
	}
	return base
}
