package network

import (
	"errors"
	"testing"

	"cloudhpc/internal/cloud"
)

func TestGPUDirectSupportMatrix(t *testing.T) {
	t.Parallel()
	// Paper §2.8: only InfiniBand fabrics support GPUDirect.
	want := map[cloud.Fabric]bool{
		cloud.InfiniBandHDR: true,
		cloud.InfiniBandEDR: true,
		cloud.EFAGen1:       false,
		cloud.EFAGen15:      false,
		cloud.GooglePremium: false,
		cloud.OmniPath100:   false,
	}
	for fabric, wantGD := range want {
		m, err := Lookup(fabric)
		if err != nil {
			t.Fatal(err)
		}
		if m.SupportsGPUDirect() != wantGD {
			t.Errorf("%s GPUDirect = %v, want %v", fabric, m.SupportsGPUDirect(), wantGD)
		}
	}
}

func TestDeviceToDeviceRejectedWithoutGPUDirect(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.EFAGen1)
	if _, err := m.GPULatency(8, colo, DeviceToDevice, nil); !errors.Is(err, ErrNoGPUDirect) {
		t.Fatalf("err = %v, want ErrNoGPUDirect", err)
	}
	if _, err := m.GPUBandwidth(8, colo, DeviceToDevice, nil); !errors.Is(err, ErrNoGPUDirect) {
		t.Fatalf("err = %v, want ErrNoGPUDirect", err)
	}
}

func TestHostStagingCostsLatency(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.InfiniBandEDR)
	hh, err := m.GPULatency(8, colo, HostToHost, nil)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := m.GPULatency(8, colo, DeviceToDevice, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dd >= hh {
		t.Fatalf("GPUDirect must beat host staging: D-D %.2fµs vs H-H %.2fµs", dd, hh)
	}
	if hh-dd < 2*hostStagingLatencyUs {
		t.Fatalf("staging overhead missing: delta %.2fµs", hh-dd)
	}
}

func TestHostStagingCapsBandwidth(t *testing.T) {
	t.Parallel()
	// IB HDR peaks at 23.5 GB/s on the wire, but an H-H transfer cannot
	// beat the PCIe link it stages through.
	m, _ := Lookup(cloud.InfiniBandHDR)
	hh, err := m.GPUBandwidth(1<<24, colo, HostToHost, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hh > pciePeakMBs {
		t.Fatalf("H-H bandwidth %.0f exceeds the PCIe ceiling %.0f", hh, pciePeakMBs)
	}
	dd, err := m.GPUBandwidth(1<<24, colo, DeviceToDevice, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dd <= hh {
		t.Fatalf("D-D should exceed the staged path on HDR: %.0f vs %.0f", dd, hh)
	}
}

func TestUnknownGPUMode(t *testing.T) {
	t.Parallel()
	m, _ := Lookup(cloud.InfiniBandEDR)
	if _, err := m.GPULatency(8, colo, GPUMode("X Y"), nil); err == nil {
		t.Fatalf("unknown mode accepted")
	}
	if _, err := m.GPUBandwidth(8, colo, GPUMode("X Y"), nil); err == nil {
		t.Fatalf("unknown mode accepted")
	}
}

func TestHHComparableAcrossFabrics(t *testing.T) {
	t.Parallel()
	// The study's rationale for H-H everywhere: it is the mode every
	// fabric can run, making GPU results comparable to CPU results.
	for _, f := range []cloud.Fabric{cloud.EFAGen1, cloud.GooglePremium, cloud.InfiniBandEDR} {
		m, _ := Lookup(f)
		if _, err := m.GPULatency(1024, colo, HostToHost, nil); err != nil {
			t.Fatalf("%s cannot run H-H: %v", f, err)
		}
	}
}
