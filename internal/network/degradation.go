package network

import "time"

// Degradation describes a transient interconnect impairment as a pair of
// multipliers: Latency stretches connection-establishment costs (hookup
// time, collective setup), Bandwidth divides effective throughput and so
// stretches the communication-bound share of application wall time. The
// zero value and {1, 1} both mean "healthy". The chaos engine attaches a
// Degradation to individual runs; the multipliers compose with the
// HookupModel's output rather than mutating the shared model, so degraded
// runs in one shard cannot leak into another.
type Degradation struct {
	Latency   float64
	Bandwidth float64
}

// Healthy reports whether the degradation is a no-op.
func (d Degradation) Healthy() bool {
	return (d.Latency == 0 || d.Latency == 1) && (d.Bandwidth == 0 || d.Bandwidth == 1)
}

// ApplyLatency stretches a latency-bound duration (e.g. hookup time).
func (d Degradation) ApplyLatency(t time.Duration) time.Duration {
	if d.Latency <= 1 {
		return t
	}
	return time.Duration(float64(t) * d.Latency)
}

// ApplyBandwidth stretches a throughput-bound duration (e.g. the
// communication share of application wall time).
func (d Degradation) ApplyBandwidth(t time.Duration) time.Duration {
	if d.Bandwidth <= 1 {
		return t
	}
	return time.Duration(float64(t) * d.Bandwidth)
}
