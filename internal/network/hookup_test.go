package network

import (
	"testing"
	"time"

	"cloudhpc/internal/cloud"
)

func TestAzureGPUHookupDecreasesWithScale(t *testing.T) {
	t.Parallel()
	h := NewHookupModel()
	// Paper: ≈43, 30, 20, 10 s at 4, 8, 16, 32 nodes — *decreasing*.
	var prev = time.Duration(1<<62 - 1)
	for _, nodes := range []int{4, 8, 16, 32} {
		v := h.Hookup(cloud.Azure, cloud.GPU, true, nodes, nil)
		if v >= prev {
			t.Fatalf("Azure GPU hookup should fall with scale: %v at %d nodes (prev %v)", v, nodes, prev)
		}
		prev = v
	}
	if got := h.Hookup(cloud.Azure, cloud.GPU, true, 4, nil); got != 43*time.Second {
		t.Fatalf("4-node Azure GPU hookup = %v, want 43s", got)
	}
}

func TestAzureCPUHookupDoublesWithScale(t *testing.T) {
	t.Parallel()
	h := NewHookupModel()
	// Paper: ≈50, 100, 200, >400 s at 32, 64, 128, 256 nodes.
	want := map[int]time.Duration{32: 50 * time.Second, 64: 100 * time.Second, 128: 200 * time.Second, 256: 400 * time.Second}
	for nodes, w := range want {
		if got := h.Hookup(cloud.Azure, cloud.CPU, true, nodes, nil); got != w {
			t.Fatalf("Azure CPU hookup at %d = %v, want %v", nodes, got, w)
		}
	}
}

func TestOtherCloudsFlatHookup(t *testing.T) {
	t.Parallel()
	h := NewHookupModel()
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Google} {
		small := h.Hookup(p, cloud.CPU, false, 32, nil)
		large := h.Hookup(p, cloud.CPU, false, 256, nil)
		if small != large {
			t.Fatalf("%s hookup should be scale-independent: %v vs %v", p, small, large)
		}
		if small < 10*time.Second || small > 15*time.Second {
			t.Fatalf("%s CPU hookup = %v, want 10–15 s", p, small)
		}
		gpu := h.Hookup(p, cloud.GPU, false, 32, nil)
		if gpu < 3*time.Second || gpu > 4*time.Second {
			t.Fatalf("%s GPU hookup = %v, want 3–4 s", p, gpu)
		}
	}
}

func TestOnPremHookupIsSmall(t *testing.T) {
	t.Parallel()
	h := NewHookupModel()
	if got := h.Hookup(cloud.OnPrem, cloud.CPU, false, 256, nil); got > 5*time.Second {
		t.Fatalf("on-prem hookup = %v, want tiny", got)
	}
}

func TestAKS256HookupNearNineMinutes(t *testing.T) {
	t.Parallel()
	// Paper: only one LAMMPS run was performed for AKS CPU at size 256 due
	// to an 8.82-minute hookup. Our model gives 400s ≈ 6.7 min before
	// jitter; it must at least exceed 6 minutes.
	h := NewHookupModel()
	if got := h.Hookup(cloud.Azure, cloud.CPU, true, 256, nil); got < 6*time.Minute {
		t.Fatalf("AKS CPU 256-node hookup = %v, want > 6 min", got)
	}
}

func TestCycleCloudCPUHookupFlat(t *testing.T) {
	t.Parallel()
	// The doubling CPU hookup is a Kubernetes (AKS) behaviour; CycleCloud
	// VMs have InfiniBand up before the job starts.
	h := NewHookupModel()
	small := h.Hookup(cloud.Azure, cloud.CPU, false, 32, nil)
	large := h.Hookup(cloud.Azure, cloud.CPU, false, 256, nil)
	if small != large {
		t.Fatalf("CycleCloud hookup should be flat: %v vs %v", small, large)
	}
	if large > 20*time.Second {
		t.Fatalf("CycleCloud hookup = %v, want modest", large)
	}
}
