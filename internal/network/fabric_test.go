package network

import (
	"math"
	"testing"
	"testing/quick"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

func model(t *testing.T, f cloud.Fabric) *Model {
	t.Helper()
	m, err := Lookup(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var colo = Path{Colocated: true}

func TestLatencyOrderingMatchesFigure5(t *testing.T) {
	t.Parallel()
	// Paper: environments with InfiniBand fabrics (on-prem A via Omni-Path
	// and Azure CycleCloud via IB) had the lowest latency; Google the
	// highest among clouds.
	op := model(t, cloud.OmniPath100).Latency(8, colo, nil)
	ib := model(t, cloud.InfiniBandHDR).Latency(8, colo, nil)
	efa := model(t, cloud.EFAGen15).Latency(8, colo, nil)
	gp := model(t, cloud.GooglePremium).Latency(8, colo, nil)
	if !(op < efa && ib < efa) {
		t.Fatalf("low-latency fabrics must beat EFA: op=%f ib=%f efa=%f", op, ib, efa)
	}
	if !(efa < gp) {
		t.Fatalf("EFA must beat Google networking on latency: efa=%f gp=%f", efa, gp)
	}
}

func TestCycleCloudHighestBandwidth(t *testing.T) {
	t.Parallel()
	// Paper: the highest bandwidth was seen for Azure CycleCloud (IB HDR).
	const big = 1 << 20
	hdr := model(t, cloud.InfiniBandHDR).Bandwidth(big, colo, nil)
	for _, f := range []cloud.Fabric{cloud.EFAGen15, cloud.GooglePremium, cloud.GoogleTier1, cloud.OmniPath100, cloud.InfiniBandEDR} {
		if other := model(t, f).Bandwidth(big, colo, nil); other >= hdr {
			t.Fatalf("IB HDR (%f MB/s) must exceed %s (%f MB/s)", hdr, f, other)
		}
	}
}

func TestLatencyMonotonicInMessageSize(t *testing.T) {
	t.Parallel()
	f := func(raw uint32) bool {
		m, _ := Lookup(cloud.EFAGen15)
		b := float64(raw%(1<<20)) + 1
		return m.Latency(b+1024, colo, nil) > m.Latency(b, colo, nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthMonotonicAndBounded(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.InfiniBandHDR)
	prev := 0.0
	for _, b := range StandardMessageSizes() {
		v := m.Bandwidth(b, colo, nil)
		if v <= prev {
			t.Fatalf("bandwidth not increasing at %f bytes: %f <= %f", b, v, prev)
		}
		if v > m.PeakBandwidthMBs {
			t.Fatalf("bandwidth exceeds peak: %f > %f", v, m.PeakBandwidthMBs)
		}
		prev = v
	}
}

func TestAWSAllReduceSpikeAt32KiB(t *testing.T) {
	t.Parallel()
	// Paper Fig 5: a latency spike for both AWS environments at 32,768 B.
	m := model(t, cloud.EFAGen15)
	at := m.AllReduce(256, 32768, colo, nil)
	below := m.AllReduce(256, 8192, colo, nil)
	above := m.AllReduce(256, 131072, colo, nil)
	if at < 3*below {
		t.Fatalf("spike too small vs 8KiB: %f vs %f", at, below)
	}
	if at < 2*above {
		t.Fatalf("spike too small vs 128KiB: %f vs %f", at, above)
	}
	// Fabrics without the bug have no spike: time at 32 KiB sits between
	// its neighbours.
	ib := model(t, cloud.InfiniBandHDR)
	a, b, c := ib.AllReduce(256, 16384, colo, nil), ib.AllReduce(256, 32768, colo, nil), ib.AllReduce(256, 65536, colo, nil)
	if !(a < b && b < c) {
		t.Fatalf("IB allreduce should be smooth: %f %f %f", a, b, c)
	}
}

func TestAllReduceGrowsWithRanks(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.GooglePremium)
	if m.AllReduce(16, 1024, colo, nil) >= m.AllReduce(256, 1024, colo, nil) {
		t.Fatalf("allreduce should grow with rank count")
	}
	if m.AllReduce(1, 1024, colo, nil) != 0 {
		t.Fatalf("single-rank allreduce is free")
	}
}

func TestPathPenalties(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.GooglePremium)
	base := m.Latency(8, colo, nil)
	far := m.Latency(8, Path{Colocated: false}, nil)
	if far <= base {
		t.Fatalf("non-colocated path must be slower: %f vs %f", far, base)
	}
	interf := m.Latency(8, Path{Colocated: true, Interference: true}, nil)
	if interf <= base {
		t.Fatalf("interference must raise latency (EKS/AKS simultaneous runs)")
	}
	overlay := m.Latency(8, Path{Colocated: true, Overlay: true}, nil)
	if overlay <= base {
		t.Fatalf("overlay must slow non-OS-bypass fabrics")
	}
	// OS-bypass fabrics do not pay the overlay penalty (paper §1.1: RDMA
	// and OS-bypass avoid the Kubernetes network overhead).
	ib := model(t, cloud.InfiniBandHDR)
	if ib.Latency(8, Path{Colocated: true, Overlay: true}, nil) != ib.Latency(8, colo, nil) {
		t.Fatalf("OS-bypass fabric must not pay overlay penalty")
	}
}

func TestBandwidthPenaltyReducesThroughput(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.GooglePremium)
	if m.Bandwidth(1<<20, Path{Colocated: true, Interference: true}, nil) >= m.Bandwidth(1<<20, colo, nil) {
		t.Fatalf("interference must reduce bandwidth")
	}
}

func TestLookupUnknownFabric(t *testing.T) {
	t.Parallel()
	if _, err := Lookup(cloud.Fabric("token-ring")); err == nil {
		t.Fatalf("expected error for unknown fabric")
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.EFAGen15)
	a := m.Latency(1024, colo, sim.NewStream(42, "osu"))
	b := m.Latency(1024, colo, sim.NewStream(42, "osu"))
	if a != b {
		t.Fatalf("same seed must give same jittered value: %f vs %f", a, b)
	}
	if c := m.Latency(1024, colo, sim.NewStream(43, "osu")); c == a {
		t.Fatalf("different seed should almost surely differ")
	}
}

func TestModelsCoverAllCatalogFabrics(t *testing.T) {
	t.Parallel()
	ms := Models()
	for _, it := range cloud.NewCatalog().All() {
		if _, ok := ms[it.Fabric]; !ok {
			t.Fatalf("no network model for catalog fabric %q (%s)", it.Fabric, it)
		}
	}
}

func TestAllReduceSpikeSymmetricDecay(t *testing.T) {
	t.Parallel()
	m := model(t, cloud.EFAGen1)
	at := m.AllReduce(64, 32768, colo, nil)
	half := m.AllReduce(64, 16384, colo, nil)
	dbl := m.AllReduce(64, 65536, colo, nil)
	if !(at > half && at > dbl) {
		t.Fatalf("spike must peak at 32 KiB: %f (16K=%f 64K=%f)", at, half, dbl)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		t.Fatalf("allreduce produced non-finite value")
	}
}
