package network

import (
	"sort"

	"cloudhpc/internal/sim"
)

// This file implements the OSU micro-benchmark harness of paper §2.8:
// point-to-point latency (osu_latency), point-to-point bandwidth (osu_bw),
// and the allreduce collective (osu_allreduce), including the paper's
// pair-sampling strategy — randomly select 8 nodes and test at most 28
// pair combinations.

// OSUSample is one (message size → value) series.
type OSUSample struct {
	Bytes float64
	Value float64 // µs for latency/allreduce, MB/s for bandwidth
}

// StandardMessageSizes are the power-of-two sizes OSU sweeps, 1 B – 1 MiB.
func StandardMessageSizes() []float64 {
	var out []float64
	for b := 1.0; b <= 1<<20; b *= 2 {
		out = append(out, b)
	}
	return out
}

// SamplePairs implements the study's sampling: choose sampleNodes nodes at
// random from totalNodes and return at most maxPairs node-index pairs.
func SamplePairs(totalNodes, sampleNodes, maxPairs int, rng *sim.Stream) [][2]int {
	if sampleNodes > totalNodes {
		sampleNodes = totalNodes
	}
	perm := rng.Perm(totalNodes)[:sampleNodes]
	sort.Ints(perm)
	n := sampleNodes * (sampleNodes - 1) / 2
	if n > maxPairs {
		n = maxPairs
	}
	pairs := make([][2]int, 0, n)
	for i := 0; i < len(perm) && len(pairs) < maxPairs; i++ {
		for j := i + 1; j < len(perm) && len(pairs) < maxPairs; j++ {
			pairs = append(pairs, [2]int{perm[i], perm[j]})
		}
	}
	return pairs
}

// RunLatency sweeps osu_latency over the standard sizes for every sampled
// pair and returns the mean series.
func RunLatency(m *Model, p Path, pairs int, rng *sim.Stream) []OSUSample {
	return sweep(StandardMessageSizes(), pairs, func(bytes float64) float64 {
		return m.Latency(bytes, p, rng)
	})
}

// RunBandwidth sweeps osu_bw similarly.
func RunBandwidth(m *Model, p Path, pairs int, rng *sim.Stream) []OSUSample {
	return sweep(StandardMessageSizes(), pairs, func(bytes float64) float64 {
		return m.Bandwidth(bytes, p, rng)
	})
}

// RunAllReduce sweeps osu_allreduce across ranks.
func RunAllReduce(m *Model, ranks int, p Path, iterations int, rng *sim.Stream) []OSUSample {
	return sweep(StandardMessageSizes(), iterations, func(bytes float64) float64 {
		return m.AllReduce(ranks, bytes, p, rng)
	})
}

// sweep averages reps draws of fn at every size.
func sweep(sizes []float64, reps int, fn func(bytes float64) float64) []OSUSample {
	if reps < 1 {
		reps = 1
	}
	out := make([]OSUSample, 0, len(sizes))
	for _, b := range sizes {
		var sum float64
		for i := 0; i < reps; i++ {
			sum += fn(b)
		}
		out = append(out, OSUSample{Bytes: b, Value: sum / float64(reps)})
	}
	return out
}
