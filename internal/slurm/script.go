// Package slurm implements the batch front-end of the study's Slurm
// environments (cluster A, AWS ParallelCluster, Azure CycleCloud):
// sbatch scripts with #SBATCH directives, partitions, wall-time limits,
// and the squeue/sinfo views the team watched to catch stalled jobs.
package slurm

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// BatchOptions are the parsed #SBATCH directives of a job script.
type BatchOptions struct {
	JobName      string
	Partition    string
	Nodes        int
	TasksPerNode int
	TimeLimit    time.Duration
}

// ParseBatchScript extracts #SBATCH directives from a job script. It
// understands the long-option forms the study's run scripts used:
//
//	#SBATCH --job-name=amg2023
//	#SBATCH --nodes=256
//	#SBATCH --ntasks-per-node=96
//	#SBATCH --time=00:20:00
//	#SBATCH --partition=pbatch
func ParseBatchScript(script string) (BatchOptions, error) {
	opts := BatchOptions{Nodes: 1, TasksPerNode: 1}
	for i, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#SBATCH") {
			continue
		}
		directive := strings.TrimSpace(strings.TrimPrefix(line, "#SBATCH"))
		key, value, ok := strings.Cut(directive, "=")
		if !ok {
			return opts, fmt.Errorf("slurm: line %d: malformed directive %q", i+1, directive)
		}
		switch key {
		case "--job-name":
			opts.JobName = value
		case "--partition":
			opts.Partition = value
		case "--nodes":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 {
				return opts, fmt.Errorf("slurm: line %d: bad --nodes %q", i+1, value)
			}
			opts.Nodes = n
		case "--ntasks-per-node":
			n, err := strconv.Atoi(value)
			if err != nil || n <= 0 {
				return opts, fmt.Errorf("slurm: line %d: bad --ntasks-per-node %q", i+1, value)
			}
			opts.TasksPerNode = n
		case "--time":
			d, err := parseWalltime(value)
			if err != nil {
				return opts, fmt.Errorf("slurm: line %d: %v", i+1, err)
			}
			opts.TimeLimit = d
		default:
			return opts, fmt.Errorf("slurm: line %d: unsupported directive %q", i+1, key)
		}
	}
	return opts, nil
}

// parseWalltime parses HH:MM:SS, MM:SS, or plain minutes.
func parseWalltime(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	var h, m, sec int
	var err error
	switch len(parts) {
	case 1:
		m, err = strconv.Atoi(parts[0])
		if err != nil {
			return 0, fmt.Errorf("slurm: bad walltime %q", s)
		}
	case 2:
		if m, err = strconv.Atoi(parts[0]); err == nil {
			sec, err = strconv.Atoi(parts[1])
		}
	case 3:
		if h, err = strconv.Atoi(parts[0]); err == nil {
			if m, err = strconv.Atoi(parts[1]); err == nil {
				sec, err = strconv.Atoi(parts[2])
			}
		}
	default:
		return 0, fmt.Errorf("slurm: bad walltime %q", s)
	}
	if err != nil || h < 0 || m < 0 || sec < 0 {
		return 0, fmt.Errorf("slurm: bad walltime %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(sec)*time.Second, nil
}
