package slurm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// JobState mirrors Slurm's squeue states (the subset the study met).
type JobState string

const (
	StatePending   JobState = "PD"
	StateRunning   JobState = "R"
	StateCompleted JobState = "CD"
	StateTimeout   JobState = "TO" // wall-limit kill — the Laghos cloud fate
	StateFailed    JobState = "F"
)

// Job is one batch submission.
type Job struct {
	ID        int
	Opts      BatchOptions
	State     JobState
	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	// RunFor is the job body's true duration (from an app model); the
	// controller kills it at Opts.TimeLimit if that comes first.
	RunFor time.Duration
	// OnEnd fires when the job reaches a terminal state.
	OnEnd func(*Job)
}

// Elapsed is the run time so far (or total when ended).
func (j *Job) Elapsed(now time.Duration) time.Duration {
	switch {
	case j.State == StateRunning:
		return now - j.Started
	case j.Ended > j.Started:
		return j.Ended - j.Started
	default:
		return 0
	}
}

// Partition is a named pool of nodes.
type Partition struct {
	Name  string
	Nodes int
	free  int
}

// Controller is slurmctld: partitions, a FIFO queue per partition, and
// wall-time enforcement, driven by the simulation clock.
type Controller struct {
	sim *sim.Simulation
	log *trace.Log
	env string

	partitions map[string]*Partition
	defaultPar string
	queue      []*Job
	jobs       map[int]*Job
	nextID     int
}

// Errors.
var (
	ErrUnknownPartition = errors.New("slurm: unknown partition")
	ErrTooLarge         = errors.New("slurm: job exceeds partition size")
)

// NewController creates slurmctld with the given partitions; the first is
// the default.
func NewController(s *sim.Simulation, log *trace.Log, env string, parts ...Partition) *Controller {
	c := &Controller{sim: s, log: log, env: env,
		partitions: make(map[string]*Partition), jobs: make(map[int]*Job)}
	for i := range parts {
		p := parts[i]
		p.free = p.Nodes
		c.partitions[p.Name] = &p
		if c.defaultPar == "" {
			c.defaultPar = p.Name
		}
	}
	return c
}

// Sbatch parses a script and enqueues the job, returning its ID.
func (c *Controller) Sbatch(script string, runFor time.Duration, onEnd func(*Job)) (int, error) {
	opts, err := ParseBatchScript(script)
	if err != nil {
		return 0, err
	}
	return c.SubmitOpts(opts, runFor, onEnd)
}

// SubmitOpts enqueues pre-parsed options.
func (c *Controller) SubmitOpts(opts BatchOptions, runFor time.Duration, onEnd func(*Job)) (int, error) {
	if opts.Partition == "" {
		opts.Partition = c.defaultPar
	}
	part, ok := c.partitions[opts.Partition]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPartition, opts.Partition)
	}
	if opts.Nodes > part.Nodes {
		return 0, fmt.Errorf("%w: %d > %d in %s", ErrTooLarge, opts.Nodes, part.Nodes, part.Name)
	}
	c.nextID++
	j := &Job{ID: c.nextID, Opts: opts, State: StatePending,
		Submitted: c.sim.Now(), RunFor: runFor, OnEnd: onEnd}
	c.jobs[j.ID] = j
	c.queue = append(c.queue, j)
	c.schedule()
	return j.ID, nil
}

// schedule starts queued jobs FIFO per partition.
func (c *Controller) schedule() {
	remaining := c.queue[:0]
	for _, j := range c.queue {
		part := c.partitions[j.Opts.Partition]
		if j.Opts.Nodes <= part.free {
			part.free -= j.Opts.Nodes
			j.State = StateRunning
			j.Started = c.sim.Now()
			dur := j.RunFor
			timedOut := false
			if j.Opts.TimeLimit > 0 && dur > j.Opts.TimeLimit {
				dur = j.Opts.TimeLimit
				timedOut = true
			}
			job := j
			c.sim.After(dur, fmt.Sprintf("slurm job %d ends", j.ID), func() {
				c.finish(job, timedOut)
			})
			continue
		}
		remaining = append(remaining, j)
	}
	c.queue = remaining
}

// finish moves a job to a terminal state and frees its nodes.
func (c *Controller) finish(j *Job, timedOut bool) {
	part := c.partitions[j.Opts.Partition]
	part.free += j.Opts.Nodes
	j.Ended = c.sim.Now()
	if timedOut {
		j.State = StateTimeout
		c.log.Addf(c.sim.Now(), c.env, trace.Manual, trace.Unexpected,
			"job %d %q killed at wall limit %v", j.ID, j.Opts.JobName, j.Opts.TimeLimit)
	} else {
		j.State = StateCompleted
	}
	if j.OnEnd != nil {
		j.OnEnd(j)
	}
	c.schedule()
}

// Cancel removes a pending job or kills a running one (scancel).
func (c *Controller) Cancel(id int) error {
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("slurm: job %d unknown", id)
	}
	switch j.State {
	case StatePending:
		for i, q := range c.queue {
			if q == j {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
		j.State = StateFailed
		j.Ended = c.sim.Now()
		if j.OnEnd != nil {
			j.OnEnd(j)
		}
		return nil
	case StateRunning:
		// The completion event will still fire; mark the job failed now
		// and make finish a no-op for state (nodes are freed there).
		j.State = StateFailed
		return nil
	default:
		return fmt.Errorf("slurm: job %d already terminal (%s)", id, j.State)
	}
}

// Job returns a job by ID.
func (c *Controller) Job(id int) (*Job, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Squeue renders the queue view: pending and running jobs, ID order.
func (c *Controller) Squeue() string {
	var ids []int
	for id, j := range c.jobs {
		if j.State == StatePending || j.State == StateRunning {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %-10s %-4s %-8s %s\n", "JOBID", "NAME", "PARTITION", "ST", "NODES", "TIME")
	for _, id := range ids {
		j := c.jobs[id]
		fmt.Fprintf(&b, "%-8d %-12s %-10s %-4s %-8d %s\n",
			j.ID, j.Opts.JobName, j.Opts.Partition, j.State, j.Opts.Nodes,
			j.Elapsed(c.sim.Now()).Round(time.Second))
	}
	return b.String()
}

// Sinfo renders partition state.
func (c *Controller) Sinfo() string {
	names := make([]string, 0, len(c.partitions))
	for n := range c.partitions {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-8s %-8s\n", "PARTITION", "NODES", "ALLOC", "IDLE")
	for _, n := range names {
		p := c.partitions[n]
		fmt.Fprintf(&b, "%-12s %-8d %-8d %-8d\n", p.Name, p.Nodes, p.Nodes-p.free, p.free)
	}
	return b.String()
}
