package slurm

import (
	"strings"
	"testing"
)

// FuzzParseBatchScript hardens the sbatch parser: it must never panic and
// must either reject a script or return self-consistent options.
func FuzzParseBatchScript(f *testing.F) {
	f.Add("#SBATCH --nodes=4\n#SBATCH --time=00:10:00\n")
	f.Add("#SBATCH --job-name=amg2023\n#SBATCH --partition=pbatch\n")
	f.Add("#SBATCH --ntasks-per-node=96\nsrun app\n")
	f.Add("#SBATCH --nodes=\n")
	f.Add("#SBATCH --time=1:2:3:4\n")
	f.Add("#!/bin/bash\necho no directives\n")
	f.Fuzz(func(t *testing.T, script string) {
		opts, err := ParseBatchScript(script)
		if err != nil {
			return
		}
		if opts.Nodes <= 0 || opts.TasksPerNode <= 0 {
			t.Fatalf("accepted options with non-positive shape: %+v", opts)
		}
		if opts.TimeLimit < 0 {
			t.Fatalf("accepted negative time limit: %v", opts.TimeLimit)
		}
		if strings.ContainsAny(opts.JobName, "\n") {
			t.Fatalf("job name contains newline: %q", opts.JobName)
		}
	})
}
