package slurm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

const studyScript = `#!/bin/bash
#SBATCH --job-name=amg2023
#SBATCH --nodes=256
#SBATCH --ntasks-per-node=96
#SBATCH --time=00:20:00
#SBATCH --partition=pbatch

srun amg -P 4 4 4 -n 256 256 128
`

func TestParseBatchScript(t *testing.T) {
	t.Parallel()
	opts, err := ParseBatchScript(studyScript)
	if err != nil {
		t.Fatal(err)
	}
	if opts.JobName != "amg2023" || opts.Nodes != 256 || opts.TasksPerNode != 96 {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.Partition != "pbatch" || opts.TimeLimit != 20*time.Minute {
		t.Fatalf("opts = %+v", opts)
	}
}

func TestParseDefaults(t *testing.T) {
	t.Parallel()
	opts, err := ParseBatchScript("#!/bin/bash\necho hi\n")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Nodes != 1 || opts.TasksPerNode != 1 || opts.TimeLimit != 0 {
		t.Fatalf("defaults = %+v", opts)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{
		"#SBATCH --nodes=zero",
		"#SBATCH --nodes=-2",
		"#SBATCH --time=abc",
		"#SBATCH --walrus=yes",
		"#SBATCH --nodes 4", // missing '='
	} {
		if _, err := ParseBatchScript(bad); err == nil {
			t.Fatalf("ParseBatchScript(%q) should fail", bad)
		}
	}
}

func TestParseWalltimeForms(t *testing.T) {
	t.Parallel()
	cases := map[string]time.Duration{
		"15":       15 * time.Minute,
		"90:30":    90*time.Minute + 30*time.Second,
		"02:05:09": 2*time.Hour + 5*time.Minute + 9*time.Second,
	}
	for in, want := range cases {
		got, err := parseWalltime(in)
		if err != nil || got != want {
			t.Fatalf("parseWalltime(%q) = %v, %v (want %v)", in, got, err, want)
		}
	}
}

func newCtl(nodes int) (*sim.Simulation, *trace.Log, *Controller) {
	s := sim.New(1)
	log := trace.NewLog()
	return s, log, NewController(s, log, "onprem-a-cpu", Partition{Name: "pbatch", Nodes: nodes})
}

func TestSbatchRunsToCompletion(t *testing.T) {
	t.Parallel()
	s, _, c := newCtl(256)
	var ended *Job
	id, err := c.Sbatch(studyScript, 5*time.Minute, func(j *Job) { ended = j })
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if ended == nil || ended.ID != id || ended.State != StateCompleted {
		t.Fatalf("job end: %+v", ended)
	}
	if got := ended.Elapsed(s.Now()); got != 5*time.Minute {
		t.Fatalf("elapsed = %v", got)
	}
}

func TestWallLimitKill(t *testing.T) {
	t.Parallel()
	s, log, c := newCtl(256)
	var final JobState
	// Laghos beyond 64 cloud nodes: the body wants 45 minutes but the
	// budget allows 20 — the controller kills it at the limit.
	_, err := c.Sbatch(strings.Replace(studyScript, "amg2023", "laghos", 1), 45*time.Minute, func(j *Job) { final = j.State })
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if final != StateTimeout {
		t.Fatalf("state = %s, want TO", final)
	}
	if s.Now() != 20*time.Minute {
		t.Fatalf("killed at %v, want the 20m limit", s.Now())
	}
	kills := log.Filter(func(e trace.Event) bool { return strings.Contains(e.Msg, "wall limit") })
	if len(kills) != 1 {
		t.Fatalf("wall-limit kill should be logged")
	}
}

func TestFIFOBackfillPerPartition(t *testing.T) {
	t.Parallel()
	s, _, c := newCtl(100)
	var order []int
	mk := func(nodes int) int {
		opts := BatchOptions{JobName: "j", Nodes: nodes, TasksPerNode: 1}
		id, err := c.SubmitOpts(opts, time.Minute, func(j *Job) { order = append(order, j.ID) })
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk(60)
	b := mk(60)   // must wait for a
	cID := mk(40) // fits alongside a immediately
	s.Run()
	_ = b
	if len(order) != 3 {
		t.Fatalf("ended %d jobs", len(order))
	}
	// a and c finish together at 1m; b finishes at 2m.
	if order[2] != 2 {
		t.Fatalf("job b should end last: %v (a=%d c=%d)", order, a, cID)
	}
}

func TestRejections(t *testing.T) {
	t.Parallel()
	_, _, c := newCtl(10)
	if _, err := c.SubmitOpts(BatchOptions{Nodes: 11, TasksPerNode: 1}, time.Minute, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized job: %v", err)
	}
	if _, err := c.SubmitOpts(BatchOptions{Nodes: 1, TasksPerNode: 1, Partition: "ghost"}, time.Minute, nil); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("unknown partition: %v", err)
	}
}

func TestCancelPending(t *testing.T) {
	t.Parallel()
	s, _, c := newCtl(10)
	c.SubmitOpts(BatchOptions{JobName: "hog", Nodes: 10, TasksPerNode: 1}, time.Hour, nil)
	var cancelled *Job
	id, _ := c.SubmitOpts(BatchOptions{JobName: "victim", Nodes: 10, TasksPerNode: 1}, time.Hour,
		func(j *Job) { cancelled = j })
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if cancelled == nil || cancelled.State != StateFailed {
		t.Fatalf("cancelled job: %+v", cancelled)
	}
	s.Run()
	if j, _ := c.Job(id); j.State != StateFailed {
		t.Fatalf("cancel overwritten: %s", j.State)
	}
	if err := c.Cancel(id); err == nil {
		t.Fatalf("cancelling a terminal job must fail")
	}
	if err := c.Cancel(9999); err == nil {
		t.Fatalf("cancelling unknown job must fail")
	}
}

func TestSqueueSinfo(t *testing.T) {
	t.Parallel()
	s, _, c := newCtl(64)
	c.SubmitOpts(BatchOptions{JobName: "lammps", Nodes: 64, TasksPerNode: 96}, time.Hour, nil)
	c.SubmitOpts(BatchOptions{JobName: "waiting", Nodes: 64, TasksPerNode: 96}, time.Hour, nil)
	sq := c.Squeue()
	if !strings.Contains(sq, "lammps") || !strings.Contains(sq, " R ") || !strings.Contains(sq, "PD") {
		t.Fatalf("squeue:\n%s", sq)
	}
	si := c.Sinfo()
	if !strings.Contains(si, "pbatch") || !strings.Contains(si, "64") {
		t.Fatalf("sinfo:\n%s", si)
	}
	s.Run()
	if sq := c.Squeue(); strings.Contains(sq, "lammps") {
		t.Fatalf("squeue should be empty after completion:\n%s", sq)
	}
}

func TestMultiplePartitions(t *testing.T) {
	t.Parallel()
	s := sim.New(2)
	log := trace.NewLog()
	c := NewController(s, log, "env",
		Partition{Name: "pbatch", Nodes: 32},
		Partition{Name: "pdebug", Nodes: 4})
	done := map[string]bool{}
	c.SubmitOpts(BatchOptions{JobName: "big", Nodes: 32, TasksPerNode: 1, Partition: "pbatch"},
		time.Minute, func(j *Job) { done["big"] = true })
	c.SubmitOpts(BatchOptions{JobName: "small", Nodes: 4, TasksPerNode: 1, Partition: "pdebug"},
		time.Minute, func(j *Job) { done["small"] = true })
	s.Run()
	if !done["big"] || !done["small"] {
		t.Fatalf("partitions should run independently: %v", done)
	}
}
