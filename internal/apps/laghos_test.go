package apps

import (
	"errors"
	"testing"
)

func TestLaghosCloudCompletesOnlySmallSizes(t *testing.T) {
	m := NewLaghos()
	rng := rngFor("laghos")
	for _, key := range []string{"aws-eks-cpu", "google-gke-cpu", "azure-aks-cpu", "google-computeengine-cpu", "azure-cyclecloud-cpu"} {
		e := env(t, key)
		for _, nodes := range []int{32, 64} {
			if r := m.Run(e, nodes, rng); r.Err != nil {
				t.Fatalf("%s at %d nodes should complete: %v", key, nodes, r.Err)
			}
		}
		for _, nodes := range []int{128, 256} {
			if r := m.Run(e, nodes, rng); !errors.Is(r.Err, ErrTimeout) {
				t.Fatalf("%s at %d nodes should time out, got %v", key, nodes, r.Err)
			}
		}
	}
}

func TestLaghosParallelClusterNeverCompletes(t *testing.T) {
	m := NewLaghos()
	e := env(t, "aws-parallelcluster-cpu")
	for _, nodes := range []int{32, 64} {
		if r := m.Run(e, nodes, rngFor("laghos-pc")); !errors.Is(r.Err, ErrTimeout) {
			t.Fatalf("ParallelCluster at %d nodes must not complete, got %v", nodes, r.Err)
		}
	}
}

func TestLaghosOnPremOrderOfMagnitudeFaster(t *testing.T) {
	m := NewLaghos()
	rng := rngFor("laghos-op")
	op := m.Run(env(t, "onprem-a-cpu"), 32, rng)
	if op.Err != nil {
		t.Fatalf("on-prem 32 nodes: %v", op.Err)
	}
	cl := m.Run(env(t, "azure-aks-cpu"), 32, rng)
	if cl.Err != nil {
		t.Fatalf("cloud 32 nodes: %v", cl.Err)
	}
	if op.FOM < 7*cl.FOM {
		t.Fatalf("on-prem FOM (%f) should be ~an order of magnitude above cloud (%f)", op.FOM, cl.FOM)
	}
}

func TestLaghosOnPremSpeedupNear1_6(t *testing.T) {
	m := NewLaghos()
	e := env(t, "onprem-a-cpu")
	var f32, f64 float64
	rngA, rngB := rngFor("l32"), rngFor("l64")
	for i := 0; i < 40; i++ {
		f32 += m.Run(e, 32, rngA).FOM
		f64 += m.Run(e, 64, rngB).FOM
	}
	sp := f64 / f32
	if sp < 1.45 || sp < 1.0 || sp > 1.75 {
		t.Fatalf("on-prem 32→64 speedup = %f, want ≈1.6", sp)
	}
}

func TestLaghosOnPremSegfaultsAtLargeSizes(t *testing.T) {
	m := NewLaghos()
	e := env(t, "onprem-a-cpu")
	for _, nodes := range []int{128, 256} {
		if r := m.Run(e, nodes, rngFor("lseg")); !errors.Is(r.Err, ErrSegfault) {
			t.Fatalf("cluster A at %d nodes should segfault, got %v", nodes, r.Err)
		}
	}
}

func TestLaghosGPUUnsupported(t *testing.T) {
	m := NewLaghos()
	if r := m.Run(env(t, "google-gke-gpu"), 4, rngFor("lgpu")); !errors.Is(r.Err, ErrNotSupported) {
		t.Fatalf("GPU Laghos must be unsupported (CUDA conflict), got %v", r.Err)
	}
}
