// Package apps implements analytic performance models of the study's 11
// proxy applications and benchmarks (paper §2.8). Each model maps an
// environment (instance type, fabric, orchestration) and a node count to a
// figure of merit with deterministic seeded noise, via an explicit
// compute/communication split: compute scales with node capability, and
// communication is priced by the environment's network model. That split
// is what lets fabric substitution reorder environments the way the
// paper's figures show.
package apps

import (
	"errors"
	"fmt"
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
)

// Env describes an execution environment as the application models see it.
type Env struct {
	Key        string // canonical key, e.g. "aws-parallelcluster-cpu"
	Label      string // display label, e.g. "AWS ParallelCluster"
	Provider   cloud.Provider
	Acc        cloud.Accelerator
	Kubernetes bool
	Instance   cloud.InstanceType
	Net        *network.Model
	Path       network.Path
}

// OnPrem reports whether this is one of the institutional clusters.
func (e Env) OnPrem() bool { return e.Provider == cloud.OnPrem }

// RanksPerNode is cores for CPU environments and GPUs for GPU environments.
func (e Env) RanksPerNode() int {
	if e.Acc == cloud.GPU {
		return e.Instance.GPUs
	}
	return e.Instance.Cores
}

// Units returns total parallel units (cores or GPUs) at a node count.
func (e Env) Units(nodes int) int { return nodes * e.RanksPerNode() }

// PathAt returns the network path conditions at a cluster size. Placement
// breaks down at scale exactly where the study saw it (§3.2): GKE COMPACT
// placement was capped at 150 nodes, and AKS proximity placement groups
// would not complete at 100 nodes or more — beyond those sizes traffic
// crosses rack domains.
func (e Env) PathAt(nodes int) network.Path {
	p := e.Path
	if e.Kubernetes {
		switch e.Provider {
		case cloud.Google:
			if nodes > 150 {
				p.Colocated = false
			}
		case cloud.Azure:
			if nodes >= 100 {
				p.Colocated = false
			}
		}
	}
	return p
}

// Run errors shared by the models.
var (
	// ErrTimeout marks runs that exceeded the study's budget-imposed wall
	// limit (Laghos beyond 64 cloud nodes, Quicksilver GPU).
	ErrTimeout = errors.New("apps: run exceeded wall-time limit")
	// ErrSegfault marks crashes (Laghos on cluster A at 128/256 nodes).
	ErrSegfault = errors.New("apps: segmentation fault")
	// ErrNotSupported marks configurations the study could not run at all
	// (Kripke GPU process mapping, Laghos GPU containers).
	ErrNotSupported = errors.New("apps: configuration not supported")
	// ErrOutputLost marks runs whose output could not be recovered
	// (MiniFE on-premises).
	ErrOutputLost = errors.New("apps: partial output, result unrecoverable")
)

// Scaling is the study's per-application scaling mode (paper §2.8).
type Scaling string

const (
	Strong Scaling = "strong"
	Weak   Scaling = "weak"
	Single Scaling = "single-node"
)

// Result is the outcome of one application run.
type Result struct {
	FOM  float64
	Unit string
	Wall time.Duration // application wall time (excludes hookup)
	Err  error
}

// Model is one application's performance model.
type Model interface {
	// Name is the lowercase application name used in container tags.
	Name() string
	// Unit names the figure of merit.
	Unit() string
	// HigherIsBetter reports the FOM direction.
	HigherIsBetter() bool
	// Scaling returns the study's scaling mode for the app.
	Scaling() Scaling
	// Run produces one iteration's result for the environment at a node
	// count. rng supplies run-to-run noise; it must not be nil.
	Run(env Env, nodes int, rng *sim.Stream) Result
}

// All returns the 11 models of the study in the paper's §2.8 order.
func All() []Model {
	return []Model{
		NewAMG2023(),
		NewLaghos(),
		NewLAMMPS(),
		NewKripke(),
		NewMiniFE(),
		NewMTGEMM(),
		NewMixbench(),
		NewOSU(),
		NewSingleNode(),
		NewStream(),
		NewQuicksilver(),
	}
}

// SelectModels resolves application names against the model list. "*"
// (anywhere in the list) or an empty list selects all eleven models. The
// result is in the paper's §2.8 order regardless of name order, with no
// duplicates; an unknown name is an error.
func SelectModels(names []string) ([]Model, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range names {
		if n == "*" {
			return all, nil
		}
		if _, err := ByName(n); err != nil {
			return nil, err
		}
		want[n] = true
	}
	var out []Model
	for _, m := range all {
		if want[m.Name()] {
			out = append(out, m)
		}
	}
	return out, nil
}

// ByName returns the named model.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// wallFromRate converts an amount of work and a rate into a wall duration,
// guarding against division by zero.
func wallFromRate(work, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour
	}
	return time.Duration(work / rate * float64(time.Second))
}
