package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Kripke models the deterministic particle-transport proxy, run strong
// scaled on CPU. FOM is grind time — the time to complete a unit of work —
// so lower is better (paper §2.8).
//
// Calibrated behaviours from Figure 1 / §3.3:
//   - AWS ParallelCluster had the lowest grind time at the largest three
//     sizes, followed by EKS and CycleCloud.
//   - The paper attributes the ordering primarily to the network
//     interconnect; sweep pipelines are sensitive to injection overheads,
//     and Kubernetes adds a small scheduling overhead on top of the VM
//     variants of the same fabric.
//   - GPU runs are not reported: processes could not be mapped to GPUs
//     correctly.
type Kripke struct{}

// NewKripke returns the calibrated model.
func NewKripke() *Kripke { return &Kripke{} }

func (k *Kripke) Name() string         { return "kripke" }
func (k *Kripke) Unit() string         { return "grind time (ns)" }
func (k *Kripke) HigherIsBetter() bool { return false }
func (k *Kripke) Scaling() Scaling     { return Strong }

// Run evaluates one Kripke execution.
func (k *Kripke) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.Acc == cloud.GPU {
		return Result{Unit: k.Unit(), Err: ErrNotSupported} // process→GPU mapping
	}
	units := env.Units(nodes)

	// Grind time: per-unknown compute cost shrinks with parallel units;
	// each KBA sweep stage pays a modest neighbour-exchange cost priced by
	// the fabric (the pipeline amortizes most of it, hence the 1/10).
	computeNs := 9.0e5 / float64(units) * k.platform(env)
	sweepStages := float64(nodes)
	commNs := env.Net.Latency(16384, env.PathAt(nodes), nil) * 1e3 * sweepStages / float64(units) / 10
	grind := computeNs + commNs
	if env.Kubernetes {
		grind *= 1.06 // containerd/kubelet jitter on the sweep pipeline
	}
	grind = rng.Jitter(grind, 0.05)
	return Result{FOM: grind, Unit: k.Unit(), Wall: wallFromRate(1e3, 1e9/grind)}
}

// platform folds in per-core sweep throughput: AWS's 3.6 GHz EPYCs lead;
// CycleCloud's HB96rs parts clock down to 1.9 GHz under sustained sweeps
// and pay UCX ud/shm/rc software overheads; cluster A's dense 112-core
// nodes starve the sweep kernel of memory bandwidth per core.
func (k *Kripke) platform(env Env) float64 {
	switch env.Provider {
	case cloud.Azure:
		return 2.3
	case cloud.Google:
		return 1.12 // per-core fine; fewer cores/node already hurt via units
	case cloud.OnPrem:
		return 1.95
	default: // AWS
		return 1.0
	}
}
