package apps

import (
	"fmt"
	"strings"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/network"
)

// This file defines the study's environment matrix (paper Tables 1–3):
// seven CPU environments and six deployable GPU environments. AWS
// ParallelCluster GPU exists in the matrix but is marked unavailable — the
// study could not build the required combination of newer orchestration
// software with older drivers, reducing the assessment from 12 to 11
// cloud environments.

// EnvSpec is one row of the environment matrix.
type EnvSpec struct {
	Env
	// Scheduler is the workload manager of Table 1.
	Scheduler string
	// ContainerRuntime is "containerd" under Kubernetes, "singularity" in
	// VM environments, and "" on bare metal.
	ContainerRuntime string
	// Unavailable is non-empty when the environment could not be deployed,
	// with the reason.
	Unavailable string
	// CPUScales / GPUScales are the study's cluster sizes for the env.
	Scales []int
}

// StudyEnvironments returns the full matrix in the paper's Table 1 order.
func StudyEnvironments() ([]EnvSpec, error) {
	cat := cloud.NewCatalog()
	nets := network.Models()

	mk := func(key, label string, p cloud.Provider, acc cloud.Accelerator, inst string,
		k8s bool, sched, runtime string, colocated bool, scales []int) (EnvSpec, error) {
		it, err := cat.Lookup(p, inst)
		if err != nil {
			return EnvSpec{}, err
		}
		net, ok := nets[it.Fabric]
		if !ok {
			return EnvSpec{}, fmt.Errorf("apps: no network model for %s", it.Fabric)
		}
		return EnvSpec{
			Env: Env{
				Key: key, Label: label, Provider: p, Acc: acc, Kubernetes: k8s,
				Instance: it, Net: net,
				Path: network.Path{Colocated: colocated, Overlay: k8s},
			},
			Scheduler: sched, ContainerRuntime: runtime, Scales: scales,
		}, nil
	}

	cpuScales := []int{32, 64, 128, 256}
	gpuScales := []int{4, 8, 16, 32}
	gpuScalesB := []int{8, 16, 32, 64} // cluster B: 4 GPUs/node, double the nodes

	rows := []struct {
		key, label string
		p          cloud.Provider
		acc        cloud.Accelerator
		inst       string
		k8s        bool
		sched      string
		runtime    string
		colocated  bool
		scales     []int
		unavail    string
	}{
		// CPU (Table 1 order).
		{"onprem-a-cpu", "On-Premises A", cloud.OnPrem, cloud.CPU, "dell-xeon-8480", false, "Slurm", "", true, cpuScales, ""},
		{"aws-parallelcluster-cpu", "AWS ParallelCluster", cloud.AWS, cloud.CPU, "Hpc6a", false, "Slurm", "singularity", true, cpuScales, ""},
		{"aws-eks-cpu", "AWS EKS", cloud.AWS, cloud.CPU, "Hpc6a", true, "Flux", "containerd", true, cpuScales, ""},
		{"google-computeengine-cpu", "Google Compute Engine", cloud.Google, cloud.CPU, "c2d-standard-112", false, "Flux", "singularity", false, cpuScales, ""},
		{"google-gke-cpu", "Google GKE", cloud.Google, cloud.CPU, "c2d-standard-112", true, "Flux", "containerd", true, cpuScales, ""},
		{"azure-cyclecloud-cpu", "Azure CycleCloud", cloud.Azure, cloud.CPU, "HB96rs v3", false, "Slurm", "singularity", true, cpuScales, ""},
		{"azure-aks-cpu", "Azure AKS", cloud.Azure, cloud.CPU, "HB96rs v3", true, "Flux", "containerd", true, cpuScales, ""},
		// GPU.
		{"onprem-b-gpu", "On-Premises B", cloud.OnPrem, cloud.GPU, "ibm-power9-v100", false, "LSF", "", true, gpuScalesB, ""},
		{"aws-parallelcluster-gpu", "AWS ParallelCluster", cloud.AWS, cloud.GPU, "p3dn.24xlarge", false, "Slurm", "singularity", true, gpuScales,
			"custom build combining newer orchestration software with older drivers was not possible"},
		{"aws-eks-gpu", "AWS EKS", cloud.AWS, cloud.GPU, "p3dn.24xlarge", true, "Flux", "containerd", true, gpuScales, ""},
		{"google-computeengine-gpu", "Google Compute Engine", cloud.Google, cloud.GPU, "n1-standard-32", false, "Flux", "singularity", false, gpuScales, ""},
		{"google-gke-gpu", "Google GKE", cloud.Google, cloud.GPU, "n1-standard-32", true, "Flux", "containerd", true, gpuScales, ""},
		{"azure-cyclecloud-gpu", "Azure CycleCloud", cloud.Azure, cloud.GPU, "ND40rs v2", false, "Slurm", "singularity", true, gpuScales, ""},
		{"azure-aks-gpu", "Azure AKS", cloud.Azure, cloud.GPU, "ND40rs v2", true, "Flux", "containerd", true, gpuScales, ""},
	}

	out := make([]EnvSpec, 0, len(rows))
	for _, r := range rows {
		spec, err := mk(r.key, r.label, r.p, r.acc, r.inst, r.k8s, r.sched, r.runtime, r.colocated, r.scales)
		if err != nil {
			return nil, err
		}
		spec.Unavailable = r.unavail
		out = append(out, spec)
	}
	return out, nil
}

// MatchEnv reports whether an environment-selector pattern matches a
// matrix key: "*" matches everything, a trailing "*" is a prefix glob
// ("azure-*"), anything else is an exact key.
func MatchEnv(pattern, key string) bool {
	switch {
	case pattern == "*":
		return true
	case strings.HasSuffix(pattern, "*"):
		return strings.HasPrefix(key, strings.TrimSuffix(pattern, "*"))
	default:
		return pattern == key
	}
}

// SelectEnvironments resolves environment-selector patterns against the
// study matrix. The result preserves matrix order and contains no
// duplicates regardless of pattern order or overlap. A pattern that
// matches nothing is an error — a silent empty selection hides typos.
// An empty pattern list selects the full matrix.
func SelectEnvironments(patterns []string) ([]EnvSpec, error) {
	envs, err := StudyEnvironments()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return envs, nil
	}
	selected := make([]bool, len(envs))
	for _, p := range patterns {
		hit := false
		for i, e := range envs {
			if MatchEnv(p, e.Key) {
				selected[i] = true
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("apps: environment pattern %q matches nothing in the matrix", p)
		}
	}
	var out []EnvSpec
	for i, e := range envs {
		if selected[i] {
			out = append(out, e)
		}
	}
	return out, nil
}

// EnvByKey returns one environment from the matrix.
func EnvByKey(key string) (EnvSpec, error) {
	envs, err := StudyEnvironments()
	if err != nil {
		return EnvSpec{}, err
	}
	for _, e := range envs {
		if e.Key == key {
			return e, nil
		}
	}
	return EnvSpec{}, fmt.Errorf("apps: unknown environment %q", key)
}

// Deployable filters out environments the study could not deploy.
func Deployable(envs []EnvSpec) []EnvSpec {
	var out []EnvSpec
	for _, e := range envs {
		if e.Unavailable == "" {
			out = append(out, e)
		}
	}
	return out
}

// MaxNodesFor applies harness-level resource limits the paper reports:
// the largest EKS GPU size was not possible due to inability to get GPUs.
func MaxNodesFor(e EnvSpec) int {
	max := 0
	for _, s := range e.Scales {
		if s > max {
			max = s
		}
	}
	if e.Key == "aws-eks-gpu" {
		return 16 // 32-node (256 GPU) size unobtainable
	}
	return max
}
