package apps_test

import (
	"fmt"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Running one application model against a study environment.
func Example() {
	spec, err := apps.EnvByKey("azure-cyclecloud-cpu")
	if err != nil {
		panic(err)
	}
	lammps := apps.NewLAMMPS()
	rng := sim.NewStream(1, "example")
	r := lammps.Run(spec.Env, 64, rng)
	fmt.Printf("%s on %s at 64 nodes: %.0f %s\n", lammps.Name(), spec.Label, r.FOM, r.Unit)
	// Output:
	// lammps on Azure CycleCloud at 64 nodes: 65 M-atom steps/s
}

// The environment matrix is the paper's Table 1.
func ExampleStudyEnvironments() {
	envs, _ := apps.StudyEnvironments()
	deployable := apps.Deployable(envs)
	fmt.Printf("%d environments, %d deployable\n", len(envs), len(deployable))
	// Output:
	// 14 environments, 13 deployable
}

// AMG2023's problem sizing encodes the paper's GPU-memory and integer-
// indexing constraints.
func ExampleAMGConfig() {
	cfg := apps.StudyAMGConfig()
	fmt.Printf("grid %d×%d×%d: %.1f GB per rank, 32-bit safe up to %d ranks\n",
		cfg.Nx, cfg.Ny, cfg.Nz, cfg.MemoryPerRankGB(), cfg.MaxIndexableRanks())
	// Output:
	// grid 256×256×128: 14.3 GB per rank, 32-bit safe up to 255 ranks
}

// Failure modes are first-class results, not panics.
func ExampleModel_failureModes() {
	laghos := apps.NewLaghos()
	spec, _ := apps.EnvByKey("google-gke-cpu")
	rng := sim.NewStream(1, "fail")
	r := laghos.Run(spec.Env, 256, rng)
	fmt.Println(r.Err)

	qs := apps.NewQuicksilver()
	gpu, _ := apps.EnvByKey("azure-aks-gpu")
	fmt.Println(qs.Run(gpu.Env, 4, rng).Err)
	_ = cloud.GPU
	// Output:
	// apps: run exceeded wall-time limit
	// apps: run exceeded wall-time limit
}
