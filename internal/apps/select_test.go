package apps

import "testing"

func TestSelectEnvironments(t *testing.T) {
	t.Parallel()
	all, err := StudyEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	// "*" and the empty list both select the full matrix, in order.
	for _, patterns := range [][]string{nil, {"*"}} {
		got, err := SelectEnvironments(patterns)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(all) {
			t.Fatalf("SelectEnvironments(%v) = %d envs, want %d", patterns, len(got), len(all))
		}
	}
	// Overlapping patterns dedupe, and matrix order wins over pattern order.
	got, err := SelectEnvironments([]string{"azure-aks-cpu", "azure-*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("selected %d azure envs, want 4", len(got))
	}
	prev := -1
	for _, e := range got {
		idx := -1
		for i, a := range all {
			if a.Key == e.Key {
				idx = i
				break
			}
		}
		if idx <= prev {
			t.Fatalf("selection out of matrix order: %s", e.Key)
		}
		prev = idx
	}
	// A pattern that matches nothing is an error.
	if _, err := SelectEnvironments([]string{"ibm-*"}); err == nil {
		t.Fatal("unmatched pattern must error")
	}
}

func TestMatchEnv(t *testing.T) {
	t.Parallel()
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"*", "anything", true},
		{"azure-*", "azure-aks-cpu", true},
		{"azure-*", "aws-eks-cpu", false},
		{"aws-eks-cpu", "aws-eks-cpu", true},
		{"aws-eks-cpu", "aws-eks-gpu", false},
	}
	for _, c := range cases {
		if got := MatchEnv(c.pattern, c.key); got != c.want {
			t.Errorf("MatchEnv(%q, %q) = %v, want %v", c.pattern, c.key, got, c.want)
		}
	}
}

func TestSelectModels(t *testing.T) {
	t.Parallel()
	// "*" anywhere, or an empty list, selects all models.
	for _, names := range [][]string{nil, {"*"}, {"lammps", "*"}} {
		got, err := SelectModels(names)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(All()) {
			t.Fatalf("SelectModels(%v) = %d models, want %d", names, len(got), len(All()))
		}
	}
	// Named selection returns §2.8 order regardless of input order, deduped.
	got, err := SelectModels([]string{"stream", "amg2023", "stream"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "amg2023" || got[1].Name() != "stream" {
		t.Fatalf("SelectModels order/dedup wrong: %v", got)
	}
	if _, err := SelectModels([]string{"gromacs"}); err == nil {
		t.Fatal("unknown model must error")
	}
}
