package apps

import (
	"math"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// MTGEMM models the NERSC MT-xGEMM matrix-multiplication kernel (GPU) and
// the PRACE MPI dense-linear-algebra variant (CPU). FOM is GFLOP/s —
// higher is better (paper §2.8).
//
// Calibrated behaviours from Figure 7 / §3.3:
//   - GPU: strong scalability across GPU counts, with Compute Engine,
//     AKS, and GKE exhibiting similar performance.
//   - CPU: the global problem size is hard-coded in the source, so the
//     per-rank share is tiny even at the smallest node count — all CPU
//     environments are communication-bound from the start and GFLOP/s
//     *decreases* with every larger size. The paper omits these results;
//     the model reproduces why.
type MTGEMM struct{}

// NewMTGEMM returns the calibrated model.
func NewMTGEMM() *MTGEMM { return &MTGEMM{} }

func (g *MTGEMM) Name() string         { return "mt-gemm" }
func (g *MTGEMM) Unit() string         { return "GFLOP/s" }
func (g *MTGEMM) HigherIsBetter() bool { return true }
func (g *MTGEMM) Scaling() Scaling     { return Strong }

// Run evaluates one MT-GEMM execution.
func (g *MTGEMM) Run(env Env, nodes int, rng *sim.Stream) Result {
	units := env.Units(nodes)
	if env.Acc == cloud.GPU {
		// GEMM is compute-dense; efficiency decays only gently with scale.
		const perGPU = 5600.0 // fp64 GFLOP/s sustained on a V100 GEMM
		eff := math.Pow(0.97, math.Log2(float64(units)/8))
		fom := rng.Jitter(perGPU*float64(units)*eff, 0.04)
		return Result{FOM: fom, Unit: g.Unit(), Wall: wallFromRate(1e5, fom)}
	}

	// CPU: fixed global problem. Every iteration allgathers each rank's
	// tile, so total bytes on the wire grow with the rank count — adding
	// nodes adds communication to a problem that gained no work.
	const (
		workGF = 4.0e4
		tileMB = 0.262144 // 256 KiB per-rank tile
		rounds = 50.0
	)
	computeSec := workGF / (float64(units) * 18.0)
	bwMBs := env.Net.Bandwidth(262144, env.PathAt(nodes), nil)
	commSec := float64(units) * tileMB / bwMBs * rounds
	fom := rng.Jitter(workGF/(computeSec+commSec), 0.07)
	return Result{FOM: fom, Unit: g.Unit(), Wall: wallFromRate(workGF, fom)}
}
