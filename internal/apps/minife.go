package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// MiniFE models the unstructured implicit finite-element proxy (similar to
// HPCG). FOM is total conjugate-gradient MFLOP/s — higher is better
// (paper §2.8).
//
// Calibrated behaviours from Figure 6 / §3.3:
//   - Results across CPU and GPU show inconsistent and *inverse* scaling:
//     every CG iteration ends in latency-bound dot-product allreduces, so
//     adding nodes raises time faster than it spreads the fixed problem.
//   - AKS exhibited the best GPU performance, and the best size-32 CPU
//     performance — its InfiniBand fabric pays the smallest latency bill.
//   - On-premises results were lost (partial output) and are not
//     reportable.
type MiniFE struct{}

// NewMiniFE returns the calibrated model.
func NewMiniFE() *MiniFE { return &MiniFE{} }

func (m *MiniFE) Name() string         { return "minife" }
func (m *MiniFE) Unit() string         { return "Total CG MFLOP/s" }
func (m *MiniFE) HigherIsBetter() bool { return true }
func (m *MiniFE) Scaling() Scaling     { return Strong }

// Run evaluates one MiniFE execution.
func (m *MiniFE) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.OnPrem() {
		return Result{Unit: m.Unit(), Err: ErrOutputLost}
	}
	units := env.Units(nodes)

	// Fixed problem: W MFLOP of CG work over `iters` iterations, each with
	// two latency-bound allreduces (dot products).
	const (
		workMF = 2.4e6
		iters  = 8000.0
	)
	var perUnitMF float64
	if env.Acc == cloud.GPU {
		perUnitMF = 9.0e3
	} else {
		perUnitMF = 2.1e2
	}
	computeSec := workMF / (perUnitMF * float64(units))
	commSec := 2 * iters * env.Net.AllReduce(units, 8, env.PathAt(nodes), nil) / 1e6
	fom := workMF / (computeSec + commSec)
	// "Inconsistent" scaling: heavy run-to-run noise on top of the model.
	fom = rng.Jitter(fom, 0.22)
	return Result{FOM: fom, Unit: m.Unit(), Wall: wallFromRate(workMF, fom)}
}
