package apps

import (
	"fmt"

	"cloudhpc/internal/cloud"
)

// Run configurations for the remaining parameterized applications
// (paper §2.8). Like AMGConfig, these capture the sizing decisions the
// study made and the constraints that forced them.

// LAMMPSConfig is the ReaxFF benchmark box: x×y×z replications of the
// hexane cell.
type LAMMPSConfig struct {
	X, Y, Z int
}

// StudyLAMMPSConfig returns the study's problem for an accelerator class:
// 64×64×32 on CPU and 64×32×32 on GPU — the GPU box was halved to fit
// the 16 GB V100s on Google Cloud and cluster B.
func StudyLAMMPSConfig(acc cloud.Accelerator) LAMMPSConfig {
	if acc == cloud.GPU {
		return LAMMPSConfig{X: 64, Y: 32, Z: 32}
	}
	return LAMMPSConfig{X: 64, Y: 64, Z: 32}
}

// Validate rejects non-positive boxes.
func (c LAMMPSConfig) Validate() error {
	if c.X <= 0 || c.Y <= 0 || c.Z <= 0 {
		return fmt.Errorf("apps: LAMMPS box %d×%d×%d invalid", c.X, c.Y, c.Z)
	}
	return nil
}

// Cells returns the number of replicated cells.
func (c LAMMPSConfig) Cells() int64 { return int64(c.X) * int64(c.Y) * int64(c.Z) }

// hnsAtomsPerCell is the atom count of the replicated HNS unit cell in
// the ReaxFF benchmark.
const hnsAtomsPerCell = 304

// Atoms returns the total atom count of the replicated box.
func (c LAMMPSConfig) Atoms() int64 { return c.Cells() * hnsAtomsPerCell }

// lammpsBytesPerAtom approximates ReaxFF's per-atom GPU working set:
// charge-equilibration matrices, bond tables, and oversized "safezone"
// neighbor allocations run to ~16 kB/atom.
const lammpsBytesPerAtom = 16384

// MemoryPerGPU estimates the per-GPU working set at a GPU count.
func (c LAMMPSConfig) MemoryPerGPU(gpus int) float64 {
	if gpus <= 0 {
		return 0
	}
	return float64(c.Atoms()) * lammpsBytesPerAtom / float64(gpus) / 1e9
}

// FitsGPU reports whether the per-GPU share fits the environment's GPU at
// the given total GPU count.
func (c LAMMPSConfig) FitsGPU(env Env, gpus int) bool {
	if env.Acc != cloud.GPU || env.Instance.GPUMemGB == 0 {
		return true
	}
	return c.MemoryPerGPU(gpus) <= float64(env.Instance.GPUMemGB)
}

// KripkeConfig is the deterministic transport configuration: energy
// groups, directions, zones per rank, and the data layout nesting.
type KripkeConfig struct {
	Groups     int
	Directions int
	ZonesX     int
	ZonesY     int
	ZonesZ     int
	Layout     string // e.g. "DGZ": directions-groups-zones nesting
}

// StudyKripkeConfig is a CORAL-2-style configuration.
func StudyKripkeConfig() KripkeConfig {
	return KripkeConfig{Groups: 32, Directions: 96, ZonesX: 16, ZonesY: 16, ZonesZ: 16, Layout: "DGZ"}
}

// validLayouts are Kripke's six nesting orders.
var validLayouts = map[string]bool{
	"DGZ": true, "DZG": true, "GDZ": true, "GZD": true, "ZDG": true, "ZGD": true,
}

// Validate checks counts and layout.
func (c KripkeConfig) Validate() error {
	if c.Groups <= 0 || c.Directions <= 0 {
		return fmt.Errorf("apps: Kripke needs positive groups/directions, got %d/%d", c.Groups, c.Directions)
	}
	if c.ZonesX <= 0 || c.ZonesY <= 0 || c.ZonesZ <= 0 {
		return fmt.Errorf("apps: Kripke zones %d×%d×%d invalid", c.ZonesX, c.ZonesY, c.ZonesZ)
	}
	if !validLayouts[c.Layout] {
		return fmt.Errorf("apps: Kripke layout %q not one of DGZ/DZG/GDZ/GZD/ZDG/ZGD", c.Layout)
	}
	return nil
}

// UnknownsPerRank is the per-rank phase-space size: zones × directions ×
// groups — the unit of work grind time is measured against.
func (c KripkeConfig) UnknownsPerRank() int64 {
	return int64(c.ZonesX) * int64(c.ZonesY) * int64(c.ZonesZ) *
		int64(c.Directions) * int64(c.Groups)
}
