package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// LAMMPS models the ReaxFF reactive force-field benchmark, run strong
// scaled on 64×64×32 (CPU) and 64×32×32 (GPU) problems (paper §2.8). FOM
// is millions of atom-steps per second — larger is better.
//
// Calibrated behaviours from Figure 4:
//   - On-premises clusters A and B produced larger FOMs than cloud.
//   - GKE CPU showed an inflection point between 128 and 256 nodes where
//     strong scaling stopped.
//   - (Harness-level: AKS CPU at 256 ran once due to hookup time; the
//     largest EKS GPU size was impossible for lack of GPUs.)
type LAMMPS struct{}

// NewLAMMPS returns the calibrated model.
func NewLAMMPS() *LAMMPS { return &LAMMPS{} }

func (l *LAMMPS) Name() string         { return "lammps" }
func (l *LAMMPS) Unit() string         { return "M-atom steps/s" }
func (l *LAMMPS) HigherIsBetter() bool { return true }
func (l *LAMMPS) Scaling() Scaling     { return Strong }

// Run evaluates one LAMMPS execution.
func (l *LAMMPS) Run(env Env, nodes int, rng *sim.Stream) Result {
	// Fixed global problem: atoms × steps of work, in "M-atom steps".
	var work float64 // M-atom steps in the fixed problem
	var perUnitRate float64
	if env.Acc == cloud.GPU {
		work = 2.6e3 // 64×32×32 ReaxFF box
		perUnitRate = l.gpuRate(env)
	} else {
		work = 5.2e3 // 64×64×32
		perUnitRate = l.cpuRate(env)
	}
	units := env.Units(nodes)

	// Strong scaling: per-step compute shrinks with units while ReaxFF's
	// many per-step collectives (force reduction, charge equilibration)
	// pay the fabric's latency. The inflection lands where collectives
	// catch compute — on GKE that happens between 128 and 256 nodes, and
	// losing COMPACT placement past 150 nodes (PathAt) seals it.
	const (
		steps              = 1000.0
		collectivesPerStep = 40.0
	)
	computeSec := work / (perUnitRate * float64(units))
	commSec := env.Net.AllReduce(units, 2048, env.PathAt(nodes), nil) / 1e6 * steps * collectivesPerStep
	totalSec := computeSec + commSec

	fom := rng.Jitter(work/totalSec, 0.06)
	return Result{FOM: fom, Unit: l.Unit(), Wall: wallFromRate(work, fom)}
}

// cpuRate is M-atom steps per core-second: the on-prem Xeon 8480+ cores
// lead, the cloud EPYCs follow, and clock differences separate the clouds.
func (l *LAMMPS) cpuRate(env Env) float64 {
	base := 0.011 * env.Instance.ClockGHz / 3.5
	if env.OnPrem() {
		base *= 1.4
	}
	return base
}

// gpuRate is M-atom steps per GPU-second. Cluster B's NVLinked V100s with
// POWER9 hosts did well on ReaxFF; Google's 16 GB parts trail slightly.
func (l *LAMMPS) gpuRate(env Env) float64 {
	switch {
	case env.OnPrem():
		return 0.65
	case env.Provider == cloud.Google:
		return 0.42
	default:
		return 0.48
	}
}
