package apps

import (
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
)

// OSU wraps the OSU micro-benchmarks (paper §2.8): point-to-point latency
// (osu_latency), bandwidth (osu_bw), and the allreduce collective
// (osu_allreduce). As a Model its scalar FOM is the 8-byte point-to-point
// latency in microseconds (lower is better); the full per-message-size
// series behind Figure 5 come from the Series methods.
//
// GPU runs used host-to-host mode (only InfiniBand fabrics support GPU
// Direct), so GPU and CPU results were comparable and the paper reports
// CPU at the largest cluster size.
type OSU struct {
	// SampleNodes and MaxPairs implement the paper's pair-sampling
	// strategy: 8 random nodes, at most 28 pair combinations.
	SampleNodes int
	MaxPairs    int
}

// NewOSU returns the study-configured benchmark.
func NewOSU() *OSU { return &OSU{SampleNodes: 8, MaxPairs: 28} }

func (o *OSU) Name() string         { return "osu" }
func (o *OSU) Unit() string         { return "8B latency (µs)" }
func (o *OSU) HigherIsBetter() bool { return false }
func (o *OSU) Scaling() Scaling     { return Strong }

// Run measures mean 8-byte latency over the sampled pairs.
func (o *OSU) Run(env Env, nodes int, rng *sim.Stream) Result {
	pairs := network.SamplePairs(nodes, o.SampleNodes, o.MaxPairs, rng)
	var sum float64
	for range pairs {
		sum += env.Net.Latency(8, o.path(env), rng)
	}
	lat := sum / float64(len(pairs))
	return Result{FOM: lat, Unit: o.Unit(), Wall: wallFromRate(1, 1)}
}

// path applies the study's measurement condition: on EKS and AKS the
// latency and bandwidth tests ran simultaneously on the same nodes, likely
// hurting both.
func (o *OSU) path(env Env) network.Path {
	p := env.Path
	if env.Kubernetes && (env.Provider == "aws" || env.Provider == "azure") {
		p.Interference = true
	}
	return p
}

// LatencySeries returns the osu_latency sweep for Figure 5.
func (o *OSU) LatencySeries(env Env, rng *sim.Stream) []network.OSUSample {
	return network.RunLatency(env.Net, o.path(env), o.MaxPairs, rng)
}

// BandwidthSeries returns the osu_bw sweep for Figure 5.
func (o *OSU) BandwidthSeries(env Env, rng *sim.Stream) []network.OSUSample {
	return network.RunBandwidth(env.Net, o.path(env), o.MaxPairs, rng)
}

// AllReduceSeries returns the osu_allreduce sweep across all ranks of a
// cluster of the given node count.
func (o *OSU) AllReduceSeries(env Env, nodes int, rng *sim.Stream) []network.OSUSample {
	return network.RunAllReduce(env.Net, env.Units(nodes), env.Path, 5, rng)
}
