package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// AMG2023 models the algebraic multigrid solver proxy (hypre), run weak
// scaled on problem 2 with a 256×256×128 per-rank grid (paper §2.8).
//
//	FOM = nnz_AP / (SetupPhaseTime + 3·SolvePhaseTime)
//
// Calibrated behaviours from Figure 2:
//   - CPU: the on-premises cluster A produced the largest FOMs.
//   - GPU: cloud environments excelled; cluster B produced some of the
//     lowest FOMs across sizes.
//   - Process topology: -P 8 4 2 (used in Kubernetes environments) gives
//     about 10% higher FOM than -P 4 4 4 (used in VM environments).
type AMG2023 struct {
	// TopologyGain is the multiplier of -P 8 4 2 over -P 4 4 4.
	TopologyGain float64
}

// NewAMG2023 returns the calibrated model.
func NewAMG2023() *AMG2023 { return &AMG2023{TopologyGain: 1.10} }

func (a *AMG2023) Name() string         { return "amg2023" }
func (a *AMG2023) Unit() string         { return "nnz_AP/s" }
func (a *AMG2023) HigherIsBetter() bool { return true }
func (a *AMG2023) Scaling() Scaling     { return Weak }

// Topology names an AMG process decomposition.
type Topology string

const (
	TopologyVM  Topology = "-P 4 4 4" // used in VM environments
	TopologyK8s Topology = "-P 8 4 2" // used in Kubernetes environments
)

// Run uses the environment's default topology (Kubernetes → -P 8 4 2).
func (a *AMG2023) Run(env Env, nodes int, rng *sim.Stream) Result {
	topo := TopologyVM
	if env.Kubernetes {
		topo = TopologyK8s
	}
	return a.RunWithTopology(env, nodes, topo, rng)
}

// RunWithTopology runs with an explicit process topology — the knob behind
// the paper's size-64 GKE comparison and our ablation bench.
func (a *AMG2023) RunWithTopology(env Env, nodes int, topo Topology, rng *sim.Stream) Result {
	units := env.Units(nodes)

	// Per-unit non-zeros of the assembled AP operator (weak scaled: total
	// grows linearly with units).
	var nnzPerUnit, computeSec float64
	if env.Acc == cloud.GPU {
		nnzPerUnit = 8.4e7
		computeSec = 9.0 / a.gpuSpeed(env) // setup + 3·solve on one V100
	} else {
		nnzPerUnit = 1.2e7
		computeSec = 110.0 / a.cpuSpeed(env) // CPU solves run minutes, not seconds
	}

	// Multigrid V-cycles exchange many small messages; the level hierarchy
	// deepens with scale, so collective cost grows with rank count.
	const cyclesPerSolve = 40
	commUs := env.Net.AllReduce(units, 4096, env.PathAt(nodes), nil) * cyclesPerSolve
	totalSec := rng.Jitter(computeSec+commUs/1e6, 0.05)
	if topo == TopologyVM {
		// -P 4 4 4 maps the process grid less favourably: ~10% more time.
		totalSec *= a.TopologyGain
	}

	fom := nnzPerUnit * float64(units) / totalSec
	return Result{FOM: fom, Unit: a.Unit(), Wall: wallFromRate(1, 1/totalSec)}
}

// cpuSpeed is relative per-core CPU capability. Cluster A's Xeon 8480+
// cores at 3.8 GHz outrun the cloud EPYCs, which is why A tops Figure 2.
func (a *AMG2023) cpuSpeed(env Env) float64 {
	base := env.Instance.ClockGHz / 3.5
	if env.OnPrem() {
		base *= 1.35 // DDR5 + Omni-Path locality on the 2023 Dell system
	}
	return base
}

// gpuSpeed is relative per-GPU capability. The 16 GB V100 hosts (Google,
// cluster B) run slightly behind the 32 GB variants; B's POWER9 host and
// doubled node count for the same GPU total cost it the most.
func (a *AMG2023) gpuSpeed(env Env) float64 {
	switch {
	case env.OnPrem():
		return 0.72
	case env.Provider == cloud.Google:
		return 0.90
	default:
		return 1.0
	}
}
