package apps

import (
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Quicksilver models the simplified Monte Carlo particle-transport proxy
// (for the production code Mercury), run weak scaled. FOM is the number of
// segments over cycle tracking time — larger is better (paper §2.8).
//
// Calibrated behaviours from Figure 8 / §3.3:
//   - CPU: the AWS setups had the highest FOM, followed by Azure.
//   - GPU: runs never finished within the budgeted time; half of the
//     processes were pinned to GPU 0 (an erroneous build or runtime
//     misconfiguration), collapsing utilization.
type Quicksilver struct {
	// GPUPinningBug keeps the observed misconfiguration on (ablate off to
	// see what the runs would have produced).
	GPUPinningBug bool
}

// NewQuicksilver returns the calibrated model.
func NewQuicksilver() *Quicksilver { return &Quicksilver{GPUPinningBug: true} }

func (q *Quicksilver) Name() string         { return "quicksilver" }
func (q *Quicksilver) Unit() string         { return "segments/cycle-tracking-s" }
func (q *Quicksilver) HigherIsBetter() bool { return true }
func (q *Quicksilver) Scaling() Scaling     { return Weak }

// Run evaluates one Quicksilver execution.
func (q *Quicksilver) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.Acc == cloud.GPU && q.GPUPinningBug {
		// Half the ranks contend on GPU 0; the run blows the wall limit.
		return Result{Unit: q.Unit(), Wall: time.Hour, Err: ErrTimeout}
	}
	units := env.Units(nodes)

	// Weak scaled: segments grow with units; tracking time grows with the
	// collective facet-exchange cost. Branchy Monte Carlo tracking rewards
	// high clocks and low-latency fabrics.
	perUnit := 5.5e5 * q.platform(env)
	commSec := env.Net.AllReduce(units, 1024, env.PathAt(nodes), nil) / 1e6 * 100
	const cycleSec = 12.0
	fom := perUnit * float64(units) / (cycleSec + commSec)
	fom = rng.Jitter(fom, 0.07)
	return Result{FOM: fom, Unit: q.Unit(), Wall: wallFromRate(float64(units)*perUnit, fom)}
}

// platform encodes the CPU ordering of Figure 8: AWS first, Azure second.
func (q *Quicksilver) platform(env Env) float64 {
	switch env.Provider {
	case cloud.AWS:
		return 1.0
	case cloud.Azure:
		return 0.82
	case cloud.Google:
		return 0.74
	default:
		return 0.68 // on-prem A: older memory subsystem per-core on this kernel
	}
}
