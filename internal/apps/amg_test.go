package apps

import (
	"testing"

	"cloudhpc/internal/sim"
)

func rngFor(name string) *sim.Stream { return sim.NewStream(42, name) }

func TestAMGWeakScalingGrows(t *testing.T) {
	m := NewAMG2023()
	e := env(t, "aws-eks-cpu")
	rng := rngFor("amg")
	prev := 0.0
	for _, nodes := range []int{32, 64, 128, 256} {
		r := m.Run(e, nodes, rng)
		if r.Err != nil {
			t.Fatalf("AMG failed at %d nodes: %v", nodes, r.Err)
		}
		if r.FOM <= prev {
			t.Fatalf("weak-scaled FOM should grow with nodes: %f at %d (prev %f)", r.FOM, nodes, prev)
		}
		prev = r.FOM
	}
}

func TestAMGCPUOnPremHighest(t *testing.T) {
	// Figure 2: cluster A produced the largest CPU FOMs.
	m := NewAMG2023()
	rng := rngFor("amg-cpu")
	onprem := m.Run(env(t, "onprem-a-cpu"), 256, rng).FOM
	for _, key := range []string{"aws-parallelcluster-cpu", "aws-eks-cpu", "google-gke-cpu", "azure-aks-cpu", "azure-cyclecloud-cpu", "google-computeengine-cpu"} {
		if cloudFOM := m.Run(env(t, key), 256, rng).FOM; cloudFOM >= onprem {
			t.Fatalf("on-prem A (%e) must beat %s (%e) on CPU", onprem, key, cloudFOM)
		}
	}
}

func TestAMGGPUCloudExcels(t *testing.T) {
	// Figure 2: cloud environments excelled for GPU; B produced some of
	// the lowest FOMs. Compare at equal GPU counts (B runs 2× the nodes).
	m := NewAMG2023()
	rng := rngFor("amg-gpu")
	b := m.Run(env(t, "onprem-b-gpu"), 8, rng).FOM // 32 GPUs
	for _, key := range []string{"aws-eks-gpu", "azure-aks-gpu", "google-gke-gpu", "azure-cyclecloud-gpu"} {
		if cloudFOM := m.Run(env(t, key), 4, rng).FOM; cloudFOM <= b {
			t.Fatalf("cloud %s (%e) must beat on-prem B (%e) on GPU", key, cloudFOM, b)
		}
	}
}

func TestAMGTopologyGainAboutTenPercent(t *testing.T) {
	// §3.3: -P 8 4 2 gives ~10% higher FOM than -P 4 4 4 (size-64 GKE GPU).
	m := NewAMG2023()
	e := env(t, "google-gke-gpu")
	var k8s, vm float64
	const iters = 50
	rngA, rngB := rngFor("topo-a"), rngFor("topo-b")
	for i := 0; i < iters; i++ {
		k8s += m.RunWithTopology(e, 8, TopologyK8s, rngA).FOM
		vm += m.RunWithTopology(e, 8, TopologyVM, rngB).FOM
	}
	ratio := k8s / vm
	if ratio < 1.05 || ratio > 1.15 {
		t.Fatalf("topology gain = %f, want ~1.10", ratio)
	}
}

func TestAMGDefaultTopologyByEnvironment(t *testing.T) {
	m := NewAMG2023()
	rng := rngFor("amg-default")
	// Kubernetes environments default to the faster topology; with the
	// same instance/fabric, GKE should edge out Compute Engine (the
	// "discrepancy" the paper noted — CE also lacks COMPACT placement).
	gke := m.Run(env(t, "google-gke-gpu"), 8, rng).FOM
	ce := m.Run(env(t, "google-computeengine-gpu"), 8, rng).FOM
	if gke <= ce {
		t.Fatalf("GKE (%e) should beat Compute Engine (%e)", gke, ce)
	}
}

func TestAMGMetadata(t *testing.T) {
	m := NewAMG2023()
	if m.Name() != "amg2023" || m.Scaling() != Weak || !m.HigherIsBetter() {
		t.Fatalf("metadata wrong: %s %s %v", m.Name(), m.Scaling(), m.HigherIsBetter())
	}
}
