package apps

import (
	"testing"
)

func TestStudyAMGConfigShape(t *testing.T) {
	c := StudyAMGConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Problem != 2 {
		t.Fatalf("study ran problem 2, got %d", c.Problem)
	}
	if got := c.PointsPerRank(); got != 256*256*128 {
		t.Fatalf("points/rank = %d", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	for _, bad := range []AMGConfig{
		{Problem: 3, Nx: 1, Ny: 1, Nz: 1},
		{Problem: 2, Nx: 0, Ny: 256, Nz: 128},
		{Problem: 2, Nx: 256, Ny: -1, Nz: 128},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v should be invalid", bad)
		}
	}
}

func TestStudyGridFits16GBV100(t *testing.T) {
	// §2.8: "We chose a per-GPU problem size that would fit into 16GB GPU
	// memory to be compatible with the NVIDIA V100 variant offered by
	// Google Cloud and cluster B."
	c := StudyAMGConfig()
	google := env(t, "google-gke-gpu") // 16 GB V100
	if !c.FitsGPU(google) {
		t.Fatalf("study grid (%.1f GB) must fit a 16 GB V100", c.MemoryPerRankGB())
	}
	// Headroom is finite: doubling one dimension overflows the 16 GB part
	// but still fits the 32 GB AWS/Azure parts.
	double := AMGConfig{Problem: 2, Nx: 512, Ny: 256, Nz: 128}
	if double.FitsGPU(google) {
		t.Fatalf("doubled grid (%.1f GB) should not fit 16 GB", double.MemoryPerRankGB())
	}
	aws := env(t, "aws-eks-gpu") // 32 GB V100
	if !double.FitsGPU(aws) {
		t.Fatalf("doubled grid should fit a 32 GB V100")
	}
	// CPU environments have no GPU-memory constraint.
	if !double.FitsGPU(env(t, "aws-eks-cpu")) {
		t.Fatalf("CPU environments are unconstrained")
	}
}

func TestGlobalIndexabilityAtStudyScale(t *testing.T) {
	// §2.8: "Our choice also ensured the global problem size was small
	// enough to be indexed by an integer" — at the study's maximum of 256
	// GPUs the global grid sits exactly at the 2^31 boundary.
	c := StudyAMGConfig()
	if c.RequiresBigInt(255) {
		t.Fatalf("255 ranks (%d points) should still index with int32", c.GlobalPoints(255))
	}
	if !c.RequiresBigInt(256) {
		t.Fatalf("256 ranks (%d points) exceeds int32 by exactly one", c.GlobalPoints(256))
	}
	if got := c.MaxIndexableRanks(); got != 255 {
		t.Fatalf("MaxIndexableRanks = %d, want 255", got)
	}
}

func TestBigIntTiesToContainerFlags(t *testing.T) {
	// The CPU runs go far beyond 256 ranks (28,672 cores at the largest
	// size), which is why CPU builds needed both HYPRE_Int and
	// HYPRE_BigInt widened (the containers package encodes the matching
	// build defect).
	c := StudyAMGConfig()
	a := env(t, "onprem-a-cpu")
	if !c.RequiresBigInt(a.Units(256)) {
		t.Fatalf("the 28,672-core runs must require 64-bit indexing")
	}
}
