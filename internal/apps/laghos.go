package apps

import (
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Laghos models the Lagrangian high-order hydrodynamics proxy, run strong
// scaled on the cube_311_hex mesh with partial assembly and a 400-step cap
// (paper §2.8). FOM is the major-kernels total rate in megadofs ×
// timesteps / second.
//
// Calibrated behaviours from §3.3 / Figure 3:
//   - Completed only at 32 and 64 nodes (CPU) in all cloud environments
//     except AWS ParallelCluster, where it did not complete at all.
//   - Beyond 64 cloud nodes, increasing slowdown kept runs from finishing
//     within 15–20 minutes.
//   - On-premises FOM is an order of magnitude larger, with a speedup of
//     nearly 1.6 from 32→64 nodes and lower variability; 128- and 256-node
//     runs segfaulted on cluster A.
//   - GPU containers could not be built (two dependencies require
//     different CUDA versions).
type Laghos struct {
	// WallLimit is the study's practical completion limit for cloud runs.
	WallLimit time.Duration
}

// NewLaghos returns the calibrated model.
func NewLaghos() *Laghos { return &Laghos{WallLimit: 18 * time.Minute} }

func (l *Laghos) Name() string         { return "laghos" }
func (l *Laghos) Unit() string         { return "megadofs·steps/s" }
func (l *Laghos) HigherIsBetter() bool { return true }
func (l *Laghos) Scaling() Scaling     { return Strong }

// Run evaluates one Laghos execution.
func (l *Laghos) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.Acc == cloud.GPU {
		return Result{Unit: l.Unit(), Err: ErrNotSupported} // CUDA version conflict
	}
	if env.Provider == cloud.AWS && !env.Kubernetes {
		// ParallelCluster runs never completed.
		return Result{Unit: l.Unit(), Wall: l.WallLimit, Err: ErrTimeout}
	}
	if env.OnPrem() {
		if nodes >= 128 {
			return Result{Unit: l.Unit(), Err: ErrSegfault}
		}
		// Strong scales well on the low-latency fabric: ~1.6× per doubling
		// from a 32-node baseline of ~260 megadofs·steps/s.
		fom := 260.0
		for n := 32; n < nodes; n *= 2 {
			fom *= 1.58
		}
		fom = rng.Jitter(fom, 0.04) // low variability on-premises
		return Result{FOM: fom, Unit: l.Unit(), Wall: wallFromRate(4e3, fom)}
	}

	// Cloud: high-order FEM exchanges many small messages per step; the
	// latency bill grows with rank count until runs stop finishing.
	units := env.Units(nodes)
	const msgsPerStep = 600
	stepComputeSec := 95.0 / (float64(units) / 3072.0) / 400 // per step, strong scaled
	stepCommSec := env.Net.Latency(2048, env.PathAt(nodes), nil) * msgsPerStep / 1e6
	wall := time.Duration(400 * (stepComputeSec + stepCommSec) * float64(time.Second))
	if nodes > 64 || wall > l.WallLimit {
		return Result{Unit: l.Unit(), Wall: l.WallLimit, Err: ErrTimeout}
	}
	fom := 26.0 * (float64(units) / 3072.0) / (1 + stepCommSec/stepComputeSec)
	fom = rng.Jitter(fom, 0.18) // cloud runs were highly variable
	return Result{FOM: fom, Unit: l.Unit(), Wall: wall}
}
