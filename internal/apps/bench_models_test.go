package apps

import (
	"testing"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// --- Mixbench / ECC ---

func TestMixbenchECCAudit(t *testing.T) {
	m := NewMixbench()
	rng := sim.NewStream(1, "ecc")
	azure := m.ECCAudit(env(t, "azure-aks-gpu"), 256, rng)
	if azure >= 1.0 || azure < 0.5 {
		t.Fatalf("Azure ECC-on fraction = %f, want mixed (paper: 12.5–25%% off)", azure)
	}
	for _, key := range []string{"aws-eks-gpu", "google-gke-gpu"} {
		if on := m.ECCAudit(env(t, key), 256, rng); on != 1.0 {
			t.Fatalf("%s ECC-on fraction = %f, want 1.0", key, on)
		}
	}
	if on := m.ECCAudit(env(t, "aws-eks-cpu"), 256, rng); on != 1.0 {
		t.Fatalf("CPU fleets trivially report ECC on")
	}
}

func TestMixbenchECCOffFaster(t *testing.T) {
	m := NewMixbench()
	e := env(t, "azure-aks-gpu")
	var on, off []float64
	for i := 0; i < 400; i++ {
		r := m.Run(e, 1, sim.NewStream(uint64(i), "mix"))
		if r.FOM > 6900 {
			off = append(off, r.FOM)
		} else {
			on = append(on, r.FOM)
		}
	}
	if len(off) == 0 || len(on) == 0 {
		t.Fatalf("Azure fleet should mix ECC states: %d off, %d on", len(off), len(on))
	}
	frac := float64(len(off)) / 400
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("ECC-off fraction = %f, want ~0.2", frac)
	}
}

// --- OSU wrapper ---

func TestOSULatencyOrdering(t *testing.T) {
	m := NewOSU()
	rng := sim.NewStream(7, "osu")
	ib := m.Run(env(t, "azure-cyclecloud-cpu"), 256, rng).FOM
	op := m.Run(env(t, "onprem-a-cpu"), 256, rng).FOM
	efa := m.Run(env(t, "aws-parallelcluster-cpu"), 256, rng).FOM
	goog := m.Run(env(t, "google-computeengine-cpu"), 256, rng).FOM
	if !(ib < efa && op < efa && efa < goog) {
		t.Fatalf("latency ordering wrong: ib=%f op=%f efa=%f google=%f", ib, op, efa, goog)
	}
}

func TestOSUInterferenceOnEKSAndAKS(t *testing.T) {
	// EKS/AKS ran latency and bandwidth simultaneously on the same nodes.
	m := NewOSU()
	eks := env(t, "aws-eks-cpu")
	pc := env(t, "aws-parallelcluster-cpu")
	if !m.path(eks).Interference {
		t.Fatalf("EKS measurements should carry interference")
	}
	if m.path(pc).Interference {
		t.Fatalf("ParallelCluster measurements are clean")
	}
	var eksSum, pcSum float64
	for i := 0; i < 50; i++ {
		eksSum += m.Run(eks, 256, sim.NewStream(uint64(i), "a")).FOM
		pcSum += m.Run(pc, 256, sim.NewStream(uint64(i), "b")).FOM
	}
	if eksSum <= pcSum {
		t.Fatalf("interference should raise EKS latency above ParallelCluster")
	}
}

func TestOSUSeriesShapes(t *testing.T) {
	m := NewOSU()
	e := env(t, "aws-eks-cpu")
	rng := sim.NewStream(9, "series")
	lat := m.LatencySeries(e, rng)
	bw := m.BandwidthSeries(e, rng)
	ar := m.AllReduceSeries(e, 256, rng)
	if len(lat) == 0 || len(bw) == 0 || len(ar) == 0 {
		t.Fatalf("series empty")
	}
	var spike, base float64
	for _, s := range ar {
		switch s.Bytes {
		case 32768:
			spike = s.Value
		case 4096:
			base = s.Value
		}
	}
	if spike < 2*base {
		t.Fatalf("AWS allreduce series must show the 32KiB spike: %f vs %f", spike, base)
	}
}

// --- Stream ---

func TestStreamCPUAggregates(t *testing.T) {
	m := NewStream()
	mean := func(key string) float64 {
		var s float64
		for i := 0; i < 60; i++ {
			s += m.Run(env(t, key), 64, sim.NewStream(uint64(i), "st")).FOM
		}
		return s / 60
	}
	gke, ce := mean("google-gke-cpu"), mean("google-computeengine-cpu")
	eks, aks := mean("aws-eks-cpu"), mean("azure-aks-cpu")
	// §3.3 means at size 64: GKE 6800, CE 6239, EKS 3013, AKS 2579.
	within := func(got, want float64) bool { return got > want*0.8 && got < want*1.2 }
	if !within(gke, 6800) || !within(ce, 6239) || !within(eks, 3013) || !within(aks, 2579) {
		t.Fatalf("CPU Triad aggregates off: gke=%f ce=%f eks=%f aks=%f", gke, ce, eks, aks)
	}
	if !(gke > ce && ce > eks && eks > aks) {
		t.Fatalf("CPU Triad ordering wrong: %f %f %f %f", gke, ce, eks, aks)
	}
}

func TestStreamGPUTriadTight(t *testing.T) {
	m := NewStream()
	google := m.Run(env(t, "google-gke-gpu"), 32, sim.NewStream(1, "g")).FOM
	azure := m.Run(env(t, "azure-aks-gpu"), 32, sim.NewStream(1, "a")).FOM
	onprem := m.Run(env(t, "onprem-b-gpu"), 64, sim.NewStream(1, "b")).FOM
	if google < 780 || google > 786 {
		t.Fatalf("GKE GPU Triad = %f, want ~783", google)
	}
	if azure < 735 || azure > 762 {
		t.Fatalf("AKS GPU Triad = %f, want ~748", azure)
	}
	if onprem < 779 || onprem > 786 {
		t.Fatalf("B GPU Triad = %f, want ~782", onprem)
	}
}

// --- Single node ---

func TestSingleNodeCollectAndAudit(t *testing.T) {
	it := cloud.InstanceType{Name: "HB96rs v3", Provider: cloud.Azure, Processor: "AMD EPYC 7003", Cores: 96, ClockGHz: 3.5}
	nodes := []*cloud.Node{
		{ID: "n1", Type: it, VisibleCores: 96, VisibleGPUs: 0, Healthy: true},
		{ID: "n2", Type: it, VisibleCores: 2, VisibleGPUs: 0, Healthy: true}, // supermarket fish
		{ID: "n3", Type: it, VisibleCores: 96, VisibleGPUs: 0, Healthy: true},
	}
	rng := sim.NewStream(1, "inv")
	var reports []Report
	for _, n := range nodes {
		reports = append(reports, Collect(n, rng))
	}
	findings := Audit(nodes, reports)
	if len(findings) != 1 || findings[0].NodeID != "n2" {
		t.Fatalf("audit should flag exactly the fish node: %+v", findings)
	}
	if reports[1].Processors != 2 {
		t.Fatalf("inventory should report the visible processor count")
	}
}

func TestSingleNodeFOMScalesWithCores(t *testing.T) {
	m := NewSingleNode()
	rng := sim.NewStream(2, "sn")
	big := m.Run(env(t, "onprem-a-cpu"), 1, rng).FOM     // 112 cores
	small := m.Run(env(t, "google-gke-cpu"), 1, rng).FOM // 56 cores
	if big <= small {
		t.Fatalf("112-core node should outscore 56-core node: %f vs %f", big, small)
	}
}
