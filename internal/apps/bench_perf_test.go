package apps

// Library performance benchmarks: the per-run cost of every application
// model. The study harness evaluates thousands of model runs per full
// study; these benches keep that cheap.

import (
	"testing"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

func benchModel(b *testing.B, m Model, envKey string, nodes int) {
	b.Helper()
	spec, err := EnvByKey(envKey)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewStream(1, "bench/"+m.Name())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(spec.Env, nodes, rng)
	}
}

func BenchmarkModelAMG2023(b *testing.B)    { benchModel(b, NewAMG2023(), "aws-eks-cpu", 256) }
func BenchmarkModelLaghos(b *testing.B)     { benchModel(b, NewLaghos(), "azure-aks-cpu", 64) }
func BenchmarkModelLAMMPS(b *testing.B)     { benchModel(b, NewLAMMPS(), "google-gke-cpu", 256) }
func BenchmarkModelKripke(b *testing.B)     { benchModel(b, NewKripke(), "aws-parallelcluster-cpu", 256) }
func BenchmarkModelMiniFE(b *testing.B)     { benchModel(b, NewMiniFE(), "azure-aks-gpu", 16) }
func BenchmarkModelMTGEMM(b *testing.B)     { benchModel(b, NewMTGEMM(), "google-gke-gpu", 32) }
func BenchmarkModelMixbench(b *testing.B)   { benchModel(b, NewMixbench(), "azure-aks-gpu", 1) }
func BenchmarkModelOSU(b *testing.B)        { benchModel(b, NewOSU(), "azure-cyclecloud-cpu", 256) }
func BenchmarkModelSingleNode(b *testing.B) { benchModel(b, NewSingleNode(), "onprem-a-cpu", 1) }
func BenchmarkModelStream(b *testing.B)     { benchModel(b, NewStream(), "google-gke-cpu", 64) }
func BenchmarkModelQuicksilver(b *testing.B) {
	benchModel(b, NewQuicksilver(), "aws-parallelcluster-cpu", 256)
}

func BenchmarkStudyEnvironments(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := StudyEnvironments(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECCAuditFleet(b *testing.B) {
	spec, err := EnvByKey("azure-aks-gpu")
	if err != nil {
		b.Fatal(err)
	}
	m := NewMixbench()
	rng := sim.NewStream(1, "bench/ecc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ECCAudit(spec.Env, 256, rng)
	}
}

func BenchmarkCollectInventory(b *testing.B) {
	it := cloud.InstanceType{Name: "HB96rs v3", Provider: cloud.Azure, Cores: 96, ClockGHz: 3.5}
	n := &cloud.Node{ID: "n", Type: it, VisibleCores: 96, Healthy: true}
	rng := sim.NewStream(1, "bench/inv")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collect(n, rng)
	}
}
