package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Stream models the STREAM Triad memory-bandwidth kernel (paper §2.8),
// using the CPU variant single-node and the GPU (cuda-stream) variant
// across nodes. FOM is GB/s — higher is better.
//
// Calibrated to §3.3's reported numbers:
//   - CPU, size-64 cluster aggregate: GKE 6800.9 ± 2402, Compute Engine
//     6239 ± 2326, EKS 3013 ± 880, AKS 2579 ± 908 — comparable means with
//     *high variance* on the Google environments.
//   - GPU Triad per device, size-32 cluster: GKE 782.9 ± 0.7, Compute
//     Engine 783.3 ± 0.7, on-prem B 782.5 ± 1.0, AKS 748.5 ± 4.6, Azure
//     CycleCloud 748.5 ± 4.6 — tight, with the Azure pair ~4.5% lower.
type Stream struct{}

// NewStream returns the calibrated model.
func NewStream() *Stream { return &Stream{} }

func (s *Stream) Name() string         { return "stream" }
func (s *Stream) Unit() string         { return "Triad GB/s" }
func (s *Stream) HigherIsBetter() bool { return true }
func (s *Stream) Scaling() Scaling     { return Single }

// Run returns the cluster-aggregate Triad bandwidth for CPU environments
// (the paper's reporting unit) and the per-GPU Triad for GPU environments.
func (s *Stream) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.Acc == cloud.GPU {
		mean, sd := s.gpuTriad(env)
		return Result{FOM: rng.Normal(mean, sd), Unit: s.Unit(), Wall: wallFromRate(1, 1)}
	}
	perNode, rel := s.cpuTriadPerNode(env)
	agg := rng.Jitter(perNode*float64(nodes), rel)
	return Result{FOM: agg, Unit: s.Unit(), Wall: wallFromRate(1, 1)}
}

// cpuTriadPerNode returns (mean GB/s per node, relative stddev).
// Division of the paper's size-64 aggregates by 64 gives the means.
func (s *Stream) cpuTriadPerNode(env Env) (float64, float64) {
	switch {
	case env.Provider == cloud.Google && env.Kubernetes:
		return 106.3, 0.353 // GKE
	case env.Provider == cloud.Google:
		return 97.5, 0.373 // Compute Engine
	case env.Provider == cloud.AWS && env.Kubernetes:
		return 47.1, 0.292 // EKS
	case env.Provider == cloud.AWS:
		return 48.0, 0.29 // ParallelCluster (not separately reported)
	case env.Provider == cloud.Azure && env.Kubernetes:
		return 40.3, 0.352 // AKS
	case env.Provider == cloud.Azure:
		return 41.0, 0.35 // CycleCloud (not separately reported)
	default:
		return 115.0, 0.05 // on-prem A: DDR5, low variance
	}
}

// gpuTriad returns (mean GB/s per GPU, absolute stddev).
func (s *Stream) gpuTriad(env Env) (float64, float64) {
	switch env.Provider {
	case cloud.Azure:
		return 748.54, 4.63
	case cloud.Google:
		if env.Kubernetes {
			return 782.91, 0.72
		}
		return 783.30, 0.73
	case cloud.OnPrem:
		return 782.52, 0.96
	default:
		return 760.0, 2.0 // AWS (not reported in the paper)
	}
}
