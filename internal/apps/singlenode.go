package apps

import (
	"fmt"
	"strconv"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// SingleNode models the team-developed single-node inventory benchmark
// (paper §2.8): on every node it captures dmidecode output, /proc/cpuinfo,
// the hwloc topology, and a sysbench score. Its scalar FOM is the sysbench
// CPU events/s of one node.
//
// Its qualitative product is the fleet audit that found the "supermarket
// fish problem": one AKS instance reported only two processors across all
// collection mechanisms — you bought an instance type, but what species
// you received is another question.
type SingleNode struct{}

// NewSingleNode returns the benchmark.
func NewSingleNode() *SingleNode { return &SingleNode{} }

func (s *SingleNode) Name() string         { return "single-node" }
func (s *SingleNode) Unit() string         { return "sysbench events/s" }
func (s *SingleNode) HigherIsBetter() bool { return true }
func (s *SingleNode) Scaling() Scaling     { return Single }

// Run scores one (healthy) node of the environment.
func (s *SingleNode) Run(env Env, nodes int, rng *sim.Stream) Result {
	fom := rng.Jitter(float64(env.Instance.Cores)*env.Instance.ClockGHz*95, 0.02)
	return Result{FOM: fom, Unit: s.Unit(), Wall: wallFromRate(1e4, fom)}
}

// Report is the per-node inventory the benchmark collects.
type Report struct {
	NodeID     string
	Processors int    // from /proc/cpuinfo
	DMI        string // dmidecode product summary
	Topology   string // hwloc summary
	Sysbench   float64
}

// Collect produces the inventory of one provisioned node. The audit runs
// it against every node of an environment's largest fleet, so the summary
// strings are append-built ("%s (%s)" and "Machine: %d cores, %d GPUs").
func Collect(n *cloud.Node, rng *sim.Stream) Report {
	var a [64]byte
	b := append(a[:0], "Machine: "...)
	b = strconv.AppendInt(b, int64(n.VisibleCores), 10)
	b = append(b, " cores, "...)
	b = strconv.AppendInt(b, int64(n.VisibleGPUs), 10)
	b = append(b, " GPUs"...)
	return Report{
		NodeID:     n.ID,
		Processors: n.VisibleCores,
		DMI:        n.Type.Name + " (" + n.Type.Processor + ")",
		Topology:   string(b),
		Sysbench:   rng.Jitter(float64(n.VisibleCores)*n.Type.ClockGHz*95, 0.02),
	}
}

// Finding is one anomaly surfaced by the fleet audit.
type Finding struct {
	NodeID string
	Detail string
}

// Audit compares every node's inventory against the SKU's expectation and
// returns the anomalies — the supermarket-fish detector.
func Audit(nodes []*cloud.Node, reports []Report) []Finding {
	var out []Finding
	for i, n := range nodes {
		if i >= len(reports) {
			break
		}
		r := reports[i]
		if r.Processors != n.Type.Cores {
			out = append(out, Finding{
				NodeID: n.ID,
				Detail: fmt.Sprintf("reports %d processors, SKU %s has %d", r.Processors, n.Type.Name, n.Type.Cores),
			})
		}
	}
	return out
}
