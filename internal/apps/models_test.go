package apps

import (
	"errors"
	"math"
	"testing"

	"cloudhpc/internal/sim"
)

// --- LAMMPS ---

func TestLAMMPSOnPremBeatsCloud(t *testing.T) {
	m := NewLAMMPS()
	rng := rngFor("lammps")
	opCPU := m.Run(env(t, "onprem-a-cpu"), 64, rng).FOM
	for _, key := range []string{"aws-eks-cpu", "google-gke-cpu", "azure-aks-cpu"} {
		if f := m.Run(env(t, key), 64, rng).FOM; f >= opCPU {
			t.Fatalf("on-prem A (%f) must beat %s (%f)", opCPU, key, f)
		}
	}
	opGPU := m.Run(env(t, "onprem-b-gpu"), 16, rng).FOM // 64 GPUs
	for _, key := range []string{"aws-eks-gpu", "google-gke-gpu", "azure-aks-gpu"} {
		if f := m.Run(env(t, key), 8, rng).FOM; f >= opGPU {
			t.Fatalf("on-prem B (%f) must beat %s (%f) at 64 GPUs", opGPU, key, f)
		}
	}
}

func TestLAMMPSGKEInflectionBetween128And256(t *testing.T) {
	// Figure 4: GKE CPU stops strong scaling between 128 and 256 nodes.
	m := NewLAMMPS()
	e := env(t, "google-gke-cpu")
	rng := rngFor("lmp-gke")
	mean := func(nodes int) float64 {
		var s float64
		for i := 0; i < 30; i++ {
			s += m.Run(e, nodes, rng).FOM
		}
		return s / 30
	}
	f64, f128, f256 := mean(64), mean(128), mean(256)
	if f128 <= f64 {
		t.Fatalf("GKE should still scale 64→128: %f vs %f", f128, f64)
	}
	if f256 > f128*1.05 {
		t.Fatalf("GKE strong scaling should stop by 256 nodes: %f vs %f", f256, f128)
	}
	// InfiniBand environments keep scaling to 256.
	az := env(t, "azure-cyclecloud-cpu")
	var a128, a256 float64
	rngAz := rngFor("lmp-az")
	for i := 0; i < 30; i++ {
		a128 += m.Run(az, 128, rngAz).FOM
		a256 += m.Run(az, 256, rngAz).FOM
	}
	if a256 <= a128 {
		t.Fatalf("CycleCloud should keep scaling: %f vs %f", a256, a128)
	}
}

// --- Kripke ---

func TestKripkeOrderingAtLargeSizes(t *testing.T) {
	// Figure 1: ParallelCluster lowest grind, then EKS, then CycleCloud.
	m := NewKripke()
	streams := map[string]*sim.Stream{}
	mean := func(key string, nodes int) float64 {
		e := env(t, key)
		rng, ok := streams[key]
		if !ok {
			rng = rngFor("kripke-" + key)
			streams[key] = rng
		}
		var s float64
		for i := 0; i < 30; i++ {
			s += m.Run(e, nodes, rng).FOM
		}
		return s / 30
	}
	for _, nodes := range []int{64, 128, 256} {
		pc := mean("aws-parallelcluster-cpu", nodes)
		eks := mean("aws-eks-cpu", nodes)
		cc := mean("azure-cyclecloud-cpu", nodes)
		if !(pc < eks && eks < cc) {
			t.Fatalf("at %d nodes want PC < EKS < CycleCloud, got %f %f %f", nodes, pc, eks, cc)
		}
	}
}

func TestKripkeGrindFallsWithScale(t *testing.T) {
	m := NewKripke()
	e := env(t, "aws-parallelcluster-cpu")
	prev := math.Inf(1)
	for _, nodes := range []int{32, 64, 128, 256} {
		g := m.Run(e, nodes, rngFor("kripke-scale")).FOM
		if g >= prev {
			t.Fatalf("grind time should fall with nodes: %f at %d", g, nodes)
		}
		prev = g
	}
}

func TestKripkeGPUNotReported(t *testing.T) {
	m := NewKripke()
	if r := m.Run(env(t, "aws-eks-gpu"), 4, rngFor("kripke-gpu")); !errors.Is(r.Err, ErrNotSupported) {
		t.Fatalf("GPU Kripke should be unsupported, got %v", r.Err)
	}
}

// --- MiniFE ---

func TestMiniFEInverseScaling(t *testing.T) {
	m := NewMiniFE()
	rng := rngFor("minife")
	mean := func(key string, nodes int) float64 {
		e := env(t, key)
		var s float64
		for i := 0; i < 40; i++ {
			s += m.Run(e, nodes, rng).FOM
		}
		return s / 40
	}
	// Figure 6: inverse scaling — larger clusters do not help and
	// eventually hurt.
	small := mean("google-gke-cpu", 32)
	large := mean("google-gke-cpu", 256)
	if large >= small {
		t.Fatalf("MiniFE should inverse-scale on GKE: 32→%f, 256→%f", small, large)
	}
}

func TestMiniFEAKSBest(t *testing.T) {
	m := NewMiniFE()
	rng := rngFor("minife-best")
	mean := func(key string, nodes int) float64 {
		e := env(t, key)
		var s float64
		for i := 0; i < 40; i++ {
			s += m.Run(e, nodes, rng).FOM
		}
		return s / 40
	}
	// AKS best for GPU, and for size-32 CPU.
	aksGPU := mean("azure-aks-gpu", 4)
	for _, key := range []string{"aws-eks-gpu", "google-gke-gpu", "google-computeengine-gpu"} {
		if f := mean(key, 4); f >= aksGPU {
			t.Fatalf("AKS GPU (%f) should beat %s (%f)", aksGPU, key, f)
		}
	}
	aksCPU := mean("azure-aks-cpu", 32)
	for _, key := range []string{"aws-eks-cpu", "google-gke-cpu", "google-computeengine-cpu"} {
		if f := mean(key, 32); f >= aksCPU {
			t.Fatalf("AKS CPU-32 (%f) should beat %s (%f)", aksCPU, key, f)
		}
	}
}

func TestMiniFEOnPremOutputLost(t *testing.T) {
	m := NewMiniFE()
	if r := m.Run(env(t, "onprem-a-cpu"), 32, rngFor("minife-op")); !errors.Is(r.Err, ErrOutputLost) {
		t.Fatalf("on-prem MiniFE output was lost, got %v", r.Err)
	}
}

// --- MT-GEMM ---

func TestMTGEMMGPUStrongScalability(t *testing.T) {
	m := NewMTGEMM()
	e := env(t, "google-computeengine-gpu")
	prev := 0.0
	for _, nodes := range []int{4, 8, 16, 32} {
		f := m.Run(e, nodes, rngFor("gemm")).FOM
		if f <= prev {
			t.Fatalf("GPU GEMM should scale: %f at %d nodes", f, nodes)
		}
		if prev > 0 && f < 1.7*prev {
			t.Fatalf("GPU GEMM efficiency collapsed: %f -> %f", prev, f)
		}
		prev = f
	}
}

func TestMTGEMMSimilarAcrossCEAKSGKE(t *testing.T) {
	m := NewMTGEMM()
	rng := rngFor("gemm-sim")
	mean := func(key string) float64 {
		var s float64
		for i := 0; i < 30; i++ {
			s += m.Run(env(t, key), 16, rng).FOM
		}
		return s / 30
	}
	ce, aks, gke := mean("google-computeengine-gpu"), mean("azure-aks-gpu"), mean("google-gke-gpu")
	for _, pair := range [][2]float64{{ce, aks}, {aks, gke}, {ce, gke}} {
		if ratio := pair[0] / pair[1]; ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("CE/AKS/GKE should be similar: %f %f %f", ce, aks, gke)
		}
	}
}

func TestMTGEMMCPUCommunicationBound(t *testing.T) {
	// §3.3: GFLOP/s decreased at each larger node count, from the start.
	m := NewMTGEMM()
	e := env(t, "aws-eks-cpu")
	prev := math.Inf(1)
	for _, nodes := range []int{32, 64, 128, 256} {
		f := m.Run(e, nodes, rngFor("gemm-cpu")).FOM
		if f >= prev {
			t.Fatalf("CPU GEMM should decrease with scale: %f at %d nodes", f, nodes)
		}
		prev = f
	}
}

// --- Quicksilver ---

func TestQuicksilverCPURanking(t *testing.T) {
	m := NewQuicksilver()
	rng := rngFor("qs")
	mean := func(key string) float64 {
		var s float64
		for i := 0; i < 30; i++ {
			s += m.Run(env(t, key), 64, rng).FOM
		}
		return s / 30
	}
	aws := mean("aws-parallelcluster-cpu")
	awsEKS := mean("aws-eks-cpu")
	azure := mean("azure-cyclecloud-cpu")
	google := mean("google-gke-cpu")
	if !(aws > azure && awsEKS > azure) {
		t.Fatalf("AWS setups should lead: pc=%e eks=%e azure=%e", aws, awsEKS, azure)
	}
	if azure <= google {
		t.Fatalf("Azure should beat Google: %e vs %e", azure, google)
	}
}

func TestQuicksilverGPUNeverFinishes(t *testing.T) {
	m := NewQuicksilver()
	if r := m.Run(env(t, "azure-aks-gpu"), 4, rngFor("qs-gpu")); !errors.Is(r.Err, ErrTimeout) {
		t.Fatalf("GPU Quicksilver must time out (pinning bug), got %v", r.Err)
	}
	// Ablation: with the bug fixed, runs complete.
	m.GPUPinningBug = false
	if r := m.Run(env(t, "azure-aks-gpu"), 4, rngFor("qs-gpu2")); r.Err != nil {
		t.Fatalf("without the bug the run should finish: %v", r.Err)
	}
}

// --- registry ---

func TestModelMetadataTable(t *testing.T) {
	// Paper §2.8: scaling mode and FOM direction per application.
	want := map[string]struct {
		scaling Scaling
		higher  bool
		unit    string
	}{
		"amg2023":     {Weak, true, "nnz_AP/s"},
		"laghos":      {Strong, true, "megadofs·steps/s"},
		"lammps":      {Strong, true, "M-atom steps/s"},
		"kripke":      {Strong, false, "grind time (ns)"},
		"minife":      {Strong, true, "Total CG MFLOP/s"},
		"mt-gemm":     {Strong, true, "GFLOP/s"},
		"mixbench":    {Single, true, "GFLOP/s"},
		"osu":         {Strong, false, "8B latency (µs)"},
		"single-node": {Single, true, "sysbench events/s"},
		"stream":      {Single, true, "Triad GB/s"},
		"quicksilver": {Weak, true, "segments/cycle-tracking-s"},
	}
	for _, m := range All() {
		w, ok := want[m.Name()]
		if !ok {
			t.Fatalf("unexpected model %q", m.Name())
		}
		if m.Scaling() != w.scaling {
			t.Errorf("%s scaling = %s, want %s", m.Name(), m.Scaling(), w.scaling)
		}
		if m.HigherIsBetter() != w.higher {
			t.Errorf("%s HigherIsBetter = %v, want %v", m.Name(), m.HigherIsBetter(), w.higher)
		}
		if m.Unit() != w.unit {
			t.Errorf("%s unit = %q, want %q", m.Name(), m.Unit(), w.unit)
		}
	}
}

func TestAllElevenModels(t *testing.T) {
	ms := All()
	if len(ms) != 11 {
		t.Fatalf("All() = %d models, want 11", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name()] {
			t.Fatalf("duplicate model %q", m.Name())
		}
		seen[m.Name()] = true
	}
	for _, name := range []string{"amg2023", "laghos", "lammps", "kripke", "minife", "mt-gemm", "mixbench", "osu", "single-node", "stream", "quicksilver"} {
		if !seen[name] {
			t.Fatalf("missing model %q", name)
		}
	}
	if _, err := ByName("lammps"); err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("hpl"); err == nil {
		t.Fatalf("ByName must reject unknown apps")
	}
}
