package apps

import (
	"testing"

	"cloudhpc/internal/cloud"
)

func TestStudyLAMMPSConfigs(t *testing.T) {
	cpu := StudyLAMMPSConfig(cloud.CPU)
	gpu := StudyLAMMPSConfig(cloud.GPU)
	if cpu != (LAMMPSConfig{64, 64, 32}) {
		t.Fatalf("CPU box = %+v", cpu)
	}
	if gpu != (LAMMPSConfig{64, 32, 32}) {
		t.Fatalf("GPU box = %+v", gpu)
	}
	// §2.8: "The GPU problem size was chosen to be smaller to fit on the
	// GPUs on Google Cloud and B" — half the CPU box.
	if gpu.Cells()*2 != cpu.Cells() {
		t.Fatalf("GPU box should be half the CPU box: %d vs %d", gpu.Cells(), cpu.Cells())
	}
}

func TestLAMMPSGPUMemorySizing(t *testing.T) {
	gpu := StudyLAMMPSConfig(cloud.GPU)
	google := env(t, "google-gke-gpu") // 16 GB V100
	// At the smallest GPU scale (32 GPUs) the study box must fit the
	// 16 GB parts.
	if !gpu.FitsGPU(google, 32) {
		t.Fatalf("study GPU box (%.1f GB/GPU at 32 GPUs) must fit 16 GB", gpu.MemoryPerGPU(32))
	}
	// The CPU box would not have fit at that scale — the reason the study
	// shrank it.
	cpu := StudyLAMMPSConfig(cloud.CPU)
	if cpu.FitsGPU(google, 32) {
		t.Fatalf("CPU box (%.1f GB/GPU) should overflow a 16 GB V100 at 32 GPUs", cpu.MemoryPerGPU(32))
	}
	// The 32 GB AWS parts could have taken it.
	aws := env(t, "aws-eks-gpu")
	if !cpu.FitsGPU(aws, 32) {
		t.Fatalf("CPU box should fit 32 GB V100s")
	}
}

func TestLAMMPSConfigValidate(t *testing.T) {
	if err := (LAMMPSConfig{0, 1, 1}).Validate(); err == nil {
		t.Fatalf("zero box accepted")
	}
	if err := StudyLAMMPSConfig(cloud.CPU).Validate(); err != nil {
		t.Fatal(err)
	}
	if (LAMMPSConfig{2, 2, 2}).MemoryPerGPU(0) != 0 {
		t.Fatalf("zero GPUs should report zero memory")
	}
}

func TestKripkeConfig(t *testing.T) {
	c := StudyKripkeConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(16*16*16) * 96 * 32
	if c.UnknownsPerRank() != want {
		t.Fatalf("unknowns = %d, want %d", c.UnknownsPerRank(), want)
	}
	for _, layout := range []string{"DGZ", "ZGD", "GDZ"} {
		c.Layout = layout
		if err := c.Validate(); err != nil {
			t.Fatalf("layout %s rejected: %v", layout, err)
		}
	}
	c.Layout = "XYZ"
	if err := c.Validate(); err == nil {
		t.Fatalf("bogus layout accepted")
	}
	c = StudyKripkeConfig()
	c.Groups = 0
	if err := c.Validate(); err == nil {
		t.Fatalf("zero groups accepted")
	}
	c = StudyKripkeConfig()
	c.ZonesY = -1
	if err := c.Validate(); err == nil {
		t.Fatalf("negative zones accepted")
	}
}
