package apps

import (
	"fmt"
	"math"

	"cloudhpc/internal/cloud"
)

// AMGConfig captures the run configuration of §2.8: problem 2 with a
// 256×256×128 per-rank grid, weak scaled. The study chose that size so
// one rank's hierarchy fits the 16 GB V100 variant (Google Cloud and
// cluster B), and so the global problem stays indexable — the origin of
// the HYPRE_BigInt / HYPRE_Int build-flag requirements.
type AMGConfig struct {
	Problem    int // AMG2023 -problem flag (the study ran 2)
	Nx, Ny, Nz int // per-rank grid
}

// StudyAMGConfig is the configuration used for every AMG run in the study.
func StudyAMGConfig() AMGConfig {
	return AMGConfig{Problem: 2, Nx: 256, Ny: 256, Nz: 128}
}

// Validate rejects impossible configurations.
func (c AMGConfig) Validate() error {
	if c.Problem != 1 && c.Problem != 2 {
		return fmt.Errorf("apps: AMG2023 problem must be 1 or 2, got %d", c.Problem)
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return fmt.Errorf("apps: AMG2023 grid %d×%d×%d invalid", c.Nx, c.Ny, c.Nz)
	}
	return nil
}

// PointsPerRank is the per-rank grid size (8,388,608 for the study).
func (c AMGConfig) PointsPerRank() int64 {
	return int64(c.Nx) * int64(c.Ny) * int64(c.Nz)
}

// GlobalPoints is the weak-scaled global grid across ranks.
func (c AMGConfig) GlobalPoints(ranks int) int64 {
	return c.PointsPerRank() * int64(ranks)
}

// amgBytesPerPoint approximates the hypre multigrid hierarchy's memory
// footprint per fine-grid point: matrices across levels, vectors, and
// communication buffers. ~1.7 kB/point puts the study grid at ~13.6 GB —
// inside a 16 GB V100 with headroom, which is exactly how the study chose
// it.
const amgBytesPerPoint = 1700

// MemoryPerRankGB estimates one rank's working set.
func (c AMGConfig) MemoryPerRankGB() float64 {
	return float64(c.PointsPerRank()) * amgBytesPerPoint / 1e9
}

// FitsGPU reports whether a rank's hierarchy fits one GPU of the
// environment. The study's grid fits the 16 GB parts; doubling any
// dimension would not.
func (c AMGConfig) FitsGPU(env Env) bool {
	if env.Acc != cloud.GPU || env.Instance.GPUMemGB == 0 {
		return true
	}
	return c.MemoryPerRankGB() <= float64(env.Instance.GPUMemGB)
}

// RequiresBigInt reports whether the global problem exceeds 32-bit
// indexing at a rank count — the condition that forces HYPRE_BigInt (and,
// for CPU builds solving even larger systems, HYPRE_Int) to long long int
// (paper §2.8).
func (c AMGConfig) RequiresBigInt(ranks int) bool {
	return c.GlobalPoints(ranks) > math.MaxInt32
}

// MaxIndexableRanks is the largest weak-scaled rank count whose global
// grid a 32-bit integer can still index.
func (c AMGConfig) MaxIndexableRanks() int {
	return int(math.MaxInt32 / c.PointsPerRank())
}
