package apps

import (
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
)

// Mixbench models the single-node mixed-operational-intensity benchmark
// the study used to collect basic GPU attributes. FOM is peak measured
// GFLOP/s on the mixed kernel — higher is better.
//
// The headline finding it surfaced (paper §3.3) is about Error Correction
// Code state, not speed: every cloud GPU environment except Azure had ECC
// On everywhere; Azure had a mixture, 12.5–25% Off depending on the
// environment. ECC Off buys up to ~15% performance at the price of data
// integrity, so the inconsistency is a correctness hazard for scientific
// codes.
type Mixbench struct {
	// ECCPenalty is the performance cost of ECC On relative to Off.
	ECCPenalty float64
	// AzureECCOffProb is the chance an Azure GPU comes up with ECC Off.
	AzureECCOffProb float64
}

// NewMixbench returns the calibrated model.
func NewMixbench() *Mixbench { return &Mixbench{ECCPenalty: 0.13, AzureECCOffProb: 0.2} }

func (m *Mixbench) Name() string         { return "mixbench" }
func (m *Mixbench) Unit() string         { return "GFLOP/s" }
func (m *Mixbench) HigherIsBetter() bool { return true }
func (m *Mixbench) Scaling() Scaling     { return Single }

// Run benchmarks one node. For GPU environments the ECC roll follows the
// environment's provider; CPU environments measure the host.
func (m *Mixbench) Run(env Env, nodes int, rng *sim.Stream) Result {
	if env.Acc == cloud.GPU {
		const eccOffPeak = 7300.0 // V100 mixed-kernel peak with ECC Off
		fom := eccOffPeak * (1 - m.ECCPenalty)
		if env.Provider == cloud.Azure && rng.Bernoulli(m.AzureECCOffProb) {
			fom = eccOffPeak
		}
		fom = rng.Jitter(fom, 0.02)
		return Result{FOM: fom, Unit: m.Unit(), Wall: wallFromRate(1e4, fom)}
	}
	fom := rng.Jitter(float64(env.Instance.Cores)*env.Instance.ClockGHz*14, 0.03)
	return Result{FOM: fom, Unit: m.Unit(), Wall: wallFromRate(1e4, fom)}
}

// ECCAudit surveys a fleet's ECC state the way the study's per-node
// collection did, returning the fraction of GPUs with ECC enabled.
// Non-Azure clouds always return 1.0.
func (m *Mixbench) ECCAudit(env Env, fleet int, rng *sim.Stream) float64 {
	if env.Acc != cloud.GPU || fleet <= 0 {
		return 1.0
	}
	if env.Provider != cloud.Azure {
		return 1.0
	}
	on := 0
	for i := 0; i < fleet; i++ {
		if !rng.Bernoulli(m.AzureECCOffProb) {
			on++
		}
	}
	return float64(on) / float64(fleet)
}
