package apps

import (
	"testing"

	"cloudhpc/internal/cloud"
)

// env fetches a study environment for model tests.
func env(t *testing.T, key string) Env {
	t.Helper()
	spec, err := EnvByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Env
}

func TestStudyEnvironmentMatrix(t *testing.T) {
	envs, err := StudyEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 14 {
		t.Fatalf("matrix has %d environments, want 14 (Table 1)", len(envs))
	}
	dep := Deployable(envs)
	if len(dep) != 13 {
		t.Fatalf("deployable = %d, want 13 (AWS ParallelCluster GPU excluded)", len(dep))
	}
	var cpu, gpu int
	for _, e := range dep {
		if e.Acc == cloud.CPU {
			cpu++
		} else {
			gpu++
		}
	}
	if cpu != 7 || gpu != 6 {
		t.Fatalf("deployable split = %d CPU / %d GPU, want 7/6", cpu, gpu)
	}
}

func TestSchedulersMatchTable1(t *testing.T) {
	want := map[string]string{
		"onprem-a-cpu":             "Slurm",
		"aws-parallelcluster-cpu":  "Slurm",
		"aws-eks-cpu":              "Flux",
		"google-computeengine-cpu": "Flux",
		"google-gke-cpu":           "Flux",
		"azure-cyclecloud-cpu":     "Slurm",
		"azure-aks-cpu":            "Flux",
		"onprem-b-gpu":             "LSF",
	}
	for key, sched := range want {
		spec, err := EnvByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Scheduler != sched {
			t.Errorf("%s scheduler = %s, want %s", key, spec.Scheduler, sched)
		}
	}
}

func TestContainerRuntimes(t *testing.T) {
	// Table 1: Kubernetes → containerd (cd), VM clusters → Singularity (s),
	// on-prem → no containers.
	envs, _ := StudyEnvironments()
	for _, e := range envs {
		switch {
		case e.Kubernetes && e.ContainerRuntime != "containerd":
			t.Errorf("%s: runtime = %q, want containerd", e.Key, e.ContainerRuntime)
		case !e.Kubernetes && !e.OnPrem() && e.ContainerRuntime != "singularity":
			t.Errorf("%s: runtime = %q, want singularity", e.Key, e.ContainerRuntime)
		case e.OnPrem() && e.ContainerRuntime != "":
			t.Errorf("%s: on-prem should not use containers", e.Key)
		}
	}
}

func TestClusterBScalesDoubled(t *testing.T) {
	b, err := EnvByKey("onprem-b-gpu")
	if err != nil {
		t.Fatal(err)
	}
	// B has 4 GPUs/node vs 8 in cloud, so it runs 8/16/32/64 nodes where
	// cloud runs 4/8/16/32 — equal GPU counts at each step.
	if got, want := b.Scales[0], 8; got != want {
		t.Fatalf("B smallest scale = %d nodes, want %d", got, want)
	}
	cloudEnv, _ := EnvByKey("aws-eks-gpu")
	for i := range b.Scales {
		if b.Env.Units(b.Scales[i]) != cloudEnv.Env.Units(cloudEnv.Scales[i]) {
			t.Fatalf("GPU totals differ at step %d: B=%d cloud=%d",
				i, b.Env.Units(b.Scales[i]), cloudEnv.Env.Units(cloudEnv.Scales[i]))
		}
	}
}

func TestMaxNodesForEKSGPU(t *testing.T) {
	eks, _ := EnvByKey("aws-eks-gpu")
	if MaxNodesFor(eks) != 16 {
		t.Fatalf("EKS GPU max nodes = %d, want 16 (256 GPUs unobtainable)", MaxNodesFor(eks))
	}
	gke, _ := EnvByKey("google-gke-gpu")
	if MaxNodesFor(gke) != 32 {
		t.Fatalf("GKE GPU max nodes = %d, want 32", MaxNodesFor(gke))
	}
}

func TestComputeEngineNotColocated(t *testing.T) {
	// No study size obtained COMPACT placement on Compute Engine.
	ce := env(t, "google-computeengine-cpu")
	if ce.Path.Colocated {
		t.Fatalf("Compute Engine paths should not be colocated")
	}
	gke := env(t, "google-gke-cpu")
	if !gke.Path.Colocated {
		t.Fatalf("GKE got COMPACT placement at study sizes")
	}
}

func TestEnvUnits(t *testing.T) {
	cpu := env(t, "aws-eks-cpu")
	if cpu.Units(32) != 32*96 {
		t.Fatalf("CPU units = %d", cpu.Units(32))
	}
	gpu := env(t, "aws-eks-gpu")
	if gpu.Units(4) != 32 {
		t.Fatalf("GPU units = %d", gpu.Units(4))
	}
}

func TestEnvByKeyUnknown(t *testing.T) {
	if _, err := EnvByKey("nope"); err == nil {
		t.Fatalf("unknown key must error")
	}
}

func TestMaxCPUScaleMatchesAbstract(t *testing.T) {
	// Abstract: scaling up to 28,672 CPUs = 256 nodes × 112 cores (A).
	a := env(t, "onprem-a-cpu")
	if a.Units(256) != 28672 {
		t.Fatalf("A at 256 nodes = %d CPUs, want 28672", a.Units(256))
	}
	// And 256 GPUs = 32 cloud nodes × 8.
	g := env(t, "google-gke-gpu")
	if g.Units(32) != 256 {
		t.Fatalf("GKE at 32 nodes = %d GPUs, want 256", g.Units(32))
	}
}
