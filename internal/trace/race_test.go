//go:build race

package trace

// raceEnabled gates the AllocsPerRun regression tests: race
// instrumentation adds allocations of its own, so the hard per-op
// ceilings only hold in non-race runs.
const raceEnabled = true
