package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndEvents(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Addf(time.Second, "aws-eks-cpu", Setup, Routine, "cluster %d up", 1)
	l.Add(Event{At: 2 * time.Second, Env: "aks-gpu", Category: Development, Severity: Blocking, Msg: "daemonset", Cost: 12.5})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	evs := l.Events()
	if evs[0].Msg != "cluster 1 up" {
		t.Fatalf("Addf formatting broken: %q", evs[0].Msg)
	}
	if evs[1].Cost != 12.5 {
		t.Fatalf("cost lost: %v", evs[1].Cost)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Addf(0, "e", Info, Routine, "a")
	evs := l.Events()
	evs[0].Msg = "mutated"
	if l.Events()[0].Msg != "a" {
		t.Fatalf("Events leaked internal slice")
	}
}

func TestByEnvAndEnvs(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Addf(0, "a", Setup, Routine, "x")
	l.Addf(0, "b", Setup, Routine, "y")
	l.Addf(0, "a", Manual, Unexpected, "z")
	if got := len(l.ByEnv("a")); got != 2 {
		t.Fatalf("ByEnv(a) = %d events, want 2", got)
	}
	envs := l.Envs()
	if len(envs) != 2 || envs[0] != "a" || envs[1] != "b" {
		t.Fatalf("Envs = %v, want [a b]", envs)
	}
}

func TestFilter(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Addf(0, "e", Setup, Routine, "ok")
	l.Addf(0, "e", Setup, Blocking, "bad")
	hard := l.Filter(func(e Event) bool { return e.Severity >= Unexpected })
	if len(hard) != 1 || hard[0].Msg != "bad" {
		t.Fatalf("Filter returned %v", hard)
	}
}

func TestTotalCost(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Add(Event{Env: "a", Category: Billing, Cost: 10})
	l.Add(Event{Env: "b", Category: Billing, Cost: 5})
	if got := l.TotalCost(""); got != 15 {
		t.Fatalf("TotalCost(all) = %v, want 15", got)
	}
	if got := l.TotalCost("a"); got != 10 {
		t.Fatalf("TotalCost(a) = %v, want 10", got)
	}
}

func TestRenderContainsFields(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Add(Event{At: time.Minute, Env: "gke-cpu", Category: Setup, Severity: Unexpected, Msg: "quota retry", Cost: 3})
	out := l.Render()
	for _, want := range []string{"gke-cpu", "setup", "unexpected", "quota retry", "$3.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in %q", want, out)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	t.Parallel()
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Addf(0, "e", Info, Routine, "event")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 3200 {
		t.Fatalf("concurrent adds lost events: %d", l.Len())
	}
}

func TestSeverityString(t *testing.T) {
	t.Parallel()
	cases := map[Severity]string{Routine: "routine", Unexpected: "unexpected", Blocking: "blocking", Severity(9): "severity(9)"}
	for sev, want := range cases {
		if sev.String() != want {
			t.Fatalf("Severity(%d).String() = %q, want %q", int(sev), sev.String(), want)
		}
	}
}
