// Package trace records the structured event log of a study run. Every
// substrate appends events — cluster provisioning steps, scheduler actions,
// container builds, debugging incidents — and the usability engine later
// folds the log into the qualitative effort scores of the paper's Table 3.
//
// A Log is safe for concurrent use: all methods take an internal mutex, so
// parallel experiment runners may share one instance. The concurrent study
// executor in package core instead gives every environment shard a private
// Log and stitches the shards together afterwards with AppendShifted, which
// both preserves per-environment event order and keeps the merged transcript
// independent of goroutine scheduling.
package trace

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Category classifies an event into one of the paper's four usability
// assessment categories (paper §2.5), plus bookkeeping categories that do
// not contribute to effort scoring.
type Category string

const (
	// Setup covers testing, deployment, and configuration of an environment.
	Setup Category = "setup"
	// Development covers extra engineering needed to make an environment
	// work at all (custom daemonsets, tool patches, Terraform work).
	Development Category = "development"
	// AppSetup covers building containers, images, and run parameters.
	AppSetup Category = "application-setup"
	// Manual covers interactions and monitoring needed mid-study.
	Manual Category = "manual-intervention"
	// Info events are bookkeeping and never count toward effort.
	Info Category = "info"
	// Billing events record spend; they never count toward effort.
	Billing Category = "billing"
)

// Severity grades how much human effort an event represents.
type Severity int

const (
	// Routine: the documented procedure worked.
	Routine Severity = iota
	// Unexpected: something needed debugging or a workaround.
	Unexpected
	// Blocking: significant development effort or an aborted attempt.
	Blocking
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Routine:
		return "routine"
	case Unexpected:
		return "unexpected"
	case Blocking:
		return "blocking"
	default:
		return "severity(" + strconv.Itoa(int(s)) + ")"
	}
}

// Event is one entry in the study log.
type Event struct {
	At       time.Duration // virtual time
	Env      string        // environment key, e.g. "aws-eks-gpu"
	Category Category
	Severity Severity
	Msg      string
	Cost     float64 // direct dollar cost attributable to the event, if any
}

// Log is an append-only event log. It is safe for concurrent use so that
// parallel experiment runners can share one log.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an event.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Addf appends an event with a formatted message and no cost.
func (l *Log) Addf(at time.Duration, env string, cat Category, sev Severity, format string, args ...any) {
	l.Add(Event{At: at, Env: env, Category: cat, Severity: sev, Msg: fmt.Sprintf(format, args...)})
}

// AppendShifted appends every event of src with its timestamp shifted
// forward by shift. It is the merge half of sharded study execution: each
// environment shard records into a private log on its own virtual timeline
// starting at zero, and the merger lays the shards end to end by passing
// the accumulated duration of all earlier shards as shift. src is read via
// its own lock, so a quiescent shard log may be merged while other shards
// are still writing to theirs. The destination grows exactly once and the
// shift is applied as the events are copied in — no intermediate copy of
// src is taken.
func (l *Log) AppendShifted(src *Log, shift time.Duration) {
	events := src.snapshot()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = slices.Grow(l.events, len(events))
	for _, e := range events {
		e.At += shift
		l.events = append(l.events, e)
	}
}

// Reserve grows the log's capacity so at least n more events can be added
// without reallocating. Shard executors call it with the partition plan's
// event estimate before the inner loop starts.
func (l *Log) Reserve(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = slices.Grow(l.events, n)
}

// snapshot returns the current events without copying. The log is
// append-only and no method mutates a published element in place, so the
// prefix returned here is immutable: later Adds may only write beyond its
// length (the capacity is clipped so appends by the caller cannot either).
// This is the read path every accessor shares; only the exported Events
// pays for a defensive copy.
func (l *Log) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events[:len(l.events):len(l.events)]
}

// All calls yield for every event in insertion order, stopping early if
// yield returns false. It reads a locked snapshot and holds no lock while
// iterating, so yield may itself use the log.
func (l *Log) All(yield func(Event) bool) {
	for _, e := range l.snapshot() {
		if !yield(e) {
			return
		}
	}
}

// Events returns a copy of all events in insertion order.
func (l *Log) Events() []Event {
	snap := l.snapshot()
	out := make([]Event, len(snap))
	copy(out, snap)
	return out
}

// Len reports the number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// ByEnv returns events for one environment, in insertion order.
func (l *Log) ByEnv(env string) []Event {
	var out []Event
	for _, e := range l.snapshot() {
		if e.Env == env {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns events matching the predicate, in insertion order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.snapshot() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Envs returns the sorted set of environment keys present in the log.
func (l *Log) Envs() []string {
	set := map[string]bool{}
	for _, e := range l.snapshot() {
		if e.Env != "" {
			set[e.Env] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalCost sums the Cost field of every event, optionally restricted to a
// single environment ("" means all).
func (l *Log) TotalCost(env string) float64 {
	var sum float64
	for _, e := range l.snapshot() {
		if env == "" || e.Env == env {
			sum += e.Cost
		}
	}
	return sum
}

// Render formats the log as a human-readable transcript, one event per
// line. The layout is hand-built but byte-identical to the historical
// fmt form "%10s  %-24s %-20s %-10s %s" (plus " ($%.2f)" when a cost is
// attached): fmt's %Ns pads with spaces and never truncates.
func (l *Log) Render() string {
	events := l.snapshot()
	var b strings.Builder
	size := 0
	for _, e := range events {
		size += 64 + len(e.Env) + len(e.Msg)
	}
	b.Grow(size)
	for _, e := range events {
		at := e.At.String()
		for i := len(at); i < 10; i++ {
			b.WriteByte(' ')
		}
		b.WriteString(at)
		b.WriteString("  ")
		writePadded(&b, e.Env, 24)
		writePadded(&b, string(e.Category), 20)
		writePadded(&b, e.Severity.String(), 10)
		b.WriteString(e.Msg)
		if e.Cost != 0 {
			b.WriteString(" ($")
			b.Write(strconv.AppendFloat(make([]byte, 0, 16), e.Cost, 'f', 2, 64))
			b.WriteString(")")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// writePadded writes s left-justified in a field of width w, followed by
// a single separating space (the literal space between fmt verbs above).
func writePadded(b *strings.Builder, s string, w int) {
	b.WriteString(s)
	for i := len(s); i < w; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
}
