package trace

import (
	"strings"
	"testing"
	"time"
)

// Allocation-regression pins for the hot-path rework: the shard inner
// loop calls Add per event and the study merge calls AppendShifted per
// shard, so their allocation behaviour is part of the executor's
// performance contract. The ceilings are hard numbers, race-gated like
// internal/jsonl's, because race instrumentation allocates on its own.

func testLog(n int) *Log {
	l := NewLog()
	for i := 0; i < n; i++ {
		l.Add(Event{At: time.Duration(i) * time.Second, Env: "aws-eks-gpu",
			Category: Setup, Severity: Routine, Msg: "step"})
	}
	return l
}

func TestAddAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	l := NewLog()
	l.Reserve(1000)
	ev := Event{Env: "e", Category: Info, Severity: Routine, Msg: "m"}
	if got := testing.AllocsPerRun(500, func() { l.Add(ev) }); got > 0 {
		t.Errorf("Add into reserved capacity allocates %.1f/op, want 0", got)
	}
}

func TestSnapshotReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	l := testLog(256)
	if got := testing.AllocsPerRun(100, func() { l.TotalCost("") }); got > 0 {
		t.Errorf("TotalCost allocates %.1f/op, want 0 (snapshot read)", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		l.All(func(Event) bool { return true })
	}); got > 0 {
		t.Errorf("All allocates %.1f/op, want 0 (snapshot read)", got)
	}
}

func TestAppendShiftedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	src := testLog(128)
	dst := NewLog()
	dst.Reserve(128 * 200)
	// One grow already done: merging into reserved capacity is alloc-free.
	if got := testing.AllocsPerRun(100, func() { dst.AppendShifted(src, time.Hour) }); got > 0 {
		t.Errorf("AppendShifted into reserved capacity allocates %.1f/op, want 0", got)
	}
}

func TestSeverityStringAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	sevs := []Severity{Routine, Unexpected, Blocking}
	if got := testing.AllocsPerRun(100, func() {
		for _, s := range sevs {
			_ = s.String()
		}
	}); got > 0 {
		t.Errorf("Severity.String allocates %.1f/op on valid values, want 0", got)
	}
}

func TestRenderMatchesFmtLayout(t *testing.T) {
	// The hand-built Render must stay byte-identical to the historical
	// fmt form; pin a representative sample, including an over-width env
	// (fmt pads but never truncates) and a cost suffix.
	l := NewLog()
	l.Add(Event{At: 90 * time.Second, Env: "gce-gke-gpu", Category: Setup, Severity: Routine, Msg: "cluster up"})
	l.Add(Event{At: 3*time.Hour + 250*time.Millisecond, Env: "a-very-long-environment-key-over-24",
		Category: Manual, Severity: Blocking, Msg: "stuck"})
	l.Add(Event{At: time.Minute, Env: "aws-eks-cpu", Category: Billing, Severity: Routine,
		Msg: "charge", Cost: 12.5})
	got := l.Render()
	want := strings.Join([]string{
		"     1m30s  gce-gke-gpu              setup                routine    cluster up",
		" 3h0m0.25s  a-very-long-environment-key-over-24 manual-intervention  blocking   stuck",
		"      1m0s  aws-eks-cpu              billing              routine    charge ($12.50)",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("Render drifted from the fmt layout:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func BenchmarkTraceLogAdd(b *testing.B) {
	l := NewLog()
	l.Reserve(b.N)
	ev := Event{Env: "aws-eks-gpu", Category: Setup, Severity: Routine, Msg: "step"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Add(ev)
	}
}

func BenchmarkTraceLogAppendShifted(b *testing.B) {
	src := testLog(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewLog()
		dst.AppendShifted(src, time.Hour)
	}
}

func BenchmarkTraceLogRender(b *testing.B) {
	l := testLog(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Render()
	}
}
