package trace

import (
	"encoding/json"
	"fmt"
	"time"

	"cloudhpc/internal/jsonl"
)

// JSON export of the event log, for archiving alongside the study's other
// artifacts and for external analysis.

// eventJSON is the wire form: severity as a string, time in nanoseconds.
type eventJSON struct {
	AtNs     int64        `json:"at_ns"`
	Env      string       `json:"env,omitempty"`
	Category string       `json:"category"`
	Severity severityName `json:"severity"`
	Msg      string       `json:"msg"`
	Cost     float64      `json:"cost_usd,omitempty"`
}

// severityName validates during JSON decoding, so a bad severity fails
// inside the shared JSONL scanner and the error carries the exact file
// line — not a post-hoc record index.
type severityName string

func (s *severityName) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	if _, err := severityFromString(str); err != nil {
		return err
	}
	*s = severityName(str)
	return nil
}

// MarshalJSONL encodes the log as JSON lines in insertion order.
func (l *Log) MarshalJSONL() ([]byte, error) {
	events := l.snapshot()
	out := make([]eventJSON, len(events))
	for i, e := range events {
		out[i] = eventJSON{
			AtNs: int64(e.At), Env: e.Env, Category: string(e.Category),
			Severity: severityName(e.Severity.String()), Msg: e.Msg, Cost: e.Cost,
		}
	}
	return jsonl.Marshal(out)
}

// severityFromString inverts Severity.String.
func severityFromString(s string) (Severity, error) {
	switch s {
	case "routine":
		return Routine, nil
	case "unexpected":
		return Unexpected, nil
	case "blocking":
		return Blocking, nil
	default:
		return 0, fmt.Errorf("trace: unknown severity %q", s)
	}
}

// UnmarshalJSONL rebuilds a log from JSON lines.
func UnmarshalJSONL(data []byte) (*Log, error) {
	decoded, err := jsonl.Unmarshal[eventJSON]("trace", data)
	if err != nil {
		return nil, err
	}
	l := NewLog()
	for _, ej := range decoded {
		sev, err := severityFromString(string(ej.Severity))
		if err != nil {
			return nil, err // unreachable: severityName validated at decode
		}
		l.Add(Event{
			At: time.Duration(ej.AtNs), Env: ej.Env, Category: Category(ej.Category),
			Severity: sev, Msg: ej.Msg, Cost: ej.Cost,
		})
	}
	return l, nil
}
