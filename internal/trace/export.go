package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// JSON export of the event log, for archiving alongside the study's other
// artifacts and for external analysis.

// eventJSON is the wire form: severity as a string, time in nanoseconds.
type eventJSON struct {
	AtNs     int64   `json:"at_ns"`
	Env      string  `json:"env,omitempty"`
	Category string  `json:"category"`
	Severity string  `json:"severity"`
	Msg      string  `json:"msg"`
	Cost     float64 `json:"cost_usd,omitempty"`
}

// MarshalJSONL encodes the log as JSON lines in insertion order.
func (l *Log) MarshalJSONL() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range l.Events() {
		if err := enc.Encode(eventJSON{
			AtNs: int64(e.At), Env: e.Env, Category: string(e.Category),
			Severity: e.Severity.String(), Msg: e.Msg, Cost: e.Cost,
		}); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// severityFromString inverts Severity.String.
func severityFromString(s string) (Severity, error) {
	switch s {
	case "routine":
		return Routine, nil
	case "unexpected":
		return Unexpected, nil
	case "blocking":
		return Blocking, nil
	default:
		return 0, fmt.Errorf("trace: unknown severity %q", s)
	}
}

// UnmarshalJSONL rebuilds a log from JSON lines.
func UnmarshalJSONL(data []byte) (*Log, error) {
	l := NewLog()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(sc.Bytes(), &ej); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		sev, err := severityFromString(ej.Severity)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		l.Add(Event{
			At: time.Duration(ej.AtNs), Env: ej.Env, Category: Category(ej.Category),
			Severity: sev, Msg: ej.Msg, Cost: ej.Cost,
		})
	}
	return l, sc.Err()
}
