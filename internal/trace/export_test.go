package trace

import (
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	t.Parallel()
	l := NewLog()
	l.Add(Event{At: time.Minute, Env: "azure-aks-cpu", Category: Development,
		Severity: Blocking, Msg: "custom daemonset", Cost: 12.5})
	l.Add(Event{At: 2 * time.Minute, Env: "", Category: Info, Severity: Routine, Msg: "tick"})
	data, err := l.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost events: %d", back.Len())
	}
	evs := back.Events()
	if evs[0].At != time.Minute || evs[0].Severity != Blocking || evs[0].Cost != 12.5 {
		t.Fatalf("fields lost: %+v", evs[0])
	}
	if evs[1].Severity != Routine {
		t.Fatalf("severity lost: %+v", evs[1])
	}
}

func TestUnmarshalRejections(t *testing.T) {
	t.Parallel()
	if _, err := UnmarshalJSONL([]byte("not json\n")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := UnmarshalJSONL([]byte(`{"severity":"catastrophic","category":"setup"}` + "\n")); err == nil {
		t.Fatalf("unknown severity accepted")
	}
	l, err := UnmarshalJSONL([]byte("\n\n"))
	if err != nil || l.Len() != 0 {
		t.Fatalf("blank input should give empty log: %v", err)
	}
}
