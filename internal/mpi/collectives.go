package mpi

import (
	"fmt"
	"math"
)

// Collective algorithm selection. OpenMPI picks an allreduce algorithm by
// message size and communicator size from a tuning table; a bad table
// entry is exactly the kind of defect behind the AWS 32 KiB spike, which
// a later OpenMPI change fixed (paper §3.3, reference [82]).

// AllReduceAlgo names an allreduce implementation.
type AllReduceAlgo string

const (
	// Binomial: log2(p) rounds, each carrying the full message — good for
	// tiny messages, terrible for large ones.
	Binomial AllReduceAlgo = "binomial-tree"
	// Ring: 2(p-1) steps with m/p-sized chunks — bandwidth optimal for
	// large messages, latency heavy for small ones.
	Ring AllReduceAlgo = "ring"
	// Rabenseifner: reduce-scatter + allgather — the balanced choice.
	Rabenseifner AllReduceAlgo = "rabenseifner"
	// SegmentedBinomial: binomial tree with 4 KiB pipeline segments, each
	// paying full per-message latency — fine on µs-latency InfiniBand,
	// catastrophic on a 16 µs fabric. This is the defective decision the
	// buggy tuning table made in the 16–64 KiB band.
	SegmentedBinomial AllReduceAlgo = "segmented-binomial"
)

// segmentBytes is the pipeline segment size of SegmentedBinomial.
const segmentBytes = 4096

// NetParams abstracts the fabric for algorithm cost models: α (per-message
// latency, µs) and β (seconds per byte, expressed as µs per byte here).
type NetParams struct {
	AlphaUs     float64 // per-message latency in µs
	BytesPerSec float64 // sustained bandwidth
}

// betaUs returns µs per byte.
func (n NetParams) betaUs() float64 { return 1e6 / n.BytesPerSec }

// Cost returns the modelled execution time in µs for an allreduce of m
// bytes across p ranks under the algorithm.
func Cost(algo AllReduceAlgo, p int, m float64, net NetParams) (float64, error) {
	if p < 1 || m < 0 {
		return 0, fmt.Errorf("mpi: bad allreduce shape p=%d m=%f", p, m)
	}
	if p == 1 {
		return 0, nil
	}
	logp := math.Ceil(math.Log2(float64(p)))
	switch algo {
	case Binomial:
		// log p rounds, full message each round, reduce+broadcast.
		return 2 * logp * (net.AlphaUs + m*net.betaUs()), nil
	case Ring:
		steps := 2 * float64(p-1)
		chunk := m / float64(p)
		return steps * (net.AlphaUs + chunk*net.betaUs()), nil
	case Rabenseifner:
		vol := 2 * (float64(p-1) / float64(p)) * m
		return 2*logp*net.AlphaUs + vol*net.betaUs(), nil
	case SegmentedBinomial:
		segments := math.Ceil(m / segmentBytes)
		if segments < 1 {
			segments = 1
		}
		return 2 * logp * segments * (net.AlphaUs + math.Min(m, segmentBytes)*net.betaUs()), nil
	default:
		return 0, fmt.Errorf("mpi: unknown allreduce algorithm %q", algo)
	}
}

// TuningTable maps message-size ranges to algorithms, like OpenMPI's
// coll_tuned decision tables.
type TuningTable struct {
	// Cutoffs are ascending upper bounds (bytes); Algos has one more
	// entry than Cutoffs (the last covers everything above).
	Cutoffs []float64
	Algos   []AllReduceAlgo
}

// Select returns the algorithm for a message size.
func (tt TuningTable) Select(m float64) (AllReduceAlgo, error) {
	if len(tt.Algos) != len(tt.Cutoffs)+1 {
		return "", fmt.Errorf("mpi: malformed tuning table (%d cutoffs, %d algos)", len(tt.Cutoffs), len(tt.Algos))
	}
	for i, c := range tt.Cutoffs {
		if m <= c {
			return tt.Algos[i], nil
		}
	}
	return tt.Algos[len(tt.Algos)-1], nil
}

// BuggyAWSTable reproduces the defective behaviour: around 32 KiB the
// table flips to the binomial tree, whose full-message rounds are
// catastrophic at exactly that size on a 16 µs fabric — the Figure 5
// spike.
func BuggyAWSTable() TuningTable {
	return TuningTable{
		Cutoffs: []float64{16384, 65536},
		Algos:   []AllReduceAlgo{Rabenseifner, SegmentedBinomial, Rabenseifner},
	}
}

// FixedAWSTable is the post-fix table: Rabenseifner throughout the
// afflicted range (ring only for very large messages).
func FixedAWSTable() TuningTable {
	return TuningTable{
		Cutoffs: []float64{1 << 20},
		Algos:   []AllReduceAlgo{Rabenseifner, Ring},
	}
}

// TableCost prices an allreduce through a tuning table.
func TableCost(tt TuningTable, p int, m float64, net NetParams) (float64, error) {
	algo, err := tt.Select(m)
	if err != nil {
		return 0, err
	}
	return Cost(algo, p, m, net)
}
