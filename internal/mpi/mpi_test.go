package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCartTopologyBasics(t *testing.T) {
	topo := CartTopology{8, 4, 2}
	if topo.Ranks() != 64 {
		t.Fatalf("ranks = %d", topo.Ranks())
	}
	if topo.String() != "-P 8 4 2" {
		t.Fatalf("string = %q", topo.String())
	}
	if err := (CartTopology{0, 4, 2}).Validate(); err == nil {
		t.Fatalf("zero extent accepted")
	}
}

func TestSurfaceVolumeTopologyEffect(t *testing.T) {
	// The study's size-64 GPU comparison: -P 8 4 2 vs -P 4 4 4 on the
	// per-rank 256×256×128 grid. The squatter decomposition exchanges
	// less surface, which is the ~10% FOM gain's physical origin.
	nx, ny, nz := 2048, 1024, 256 // a 64-rank global grid
	s842, v842, err := CartTopology{8, 4, 2}.SurfaceVolume(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	s444, v444, err := CartTopology{4, 4, 4}.SurfaceVolume(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v842-v444) > 1e-9 {
		t.Fatalf("volumes must match (same rank count): %f vs %f", v842, v444)
	}
	if s842 >= s444 {
		t.Fatalf("-P 8 4 2 should exchange less surface: %f vs %f", s842, s444)
	}
}

func TestSurfaceVolumeErrors(t *testing.T) {
	if _, _, err := (CartTopology{1, 1, 1}).SurfaceVolume(0, 4, 4); err == nil {
		t.Fatalf("zero grid accepted")
	}
	if _, _, err := (CartTopology{0, 1, 1}).SurfaceVolume(4, 4, 4); err == nil {
		t.Fatalf("invalid topology accepted")
	}
}

func TestFactorizationsComplete(t *testing.T) {
	f := Factorizations(8)
	// 8 = product of three ordered factors: (1,1,8),(1,2,4),(1,4,2),
	// (1,8,1),(2,1,4),(2,2,2),(2,4,1),(4,1,2),(4,2,1),(8,1,1).
	if len(f) != 10 {
		t.Fatalf("factorizations of 8 = %d, want 10", len(f))
	}
	for _, topo := range f {
		if topo.Ranks() != 8 {
			t.Fatalf("bad factorization %v", topo)
		}
	}
}

func TestBestTopologyMinimizesSurface(t *testing.T) {
	best, err := BestTopology(64, 1024, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// For a cubic grid the cubic decomposition wins.
	if best != (CartTopology{4, 4, 4}) {
		t.Fatalf("cubic grid best = %v, want 4 4 4", best)
	}
	// For a flat grid, a flat decomposition wins over the cube.
	flat, err := BestTopology(64, 4096, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	sFlat, _, _ := flat.SurfaceVolume(4096, 4096, 64)
	sCube, _, _ := CartTopology{4, 4, 4}.SurfaceVolume(4096, 4096, 64)
	if sFlat > sCube {
		t.Fatalf("BestTopology not optimal: %v (%f) vs cube (%f)", flat, sFlat, sCube)
	}
	if _, err := BestTopology(0, 1, 1, 1); err == nil {
		t.Fatalf("zero ranks accepted")
	}
}

func TestBestTopologyProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%63) + 1
		best, err := BestTopology(n, 512, 512, 512)
		if err != nil || best.Ranks() != n {
			return false
		}
		sBest, _, _ := best.SurfaceVolume(512, 512, 512)
		for _, topo := range Factorizations(n) {
			s, _, _ := topo.SurfaceVolume(512, 512, 512)
			if s < sBest-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

var efa = NetParams{AlphaUs: 16, BytesPerSec: 11e9}

func TestCollectiveCostShapes(t *testing.T) {
	// Small messages: binomial's log p latency beats ring's 2(p-1) steps.
	small, _ := Cost(Binomial, 256, 8, efa)
	ringSmall, _ := Cost(Ring, 256, 8, efa)
	if small >= ringSmall {
		t.Fatalf("binomial should win tiny messages: %f vs %f", small, ringSmall)
	}
	// Large messages: ring's chunking beats binomial's full-message rounds.
	big, _ := Cost(Ring, 256, 1<<24, efa)
	binBig, _ := Cost(Binomial, 256, 1<<24, efa)
	if big >= binBig {
		t.Fatalf("ring should win large messages: %f vs %f", big, binBig)
	}
	// Rabenseifner is never catastrophically worse than either.
	rab, _ := Cost(Rabenseifner, 256, 32768, efa)
	bin, _ := Cost(Binomial, 256, 32768, efa)
	if rab >= bin {
		t.Fatalf("rabenseifner should beat binomial at 32KiB: %f vs %f", rab, bin)
	}
}

func TestCostEdgeCases(t *testing.T) {
	if c, err := Cost(Ring, 1, 1024, efa); err != nil || c != 0 {
		t.Fatalf("single rank should be free: %f %v", c, err)
	}
	if _, err := Cost(Ring, 0, 1024, efa); err == nil {
		t.Fatalf("zero ranks accepted")
	}
	if _, err := Cost(AllReduceAlgo("telepathy"), 4, 8, efa); err == nil {
		t.Fatalf("unknown algorithm accepted")
	}
}

func TestBuggyTableReproducesSpike(t *testing.T) {
	// The defective table flips to binomial exactly in the 16–64 KiB
	// band; cost at 32 KiB towers over both neighbours.
	buggy := BuggyAWSTable()
	at32k, _ := TableCost(buggy, 256, 32768, efa)
	at8k, _ := TableCost(buggy, 256, 8192, efa)
	at128k, _ := TableCost(buggy, 256, 131072, efa)
	if at32k < 3*at8k || at32k < 2*at128k {
		t.Fatalf("no spike: 8k=%f 32k=%f 128k=%f", at8k, at32k, at128k)
	}
	// The vendor fix removes it: the 32 KiB cost sits between neighbours.
	fixed := FixedAWSTable()
	f8, _ := TableCost(fixed, 256, 8192, efa)
	f32, _ := TableCost(fixed, 256, 32768, efa)
	f128, _ := TableCost(fixed, 256, 131072, efa)
	if !(f8 < f32 && f32 < f128) {
		t.Fatalf("fixed table not smooth: %f %f %f", f8, f32, f128)
	}
}

func TestTuningTableSelect(t *testing.T) {
	tt := BuggyAWSTable()
	if algo, _ := tt.Select(1024); algo != Rabenseifner {
		t.Fatalf("small select = %s", algo)
	}
	if algo, _ := tt.Select(32768); algo != SegmentedBinomial {
		t.Fatalf("spike-band select = %s", algo)
	}
	if algo, _ := tt.Select(1 << 20); algo != Rabenseifner {
		t.Fatalf("large select = %s", algo)
	}
	bad := TuningTable{Cutoffs: []float64{1}, Algos: []AllReduceAlgo{Ring}}
	if _, err := bad.Select(5); err == nil {
		t.Fatalf("malformed table accepted")
	}
}
