package mpi_test

import (
	"fmt"

	"cloudhpc/internal/mpi"
)

// Why -P 8 4 2 beat -P 4 4 4 in the study: with eight ranks per node,
// the squat decomposition keeps whole X-pencils on one node, so less
// halo surface crosses the fabric.
func ExampleCartTopology_OffNodeSurfaceFraction() {
	grid := [3]int{2048, 1024, 256}
	for _, topo := range []mpi.CartTopology{{PX: 8, PY: 4, PZ: 2}, {PX: 4, PY: 4, PZ: 4}} {
		f, err := topo.OffNodeSurfaceFraction(8, grid[0], grid[1], grid[2])
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %.0f%% of halo surface crosses nodes\n", topo, f*100)
	}
	// Output:
	// -P 8 4 2: 67% of halo surface crosses nodes
	// -P 4 4 4: 79% of halo surface crosses nodes
}

// The AWS allreduce spike was a tuning-table defect; the fixed table
// removes it.
func ExampleTableCost() {
	efa := mpi.NetParams{AlphaUs: 16, BytesPerSec: 11e9}
	buggy, _ := mpi.TableCost(mpi.BuggyAWSTable(), 256, 32768, efa)
	fixed, _ := mpi.TableCost(mpi.FixedAWSTable(), 256, 32768, efa)
	fmt.Printf("32 KiB allreduce on 256 ranks: buggy %.0f µs, fixed %.0f µs\n", buggy, fixed)
	// Output:
	// 32 KiB allreduce on 256 ranks: buggy 2096 µs, fixed 262 µs
}
