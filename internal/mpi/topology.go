// Package mpi models the MPI-level communication structure of the
// study's applications: cartesian process decompositions (AMG's -P x y z
// flag), halo-exchange volumes, and collective algorithm selection —
// including the OpenMPI allreduce algorithm defect that produced the
// 32 KiB latency spike on AWS (paper Fig. 5) and the vendor fix that
// removed it.
package mpi

import (
	"fmt"
	"math"
)

// CartTopology is a 3-D cartesian process decomposition, AMG's -P flag.
type CartTopology struct {
	PX, PY, PZ int
}

// Ranks returns the total process count of the decomposition.
func (t CartTopology) Ranks() int { return t.PX * t.PY * t.PZ }

// Validate rejects non-positive extents.
func (t CartTopology) Validate() error {
	if t.PX <= 0 || t.PY <= 0 || t.PZ <= 0 {
		return fmt.Errorf("mpi: invalid topology -P %d %d %d", t.PX, t.PY, t.PZ)
	}
	return nil
}

// String renders the AMG flag form.
func (t CartTopology) String() string { return fmt.Sprintf("-P %d %d %d", t.PX, t.PY, t.PZ) }

// SurfaceVolume returns the per-rank halo surface (in grid points) for a
// global nx×ny×nz grid split across the topology: the communication a
// rank does per step is proportional to this surface, while compute is
// proportional to the subdomain volume. Squatter decompositions exchange
// less — the physical reason -P 8 4 2 beat -P 4 4 4 by ~10% in the study.
func (t CartTopology) SurfaceVolume(nx, ny, nz int) (surface, volume float64, err error) {
	if err := t.Validate(); err != nil {
		return 0, 0, err
	}
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return 0, 0, fmt.Errorf("mpi: invalid grid %d×%d×%d", nx, ny, nz)
	}
	lx := float64(nx) / float64(t.PX)
	ly := float64(ny) / float64(t.PY)
	lz := float64(nz) / float64(t.PZ)
	// Two faces per dimension (periodic worst case).
	surface = 2 * (lx*ly + ly*lz + lx*lz)
	volume = lx * ly * lz
	return surface, volume, nil
}

// Factorizations returns all 3-D decompositions of n ranks, in
// lexicographic order — what mpirun would consider for -np n.
func Factorizations(n int) []CartTopology {
	var out []CartTopology
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			out = append(out, CartTopology{PX: px, PY: py, PZ: rem / py})
		}
	}
	return out
}

// BestTopology returns the factorization of n ranks minimizing halo
// surface for the grid — the decomposition a tuned run would pick.
func BestTopology(n, nx, ny, nz int) (CartTopology, error) {
	if n <= 0 {
		return CartTopology{}, fmt.Errorf("mpi: non-positive rank count %d", n)
	}
	best := CartTopology{}
	bestSurface := math.Inf(1)
	for _, t := range Factorizations(n) {
		s, _, err := t.SurfaceVolume(nx, ny, nz)
		if err != nil {
			return CartTopology{}, err
		}
		if s < bestSurface {
			best, bestSurface = t, s
		}
	}
	return best, nil
}
