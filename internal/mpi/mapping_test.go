package mpi

import (
	"math"
	"testing"
)

func TestOffNodeSurfaceFractionPencils(t *testing.T) {
	// -P 8 4 2 at 8 ranks/node keeps whole X-pencils on a node: every
	// X-direction exchange is intra-node.
	f842, err := CartTopology{8, 4, 2}.OffNodeSurfaceFraction(8, 2048, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	f444, err := CartTopology{4, 4, 4}.OffNodeSurfaceFraction(8, 2048, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	if f842 >= f444 {
		t.Fatalf("-P 8 4 2 should cross node boundaries less: %.3f vs %.3f", f842, f444)
	}
	if f842 <= 0 || f842 >= 1 || f444 <= 0 || f444 >= 1 {
		t.Fatalf("fractions out of range: %.3f %.3f", f842, f444)
	}
}

func TestOffNodeFractionBounds(t *testing.T) {
	// Everything on one node: nothing crosses.
	f, err := CartTopology{2, 2, 2}.OffNodeSurfaceFraction(8, 64, 64, 64)
	if err != nil || f != 0 {
		t.Fatalf("single-node job should have 0 off-node surface: %f %v", f, err)
	}
	// One rank per node: everything crosses.
	f, err = CartTopology{2, 2, 2}.OffNodeSurfaceFraction(1, 64, 64, 64)
	if err != nil || f != 1 {
		t.Fatalf("one rank/node should have all-off-node surface: %f %v", f, err)
	}
	// Single rank: no exchange at all.
	f, err = CartTopology{1, 1, 1}.OffNodeSurfaceFraction(1, 64, 64, 64)
	if err != nil || f != 0 {
		t.Fatalf("single rank: %f %v", f, err)
	}
}

func TestOffNodeFractionErrors(t *testing.T) {
	if _, err := (CartTopology{2, 2, 2}).OffNodeSurfaceFraction(0, 64, 64, 64); err == nil {
		t.Fatalf("zero ranks/node accepted")
	}
	if _, err := (CartTopology{2, 2, 2}).OffNodeSurfaceFraction(8, 0, 64, 64); err == nil {
		t.Fatalf("zero grid accepted")
	}
}

func TestTopologySpeedupReproducesAMGGain(t *testing.T) {
	// The study measured ~10% FOM gain for -P 8 4 2 over -P 4 4 4 at 64
	// GPUs (8 per node). With a fabric ~12× shared memory and AMG's
	// communication share around a third of the solve, the mapping
	// analysis lands the gain in the high single digits to low teens —
	// the calibrated 1.10 of apps.AMG2023 is not an arbitrary constant.
	sp, err := TopologySpeedup(
		CartTopology{8, 4, 2}, CartTopology{4, 4, 4},
		8, 2048, 1024, 256, 12.0, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.05 || sp > 1.20 {
		t.Fatalf("mapping-derived topology speedup = %.3f, want ~1.10", sp)
	}
}

func TestTopologySpeedupSymmetry(t *testing.T) {
	a, b := CartTopology{8, 4, 2}, CartTopology{4, 4, 4}
	ab, err := TopologySpeedup(a, b, 8, 2048, 1024, 256, 12, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := TopologySpeedup(b, a, 8, 2048, 1024, 256, 12, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab*ba-1) > 1e-9 {
		t.Fatalf("speedups not reciprocal: %f × %f", ab, ba)
	}
	if _, err := TopologySpeedup(a, CartTopology{2, 2, 2}, 8, 64, 64, 64, 12, 0.3); err == nil {
		t.Fatalf("mismatched rank counts accepted")
	}
}
