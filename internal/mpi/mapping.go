package mpi

import "fmt"

// Process-to-node mapping analysis: with ranks packed onto nodes in rank
// order (the default MPI mapping), a cartesian topology determines how
// much halo surface crosses node boundaries and therefore pays fabric
// latency rather than shared-memory cost. This is the physical mechanism
// behind AMG2023's -P 8 4 2 outperforming -P 4 4 4 at 8 ranks per node
// (paper §3.3): 8 4 2 keeps entire X-pencils on one node.

// rankCoord converts a rank to its (x, y, z) position: x fastest, as AMG
// numbers its grid.
func (t CartTopology) rankCoord(rank int) (x, y, z int) {
	x = rank % t.PX
	y = (rank / t.PX) % t.PY
	z = rank / (t.PX * t.PY)
	return
}

// OffNodeSurfaceFraction computes, for a rank-order block mapping of the
// topology onto nodes with ranksPerNode ranks each, the fraction of total
// halo-exchange surface (on an nx×ny×nz global grid) that crosses node
// boundaries. Lower is better: intra-node exchanges move through shared
// memory instead of the fabric.
func (t CartTopology) OffNodeSurfaceFraction(ranksPerNode, nx, ny, nz int) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if ranksPerNode <= 0 {
		return 0, fmt.Errorf("mpi: non-positive ranks per node %d", ranksPerNode)
	}
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return 0, fmt.Errorf("mpi: invalid grid %d×%d×%d", nx, ny, nz)
	}
	ranks := t.Ranks()
	lx := float64(nx) / float64(t.PX)
	ly := float64(ny) / float64(t.PY)
	lz := float64(nz) / float64(t.PZ)
	faceX := ly * lz // surface crossed per X-direction neighbour exchange
	faceY := lx * lz
	faceZ := lx * ly

	nodeOf := func(rank int) int { return rank / ranksPerNode }
	rankOf := func(x, y, z int) int { return x + t.PX*(y+t.PY*z) }

	var total, offNode float64
	for r := 0; r < ranks; r++ {
		x, y, z := t.rankCoord(r)
		type nb struct {
			rank int
			face float64
			ok   bool
		}
		neighbours := []nb{
			{rankOf(x+1, y, z), faceX, x+1 < t.PX},
			{rankOf(x, y+1, z), faceY, y+1 < t.PY},
			{rankOf(x, y, z+1), faceZ, z+1 < t.PZ},
		}
		for _, n := range neighbours {
			if !n.ok {
				continue
			}
			total += n.face
			if nodeOf(r) != nodeOf(n.rank) {
				offNode += n.face
			}
		}
	}
	if total == 0 {
		return 0, nil // single rank: nothing exchanged
	}
	return offNode / total, nil
}

// TopologySpeedup estimates the run-time ratio between two decompositions
// of the same rank count from their off-node surface fractions, given the
// fabric-vs-shared-memory cost ratio and the application's communication
// fraction of total time. A returned value > 1 means topology a is
// faster than topology b.
func TopologySpeedup(a, b CartTopology, ranksPerNode, nx, ny, nz int, fabricCostRatio, commFraction float64) (float64, error) {
	if a.Ranks() != b.Ranks() {
		return 0, fmt.Errorf("mpi: topologies have different rank counts: %d vs %d", a.Ranks(), b.Ranks())
	}
	fa, err := a.OffNodeSurfaceFraction(ranksPerNode, nx, ny, nz)
	if err != nil {
		return 0, err
	}
	fb, err := b.OffNodeSurfaceFraction(ranksPerNode, nx, ny, nz)
	if err != nil {
		return 0, err
	}
	// Communication cost scales with (offNode·ratio + onNode·1).
	costA := commFraction * (fa*fabricCostRatio + (1 - fa))
	costB := commFraction * (fb*fabricCostRatio + (1 - fb))
	return ((1 - commFraction) + costB) / ((1 - commFraction) + costA), nil
}
