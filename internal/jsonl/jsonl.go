// Package jsonl is the one JSON-lines codec behind every archived wire
// form — dataset records, trace events, billing charges, the store's
// ref journal. One encoder loop and one splitter (blank lines skipped,
// malformed lines reported with their 1-based number) instead of a
// drifting copy per package.
//
// The codec is built for the store hot path, where the three wire forms
// are encoded and decoded hundreds of times per study:
//
//   - Marshal encodes through a pooled buffer (sync.Pool) and returns
//     one right-sized copy, so repeated megabyte encodes stop paying
//     the doubling-growth allocations.
//   - Unmarshal slices the input in place (no bufio.Scanner, no copy of
//     any line, no fixed 1 MiB scratch buffer) and preallocates the
//     result from a newline count, so decoding allocates the output
//     slice once plus whatever encoding/json needs per record.
//   - Decoder is the streaming form: records decode one at a time
//     through a cursor, which is what lets the executor's units→env
//     merge consume stored draws without materializing an intermediate
//     record slice per artifact.
package jsonl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
)

// encBufs pools encode buffers across Marshal calls. Buffers that grew
// past maxPooledBuf are dropped on the floor rather than pinned forever.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the capacity a returned pool buffer may retain
// (16 MiB — comfortably above the largest study artifact, small enough
// that one outlier encode cannot pin tens of megabytes).
const maxPooledBuf = 16 << 20

// Marshal encodes items as JSON lines, one per item, in order. The
// returned slice is exactly sized and owned by the caller; the encode
// scratch is pooled across calls.
func Marshal[T any](items []T) ([]byte, error) {
	buf := encBufs.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			buf.Reset()
			encBufs.Put(buf)
		}
	}()
	buf.Reset()
	enc := json.NewEncoder(buf)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			return nil, err
		}
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Unmarshal decodes JSON lines into values of T. Blank lines are
// skipped; a malformed line fails with its 1-based line number prefixed
// by errPrefix (the owning package's name). The input is split in place
// — no per-line copies, no scratch buffer — and the output slice is
// preallocated from a newline count, so a second growth allocation
// never happens.
func Unmarshal[T any](errPrefix string, data []byte) ([]T, error) {
	var out []T
	if n := Lines(data); n > 0 {
		out = make([]T, 0, n)
	}
	d := NewDecoder[T](errPrefix, data)
	for {
		v, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// Lines counts the newline-terminated lines of data (a trailing
// unterminated line counts as one). It is the preallocation hint
// Unmarshal sizes its output with — an upper bound when blank lines are
// present, exact otherwise.
func Lines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

// Decoder is a streaming cursor over a JSON-lines byte slice: each Next
// decodes exactly one record, in order, without materializing the whole
// record set. The executor's store-warm unit path consumes draw records
// through one of these instead of holding every artifact's full decoded
// slice in memory simultaneously.
type Decoder[T any] struct {
	prefix string
	rest   []byte
	line   int
}

// NewDecoder returns a cursor over data. The decoder keeps a reference
// to data (it slices, never copies); the caller must not mutate it
// while decoding.
func NewDecoder[T any](errPrefix string, data []byte) *Decoder[T] {
	return &Decoder[T]{prefix: errPrefix, rest: data}
}

// Next decodes the next record. It returns ok=false when the input is
// exhausted; a malformed line fails with its 1-based line number.
func (d *Decoder[T]) Next() (v T, ok bool, err error) {
	for len(d.rest) > 0 {
		line := d.rest
		if i := bytes.IndexByte(d.rest, '\n'); i >= 0 {
			line, d.rest = d.rest[:i], d.rest[i+1:]
		} else {
			d.rest = nil
		}
		d.line++
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &v); err != nil {
			return v, false, fmt.Errorf("%s: line %d: %w", d.prefix, d.line, err)
		}
		return v, true, nil
	}
	return v, false, nil
}
