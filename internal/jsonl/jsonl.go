// Package jsonl is the one JSON-lines codec behind every archived wire
// form — dataset records, trace events, billing charges. One encoder
// loop and one scanner (blank lines skipped, 16 MiB line cap, malformed
// lines reported with their 1-based number) instead of a drifting copy
// per package.
package jsonl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// Marshal encodes items as JSON lines, one per item, in order.
func Marshal[T any](items []T) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes JSON lines into values of T. Blank lines are
// skipped; a malformed line fails with its 1-based line number prefixed
// by errPrefix (the owning package's name).
func Unmarshal[T any](errPrefix string, data []byte) ([]T, error) {
	var out []T
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return nil, fmt.Errorf("%s: line %d: %w", errPrefix, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
