//go:build race

package jsonl

// raceEnabled gates the AllocsPerRun regression tests: race
// instrumentation allocates per memory access, so allocation bounds
// only hold in normal builds.
const raceEnabled = true
