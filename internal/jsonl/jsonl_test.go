package jsonl

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

type rec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	in := []rec{{"a", 1}, {"b", 2}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal[rec]("test", data)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v %v", err, out)
	}
}

func TestBlankLinesSkippedErrorsCarryLineNumbers(t *testing.T) {
	t.Parallel()
	out, err := Unmarshal[rec]("test", []byte("\n{\"name\":\"x\"}\n\n"))
	if err != nil || len(out) != 1 {
		t.Fatalf("blank lines: %v %d", err, len(out))
	}
	_, err = Unmarshal[rec]("test", []byte("{\"name\":\"x\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "test: line 2") {
		t.Fatalf("error should carry prefix and line: %v", err)
	}
}

func TestUnmarshalNoTrailingNewline(t *testing.T) {
	t.Parallel()
	out, err := Unmarshal[rec]("test", []byte("{\"name\":\"a\"}\n{\"name\":\"b\",\"n\":2}"))
	if err != nil || len(out) != 2 || out[1].N != 2 {
		t.Fatalf("unterminated final line: %v %v", err, out)
	}
}

func TestUnmarshalHugeLine(t *testing.T) {
	t.Parallel()
	// The old scanner-based decoder capped lines at 16 MiB and paid a
	// fixed 1 MiB scratch buffer; the in-place splitter has no line cap.
	big := rec{Name: strings.Repeat("x", 2<<20), N: 7}
	data, err := Marshal([]rec{big})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal[rec]("test", data)
	if err != nil || len(out) != 1 || out[0].N != 7 || len(out[0].Name) != 2<<20 {
		t.Fatalf("huge line: %v", err)
	}
}

func TestLines(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a\n", 1},
		{"a", 1},
		{"a\nb\n", 2},
		{"a\nb", 2},
		{"\n\n", 2},
	} {
		if got := Lines([]byte(tc.in)); got != tc.want {
			t.Errorf("Lines(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDecoderStreams(t *testing.T) {
	t.Parallel()
	in := []rec{{"a", 1}, {"b", 2}, {"c", 3}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder[rec]("test", data)
	for i := range in {
		v, ok, err := d.Next()
		if err != nil || !ok || v != in[i] {
			t.Fatalf("record %d: %v %v %v", i, v, ok, err)
		}
	}
	if _, ok, err := d.Next(); ok || err != nil {
		t.Fatalf("decoder should be exhausted: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := d.Next(); ok {
		t.Fatal("exhausted decoder must stay exhausted")
	}
}

func TestDecoderErrorCarriesLineNumber(t *testing.T) {
	t.Parallel()
	d := NewDecoder[rec]("test", []byte("{\"name\":\"a\"}\n\nbroken\n"))
	if _, ok, err := d.Next(); !ok || err != nil {
		t.Fatalf("first record: %v %v", ok, err)
	}
	_, _, err := d.Next()
	if err == nil || !strings.Contains(err.Error(), "test: line 3") {
		t.Fatalf("blank-line-aware line number: %v", err)
	}
}

func TestMarshalPooledBufferIsolation(t *testing.T) {
	t.Parallel()
	// Two encodes back to back must not share backing storage.
	a, err := Marshal([]rec{{"first", 1}})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := string(a)
	if _, err := Marshal([]rec{{"second-longer-name", 2}}); err != nil {
		t.Fatal(err)
	}
	if string(a) != snapshot {
		t.Fatal("Marshal result aliased the pooled buffer")
	}
}

// benchRecords is sized like a real study artifact shard: enough lines
// that the old per-call 1 MiB scratch and doubling growth showed up.
func benchRecords(n int) []rec {
	out := make([]rec, n)
	for i := range out {
		out[i] = rec{Name: fmt.Sprintf("record-%04d", i), N: i}
	}
	return out
}

func TestMarshalAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
	in := benchRecords(512)
	// Warm the pool so steady-state is measured.
	if _, err := Marshal(in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Marshal(in); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state: one interface boxing per record (encoding/json's
	// Encode signature) plus the right-sized output copy. The old codec
	// re-grew the buffer every call on top of that.
	if allocs > float64(len(in))+16 {
		t.Fatalf("Marshal allocates too much: %.0f allocs/run", allocs)
	}
}

func TestUnmarshalAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
	in := benchRecords(512)
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		out, err := Unmarshal[rec]("test", data)
		if err != nil || len(out) != len(in) {
			t.Fatal(err)
		}
	})
	// One output slice (newline-counted preallocation) plus
	// encoding/json's per-record decode cost (~6 allocs for this
	// shape); the old scanner paid a fixed 1 MiB buffer and log2(n)
	// growth copies on top.
	if allocs > float64(len(in))*8+16 {
		t.Fatalf("Unmarshal allocates too much: %.0f allocs/run", allocs)
	}
}

func TestUnmarshalSmallInputNoMegabyteScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
	data := []byte("{\"name\":\"a\",\"n\":1}\n")
	var sink []rec
	avg := testing.AllocsPerRun(50, func() {
		out, err := Unmarshal[rec]("test", data)
		if err != nil {
			t.Fatal(err)
		}
		sink = out
	})
	_ = sink
	// Decoding one ten-byte-scale line must stay in single-digit
	// allocations — the regression this guards is the fixed 1 MiB
	// scanner buffer the old decoder allocated per call.
	if avg > 8 {
		t.Fatalf("small decode allocates %.0f allocs/run", avg)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := Unmarshal[rec]("test", data)
	runtime.ReadMemStats(&after)
	if err != nil || len(out) != 1 {
		t.Fatal(err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<18 {
		t.Fatalf("small decode allocated %d bytes (old codec paid 1 MiB scratch)", grew)
	}
}
