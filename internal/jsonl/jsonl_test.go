package jsonl

import (
	"reflect"
	"strings"
	"testing"
)

type rec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	in := []rec{{"a", 1}, {"b", 2}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal[rec]("test", data)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v %v", err, out)
	}
}

func TestBlankLinesSkippedErrorsCarryLineNumbers(t *testing.T) {
	t.Parallel()
	out, err := Unmarshal[rec]("test", []byte("\n{\"name\":\"x\"}\n\n"))
	if err != nil || len(out) != 1 {
		t.Fatalf("blank lines: %v %d", err, len(out))
	}
	_, err = Unmarshal[rec]("test", []byte("{\"name\":\"x\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "test: line 2") {
		t.Fatalf("error should carry prefix and line: %v", err)
	}
}
