//go:build !race

package jsonl

const raceEnabled = false
