package report

import (
	"strings"
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
)

func TestTable1ContainsAllEnvironments(t *testing.T) {
	envs, err := apps.StudyEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	out := Table1(envs)
	for _, want := range []string{"On-Premises A", "AWS ParallelCluster", "Azure CycleCloud",
		"Google Compute Engine", "Google GKE", "Azure AKS", "AWS EKS", "Slurm", "LSF", "Flux",
		"containerd", "singularity", "[not deployed]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2ContainsCatalog(t *testing.T) {
	out := Table2(cloud.NewCatalog())
	for _, want := range []string{"Hpc6a", "HB96rs v3", "c2d-standard-112", "p3dn.24xlarge",
		"ND40rs v2", "n1-standard-32", "InfiniBand HDR", "EFA Gen1.5", "Omni-Path 100",
		"$2.88", "$34.33", "–"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	rows := []core.CostRow{
		{EnvKey: "azure-aks-gpu", Label: "Azure AKS", Acc: cloud.GPU, RateUSD: 22.03, TotalUSD: 13.82},
		{EnvKey: "aws-eks-cpu", Label: "AWS EKS", Acc: cloud.CPU, RateUSD: 2.88, TotalUSD: 263.75},
	}
	out := Table4(rows)
	for _, want := range []string{"Azure AKS", "$22.03", "$13.82", "AWS EKS", "$263.75"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &metrics.Figure{Title: "lammps", XLabel: "nodes", YLabel: "Matom/s", HigherIsBetter: true}
	fig.Get("a").Add(32, metrics.Summary{Mean: 10, Stddev: 1, N: 5})
	fig.Get("b").Add(64, metrics.Summary{Mean: 20, Stddev: 2, N: 5})
	out := Figure(fig)
	for _, want := range []string{"lammps", "nodes", "10 ± 1", "20 ± 2", "–"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	csv := FigureCSV(fig)
	if !strings.Contains(csv, "32,a,10,1,5") || !strings.Contains(csv, "64,b,20,2,5") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
}

func TestOSUSeriesRendering(t *testing.T) {
	m, err := network.Lookup(cloud.InfiniBandHDR)
	if err != nil {
		t.Fatal(err)
	}
	series := network.RunLatency(m, network.Path{Colocated: true}, 5, sim.NewStream(1, "osu"))
	out := OSUSeries("osu_latency azure-cyclecloud", "µs", series)
	if !strings.Contains(out, "osu_latency") || !strings.Contains(out, "1048576") {
		t.Errorf("OSU series missing content:\n%s", out)
	}
}

func TestCostsRendering(t *testing.T) {
	out := Costs(map[cloud.Provider]float64{cloud.AWS: 31565, cloud.Azure: 31056, cloud.Google: 26482})
	for _, want := range []string{"aws", "$31565.00", "azure", "google"} {
		if !strings.Contains(out, want) {
			t.Errorf("costs missing %q:\n%s", want, out)
		}
	}
}
