package report

import (
	"strings"
	"testing"

	"cloudhpc/internal/core"
)

func TestMarkdownReportComplete(t *testing.T) {
	st, err := core.New(77)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	md, err := Markdown(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Usability (Table 3)",
		"## AMG2023 costs (Table 4)",
		"## Study spend (§3.4)",
		"Figure 1 — Kripke",
		"Figure 4b — LAMMPS (GPU)",
		"## Hookup times (§3.2)",
		"## GPU fleet audit (§3.3)",
		"supermarket fish",
		"## Failed runs",
		"| azure-aks-cpu |", // a Table 3 row
		"laghos",            // a known failure
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Markdown tables must be well-formed: every table row line starts
	// and ends with a pipe.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Fatalf("malformed table row: %q", line)
		}
	}
	if len(md) < 5000 {
		t.Fatalf("report suspiciously short: %d bytes", len(md))
	}
}
