package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

// Markdown renders a complete study report — the machine-written analogue
// of the paper's results section — from one study dataset.
func Markdown(res *core.Results) (string, error) {
	var b strings.Builder
	b.WriteString("# Cloud HPC usability study — simulated reproduction report\n\n")
	fmt.Fprintf(&b, "Dataset: %d runs across %d deployable environments.\n\n",
		len(res.Runs), len(apps.Deployable(res.Envs)))

	// Usability.
	b.WriteString("## Usability (Table 3)\n\n")
	writeUsabilityMD(&b, res.Table3())

	// Costs.
	b.WriteString("\n## AMG2023 costs (Table 4)\n\n")
	b.WriteString("| Environment | Acc | $/hr | Total |\n|---|---|---:|---:|\n")
	for _, row := range res.Table4() {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f |\n", row.Label, row.Acc, row.RateUSD, row.TotalUSD)
	}

	b.WriteString("\n## Study spend (§3.4)\n\n| Cloud | Spend |\n|---|---:|\n")
	costs := res.StudyCosts()
	provs := make([]string, 0, len(costs))
	for p := range costs {
		provs = append(provs, string(p))
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Fprintf(&b, "| %s | $%.0f |\n", p, costs[cloud.Provider(p)])
	}

	// Figures.
	b.WriteString("\n## Figures\n")
	for _, fig := range []struct {
		app   string
		acc   cloud.Accelerator
		title string
	}{
		{"kripke", cloud.CPU, "Figure 1 — Kripke grind time (CPU, lower is better)"},
		{"amg2023", cloud.CPU, "Figure 2a — AMG2023 (CPU)"},
		{"amg2023", cloud.GPU, "Figure 2b — AMG2023 (GPU)"},
		{"laghos", cloud.CPU, "Figure 3 — Laghos (CPU)"},
		{"lammps", cloud.CPU, "Figure 4a — LAMMPS (CPU)"},
		{"lammps", cloud.GPU, "Figure 4b — LAMMPS (GPU)"},
		{"minife", cloud.CPU, "Figure 6a — MiniFE (CPU)"},
		{"minife", cloud.GPU, "Figure 6b — MiniFE (GPU)"},
		{"mt-gemm", cloud.GPU, "Figure 7 — MT-GEMM (GPU)"},
		{"quicksilver", cloud.CPU, "Figure 8 — Quicksilver (CPU)"},
	} {
		f, err := res.FigureFor(fig.app, fig.acc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n### %s\n\n", fig.title)
		writeFigureMD(&b, f)
	}

	// Hookups.
	b.WriteString("\n## Hookup times (§3.2)\n\n| Environment | Nodes | Hookup |\n|---|---:|---:|\n")
	for _, spec := range apps.Deployable(res.Envs) {
		nodes, times := res.HookupSeries(spec.Key)
		for i, n := range nodes {
			fmt.Fprintf(&b, "| %s | %d | %v |\n", spec.Key, n, times[i].Round(100*time.Millisecond))
		}
	}

	// ECC + findings.
	b.WriteString("\n## GPU fleet audit (§3.3)\n\n| Environment | ECC on |\n|---|---:|\n")
	keys := make([]string, 0, len(res.ECCOn))
	for k := range res.ECCOn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "| %s | %.1f%% |\n", k, res.ECCOn[k]*100)
	}
	if len(res.Findings) > 0 {
		b.WriteString("\nSingle-node anomalies (the supermarket fish problem):\n\n")
		for _, f := range res.Findings {
			fmt.Fprintf(&b, "- `%s`: %s\n", f.NodeID, f.Detail)
		}
	}

	// Failures.
	b.WriteString("\n## Failed runs\n\n| Environment | Application | Failures |\n|---|---|---:|\n")
	fails := res.FailureSummary()
	envKeys := make([]string, 0, len(fails))
	for k := range fails {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, env := range envKeys {
		appNames := make([]string, 0, len(fails[env]))
		for a := range fails[env] {
			appNames = append(appNames, a)
		}
		sort.Strings(appNames)
		for _, a := range appNames {
			fmt.Fprintf(&b, "| %s | %s | %d |\n", env, a, fails[env][a])
		}
	}

	// Fault injection (only present on chaotic runs).
	if len(res.Incidents) > 0 {
		b.WriteString("\n## Fault injection & recovery\n\n")
		fmt.Fprintf(&b, "%d incidents injected. Recovery accounting:\n\n", len(res.Incidents))
		b.WriteString("| Metric | Value |\n|---|---:|\n")
		rec := res.Recovery
		fmt.Fprintf(&b, "| Preemptions | %d |\n", rec.Preemptions)
		fmt.Fprintf(&b, "| Re-queued jobs | %d |\n", rec.RequeuedJobs)
		fmt.Fprintf(&b, "| Capacity stockouts | %d |\n", rec.Stockouts)
		fmt.Fprintf(&b, "| Quota revocations | %d |\n", rec.QuotaRevocations)
		fmt.Fprintf(&b, "| Degraded runs | %d |\n", rec.DegradedRuns)
		fmt.Fprintf(&b, "| Pull retries | %d |\n", rec.PullRetries)
		fmt.Fprintf(&b, "| Lost node-hours | %.1f |\n", rec.LostNodeHours)
		fmt.Fprintf(&b, "| Est. billing impact | $%.2f |\n", rec.BillingDeltaUSD)
		b.WriteString("\n| Time | Environment | Kind | Detail |\n|---:|---|---|---|\n")
		for _, inc := range res.Incidents {
			fmt.Fprintf(&b, "| %v | %s | %s | %s |\n", inc.At.Round(time.Second), inc.Env, inc.Kind, inc.Detail)
		}
	}
	return b.String(), nil
}

// writeUsabilityMD renders the Table 3 grid.
func writeUsabilityMD(b *strings.Builder, as []usability.Assessment) {
	b.WriteString("| Environment | Setup | Development | App setup | Manual |\n|---|---|---|---|---|\n")
	for _, a := range as {
		fmt.Fprintf(b, "| %s | %s | %s | %s | %s |\n", a.Env,
			a.Scores[trace.Setup], a.Scores[trace.Development],
			a.Scores[trace.AppSetup], a.Scores[trace.Manual])
	}
}

// writeFigureMD renders a figure as a markdown table.
func writeFigureMD(b *strings.Builder, fig *metrics.Figure) {
	xsSet := map[float64]bool{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(b, "| %s |", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(b, " %s |", s.Label)
	}
	b.WriteString("\n|---|")
	for range fig.Series {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(b, "| %.0f |", x)
		for _, s := range fig.Series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(b, " %.4g ± %.2g |", y.Mean, y.Stddev)
			} else {
				b.WriteString(" – |")
			}
		}
		b.WriteString("\n")
	}
}
