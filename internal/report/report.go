// Package report renders the study's tables and figures as aligned text
// and CSV — the output layer behind cmd/figures and the bench harness.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/core"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/network"
)

// Table1 renders the environment-characteristics matrix (paper Table 1).
func Table1(envs []apps.EnvSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-28s %-10s %-12s\n", "Acc", "Environment", "Scheduler", "Containers")
	for _, e := range envs {
		containers := "No"
		if e.ContainerRuntime != "" {
			containers = "Yes (" + e.ContainerRuntime + ")"
		}
		note := ""
		if e.Unavailable != "" {
			note = "  [not deployed]"
		}
		fmt.Fprintf(&b, "%-4s %-28s %-10s %-12s%s\n", e.Acc, e.Label, e.Scheduler, containers, note)
	}
	return b.String()
}

// Table2 renders the nodes-and-network inventory (paper Table 2).
func Table2(cat *cloud.Catalog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s %-28s %-6s %-8s %-24s %-8s\n",
		"Node Type", "Provider", "Processor/GPU", "Cores", "Memory", "Network", "Cost/Hr")
	for _, it := range cat.All() {
		proc := it.Processor
		if it.GPUs > 0 {
			proc = fmt.Sprintf("%s/%s", it.Processor, it.GPUModel)
		}
		cost := "–"
		if it.HourlyUSD > 0 {
			cost = fmt.Sprintf("$%.2f", it.HourlyUSD)
		}
		fmt.Fprintf(&b, "%-20s %-10s %-28s %-6d %-8s %-24s %-8s\n",
			it.Name, it.Provider, proc, it.Cores, fmt.Sprintf("%dGB", it.MemoryGB), it.Fabric, cost)
	}
	return b.String()
}

// Table4 renders AMG2023 total costs by environment (paper Table 4).
func Table4(rows []core.CostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-6s %-10s %-10s\n", "Environment", "Acc", "Cost/Hr", "Total Cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %-6s $%-9.2f $%-9.2f\n", r.Label, r.Acc, r.RateUSD, r.TotalUSD)
	}
	return b.String()
}

// Figure renders a figure as an aligned table: one row per x value, one
// column per series (mean ± stddev).
func Figure(fig *metrics.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s; higher-is-better=%v)\n", fig.Title, fig.YLabel, fig.HigherIsBetter)
	xsSet := map[float64]bool{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(&b, "%-10s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(&b, " %-28s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-10.0f", x)
		for _, s := range fig.Series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(&b, " %-28s", fmt.Sprintf("%.4g ± %.3g", y.Mean, y.Stddev))
			} else {
				fmt.Fprintf(&b, " %-28s", "–")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FigureCSV renders a figure as CSV with columns x,label,mean,stddev,n.
func FigureCSV(fig *metrics.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,series,mean,stddev,n\n")
	for _, s := range fig.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g,%s,%g,%g,%d\n", p.X, s.Label, p.Y.Mean, p.Y.Stddev, p.Y.N)
		}
	}
	return b.String()
}

// OSUSeries renders an OSU sweep (message size → value).
func OSUSeries(title, unit string, series []network.OSUSample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s)\n%-12s %s\n", title, unit, "bytes", "value")
	for _, s := range series {
		fmt.Fprintf(&b, "%-12.0f %.4g\n", s.Bytes, s.Value)
	}
	return b.String()
}

// Recovery renders the chaos recovery accounting: what injected faults
// cost the study in preemptions, re-queues, lost node-hours, and dollars.
func Recovery(rec core.Recovery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %d\n", "preemptions", rec.Preemptions)
	fmt.Fprintf(&b, "%-22s %d\n", "re-queued jobs", rec.RequeuedJobs)
	fmt.Fprintf(&b, "%-22s %d\n", "capacity stockouts", rec.Stockouts)
	fmt.Fprintf(&b, "%-22s %d\n", "quota revocations", rec.QuotaRevocations)
	fmt.Fprintf(&b, "%-22s %d\n", "degraded runs", rec.DegradedRuns)
	fmt.Fprintf(&b, "%-22s %d\n", "pull retries", rec.PullRetries)
	fmt.Fprintf(&b, "%-22s %.1f\n", "lost node-hours", rec.LostNodeHours)
	fmt.Fprintf(&b, "%-22s $%.2f\n", "est. billing impact", rec.BillingDeltaUSD)
	return b.String()
}

// Incidents renders the injected-fault transcript, one incident per line
// in campaign-timeline order.
func Incidents(incs []core.Incident) string {
	var b strings.Builder
	for _, inc := range incs {
		fmt.Fprintf(&b, "%10s  %-26s %-14s %s\n", inc.At.Round(time.Second), inc.Env, inc.Kind, inc.Detail)
	}
	return b.String()
}

// Costs renders the per-cloud study spend (paper §3.4).
func Costs(costs map[cloud.Provider]float64) string {
	var b strings.Builder
	provs := make([]string, 0, len(costs))
	for p := range costs {
		provs = append(provs, string(p))
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Fprintf(&b, "%-10s $%.2f\n", p, costs[cloud.Provider(p)])
	}
	return b.String()
}
