package sim

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic random-number stream. Streams are derived from a
// simulation seed plus a name, so that adding a new consumer of randomness
// does not perturb the draws seen by existing consumers — a property plain
// shared math/rand sources do not have and one that keeps every table in the
// study stable as the codebase grows.
//
// The generator is splitmix64, which is tiny, fast, and passes BigCrush for
// the purposes of a simulation of this kind.
type Stream struct {
	state uint64
}

// NewStream derives a stream from a root seed and a name. The same
// (seed, name) pair always yields the same stream.
func NewStream(seed uint64, name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Stream{state: seed ^ h.Sum64() ^ 0x9e3779b97f4a7c15}
}

// next64 advances the splitmix64 state and returns the next 64-bit value.
func (s *Stream) next64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 { return s.next64() }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.next64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(s.next64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying normal
// has the given mu and sigma. Useful for modelling long-tailed durations
// such as provisioning times.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Jitter returns base scaled by a relative noise factor: base*(1+N(0, rel)).
// The result is clamped to be non-negative. This is the standard way the
// application models add run-to-run variation to a figure of merit.
func (s *Stream) Jitter(base, rel float64) float64 {
	v := base * (1 + s.Normal(0, rel))
	if v < 0 {
		return 0
	}
	return v
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.PermInto(nil, n) }

// PermInto writes a random permutation of [0, n) into buf's backing
// array (growing it only when the capacity is short) and returns it —
// the draw-scratch form for hot loops that permute repeatedly. The draw
// sequence is identical to Perm's.
func (s *Stream) PermInto(buf []int, n int) []int {
	var p []int
	if cap(buf) >= n {
		p = buf[:n]
	} else {
		p = make([]int, n)
	}
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
