package sim

import "time"

// Simulation bundles a virtual clock, an event queue, and a root seed from
// which all named random streams are derived. It is the spine every
// substrate (cloud provisioner, schedulers, network models) hangs off.
type Simulation struct {
	Clock Clock
	Queue EventQueue

	seed    uint64
	streams map[string]*Stream
}

// New creates a simulation with the given root seed.
func New(seed uint64) *Simulation {
	return &Simulation{seed: seed, streams: make(map[string]*Stream)}
}

// Seed returns the root seed the simulation was created with.
func (s *Simulation) Seed() uint64 { return s.seed }

// Stream returns the named random stream, creating it on first use.
// Repeated calls with the same name return the same stream instance, so
// consumers observe a continuous sequence of draws.
func (s *Simulation) Stream(name string) *Stream {
	st, ok := s.streams[name]
	if !ok {
		st = NewStream(s.seed, name)
		s.streams[name] = st
	}
	return st
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.Clock.Now() }

// After schedules fn to run d after the current virtual time.
func (s *Simulation) After(d time.Duration, name string, fn func()) {
	s.Queue.Schedule(s.Clock.Now()+d, name, fn)
}

// Step runs the single next event, advancing the clock to it.
// It reports whether an event was run.
func (s *Simulation) Step() bool {
	e := s.Queue.Pop()
	if e == nil {
		return false
	}
	s.Clock.AdvanceTo(e.At)
	e.Fn()
	s.Queue.recycle(e)
	return true
}

// Run drains the event queue, advancing the clock as it goes, and returns
// the number of events executed.
func (s *Simulation) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with At <= deadline, leaving later events queued.
// The clock finishes at deadline (or at the last event time if the queue
// drains early — it never exceeds deadline).
func (s *Simulation) RunUntil(deadline time.Duration) int {
	n := 0
	for {
		at, ok := s.Queue.PeekTime()
		if !ok || at > deadline {
			break
		}
		s.Step()
		n++
	}
	if s.Clock.Now() < deadline {
		s.Clock.AdvanceTo(deadline)
	}
	return n
}
