// Package sim provides the discrete-event simulation kernel used by every
// substrate in cloudhpc: a virtual clock, an event queue with deterministic
// tie-breaking, and named, reproducible random-number streams.
//
// Nothing in this package touches the wall clock. Two simulations built with
// the same seed and the same sequence of operations produce byte-identical
// results, which is what makes the study tables reproducible.
//
// A Simulation and its Clock are single-owner: they are not safe for
// concurrent use, and the concurrent study executor in package core never
// shares them — each environment shard constructs its own Simulation from
// the study's root seed. Determinism across shards comes from Stream's
// derivation rule: a stream is seeded by (root seed, name) only, so any
// simulation with the same seed observes the same draws for the same
// name, no matter when or on which goroutine it asks.
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual simulation clock. The zero value starts at time zero.
// Clock is not safe for concurrent use; a Simulation owns exactly one.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative, because
// a discrete-event simulation must never move backwards in time.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock cannot move backwards (advance by %v)", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock cannot move backwards (to %v, now %v)", t, c.now))
	}
	c.now = t
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }
