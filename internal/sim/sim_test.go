package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	t.Parallel()
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock should start at 0, got %v", c.Now())
	}
	c.Advance(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	c.AdvanceTo(7 * time.Second)
	if c.Now() != 7*time.Second {
		t.Fatalf("Now = %v, want 7s", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset did not zero the clock")
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on negative advance")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestClockPanicsOnAdvanceToPast(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on AdvanceTo into the past")
		}
	}()
	var c Clock
	c.Advance(time.Minute)
	c.AdvanceTo(time.Second)
}

func TestEventQueueOrdering(t *testing.T) {
	t.Parallel()
	var q EventQueue
	var got []string
	q.Schedule(3*time.Second, "c", func() { got = append(got, "c") })
	q.Schedule(1*time.Second, "a", func() { got = append(got, "a") })
	q.Schedule(2*time.Second, "b", func() { got = append(got, "b") })
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Fn()
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	t.Parallel()
	var q EventQueue
	var got []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		q.Schedule(time.Second, name, func() { got = append(got, name) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	if got[0] != "first" || got[1] != "second" || got[2] != "third" {
		t.Fatalf("same-time events not FIFO: %v", got)
	}
}

func TestSimulationRun(t *testing.T) {
	t.Parallel()
	s := New(42)
	var fired []time.Duration
	s.After(2*time.Second, "later", func() { fired = append(fired, s.Now()) })
	s.After(1*time.Second, "sooner", func() {
		fired = append(fired, s.Now())
		// Events may schedule further events.
		s.After(3*time.Second, "nested", func() { fired = append(fired, s.Now()) })
	})
	n := s.Run()
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	t.Parallel()
	s := New(1)
	ran := 0
	s.After(1*time.Second, "in", func() { ran++ })
	s.After(10*time.Second, "out", func() { ran++ })
	n := s.RunUntil(5 * time.Second)
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil ran %d (cb %d), want 1", n, ran)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
	if s.Queue.Len() != 1 {
		t.Fatalf("queue should retain the later event")
	}
}

func TestStreamDeterminism(t *testing.T) {
	t.Parallel()
	a := NewStream(99, "apps/lammps")
	b := NewStream(99, "apps/lammps")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical (seed,name) diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	t.Parallel()
	a := NewStream(99, "apps/lammps")
	b := NewStream(99, "apps/kripke")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently named streams produced %d identical draws", same)
	}
}

func TestSimulationStreamIsStable(t *testing.T) {
	t.Parallel()
	s := New(7)
	first := s.Stream("x").Uint64()
	// Same name must return the same stream (continuing, not restarting).
	second := s.Stream("x").Uint64()
	if first == second {
		t.Fatalf("stream restarted instead of continuing")
	}
	fresh := NewStream(7, "x")
	if fresh.Uint64() != first {
		t.Fatalf("Simulation.Stream not derived from (seed, name)")
	}
}

func TestNormalMoments(t *testing.T) {
	t.Parallel()
	s := NewStream(123, "normal")
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev = %f, want ~2", math.Sqrt(variance))
	}
}

func TestJitterNonNegative(t *testing.T) {
	t.Parallel()
	s := NewStream(5, "jitter")
	for i := 0; i < 10000; i++ {
		if v := s.Jitter(1.0, 5.0); v < 0 {
			t.Fatalf("Jitter returned negative value %f", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		s := NewStream(seed, "range")
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := NewStream(seed, "intn")
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		s := NewStream(seed, "perm")
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformBounds(t *testing.T) {
	t.Parallel()
	s := NewStream(11, "uniform")
	for i := 0; i < 10000; i++ {
		v := s.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform out of range: %f", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	t.Parallel()
	s := NewStream(13, "bern")
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatalf("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1.1) {
			t.Fatalf("Bernoulli(>1) returned false")
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	t.Parallel()
	s := NewStream(17, "lognormal")
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %f", v)
		}
	}
}
