package sim

import (
	"container/heap"
	"time"
)

// Event is a unit of scheduled work in the simulation. Fn runs when the
// clock reaches At. Events at the same virtual time run in the order they
// were scheduled (FIFO), which keeps simulations deterministic.
type Event struct {
	At   time.Duration
	Name string
	Fn   func()

	seq int // tie-breaker: insertion order
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a priority queue of events keyed by virtual time.
// The zero value is ready to use.
type EventQueue struct {
	h   eventHeap
	seq int

	// free recycles executed Event structs (Simulation.Step returns them
	// via recycle once their Fn has run); a steady-state simulation then
	// allocates one Event per level of queue depth, not one per schedule.
	free []*Event
}

// Schedule enqueues fn to run at virtual time at.
func (q *EventQueue) Schedule(at time.Duration, name string, fn func()) {
	q.seq++
	var e *Event
	if n := len(q.free); n > 0 {
		e, q.free = q.free[n-1], q.free[:n-1]
	} else {
		e = new(Event)
	}
	*e = Event{At: at, Name: name, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
}

// recycle returns an executed event to the freelist. Only safe once no
// caller retains the pointer — Simulation.Step calls it after running Fn;
// external Pop callers simply never feed the freelist.
func (q *EventQueue) recycle(e *Event) {
	*e = Event{}
	q.free = append(q.free, e)
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// PeekTime returns the virtual time of the next event. The boolean is false
// when the queue is empty.
func (q *EventQueue) PeekTime() (time.Duration, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the next event, or nil if the queue is empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}
