package sim

import (
	"container/heap"
	"time"
)

// Event is a unit of scheduled work in the simulation. Fn runs when the
// clock reaches At. Events at the same virtual time run in the order they
// were scheduled (FIFO), which keeps simulations deterministic.
type Event struct {
	At   time.Duration
	Name string
	Fn   func()

	seq int // tie-breaker: insertion order
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a priority queue of events keyed by virtual time.
// The zero value is ready to use.
type EventQueue struct {
	h   eventHeap
	seq int
}

// Schedule enqueues fn to run at virtual time at.
func (q *EventQueue) Schedule(at time.Duration, name string, fn func()) {
	q.seq++
	heap.Push(&q.h, &Event{At: at, Name: name, Fn: fn, seq: q.seq})
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// PeekTime returns the virtual time of the next event. The boolean is false
// when the queue is empty.
func (q *EventQueue) PeekTime() (time.Duration, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the next event, or nil if the queue is empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}
