package sim

import "testing"

// Allocation-regression pins for the draw helpers: application models
// call them once per simulated run, so any allocation here multiplies
// across the whole study. The scalar draws must stay pure arithmetic,
// and PermInto must reuse a caller buffer instead of growing.

func TestDrawHelperAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	s := NewStream(42, "alloc-test")
	if got := testing.AllocsPerRun(200, func() {
		_ = s.Float64()
		_ = s.Intn(97)
		_ = s.Uniform(1, 2)
		_ = s.Normal(10, 2)
		_ = s.LogNormal(0, 0.5)
		_ = s.Jitter(100, 0.05)
		_ = s.Bernoulli(0.3)
	}); got > 0 {
		t.Errorf("scalar draw helpers allocate %.1f/op, want 0", got)
	}
}

func TestPermIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are off under -race")
	}
	s := NewStream(42, "alloc-test")
	buf := make([]int, 256)
	if got := testing.AllocsPerRun(100, func() { buf = s.PermInto(buf, 256) }); got > 0 {
		t.Errorf("PermInto with a full-size buffer allocates %.1f/op, want 0", got)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	// The reuse form must draw the exact same sequence as Perm — the
	// permutation order feeds the study's sampled tables, so any drift
	// here is an output-determinism break, not just a perf change.
	a := NewStream(7, "perm")
	b := NewStream(7, "perm")
	buf := make([]int, 0, 64)
	for _, n := range []int{1, 2, 17, 64} {
		want := a.Perm(n)
		buf = b.PermInto(buf, n)
		if len(want) != len(buf) {
			t.Fatalf("n=%d: length mismatch %d vs %d", n, len(want), len(buf))
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("n=%d: PermInto diverges from Perm at index %d: %d vs %d", n, i, buf[i], want[i])
			}
		}
	}
}

func BenchmarkStreamDraws(b *testing.B) {
	s := NewStream(42, "bench")
	perm := make([]int, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Jitter(100, 0.05)
		_ = s.LogNormal(0, 0.5)
		_ = s.Bernoulli(0.3)
		_ = s.Intn(97)
		perm = s.PermInto(perm, 64)
	}
}
