package k8s

import (
	"strings"
	"testing"
)

func TestGetNodesRendering(t *testing.T) {
	nodes := testNodes(3, 48, 8)
	nodes[1].Healthy = false
	nodes[2].VisibleCores = 2 // the fish
	ps := NewPodScheduler(nodes)
	ps.Schedule(&Pod{Name: "p", Request: ResourceRequest{Cores: 4, GPUs: 1}})
	out := ps.GetNodes()
	if !strings.Contains(out, "NotReady") {
		t.Fatalf("unhealthy node not shown:\n%s", out)
	}
	if !strings.Contains(out, "4/48") || !strings.Contains(out, "1/8") {
		t.Fatalf("commitment not shown:\n%s", out)
	}
	if !strings.Contains(out, "0/2") && !strings.Contains(out, "2\n") {
		// The fish node's 2-core capacity must be visible.
		if !strings.Contains(out, "/2") {
			t.Fatalf("fish capacity not shown:\n%s", out)
		}
	}
}

func TestGetPodsRendering(t *testing.T) {
	ps := NewPodScheduler(testNodes(2, 48, 0))
	ps.Schedule(&Pod{Name: "broker-0", Labels: map[string]string{"app": "flux-minicluster", "rank": "0"},
		Request: ResourceRequest{Cores: 1}})
	out := ps.GetPods(nil)
	if !strings.Contains(out, "broker-0") || !strings.Contains(out, "Running") {
		t.Fatalf("pods missing:\n%s", out)
	}
	if !strings.Contains(out, "app=flux-minicluster,rank=0") {
		t.Fatalf("labels not sorted/rendered:\n%s", out)
	}
}

func TestDescribeMiniCluster(t *testing.T) {
	ps := NewPodScheduler(testNodes(4, 48, 8))
	op := NewOperator(ps, 4, 2, 24, 4)
	mc := &MiniClusterResource{Spec: MiniClusterSpec{Name: "study", Size: 4, Image: "lammps-azure-GPU"}}
	if err := op.Reconcile(mc); err != nil {
		t.Fatal(err)
	}
	out := mc.Describe()
	for _, want := range []string{"Name:         study", "Phase:        Ready",
		"ReadyBrokers: 4", "LeadBroker:   study-0", "flux-framework.org"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe missing %q:\n%s", want, out)
		}
	}
}
