package k8s

import (
	"fmt"
	"sort"
	"strings"
)

// kubectl-style views of the simulated cluster — the interface the study
// team actually watched while debugging daemonsets and MiniClusters.

// GetNodes renders `kubectl get nodes` with capacity and commitment.
func (ps *PodScheduler) GetNodes() string {
	sorted := append([]string(nil), nodeIDs(ps)...)
	sort.Strings(sorted)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %-12s %-12s\n", "NAME", "STATUS", "CPU(used/cap)", "GPU(used/cap)")
	for _, id := range sorted {
		n := nodeByID(ps, id)
		status := "Ready"
		if !n.Healthy {
			status = "NotReady"
		}
		used := ps.Committed(id)
		fmt.Fprintf(&b, "%-28s %-8s %-12s %-12s\n", id, status,
			fmt.Sprintf("%d/%d", used.Cores, n.VisibleCores),
			fmt.Sprintf("%d/%d", used.GPUs, n.VisibleGPUs))
	}
	return b.String()
}

// GetPods renders `kubectl get pods` (optionally filtered by selector).
func (ps *PodScheduler) GetPods(selector map[string]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %-10s %-28s %s\n", "NAME", "STATUS", "NODE", "LABELS")
	for _, p := range ps.Pods(selector) {
		labels := make([]string, 0, len(p.Labels))
		for k, v := range p.Labels {
			labels = append(labels, k+"="+v)
		}
		sort.Strings(labels)
		fmt.Fprintf(&b, "%-36s %-10s %-28s %s\n", p.Name, p.Phase, p.Node, strings.Join(labels, ","))
	}
	return b.String()
}

// Describe renders `kubectl describe miniclusters/<name>`.
func (mc *MiniClusterResource) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Name:         %s\n", mc.Spec.Name)
	fmt.Fprintf(&b, "Kind:         MiniCluster (flux-framework.org/v1alpha2)\n")
	fmt.Fprintf(&b, "Size:         %d\n", mc.Spec.Size)
	fmt.Fprintf(&b, "Image:        %s\n", mc.Spec.Image)
	fmt.Fprintf(&b, "Phase:        %s\n", mc.Status.Phase)
	fmt.Fprintf(&b, "ReadyBrokers: %d\n", mc.Status.ReadyBrokers)
	if mc.Status.Message != "" {
		fmt.Fprintf(&b, "Message:      %s\n", mc.Status.Message)
	}
	if lead := mc.LeadBroker(); lead != nil {
		fmt.Fprintf(&b, "LeadBroker:   %s (on %s)\n", lead.Name, lead.Node)
	}
	return b.String()
}

// nodeIDs and nodeByID are small helpers over the scheduler's pool.
func nodeIDs(ps *PodScheduler) []string {
	out := make([]string, 0, len(ps.nodes))
	for _, n := range ps.nodes {
		out = append(out, n.ID)
	}
	return out
}

func nodeByID(ps *PodScheduler, id string) *nodeView {
	for _, n := range ps.nodes {
		if n.ID == id {
			return &nodeView{Healthy: n.Healthy, VisibleCores: n.VisibleCores, VisibleGPUs: n.VisibleGPUs}
		}
	}
	return &nodeView{}
}

// nodeView decouples rendering from the cloud.Node type.
type nodeView struct {
	Healthy      bool
	VisibleCores int
	VisibleGPUs  int
}
