// Package k8s simulates the managed Kubernetes services of the study —
// EKS (v1.27), AKS (v1.29.7), and GKE (v1.29.7) — at the level the paper
// engages with them: node pools over provisioned instances, daemonsets
// that install networking drivers (EFA plugin, the team's custom AKS
// InfiniBand installer), the VPC CNI and its prefix-exhaustion failure at
// 256 nodes, and the Flux Operator deploying a Flux MiniCluster.
package k8s

import (
	"errors"
	"fmt"
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sched"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Service identifies a managed Kubernetes offering.
type Service string

const (
	EKS Service = "EKS" // Amazon Elastic Kubernetes Service
	AKS Service = "AKS" // Azure Kubernetes Service
	GKE Service = "GKE" // Google Kubernetes Engine
)

// Version returns the control-plane version used in the study (Table: EKS
// v1.27, AKS v1.29.7, GKE v1.29.7).
func (s Service) Version() string {
	switch s {
	case EKS:
		return "v1.27"
	case AKS, GKE:
		return "v1.29.7"
	default:
		return "unknown"
	}
}

// ServiceFor maps a provider to its Kubernetes service.
func ServiceFor(p cloud.Provider) (Service, error) {
	switch p {
	case cloud.AWS:
		return EKS, nil
	case cloud.Azure:
		return AKS, nil
	case cloud.Google:
		return GKE, nil
	default:
		return "", fmt.Errorf("k8s: provider %q has no managed Kubernetes service", p)
	}
}

// Errors surfaced by cluster operations.
var (
	ErrNetworkingNotReady = errors.New("k8s: high-performance networking not installed")
	ErrCNIPrefixExhausted = errors.New("k8s: CNI ran out of network prefixes")
	ErrDaemonSetFailed    = errors.New("k8s: daemonset rollout failed")
)

// DaemonSet is a per-node rollout. The study used daemonsets for the EFA
// device plugin, a custom AKS InfiniBand installer, and the patched VPC CNI.
type DaemonSet struct {
	Name string
	// InstallTime is the per-rollout time cost (paid once; rollouts are
	// parallel across nodes).
	InstallTime time.Duration
	// Custom marks team-developed daemonsets — counted as development
	// effort rather than routine setup.
	Custom bool
	// Provides names the capability the daemonset delivers, e.g.
	// "efa", "infiniband", "cni-prefix-delegation".
	Provides string
}

// Standard daemonsets of the study.
var (
	// EFADevicePlugin exposes the Elastic Fabric Adapter to pods on EKS.
	EFADevicePlugin = DaemonSet{Name: "aws-efa-k8s-device-plugin", InstallTime: 3 * time.Minute, Provides: "efa"}
	// AKSInfiniBandInstall is the custom daemonset the team developed to
	// install InfiniBand drivers on AKS — there were no comprehensive
	// instructions, hence a development-effort event.
	AKSInfiniBandInstall = DaemonSet{Name: "aks-infiniband-install", InstallTime: 8 * time.Minute, Custom: true, Provides: "infiniband"}
	// CNIPrefixDelegation is the patched VPC CNI daemonset enabling prefix
	// delegation, needed at 256 nodes on EKS.
	CNIPrefixDelegation = DaemonSet{Name: "aws-vpc-cni-prefix-delegation", InstallTime: 4 * time.Minute, Custom: true, Provides: "cni-prefix-delegation"}
	// NVIDIADevicePlugin exposes GPUs to pods; stock on all three services.
	NVIDIADevicePlugin = DaemonSet{Name: "nvidia-device-plugin", InstallTime: 2 * time.Minute, Provides: "gpu"}
)

// Cluster is a managed Kubernetes cluster over provisioned nodes.
type Cluster struct {
	Service Service
	Nodes   *cloud.Cluster

	sim *sim.Simulation
	log *trace.Log
	env string

	daemonsets map[string]DaemonSet
	miniOnce   bool
}

// NewCluster wraps a provisioned node pool in a Kubernetes control plane.
func NewCluster(s *sim.Simulation, log *trace.Log, env string, svc Service, nodes *cloud.Cluster) *Cluster {
	c := &Cluster{
		Service: svc, Nodes: nodes, sim: s, log: log, env: env,
		daemonsets: make(map[string]DaemonSet),
	}
	log.Addf(s.Now(), env, trace.Setup, trace.Routine,
		"%s %s control plane ready over %d nodes", svc, svc.Version(), nodes.Size())
	return c
}

// Apply rolls out a daemonset across all nodes. Custom daemonsets log a
// development-effort event (they had to be written first).
func (c *Cluster) Apply(ds DaemonSet) error {
	c.sim.Clock.Advance(ds.InstallTime)
	c.daemonsets[ds.Provides] = ds
	sev := trace.Routine
	cat := trace.Setup
	if ds.Custom {
		sev = trace.Blocking
		cat = trace.Development
	}
	c.log.Addf(c.sim.Now(), c.env, cat, sev, "daemonset %s rolled out (%s)", ds.Name, ds.Provides)
	return nil
}

// Has reports whether a capability has been installed.
func (c *Cluster) Has(capability string) bool {
	_, ok := c.daemonsets[capability]
	return ok
}

// networkingReady checks the per-provider fast-path requirement.
func (c *Cluster) networkingReady() error {
	switch c.Service {
	case EKS:
		if !c.Has("efa") {
			return fmt.Errorf("%w: EKS needs the EFA device plugin", ErrNetworkingNotReady)
		}
	case AKS:
		if !c.Has("infiniband") {
			return fmt.Errorf("%w: AKS needs the custom InfiniBand daemonset", ErrNetworkingNotReady)
		}
	case GKE:
		// GKE needed no special drivers in the study.
	}
	return nil
}

// checkCNI models the EKS CNI prefix exhaustion at 256 nodes: without the
// prefix-delegation patch, pod networking cannot be allocated.
func (c *Cluster) checkCNI() error {
	if c.Service == EKS && c.Nodes.Size() >= 256 && !c.Has("cni-prefix-delegation") {
		c.log.Addf(c.sim.Now(), c.env, trace.Development, trace.Blocking,
			"ran out of network prefixes for the CNI at %d nodes; patch prefix delegation", c.Nodes.Size())
		return ErrCNIPrefixExhausted
	}
	return nil
}

// MiniCluster is a Flux cluster deployed by the Flux Operator across the
// Kubernetes nodes: the unified scheduling layer of all the study's
// Kubernetes environments. Scheduler drives job execution in simulated
// time; Resource exposes the underlying CRD with its rank-ordered broker
// pods and nested Flux instance.
type MiniCluster struct {
	Scheduler *sched.Scheduler
	Size      int
	Resource  *MiniClusterResource
}

// DeployFluxOperator installs the Flux Operator and reconciles a
// MiniCluster spanning every node. GPU clusters also need the NVIDIA
// device plugin.
func (c *Cluster) DeployFluxOperator() (*MiniCluster, error) {
	if err := c.networkingReady(); err != nil {
		c.log.Addf(c.sim.Now(), c.env, trace.Development, trace.Unexpected, "flux operator blocked: %v", err)
		return nil, err
	}
	if err := c.checkCNI(); err != nil {
		return nil, err
	}
	if c.Nodes.Type.GPUs > 0 && !c.Has("gpu") {
		return nil, fmt.Errorf("%w: GPU cluster needs the NVIDIA device plugin", ErrNetworkingNotReady)
	}
	c.sim.Clock.Advance(4 * time.Minute) // operator install + MiniCluster pods

	// Reconcile the CRD: broker pod per node, nested Flux instance.
	ps := NewPodScheduler(c.Nodes.Nodes)
	op := NewOperator(ps, c.Nodes.Size(), 2,
		(c.Nodes.Type.Cores+1)/2, (c.Nodes.Type.GPUs+1)/2)
	mcr := &MiniClusterResource{Spec: MiniClusterSpec{
		Name: c.env, Size: c.Nodes.Size(), Image: "flux-" + c.env,
	}}
	if err := op.Reconcile(mcr); err != nil {
		c.log.Addf(c.sim.Now(), c.env, trace.Setup, trace.Unexpected, "MiniCluster reconcile: %v", err)
		return nil, err
	}

	if !c.miniOnce {
		// Each deployment requires shelling in to interact with the Flux
		// queue — the recurring manual effort behind the "medium" manual-
		// intervention scores of all Kubernetes environments.
		c.log.Addf(c.sim.Now(), c.env, trace.Manual, trace.Unexpected,
			"deployed MiniCluster (%d brokers); shelled in to interact with the Flux queue", mcr.Status.ReadyBrokers)
		c.miniOnce = true
	} else {
		c.log.Addf(c.sim.Now(), c.env, trace.Manual, trace.Routine, "redeployed MiniCluster")
	}
	flux := sched.NewFlux(c.sim, c.log, c.env, c.Nodes.Size())
	return &MiniCluster{Scheduler: flux, Size: c.Nodes.Size(), Resource: mcr}, nil
}
