package k8s

import (
	"errors"
	"testing"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/flux"
)

// flux32Ranks is a 32-rank GPU jobspec for the nested-instance check.
func flux32Ranks() flux.Jobspec {
	return flux.Jobspec{Name: "lammps", NumSlots: 32, CoresPerSlot: 4, GPUsPerSlot: 1}
}

func testNodes(n, cores, gpus int) []*cloud.Node {
	it := cloud.InstanceType{Name: "t", Provider: cloud.Google, Cores: cores, GPUs: gpus}
	var out []*cloud.Node
	for i := 0; i < n; i++ {
		out = append(out, &cloud.Node{
			ID: nodeID(i), Type: it, VisibleCores: cores, VisibleGPUs: gpus, Healthy: true,
		})
	}
	return out
}

func nodeID(i int) string { return string(rune('a'+i)) + "-node" }

func TestPodScheduleAndDelete(t *testing.T) {
	ps := NewPodScheduler(testNodes(2, 8, 0))
	pod := &Pod{Name: "p1", Request: ResourceRequest{Cores: 4}}
	if err := ps.Schedule(pod); err != nil {
		t.Fatal(err)
	}
	if pod.Phase != PodRunning || pod.Node == "" {
		t.Fatalf("pod not running: %+v", pod)
	}
	if got := ps.Committed(pod.Node).Cores; got != 4 {
		t.Fatalf("committed = %d", got)
	}
	if err := ps.Delete("p1"); err != nil {
		t.Fatal(err)
	}
	if got := ps.Committed(pod.Node).Cores; got != 0 {
		t.Fatalf("resources not released: %d", got)
	}
	if err := ps.Delete("p1"); err == nil {
		t.Fatalf("double delete must fail")
	}
}

func TestPodNoFit(t *testing.T) {
	ps := NewPodScheduler(testNodes(1, 8, 0))
	if err := ps.Schedule(&Pod{Name: "big", Request: ResourceRequest{Cores: 9}}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("err = %v, want ErrNoFit", err)
	}
	// GPUs on a CPU node.
	if err := ps.Schedule(&Pod{Name: "gpu", Request: ResourceRequest{Cores: 1, GPUs: 1}}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("err = %v, want ErrNoFit for GPU ask", err)
	}
}

func TestPodBinPacking(t *testing.T) {
	ps := NewPodScheduler(testNodes(2, 8, 0))
	for i := 0; i < 4; i++ {
		pod := &Pod{Name: "p" + string(rune('0'+i)), Request: ResourceRequest{Cores: 4}}
		if err := ps.Schedule(pod); err != nil {
			t.Fatalf("pod %d: %v", i, err)
		}
	}
	// 4 × 4 cores fills both 8-core nodes exactly; a fifth cannot fit.
	if err := ps.Schedule(&Pod{Name: "p5", Request: ResourceRequest{Cores: 1}}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("overcommit allowed: %v", err)
	}
}

func TestDefectiveNodeCapacity(t *testing.T) {
	// The supermarket-fish node exposes 2 cores; scheduling must respect
	// the *visible* capacity, not the SKU.
	nodes := testNodes(1, 96, 0)
	nodes[0].VisibleCores = 2
	ps := NewPodScheduler(nodes)
	if err := ps.Schedule(&Pod{Name: "p", Request: ResourceRequest{Cores: 4}}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("scheduler trusted the SKU over the node: %v", err)
	}
}

func TestUnhealthyNodeSkipped(t *testing.T) {
	nodes := testNodes(2, 8, 0)
	nodes[0].Healthy = false
	ps := NewPodScheduler(nodes)
	pod := &Pod{Name: "p", Request: ResourceRequest{Cores: 1}}
	if err := ps.Schedule(pod); err != nil {
		t.Fatal(err)
	}
	if pod.Node == nodes[0].ID {
		t.Fatalf("pod scheduled on unhealthy node")
	}
}

func TestPodsSelector(t *testing.T) {
	ps := NewPodScheduler(testNodes(2, 8, 0))
	ps.Schedule(&Pod{Name: "a", Labels: map[string]string{"app": "x"}, Request: ResourceRequest{Cores: 1}})
	ps.Schedule(&Pod{Name: "b", Labels: map[string]string{"app": "y"}, Request: ResourceRequest{Cores: 1}})
	if got := len(ps.Pods(map[string]string{"app": "x"})); got != 1 {
		t.Fatalf("selector matched %d", got)
	}
	if got := len(ps.Pods(nil)); got != 2 {
		t.Fatalf("nil selector matched %d", got)
	}
}

func TestDuplicatePodRejected(t *testing.T) {
	ps := NewPodScheduler(testNodes(1, 8, 0))
	ps.Schedule(&Pod{Name: "p", Request: ResourceRequest{Cores: 1}})
	if err := ps.Schedule(&Pod{Name: "p", Request: ResourceRequest{Cores: 1}}); err == nil {
		t.Fatalf("duplicate pod accepted")
	}
}

func TestDaemonSetReconcile(t *testing.T) {
	nodes := testNodes(3, 8, 0)
	ps := NewPodScheduler(nodes)
	c := NewDaemonSetController(EFADevicePlugin, ps)
	created, removed, err := c.Reconcile()
	if err != nil || created != 3 || removed != 0 {
		t.Fatalf("first reconcile: created=%d removed=%d err=%v", created, removed, err)
	}
	if !c.Ready() {
		t.Fatalf("daemonset should be ready after reconcile")
	}
	// Idempotent.
	created, removed, _ = c.Reconcile()
	if created != 0 || removed != 0 {
		t.Fatalf("second reconcile not a no-op: %d/%d", created, removed)
	}
	// Node added: reconcile converges.
	it := nodes[0].Type
	ps.nodes = append(ps.nodes, &cloud.Node{ID: "new-node", Type: it, VisibleCores: 8, Healthy: true})
	created, _, _ = c.Reconcile()
	if created != 1 || !c.Ready() {
		t.Fatalf("node-add reconcile created %d", created)
	}
	// Node removed: pod garbage-collected.
	ps.nodes = ps.nodes[:2]
	_, removed, _ = c.Reconcile()
	if removed != 2 {
		t.Fatalf("node-remove reconcile removed %d, want 2", removed)
	}
	if !c.Ready() {
		t.Fatalf("daemonset should converge after removals")
	}
}

func TestOperatorMiniClusterLifecycle(t *testing.T) {
	nodes := testNodes(4, 48, 8)
	ps := NewPodScheduler(nodes)
	op := NewOperator(ps, 4, 2, 24, 4)
	mc := &MiniClusterResource{Spec: MiniClusterSpec{Name: "study", Size: 4, Image: "lammps-google-GPU"}}
	if err := op.Reconcile(mc); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if mc.Status.Phase != MiniClusterReady || mc.Status.ReadyBrokers != 4 {
		t.Fatalf("status = %+v", mc.Status)
	}
	if len(mc.Brokers) != 4 {
		t.Fatalf("brokers = %d", len(mc.Brokers))
	}
	if lead := mc.LeadBroker(); lead == nil || lead.Labels["rank"] != "0" {
		t.Fatalf("lead broker wrong: %+v", lead)
	}
	// Each broker claims a distinct node.
	seen := map[string]bool{}
	for _, b := range mc.Brokers {
		if seen[b.Node] {
			t.Fatalf("two brokers on node %s", b.Node)
		}
		seen[b.Node] = true
	}
	// The nested Flux instance schedules work.
	if mc.Flux == nil {
		t.Fatalf("no nested instance")
	}
	if _, _, err := mc.Flux.Submit(flux32Ranks()); err != nil {
		t.Fatalf("nested submit: %v", err)
	}
	// Reconciling a Ready resource is a no-op.
	if err := op.Reconcile(mc); err != nil || len(mc.Brokers) != 4 {
		t.Fatalf("re-reconcile changed state: %v", err)
	}
}

func TestOperatorSizeErrors(t *testing.T) {
	ps := NewPodScheduler(testNodes(2, 48, 0))
	op := NewOperator(ps, 2, 2, 24, 0)
	mc := &MiniClusterResource{Spec: MiniClusterSpec{Name: "big", Size: 3}}
	if err := op.Reconcile(mc); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("err = %v", err)
	}
	if mc.Status.Phase != MiniClusterFailed {
		t.Fatalf("status = %+v", mc.Status)
	}
	zero := &MiniClusterResource{Spec: MiniClusterSpec{Name: "zero", Size: 0}}
	if err := op.Reconcile(zero); err == nil {
		t.Fatalf("zero size accepted")
	}
}

func TestOperatorTwoMiniClustersShareNodes(t *testing.T) {
	ps := NewPodScheduler(testNodes(4, 48, 0))
	op := NewOperator(ps, 4, 2, 24, 0)
	a := &MiniClusterResource{Spec: MiniClusterSpec{Name: "a", Size: 2}}
	b := &MiniClusterResource{Spec: MiniClusterSpec{Name: "b", Size: 2}}
	if err := op.Reconcile(a); err != nil {
		t.Fatal(err)
	}
	if err := op.Reconcile(b); err != nil {
		t.Fatal(err)
	}
	// A third cannot fit (all 4 nodes claimed exclusively).
	c := &MiniClusterResource{Spec: MiniClusterSpec{Name: "c", Size: 1}}
	if err := op.Reconcile(c); err == nil {
		t.Fatalf("overcommitted MiniCluster accepted")
	}
}
