package k8s

import (
	"errors"
	"fmt"
	"sort"

	"cloudhpc/internal/cloud"
)

// This file adds the pod layer under the cluster objects: resource-aware
// pod scheduling onto nodes, and level-triggered daemonset reconciliation
// (the mechanism behind the EFA plugin, the custom AKS InfiniBand
// installer, and the patched VPC CNI in the study).

// PodPhase is the pod lifecycle state.
type PodPhase string

const (
	PodPending PodPhase = "Pending"
	PodRunning PodPhase = "Running"
	PodFailed  PodPhase = "Failed"
)

// ResourceRequest is a pod's ask in whole cores/GPUs.
type ResourceRequest struct {
	Cores int
	GPUs  int
}

// Pod is a scheduled unit.
type Pod struct {
	Name    string
	Labels  map[string]string
	Request ResourceRequest
	Node    string // assigned node ID ("" while pending)
	Phase   PodPhase
}

// ErrNoFit is returned when no node can host a pod.
var ErrNoFit = errors.New("k8s: no node can satisfy pod resource request")

// PodScheduler places pods on the cluster's nodes, tracking per-node
// committed resources. It is the kube-scheduler analogue.
type PodScheduler struct {
	nodes    []*cloud.Node
	commit   map[string]ResourceRequest // node ID → committed
	pods     map[string]*Pod
	sequence int

	// sorted caches the ID-ordered view Schedule walks; rebuilt whenever
	// the node list's length changes (the only way the package — or its
	// tests — alters membership), so per-pod scheduling stops re-sorting
	// a fresh copy of the fleet.
	sorted []*cloud.Node
}

// NewPodScheduler builds a scheduler over provisioned nodes.
func NewPodScheduler(nodes []*cloud.Node) *PodScheduler {
	return &PodScheduler{
		nodes:  nodes,
		commit: make(map[string]ResourceRequest, len(nodes)),
		pods:   make(map[string]*Pod),
	}
}

// sortedNodes returns the fleet sorted by node ID, cached between calls.
func (ps *PodScheduler) sortedNodes() []*cloud.Node {
	if len(ps.sorted) != len(ps.nodes) {
		ps.sorted = append(ps.sorted[:0], ps.nodes...)
		sort.Slice(ps.sorted, func(i, j int) bool { return ps.sorted[i].ID < ps.sorted[j].ID })
	}
	return ps.sorted
}

// capacityOf reads a node's allocatable resources (visible, not SKU —
// the defective Azure nodes expose less than their type promises).
func capacityOf(n *cloud.Node) ResourceRequest {
	return ResourceRequest{Cores: n.VisibleCores, GPUs: n.VisibleGPUs}
}

// fits reports whether a request fits the node's remaining capacity.
func (ps *PodScheduler) fits(n *cloud.Node, req ResourceRequest) bool {
	cap := capacityOf(n)
	used := ps.commit[n.ID]
	return used.Cores+req.Cores <= cap.Cores && used.GPUs+req.GPUs <= cap.GPUs
}

// Schedule assigns the pod to the first node with room (sorted by node ID
// for determinism). On success the pod runs; otherwise ErrNoFit.
func (ps *PodScheduler) Schedule(pod *Pod) error {
	if pod.Request.Cores < 0 || pod.Request.GPUs < 0 {
		return fmt.Errorf("k8s: pod %q has negative resource request", pod.Name)
	}
	if _, dup := ps.pods[pod.Name]; dup {
		return fmt.Errorf("k8s: pod %q already exists", pod.Name)
	}
	for _, n := range ps.sortedNodes() {
		if !n.Healthy || !ps.fits(n, pod.Request) {
			continue
		}
		used := ps.commit[n.ID]
		used.Cores += pod.Request.Cores
		used.GPUs += pod.Request.GPUs
		ps.commit[n.ID] = used
		pod.Node = n.ID
		pod.Phase = PodRunning
		ps.pods[pod.Name] = pod
		return nil
	}
	pod.Phase = PodPending
	return ErrNoFit
}

// ScheduleOnNode pins a pod to a specific node (daemonset placement).
func (ps *PodScheduler) ScheduleOnNode(pod *Pod, nodeID string) error {
	if _, dup := ps.pods[pod.Name]; dup {
		return fmt.Errorf("k8s: pod %q already exists", pod.Name)
	}
	for _, n := range ps.nodes {
		if n.ID != nodeID {
			continue
		}
		if !ps.fits(n, pod.Request) {
			return fmt.Errorf("%w: node %s full", ErrNoFit, nodeID)
		}
		used := ps.commit[n.ID]
		used.Cores += pod.Request.Cores
		used.GPUs += pod.Request.GPUs
		ps.commit[n.ID] = used
		pod.Node = n.ID
		pod.Phase = PodRunning
		ps.pods[pod.Name] = pod
		return nil
	}
	return fmt.Errorf("k8s: unknown node %q", nodeID)
}

// Delete removes a pod and releases its resources.
func (ps *PodScheduler) Delete(name string) error {
	pod, ok := ps.pods[name]
	if !ok {
		return fmt.Errorf("k8s: pod %q not found", name)
	}
	if pod.Node != "" {
		used := ps.commit[pod.Node]
		used.Cores -= pod.Request.Cores
		used.GPUs -= pod.Request.GPUs
		ps.commit[pod.Node] = used
	}
	delete(ps.pods, name)
	return nil
}

// Pods returns pods matching a label selector (nil matches all), sorted
// by name.
func (ps *PodScheduler) Pods(selector map[string]string) []*Pod {
	var out []*Pod
	for _, p := range ps.pods {
		match := true
		for k, v := range selector {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Committed returns a node's committed resources.
func (ps *PodScheduler) Committed(nodeID string) ResourceRequest { return ps.commit[nodeID] }

// DaemonSetController reconciles one pod per node, level-triggered: call
// Reconcile after any node change and it converges, creating missing pods
// and garbage-collecting pods whose nodes are gone.
type DaemonSetController struct {
	Set   DaemonSet
	sched *PodScheduler
}

// NewDaemonSetController wires a controller to a scheduler.
func NewDaemonSetController(ds DaemonSet, sched *PodScheduler) *DaemonSetController {
	return &DaemonSetController{Set: ds, sched: sched}
}

// Reconcile converges the daemonset: returns pods created and removed.
func (c *DaemonSetController) Reconcile() (created, removed int, err error) {
	selector := map[string]string{"daemonset": c.Set.Name}
	want := map[string]bool{}
	for _, n := range c.sched.nodes {
		want[n.ID] = true
	}
	have := map[string]bool{}
	for _, p := range c.sched.Pods(selector) {
		if !want[p.Node] {
			if err := c.sched.Delete(p.Name); err != nil {
				return created, removed, err
			}
			removed++
			continue
		}
		have[p.Node] = true
	}
	for _, n := range c.sched.nodes {
		if have[n.ID] {
			continue
		}
		c.sequencePod(n.ID)
		pod := &Pod{
			Name:   c.Set.Name + "-" + n.ID,
			Labels: map[string]string{"daemonset": c.Set.Name},
			// Daemonset pods are lightweight agents.
			Request: ResourceRequest{Cores: 0},
		}
		if err := c.sched.ScheduleOnNode(pod, n.ID); err != nil {
			return created, removed, err
		}
		created++
	}
	return created, removed, nil
}

// Ready reports whether every node runs a daemonset pod.
func (c *DaemonSetController) Ready() bool {
	selector := map[string]string{"daemonset": c.Set.Name}
	running := 0
	for _, p := range c.sched.Pods(selector) {
		if p.Phase == PodRunning {
			running++
		}
	}
	return running == len(c.sched.nodes)
}

func (c *DaemonSetController) sequencePod(string) { c.sched.sequence++ }
