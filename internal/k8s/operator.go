package k8s

import (
	"errors"
	"fmt"
	"strconv"
	"sort"

	"cloudhpc/internal/flux"
)

// This file models the Flux Operator's custom resource (the MiniCluster
// CRD) and its reconciliation: given a size and a container image, the
// operator creates one broker pod per node, ranks them, and boots a
// nested Flux instance over the granted nodes (Sochat et al., "The Flux
// Operator", F1000Research 2024 — reference [86] of the paper).

// MiniClusterSpec is the CRD spec.
type MiniClusterSpec struct {
	Name  string
	Size  int    // broker pods = nodes
	Image string // container tag every rank runs
	// CoresPerPod/GPUsPerPod reserve node resources for the broker pod;
	// zero means "whole node" (resolved at reconcile time).
	CoresPerPod int
	GPUsPerPod  int
}

// MiniClusterPhase is the CRD status phase.
type MiniClusterPhase string

const (
	MiniClusterPending MiniClusterPhase = "Pending"
	MiniClusterReady   MiniClusterPhase = "Ready"
	MiniClusterFailed  MiniClusterPhase = "Failed"
)

// MiniClusterStatus is the CRD status.
type MiniClusterStatus struct {
	Phase        MiniClusterPhase
	ReadyBrokers int
	Message      string
}

// MiniClusterResource is the deployed custom resource.
type MiniClusterResource struct {
	Spec   MiniClusterSpec
	Status MiniClusterStatus
	// Brokers are the rank-ordered broker pods (rank 0 is the lead).
	Brokers []*Pod
	// Flux is the nested instance the brokers form.
	Flux *flux.Instance
}

// LeadBroker returns the rank-0 pod.
func (mc *MiniClusterResource) LeadBroker() *Pod {
	if len(mc.Brokers) == 0 {
		return nil
	}
	return mc.Brokers[0]
}

// Operator reconciles MiniCluster resources over a pod scheduler.
type Operator struct {
	sched *PodScheduler
	// root is the Flux view of the Kubernetes nodes the operator may use.
	root *flux.Instance
}

// ErrInsufficientNodes is returned when the spec asks for more brokers
// than the cluster has nodes.
var ErrInsufficientNodes = errors.New("k8s: MiniCluster size exceeds node count")

// NewOperator installs the operator on a cluster's pod scheduler. The
// socketsPerNode/coresPerSocket/gpusPerSocket describe node shape for the
// nested Flux resource graph.
func NewOperator(sched *PodScheduler, nodes, socketsPerNode, coresPerSocket, gpusPerSocket int) *Operator {
	graph := flux.NewCluster("k8s", nodes, socketsPerNode, coresPerSocket, gpusPerSocket)
	return &Operator{sched: sched, root: flux.NewInstance("k8s-root", graph)}
}

// freeNodes returns up to n node IDs with no MiniCluster broker yet,
// sorted for determinism.
func (op *Operator) freeNodes(n int) []string {
	taken := map[string]bool{}
	for _, p := range op.sched.Pods(map[string]string{"app": "flux-minicluster"}) {
		taken[p.Node] = true
	}
	var out []string
	for _, node := range op.sched.nodes {
		if !taken[node.ID] {
			out = append(out, node.ID)
		}
	}
	sort.Strings(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Reconcile drives a MiniCluster resource toward Ready: allocate nodes
// from the Flux view, create rank-ordered broker pods, and boot the
// nested instance. Idempotent: a Ready resource reconciles to itself.
func (op *Operator) Reconcile(mc *MiniClusterResource) error {
	if mc.Status.Phase == MiniClusterReady {
		return nil
	}
	spec := mc.Spec
	if spec.Size <= 0 {
		mc.Status = MiniClusterStatus{Phase: MiniClusterFailed, Message: "size must be positive"}
		return fmt.Errorf("k8s: MiniCluster %q: non-positive size", spec.Name)
	}
	if spec.Size > len(op.sched.nodes) {
		mc.Status = MiniClusterStatus{Phase: MiniClusterFailed,
			Message: fmt.Sprintf("want %d nodes, have %d", spec.Size, len(op.sched.nodes))}
		return fmt.Errorf("%w: want %d, have %d", ErrInsufficientNodes, spec.Size, len(op.sched.nodes))
	}

	// Allocate whole nodes in the Flux view.
	cores := spec.CoresPerPod
	if cores == 0 && len(op.sched.nodes) > 0 {
		cores = op.sched.nodes[0].VisibleCores
	}
	gpus := spec.GPUsPerPod
	if gpus == 0 && len(op.sched.nodes) > 0 {
		gpus = op.sched.nodes[0].VisibleGPUs
	}
	_, alloc, err := op.root.Submit(flux.Jobspec{
		Name: spec.Name, NumSlots: spec.Size,
		CoresPerSlot: cores, GPUsPerSlot: gpus, NodeExclusive: true,
	})
	if err != nil {
		mc.Status = MiniClusterStatus{Phase: MiniClusterPending, Message: err.Error()}
		return err
	}

	// One broker pod per granted node, rank ordered. Brokers are pinned
	// with anti-affinity (one per node) and request only a sliver of the
	// node — exclusivity comes from the Flux allocation, and a defective
	// node (the 2-core fish) can still host its broker, exactly as the
	// study observed the anomalous instance participating in the fleet.
	free := op.freeNodes(spec.Size)
	if len(free) < spec.Size {
		mc.Status = MiniClusterStatus{Phase: MiniClusterPending,
			Message: fmt.Sprintf("only %d nodes free of %d wanted", len(free), spec.Size)}
		return fmt.Errorf("%w: %d free nodes", ErrInsufficientNodes, len(free))
	}
	for rank := 0; rank < spec.Size; rank++ {
		rankStr := strconv.Itoa(rank)
		pod := &Pod{
			Name: spec.Name + "-" + rankStr,
			Labels: map[string]string{
				"app":  "flux-minicluster",
				"name": spec.Name,
				"rank": rankStr,
			},
			Request: ResourceRequest{Cores: min(1, cores)},
		}
		if err := op.sched.ScheduleOnNode(pod, free[rank]); err != nil {
			mc.Status = MiniClusterStatus{Phase: MiniClusterFailed, Message: err.Error()}
			return fmt.Errorf("k8s: MiniCluster %q broker %d: %w", spec.Name, rank, err)
		}
		mc.Brokers = append(mc.Brokers, pod)
	}

	nested, err := op.root.Spawn(spec.Name, alloc)
	if err != nil {
		mc.Status = MiniClusterStatus{Phase: MiniClusterFailed, Message: err.Error()}
		return err
	}
	mc.Flux = nested
	mc.Status = MiniClusterStatus{Phase: MiniClusterReady, ReadyBrokers: spec.Size}
	return nil
}
