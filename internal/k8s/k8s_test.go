package k8s

import (
	"errors"
	"fmt"
	"testing"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func nodesOf(p cloud.Provider, n, gpus int) *cloud.Cluster {
	it := cloud.InstanceType{Name: "test", Provider: p, Cores: 96, GPUs: gpus}
	c := &cloud.Cluster{Type: it}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cloud.Node{
			ID:   fmt.Sprintf("%s-node-%04d", p, i),
			Type: it, VisibleCores: it.Cores, VisibleGPUs: gpus, Healthy: true,
		})
	}
	return c
}

func newK8s(t *testing.T, p cloud.Provider, n, gpus int) (*sim.Simulation, *trace.Log, *Cluster) {
	t.Helper()
	s := sim.New(1)
	log := trace.NewLog()
	svc, err := ServiceFor(p)
	if err != nil {
		t.Fatal(err)
	}
	return s, log, NewCluster(s, log, "test-env", svc, nodesOf(p, n, gpus))
}

func TestServiceVersions(t *testing.T) {
	if EKS.Version() != "v1.27" {
		t.Fatalf("EKS version = %s", EKS.Version())
	}
	if AKS.Version() != "v1.29.7" || GKE.Version() != "v1.29.7" {
		t.Fatalf("AKS/GKE versions wrong")
	}
}

func TestServiceForOnPremFails(t *testing.T) {
	if _, err := ServiceFor(cloud.OnPrem); err == nil {
		t.Fatalf("on-prem has no managed Kubernetes")
	}
}

func TestEKSNeedsEFAPlugin(t *testing.T) {
	_, _, c := newK8s(t, cloud.AWS, 64, 0)
	if _, err := c.DeployFluxOperator(); !errors.Is(err, ErrNetworkingNotReady) {
		t.Fatalf("err = %v, want ErrNetworkingNotReady", err)
	}
	c.Apply(EFADevicePlugin)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatalf("after EFA plugin: %v", err)
	}
}

func TestAKSNeedsCustomInfiniBandDaemonset(t *testing.T) {
	_, log, c := newK8s(t, cloud.Azure, 32, 0)
	if _, err := c.DeployFluxOperator(); !errors.Is(err, ErrNetworkingNotReady) {
		t.Fatalf("err = %v, want ErrNetworkingNotReady", err)
	}
	c.Apply(AKSInfiniBandInstall)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatalf("after daemonset: %v", err)
	}
	// The custom daemonset must register as development effort.
	dev := log.Filter(func(e trace.Event) bool {
		return e.Category == trace.Development && e.Severity == trace.Blocking
	})
	if len(dev) == 0 {
		t.Fatalf("custom daemonset should log blocking development effort")
	}
}

func TestGKENeedsNothingSpecial(t *testing.T) {
	_, _, c := newK8s(t, cloud.Google, 64, 0)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatalf("GKE should work out of the box: %v", err)
	}
}

func TestEKSCNIPrefixExhaustionAt256(t *testing.T) {
	_, _, c := newK8s(t, cloud.AWS, 256, 0)
	c.Apply(EFADevicePlugin)
	if _, err := c.DeployFluxOperator(); !errors.Is(err, ErrCNIPrefixExhausted) {
		t.Fatalf("err = %v, want ErrCNIPrefixExhausted at 256 nodes", err)
	}
	c.Apply(CNIPrefixDelegation)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatalf("after prefix delegation patch: %v", err)
	}
}

func TestEKS128NoCNIIssue(t *testing.T) {
	_, _, c := newK8s(t, cloud.AWS, 128, 0)
	c.Apply(EFADevicePlugin)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatalf("128 nodes should not exhaust prefixes: %v", err)
	}
}

func TestGPUClusterNeedsDevicePlugin(t *testing.T) {
	_, _, c := newK8s(t, cloud.Google, 32, 8)
	if _, err := c.DeployFluxOperator(); !errors.Is(err, ErrNetworkingNotReady) {
		t.Fatalf("GPU cluster without device plugin must fail: %v", err)
	}
	c.Apply(NVIDIADevicePlugin)
	mc, err := c.DeployFluxOperator()
	if err != nil {
		t.Fatalf("after device plugin: %v", err)
	}
	if mc.Size != 32 {
		t.Fatalf("MiniCluster size = %d, want 32", mc.Size)
	}
}

func TestMiniClusterSchedulerIsFlux(t *testing.T) {
	_, _, c := newK8s(t, cloud.Google, 16, 0)
	mc, err := c.DeployFluxOperator()
	if err != nil {
		t.Fatal(err)
	}
	if mc.Scheduler.Kind() != "Flux" {
		t.Fatalf("MiniCluster scheduler = %s, want Flux", mc.Scheduler.Kind())
	}
}

func TestManualShellInLogged(t *testing.T) {
	_, log, c := newK8s(t, cloud.Google, 16, 0)
	if _, err := c.DeployFluxOperator(); err != nil {
		t.Fatal(err)
	}
	manual := log.Filter(func(e trace.Event) bool { return e.Category == trace.Manual })
	if len(manual) == 0 {
		t.Fatalf("MiniCluster deployment requires shelling in (manual effort)")
	}
}
