package dataset

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/oras"
)

func sampleRuns() []core.RunRecord {
	return []core.RunRecord{
		{EnvKey: "google-gke-cpu", App: "lammps", Nodes: 32, Iter: 0, FOM: 17.7, Unit: "M-atom steps/s",
			Wall: 5 * time.Minute, Hookup: 12 * time.Second, CostUSD: 13.5},
		{EnvKey: "google-gke-cpu", App: "lammps", Nodes: 32, Iter: 1, FOM: 18.1, Unit: "M-atom steps/s"},
		{EnvKey: "azure-aks-cpu", App: "laghos", Nodes: 128, Err: errors.New("apps: run exceeded wall-time limit")},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{FromRun(sampleRuns()[0]), FromRun(sampleRuns()[2])}
	data, err := MarshalJSONL(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost records: %d", len(back))
	}
	if back[0].FOM != 17.7 || back[0].Wall != 5*time.Minute {
		t.Fatalf("fields lost: %+v", back[0])
	}
	if back[1].Error == "" {
		t.Fatalf("error string lost")
	}
}

func TestUnmarshalSkipsBlankLinesRejectsGarbage(t *testing.T) {
	ok, err := UnmarshalJSONL([]byte("\n\n{\"env\":\"e\",\"app\":\"a\"}\n\n"))
	if err != nil || len(ok) != 1 {
		t.Fatalf("blank lines should be skipped: %v %d", err, len(ok))
	}
	_, err = UnmarshalJSONL([]byte("not json\n"))
	if err == nil {
		t.Fatalf("garbage line accepted")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error should carry the line number: %v", err)
	}
}

func TestPushAndLoad(t *testing.T) {
	reg := oras.NewRegistry()
	res := &core.Results{Runs: sampleRuns()}
	tags, err := Push(reg, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("tags = %v, want 2 (one per env/app)", tags)
	}
	if tags[0] != "results/azure-aks-cpu/laghos" {
		t.Fatalf("tag order: %v", tags)
	}
	recs, err := Load(reg, "results/google-gke-cpu/lammps")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Iter != 0 || recs[1].Iter != 1 {
		t.Fatalf("loaded %+v", recs)
	}
	if _, err := Load(reg, "results/absent/app"); err == nil {
		t.Fatalf("missing tag should error")
	}
}

func TestFullStudyArchives(t *testing.T) {
	st, err := core.New(99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	reg := oras.NewRegistry()
	tags, err := Push(reg, res)
	if err != nil {
		t.Fatal(err)
	}
	// 13 environments × 11 apps = 143 artifacts.
	if len(tags) != 143 {
		t.Fatalf("archived %d artifacts, want 143", len(tags))
	}
	// Every artifact loads back and the total record count matches.
	total := 0
	for _, tag := range tags {
		recs, err := Load(reg, tag)
		if err != nil {
			t.Fatalf("load %s: %v", tag, err)
		}
		total += len(recs)
	}
	if total != len(res.Runs) {
		t.Fatalf("archive has %d records, study has %d", total, len(res.Runs))
	}
}
