package dataset_test

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/oras"
	"cloudhpc/internal/store"
)

func sampleRuns() []core.RunRecord {
	return []core.RunRecord{
		{EnvKey: "google-gke-cpu", App: "lammps", Nodes: 32, Iter: 0, FOM: 17.7, Unit: "M-atom steps/s",
			Wall: 5 * time.Minute, Hookup: 12 * time.Second, CostUSD: 13.5},
		{EnvKey: "google-gke-cpu", App: "lammps", Nodes: 32, Iter: 1, FOM: 18.1, Unit: "M-atom steps/s"},
		{EnvKey: "azure-aks-cpu", App: "laghos", Nodes: 128, Err: errors.New("apps: run exceeded wall-time limit")},
	}
}

func records(runs []core.RunRecord) []dataset.Record {
	out := make([]dataset.Record, len(runs))
	for i, r := range runs {
		out[i] = r.Record()
	}
	return out
}

func TestJSONLRoundTrip(t *testing.T) {
	t.Parallel()
	recs := records(sampleRuns())
	data, err := dataset.MarshalJSONL([]dataset.Record{recs[0], recs[2]})
	if err != nil {
		t.Fatal(err)
	}
	back, err := dataset.UnmarshalJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost records: %d", len(back))
	}
	if back[0].FOM != 17.7 || back[0].Wall != 5*time.Minute {
		t.Fatalf("fields lost: %+v", back[0])
	}
	if back[1].Error == "" {
		t.Fatalf("error string lost")
	}
}

// TestFromRunRoundTripProperty is the archive's fidelity proof: for
// arbitrary runs — success and error, with duration, hookup, and cost
// fields — converting to the archived form, marshalling to JSON lines,
// and unmarshalling back reproduces the source exactly. JSON floats use
// shortest round-trip encoding and durations are integer nanoseconds, so
// equality here is bitwise, which is what the persistent result store's
// byte-identity guarantee rests on.
func TestFromRunRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(envTag, appTag uint8, nodes, iter uint16, fom float64, wall, hookup int64, cost float64, errMsg string) bool {
		if math.IsNaN(fom) || math.IsInf(fom, 0) || math.IsNaN(cost) || math.IsInf(cost, 0) {
			return true // JSON cannot carry these; the simulation never produces them
		}
		src := core.RunRecord{
			EnvKey: "env-" + strings.Repeat("x", int(envTag%4)+1),
			App:    "app-" + strings.Repeat("y", int(appTag%4)+1),
			Nodes:  int(nodes), Iter: int(iter),
			FOM: fom, Unit: "units/s",
			Wall:    time.Duration(wall),
			Hookup:  time.Duration(hookup),
			CostUSD: cost,
		}
		if errMsg = strings.ToValidUTF8(errMsg, ""); errMsg != "" {
			src.Err = errors.New(errMsg)
		}
		data, err := dataset.MarshalJSONL([]dataset.Record{src.Record()})
		if err != nil {
			return false
		}
		back, err := dataset.UnmarshalJSONL(data)
		if err != nil || len(back) != 1 {
			return false
		}
		return reflect.DeepEqual(back[0], src.Record())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalSkipsBlankLinesRejectsGarbage(t *testing.T) {
	t.Parallel()
	ok, err := dataset.UnmarshalJSONL([]byte("\n\n{\"env\":\"e\",\"app\":\"a\"}\n\n"))
	if err != nil || len(ok) != 1 {
		t.Fatalf("blank lines should be skipped: %v %d", err, len(ok))
	}
	_, err = dataset.UnmarshalJSONL([]byte("not json\n"))
	if err == nil {
		t.Fatalf("garbage line accepted")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error should carry the line number: %v", err)
	}
}

func TestPushAndLoad(t *testing.T) {
	t.Parallel()
	reg := oras.NewRegistry()
	tags, err := dataset.Push(reg, records(sampleRuns()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("tags = %v, want 2 (one per env/app)", tags)
	}
	if tags[0] != "results/azure-aks-cpu/laghos" {
		t.Fatalf("tag order: %v", tags)
	}
	recs, err := dataset.Load(reg, "results/google-gke-cpu/lammps")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Iter != 0 || recs[1].Iter != 1 {
		t.Fatalf("loaded %+v", recs)
	}
	if _, err := dataset.Load(reg, "results/absent/app"); err == nil {
		t.Fatalf("missing tag should error")
	}
}

// recordingStore wraps a BlobStore and logs the digest of every Put —
// the probe for insertion-order determinism.
type recordingStore struct {
	store.BlobStore
	puts []string
}

func (r *recordingStore) Put(data []byte) (string, error) {
	d, err := r.BlobStore.Put(data)
	r.puts = append(r.puts, d)
	return d, err
}

// TestPushInsertionOrderDeterministic pins the fix for the
// nondeterministic push order: Push used to range over its grouping map,
// so the registry's blob and manifest insertion sequence varied run to
// run even though the content didn't. Two pushes of the same dataset
// must now drive byte-identical Put sequences into the backing store.
func TestPushInsertionOrderDeterministic(t *testing.T) {
	t.Parallel()
	// Enough (env, app) groups that map iteration order would almost
	// surely differ between two attempts.
	var runs []core.RunRecord
	for _, env := range []string{"e1", "e2", "e3", "e4", "e5", "e6"} {
		for _, app := range []string{"a1", "a2", "a3", "a4"} {
			runs = append(runs, core.RunRecord{EnvKey: env, App: app, Nodes: 4, FOM: 1})
		}
	}
	sequence := func() []string {
		rec := &recordingStore{BlobStore: store.NewMemory()}
		if _, err := dataset.Push(oras.NewRegistryWith(rec), records(runs)); err != nil {
			t.Fatal(err)
		}
		return rec.puts
	}
	first := sequence()
	for i := 0; i < 5; i++ {
		if got := sequence(); !reflect.DeepEqual(got, first) {
			t.Fatalf("push %d drove a different insertion sequence:\n%v\nvs\n%v", i+2, got, first)
		}
	}
}

func TestUnitArtifactRoundTrip(t *testing.T) {
	t.Parallel()
	meta := dataset.UnitMeta{Version: 1, Key: "abc123", Seed: 2025, Env: "aws-eks-cpu", App: "lammps", Iterations: 5}
	recs := []dataset.Record{
		{Env: "aws-eks-cpu", App: "lammps", Nodes: 32, Iter: 0, FOM: 3.5, Unit: "M-atom steps/s", Wall: time.Minute, Hookup: 9 * time.Second},
		{Env: "aws-eks-cpu", App: "lammps", Nodes: 32, Iter: 1, FOM: 3.6, Unit: "M-atom steps/s", Wall: time.Minute, Hookup: 9 * time.Second},
	}
	files, err := dataset.MarshalUnit(meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := dataset.UnmarshalUnit(files)
	if err != nil {
		t.Fatal(err)
	}
	meta.Records = 2
	if gotMeta != meta || !reflect.DeepEqual(gotRecs, recs) {
		t.Fatalf("round trip drifted: %+v %+v", gotMeta, gotRecs)
	}

	// Tampered record count must be detected.
	files["unit.json"] = []byte(strings.Replace(string(files["unit.json"]), `"records":2`, `"records":3`, 1))
	if _, _, err := dataset.UnmarshalUnit(files); err == nil {
		t.Fatal("record-count mismatch accepted")
	}
	if _, _, err := dataset.UnmarshalUnit(map[string][]byte{"runs.jsonl": nil}); err == nil {
		t.Fatal("missing unit.json accepted")
	}
}

func TestFullStudyArchives(t *testing.T) {
	t.Parallel()
	st, err := core.New(99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	reg := oras.NewRegistry()
	tags, err := dataset.Push(reg, res.Records())
	if err != nil {
		t.Fatal(err)
	}
	// 13 environments × 11 apps = 143 artifacts.
	if len(tags) != 143 {
		t.Fatalf("archived %d artifacts, want 143", len(tags))
	}
	// Every artifact loads back and the total record count matches.
	total := 0
	for _, tag := range tags {
		recs, err := dataset.Load(reg, tag)
		if err != nil {
			t.Fatalf("load %s: %v", tag, err)
		}
		total += len(recs)
	}
	if total != len(res.Runs) {
		t.Fatalf("archive has %d records, study has %d", total, len(res.Runs))
	}
}
