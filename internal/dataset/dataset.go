// Package dataset defines the archived record forms of the study and
// their codecs: one JSON-lines file per (environment, application),
// pushed to an OCI registry as ORAS artifacts (paper §2.9 — "Job output
// was saved to file and pushed to a registry"; the release totals 25,541
// datasets).
//
// The package is deliberately free of study semantics: it knows bytes,
// records, and registries, nothing about how a study executes. The
// conversions between live core.RunRecord values and archived Records
// live in package core (Results.Records, RunRecord.Record), which lets
// core's persistent result store reuse these same wire forms — runs,
// per-unit draw records, unit metadata — without an import cycle.
package dataset

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"cloudhpc/internal/jsonl"
	"cloudhpc/internal/oras"
)

// Record is the archived form of one run. Errors flatten to strings so
// the archive round-trips through JSON. The same form serializes a
// stored (env, app) unit's precomputed draws: there Wall and Hookup are
// the drawn model wall time and hookup draw, and CostUSD is zero (cost
// is lifecycle accounting, not a draw).
type Record struct {
	Env     string        `json:"env"`
	App     string        `json:"app"`
	Nodes   int           `json:"nodes"`
	Iter    int           `json:"iter"`
	FOM     float64       `json:"fom"`
	Unit    string        `json:"unit"`
	Error   string        `json:"error,omitempty"`
	Wall    time.Duration `json:"wall_ns"`
	Hookup  time.Duration `json:"hookup_ns"`
	CostUSD float64       `json:"cost_usd"`
}

// MarshalJSONL encodes records as JSON lines.
func MarshalJSONL(recs []Record) ([]byte, error) {
	return jsonl.Marshal(recs)
}

// UnmarshalJSONL decodes JSON lines into records.
func UnmarshalJSONL(data []byte) ([]Record, error) {
	return jsonl.Unmarshal[Record]("dataset", data)
}

// Artifact types in the registry.
const (
	// ArtifactType marks study result datasets.
	ArtifactType = "application/vnd.cloudhpc.study.results.v1"
	// UnitArtifactType marks one (env, app) unit's precomputed model and
	// hookup draws — the incremental-execution quantum of the persistent
	// result store.
	UnitArtifactType = "application/vnd.cloudhpc.unit.draws.v1"
	// StudyBundleType marks a complete serialized study dataset (runs,
	// trace, billing charges, audits) in the persistent result store.
	StudyBundleType = "application/vnd.cloudhpc.study.bundle.v1"
)

// UnitMeta is the per-unit metadata of a stored (env, app) unit artifact
// ("unit.json" alongside "runs.jsonl"): the sub-hash key the unit is
// stored under, and the inputs that key covers, so a unit artifact is
// self-describing without the spec that produced it.
type UnitMeta struct {
	Version    int    `json:"version"`
	Key        string `json:"key"`
	Seed       uint64 `json:"seed"`
	Env        string `json:"env"`
	App        string `json:"app"`
	Iterations int    `json:"iterations"`
	Records    int    `json:"records"`
}

// MarshalUnit encodes a unit artifact's files: the metadata and the draw
// records.
func MarshalUnit(meta UnitMeta, recs []Record) (map[string][]byte, error) {
	meta.Records = len(recs)
	mj, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	rj, err := MarshalJSONL(recs)
	if err != nil {
		return nil, err
	}
	return map[string][]byte{"unit.json": mj, "runs.jsonl": rj}, nil
}

// UnitCursor decodes a unit artifact's metadata and returns a streaming
// cursor over its draw records, so a consumer can validate and convert
// each record in a single pass instead of materializing the full record
// slice first. The metadata's record count is not pre-validated here —
// the cursor has not seen the records yet; callers confirm it as they
// drain (UnmarshalUnit does exactly that).
func UnitCursor(files map[string][]byte) (UnitMeta, *jsonl.Decoder[Record], error) {
	var meta UnitMeta
	mj, ok := files["unit.json"]
	if !ok {
		return meta, nil, fmt.Errorf("dataset: unit artifact has no unit.json")
	}
	if err := json.Unmarshal(mj, &meta); err != nil {
		return meta, nil, fmt.Errorf("dataset: unit.json: %w", err)
	}
	rj, ok := files["runs.jsonl"]
	if !ok {
		return meta, nil, fmt.Errorf("dataset: unit artifact has no runs.jsonl")
	}
	return meta, jsonl.NewDecoder[Record]("dataset", rj), nil
}

// UnmarshalUnit decodes a unit artifact's files, validating the record
// count against the metadata.
func UnmarshalUnit(files map[string][]byte) (UnitMeta, []Record, error) {
	meta, cur, err := UnitCursor(files)
	if err != nil {
		return meta, nil, err
	}
	recs := make([]Record, 0, meta.Records)
	for {
		rec, ok, err := cur.Next()
		if err != nil {
			return meta, nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) != meta.Records {
		return meta, nil, fmt.Errorf("dataset: unit %s/%s holds %d records, metadata says %d",
			meta.Env, meta.App, len(recs), meta.Records)
	}
	return meta, recs, nil
}

// Push archives run records into the registry, one artifact per
// (environment, application), tagged "results/<env>/<app>". Artifacts
// are pushed in sorted tag order so the registry's blob and manifest
// insertion sequence — not just the returned tag list — is identical run
// to run; a content-addressed archive should never depend on Go map
// iteration order. It returns the tags pushed, sorted.
func Push(reg *oras.Registry, recs []Record) ([]string, error) {
	groups := map[string][]Record{}
	for _, r := range recs {
		key := r.Env + "/" + r.App
		groups[key] = append(groups[key], r)
	}
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	tags := make([]string, 0, len(keys))
	for _, key := range keys {
		data, err := MarshalJSONL(groups[key])
		if err != nil {
			return nil, err
		}
		tag := "results/" + key
		_, err = reg.Push(tag, ArtifactType,
			map[string][]byte{"runs.jsonl": data},
			map[string]string{"cloudhpc.records": fmt.Sprint(len(groups[key]))})
		if err != nil {
			return nil, err
		}
		tags = append(tags, tag)
	}
	return tags, nil
}

// Load retrieves one archived artifact's records.
func Load(reg *oras.Registry, tag string) ([]Record, error) {
	files, err := reg.Pull(tag)
	if err != nil {
		return nil, err
	}
	data, ok := files["runs.jsonl"]
	if !ok {
		return nil, fmt.Errorf("dataset: artifact %q has no runs.jsonl", tag)
	}
	return UnmarshalJSONL(data)
}
