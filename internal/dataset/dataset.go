// Package dataset serializes study results the way the study archived
// them: one JSON-lines file per (environment, application), pushed to an
// OCI registry as ORAS artifacts (paper §2.9 — "Job output was saved to
// file and pushed to a registry"; the release totals 25,541 datasets).
package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"cloudhpc/internal/core"
	"cloudhpc/internal/oras"
)

// Record is the archived form of one run. Errors flatten to strings so
// the archive round-trips through JSON.
type Record struct {
	Env     string        `json:"env"`
	App     string        `json:"app"`
	Nodes   int           `json:"nodes"`
	Iter    int           `json:"iter"`
	FOM     float64       `json:"fom"`
	Unit    string        `json:"unit"`
	Error   string        `json:"error,omitempty"`
	Wall    time.Duration `json:"wall_ns"`
	Hookup  time.Duration `json:"hookup_ns"`
	CostUSD float64       `json:"cost_usd"`
}

// FromRun converts a live run record.
func FromRun(r core.RunRecord) Record {
	rec := Record{
		Env: r.EnvKey, App: r.App, Nodes: r.Nodes, Iter: r.Iter,
		FOM: r.FOM, Unit: r.Unit, Wall: r.Wall, Hookup: r.Hookup, CostUSD: r.CostUSD,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	return rec
}

// MarshalJSONL encodes records as JSON lines.
func MarshalJSONL(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalJSONL decodes JSON lines into records.
func UnmarshalJSONL(data []byte) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// ArtifactType marks study datasets in the registry.
const ArtifactType = "application/vnd.cloudhpc.study.results.v1"

// Push archives a study's runs into the registry, one artifact per
// (environment, application), tagged "results/<env>/<app>". It returns
// the tags pushed, sorted.
func Push(reg *oras.Registry, res *core.Results) ([]string, error) {
	groups := map[string][]Record{}
	for _, run := range res.Runs {
		key := run.EnvKey + "/" + run.App
		groups[key] = append(groups[key], FromRun(run))
	}
	tags := make([]string, 0, len(groups))
	for key, recs := range groups {
		data, err := MarshalJSONL(recs)
		if err != nil {
			return nil, err
		}
		tag := "results/" + key
		_, err = reg.Push(tag, ArtifactType,
			map[string][]byte{"runs.jsonl": data},
			map[string]string{"cloudhpc.records": fmt.Sprint(len(recs))})
		if err != nil {
			return nil, err
		}
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags, nil
}

// Load retrieves one archived artifact's records.
func Load(reg *oras.Registry, tag string) ([]Record, error) {
	files, err := reg.Pull(tag)
	if err != nil {
		return nil, err
	}
	data, ok := files["runs.jsonl"]
	if !ok {
		return nil, fmt.Errorf("dataset: artifact %q has no runs.jsonl", tag)
	}
	return UnmarshalJSONL(data)
}
