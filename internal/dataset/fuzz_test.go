package dataset

import "testing"

// FuzzUnmarshalJSONL hardens the archive reader: arbitrary bytes must
// never panic, and whatever parses must re-marshal.
func FuzzUnmarshalJSONL(f *testing.F) {
	f.Add([]byte(`{"env":"e","app":"a","fom":1.5}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"env":"e"}` + "\n" + `{"app":"b"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := UnmarshalJSONL(data)
		if err != nil {
			return
		}
		if _, err := MarshalJSONL(recs); err != nil {
			t.Fatalf("parsed records do not re-marshal: %v", err)
		}
	})
}
