// Package usability folds the study's event trace into the qualitative
// effort scores of the paper's Table 3. The paper's rubric (§2.5):
//
//	low    — the documented procedure worked with minimal configuration.
//	medium — unexpected issues needed debugging or development.
//	high   — significant development effort was required.
//
// Scores are *derived from the log*, not hardcoded: a category is high if
// it saw any blocking event (or a pile-up of unexpected ones — sustained
// babysitting is significant effort too), medium if it saw any unexpected
// event, low otherwise.
package usability

import (
	"fmt"
	"sort"
	"strings"

	"cloudhpc/internal/trace"
)

// Effort is a qualitative score.
type Effort int

const (
	Low Effort = iota
	Medium
	High
)

// String returns the lowercase score as printed in Table 3.
func (e Effort) String() string {
	switch e {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("effort(%d)", int(e))
	}
}

// Categories are the four assessed columns of Table 3, in order.
var Categories = []trace.Category{trace.Setup, trace.Development, trace.AppSetup, trace.Manual}

// Assessment is one environment's row.
type Assessment struct {
	Env    string
	Scores map[trace.Category]Effort
	// Evidence holds the worst events per category, for auditability.
	Evidence map[trace.Category][]trace.Event
}

// Scorer derives assessments from a trace log.
type Scorer struct {
	// UnexpectedHighThreshold is how many unexpected events in one
	// category amount to "significant effort" (high) even without a
	// blocking event. The CycleCloud manual-intervention column is the
	// motivating case: no single incident blocked, but every job needed
	// monitoring.
	UnexpectedHighThreshold int
}

// NewScorer returns a scorer with the study's threshold.
func NewScorer() *Scorer { return &Scorer{UnexpectedHighThreshold: 12} }

// Score assesses one environment from the log.
func (s *Scorer) Score(log *trace.Log, env string) Assessment {
	a := Assessment{
		Env:      env,
		Scores:   make(map[trace.Category]Effort, len(Categories)),
		Evidence: make(map[trace.Category][]trace.Event),
	}
	for _, cat := range Categories {
		var unexpected, blocking int
		for _, e := range log.ByEnv(env) {
			if e.Category != cat {
				continue
			}
			switch e.Severity {
			case trace.Unexpected:
				unexpected++
				a.Evidence[cat] = append(a.Evidence[cat], e)
			case trace.Blocking:
				blocking++
				a.Evidence[cat] = append(a.Evidence[cat], e)
			}
		}
		switch {
		case blocking > 0 || unexpected >= s.UnexpectedHighThreshold:
			a.Scores[cat] = High
		case unexpected > 0:
			a.Scores[cat] = Medium
		default:
			a.Scores[cat] = Low
		}
	}
	return a
}

// ScoreAll assesses the given environments, preserving their order.
func (s *Scorer) ScoreAll(log *trace.Log, envs []string) []Assessment {
	out := make([]Assessment, 0, len(envs))
	for _, env := range envs {
		out = append(out, s.Score(log, env))
	}
	return out
}

// Table renders assessments as an aligned text table in Table 3's layout.
func Table(assessments []Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %-12s %-12s %-12s\n", "Environment", "Setup", "Development", "AppSetup", "Manual")
	for _, a := range assessments {
		fmt.Fprintf(&b, "%-28s %-8s %-12s %-12s %-12s\n", a.Env,
			a.Scores[trace.Setup], a.Scores[trace.Development],
			a.Scores[trace.AppSetup], a.Scores[trace.Manual])
	}
	return b.String()
}

// Summary counts score values across assessments — a quick read on how
// much of the matrix was painful.
func Summary(assessments []Assessment) map[Effort]int {
	out := map[Effort]int{}
	for _, a := range assessments {
		for _, cat := range Categories {
			out[a.Scores[cat]]++
		}
	}
	return out
}

// Delta is one score change between two assessments of an environment.
type Delta struct {
	Env      string
	Category trace.Category
	Before   Effort
	After    Effort
}

// Improved reports whether the score got easier.
func (d Delta) Improved() bool { return d.After < d.Before }

// Diff compares two assessment sets by environment — the tool for the
// paper's follow-up studies ("we are currently working with individual
// clouds to address the issues that we discovered"): rerun the study
// against updated substrates and see which cells moved.
func Diff(before, after []Assessment) []Delta {
	byEnv := make(map[string]Assessment, len(after))
	for _, a := range after {
		byEnv[a.Env] = a
	}
	var out []Delta
	for _, b := range before {
		a, ok := byEnv[b.Env]
		if !ok {
			continue
		}
		for _, cat := range Categories {
			if b.Scores[cat] != a.Scores[cat] {
				out = append(out, Delta{Env: b.Env, Category: cat,
					Before: b.Scores[cat], After: a.Scores[cat]})
			}
		}
	}
	return out
}

// HardestEnvironments returns environments sorted by total effort,
// hardest first (ties broken by name for determinism).
func HardestEnvironments(assessments []Assessment) []string {
	type scored struct {
		env   string
		total int
	}
	rows := make([]scored, 0, len(assessments))
	for _, a := range assessments {
		t := 0
		for _, cat := range Categories {
			t += int(a.Scores[cat])
		}
		rows = append(rows, scored{a.Env, t})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].env < rows[j].env
	})
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.env
	}
	return out
}
