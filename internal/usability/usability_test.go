package usability

import (
	"strings"
	"testing"

	"cloudhpc/internal/trace"
)

func TestScoreRubric(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "e", trace.Setup, trace.Routine, "fine")
	log.Addf(0, "e", trace.Development, trace.Unexpected, "debugging")
	log.Addf(0, "e", trace.AppSetup, trace.Blocking, "big effort")
	a := NewScorer().Score(log, "e")
	if a.Scores[trace.Setup] != Low {
		t.Fatalf("routine-only category should be low")
	}
	if a.Scores[trace.Development] != Medium {
		t.Fatalf("unexpected → medium")
	}
	if a.Scores[trace.AppSetup] != High {
		t.Fatalf("blocking → high")
	}
	if a.Scores[trace.Manual] != Low {
		t.Fatalf("empty category defaults to low")
	}
}

func TestUnexpectedPileUpBecomesHigh(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	s := NewScorer()
	for i := 0; i < s.UnexpectedHighThreshold; i++ {
		log.Addf(0, "cc", trace.Manual, trace.Unexpected, "job stalled, kicked")
	}
	if got := s.Score(log, "cc").Scores[trace.Manual]; got != High {
		t.Fatalf("sustained babysitting should be high, got %v", got)
	}
	// One fewer stays medium.
	log2 := trace.NewLog()
	for i := 0; i < s.UnexpectedHighThreshold-1; i++ {
		log2.Addf(0, "cc", trace.Manual, trace.Unexpected, "stall")
	}
	if got := s.Score(log2, "cc").Scores[trace.Manual]; got != Medium {
		t.Fatalf("below threshold should be medium, got %v", got)
	}
}

func TestInfoAndBillingNeverCount(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "e", trace.Info, trace.Blocking, "noise")
	log.Addf(0, "e", trace.Billing, trace.Blocking, "expensive")
	a := NewScorer().Score(log, "e")
	for _, cat := range Categories {
		if a.Scores[cat] != Low {
			t.Fatalf("%s should be low, got %v", cat, a.Scores[cat])
		}
	}
}

func TestEventsIsolatedPerEnvironment(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "bad", trace.Setup, trace.Blocking, "broken")
	log.Addf(0, "good", trace.Setup, trace.Routine, "fine")
	s := NewScorer()
	if s.Score(log, "good").Scores[trace.Setup] != Low {
		t.Fatalf("scores leaked across environments")
	}
	if s.Score(log, "bad").Scores[trace.Setup] != High {
		t.Fatalf("bad env should be high")
	}
}

func TestEvidenceRecorded(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "e", trace.Development, trace.Blocking, "custom daemonset")
	a := NewScorer().Score(log, "e")
	ev := a.Evidence[trace.Development]
	if len(ev) != 1 || ev[0].Msg != "custom daemonset" {
		t.Fatalf("evidence missing: %+v", ev)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "azure-aks-cpu", trace.Development, trace.Blocking, "daemonset")
	out := Table(NewScorer().ScoreAll(log, []string{"azure-aks-cpu"}))
	if !strings.Contains(out, "azure-aks-cpu") || !strings.Contains(out, "high") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "Setup") || !strings.Contains(out, "Manual") {
		t.Fatalf("table missing headers:\n%s", out)
	}
}

func TestSummaryAndHardest(t *testing.T) {
	t.Parallel()
	log := trace.NewLog()
	log.Addf(0, "hard", trace.Setup, trace.Blocking, "x")
	log.Addf(0, "hard", trace.Manual, trace.Blocking, "y")
	log.Addf(0, "easy", trace.Setup, trace.Routine, "z")
	as := NewScorer().ScoreAll(log, []string{"easy", "hard"})
	sum := Summary(as)
	if sum[High] != 2 || sum[Low] != 6 {
		t.Fatalf("summary = %v", sum)
	}
	order := HardestEnvironments(as)
	if order[0] != "hard" || order[1] != "easy" {
		t.Fatalf("hardest order = %v", order)
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	t.Parallel()
	logBefore := trace.NewLog()
	logBefore.Addf(0, "aks", trace.Development, trace.Blocking, "custom daemonset required")
	logAfter := trace.NewLog()
	logAfter.Addf(0, "aks", trace.Development, trace.Routine, "vendor now documents InfiniBand install")
	s := NewScorer()
	before := s.ScoreAll(logBefore, []string{"aks"})
	after := s.ScoreAll(logAfter, []string{"aks"})
	deltas := Diff(before, after)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	d := deltas[0]
	if d.Category != trace.Development || d.Before != High || d.After != Low || !d.Improved() {
		t.Fatalf("delta = %+v", d)
	}
	// Identical assessments diff to nothing; unmatched envs are skipped.
	if ds := Diff(before, before); len(ds) != 0 {
		t.Fatalf("self-diff = %+v", ds)
	}
	if ds := Diff(before, s.ScoreAll(logAfter, []string{"other"})); len(ds) != 0 {
		t.Fatalf("unmatched env diffed: %+v", ds)
	}
}

func TestEffortString(t *testing.T) {
	t.Parallel()
	for e, want := range map[Effort]string{Low: "low", Medium: "medium", High: "high", Effort(7): "effort(7)"} {
		if e.String() != want {
			t.Fatalf("Effort(%d) = %q", int(e), e.String())
		}
	}
}
