package usability_test

import (
	"fmt"

	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

// Scores are derived from the event trace by the paper's rubric: the
// documented procedure working is low, debugging is medium, significant
// development is high.
func ExampleScorer_Score() {
	log := trace.NewLog()
	log.Addf(0, "azure-aks-gpu", trace.Setup, trace.Unexpected,
		"node exposes 7/8 GPUs; releasing re-allocates the same node")
	log.Addf(0, "azure-aks-gpu", trace.Development, trace.Blocking,
		"custom InfiniBand daemonset had to be developed")

	a := usability.NewScorer().Score(log, "azure-aks-gpu")
	fmt.Println("setup:      ", a.Scores[trace.Setup])
	fmt.Println("development:", a.Scores[trace.Development])
	fmt.Println("app setup:  ", a.Scores[trace.AppSetup])
	// Output:
	// setup:       medium
	// development: high
	// app setup:   low
}
