package core

import (
	"reflect"
	"testing"
)

// FuzzSpecParse mirrors chaos.FuzzPlanParse for the study-spec grammar:
// ParseSpec must never panic, and any spec it accepts must render
// (String) and reparse to the identical normalized spec — the exact
// round trip the canonical hash and the spec-file tooling rely on.
func FuzzSpecParse(f *testing.F) {
	f.Add(DefaultSpec(DefaultSeed).String())
	f.Add("seed 7\nenvs azure-* onprem-a-cpu\napps amg2023 lammps\nscales 8 32\niterations 3\nchaos default\nworkers 16\ngranularity env-app\n")
	f.Add("# comment only\n\nseed 1")
	f.Add("envs *\napps *\nscales default\nchaos none")
	f.Add("granularity env\nworkers 0")
	f.Add("seed 18446744073709551615")
	f.Add("scales 1 2 3 4 5 6 7 8")
	f.Add("iterations 1000")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSpec(src)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		rendered := s.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("accepted spec does not reparse: %v\nspec: %q\nrendered: %q", err, src, rendered)
		}
		if !reflect.DeepEqual(again, s) {
			t.Fatalf("round trip drifted:\nfirst:  %+v\nsecond: %+v", s, again)
		}
		if again.String() != rendered {
			t.Fatalf("String not a fixed point:\nfirst:  %q\nsecond: %q", rendered, again.String())
		}
	})
}
