package core

import (
	"sync"
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

// The full study takes a few hundred milliseconds; share one run across
// the package's tests.
var (
	studyOnce sync.Once
	studyRes  *Results
	studyErr  error
)

func fullStudy(t *testing.T) *Results {
	t.Helper()
	studyOnce.Do(func() {
		st, err := New(2025)
		if err != nil {
			studyErr = err
			return
		}
		studyRes, studyErr = st.RunFull()
	})
	if studyErr != nil {
		t.Fatalf("RunFull: %v", studyErr)
	}
	return studyRes
}

func TestStudyRunsAllDeployableEnvironments(t *testing.T) {
	res := fullStudy(t)
	seen := map[string]bool{}
	for _, rec := range res.Runs {
		seen[rec.EnvKey] = true
	}
	for _, spec := range apps.Deployable(res.Envs) {
		if !seen[spec.Key] {
			t.Errorf("no runs recorded for %s", spec.Key)
		}
	}
	if seen["aws-parallelcluster-gpu"] {
		t.Errorf("the undeployable environment must not produce runs")
	}
}

func TestStudyDatasetSize(t *testing.T) {
	res := fullStudy(t)
	// 13 environments × 11 apps × 4 scales × 5 iterations, minus the EKS
	// GPU size cap, the single AKS-256 LAMMPS run, and unbuildable
	// containers — thousands of records either way.
	if len(res.Runs) < 2000 {
		t.Fatalf("dataset has %d runs, want thousands", len(res.Runs))
	}
}

// wantTable3 is the paper's Table 3, row for row.
var wantTable3 = map[string][4]usability.Effort{
	//                              setup               dev                 appsetup            manual
	"aws-parallelcluster-cpu":  {usability.Medium, usability.Low, usability.Low, usability.Low},
	"azure-cyclecloud-cpu":     {usability.High, usability.Low, usability.High, usability.High},
	"google-computeengine-cpu": {usability.Medium, usability.Medium, usability.Low, usability.Low},
	"azure-cyclecloud-gpu":     {usability.High, usability.Low, usability.High, usability.High},
	"google-computeengine-gpu": {usability.Medium, usability.Medium, usability.Low, usability.Low},
	"aws-eks-cpu":              {usability.Low, usability.High, usability.Low, usability.Medium},
	"azure-aks-cpu":            {usability.Medium, usability.High, usability.High, usability.High},
	"google-gke-cpu":           {usability.Low, usability.Low, usability.Low, usability.Medium},
	"aws-eks-gpu":              {usability.High, usability.High, usability.Low, usability.Medium},
	"azure-aks-gpu":            {usability.Medium, usability.High, usability.High, usability.Medium},
	"google-gke-gpu":           {usability.Low, usability.Low, usability.Low, usability.Medium},
	"onprem-b-gpu":             {usability.Low, usability.Low, usability.High, usability.Medium},
	"onprem-a-cpu":             {usability.Low, usability.Low, usability.High, usability.Medium},
}

func TestTable3MatchesPaper(t *testing.T) {
	res := fullStudy(t)
	got := map[string][4]usability.Effort{}
	for _, a := range res.Table3() {
		got[a.Env] = [4]usability.Effort{
			a.Scores[trace.Setup], a.Scores[trace.Development],
			a.Scores[trace.AppSetup], a.Scores[trace.Manual],
		}
	}
	if len(got) != 13 {
		t.Fatalf("Table 3 has %d rows, want 13", len(got))
	}
	for env, want := range wantTable3 {
		g, ok := got[env]
		if !ok {
			t.Errorf("missing Table 3 row for %s", env)
			continue
		}
		if g != want {
			t.Errorf("%s: got %v/%v/%v/%v, want %v/%v/%v/%v", env,
				g[0], g[1], g[2], g[3], want[0], want[1], want[2], want[3])
		}
	}
}

func TestTable4Shape(t *testing.T) {
	res := fullStudy(t)
	rows := res.Table4()
	if len(rows) != 11 {
		t.Fatalf("Table 4 has %d rows, want 11 (13 deployable minus 2 on-prem)", len(rows))
	}
	// Ascending order.
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalUSD < rows[i-1].TotalUSD {
			t.Fatalf("Table 4 not ascending at %d: %+v", i, rows)
		}
	}
	byKey := map[string]CostRow{}
	var maxGPU, minCPU float64
	minCPU = 1e18
	for _, r := range rows {
		byKey[r.EnvKey] = r
		if r.Acc == cloud.GPU && r.EnvKey != "google-computeengine-gpu" && r.TotalUSD > maxGPU {
			maxGPU = r.TotalUSD
		}
		if r.Acc == cloud.CPU && r.TotalUSD < minCPU {
			minCPU = r.TotalUSD
		}
	}
	// §4.2: "the GPU runs were significantly cheaper despite the more
	// expensive instance type" (CE GPU was credit-funded and is excused).
	if maxGPU >= minCPU {
		t.Fatalf("GPU AMG runs should cost less than CPU runs: maxGPU=%.2f minCPU=%.2f", maxGPU, minCPU)
	}
	// Google's CPU environments were the most expensive rows.
	last := rows[len(rows)-1]
	if last.EnvKey != "google-computeengine-cpu" && last.EnvKey != "google-gke-cpu" {
		t.Fatalf("most expensive row should be a Google CPU environment, got %s", last.EnvKey)
	}
	// EKS CPU landed around $264 in the paper; stay in the ballpark.
	if eks := byKey["aws-eks-cpu"].TotalUSD; eks < 130 || eks > 530 {
		t.Fatalf("EKS CPU AMG cost = $%.2f, want paper-ballpark (~$264)", eks)
	}
}

func TestFigure2AMGShapes(t *testing.T) {
	res := fullStudy(t)
	cpuFig, err := res.FigureFor("amg2023", cloud.CPU)
	if err != nil {
		t.Fatal(err)
	}
	best, err := cpuFig.BestAt(256)
	if err != nil {
		t.Fatal(err)
	}
	if best != "onprem-a-cpu" {
		t.Fatalf("CPU AMG at 256 nodes: best = %s, want onprem-a-cpu", best)
	}
	gpuFig, err := res.FigureFor("amg2023", cloud.GPU)
	if err != nil {
		t.Fatal(err)
	}
	// B produced some of the lowest FOMs: it must never be best.
	for _, gpus := range []float64{32, 64, 128} {
		if best, err := gpuFig.BestAt(gpus); err == nil && best == "onprem-b-gpu" {
			t.Fatalf("GPU AMG at %v GPUs: on-prem B should not win", gpus)
		}
	}
}

func TestFigure3LaghosOnlySmallCloudSizes(t *testing.T) {
	res := fullStudy(t)
	fig, err := res.FigureFor("laghos", cloud.CPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Label == "onprem-a-cpu" {
			continue
		}
		if s.Label == "aws-parallelcluster-cpu" && len(s.Points) > 0 {
			t.Fatalf("ParallelCluster Laghos never completed, has %d points", len(s.Points))
		}
		for _, p := range s.Points {
			if p.X > 64 {
				t.Fatalf("%s has a Laghos point at %v nodes; cloud runs stop at 64", s.Label, p.X)
			}
		}
	}
	// On-prem: order of magnitude higher at 32 nodes.
	op, ok1 := fig.Get("onprem-a-cpu").At(32)
	cl, ok2 := fig.Get("azure-aks-cpu").At(32)
	if !ok1 || !ok2 || op.Mean < 7*cl.Mean {
		t.Fatalf("on-prem Laghos should be ~10× cloud: %v vs %v", op.Mean, cl.Mean)
	}
}

func TestFigure1KripkeOrdering(t *testing.T) {
	res := fullStudy(t)
	fig, err := res.FigureFor("kripke", cloud.CPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []float64{64, 128, 256} {
		best, err := fig.BestAt(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if best != "aws-parallelcluster-cpu" {
			t.Fatalf("Kripke at %v nodes: best = %s, want aws-parallelcluster-cpu", nodes, best)
		}
	}
}

func TestECCSurveyMatchesPaper(t *testing.T) {
	res := fullStudy(t)
	for env, on := range res.ECCOn {
		spec, _ := apps.EnvByKey(env)
		if spec.Provider == cloud.Azure {
			if on >= 1.0 || on < 0.5 {
				t.Errorf("%s: ECC-on = %.2f, want mixed (12.5–25%% off)", env, on)
			}
		} else if on != 1.0 {
			t.Errorf("%s: ECC-on = %.2f, want 1.0", env, on)
		}
	}
	if len(res.ECCOn) < 5 {
		t.Fatalf("ECC survey covered %d GPU environments, want ≥5", len(res.ECCOn))
	}
}

func TestSupermarketFishFound(t *testing.T) {
	res := fullStudy(t)
	if len(res.Findings) == 0 {
		t.Fatalf("the single-node audit should find the anomalous Azure node")
	}
	for _, f := range res.Findings {
		spec, err := apps.EnvByKey(findingEnv(res, f))
		if err == nil && spec.Provider != cloud.Azure {
			t.Fatalf("fish found outside Azure: %+v", f)
		}
	}
}

// findingEnv recovers the env key prefix of a finding's node ID.
func findingEnv(res *Results, f apps.Finding) string {
	for _, spec := range res.Envs {
		if len(f.NodeID) >= len(spec.Key) && f.NodeID[:len(spec.Key)] == spec.Key {
			return spec.Key
		}
	}
	return ""
}

func TestHookupPatterns(t *testing.T) {
	res := fullStudy(t)
	nodes, times := res.HookupSeries("azure-aks-cpu")
	if len(nodes) != 4 {
		t.Fatalf("AKS CPU hookup series: %v", nodes)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("AKS CPU hookups should grow with scale: %v", times)
		}
	}
	_, gke := res.HookupSeries("google-gke-cpu")
	for _, d := range gke {
		if d.Seconds() > 20 {
			t.Fatalf("GKE hookups should be flat and small: %v", gke)
		}
	}
}

func TestStudyCostsPlausible(t *testing.T) {
	res := fullStudy(t)
	costs := res.StudyCosts()
	for p, usd := range costs {
		if usd <= 0 {
			t.Errorf("%s spend = $%.2f, want positive", p, usd)
		}
		if usd > BudgetPerCloudUSD {
			t.Errorf("%s spend $%.0f exceeded the $49k budget", p, usd)
		}
	}
	if res.Meter.Spend(cloud.OnPrem) != 0 {
		t.Errorf("on-prem must not bill")
	}
}

func TestFailureSummaryContainsKnownFailures(t *testing.T) {
	res := fullStudy(t)
	fails := res.FailureSummary()
	if fails["azure-aks-gpu"]["quicksilver"] == 0 {
		t.Errorf("Quicksilver GPU runs should fail")
	}
	if fails["aws-parallelcluster-cpu"]["laghos"] == 0 {
		t.Errorf("ParallelCluster Laghos should fail")
	}
	if fails["onprem-a-cpu"]["minife"] == 0 {
		t.Errorf("on-prem MiniFE output was lost")
	}
}

func TestRunsForFilter(t *testing.T) {
	res := fullStudy(t)
	all := res.RunsFor("", "lammps")
	if len(all) == 0 {
		t.Fatal("no lammps runs")
	}
	one := res.RunsFor("google-gke-cpu", "lammps")
	if len(one) != 4*Iterations {
		t.Fatalf("GKE lammps runs = %d, want %d", len(one), 4*Iterations)
	}
	aks256 := 0
	for _, r := range res.RunsFor("azure-aks-cpu", "lammps") {
		if r.Nodes == 256 {
			aks256++
		}
	}
	if aks256 != 1 {
		t.Fatalf("AKS-256 lammps runs = %d, want exactly 1", aks256)
	}
}

func TestDeterministicStudy(t *testing.T) {
	a, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Runs) != len(resB.Runs) {
		t.Fatalf("replays differ in run count: %d vs %d", len(resA.Runs), len(resB.Runs))
	}
	for i := range resA.Runs {
		if resA.Runs[i].FOM != resB.Runs[i].FOM {
			t.Fatalf("replay diverged at run %d", i)
		}
	}
}
