package core

import (
	"fmt"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/trace"
)

// Options turn on the operational disciplines the paper's §4.2 suggests,
// plus the executor's concurrency knob. The zero value reproduces the study
// as it was actually run (with one shard per environment dispatched over
// all available CPUs — the dataset is identical for every worker count).
type Options struct {
	// Workers bounds the number of work units executing at once.
	// Zero or negative means runtime.NumCPU(). The results do not depend on
	// this value — only the wall-clock time of RunFull does.
	Workers int
	// Granularity selects the work-partitioning unit: GranularityEnv (the
	// default) runs one unit per environment; GranularityEnvApp
	// additionally fans every environment's model evaluations out into one
	// precompute unit per (environment, application) pair, lifting the
	// parallelism cap from the environment count to env×app. The dataset
	// is byte-identical for every granularity — only wall-clock changes.
	Granularity Granularity
	// LegacyRunStreams is the stream-naming compatibility shim: it restores
	// the pre-spec executor's single shared "core/run/<env>" stream (one
	// sequential draw sequence per environment, interleaved across
	// applications) instead of the per-application "core/run/<env>/<app>"
	// streams the partitioned executor uses. It exists so datasets produced
	// before the StudySpec refactor — including the original seed-2025
	// golden dataset — remain bit-for-bit reproducible. Incompatible with
	// GranularityEnvApp: a shared sequential stream cannot be split into
	// independent units.
	LegacyRunStreams bool
	// PauseBetweenScales inserts a wait after each cluster size so that
	// lagged cost reporting catches up before committing to the next,
	// larger (more expensive) size — "Operating on a cloud environment
	// with a one-day reporting delay warrants careful planning and pauses
	// between experiments."
	PauseBetweenScales time.Duration
	// TestClusters brings up a small shakeout cluster per environment
	// before the real sizes — "When feasible, we recommend employing test
	// clusters to prepare experiments and test configurations."
	TestClusters bool
	// TestClusterNodes sizes the shakeout cluster (default 2).
	TestClusterNodes int
	// AbortOverBudget stops an environment when spend exceeds the
	// provider's budget. Without it, overspend is only discovered after
	// the reporting lag — "it is very difficult to fix overspending
	// retroactively." Under sharded execution concurrent environments
	// cannot observe each other's spend, so the provider budget is split
	// evenly across the provider's deployable cloud environments and each
	// shard aborts against its share — the provider-wide cap holds in
	// aggregate.
	AbortOverBudget bool
	// ReplayEvents bounds the number of events a Runner session retains
	// for replay to late or reattaching subscribers (see
	// Session.SubscribeFrom); 0 means DefaultReplayEvents. It is an
	// observation knob, not an execution one: the dataset does not
	// depend on it, so a Runner.Configure that changes only this field
	// keeps the cached study tiers (unlike every other option).
	ReplayEvents int
	// Chaos, when non-nil, enables the deterministic fault-injection
	// engine: each environment shard draws scenario faults (spot
	// reclaims, stockouts, quota revocations, network degradation,
	// registry pull failures) from its private "chaos/<env>" stream per
	// the plan. The plan is shared read-only across shards; the chaotic
	// dataset is still byte-identical for every worker count at a fixed
	// (seed, plan). Injected incidents and their recovery cost surface in
	// Results.Incidents and Results.Recovery.
	Chaos *chaos.Plan
}

// ErrBudgetExhausted aborts an environment under AbortOverBudget.
var ErrBudgetExhausted = fmt.Errorf("core: provider budget exhausted")

// applyPause implements PauseBetweenScales.
func (sh *shard) applyPause() {
	if sh.opts.PauseBetweenScales <= 0 || sh.spec.OnPrem() {
		return
	}
	sh.sim.Clock.Advance(sh.opts.PauseBetweenScales)
	sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Info, trace.Routine,
		"paused %v for cost reporting to catch up (reported $%.2f of $%.2f actual)",
		sh.opts.PauseBetweenScales,
		sh.meter.ReportedSpend(sh.spec.Provider), sh.meter.Spend(sh.spec.Provider))
}

// checkBudget implements AbortOverBudget.
func (sh *shard) checkBudget() error {
	if !sh.opts.AbortOverBudget || sh.spec.OnPrem() {
		return nil
	}
	if sh.meter.OverBudget(sh.spec.Provider) {
		sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Manual, trace.Blocking,
			"aborting: %s spend $%.0f exceeds this environment's budget share $%.0f",
			sh.spec.Provider, sh.meter.Spend(sh.spec.Provider), sh.meter.Budget(sh.spec.Provider))
		return fmt.Errorf("%w: %s at $%.0f", ErrBudgetExhausted, sh.spec.Provider, sh.meter.Spend(sh.spec.Provider))
	}
	return nil
}

// shakeout implements TestClusters: a tiny cluster, one quick run of the
// cheapest benchmark, teardown. Failures here are exactly what the test
// cluster exists to absorb.
func (sh *shard) shakeout() {
	if !sh.opts.TestClusters || sh.spec.OnPrem() {
		return
	}
	nodes := sh.opts.TestClusterNodes
	if nodes <= 0 {
		nodes = 2
	}
	cluster, err := sh.prov.Provision(cloud.ProvisionRequest{
		Env: sh.spec.Key, Type: sh.spec.Instance, Nodes: nodes,
		Kubernetes: sh.spec.Kubernetes, AllowSpareNode: sh.spec.Provider == cloud.Azure,
	})
	if err != nil {
		sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Setup, trace.Unexpected,
			"test cluster failed (better now than at full size): %v", err)
		return
	}
	rng := sh.sim.Stream("core/shakeout/" + sh.spec.Key)
	stream := apps.NewStream()
	r := stream.Run(sh.spec.Env, nodes, rng)
	sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Info, trace.Routine,
		"test cluster shakeout: stream triad %.1f %s on %d nodes", r.FOM, r.Unit, nodes)
	sh.sim.Clock.Advance(10 * time.Minute)
	if err := sh.prov.Teardown(cluster); err != nil {
		sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Setup, trace.Unexpected, "test teardown: %v", err)
	}
}
