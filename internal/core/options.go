package core

import (
	"fmt"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/trace"
)

// Options turn on the operational disciplines the paper's §4.2 suggests.
// The zero value reproduces the study as it was actually run.
type Options struct {
	// PauseBetweenScales inserts a wait after each cluster size so that
	// lagged cost reporting catches up before committing to the next,
	// larger (more expensive) size — "Operating on a cloud environment
	// with a one-day reporting delay warrants careful planning and pauses
	// between experiments."
	PauseBetweenScales time.Duration
	// TestClusters brings up a small shakeout cluster per environment
	// before the real sizes — "When feasible, we recommend employing test
	// clusters to prepare experiments and test configurations."
	TestClusters bool
	// TestClusterNodes sizes the shakeout cluster (default 2).
	TestClusterNodes int
	// AbortOverBudget stops an environment when the provider's *actual*
	// spend exceeds its budget. Without it, overspend is only discovered
	// after the reporting lag — "it is very difficult to fix overspending
	// retroactively."
	AbortOverBudget bool
}

// ErrBudgetExhausted aborts an environment under AbortOverBudget.
var ErrBudgetExhausted = fmt.Errorf("core: provider budget exhausted")

// applyPause implements PauseBetweenScales.
func (st *Study) applyPause(spec apps.EnvSpec) {
	if st.Opts.PauseBetweenScales <= 0 || spec.OnPrem() {
		return
	}
	st.Sim.Clock.Advance(st.Opts.PauseBetweenScales)
	st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
		"paused %v for cost reporting to catch up (reported $%.2f of $%.2f actual)",
		st.Opts.PauseBetweenScales,
		st.Meter.ReportedSpend(spec.Provider), st.Meter.Spend(spec.Provider))
}

// checkBudget implements AbortOverBudget.
func (st *Study) checkBudget(spec apps.EnvSpec) error {
	if !st.Opts.AbortOverBudget || spec.OnPrem() {
		return nil
	}
	if st.Meter.OverBudget(spec.Provider) {
		st.Log.Addf(st.Sim.Now(), spec.Key, trace.Manual, trace.Blocking,
			"aborting: %s spend $%.0f exceeds budget $%.0f",
			spec.Provider, st.Meter.Spend(spec.Provider), st.Meter.Budget(spec.Provider))
		return fmt.Errorf("%w: %s at $%.0f", ErrBudgetExhausted, spec.Provider, st.Meter.Spend(spec.Provider))
	}
	return nil
}

// shakeout implements TestClusters: a tiny cluster, one quick run of the
// cheapest benchmark, teardown. Failures here are exactly what the test
// cluster exists to absorb.
func (st *Study) shakeout(spec apps.EnvSpec) {
	if !st.Opts.TestClusters || spec.OnPrem() {
		return
	}
	nodes := st.Opts.TestClusterNodes
	if nodes <= 0 {
		nodes = 2
	}
	cluster, err := st.Prov.Provision(cloud.ProvisionRequest{
		Env: spec.Key, Type: spec.Instance, Nodes: nodes,
		Kubernetes: spec.Kubernetes, AllowSpareNode: spec.Provider == cloud.Azure,
	})
	if err != nil {
		st.Log.Addf(st.Sim.Now(), spec.Key, trace.Setup, trace.Unexpected,
			"test cluster failed (better now than at full size): %v", err)
		return
	}
	rng := st.Sim.Stream("core/shakeout/" + spec.Key)
	stream := apps.NewStream()
	r := stream.Run(spec.Env, nodes, rng)
	st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
		"test cluster shakeout: stream triad %.1f %s on %d nodes", r.FOM, r.Unit, nodes)
	st.Sim.Clock.Advance(10 * time.Minute)
	if err := st.Prov.Teardown(cluster); err != nil {
		st.Log.Addf(st.Sim.Now(), spec.Key, trace.Setup, trace.Unexpected, "test teardown: %v", err)
	}
}
