package core

// The execution API's event taxonomy. A Session emits one Event per
// observable execution step; events are pure observation — emitting them
// draws from no RNG stream, advances no clock, and never changes the
// order any study work executes in, so a subscribed session produces a
// dataset byte-identical to an unobserved RunFull (pinned by
// TestSessionIsPureObservation against the golden dataset).

// EventKind names one observable execution step.
type EventKind string

const (
	// EventStudyStarted opens a session's event stream: the partition
	// plan is fixed and Total carries its work-unit count.
	EventStudyStarted EventKind = "study-started"
	// EventStudyCached reports that the dataset was served without
	// execution; Tier says from where ("memory" — the in-process
	// single-flight cache — or "store", the persistent result store).
	EventStudyCached EventKind = "study-cached"
	// EventStudyFinished closes a successful session's stream.
	EventStudyFinished EventKind = "study-finished"
	// EventStudyFailed closes a failed or cancelled session's stream;
	// Err holds the study error (ctx.Err() after cancellation).
	EventStudyFailed EventKind = "study-failed"

	// EventEnvStarted and EventEnvFinished bracket one environment's
	// lifecycle (provisioning, scheduling, chaos, audits).
	EventEnvStarted  EventKind = "env-started"
	EventEnvFinished EventKind = "env-finished"
	// EventEnvFailed replaces EventEnvFinished when the environment's
	// shard errored; Err holds the shard error.
	EventEnvFailed EventKind = "env-failed"
	// EventEnvSkipped marks an environment the study never deployed
	// (EnvSpec.Unavailable).
	EventEnvSkipped EventKind = "env-skipped"

	// EventUnitStarted brackets one (env, app) unit's model/hookup
	// precompute; EventUnitFinished means it was computed,
	// EventUnitCached that it was decoded from the persistent store
	// instead (the incremental-execution path).
	EventUnitStarted  EventKind = "unit-started"
	EventUnitFinished EventKind = "unit-finished"
	EventUnitCached   EventKind = "unit-cached"

	// The fleet lifecycle of an offloaded unit. EventUnitLeased marks a
	// remote worker claiming the unit's lease; EventUnitLeaseExpired a
	// lease that lapsed (the unit re-queues or falls back to local
	// compute); EventUnitRemote replaces EventUnitFinished when the
	// unit's artifact was computed and pushed by a remote worker — the
	// session stream shows where every unit ran.
	EventUnitLeased       EventKind = "unit-leased"
	EventUnitLeaseExpired EventKind = "unit-lease-expired"
	EventUnitRemote       EventKind = "unit-remote-completed"

	// EventIncident surfaces one injected chaos fault, emitted after its
	// environment finishes (incident timestamps are shard-local here; the
	// merged campaign timeline lands in Results.Incidents).
	EventIncident EventKind = "incident"

	// EventProgress reports plan completion after every finished work
	// unit: Done of Total units complete.
	EventProgress EventKind = "progress"
)

// Event is one observation from a running session. Env, App, Tier, Err,
// and Incident are populated per the Kind docs above; Done/Total carry
// the partition-plan completion counts on EventStudyStarted,
// EventProgress, and the study-closing kinds.
type Event struct {
	// Seq is the event's 1-based position in its session's stream,
	// assigned at emission. Sequence numbers are monotonic per session
	// and shared by every subscriber — the cursor a disconnected
	// subscriber passes to Session.SubscribeFrom to resume exactly where
	// it left off.
	Seq  uint64
	Kind EventKind
	Env  string
	App  string
	// Tier is the serving tier on EventStudyCached: "memory" or "store".
	Tier string
	// Err is set on EventStudyFailed and EventEnvFailed.
	Err error
	// Incident is the injected fault on EventIncident.
	Incident *Incident
	// Done and Total are completed and planned work-unit counts from the
	// partition plan (environment tasks, plus one task per (env, app)
	// unit at GranularityEnvApp).
	Done, Total int
}

// Percent is the plan-completion percentage carried by the event, or 0
// when the event carries no counts.
func (e Event) Percent() float64 {
	if e.Total <= 0 {
		return 0
	}
	return 100 * float64(e.Done) / float64(e.Total)
}
