package core

import (
	"context"
	"fmt"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
)

// This file implements the fine-grained half of the work-partitioning
// plan. A study decomposes hierarchically:
//
//	study
//	└── environment shard        (lifecycle: provision, schedule, chaos, audit)
//	    └── (env, app) unit      (pure model + hookup draws)
//
// The only per-run randomness an environment consumes outside its
// lifecycle streams is the model's figure-of-merit jitter and the hookup
// jitter, and those draws come from a stream named after the (env, app)
// pair — so they are a pure function of (seed, env, app, scale order) and
// can be computed anywhere, in any order, on any worker. At
// GranularityEnvApp the executor dispatches them as independent units
// before the environment assembly replays the lifecycle; at
// GranularityEnv the shard draws them inline from the same streams at
// consumption time. Both paths touch each named stream in the identical
// order, which is the whole byte-identity argument across granularities.
//
// The merge is hierarchical and deterministic at every level: units feed
// their environment's assembly in canonical application order, and
// assemblies merge into the study in canonical matrix order (study.go).

// drawMode selects where a shard's per-run model/hookup draws come from.
type drawMode int

const (
	// drawInline draws from the per-application streams
	// "core/run/<env>/<app>" at consumption time (GranularityEnv).
	drawInline drawMode = iota
	// drawPlanned consumes draws precomputed by (env, app) units from the
	// same per-application streams (GranularityEnvApp).
	drawPlanned
	// drawLegacy draws from the single shared per-environment stream
	// "core/run/<env>" the pre-spec executor used (Options.LegacyRunStreams).
	drawLegacy
)

// runStreamName names the model/hookup noise stream of one (env, app)
// pair. The legacy executor used legacyRunStreamName for every app of an
// environment; the per-app extension is what makes (env, app) units
// independently computable.
func runStreamName(envKey, app string) string { return "core/run/" + envKey + "/" + app }

// legacyRunStreamName names the pre-spec shared per-environment stream.
func legacyRunStreamName(envKey string) string { return "core/run/" + envKey }

// plannedRun is one precomputed (env, app, scale, iter) outcome: the model
// result and the hookup draw, tagged with its coordinates so consumption
// can assert it is replaying the schedule the unit computed.
type plannedRun struct {
	nodes  int
	iter   int
	result apps.Result
	hookup time.Duration
}

// unitPlan is the output of one (env, app) unit: that application's
// planned runs across every scale of the environment, in consumption
// order, plus the assembly-side cursor.
type unitPlan struct {
	runs []plannedRun
	next int
}

// take consumes the next planned run, asserting its coordinates. Taking
// the last run releases the plan's backing slice: the assembly consumes
// units strictly in order, so an exhausted plan's decoded records are
// dead weight — dropping them as the merge streams through keeps the
// study's peak footprint at one unit, not every shard's full output.
func (u *unitPlan) take(app string, nodes, iter int) (plannedRun, error) {
	if u.next >= len(u.runs) {
		return plannedRun{}, fmt.Errorf("core: unit %s exhausted at nodes=%d iter=%d", app, nodes, iter)
	}
	pr := u.runs[u.next]
	if pr.nodes != nodes || pr.iter != iter {
		return plannedRun{}, fmt.Errorf("core: unit %s out of step: planned (nodes=%d iter=%d), consuming (nodes=%d iter=%d)",
			app, pr.nodes, pr.iter, nodes, iter)
	}
	u.next++
	if u.next == len(u.runs) {
		u.runs, u.next = nil, 0
	}
	return pr, nil
}

// itersFor is the per-run iteration count: the spec's repeat count, except
// the one study run the paper performed only once (the 8.82-minute-hookup
// LAMMPS at the 256-node AKS size). Units and assembly share it so the
// planned schedule and its consumption always agree.
func itersFor(spec apps.EnvSpec, nodes int, app string, base int) int {
	if spec.Key == "azure-aks-cpu" && nodes == 256 && app == "lammps" {
		return 1
	}
	return base
}

// planUnit computes the planned runs of one (env, app) unit. It draws
// from the stream runStreamName(spec.Key, m.Name()) of a private
// simulation seeded with the study's root seed, visiting the
// environment's scales in order — exactly the order the environment
// assembly (or an inline-drawing shard) consumes them, so the draw
// sequence on that named stream is identical in every mode.
func planUnit(seed uint64, spec apps.EnvSpec, m apps.Model, iterations int, hookup *network.HookupModel) *unitPlan {
	sm := sim.New(seed)
	rng := sm.Stream(runStreamName(spec.Key, m.Name()))
	u := &unitPlan{}
	maxNodes := apps.MaxNodesFor(spec)
	total := 0
	for _, nodes := range spec.Scales {
		if nodes <= maxNodes {
			total += itersFor(spec, nodes, m.Name(), iterations)
		}
	}
	u.runs = make([]plannedRun, 0, total)
	for _, nodes := range spec.Scales {
		if nodes > maxNodes {
			continue // the assembly skips this scale; no draws happen
		}
		iters := itersFor(spec, nodes, m.Name(), iterations)
		for it := 0; it < iters; it++ {
			r := m.Run(spec.Env, nodes, rng)
			hk := hookup.Hookup(spec.Provider, spec.Acc, spec.Kubernetes, nodes, rng)
			u.runs = append(u.runs, plannedRun{nodes: nodes, iter: it, result: r, hookup: hk})
		}
	}
	return u
}

// PlanUnitForBench exposes the (env, app) unit precompute to the root
// benchmark harness, which uses it to measure the fraction of the study
// the env-app granularity moves off the environments' critical path. It
// returns the number of planned runs.
func PlanUnitForBench(seed uint64, spec apps.EnvSpec, m apps.Model, iterations int, hookup *network.HookupModel) int {
	return len(planUnit(seed, spec, m, iterations, hookup).runs)
}

// unitSource says which tier served a unit — the observation feed for
// resolveUnit's closing event.
type unitSource int

const (
	unitFilled   unitSource = iota // already planned (dispatched earlier)
	unitFromStore                  // decoded from the persistent store
	unitRemote                     // computed by a fleet worker, then decoded
	unitComputed                   // computed on the calling worker
)

// ensureUnit makes one (env, app) unit's planned draws available, in
// tier order: already filled (no-op), decoded from the persistent result
// store (a unit whose sub-hash was stored by any earlier study — the
// incremental-execution path), offloaded to an attached fleet of remote
// workers (which push the artifact into the same store), or computed on
// the calling worker and stored for the next study. It reports the
// serving tier. Units of the same shard may run concurrently: each owns
// a private simulation, and each writes only its own planned-run slot.
func (sh *shard) ensureUnit(appIdx int) unitSource {
	if sh.planned[appIdx] != nil {
		return unitFilled
	}
	m := sh.models[appIdx]
	var key string
	if sh.store != nil {
		key = UnitKey(sh.sim.Seed(), sh.spec, m.Name(), sh.iterations, sh.opts.Chaos)
		if u, ok := sh.store.loadUnit(key, sh.spec, m.Name(), sh.iterations, sh.logf); ok {
			sh.planned[appIdx] = u
			return unitFromStore
		}
		if sh.fleet != nil {
			if u, ok := sh.offloadUnit(key, m.Name()); ok {
				sh.planned[appIdx] = u
				return unitRemote
			}
		}
	}
	sh.computes.Add(1)
	u := planUnit(sh.sim.Seed(), sh.spec, m, sh.iterations, sh.hookup)
	if sh.store != nil {
		sh.store.saveUnit(dataset.UnitMeta{
			Version: storeSchemaVersion, Key: key, Seed: sh.sim.Seed(),
			Env: sh.spec.Key, App: m.Name(), Iterations: sh.iterations,
		}, u, sh.logf)
	}
	sh.planned[appIdx] = u
	return unitComputed
}

// offloadUnit publishes one unit to the attached fleet and, when a
// verified remote artifact lands, decodes it from the store — the same
// loadUnit a warm hit uses, so a remote unit is indistinguishable from a
// cached one byte-wise. Any refusal (no live workers, attempts
// exhausted, straggler deadline, shutdown) or a post-acceptance decode
// failure returns false and the caller computes locally: an absent or
// misbehaving fleet can never wedge a study or change its bytes.
func (sh *shard) offloadUnit(key, app string) (*unitPlan, bool) {
	ctx := sh.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sess := sh.sess
	observe := func(kind EventKind) {
		sess.emit(Event{Kind: kind, Env: sh.spec.Key, App: app})
	}
	if !sh.fleet.Offload(ctx, sh.unitWork(key, app), observe) {
		return nil, false
	}
	return sh.store.loadUnit(key, sh.spec, app, sh.iterations, sh.logf)
}

// resolveUnit is ensureUnit bracketed by its observation events: one
// EventUnitStarted, then EventUnitCached (filled or store-decoded),
// EventUnitRemote (fleet-computed), or EventUnitFinished (computed
// locally). Emission is pure observation; with no session attached this
// is exactly ensureUnit.
func (sh *shard) resolveUnit(appIdx int) {
	m := sh.models[appIdx]
	sh.sess.emit(Event{Kind: EventUnitStarted, Env: sh.spec.Key, App: m.Name()})
	kind := EventUnitFinished
	switch sh.ensureUnit(appIdx) {
	case unitFilled, unitFromStore:
		kind = EventUnitCached
	case unitRemote:
		kind = EventUnitRemote
	}
	sh.sess.emit(Event{Kind: kind, Env: sh.spec.Key, App: m.Name()})
}

// ensureUnits fills every unit slot of a planned-mode shard that was not
// dispatched as its own work unit — the GranularityEnv-with-store path,
// where the shard is one task and resolves its units serially before
// replaying the lifecycle. Cancellation stops between units; the caller
// notices via its own context checks.
func (sh *shard) ensureUnits() {
	if sh.mode != drawPlanned {
		return
	}
	for i := range sh.models {
		if sh.canceled() != nil {
			return
		}
		if sh.planned[i] != nil {
			continue // dispatched as its own task; already observed there
		}
		sh.resolveUnit(i)
	}
}

// draw produces the model result and hookup time of one run, from
// whichever source the shard's mode dictates. All three modes visit the
// underlying named streams in the same per-stream order, so drawInline
// and drawPlanned are byte-identical; drawLegacy reproduces the pre-spec
// shared-stream sequence instead.
func (sh *shard) draw(appIdx int, m apps.Model, nodes, iter int) (apps.Result, time.Duration, error) {
	spec := sh.spec
	switch sh.mode {
	case drawPlanned:
		pr, err := sh.planned[appIdx].take(m.Name(), nodes, iter)
		return pr.result, pr.hookup, err
	case drawLegacy:
		if sh.legacyStream == nil {
			sh.legacyStream = sh.sim.Stream(legacyRunStreamName(spec.Key))
		}
		rng := sh.legacyStream
		r := m.Run(spec.Env, nodes, rng)
		hk := sh.hookup.Hookup(spec.Provider, spec.Acc, spec.Kubernetes, nodes, rng)
		return r, hk, nil
	default: // drawInline
		rng := sh.runStream(appIdx)
		r := m.Run(spec.Env, nodes, rng)
		hk := sh.hookup.Hookup(spec.Provider, spec.Acc, spec.Kubernetes, nodes, rng)
		return r, hk, nil
	}
}

// runStream returns the shard's cached per-application draw stream,
// deriving it on first use. The cache is pure memoization of
// sim.Stream(runStreamName(...)) — same stream object, same state.
func (sh *shard) runStream(appIdx int) *sim.Stream {
	if sh.runStreams == nil {
		sh.runStreams = make([]*sim.Stream, len(sh.models))
	}
	if s := sh.runStreams[appIdx]; s != nil {
		return s
	}
	s := sh.sim.Stream(runStreamName(sh.spec.Key, sh.models[appIdx].Name()))
	sh.runStreams[appIdx] = s
	return s
}
