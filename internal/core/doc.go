// Package core orchestrates the full study: it provisions every
// environment at every scale, builds the per-cloud containers, deploys the
// Flux Operator on the Kubernetes services, runs all 11 applications for
// five iterations per scale, meters the spend, and aggregates the records
// into the paper's tables and figures.
//
// # Execution model
//
// The study's environments are mutually independent, so RunFull executes
// them as shards over a worker pool (Options.Workers, default
// runtime.NumCPU()). Each shard owns a complete private substrate set — a
// sim.Simulation (virtual clock, event queue, named RNG streams derived
// from the study's root seed), a trace.Log, and its own meter, quota
// manager, provisioner, builder, and registry — so no mutable state is
// shared between concurrently running environments.
//
// # Determinism
//
// Every random draw a shard makes comes from a stream named for its
// environment ("core/run/<env>", "cloud/provision/<env>",
// "sched/<env>", ...), and streams are derived from (seed, name) alone.
// A shard's output therefore depends only on the root seed and its spec,
// never on goroutine scheduling. The merge step stitches shard results,
// logs, and charges together in the canonical matrix order of Study.Envs,
// shifting each shard's virtual timestamps by the summed duration of the
// shards before it — reconstructing one sequential campaign timeline. The
// result: RunFull's dataset is byte-identical for every worker count, and
// two runs with the same seed are byte-identical full stop.
//
// CachedRunFull memoizes the default-options dataset per seed so that
// benchmarks, commands, and examples regenerating multiple artifacts share
// a single study execution.
package core
