// Package core orchestrates the full study: it provisions every
// environment at every scale, builds the per-cloud containers, deploys the
// Flux Operator on the Kubernetes services, runs all 11 applications for
// five iterations per scale, meters the spend, and aggregates the records
// into the paper's tables and figures.
//
// # Study specs
//
// What a study runs is declared by a StudySpec — environment selection,
// application selection, scales, iterations, a chaos-plan reference, and
// the execution policy (workers, granularity). DefaultSpec is the paper's
// full 13×11×4×5 matrix; any other scenario is a different spec (built
// programmatically or parsed from a line-oriented spec file via
// ParseSpec/LoadSpec), not a code change. NewFromSpec materializes a spec
// into a Study; New(seed) is the default-spec shorthand.
//
// # Execution model
//
// Execution follows a hierarchical work-partitioning plan. The study's
// environments are mutually independent, so RunFull executes them as
// shards over a worker pool (Options.Workers, default runtime.NumCPU()).
// Each shard owns a complete private substrate set — a sim.Simulation
// (virtual clock, event queue, named RNG streams derived from the study's
// root seed), a trace.Log, and its own meter, quota manager, provisioner,
// builder, and registry — so no mutable state is shared between
// concurrently running environments. At Options.Granularity ==
// GranularityEnvApp each environment additionally fans out into one unit
// per (environment, application) pair that precomputes the pure
// model/hookup draws (see unit.go), lifting the parallelism cap from the
// environment count to env×app.
//
// # Determinism
//
// Every random draw a unit or shard makes comes from a stream named for
// its owner ("core/run/<env>/<app>", "cloud/provision/<env>",
// "sched/<env>", ...), and streams are derived from (seed, name) alone.
// An output therefore depends only on the root seed and its own
// coordinates, never on goroutine scheduling. The hierarchical merge
// stitches units into environments in canonical application order and
// shard results, logs, and charges into the study in the canonical matrix
// order of Study.Envs, shifting each shard's virtual timestamps by the
// summed duration of the shards before it — reconstructing one sequential
// campaign timeline. The result: RunFull's dataset is byte-identical for
// every worker count and granularity, and two runs with the same spec are
// byte-identical full stop. Options.LegacyRunStreams restores the
// pre-spec shared "core/run/<env>" stream naming so historical datasets
// (the original seed-2025 golden) remain reproducible.
//
// # Sessions and observability
//
// The public execution surface is Runner: Run(ctx, spec) blocks for the
// dataset, Start(ctx, spec) returns a Session — a subscribable event
// stream (study/env/unit started·finished·cached, injected incidents,
// plan progress), Progress counters, cooperative Cancel, and Wait.
// Events are pure observation (no RNG draws, no ordering impact), so a
// subscribed session is byte-identical to a blind RunFull; cancellation
// stops dispatching new work, drains in-flight shards at scale/app
// boundaries, and returns ctx's error without ever tearing the store
// (artifact writes are atomic). Studies are one-shot: a second
// Run/RunFull on the same Study returns ErrStudyConsumed.
//
// # Caching and persistence
//
// Runner.Run (and the CachedRunSpec/CachedRunFull wrappers) resolves a
// dataset through three tiers: a per-process memory map keyed by
// canonical spec hash — single-flight, so concurrent same-spec callers
// share one execution — a persistent content-addressed ResultStore
// when one is configured (-store DIR via internal/cli, or
// SetDefaultResultStore), and finally study execution. The store holds
// whole-study bundles under "study/<spec-hash>" and per-(env, app) unit
// outputs under "unit/<sub-hash>" (UnitKey); because a unit's sub-hash
// covers only that unit's own inputs, a spec that edits one environment
// of a previously stored study recomputes only that environment's units
// and decodes the rest — incremental execution. Warm results are
// byte-identical to cold compute; unreadable artifacts degrade to a
// logged warning and a recompute.
package core
