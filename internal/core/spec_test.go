package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
)

func TestDefaultSpecResolvesToFullMatrix(t *testing.T) {
	t.Parallel()
	r, err := DefaultSpec(2025).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	envs, err := apps.StudyEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Envs, envs) {
		t.Fatal("default spec does not resolve to the full study matrix")
	}
	if len(r.Models) != len(apps.All()) {
		t.Fatalf("default spec resolves %d models, want %d", len(r.Models), len(apps.All()))
	}
	if r.Iterations != Iterations {
		t.Fatalf("default iterations = %d, want %d", r.Iterations, Iterations)
	}
	if !r.Plan.Empty() {
		t.Fatal("default spec must not inject chaos")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	t.Parallel()
	specs := []*StudySpec{
		DefaultSpec(2025),
		{Seed: 7, Envs: []string{"azure-*", "onprem-a-cpu"}, Apps: []string{"amg2023", "lammps"},
			Scales: []int{8, 32}, Iterations: 3, Chaos: "default", Workers: 16, Granularity: GranularityEnvApp},
	}
	for _, s := range specs {
		s.normalize()
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.String(), err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip drifted:\n in:  %+v\n out: %+v", s, got)
		}
	}
}

func TestParseSpecDirectives(t *testing.T) {
	t.Parallel()
	s, err := ParseSpec(`
# a CPU-only scenario
seed 99
envs aws-* google-gke-cpu   # trailing comment
apps kripke
scales 32 64
iterations 2
chaos none
granularity env-app
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &StudySpec{Seed: 99, Envs: []string{"aws-*", "google-gke-cpu"}, Apps: []string{"kripke"},
		Scales: []int{32, 64}, Iterations: 2, Chaos: "none", Granularity: GranularityEnvApp}
	want.normalize()
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
}

func TestParseSpecRejects(t *testing.T) {
	t.Parallel()
	for _, src := range []string{
		"seed x",              // malformed value
		"frobnicate 3",        // unknown key
		"seed 1\nseed 2",      // repeated key
		"iterations 0",        // out of range
		"iterations 1 2",      // extra value
		"scales 64 32",        // not ascending
		"scales -1",           // out of range
		"granularity per-run", // unknown granularity
		"envs",                // key without value
	} {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", src)
		}
	}
	// Negative workers keep the Options contract ("zero or negative means
	// all CPUs") rather than erroring: they normalize to 0.
	s, err := ParseSpec("workers -2")
	if err != nil {
		t.Fatalf("negative workers must normalize, got error: %v", err)
	}
	if s.Workers != 0 {
		t.Fatalf("workers -2 normalized to %d, want 0", s.Workers)
	}
}

// TestParseSpecSeedlessDefaults: a spec file without a seed line means
// the published DefaultSeed, not seed 0 — a dataset silently matching no
// golden artifact would be a trap.
func TestParseSpecSeedlessDefaults(t *testing.T) {
	t.Parallel()
	s, err := ParseSpec("envs onprem-*\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != DefaultSeed {
		t.Fatalf("seedless spec parsed to seed %d, want %d", s.Seed, DefaultSeed)
	}
	// An explicit zero seed is still honored.
	s, err = ParseSpec("seed 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 0 {
		t.Fatalf("explicit seed 0 parsed to %d", s.Seed)
	}
}

// TestChaosNoneVsUnset: "" (unset) and "none" (explicitly clean) resolve
// and hash identically, but only the explicit spelling survives String()
// — that distinction is what lets internal/cli fill an unset reference
// with a tool default while an explicit "chaos none" blocks it.
func TestChaosNoneVsUnset(t *testing.T) {
	t.Parallel()
	unset := &StudySpec{Seed: 2025}
	none, err := ParseSpec("chaos none\n")
	if err != nil {
		t.Fatal(err)
	}
	if none.Chaos != "none" {
		t.Fatalf("explicit chaos none parsed to %q", none.Chaos)
	}
	hU, err := unset.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hN, err := none.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hU != hN {
		t.Fatal("unset and explicit none must hash identically (both fault-free)")
	}
	if strings.Contains(unset.String(), "chaos") {
		t.Fatalf("unset chaos must render no chaos line:\n%s", unset.String())
	}
	if !strings.Contains(none.String(), "chaos none") {
		t.Fatalf("explicit none must survive String():\n%s", none.String())
	}
	r, err := none.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Plan.Empty() {
		t.Fatal("chaos none must resolve to no plan")
	}
}

func TestSpecResolveSelections(t *testing.T) {
	t.Parallel()
	s := &StudySpec{Seed: 1, Envs: []string{"azure-*"}, Apps: []string{"lammps", "amg2023"}, Scales: []int{16, 64}}
	r, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Envs) != 4 {
		t.Fatalf("azure-* selects %d envs, want 4", len(r.Envs))
	}
	for _, e := range r.Envs {
		if !strings.HasPrefix(e.Key, "azure-") {
			t.Fatalf("selected %s under azure-*", e.Key)
		}
		if !reflect.DeepEqual(e.Scales, []int{16, 64}) {
			t.Fatalf("%s scales = %v, want the override", e.Key, e.Scales)
		}
	}
	// §2.8 order regardless of name order: amg2023 precedes lammps.
	if r.Models[0].Name() != "amg2023" || r.Models[1].Name() != "lammps" {
		t.Fatalf("models resolved out of canonical order: %s, %s", r.Models[0].Name(), r.Models[1].Name())
	}
	// Typos must not resolve to silent empty studies.
	for _, bad := range []*StudySpec{
		{Envs: []string{"azure-xyz-*"}},
		{Apps: []string{"gromacs"}},
	} {
		if _, err := bad.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) succeeded, want error", bad)
		}
	}
}

func TestSpecRunsSubsetStudy(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 2025, Envs: []string{"google-gke-cpu"}, Apps: []string{"lammps"}, Iterations: 2}
	st, err := NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	// 1 env × 1 app × 4 default scales × 2 iterations.
	if len(res.Runs) != 8 {
		t.Fatalf("subset study ran %d records, want 8", len(res.Runs))
	}
	for _, rec := range res.Runs {
		if rec.EnvKey != "google-gke-cpu" || rec.App != "lammps" {
			t.Fatalf("record outside the subset: %+v", rec)
		}
	}
}

// TestSpecSubsetIsCompositional is the payoff of per-application streams:
// a spec that selects a subset of environments and applications — at the
// full study's scales and iteration count — reproduces exactly the same
// records the full study holds for that slice, because each (env, app)
// pair draws only from its own "core/run/<env>/<app>" stream.
func TestSpecSubsetIsCompositional(t *testing.T) {
	t.Parallel()
	subset, err := CachedRunSpec(&StudySpec{Seed: 2025, Envs: []string{"google-gke-cpu"}, Apps: []string{"lammps"}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	fullSlice := full.RunsFor("google-gke-cpu", "lammps")
	if len(subset.Runs) != len(fullSlice) {
		t.Fatalf("subset ran %d records, full-study slice holds %d", len(subset.Runs), len(fullSlice))
	}
	for i, rec := range subset.Runs {
		want := fullSlice[i]
		if rec.FOM != want.FOM || rec.Hookup != want.Hookup || rec.Nodes != want.Nodes || rec.Iter != want.Iter {
			t.Fatalf("subset run %d differs from the full-study slice:\n subset: %+v\n full:   %+v", i, rec, want)
		}
	}
}

func TestSpecHashSeparatesSpecsAtSameSeed(t *testing.T) {
	t.Parallel()
	base := DefaultSpec(2025)
	variants := []*StudySpec{
		{Seed: 2025, Envs: []string{"aws-*"}},
		{Seed: 2025, Apps: []string{"amg2023"}},
		{Seed: 2025, Scales: []int{8}},
		{Seed: 2025, Iterations: 2},
		{Seed: 2025, Chaos: "default"},
	}
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{baseHash: -1}
	for i, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("specs %d and %d collide at the same seed", i, prev)
		}
		seen[h] = i
	}
	// Execution policy must NOT change the hash: the dataset is invariant
	// under it, so policy-only variants share a cache entry.
	policy := DefaultSpec(2025)
	policy.Workers = 32
	policy.Granularity = GranularityEnvApp
	h, err := policy.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != baseHash {
		t.Fatal("Workers/Granularity changed the spec hash; cache entries would needlessly split")
	}
	// The chaos reference hashes by resolved plan text, not by spelling:
	// a file containing the default plan hashes like "default".
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(path, []byte(chaos.DefaultPlanText), 0o644); err != nil {
		t.Fatal(err)
	}
	byRef := &StudySpec{Seed: 2025, Chaos: "default"}
	byFile := &StudySpec{Seed: 2025, Chaos: path}
	hRef, err := byRef.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hFile, err := byFile.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hRef != hFile {
		t.Fatal("equivalent chaos references hash differently; the hash must cover plan content, not the reference")
	}
}

func TestCachedRunSpecNoCollision(t *testing.T) {
	t.Parallel()
	full, err := CachedRunSpec(DefaultSpec(2025))
	if err != nil {
		t.Fatal(err)
	}
	subset, err := CachedRunSpec(&StudySpec{Seed: 2025, Envs: []string{"onprem-*"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(subset.Runs) >= len(full.Runs) {
		t.Fatalf("subset dataset (%d runs) not smaller than full (%d) — same-seed specs collided in the cache",
			len(subset.Runs), len(full.Runs))
	}
	// Same spec, same entry: pointer-identical shared Results.
	again, err := CachedRunSpec(&StudySpec{Seed: 2025, Envs: []string{"onprem-*"}})
	if err != nil {
		t.Fatal(err)
	}
	if again != subset {
		t.Fatal("identical specs must share one cache entry")
	}
	// And the default-spec entry is what CachedRunFull serves.
	fullAgain, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	if fullAgain != full {
		t.Fatal("CachedRunFull and the default spec must share one cache entry")
	}
}

func TestLoadSpec(t *testing.T) {
	t.Parallel()
	s, err := LoadSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != DefaultSeed {
		t.Fatalf("empty -spec seed = %d, want %d", s.Seed, DefaultSeed)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "study.spec")
	if err := os.WriteFile(path, []byte("seed 7\nenvs onprem-*\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Envs) != 1 || s.Envs[0] != "onprem-*" {
		t.Fatalf("loaded spec %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.spec")); err == nil {
		t.Fatal("missing spec file must error")
	}
}
