package core

import (
	"sort"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/metrics"
	"cloudhpc/internal/usability"
)

// envLabel returns the display label of an environment key.
func (r *Results) envLabel(key string) string {
	for _, e := range r.Envs {
		if e.Key == key {
			return e.Label
		}
	}
	return key
}

// FigureFor aggregates the runs of one application on one accelerator
// class into a figure: one series per environment, x = nodes (CPU) or
// total GPUs (GPU — so cluster B's 4-GPU nodes align with cloud's 8-GPU
// nodes), y = FOM mean ± stddev over iterations.
func (r *Results) FigureFor(app string, acc cloud.Accelerator) (*metrics.Figure, error) {
	model, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		Title:          app,
		XLabel:         "nodes",
		YLabel:         model.Unit(),
		HigherIsBetter: model.HigherIsBetter(),
	}
	if acc == cloud.GPU {
		fig.XLabel = "GPUs"
	}

	type cell struct {
		env string
		x   float64
	}
	samples := make(map[cell][]float64)
	for _, rec := range r.Runs {
		if rec.App != app || rec.Err != nil {
			continue
		}
		spec, err := apps.EnvByKey(rec.EnvKey)
		if err != nil || spec.Acc != acc {
			continue
		}
		x := float64(rec.Nodes)
		if acc == cloud.GPU {
			x = float64(spec.Env.Units(rec.Nodes))
		}
		c := cell{env: rec.EnvKey, x: x}
		samples[c] = append(samples[c], rec.FOM)
	}

	// Environment order follows the matrix for stable output.
	for _, spec := range r.Envs {
		if spec.Acc != acc {
			continue
		}
		for _, nodes := range spec.Scales {
			x := float64(nodes)
			if acc == cloud.GPU {
				x = float64(spec.Env.Units(nodes))
			}
			if vals, ok := samples[cell{env: spec.Key, x: x}]; ok {
				fig.Get(spec.Key).Add(x, metrics.Summarize(vals))
			}
		}
	}
	return fig, nil
}

// CostRow is one row of Table 4.
type CostRow struct {
	EnvKey   string
	Label    string
	Acc      cloud.Accelerator
	RateUSD  float64
	TotalUSD float64
}

// Table4 computes AMG2023 total costs by environment — execution time ×
// cluster size × instance cost, summed over iterations and scales — sorted
// ascending like the paper's Table 4. On-premises environments are omitted
// (no instance billing).
func (r *Results) Table4() []CostRow {
	totals := map[string]float64{}
	for _, rec := range r.Runs {
		if rec.App == "amg2023" && rec.Err == nil {
			totals[rec.EnvKey] += rec.CostUSD
		}
	}
	var rows []CostRow
	for _, spec := range r.Envs {
		usd, ok := totals[spec.Key]
		if !ok || spec.OnPrem() {
			continue
		}
		rows = append(rows, CostRow{
			EnvKey: spec.Key, Label: spec.Label, Acc: spec.Acc,
			RateUSD: spec.Instance.HourlyUSD, TotalUSD: usd,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalUSD != rows[j].TotalUSD {
			return rows[i].TotalUSD < rows[j].TotalUSD
		}
		return rows[i].EnvKey < rows[j].EnvKey
	})
	return rows
}

// Table3 derives the usability assessment for every deployable environment
// from the study trace.
func (r *Results) Table3() []usability.Assessment {
	var keys []string
	for _, spec := range apps.Deployable(r.Envs) {
		keys = append(keys, spec.Key)
	}
	return usability.NewScorer().ScoreAll(r.Log, keys)
}

// HookupSeries returns the measured hookup times of one environment by
// node count, ascending.
func (r *Results) HookupSeries(envKey string) ([]int, []time.Duration) {
	m := r.Hookups[envKey]
	var nodes []int
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]time.Duration, len(nodes))
	for i, n := range nodes {
		out[i] = m[n]
	}
	return nodes, out
}

// StudyCosts returns total spend per cloud provider (paper §3.4).
func (r *Results) StudyCosts() map[cloud.Provider]float64 {
	out := map[cloud.Provider]float64{}
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		out[p] = r.Meter.Spend(p)
	}
	return out
}

// FailureSummary counts failed runs per (env, app) — the study's negative
// results (Laghos timeouts and segfaults, Quicksilver GPU, MiniFE output).
func (r *Results) FailureSummary() map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, rec := range r.Runs {
		if rec.Err == nil {
			continue
		}
		if out[rec.EnvKey] == nil {
			out[rec.EnvKey] = map[string]int{}
		}
		out[rec.EnvKey][rec.App]++
	}
	return out
}

// RunsFor filters the dataset.
func (r *Results) RunsFor(envKey, app string) []RunRecord {
	var out []RunRecord
	for _, rec := range r.Runs {
		if (envKey == "" || rec.EnvKey == envKey) && (app == "" || rec.App == app) {
			out = append(out, rec)
		}
	}
	return out
}
