package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// subscriberBuffer is each subscriber channel's capacity. A full study
// emits well under a thousand events, so an actively-draining subscriber
// never drops; one that stalls loses events (counted by Dropped) rather
// than ever blocking execution.
const subscriberBuffer = 1024

// replayCap bounds the events buffered before the first subscriber
// attaches. Start necessarily races the caller's Subscribe, so the
// session keeps the opening events (study-started/cached, the first
// envs and units) and replays them to the first subscriber; a session
// nobody ever subscribes to stops buffering at the cap and degrades to
// a two-atomic-load no-op per event.
const replayCap = 256

// Session is one observable study execution started by Runner.Start. It
// exposes the event stream (Subscribe), plan-completion counters
// (Progress), cooperative cancellation (Cancel), and the terminal result
// (Wait). A session is safe for concurrent use by any number of
// subscribers and waiters.
//
// Observation is pure and close to free when unused: events draw from no
// RNG stream and impose no ordering, and with zero subscribers the emit
// path is two atomic loads once the small replay buffer fills, so a
// no-subscriber session runs within noise of a bare RunFull
// (BenchmarkRunnerStudyCold vs BenchmarkStudyStoreCold).
type Session struct {
	cancel context.CancelFunc
	done   chan struct{}
	res    *Results
	err    error

	total     atomic.Int64
	completed atomic.Int64
	dropped   atomic.Int64

	mu         sync.Mutex
	subs       map[chan Event]bool
	closed     bool
	replay     []Event
	replayDone atomic.Bool // first subscriber attached, or cap reached
	nsubs      atomic.Int32
}

func newSession(cancel context.CancelFunc) *Session {
	return &Session{cancel: cancel, done: make(chan struct{}), subs: make(map[chan Event]bool)}
}

// Subscribe registers a new event stream on the session and returns the
// channel plus an unsubscribe func. The first subscriber receives the
// buffered opening events (up to replayCap), so subscribing right after
// Start observes the stream from the beginning. Delivery never blocks
// execution: a subscriber that falls more than subscriberBuffer events
// behind loses the overflow (counted by Dropped) instead of stalling
// the study. The channel is closed when the session completes or the
// subscriber unsubscribes; subscribing after completion yields the
// replayed opening events (first subscriber only) and a closed channel.
func (s *Session) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subscriberBuffer)
	s.mu.Lock()
	for _, ev := range s.replay {
		ch <- ev // subscriberBuffer ≥ replayCap: never blocks
	}
	s.replay = nil
	if s.closed {
		s.replayDone.Store(true)
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	// Register before flipping replayDone: emit's lock-free fast path
	// reads the two atomics without s.mu, so a subscriber must be
	// countable the instant replay capture ends or an event landing in
	// that window would vanish unobserved.
	s.subs[ch] = true
	s.nsubs.Add(1)
	s.replayDone.Store(true)
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.subs[ch] {
			delete(s.subs, ch)
			s.nsubs.Add(-1)
			close(ch)
		}
	}
}

// Wait blocks until the session completes and returns its dataset. All
// waiters receive the same (shared, read-only) Results or the same
// error; after cancellation that error is the context's.
func (s *Session) Wait() (*Results, error) {
	<-s.done
	return s.res, s.err
}

// Done returns a channel closed when the session completes, for callers
// that select rather than block.
func (s *Session) Done() <-chan struct{} { return s.done }

// Cancel requests cooperative cancellation: the executor stops
// dispatching new work units, drains in-flight ones, and Wait returns
// the context error. Cancelling a session that leads a single-flight
// execution cancels it for every caller sharing it; cancelling a
// follower detaches only that follower.
func (s *Session) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

// Progress reports completed and planned work-unit counts from the
// partition plan. Total is 0 until the study starts (and stays 0 for a
// dataset served from a cache tier — there is no plan to execute).
func (s *Session) Progress() (done, total int) {
	return int(s.completed.Load()), int(s.total.Load())
}

// Dropped reports how many events were discarded because a subscriber's
// buffer was full.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

// setTotal records the partition plan size. Nil-safe: the no-session
// paths (Study.RunFull, Study.Run) pass a nil *Session through the
// executor and every observation hook degrades to a no-op.
func (s *Session) setTotal(n int) {
	if s == nil {
		return
	}
	s.total.Store(int64(n))
}

// taskDone counts one completed work unit and publishes the progress
// event. Nil-safe.
func (s *Session) taskDone() {
	if s == nil {
		return
	}
	done := s.completed.Add(1)
	s.emit(Event{Kind: EventProgress, Done: int(done), Total: int(s.total.Load())})
}

// emit delivers an event to every subscriber (or the pre-subscriber
// replay buffer) without ever blocking the caller. Nil-safe, and two
// atomic loads on the steady no-subscriber path.
func (s *Session) emit(ev Event) {
	if s == nil || (s.nsubs.Load() == 0 && s.replayDone.Load()) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.subs) == 0 {
		if !s.replayDone.Load() {
			if s.replay = append(s.replay, ev); len(s.replay) >= replayCap {
				s.replayDone.Store(true)
			}
		}
		return
	}
	for ch := range s.subs {
		select {
		case ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// counts stamps the current plan counters onto a study-closing event.
func (s *Session) counts(ev Event) Event {
	if s != nil {
		ev.Done, ev.Total = int(s.completed.Load()), int(s.total.Load())
	}
	return ev
}

// finish publishes the terminal state exactly once: the closing event,
// the result, and the closed done channel; all subscriber channels close
// after the closing event is delivered.
func (s *Session) finish(res *Results, err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.emit(s.counts(Event{Kind: EventStudyFailed, Err: err}))
	} else {
		s.emit(s.counts(Event{Kind: EventStudyFinished}))
	}
	s.res, s.err = res, err
	s.mu.Lock()
	s.closed = true
	for ch := range s.subs {
		delete(s.subs, ch)
		s.nsubs.Add(-1)
		close(ch)
	}
	s.mu.Unlock()
	close(s.done)
}
