package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// subscriberBuffer is each subscriber channel's live capacity (replayed
// events are buffered on top of it). A full study emits well under a
// thousand events, so an actively-draining subscriber never drops; one
// that stalls loses events (counted by Dropped) rather than ever
// blocking execution.
const subscriberBuffer = 1024

// DefaultReplayEvents is the default bound on the events a session
// retains for replay (Options.ReplayEvents overrides it per run). Before
// the first subscriber attaches the ring captures the opening events —
// Start necessarily races the caller's Subscribe, so subscribing right
// after Start still observes the stream from the beginning — and once a
// subscriber has attached (or Retain was called) it keeps the most
// recent events so a disconnected subscriber can resume from its last
// sequence number. A session nobody ever subscribes to stops recording
// at the bound and degrades to a few atomic operations per event.
const DefaultReplayEvents = 256

// Session is one observable study execution started by Runner.Start. It
// exposes the event stream (Subscribe, SubscribeFrom), plan-completion
// counters (Progress), cooperative cancellation (Cancel), and the
// terminal result (Wait). A session is safe for concurrent use by any
// number of subscribers and waiters.
//
// Every emitted event carries a monotonic 1-based sequence number
// (Event.Seq), and the session retains a bounded ring of recent events:
// SubscribeFrom(afterSeq) replays the retained events the cursor has not
// seen and reports how many are gone for good (Subscription.Missed) —
// the reattach-after-disconnect primitive the RPC service is built on.
//
// Observation is pure and close to free when unused: events draw from no
// RNG stream and impose no ordering, and with zero subscribers the emit
// path is a few atomic operations once the replay ring fills, so a
// no-subscriber session runs within noise of a bare RunFull
// (BenchmarkRunnerStudyCold vs BenchmarkStudyStoreCold).
type Session struct {
	cancel context.CancelFunc
	done   chan struct{}
	res    *Results
	err    error

	total     atomic.Int64
	completed atomic.Int64
	dropped   atomic.Int64
	seq       atomic.Uint64 // last assigned event sequence number
	lost      atomic.Uint64 // events no longer replayable

	mu     sync.Mutex
	subs   map[chan Event]bool
	closed bool
	ring   []Event // retained events, ascending by Seq
	bound  int     // ring capacity; 0 means DefaultReplayEvents
	// retain: a subscriber has attached (or Retain was called), so the
	// ring rolls — newest events evict oldest — instead of stopping at
	// the bound as it does while capturing opening events.
	retain bool
	// saturated: never-retained ring hit its bound, so emit degrades to
	// the lock-free counting path until a first subscriber arrives.
	saturated atomic.Bool
	nsubs     atomic.Int32
}

// Subscription is one attachment to a session's event stream, created by
// SubscribeFrom.
type Subscription struct {
	// Events delivers the replayed and live events in sequence order and
	// is closed when the session completes or the subscription is closed.
	Events <-chan Event
	// Missed counts the events after the requested cursor that can never
	// be delivered: they were evicted from the bounded replay ring (or
	// emitted while nothing retained them) before this attach. A missed
	// count of zero guarantees the subscription observes every event
	// after its cursor exactly once, in order.
	Missed uint64
	cancel func()
}

// Close detaches the subscription and closes its channel. Safe to call
// more than once and after the session has completed.
func (sub *Subscription) Close() { sub.cancel() }

func newSession(cancel context.CancelFunc) *Session {
	return &Session{cancel: cancel, done: make(chan struct{}), subs: make(map[chan Event]bool)}
}

// setReplayBound installs the session's replay-ring capacity
// (Options.ReplayEvents). Called before any event is emitted.
func (s *Session) setReplayBound(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.bound = n
	if len(s.ring) > n { // defensive: never called after events today
		s.lost.Add(uint64(len(s.ring) - n))
		s.ring = append([]Event(nil), s.ring[len(s.ring)-n:]...)
	}
	s.mu.Unlock()
}

func (s *Session) replayBound() int {
	if s.bound > 0 {
		return s.bound
	}
	return DefaultReplayEvents
}

// Retain switches the replay ring to rolling retention — newest events
// evict oldest — even before (or without) a subscriber, so a later
// SubscribeFrom can resume from any recent cursor. Without it a session
// nobody subscribes to stops recording at the ring bound (keeping the
// opening events for a late first subscriber, at a few atomic operations
// per further event). The RPC session registry calls Retain on every
// session it starts: service clients attach, detach, and reattach at
// will, and the ring must hold the most recent window when they do.
func (s *Session) Retain() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retain = true
	s.saturated.Store(false)
	s.mu.Unlock()
}

// Subscribe registers a new event stream on the session and returns the
// channel plus an unsubscribe func — shorthand for SubscribeFrom(0),
// discarding the replay accounting. The subscriber receives the retained
// events first (for a subscriber attaching right after Start, that is
// the stream from the beginning), then the live stream. Delivery never
// blocks execution: a subscriber that falls more than subscriberBuffer
// events behind loses the overflow (counted by Dropped) instead of
// stalling the study. The channel is closed when the session completes
// or the subscriber unsubscribes; subscribing after completion yields
// the retained events and a closed channel.
func (s *Session) Subscribe() (<-chan Event, func()) {
	sub := s.SubscribeFrom(0)
	return sub.Events, sub.cancel
}

// SubscribeFrom registers an event stream resuming after the given
// sequence cursor: retained events with Seq > afterSeq are replayed in
// order, then the live stream follows. afterSeq 0 requests the stream
// from the beginning; a subscriber that was disconnected passes the last
// sequence number it saw and receives exactly the events it missed —
// unless the bounded ring has already evicted some of them, which the
// returned Subscription.Missed counts (it is 0 in the common case).
func (s *Session) SubscribeFrom(afterSeq uint64) *Subscription {
	s.mu.Lock()
	s.retain = true
	s.saturated.Store(false)
	var replay []Event
	for _, ev := range s.ring {
		if ev.Seq > afterSeq {
			replay = append(replay, ev)
		}
	}
	missed := uint64(0)
	if last := s.seq.Load(); afterSeq < last {
		missed = last - afterSeq - uint64(len(replay))
	}
	ch := make(chan Event, subscriberBuffer+len(replay))
	for _, ev := range replay {
		ch <- ev
	}
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return &Subscription{Events: ch, Missed: missed, cancel: func() {}}
	}
	// Register before unlocking: emit's lock-free fast path reads the
	// subscriber count without s.mu, so a subscriber must be countable
	// the instant its replay capture ends or an event landing in that
	// window would vanish unobserved.
	s.subs[ch] = true
	s.nsubs.Add(1)
	s.mu.Unlock()
	var once sync.Once
	return &Subscription{Events: ch, Missed: missed, cancel: func() {
		once.Do(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.subs[ch] {
				delete(s.subs, ch)
				s.nsubs.Add(-1)
				close(ch)
			}
		})
	}}
}

// Wait blocks until the session completes and returns its dataset. All
// waiters receive the same (shared, read-only) Results or the same
// error; after cancellation that error is the context's.
func (s *Session) Wait() (*Results, error) {
	<-s.done
	return s.res, s.err
}

// Done returns a channel closed when the session completes, for callers
// that select rather than block.
func (s *Session) Done() <-chan struct{} { return s.done }

// Cancel requests cooperative cancellation: the executor stops
// dispatching new work units, drains in-flight ones, and Wait returns
// the context error. Cancelling a session that leads a single-flight
// execution cancels it for every caller sharing it; cancelling a
// follower detaches only that follower.
func (s *Session) Cancel() {
	if s.cancel != nil {
		s.cancel()
	}
}

// Progress reports completed and planned work-unit counts from the
// partition plan. Total is 0 until the study starts (and stays 0 for a
// dataset served from a cache tier — there is no plan to execute).
func (s *Session) Progress() (done, total int) {
	return int(s.completed.Load()), int(s.total.Load())
}

// Dropped reports how many events were discarded because a subscriber's
// buffer was full.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

// Seq reports the sequence number of the last event the session
// assigned — the high-water mark a reattaching subscriber's cursor is
// measured against.
func (s *Session) Seq() uint64 { return s.seq.Load() }

// Lost reports how many events are no longer replayable: evicted from
// the bounded replay ring, or emitted after the ring filled while
// nothing retained the stream. A SubscribeFrom cursor older than the
// retained window sees them as Subscription.Missed.
func (s *Session) Lost() uint64 { return s.lost.Load() }

// setTotal records the partition plan size. Nil-safe: the no-session
// paths (Study.RunFull, Study.Run) pass a nil *Session through the
// executor and every observation hook degrades to a no-op.
func (s *Session) setTotal(n int) {
	if s == nil {
		return
	}
	s.total.Store(int64(n))
}

// taskDone counts one completed work unit and publishes the progress
// event. Nil-safe.
func (s *Session) taskDone() {
	if s == nil {
		return
	}
	done := s.completed.Add(1)
	s.emit(Event{Kind: EventProgress, Done: int(done), Total: int(s.total.Load())})
}

// emit assigns the event its sequence number, records it in the replay
// ring, and delivers it to every subscriber — without ever blocking the
// caller. Nil-safe, and a few atomic operations on the steady
// no-subscriber path once the ring has saturated.
func (s *Session) emit(ev Event) {
	if s == nil {
		return
	}
	if s.nsubs.Load() == 0 && s.saturated.Load() {
		// Nobody is listening and nothing retains the stream: the event
		// is numbered and counted, never delivered. (An emit racing the
		// first-ever subscribe on a saturated ring may land here and be
		// counted missed rather than delivered — the count stays honest.)
		ev.Seq = s.seq.Add(1)
		s.lost.Add(1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.Seq = s.seq.Add(1) // under s.mu: the ring stays seq-ascending
	s.record(ev)
	for ch := range s.subs {
		select {
		case ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// record appends one event to the replay ring, holding s.mu. While
// capturing opening events (no subscriber yet, no Retain) a full ring
// stops recording and flips the lock-free emit path on; under retention
// it rolls, evicting the oldest event. Either way the overflow is
// counted in lost, never silent.
func (s *Session) record(ev Event) {
	bound := s.replayBound()
	if len(s.ring) < bound {
		s.ring = append(s.ring, ev)
		return
	}
	if !s.retain {
		s.saturated.Store(true)
		s.lost.Add(1)
		return
	}
	copy(s.ring, s.ring[1:])
	s.ring[bound-1] = ev
	s.lost.Add(1)
}

// counts stamps the current plan counters onto a study-closing event.
func (s *Session) counts(ev Event) Event {
	if s != nil {
		ev.Done, ev.Total = int(s.completed.Load()), int(s.total.Load())
	}
	return ev
}

// finish publishes the terminal state exactly once: the closing event,
// the result, and the closed done channel; all subscriber channels close
// after the closing event is delivered. The replay ring is kept — a
// subscriber reattaching after completion still replays the retained
// tail of the stream.
func (s *Session) finish(res *Results, err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.emit(s.counts(Event{Kind: EventStudyFailed, Err: err}))
	} else {
		s.emit(s.counts(Event{Kind: EventStudyFinished}))
	}
	s.res, s.err = res, err
	s.mu.Lock()
	s.closed = true
	for ch := range s.subs {
		delete(s.subs, ch)
		s.nsubs.Add(-1)
		close(ch)
	}
	s.mu.Unlock()
	close(s.done)
}
