package core

import (
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
)

// These tests pin Results.FigureFor — the figure-aggregation hot path —
// on its edge cases, using small spec-driven studies so each case is a
// scenario, not a fixture.

// TestFigureForEmptyEnvSubset: a dataset whose environment subset has no
// rows on the requested accelerator must yield a figure with zero series,
// not an error — figures over subsets render as empty panels.
func TestFigureForEmptyEnvSubset(t *testing.T) {
	t.Parallel()
	res, err := CachedRunSpec(&StudySpec{Seed: 2025, Envs: []string{"onprem-a-cpu"}, Apps: []string{"amg2023"}})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := res.FigureFor("amg2023", cloud.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 0 {
		t.Fatalf("GPU figure over a CPU-only subset has %d series, want 0", len(fig.Series))
	}
	if _, err := fig.BestAt(32); err == nil {
		t.Fatal("BestAt over an empty figure must error")
	}
	// An app absent from the dataset behaves the same way; an unknown app
	// is an error (the model list is the authority).
	empty, err := res.FigureFor("lammps", cloud.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Series) != 0 {
		t.Fatalf("figure for an unselected app has %d series, want 0", len(empty.Series))
	}
	if _, err := res.FigureFor("not-an-app", cloud.CPU); err == nil {
		t.Fatal("unknown application must error")
	}
}

// TestFigureForGPUAxisUnitConversion: GPU figures plot total GPUs, not
// nodes, so cluster B's 4-GPU nodes align with the clouds' 8-GPU nodes —
// the axis convention behind the paper's GPU panels.
func TestFigureForGPUAxisUnitConversion(t *testing.T) {
	t.Parallel()
	res, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := res.FigureFor("amg2023", cloud.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if fig.XLabel != "GPUs" {
		t.Fatalf("GPU figure x-label = %q, want GPUs", fig.XLabel)
	}
	for _, tc := range []struct {
		env         string
		gpusPerNode int
	}{
		{"onprem-b-gpu", 4}, // POWER9 hosts: 4 GPUs/node, double the nodes
		{"aws-eks-gpu", 8},
	} {
		spec, err := apps.EnvByKey(tc.env)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.RanksPerNode(); got != tc.gpusPerNode {
			t.Fatalf("%s has %d GPUs/node, test expects %d", tc.env, got, tc.gpusPerNode)
		}
		series := fig.Get(tc.env)
		if len(series.Points) == 0 {
			t.Fatalf("no %s points", tc.env)
		}
		// The series' x values must be exactly {nodes × GPUs/node} over the
		// successful runs — nothing at raw node counts, nothing extra.
		wantX := map[float64]bool{}
		for _, rec := range res.RunsFor(tc.env, "amg2023") {
			if rec.Err == nil && rec.Nodes <= apps.MaxNodesFor(spec) {
				wantX[float64(rec.Nodes*tc.gpusPerNode)] = true
			}
		}
		if len(series.Points) != len(wantX) {
			t.Fatalf("%s: %d points, want %d (x = nodes×GPUs)", tc.env, len(series.Points), len(wantX))
		}
		for _, p := range series.Points {
			if !wantX[p.X] {
				t.Fatalf("%s: unexpected point at x=%v; x must be nodes×GPUs", tc.env, p.X)
			}
		}
	}
	// Both 32-GPU configurations land on the same x — that alignment is
	// the point of the conversion.
	if _, ok := fig.Get("onprem-b-gpu").At(32); !ok {
		t.Fatal("cluster B (8 nodes × 4 GPUs) should have a point at 32 GPUs")
	}
	if _, ok := fig.Get("aws-eks-gpu").At(32); !ok {
		t.Fatal("EKS (4 nodes × 8 GPUs) should have a point at 32 GPUs")
	}
}

// TestFigureForAllErrorRuns: every failed run is excluded from
// aggregation, so an (env, app) pair that only ever fails contributes no
// points — the Quicksilver GPU pinning bug in the real dataset.
func TestFigureForAllErrorRuns(t *testing.T) {
	t.Parallel()
	res, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.RunsFor("azure-aks-gpu", "quicksilver")
	if len(recs) == 0 {
		t.Fatal("no Quicksilver records on azure-aks-gpu")
	}
	for _, rec := range recs {
		if rec.Err == nil {
			t.Fatalf("expected every azure-aks-gpu Quicksilver run to fail, got %+v", rec)
		}
	}
	fig, err := res.FigureFor("quicksilver", cloud.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if s := fig.Get("azure-aks-gpu"); len(s.Points) != 0 {
		t.Fatalf("all-error series has %d points, want 0", len(s.Points))
	}
}
