package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/k8s"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sched"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// shard executes one environment of the matrix in complete isolation: it
// owns a private simulation (clock, event queue, and named RNG streams
// derived from the study's root seed), a private trace log, and private
// copies of every stateful substrate — meter, quota manager, placement
// service, provisioner, builder, and registry. The application models and
// the hookup model are shared with the study read-only (Run never mutates
// a model). Because random streams are
// derived from (seed, name) and every name a shard draws from is keyed by
// its environment, a shard's outputs depend only on the seed and its own
// spec — never on which worker ran it, when, or what other shards did.
// That independence is the entire determinism argument: the merge step can
// then stitch shards together in canonical matrix order and produce
// byte-identical results for any worker count.
type shard struct {
	spec   apps.EnvSpec
	opts   Options
	sim    *sim.Simulation
	log    *trace.Log
	meter  *cloud.Meter
	quota  *cloud.QuotaManager
	prov   *cloud.Provisioner
	build  *containers.Builder
	reg    *containers.Registry
	hookup *network.HookupModel
	models []apps.Model
	// chaos injects this shard's share of the study's fault plan; nil when
	// no plan is set or no rule targets the environment. Its draws come
	// from the stream "chaos/<env>" of the shard's own simulation, so the
	// faults — like everything else a shard does — depend only on the
	// (seed, plan, spec) triple, never on scheduling.
	chaos *chaos.Engine
	// iterations is the spec's per-scale repeat count (itersFor may lower
	// it for individual runs).
	iterations int
	// mode selects where per-run model/hookup draws come from (see
	// unit.go); planned holds the per-application unit outputs when mode
	// is drawPlanned, indexed like models.
	mode    drawMode
	planned []*unitPlan
	// store, when non-nil, serves and receives unit plans (drawPlanned
	// mode only); computes counts the units this shard actually computed,
	// shared with the parent study's probe. logf overrides the store's
	// own warning logger when the study injected one.
	store    *ResultStore
	computes *atomic.Int64
	logf     func(format string, args ...any)
	// fleet, when non-nil alongside store, offloads store-missed units to
	// remote workers before falling back to local compute (see unit.go).
	fleet FleetDelegate

	// runStreams caches the per-application draw streams (and legacyStream
	// the shared pre-spec stream) so the inner loop stops re-deriving
	// "core/run/<env>/<app>" — one string concat plus a map lookup per
	// run. Simulation.Stream memoizes by name, so the cache returns the
	// same stream object the name lookup would.
	runStreams   []*sim.Stream
	legacyStream *sim.Stream

	// ctx is the run's cancellation context and sess its observing
	// session (both may be nil on legacy paths); they are assigned by
	// runSession before dispatch. Cancellation checks never draw from an
	// RNG stream, so an uncancelled run is bit-identical with or without
	// them.
	ctx  context.Context
	sess *Session

	res *Results // shard-local slice of the dataset
	err error
}

// newShard builds the private substrate set for one environment. Budgets
// are inherited from the study meter so test overrides apply per shard;
// under AbortOverBudget each shard receives an equal share of its
// provider's budget (see budgetShare) so the provider-wide cap still holds
// even though concurrent environments cannot observe each other's spend.
func (st *Study) newShard(spec apps.EnvSpec) *shard {
	s := sim.New(st.Sim.Seed())
	log := trace.NewLog()
	meter := cloud.NewMeter(s, log)
	for p, b := range st.Meter.Budgets() {
		meter.SetBudget(p, b)
	}
	if st.Opts.AbortOverBudget && !spec.OnPrem() {
		if share, ok := st.budgetShare(spec); ok {
			meter.SetBudget(spec.Provider, share)
		}
	}
	quota := cloud.NewQuotaManager(s, log)
	prov := cloud.NewProvisioner(s, log, meter, quota, cloud.NewPlacementService(s, log))
	reg := containers.NewRegistry()
	eng := chaos.NewEngine(st.Opts.Chaos, spec.Key, spec.Instance.HourlyUSD, s, log)
	if eng != nil {
		prov.Capacity = eng
		reg.SetFaults(eng)
	}
	// The study's one anomalous node ("supermarket fish") surfaced on the
	// AKS CPU fleet; with per-shard node counters the incident is pinned to
	// that shard, at a bring-up that lands inside the audited largest
	// cluster (32+64+128 = 224 nodes precede it).
	if spec.Key == "azure-aks-cpu" {
		prov.FishEveryN = 450
	} else {
		prov.FishEveryN = 0
	}
	// A result store forces drawPlanned at any granularity: unit plans
	// are the store's exchange format, and planned and inline draws are
	// byte-identical by construction (they touch the same named streams
	// in the same order). Legacy streams have no per-app units at all, so
	// they bypass the store entirely.
	mode := drawInline
	switch {
	case st.Opts.LegacyRunStreams:
		mode = drawLegacy
	case st.Opts.Granularity == GranularityEnvApp || st.Store != nil:
		mode = drawPlanned
	}
	sh := &shard{
		spec:       spec,
		opts:       st.Opts,
		sim:        s,
		log:        log,
		meter:      meter,
		quota:      quota,
		prov:       prov,
		build:      containers.NewBuilder(s, log),
		reg:        reg,
		hookup:     st.Hookup,
		models:     st.Models,
		chaos:      eng,
		iterations: st.Iterations,
		mode:       mode,
		res: &Results{
			// Sized to the shard's full schedule (scale skips only leave
			// slack); one backing array for the whole run set.
			Runs:    make([]RunRecord, 0, len(st.Models)*len(spec.Scales)*st.Iterations),
			ECCOn:   make(map[string]float64),
			Hookups: make(map[string]map[int]time.Duration),
		},
	}
	// Event capacity from the partition plan: a handful of events per run
	// plus per-scale lifecycle chatter (provision, daemonsets, teardown).
	log.Reserve(len(spec.Scales)*(len(st.Models)*st.Iterations*6+48) + 32)
	if mode == drawPlanned {
		sh.planned = make([]*unitPlan, len(sh.models))
		sh.store = st.Store
		sh.computes = &st.unitComputes
		sh.logf = st.Logf
		sh.fleet = st.Fleet
	}
	return sh
}

// canceled reports the run's cancellation state; the executor checks it
// between scales and applications so an in-flight shard drains within a
// fraction of its lifecycle rather than running to completion.
func (sh *shard) canceled() error {
	if sh.ctx == nil {
		return nil
	}
	return sh.ctx.Err()
}

// budgetShare splits the provider's configured budget evenly across its
// deployable cloud environments. It reports false when the provider has no
// configured budget or no deployable cloud environments.
func (st *Study) budgetShare(spec apps.EnvSpec) (float64, bool) {
	budgets := st.Meter.Budgets()
	b, ok := budgets[spec.Provider]
	if !ok {
		return 0, false
	}
	n := 0
	for _, e := range st.Envs {
		if e.Provider == spec.Provider && e.Unavailable == "" && !e.OnPrem() {
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return b / float64(n), true
}

// run executes the shard start to finish. Panics are captured into err so a
// defect in one environment cannot take down the worker pool.
func (sh *shard) run() {
	defer func() {
		if r := recover(); r != nil {
			sh.err = fmt.Errorf("core: shard %s panicked: %v", sh.spec.Key, r)
		}
	}()
	if sh.spec.Unavailable != "" {
		sh.log.Addf(sh.sim.Now(), sh.spec.Key, trace.Info, trace.Routine,
			"environment not deployed: %s", sh.spec.Unavailable)
		return
	}
	sh.ensureUnits() // no-op when units were dispatched as their own tasks
	sh.requestQuota()
	if err := sh.runEnvironment(); err != nil {
		sh.err = fmt.Errorf("core: environment %s: %w", sh.spec.Key, err)
	}
}

// requestQuota asks for the study's quota grants for this environment's
// (provider, accelerator) pair — the same node counts the study requested
// up front (one spare Azure GPU node, anticipating the defective-node
// issue; on-prem "quota" is the clusters' capacity).
func (sh *shard) requestQuota() {
	p, acc := sh.spec.Provider, sh.spec.Acc
	switch {
	case p == cloud.OnPrem && acc == cloud.CPU:
		sh.quota.Request(p, acc, 1544) // cluster A capacity
	case p == cloud.OnPrem && acc == cloud.GPU:
		sh.quota.Request(p, acc, 795) // cluster B capacity
	case acc == cloud.CPU:
		sh.quota.Request(p, acc, 256)
	case p == cloud.Azure:
		sh.quota.Request(p, acc, 33) // one spare GPU node
	default:
		sh.quota.Request(p, acc, 32)
	}
}

// runEnvironment executes all scales and apps for the environment.
func (sh *shard) runEnvironment() error {
	spec := sh.spec
	ScriptedIncidents(sh.log, sh.sim.Now(), spec)
	images := sh.buildContainers()
	sh.shakeout()
	maxNodes := apps.MaxNodesFor(spec)

	for _, nodes := range spec.Scales {
		if err := sh.canceled(); err != nil {
			return err // cooperative drain; partial state is discarded unmerged
		}
		if nodes > maxNodes {
			sh.log.Addf(sh.sim.Now(), spec.Key, trace.Info, trace.Routine,
				"size %d skipped: inability to get GPUs", nodes)
			continue
		}
		if err := sh.checkBudget(); err != nil {
			return nil // environment aborted; the log explains why
		}
		sh.injectQuotaRevocation(nodes)
		if err := sh.runScale(nodes, images); err != nil {
			return err
		}
		sh.applyPause()
	}
	return nil
}

// buildContainers builds one container per app for cloud environments.
// On-premises builds happen on the machine itself and are covered by the
// scripted bare-metal incident.
func (sh *shard) buildContainers() map[string]containers.Image {
	images := make(map[string]containers.Image)
	if sh.spec.OnPrem() {
		return images
	}
	for _, m := range sh.models {
		img, err := sh.build.Build(containers.CorrectSpec(m.Name(), sh.spec.Provider, sh.spec.Acc))
		if err != nil {
			continue // e.g. the Laghos GPU CUDA conflict
		}
		sh.reg.Push(img)
		images[m.Name()] = img
	}
	return images
}

// injectQuotaRevocation gives the chaos engine one chance per scale to
// claw back part of the environment's granted quota. Recovery mirrors the
// real procedure: re-file the original ask, then wait until the re-grant
// is usable — the chaos rule's regrant delay or the provider policy's own
// GrantDelay, whichever is longer — before committing to the scale.
func (sh *shard) injectQuotaRevocation(nodes int) {
	if sh.chaos == nil || sh.spec.OnPrem() {
		return
	}
	revoke, regrant, ok := sh.chaos.QuotaRevocation(nodes)
	if !ok {
		return
	}
	if n := sh.quota.Revoke(sh.spec.Provider, sh.spec.Acc, revoke); n == 0 {
		return
	}
	sh.requestQuota()
	if delay := sh.quota.Policy(sh.spec.Provider, sh.spec.Acc).GrantDelay; delay > regrant {
		regrant = delay
	}
	sh.sim.Clock.Advance(regrant)
}

// runScale brings up one cluster size, runs every app ×Iterations, and
// tears the cluster down ("each cluster size was deployed independently to
// be more cost effective").
func (sh *shard) runScale(nodes int, images map[string]containers.Image) error {
	spec := sh.spec
	scheduler, cluster, err := sh.deploy(nodes)
	if err != nil {
		return err
	}
	if sh.chaos != nil && !spec.OnPrem() {
		// Spot reclaims only exist where nodes can be reclaimed.
		scheduler.SetFaultInjector(sh.chaos)
	}

	for appIdx, m := range sh.models {
		if err := sh.canceled(); err != nil {
			return err
		}
		iters := itersFor(spec, nodes, m.Name(), sh.iterations)
		if iters < sh.iterations {
			sh.log.Addf(sh.sim.Now(), spec.Key, trace.Info, trace.Routine,
				"lammps at size 256: single run due to long hookup time")
		}
		if _, needsImage := images[m.Name()]; !needsImage && !spec.OnPrem() && spec.ContainerRuntime != "" {
			// No container could be built (Laghos GPU): nothing to run.
			sh.res.Runs = append(sh.res.Runs, RunRecord{
				EnvKey: spec.Key, App: m.Name(), Nodes: nodes,
				Err: apps.ErrNotSupported, Unit: m.Unit(),
			})
			continue
		}
		for it := 0; it < iters; it++ {
			rec, err := sh.runOnce(appIdx, m, nodes, it, scheduler)
			if err != nil {
				return err
			}
			sh.res.Runs = append(sh.res.Runs, rec)
			if hk, ok := sh.res.Hookups[spec.Key]; ok {
				hk[nodes] = rec.Hookup
			} else {
				sh.res.Hookups[spec.Key] = map[int]time.Duration{nodes: rec.Hookup}
			}
		}
	}

	// Per-env fleet audits at the largest deployed size.
	if cluster != nil && nodes == apps.MaxNodesFor(spec) {
		sh.audit(cluster)
	}

	if cluster != nil {
		return sh.prov.Teardown(cluster)
	}
	return nil
}

// deploy provisions a cluster (cloud) or opens a queue (on-prem) and
// returns the environment's scheduler.
func (sh *shard) deploy(nodes int) (*sched.Scheduler, *cloud.Cluster, error) {
	spec := sh.spec
	if spec.OnPrem() {
		if spec.Acc == cloud.GPU {
			return sched.NewOnPremLSF(sh.sim, sh.log, spec.Key, nodes), nil, nil
		}
		return sched.NewOnPremSlurm(sh.sim, sh.log, spec.Key, nodes), nil, nil
	}

	// AWS GPU capacity only exists inside the late-month reservation
	// window; the team was "on call" for it.
	if err := sh.quota.Check(spec.Provider, spec.Acc, nodes); errors.Is(err, cloud.ErrReservationPending) {
		pol := sh.quota.Policy(spec.Provider, spec.Acc)
		if start, ok := pol.NextWindowStart(sh.sim.Now()); ok && start > sh.sim.Now() {
			sh.log.Addf(sh.sim.Now(), spec.Key, trace.Info, trace.Routine,
				"waiting for capacity block at %v", start)
			sh.sim.Clock.AdvanceTo(start)
		}
	}

	cluster, err := sh.prov.Provision(cloud.ProvisionRequest{
		Env: spec.Key, Type: spec.Instance, Nodes: nodes,
		Kubernetes: spec.Kubernetes, AllowSpareNode: spec.Provider == cloud.Azure,
	})
	if err != nil {
		return nil, nil, err
	}

	if spec.Kubernetes {
		scheduler, err := sh.deployKubernetes(cluster)
		return scheduler, cluster, err
	}

	// VM cluster: pull the containers once via Singularity on the shared
	// filesystem before spawning workers (suggested practice, §4.2).
	for _, tag := range sh.reg.Tags() {
		_, _ = containers.SingularityPull(sh.sim, sh.reg, tag, nodes, true)
	}
	var scheduler *sched.Scheduler
	switch {
	case spec.Provider == cloud.AWS:
		scheduler = sched.NewParallelClusterSlurm(sh.sim, sh.log, spec.Key, nodes)
	case spec.Provider == cloud.Azure:
		scheduler = sched.NewCycleCloudSlurm(sh.sim, sh.log, spec.Key, nodes)
	default: // Google Compute Engine runs Flux on VMs
		scheduler = sched.NewFlux(sh.sim, sh.log, spec.Key, nodes)
	}
	return scheduler, cluster, nil
}

// deployKubernetes stands up the managed service, daemonsets, and the Flux
// Operator MiniCluster.
func (sh *shard) deployKubernetes(cluster *cloud.Cluster) (*sched.Scheduler, error) {
	spec := sh.spec
	svc, err := k8s.ServiceFor(spec.Provider)
	if err != nil {
		return nil, err
	}
	kc := k8s.NewCluster(sh.sim, sh.log, spec.Key, svc, cluster)
	switch svc {
	case k8s.EKS:
		kc.Apply(k8s.EFADevicePlugin)
	case k8s.AKS:
		kc.Apply(k8s.AKSInfiniBandInstall)
	}
	if spec.Acc == cloud.GPU {
		kc.Apply(k8s.NVIDIADevicePlugin)
	}
	mc, err := kc.DeployFluxOperator()
	if errors.Is(err, k8s.ErrCNIPrefixExhausted) {
		// The study's fix: patch the CNI daemonset for prefix delegation.
		kc.Apply(k8s.CNIPrefixDelegation)
		mc, err = kc.DeployFluxOperator()
	}
	if err != nil {
		return nil, err
	}
	return mc.Scheduler, nil
}

// runOnce submits one application run through the environment's scheduler
// and records the outcome. The model result and hookup time come from the
// shard's draw source (inline stream, precomputed unit, or the legacy
// shared stream — see unit.go); everything downstream of the draw is the
// environment lifecycle and always replays here, in canonical order. With
// a chaos engine attached, the run may hit a degraded network window
// (stretching hookup and wall time — and therefore cost) before
// submission, and a spot reclaim (via the scheduler's fault injector)
// after it.
func (sh *shard) runOnce(appIdx int, m apps.Model, nodes, iter int, scheduler *sched.Scheduler) (RunRecord, error) {
	spec := sh.spec
	result, hookup, err := sh.draw(appIdx, m, nodes, iter)
	if err != nil {
		return RunRecord{}, err
	}
	wall := result.Wall
	if sh.chaos != nil {
		wall, hookup = sh.chaos.DegradeRun(nodes, wall, hookup)
	}

	job := &sched.Job{Name: m.Name() + "-" + strconv.Itoa(iter), Nodes: nodes, Duration: wall, Hookup: hookup}
	if err := scheduler.Submit(job); err != nil {
		return RunRecord{EnvKey: spec.Key, App: m.Name(), Nodes: nodes, Iter: iter, Err: err, Unit: result.Unit}, nil
	}
	sh.sim.Run()

	rec := RunRecord{
		EnvKey: spec.Key, App: m.Name(), Nodes: nodes, Iter: iter,
		FOM: result.FOM, Unit: result.Unit, Err: result.Err,
		Wall: wall, Hookup: hookup,
		CostUSD: float64(nodes) * wall.Hours() * spec.Instance.HourlyUSD,
	}
	if rec.Err == nil && job.State == sched.Failed {
		rec.Err = job.Err
	}
	return rec, nil
}

// audit runs the single-node fleet audit and the Mixbench ECC survey on
// the largest cluster of the environment.
func (sh *shard) audit(cluster *cloud.Cluster) {
	spec := sh.spec
	rng := sh.sim.Stream("core/audit/" + spec.Key)
	reports := make([]apps.Report, 0, len(cluster.Nodes))
	for _, n := range cluster.Nodes {
		reports = append(reports, apps.Collect(n, rng))
	}
	findings := apps.Audit(cluster.Nodes, reports)
	for _, f := range findings {
		sh.log.Addf(sh.sim.Now(), spec.Key, trace.Info, trace.Unexpected,
			"supermarket fish: node %s %s", f.NodeID, f.Detail)
	}
	sh.res.Findings = append(sh.res.Findings, findings...)

	if spec.Acc == cloud.GPU {
		on, total := 0, 0
		for _, n := range cluster.Nodes {
			total += n.VisibleGPUs
			if n.ECCEnabled {
				on += n.VisibleGPUs
			}
		}
		if total > 0 {
			sh.res.ECCOn[spec.Key] = float64(on) / float64(total)
		}
	}
}
