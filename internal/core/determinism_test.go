package core

import (
	"reflect"
	"testing"

	"cloudhpc/internal/chaos"
)

// runWithWorkers executes a fresh study at the given seed and worker
// count, with an optional chaos plan.
func runWithWorkers(t *testing.T, seed uint64, workers int, plan *chaos.Plan) (*Study, *Results) {
	t.Helper()
	return runPartitioned(t, seed, workers, GranularityEnv, plan)
}

// runPartitioned executes a fresh study at the given seed, worker count,
// and partitioning granularity, with an optional chaos plan.
func runPartitioned(t *testing.T, seed uint64, workers int, gran Granularity, plan *chaos.Plan) (*Study, *Results) {
	t.Helper()
	st, err := New(seed)
	if err != nil {
		t.Fatal(err)
	}
	st.Opts.Workers = workers
	st.Opts.Granularity = gran
	st.Opts.Chaos = plan
	res, err := st.RunFull()
	if err != nil {
		t.Fatalf("RunFull(workers=%d granularity=%s): %v", workers, gran, err)
	}
	return st, res
}

// assertSameDataset asserts that two runs of the same (seed, plan) are
// byte-identical: run records, derived tables, merged trace (timestamps
// included), billing, incidents, and recovery accounting.
func assertSameDataset(t *testing.T, workers int, baseStudy, st *Study, base, res *Results) {
	t.Helper()
	if len(res.Runs) != len(base.Runs) {
		t.Fatalf("workers=%d: %d runs vs %d with workers=1", workers, len(res.Runs), len(base.Runs))
	}
	for i := range res.Runs {
		a, b := base.Runs[i], res.Runs[i]
		// Compare error identity by message; everything else bit-exact.
		aErr, bErr := "", ""
		if a.Err != nil {
			aErr = a.Err.Error()
		}
		if b.Err != nil {
			bErr = b.Err.Error()
		}
		if a.EnvKey != b.EnvKey || a.App != b.App || a.Nodes != b.Nodes || a.Iter != b.Iter ||
			a.FOM != b.FOM || a.Unit != b.Unit || a.Wall != b.Wall || a.Hookup != b.Hookup ||
			a.CostUSD != b.CostUSD || aErr != bErr {
			t.Fatalf("workers=%d: run %d diverged:\n  w1: %+v\n  w%d: %+v", workers, i, a, workers, b)
		}
	}

	if !reflect.DeepEqual(res.Table4(), base.Table4()) {
		t.Errorf("workers=%d: Table4 diverged", workers)
	}
	if !reflect.DeepEqual(res.StudyCosts(), base.StudyCosts()) {
		t.Errorf("workers=%d: StudyCosts diverged", workers)
	}
	if !reflect.DeepEqual(res.ECCOn, base.ECCOn) {
		t.Errorf("workers=%d: ECC survey diverged", workers)
	}
	if !reflect.DeepEqual(res.Findings, base.Findings) {
		t.Errorf("workers=%d: audit findings diverged", workers)
	}
	if !reflect.DeepEqual(res.Hookups, base.Hookups) {
		t.Errorf("workers=%d: hookup series diverged", workers)
	}

	// Injected faults must merge identically too: same incidents at the
	// same campaign timestamps, same recovery totals.
	if !reflect.DeepEqual(res.Incidents, base.Incidents) {
		t.Errorf("workers=%d: incidents diverged (%d vs %d)", workers, len(res.Incidents), len(base.Incidents))
	}
	if res.Recovery != base.Recovery {
		t.Errorf("workers=%d: recovery accounting diverged:\n  w1: %+v\n  w%d: %+v",
			workers, base.Recovery, workers, res.Recovery)
	}

	// The merged trace must be event-for-event identical, timestamps
	// included (the serialized virtual timeline is scheduling-free).
	aEvents, bEvents := base.Log.Events(), res.Log.Events()
	if len(aEvents) != len(bEvents) {
		t.Fatalf("workers=%d: %d trace events vs %d", workers, len(bEvents), len(aEvents))
	}
	for i := range aEvents {
		if aEvents[i] != bEvents[i] {
			t.Fatalf("workers=%d: trace event %d diverged:\n  w1: %+v\n  w%d: %+v",
				workers, i, aEvents[i], workers, bEvents[i])
		}
	}

	// Billing: identical per-provider actual and reported spend at the
	// identical end-of-study clock.
	if st.Sim.Now() != baseStudy.Sim.Now() {
		t.Errorf("workers=%d: end-of-study clock %v vs %v", workers, st.Sim.Now(), baseStudy.Sim.Now())
	}
	if got, want := res.Meter.Spend(""), base.Meter.Spend(""); got != want {
		t.Errorf("workers=%d: total spend %.6f vs %.6f", workers, got, want)
	}
}

// TestRunFullWorkerCountInvariant is the executor's core guarantee: the
// dataset is byte-identical across the whole execution-policy grid —
// granularity ∈ {env, env×app} × workers ∈ {1, 4, 32} — with and without
// fault injection. Run records, the derived Table 4, per-cloud spend, the
// merged trace, the merged billing timeline, and (under chaos) the
// incident transcript and recovery accounting must all match exactly.
func TestRunFullWorkerCountInvariant(t *testing.T) {
	const seed = 2025
	plans := []struct {
		name string
		plan *chaos.Plan
	}{
		{"default", nil},
		{"chaos", chaos.DefaultPlan()},
	}
	for _, tc := range plans {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			baseStudy, base := runPartitioned(t, seed, 1, GranularityEnv, tc.plan)
			if tc.plan != nil && len(base.Incidents) == 0 {
				t.Fatal("chaos plan injected no incidents; the invariant would be vacuous")
			}
			if tc.plan == nil && len(base.Incidents) != 0 {
				t.Fatalf("default run has %d incidents; chaos must be off by default", len(base.Incidents))
			}
			for _, gran := range []Granularity{GranularityEnv, GranularityEnvApp} {
				for _, workers := range []int{1, 4, 32} {
					if gran == GranularityEnv && workers == 1 {
						continue // the baseline itself
					}
					st, res := runPartitioned(t, seed, workers, gran, tc.plan)
					assertSameDataset(t, workers, baseStudy, st, base, res)
				}
			}
		})
	}
}

// TestRunFullGranularityInvariantAcrossSeeds spot-checks the granularity
// half of the invariant on other seeds so it cannot silently hold only
// for the default.
func TestRunFullGranularityInvariantAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 31337} {
		_, a := runPartitioned(t, seed, 8, GranularityEnv, nil)
		_, b := runPartitioned(t, seed, 8, GranularityEnvApp, nil)
		if len(a.Runs) != len(b.Runs) {
			t.Fatalf("seed %d: run counts %d vs %d", seed, len(a.Runs), len(b.Runs))
		}
		for i := range a.Runs {
			if a.Runs[i].FOM != b.Runs[i].FOM || a.Runs[i].Wall != b.Runs[i].Wall {
				t.Fatalf("seed %d: run %d diverged between granularities", seed, i)
			}
		}
	}
}

// TestRunFullWorkerCountInvariantAcrossSeeds spot-checks the invariant on
// other seeds so it cannot silently hold only for the default.
func TestRunFullWorkerCountInvariantAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 31337} {
		_, a := runWithWorkers(t, seed, 1, nil)
		_, b := runWithWorkers(t, seed, 8, nil)
		if len(a.Runs) != len(b.Runs) {
			t.Fatalf("seed %d: run counts %d vs %d", seed, len(a.Runs), len(b.Runs))
		}
		for i := range a.Runs {
			if a.Runs[i].FOM != b.Runs[i].FOM || a.Runs[i].Wall != b.Runs[i].Wall {
				t.Fatalf("seed %d: run %d diverged between worker counts", seed, i)
			}
		}
	}
}

// TestScorerSeesMergedPerEnvOrder guards the merge contract the usability
// scorer relies on: within one environment, merged events keep their
// shard-local order and monotone timestamps.
func TestScorerSeesMergedPerEnvOrder(t *testing.T) {
	_, res := runWithWorkers(t, 2025, 8, nil)
	for _, env := range res.Log.Envs() {
		events := res.Log.ByEnv(env)
		for i := 1; i < len(events); i++ {
			if events[i].At < events[i-1].At {
				t.Fatalf("%s: merged events out of order at %d: %v after %v",
					env, i, events[i].At, events[i-1].At)
			}
		}
	}
	// And the global timeline is laid end to end in matrix order: the
	// first event of a later environment never precedes the last event of
	// an earlier one is too strong (pseudo-keys interleave), but the
	// study clock must cover every event.
	for _, e := range res.Log.Events() {
		if e.At < 0 {
			t.Fatalf("negative timestamp after merge: %+v", e)
		}
	}
}
