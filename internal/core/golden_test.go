package core

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cloudhpc/internal/cloud"
)

var update = flag.Bool("update", false, "rewrite golden files from the current dataset")

// goldenSnapshot serializes the parts of the dataset the paper's tables
// rest on — plus full-precision digests of the complete run list and
// trace — into a stable text form. Floats are rendered at full precision
// so the golden file pins exact bits, not rounded appearances.
func goldenSnapshot(res *Results) string {
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	var b strings.Builder

	fmt.Fprintf(&b, "runs: %d\n", len(res.Runs))
	var runs strings.Builder
	for _, r := range res.Runs {
		errMsg := ""
		if r.Err != nil {
			errMsg = r.Err.Error()
		}
		fmt.Fprintf(&runs, "%s|%s|%d|%d|%s|%s|%d|%d|%s|%q\n",
			r.EnvKey, r.App, r.Nodes, r.Iter, g(r.FOM), g(r.CostUSD),
			r.Wall.Nanoseconds(), r.Hookup.Nanoseconds(), r.Unit, errMsg)
	}
	fmt.Fprintf(&b, "run-digest: sha256:%x\n", sha256.Sum256([]byte(runs.String())))

	fmt.Fprintf(&b, "trace-events: %d\n", res.Log.Len())
	fmt.Fprintf(&b, "trace-digest: sha256:%x\n", sha256.Sum256([]byte(res.Log.Render())))

	b.WriteString("table4:\n")
	for _, row := range res.Table4() {
		fmt.Fprintf(&b, "  %s %s %s %s\n", row.EnvKey, row.Acc, g(row.RateUSD), g(row.TotalUSD))
	}

	b.WriteString("spend:\n")
	costs := res.StudyCosts()
	provs := make([]string, 0, len(costs))
	for p := range costs {
		provs = append(provs, string(p))
	}
	sort.Strings(provs)
	for _, p := range provs {
		fmt.Fprintf(&b, "  %s %s\n", p, g(costs[cloud.Provider(p)]))
	}

	b.WriteString("ecc:\n")
	eccKeys := make([]string, 0, len(res.ECCOn))
	for k := range res.ECCOn {
		eccKeys = append(eccKeys, k)
	}
	sort.Strings(eccKeys)
	for _, k := range eccKeys {
		fmt.Fprintf(&b, "  %s %s\n", k, g(res.ECCOn[k]))
	}

	b.WriteString("findings:\n")
	for _, f := range res.Findings {
		fmt.Fprintf(&b, "  %s %s\n", f.NodeID, f.Detail)
	}

	b.WriteString("hookups:\n")
	for _, spec := range res.Envs {
		nodes, times := res.HookupSeries(spec.Key)
		for i, n := range nodes {
			fmt.Fprintf(&b, "  %s %d %d\n", spec.Key, n, times[i].Nanoseconds())
		}
	}

	b.WriteString("failures:\n")
	fails := res.FailureSummary()
	for _, spec := range res.Envs {
		byApp := fails[spec.Key]
		appNames := make([]string, 0, len(byApp))
		for a := range byApp {
			appNames = append(appNames, a)
		}
		sort.Strings(appNames)
		for _, a := range appNames {
			fmt.Fprintf(&b, "  %s %s %d\n", spec.Key, a, byApp[a])
		}
	}
	return b.String()
}

// TestGoldenDataset pins the full canonical dataset for the default seed:
// Table 4, per-cloud spend, the ECC survey, audit findings, hookup
// series, the failure summary, and byte-exact digests of every run
// record and the full trace. Any refactor that silently drifts the
// reproduction — a reordered draw, a changed merge, a perturbed stream —
// fails here first. Regenerate deliberately with:
//
//	go test ./internal/core -run TestGoldenDataset -update
func TestGoldenDataset(t *testing.T) {
	res, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenSnapshot(res)
	path := filepath.Join("testdata", "golden_seed2025.txt")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("dataset drifted from golden file at line %d:\n  golden:  %q\n  current: %q\n(rerun with -update only if the change is intentional)", i+1, w, g)
		}
	}
	t.Fatal("dataset drifted from golden file (length mismatch)")
}

// TestGoldenDatasetLegacyStreams pins the compatibility shim: with
// Options.LegacyRunStreams the executor draws model/hookup noise from the
// pre-spec shared "core/run/<env>" streams and must reproduce the
// original (pre-StudySpec) seed-2025 golden dataset bit-for-bit. This is
// the proof that the spec/partitioning refactor changed nothing beyond
// the documented per-application stream split: every lifecycle stream —
// scheduler, provisioner, chaos, audit — still draws identically.
func TestGoldenDatasetLegacyStreams(t *testing.T) {
	st, err := New(2025)
	if err != nil {
		t.Fatal(err)
	}
	st.Opts.LegacyRunStreams = true
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	got := goldenSnapshot(res)
	path := filepath.Join("testdata", "golden_seed2025_legacy.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("legacy golden file missing: %v", err)
	}
	if got != string(want) {
		t.Fatal("legacy-stream dataset drifted from the pre-spec golden file; the compatibility shim is broken (this file is never regenerated — it pins history)")
	}
}

// TestLegacyStreamsRejectUnitizedGranularity pins the documented
// incompatibility: a shared sequential per-environment stream cannot be
// split into (env, app) units.
func TestLegacyStreamsRejectUnitizedGranularity(t *testing.T) {
	st, err := New(2025)
	if err != nil {
		t.Fatal(err)
	}
	st.Opts.LegacyRunStreams = true
	st.Opts.Granularity = GranularityEnvApp
	if _, err := st.RunFull(); err == nil {
		t.Fatal("LegacyRunStreams at GranularityEnvApp must be rejected")
	}
}

// TestGoldenSnapshotStable guards the snapshot serializer itself: two
// snapshots of the same shared dataset must be identical (no map-order
// leaks in the serialization).
func TestGoldenSnapshotStable(t *testing.T) {
	res, err := CachedRunFull(2025)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := goldenSnapshot(res), goldenSnapshot(res); a != b {
		t.Fatal("goldenSnapshot is not deterministic over one dataset")
	}
}
