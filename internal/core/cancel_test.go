package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// coreGoroutines counts live goroutines spawned by this package's code —
// a goleak-style probe. Test goroutines themselves (which also carry
// core frames) are excluded by their testing.tRunner frame; executor
// workers, runner leaders, and session followers never have one.
func coreGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(stack, "cloudhpc/internal/core.") &&
			!strings.Contains(stack, "testing.tRunner") &&
			!strings.Contains(stack, "testing.(*T).Run") {
			count++
		}
	}
	return count
}

// assertNoCoreGoroutineLeak polls until the package's goroutine count
// returns to the baseline (worker pools and session goroutines exit
// asynchronously after Wait returns).
func assertNoCoreGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := coreGoroutines(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d core goroutines, baseline %d\n%s", coreGoroutines(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verifyStoreReopens re-opens a disk-backed result store from scratch
// and self-verifies every artifact in it: each tag must pull cleanly,
// which re-reads every blob and re-checks every digest end to end. A
// cancellation that tore an artifact would fail here.
func verifyStoreReopens(t *testing.T, dir string) {
	t.Helper()
	rs, err := OpenResultStore(dir)
	if err != nil {
		t.Fatalf("store did not re-open after cancellation: %v", err)
	}
	rs.Logf = t.Logf
	tags := rs.Registry().Tags()
	for _, tag := range tags {
		if _, err := rs.Registry().Pull(tag); err != nil {
			t.Fatalf("artifact %s failed self-verification after cancellation: %v", tag, err)
		}
	}
	t.Logf("store re-opened clean: %d artifacts verified", len(tags))
}

// TestCancellationMatrix is the satellite coverage matrix: cancel
// mid-study at both granularities × workers {1, 32}, with a live
// on-disk store attached. Each cell asserts that Wait returns the
// context error promptly after the in-flight work drains, that no
// executor or session goroutines leak, and that the store — whose
// writes a cancellation may race — passes a full self-verifying
// re-open.
func TestCancellationMatrix(t *testing.T) {
	baseline := coreGoroutines()
	cell := 0
	for _, gran := range []Granularity{GranularityEnv, GranularityEnvApp} {
		for _, workers := range []int{1, 32} {
			cell++
			t.Run(fmt.Sprintf("granularity=%s/workers=%d", gran, workers), func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "store")
				rs, err := OpenResultStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				rs.Logf = t.Logf
				spec := &StudySpec{
					Seed: uint64(990000 + cell), Workers: workers, Granularity: gran,
				}
				r := &Runner{Store: rs}
				sess, err := r.Start(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				ch, _ := sess.Subscribe()
				started := make(chan struct{})
				collected := make(chan []Event, 1)
				go func() {
					var evs []Event
					signaled := false
					for ev := range ch {
						evs = append(evs, ev)
						if !signaled && (ev.Kind == EventEnvStarted || ev.Kind == EventUnitStarted) {
							signaled = true
							close(started)
						}
					}
					if !signaled {
						close(started)
					}
					collected <- evs
				}()
				// Cancel once execution is demonstrably mid-study.
				<-started
				start := time.Now()
				sess.Cancel()
				res, err := sess.Wait()
				elapsed := time.Since(start)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Wait = (%v, %v), want context.Canceled", res, err)
				}
				if res != nil {
					t.Fatal("cancelled session returned a dataset")
				}
				// Promptness: the drain is bounded by a fraction of one
				// in-flight unit's runtime (the full study takes well under
				// a second per shard; the bound here is generous for CI).
				if elapsed > 5*time.Second {
					t.Fatalf("cancellation took %v, want prompt return", elapsed)
				}
				evs := <-collected // channel closed by finish
				if last := evs[len(evs)-1]; last.Kind != EventStudyFailed || !errors.Is(last.Err, context.Canceled) {
					t.Fatalf("stream must close with study-failed(context.Canceled), got %+v", last)
				}
				done, total := sess.Progress()
				if total == 0 {
					t.Fatal("session never recorded a partition plan")
				}
				// At workers=1 the cancel lands while task 1 is in flight and
				// the rest of the plan is still queued, so the skipped tail is
				// deterministic; at 32 workers every task may already have
				// been dispatched before the cancel and only the asserts
				// above apply.
				if workers == 1 && done >= total {
					t.Fatalf("progress %d/%d: cancellation at workers=1 should leave the plan unfinished", done, total)
				}
				assertNoCoreGoroutineLeak(t, baseline)
				verifyStoreReopens(t, dir)

				// The same store must then serve a full run cleanly.
				res, err = (&Runner{Store: rs}).Run(context.Background(), spec)
				if err != nil || res == nil {
					t.Fatalf("post-cancellation run against the same store = (%v, %v)", res, err)
				}
			})
		}
	}
}

// TestCancelBeforeStartReturnsImmediately: a context already cancelled
// at Start never begins executing.
func TestCancelBeforeStartReturnsImmediately(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{disableStore: true}).Start(ctx, DefaultSpec(990100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Start with dead ctx = %v, want context.Canceled", err)
	}
	st, err := NewFromSpec(&StudySpec{Seed: 990101, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Store = nil
	if _, err := st.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Study.Run with dead ctx = %v, want context.Canceled", err)
	}
	// A refused run never executed, so the study is not consumed: the
	// same Study still runs cleanly with a live context.
	if _, err := st.Run(context.Background()); err != nil {
		t.Fatalf("Run after refused dead-ctx attempt = %v, want success", err)
	}
}

// TestManyConcurrentSubscribersRace exercises the subscription plumbing
// under -race: many subscribers attach, drain, and detach concurrently
// while one session runs to completion; every full-lifetime subscriber
// must observe an ordered stream (study-started first, study-finished
// last) with zero drops.
func TestManyConcurrentSubscribersRace(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 990200, Workers: 8, Granularity: GranularityEnvApp}
	r := &Runner{disableStore: true}
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	const drainers, churners = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, drainers+churners)
	for i := 0; i < drainers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, _ := sess.Subscribe()
			var first, last EventKind
			n := 0
			for ev := range ch {
				if n == 0 {
					first = ev.Kind
				}
				last = ev.Kind
				n++
			}
			if n == 0 {
				errs <- fmt.Errorf("subscriber saw no events")
				return
			}
			// Subscribers may attach after study-started; only the ones
			// that saw the opening event assert on it.
			if first == EventStudyStarted && last != EventStudyFinished {
				errs <- fmt.Errorf("subscriber stream ended with %s, want %s", last, EventStudyFinished)
			}
		}()
	}
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ch, unsub := sess.Subscribe()
				select {
				case <-ch:
				default:
				}
				unsub()
				select {
				case <-sess.Done():
					return
				default:
				}
			}
		}()
	}
	res, err := sess.Wait()
	if err != nil || res == nil {
		t.Fatalf("Wait = (%v, %v)", res, err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if sess.Dropped() != 0 {
		t.Logf("dropped %d events under churn (drops are allowed, never blocking)", sess.Dropped())
	}
}
