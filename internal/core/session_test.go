package core

import (
	"context"
	"testing"
)

// TestSubscribeFromResumesExactly pins the reattach primitive: a
// subscriber that detaches mid-stream and resubscribes with its last
// sequence number receives exactly the events it missed, in order, with
// nothing counted missed — provided the replay ring is wide enough.
func TestSubscribeFromResumesExactly(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 770001, Workers: 1, Granularity: GranularityEnvApp}
	r := &Runner{disableStore: true, Configure: func(o *Options) { o.ReplayEvents = 1 << 14 }}
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sess.Retain()
	full := collectEvents(sess.SubscribeFrom(0).Events)

	// A second subscriber reads a prefix, detaches, then resumes.
	early := sess.SubscribeFrom(0)
	var prefix []Event
	for ev := range early.Events {
		prefix = append(prefix, ev)
		if len(prefix) == 5 {
			break
		}
	}
	early.Close()
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	resumed := sess.SubscribeFrom(prefix[len(prefix)-1].Seq)
	if resumed.Missed != 0 {
		t.Fatalf("resume missed %d events despite a wide replay ring", resumed.Missed)
	}
	var tail []Event
	for ev := range resumed.Events {
		tail = append(tail, ev)
	}

	whole := append(append([]Event(nil), prefix...), tail...)
	want := full()
	if len(whole) != len(want) {
		t.Fatalf("prefix+resume = %d events, full subscriber saw %d", len(whole), len(want))
	}
	for i := range want {
		if whole[i].Seq != want[i].Seq || whole[i].Kind != want[i].Kind ||
			whole[i].Env != want[i].Env || whole[i].App != want[i].App {
			t.Fatalf("event %d diverged after resume: %+v vs %+v", i, whole[i], want[i])
		}
		if uint64(i+1) != want[i].Seq {
			t.Fatalf("sequence numbers must be contiguous from 1: event %d has seq %d", i, want[i].Seq)
		}
	}
}

// TestReplayRingOverflowCounted pins the satellite fix: the replay bound
// is configurable through Runner.Configure, and overflowing it is
// counted — a subscriber whose cursor predates the retained window is
// told exactly how many events it can never see, instead of a silent
// gap.
func TestReplayRingOverflowCounted(t *testing.T) {
	t.Parallel()
	const bound = 8
	spec := &StudySpec{Seed: 770002, Workers: 1}
	r := &Runner{disableStore: true, Configure: func(o *Options) { o.ReplayEvents = bound }}
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sess.Retain()
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	last := sess.Seq()
	if last <= bound {
		t.Fatalf("study emitted only %d events; the overflow test needs more than %d", last, bound)
	}
	sub := sess.SubscribeFrom(0)
	var got []Event
	for ev := range sub.Events {
		got = append(got, ev)
	}
	if len(got) != bound {
		t.Fatalf("replay after overflow = %d events, want the ring bound %d", len(got), bound)
	}
	if want := last - bound; sub.Missed != want {
		t.Fatalf("Missed = %d, want %d (emitted %d, retained %d)", sub.Missed, want, last, bound)
	}
	if sess.Lost() != sub.Missed {
		t.Fatalf("Session.Lost = %d, Subscription.Missed = %d: the counters must agree from seq 0", sess.Lost(), sub.Missed)
	}
	// The retained window is the newest tail, ending at the closing event.
	if got[len(got)-1].Seq != last || got[len(got)-1].Kind != EventStudyFinished {
		t.Fatalf("ring tail = seq %d %s, want seq %d %s", got[len(got)-1].Seq, got[len(got)-1].Kind, last, EventStudyFinished)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("retained window must be contiguous: seq %d follows %d", got[i].Seq, got[i-1].Seq)
		}
	}
	// A cursor inside the retained window resumes cleanly.
	mid := sess.SubscribeFrom(got[3].Seq)
	if mid.Missed != 0 {
		t.Fatalf("in-window cursor missed %d events", mid.Missed)
	}
	n := 0
	for range mid.Events {
		n++
	}
	if n != bound-4 {
		t.Fatalf("in-window resume delivered %d events, want %d", n, bound-4)
	}
}

// TestNeverSubscribedSessionCountsOverflow: a session nobody subscribes
// to stops recording at the ring bound (the cheap path), but the
// overflow is counted, not silent — a late first subscriber learns how
// many events are gone.
func TestNeverSubscribedSessionCountsOverflow(t *testing.T) {
	t.Parallel()
	const bound = 4
	spec := &StudySpec{Seed: 770003, Workers: 1}
	r := &Runner{disableStore: true, Configure: func(o *Options) { o.ReplayEvents = bound }}
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	sub := sess.SubscribeFrom(0)
	var got []Event
	for ev := range sub.Events {
		got = append(got, ev)
	}
	if len(got) != bound {
		t.Fatalf("late subscriber replayed %d events, want the opening %d", len(got), bound)
	}
	// Without Retain the ring keeps the opening events, so the retained
	// window starts at seq 1 and the missed tail follows it.
	if got[0].Seq != 1 {
		t.Fatalf("opening capture starts at seq %d, want 1", got[0].Seq)
	}
	if want := sess.Seq() - bound; sub.Missed != want || sub.Missed == 0 {
		t.Fatalf("Missed = %d, want %d", sub.Missed, want)
	}
}

// TestObservationOnlyConfigureKeepsCacheTiers: a Configure hook that
// changes only Options.ReplayEvents still rides the spec-keyed memory
// tier — same shared *Results as an unconfigured runner — because the
// dataset does not depend on observation knobs.
func TestObservationOnlyConfigureKeepsCacheTiers(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 770004, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1}
	plain := &Runner{disableStore: true}
	base, err := plain.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	observing := &Runner{disableStore: true, Configure: func(o *Options) { o.ReplayEvents = 4096 }}
	res, err := observing.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res != base {
		t.Fatal("observation-only Configure fell off the memory tier: got a recomputed dataset")
	}
}
