package core

import (
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/trace"
)

// ScriptedIncidents emits the per-environment effort events the generic
// substrates cannot produce on their own — the concrete experiences the
// paper reports in §3.1. Everything else in Table 3 emerges from the
// simulated substrates (custom daemonsets, placement failures, stalls,
// container builds); these are the narrative residue.
func ScriptedIncidents(log *trace.Log, at time.Duration, spec apps.EnvSpec) {
	add := func(cat trace.Category, sev trace.Severity, msg string) {
		log.Addf(at, spec.Key, cat, sev, "%s", msg)
	}

	switch {
	case spec.Provider == cloud.AWS && !spec.Kubernetes && !spec.OnPrem():
		// ParallelCluster (CPU; the GPU variant was never deployed).
		add(trace.Setup, trace.Unexpected,
			"ParallelCluster required a custom build and multi-step configuration")

	case spec.Provider == cloud.Azure && !spec.Kubernetes:
		// CycleCloud.
		add(trace.Setup, trace.Blocking,
			"CycleCloud deployment took over a day; interfaces went out of sync with the Azure portal")
		add(trace.AppSetup, trace.Blocking,
			"Azure container bases (UCX, proprietary hpcx/hcoll/sharp) were challenging to build; best UCX transports found empirically")

	case spec.Provider == cloud.Google && !spec.Kubernetes:
		// Compute Engine via Cluster Toolkit.
		add(trace.Setup, trace.Unexpected,
			"could not customize configuration files for Cluster Toolkit")
		add(trace.Development, trace.Unexpected,
			"developed custom Terraform deployments for Flux Framework (GPU/Slurm issues with Cluster Toolkit)")

	case spec.Provider == cloud.AWS && spec.Kubernetes:
		// EKS.
		add(trace.Development, trace.Blocking,
			"eksctl bugs: erroneously created placement group and a missing cleanup step broke provisioning; custom build of the tool required")

	case spec.Provider == cloud.Azure && spec.Kubernetes:
		// AKS.
		add(trace.Setup, trace.Unexpected,
			"multiple stages of commands required to bring up clusters")
		add(trace.Development, trace.Blocking,
			"custom container base for proprietary software (hpcx, hcoll, sharp) and a custom InfiniBand daemonset had to be developed")
		add(trace.AppSetup, trace.Blocking,
			"Azure container bases were challenging to build; best performance needed OMPI_MCA_btl=^openib with UCX unified mode over ib")

	case spec.OnPrem():
		add(trace.AppSetup, trace.Blocking,
			"bare-metal builds on the system via software modules and Spack; less control over the software environment")
		add(trace.Manual, trace.Unexpected,
			"jobs often errored and had to be monitored and debugged (bad nodes)")
	}
}
