package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Iterations is the study's per-scale repeat count (paper §2.8).
const Iterations = 5

// BudgetPerCloudUSD is the per-cloud budget (paper §2.1).
const BudgetPerCloudUSD = 49000

// Study wires the study configuration together. The top-level substrates
// are the merge targets of a run: after RunFull, Log, Meter, Builder, and
// Registry hold the stitched-together view of every environment shard.
// Provisioners, quota managers, and placement services are per-shard
// concerns and are constructed inside the shards. Models and Hookup are
// shared across shards read-only; Models may be replaced before RunFull to
// study a subset of the applications.
type Study struct {
	Opts     Options
	Sim      *sim.Simulation
	Log      *trace.Log
	Meter    *cloud.Meter
	Builder  *containers.Builder
	Registry *containers.Registry
	Hookup   *network.HookupModel
	Envs     []apps.EnvSpec
	Models   []apps.Model
	// Iterations is the per-scale repeat count (the spec's iteration
	// count; Iterations — the package constant — for the default study).
	Iterations int
	// Store, when non-nil, is the persistent result store consulted for
	// (env, app) unit reuse during RunFull: units whose sub-hash is
	// already stored are decoded instead of recomputed, and computed
	// units are stored for the next study. Defaults to the process-wide
	// store (SetDefaultResultStore); ignored under LegacyRunStreams (a
	// shared sequential stream has no independently addressable units).
	Store *ResultStore
	// Logf, when non-nil, receives the store/persist warnings this
	// study's execution raises (corrupt unit artifacts, failed saves)
	// instead of the store's own logger. Runner plumbs its injected
	// logger through here; nil keeps the store default.
	Logf func(format string, args ...any)
	// Fleet, when non-nil (and a Store is attached — the store is the
	// artifact exchange), offloads units that miss the memory and store
	// tiers to remote workers instead of computing them on the local
	// pool. The delegate decides per unit; a refusal falls back to local
	// compute, so execution never depends on fleet availability.
	Fleet FleetDelegate

	// unitComputes counts (env, app) unit precomputations this study
	// actually performed — the compute probe the incremental-execution
	// tests assert against (store-served units don't count).
	unitComputes atomic.Int64
	// consumed flips on the first Run/RunFull. A study is one-shot: a
	// run merges the shards into the study-level substrates, so a rerun
	// would stitch a second timeline onto the first and silently corrupt
	// the merge state. Reuse returns ErrStudyConsumed instead.
	consumed atomic.Bool
}

// UnitComputes reports how many (env, app) units RunFull computed rather
// than decoded from the store.
func (st *Study) UnitComputes() int64 { return st.unitComputes.Load() }

// RunRecord is one application execution in the study dataset.
type RunRecord struct {
	EnvKey string
	App    string
	Nodes  int
	Iter   int
	FOM    float64
	Unit   string
	Err    error
	Wall   time.Duration
	Hookup time.Duration
	// CostUSD attributes instance cost to the run: nodes × wall × rate
	// (Table 4's accounting — execution time, cluster size, instance cost).
	CostUSD float64
}

// Incident is one injected fault with its recovery cost, surfaced from
// the chaos engine onto the study dataset.
type Incident = chaos.Incident

// Recovery aggregates the cost of recovering from injected faults:
// preemptions, re-queued jobs, lost node-hours, and the estimated billing
// impact.
type Recovery = chaos.Accounting

// Results is the study dataset.
type Results struct {
	Runs     []RunRecord
	Log      *trace.Log
	Meter    *cloud.Meter
	Envs     []apps.EnvSpec
	ECCOn    map[string]float64               // env → fraction of GPUs with ECC enabled
	Findings []apps.Finding                   // single-node audit anomalies
	Hookups  map[string]map[int]time.Duration // env → nodes → hookup
	// Incidents are the injected faults in canonical matrix order, on the
	// merged campaign timeline (empty without a chaos plan).
	Incidents []Incident
	// Recovery is the study-wide recovery accounting (zero without a
	// chaos plan).
	Recovery Recovery
	// Builds is the merged container-build funnel (paper §3.1): attempts,
	// images, usable images, failures across every environment.
	Builds containers.Funnel
}

// New creates the paper's full study with the given seed — shorthand for
// NewFromSpec(DefaultSpec(seed)).
func New(seed uint64) (*Study, error) {
	return NewFromSpec(DefaultSpec(seed))
}

// NewFromSpec creates a study from a declarative spec: the spec's
// environment and application selections become the study matrix, its
// scale override and iteration count apply, its chaos reference is
// resolved into Options.Chaos, and its worker/granularity policy lands in
// Options. The default spec reproduces New exactly.
func NewFromSpec(spec *StudySpec) (*Study, error) {
	r, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	return newStudy(r, spec), nil
}

// newStudy builds a study from an already-materialized spec. Callers that
// need both the hash and the study (the cached-dataset layer) resolve
// once and use this, so the dataset executed always matches the key it is
// memoized under even if a referenced chaos plan file changes on disk in
// between.
func newStudy(r *ResolvedSpec, spec *StudySpec) *Study {
	s := sim.New(r.Seed)
	log := trace.NewLog()
	meter := cloud.NewMeter(s, log)
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		meter.SetBudget(p, BudgetPerCloudUSD)
	}
	return &Study{
		Opts: Options{
			Workers:     spec.Workers,
			Granularity: spec.Granularity,
			Chaos:       r.Plan,
		},
		Sim:        s,
		Log:        log,
		Meter:      meter,
		Builder:    containers.NewBuilder(s, log),
		Registry:   containers.NewRegistry(),
		Hookup:     network.NewHookupModel(),
		Envs:       r.Envs,
		Models:     r.Models,
		Iterations: r.Iterations,
		Store:      DefaultResultStore(),
	}
}

// RunFull executes the whole study and returns the dataset — the
// original blocking surface, kept as a thin wrapper over Run with a
// background context. See Run for the execution model.
func (st *Study) RunFull() (*Results, error) {
	return st.Run(context.Background())
}

// Run executes the whole study under ctx and returns the dataset.
//
// Execution follows a work-partitioning plan. At GranularityEnv every
// environment of the matrix runs as one independent shard with its own
// virtual clock, event queue, RNG streams, and substrate instances. At
// GranularityEnvApp each environment first fans out into one unit per
// (environment, application) pair — a pure model/hookup precompute — and
// the environment's lifecycle assembly is enqueued by whichever of its
// units finishes last, so assemblies overlap with other environments'
// units and the pool keeps scaling past the environment count. All tasks
// are dispatched over a pool of Options.Workers goroutines (default
// runtime.NumCPU()).
//
// Because every unit's and shard's behaviour depends only on the root
// seed and its own (env, app) coordinates — never on which worker ran it
// or when — and the hierarchical merge always stitches units into their
// environment in canonical application order and environments into the
// study in matrix order, the returned Results — run records, trace, and
// billing — are byte-identical for every worker count and granularity.
//
// Cancelling ctx stops dispatching new work units, drains the in-flight
// ones (each of which also checks the context between scales and
// applications, so the drain is bounded by fractions of one unit's
// runtime), skips the merge, and returns ctx's error. The persistent
// store is never left torn: every artifact write is atomic.
//
// A Study is one-shot — Run merges the shards into st.Log, st.Meter,
// st.Builder, and st.Registry — so a second call returns
// ErrStudyConsumed.
func (st *Study) Run(ctx context.Context) (*Results, error) {
	return st.runSession(ctx, nil)
}

// runSession is Run with an optional observing session: every study,
// environment, and unit transition (plus injected incidents and plan
// progress) is emitted as an Event. Emission is pure observation — no
// RNG draws, no ordering impact — and nil-safe, so the sessionless
// wrappers pay nothing.
func (st *Study) runSession(ctx context.Context, sess *Session) (*Results, error) {
	gran, err := ParseGranularity(string(st.Opts.Granularity))
	if err != nil {
		return nil, err
	}
	if st.Opts.LegacyRunStreams && gran != GranularityEnv {
		return nil, fmt.Errorf("core: LegacyRunStreams requires granularity %q: a shared per-environment stream cannot be split into (env, app) units", GranularityEnv)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Consume only once the run is actually going to execute — a refused
	// attempt (bad options, dead context) leaves the study reusable.
	if st.consumed.Swap(true) {
		return nil, ErrStudyConsumed
	}
	if st.Iterations <= 0 {
		st.Iterations = Iterations
	}

	shards := make([]*shard, len(st.Envs))
	for i, spec := range st.Envs {
		shards[i] = st.newShard(spec)
		shards[i].ctx = ctx
		shards[i].sess = sess
	}

	// Build the task list. Tasks may enqueue follow-up tasks (a shard's
	// last unit enqueues its assembly), so the queue is buffered for the
	// whole plan and completion is tracked by counting tasks, not by
	// closing the channel early.
	total := len(shards)
	// Units are dispatched as their own pool tasks at GranularityEnvApp
	// (the fine-grained policy) and whenever a result store is attached:
	// a store forces drawPlanned at any granularity, and dispatching the
	// store's per-unit encode (cold) and decode (warm) across the worker
	// pool keeps the serialization off the environments' critical path
	// instead of running it as a serial per-shard loop. Byte-identity
	// across granularities makes the outputs indistinguishable.
	unitized := gran == GranularityEnvApp || (st.Store != nil && !st.Opts.LegacyRunStreams)
	if unitized {
		for _, sh := range shards {
			if sh.spec.Unavailable == "" {
				total += len(sh.models)
			}
		}
	}
	workers := st.Opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}

	sess.setTotal(total)
	sess.emit(Event{Kind: EventStudyStarted, Total: total})

	queue := make(chan func(), total)
	var pending sync.WaitGroup
	pending.Add(total)
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for task := range queue {
				task()
				pending.Done()
			}
		}()
	}
	for _, sh := range shards {
		sh := sh
		if !unitized || sh.spec.Unavailable != "" || len(sh.models) == 0 {
			queue <- st.envTask(ctx, sess, sh)
			continue
		}
		remaining := int32(len(sh.models))
		for appIdx := range sh.models {
			appIdx := appIdx
			queue <- func() {
				// A cancelled plan still runs its dispatch accounting (the
				// assembly enqueue keeps the pending count exact); only the
				// work itself — and its progress credit — is skipped.
				if ctx.Err() == nil {
					sh.resolveUnit(appIdx)
					sess.taskDone()
				}
				if atomic.AddInt32(&remaining, -1) == 0 {
					queue <- st.envTask(ctx, sess, sh) // hierarchical merge level 1: units → environment
				}
			}
		}
	}
	pending.Wait()
	close(queue)
	pool.Wait()

	if err := ctx.Err(); err != nil {
		// Cancelled: the pool has drained, partial shard state is
		// discarded unmerged (the study substrates were never touched),
		// and any unit artifacts already stored are complete — the store
		// only ever sees atomic whole-artifact writes.
		return nil, err
	}
	return st.merge(shards) // hierarchical merge level 2: environments → study
}

// envTask wraps one environment shard's execution as a pool task,
// bracketed by its observation events: started/skipped, the injected
// incidents, and finished/failed.
func (st *Study) envTask(ctx context.Context, sess *Session, sh *shard) func() {
	return func() {
		if ctx.Err() != nil {
			return
		}
		defer sess.taskDone()
		if sh.spec.Unavailable != "" {
			sh.run() // logs the not-deployed trace event
			sess.emit(Event{Kind: EventEnvSkipped, Env: sh.spec.Key})
			return
		}
		sess.emit(Event{Kind: EventEnvStarted, Env: sh.spec.Key})
		sh.run()
		if sh.chaos != nil {
			for _, inc := range sh.chaos.Incidents() {
				inc := inc
				sess.emit(Event{Kind: EventIncident, Env: sh.spec.Key, Incident: &inc})
			}
		}
		if sh.err != nil {
			sess.emit(Event{Kind: EventEnvFailed, Env: sh.spec.Key, Err: sh.err})
		} else {
			sess.emit(Event{Kind: EventEnvFinished, Env: sh.spec.Key})
		}
	}
}

// merge stitches the finished shards into one dataset in canonical matrix
// order, laying the per-shard virtual timelines end to end: shard i's
// events and charges are shifted by the summed duration of shards 0..i-1,
// reconstructing the single sequential timeline the paper's study actually
// lived through (environments run one after another over weeks, so the
// freshest charges at study end belong to the last environments of the
// matrix — which is what the cost-reporting-lag model needs). The offsets
// depend only on the shards' own deterministic durations, never on
// scheduling, so the merged output is identical for any worker count.
func (st *Study) merge(shards []*shard) (*Results, error) {
	res := &Results{
		Log: st.Log, Meter: st.Meter, Envs: st.Envs,
		ECCOn:   make(map[string]float64),
		Hookups: make(map[string]map[int]time.Duration),
	}
	totalRuns, totalEvents, totalFindings, totalIncidents := 0, 0, 0, 0
	for _, sh := range shards {
		totalRuns += len(sh.res.Runs)
		totalEvents += sh.log.Len()
		totalFindings += len(sh.res.Findings)
		totalIncidents += sh.chaos.IncidentCount()
	}
	res.Runs = make([]RunRecord, 0, totalRuns)
	st.Log.Reserve(totalEvents)
	if totalFindings > 0 {
		res.Findings = make([]apps.Finding, 0, totalFindings)
	}
	if totalIncidents > 0 {
		res.Incidents = make([]Incident, 0, totalIncidents)
	}
	var offset time.Duration
	var firstErr error
	for _, sh := range shards {
		st.Log.AppendShifted(sh.log, offset)
		st.Meter.Merge(sh.meter, offset)
		st.Builder.Absorb(sh.build)
		st.Registry.Merge(sh.reg)
		res.Runs = append(res.Runs, sh.res.Runs...)
		res.Findings = append(res.Findings, sh.res.Findings...)
		for _, inc := range sh.chaos.Incidents() {
			inc.At += offset
			res.Incidents = append(res.Incidents, inc)
		}
		res.Recovery.Add(sh.chaos.Accounting())
		for k, v := range sh.res.ECCOn {
			res.ECCOn[k] = v
		}
		for k, v := range sh.res.Hookups {
			res.Hookups[k] = v
		}
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
		offset += sh.sim.Now()
		// A merged shard's private substrates are dead weight; dropping
		// them as the merge streams through keeps the study's peak
		// footprint near one shard's unmerged state, not the matrix's.
		sh.log, sh.res, sh.meter, sh.prov, sh.build, sh.reg = nil, nil, nil, nil, nil, nil
	}
	// Leave the study clock at end-of-study so lag-dependent views
	// (ReportedSpend, UnreportedSpend) read as they would have at the end
	// of the real campaign.
	if offset > st.Sim.Now() {
		st.Sim.Clock.AdvanceTo(offset)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.Builds = st.Builder.Funnel()
	return res, nil
}
