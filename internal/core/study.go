package core

import (
	"runtime"
	"sync"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Iterations is the study's per-scale repeat count (paper §2.8).
const Iterations = 5

// BudgetPerCloudUSD is the per-cloud budget (paper §2.1).
const BudgetPerCloudUSD = 49000

// Study wires the study configuration together. The top-level substrates
// are the merge targets of a run: after RunFull, Log, Meter, Builder, and
// Registry hold the stitched-together view of every environment shard.
// Provisioners, quota managers, and placement services are per-shard
// concerns and are constructed inside the shards. Models and Hookup are
// shared across shards read-only; Models may be replaced before RunFull to
// study a subset of the applications.
type Study struct {
	Opts     Options
	Sim      *sim.Simulation
	Log      *trace.Log
	Meter    *cloud.Meter
	Builder  *containers.Builder
	Registry *containers.Registry
	Hookup   *network.HookupModel
	Envs     []apps.EnvSpec
	Models   []apps.Model
}

// RunRecord is one application execution in the study dataset.
type RunRecord struct {
	EnvKey string
	App    string
	Nodes  int
	Iter   int
	FOM    float64
	Unit   string
	Err    error
	Wall   time.Duration
	Hookup time.Duration
	// CostUSD attributes instance cost to the run: nodes × wall × rate
	// (Table 4's accounting — execution time, cluster size, instance cost).
	CostUSD float64
}

// Incident is one injected fault with its recovery cost, surfaced from
// the chaos engine onto the study dataset.
type Incident = chaos.Incident

// Recovery aggregates the cost of recovering from injected faults:
// preemptions, re-queued jobs, lost node-hours, and the estimated billing
// impact.
type Recovery = chaos.Accounting

// Results is the study dataset.
type Results struct {
	Runs     []RunRecord
	Log      *trace.Log
	Meter    *cloud.Meter
	Envs     []apps.EnvSpec
	ECCOn    map[string]float64               // env → fraction of GPUs with ECC enabled
	Findings []apps.Finding                   // single-node audit anomalies
	Hookups  map[string]map[int]time.Duration // env → nodes → hookup
	// Incidents are the injected faults in canonical matrix order, on the
	// merged campaign timeline (empty without a chaos plan).
	Incidents []Incident
	// Recovery is the study-wide recovery accounting (zero without a
	// chaos plan).
	Recovery Recovery
}

// New creates a study with the given seed.
func New(seed uint64) (*Study, error) {
	s := sim.New(seed)
	log := trace.NewLog()
	meter := cloud.NewMeter(s, log)
	envs, err := apps.StudyEnvironments()
	if err != nil {
		return nil, err
	}
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		meter.SetBudget(p, BudgetPerCloudUSD)
	}
	return &Study{
		Sim:      s,
		Log:      log,
		Meter:    meter,
		Builder:  containers.NewBuilder(s, log),
		Registry: containers.NewRegistry(),
		Hookup:   network.NewHookupModel(),
		Envs:     envs,
		Models:   apps.All(),
	}, nil
}

// RunFull executes the whole study and returns the dataset.
//
// Execution is sharded: every environment of the matrix runs as an
// independent shard with its own virtual clock, event queue, RNG streams,
// and substrate instances, dispatched over a pool of Options.Workers
// goroutines (default runtime.NumCPU()). Because a shard's behaviour
// depends only on the root seed and its own environment spec, and the
// merge below always stitches shards together in the matrix order of
// st.Envs, the returned Results — run records, trace, and billing — are
// byte-identical for every worker count.
//
// RunFull is intended to be called once per Study: it merges the shards
// into st.Log, st.Meter, st.Builder, and st.Registry.
func (st *Study) RunFull() (*Results, error) {
	workers := st.Opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(st.Envs) {
		workers = len(st.Envs)
	}

	shards := make([]*shard, len(st.Envs))
	for i, spec := range st.Envs {
		shards[i] = st.newShard(spec)
	}

	jobs := make(chan *shard)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				sh.run()
			}
		}()
	}
	for _, sh := range shards {
		jobs <- sh
	}
	close(jobs)
	wg.Wait()

	return st.merge(shards)
}

// merge stitches the finished shards into one dataset in canonical matrix
// order, laying the per-shard virtual timelines end to end: shard i's
// events and charges are shifted by the summed duration of shards 0..i-1,
// reconstructing the single sequential timeline the paper's study actually
// lived through (environments run one after another over weeks, so the
// freshest charges at study end belong to the last environments of the
// matrix — which is what the cost-reporting-lag model needs). The offsets
// depend only on the shards' own deterministic durations, never on
// scheduling, so the merged output is identical for any worker count.
func (st *Study) merge(shards []*shard) (*Results, error) {
	res := &Results{
		Log: st.Log, Meter: st.Meter, Envs: st.Envs,
		ECCOn:   make(map[string]float64),
		Hookups: make(map[string]map[int]time.Duration),
	}
	var offset time.Duration
	var firstErr error
	for _, sh := range shards {
		st.Log.AppendShifted(sh.log, offset)
		st.Meter.Merge(sh.meter, offset)
		st.Builder.Absorb(sh.build)
		st.Registry.Merge(sh.reg)
		res.Runs = append(res.Runs, sh.res.Runs...)
		res.Findings = append(res.Findings, sh.res.Findings...)
		for _, inc := range sh.chaos.Incidents() {
			inc.At += offset
			res.Incidents = append(res.Incidents, inc)
		}
		res.Recovery.Add(sh.chaos.Accounting())
		for k, v := range sh.res.ECCOn {
			res.ECCOn[k] = v
		}
		for k, v := range sh.res.Hookups {
			res.Hookups[k] = v
		}
		if sh.err != nil && firstErr == nil {
			firstErr = sh.err
		}
		offset += sh.sim.Now()
	}
	// Leave the study clock at end-of-study so lag-dependent views
	// (ReportedSpend, UnreportedSpend) read as they would have at the end
	// of the real campaign.
	if offset > st.Sim.Now() {
		st.Sim.Clock.AdvanceTo(offset)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
