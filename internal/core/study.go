// Package core orchestrates the full study: it provisions every
// environment at every scale, builds the per-cloud containers, deploys the
// Flux Operator on the Kubernetes services, runs all 11 applications for
// five iterations per scale, meters the spend, and aggregates the records
// into the paper's tables and figures.
package core

import (
	"errors"
	"fmt"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/k8s"
	"cloudhpc/internal/network"
	"cloudhpc/internal/sched"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Iterations is the study's per-scale repeat count (paper §2.8).
const Iterations = 5

// BudgetPerCloudUSD is the per-cloud budget (paper §2.1).
const BudgetPerCloudUSD = 49000

// Study wires every substrate together.
type Study struct {
	Opts      Options
	Sim       *sim.Simulation
	Log       *trace.Log
	Meter     *cloud.Meter
	Quota     *cloud.QuotaManager
	Placement *cloud.PlacementService
	Prov      *cloud.Provisioner
	Builder   *containers.Builder
	Registry  *containers.Registry
	Hookup    *network.HookupModel
	Envs      []apps.EnvSpec
	Models    []apps.Model
}

// RunRecord is one application execution in the study dataset.
type RunRecord struct {
	EnvKey string
	App    string
	Nodes  int
	Iter   int
	FOM    float64
	Unit   string
	Err    error
	Wall   time.Duration
	Hookup time.Duration
	// CostUSD attributes instance cost to the run: nodes × wall × rate
	// (Table 4's accounting — execution time, cluster size, instance cost).
	CostUSD float64
}

// Results is the study dataset.
type Results struct {
	Runs     []RunRecord
	Log      *trace.Log
	Meter    *cloud.Meter
	Envs     []apps.EnvSpec
	ECCOn    map[string]float64               // env → fraction of GPUs with ECC enabled
	Findings []apps.Finding                   // single-node audit anomalies
	Hookups  map[string]map[int]time.Duration // env → nodes → hookup
}

// New creates a study with the given seed.
func New(seed uint64) (*Study, error) {
	s := sim.New(seed)
	log := trace.NewLog()
	meter := cloud.NewMeter(s, log)
	quota := cloud.NewQuotaManager(s, log)
	placement := cloud.NewPlacementService(s, log)
	prov := cloud.NewProvisioner(s, log, meter, quota, placement)
	envs, err := apps.StudyEnvironments()
	if err != nil {
		return nil, err
	}
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		meter.SetBudget(p, BudgetPerCloudUSD)
	}
	return &Study{
		Sim:       s,
		Log:       log,
		Meter:     meter,
		Quota:     quota,
		Placement: placement,
		Prov:      prov,
		Builder:   containers.NewBuilder(s, log),
		Registry:  containers.NewRegistry(),
		Hookup:    network.NewHookupModel(),
		Envs:      envs,
		Models:    apps.All(),
	}, nil
}

// RunFull executes the whole study and returns the dataset.
func (st *Study) RunFull() (*Results, error) {
	res := &Results{
		Log: st.Log, Meter: st.Meter, Envs: st.Envs,
		ECCOn:   make(map[string]float64),
		Hookups: make(map[string]map[int]time.Duration),
	}

	// Request quotas up front (one spare Azure GPU node, anticipating the
	// defective-node issue).
	st.Quota.Request(cloud.AWS, cloud.CPU, 256)
	st.Quota.Request(cloud.AWS, cloud.GPU, 32)
	st.Quota.Request(cloud.Azure, cloud.CPU, 256)
	st.Quota.Request(cloud.Azure, cloud.GPU, 33)
	st.Quota.Request(cloud.Google, cloud.CPU, 256)
	st.Quota.Request(cloud.Google, cloud.GPU, 32)
	st.Quota.Request(cloud.OnPrem, cloud.CPU, 1544) // cluster A capacity
	st.Quota.Request(cloud.OnPrem, cloud.GPU, 795)  // cluster B capacity

	for _, spec := range st.Envs {
		if spec.Unavailable != "" {
			st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
				"environment not deployed: %s", spec.Unavailable)
			continue
		}
		if err := st.runEnvironment(spec, res); err != nil {
			return nil, fmt.Errorf("core: environment %s: %w", spec.Key, err)
		}
	}
	return res, nil
}

// runEnvironment executes all scales and apps for one environment.
func (st *Study) runEnvironment(spec apps.EnvSpec, res *Results) error {
	ScriptedIncidents(st.Log, st.Sim.Now(), spec)
	images := st.buildContainers(spec)
	st.shakeout(spec)
	maxNodes := apps.MaxNodesFor(spec)

	for _, nodes := range spec.Scales {
		if nodes > maxNodes {
			st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
				"size %d skipped: inability to get GPUs", nodes)
			continue
		}
		if err := st.checkBudget(spec); err != nil {
			return nil // environment aborted; the log explains why
		}
		if err := st.runScale(spec, nodes, images, res); err != nil {
			return err
		}
		st.applyPause(spec)
	}
	return nil
}

// buildContainers builds one container per app for cloud environments.
// On-premises builds happen on the machine itself and are covered by the
// scripted bare-metal incident.
func (st *Study) buildContainers(spec apps.EnvSpec) map[string]containers.Image {
	images := make(map[string]containers.Image)
	if spec.OnPrem() {
		return images
	}
	for _, m := range st.Models {
		img, err := st.Builder.Build(containers.CorrectSpec(m.Name(), spec.Provider, spec.Acc))
		if err != nil {
			continue // e.g. the Laghos GPU CUDA conflict
		}
		st.Registry.Push(img)
		images[m.Name()] = img
	}
	return images
}

// runScale brings up one cluster size, runs every app ×Iterations, and
// tears the cluster down ("each cluster size was deployed independently to
// be more cost effective").
func (st *Study) runScale(spec apps.EnvSpec, nodes int, images map[string]containers.Image, res *Results) error {
	scheduler, cluster, err := st.deploy(spec, nodes)
	if err != nil {
		return err
	}

	rng := st.Sim.Stream("core/run/" + spec.Key)
	for _, m := range st.Models {
		iters := Iterations
		if spec.Key == "azure-aks-cpu" && nodes == 256 && m.Name() == "lammps" {
			iters = 1 // 8.82-minute hookup: only one run was performed
			st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
				"lammps at size 256: single run due to long hookup time")
		}
		if _, needsImage := images[m.Name()]; !needsImage && !spec.OnPrem() && spec.ContainerRuntime != "" {
			// No container could be built (Laghos GPU): nothing to run.
			res.Runs = append(res.Runs, RunRecord{
				EnvKey: spec.Key, App: m.Name(), Nodes: nodes,
				Err: apps.ErrNotSupported, Unit: m.Unit(),
			})
			continue
		}
		for it := 0; it < iters; it++ {
			rec := st.runOnce(spec, m, nodes, it, scheduler, rng)
			res.Runs = append(res.Runs, rec)
			if hk, ok := res.Hookups[spec.Key]; ok {
				hk[nodes] = rec.Hookup
			} else {
				res.Hookups[spec.Key] = map[int]time.Duration{nodes: rec.Hookup}
			}
		}
	}

	// Per-env fleet audits at the largest deployed size.
	if cluster != nil && nodes == apps.MaxNodesFor(spec) {
		st.audit(spec, cluster, res)
	}

	if cluster != nil {
		return st.Prov.Teardown(cluster)
	}
	return nil
}

// deploy provisions a cluster (cloud) or opens a queue (on-prem) and
// returns the environment's scheduler.
func (st *Study) deploy(spec apps.EnvSpec, nodes int) (*sched.Scheduler, *cloud.Cluster, error) {
	if spec.OnPrem() {
		if spec.Acc == cloud.GPU {
			return sched.NewOnPremLSF(st.Sim, st.Log, spec.Key, nodes), nil, nil
		}
		return sched.NewOnPremSlurm(st.Sim, st.Log, spec.Key, nodes), nil, nil
	}

	// AWS GPU capacity only exists inside the late-month reservation
	// window; the team was "on call" for it.
	if err := st.Quota.Check(spec.Provider, spec.Acc, nodes); errors.Is(err, cloud.ErrReservationPending) {
		pol := st.Quota.Policy(spec.Provider, spec.Acc)
		if start, ok := pol.NextWindowStart(st.Sim.Now()); ok && start > st.Sim.Now() {
			st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Routine,
				"waiting for capacity block at %v", start)
			st.Sim.Clock.AdvanceTo(start)
		}
	}

	cluster, err := st.Prov.Provision(cloud.ProvisionRequest{
		Env: spec.Key, Type: spec.Instance, Nodes: nodes,
		Kubernetes: spec.Kubernetes, AllowSpareNode: spec.Provider == cloud.Azure,
	})
	if err != nil {
		return nil, nil, err
	}

	if spec.Kubernetes {
		scheduler, err := st.deployKubernetes(spec, cluster)
		return scheduler, cluster, err
	}

	// VM cluster: pull the containers once via Singularity on the shared
	// filesystem before spawning workers (suggested practice, §4.2).
	for _, tag := range st.Registry.Tags() {
		_, _ = containers.SingularityPull(st.Sim, st.Registry, tag, nodes, true)
	}
	var scheduler *sched.Scheduler
	switch {
	case spec.Provider == cloud.AWS:
		scheduler = sched.NewParallelClusterSlurm(st.Sim, st.Log, spec.Key, nodes)
	case spec.Provider == cloud.Azure:
		scheduler = sched.NewCycleCloudSlurm(st.Sim, st.Log, spec.Key, nodes)
	default: // Google Compute Engine runs Flux on VMs
		scheduler = sched.NewFlux(st.Sim, st.Log, spec.Key, nodes)
	}
	return scheduler, cluster, nil
}

// deployKubernetes stands up the managed service, daemonsets, and the Flux
// Operator MiniCluster.
func (st *Study) deployKubernetes(spec apps.EnvSpec, cluster *cloud.Cluster) (*sched.Scheduler, error) {
	svc, err := k8s.ServiceFor(spec.Provider)
	if err != nil {
		return nil, err
	}
	kc := k8s.NewCluster(st.Sim, st.Log, spec.Key, svc, cluster)
	switch svc {
	case k8s.EKS:
		kc.Apply(k8s.EFADevicePlugin)
	case k8s.AKS:
		kc.Apply(k8s.AKSInfiniBandInstall)
	}
	if spec.Acc == cloud.GPU {
		kc.Apply(k8s.NVIDIADevicePlugin)
	}
	mc, err := kc.DeployFluxOperator()
	if errors.Is(err, k8s.ErrCNIPrefixExhausted) {
		// The study's fix: patch the CNI daemonset for prefix delegation.
		kc.Apply(k8s.CNIPrefixDelegation)
		mc, err = kc.DeployFluxOperator()
	}
	if err != nil {
		return nil, err
	}
	return mc.Scheduler, nil
}

// runOnce submits one application run through the environment's scheduler
// and records the outcome.
func (st *Study) runOnce(spec apps.EnvSpec, m apps.Model, nodes, iter int, scheduler *sched.Scheduler, rng *sim.Stream) RunRecord {
	result := m.Run(spec.Env, nodes, rng)
	hookup := st.Hookup.Hookup(spec.Provider, spec.Acc, spec.Kubernetes, nodes, rng)

	job := &sched.Job{Name: fmt.Sprintf("%s-%d", m.Name(), iter), Nodes: nodes, Duration: result.Wall, Hookup: hookup}
	if err := scheduler.Submit(job); err != nil {
		return RunRecord{EnvKey: spec.Key, App: m.Name(), Nodes: nodes, Iter: iter, Err: err, Unit: result.Unit}
	}
	st.Sim.Run()

	rec := RunRecord{
		EnvKey: spec.Key, App: m.Name(), Nodes: nodes, Iter: iter,
		FOM: result.FOM, Unit: result.Unit, Err: result.Err,
		Wall: result.Wall, Hookup: hookup,
		CostUSD: float64(nodes) * result.Wall.Hours() * spec.Instance.HourlyUSD,
	}
	if rec.Err == nil && job.State == sched.Failed {
		rec.Err = job.Err
	}
	return rec
}

// audit runs the single-node fleet audit and the Mixbench ECC survey on
// the largest cluster of an environment.
func (st *Study) audit(spec apps.EnvSpec, cluster *cloud.Cluster, res *Results) {
	rng := st.Sim.Stream("core/audit/" + spec.Key)
	var reports []apps.Report
	for _, n := range cluster.Nodes {
		reports = append(reports, apps.Collect(n, rng))
	}
	findings := apps.Audit(cluster.Nodes, reports)
	for _, f := range findings {
		st.Log.Addf(st.Sim.Now(), spec.Key, trace.Info, trace.Unexpected,
			"supermarket fish: node %s %s", f.NodeID, f.Detail)
	}
	res.Findings = append(res.Findings, findings...)

	if spec.Acc == cloud.GPU {
		on, total := 0, 0
		for _, n := range cluster.Nodes {
			total += n.VisibleGPUs
			if n.ECCEnabled {
				on += n.VisibleGPUs
			}
		}
		if total > 0 {
			res.ECCOn[spec.Key] = float64(on) / float64(total)
		}
	}
}
