package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// collectEvents drains a subscription in the background and returns a
// join func yielding everything received (the channel closes when the
// session finishes).
func collectEvents(ch <-chan Event) func() []Event {
	done := make(chan []Event, 1)
	go func() {
		var evs []Event
		for ev := range ch {
			evs = append(evs, ev)
		}
		done <- evs
	}()
	return func() []Event { return <-done }
}

// kinds filters an event list down to one kind.
func kinds(evs []Event, k EventKind) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// TestSessionIsPureObservation is the acceptance check for the event
// layer: a fully subscribed session, at the widest partition plan
// (env-app × 32 workers), must produce the dataset byte-for-byte pinned
// by the committed seed-2025 golden file — events draw nothing and
// reorder nothing. It also pins the stream's shape: opens with
// study-started, closes with study-finished, brackets every environment
// and unit, and drives progress exactly through the partition plan.
func TestSessionIsPureObservation(t *testing.T) {
	t.Parallel()
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_seed2025.txt"))
	if err != nil {
		t.Fatal(err)
	}
	spec := &StudySpec{Seed: 2025, Workers: 32, Granularity: GranularityEnvApp}
	st, _ := storedStudy(t, spec, nil)
	sess := newSession(func() {})
	ch, _ := sess.Subscribe()
	join := collectEvents(ch)
	res, err := st.runSession(context.Background(), sess)
	sess.finish(res, err)
	if err != nil {
		t.Fatal(err)
	}
	if goldenSnapshot(res) != string(golden) {
		t.Fatal("subscribed-session dataset diverged from the committed golden file: events are not pure observation")
	}

	evs := join()
	if len(evs) == 0 || evs[0].Kind != EventStudyStarted {
		t.Fatalf("stream must open with %s, got %+v", EventStudyStarted, evs[:min(3, len(evs))])
	}
	if last := evs[len(evs)-1]; last.Kind != EventStudyFinished {
		t.Fatalf("stream must close with %s, got %s", EventStudyFinished, last.Kind)
	}
	deployable, skipped := 0, 0
	for _, e := range st.Envs {
		if e.Unavailable == "" {
			deployable++
		} else {
			skipped++
		}
	}
	if got := len(kinds(evs, EventEnvFinished)); got != deployable {
		t.Errorf("env-finished events = %d, want %d", got, deployable)
	}
	if got := len(kinds(evs, EventEnvSkipped)); got != skipped {
		t.Errorf("env-skipped events = %d, want %d", got, skipped)
	}
	wantUnits := deployable * len(st.Models)
	if got := len(kinds(evs, EventUnitFinished)) + len(kinds(evs, EventUnitCached)); got != wantUnits {
		t.Errorf("unit completion events = %d, want %d", got, wantUnits)
	}
	done, total := sess.Progress()
	if total != deployable+skipped+wantUnits || done != total {
		t.Errorf("progress = %d/%d, want %d/%d (partition plan: envs + units)",
			done, total, deployable+skipped+wantUnits, deployable+skipped+wantUnits)
	}
	progress := kinds(evs, EventProgress)
	if len(progress) != total {
		t.Errorf("progress events = %d, want one per plan task (%d)", len(progress), total)
	}
	if p := progress[len(progress)-1]; p.Done != total || p.Percent() != 100 {
		t.Errorf("final progress = %d/%d (%.1f%%), want %d/%d", p.Done, p.Total, p.Percent(), total, total)
	}
	if sess.Dropped() != 0 {
		t.Errorf("%d events dropped under an actively-draining subscriber", sess.Dropped())
	}
}

// TestSessionEmitsIncidents: a chaotic session surfaces every injected
// fault as an EventIncident — and stays byte-identical to the same
// chaotic study run blind.
func TestSessionEmitsIncidents(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 11, Chaos: "default", Workers: 4}
	stBase, _ := storedStudy(t, spec, nil)
	base, err := stBase.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Incidents) == 0 {
		t.Fatal("chaotic baseline injected nothing; the test would be vacuous")
	}
	st, _ := storedStudy(t, spec, nil)
	sess := newSession(func() {})
	ch, _ := sess.Subscribe()
	join := collectEvents(ch)
	res, err := st.runSession(context.Background(), sess)
	sess.finish(res, err)
	if err != nil {
		t.Fatal(err)
	}
	if goldenSnapshot(res) != goldenSnapshot(base) {
		t.Fatal("chaotic subscribed session diverged from the blind run")
	}
	incidents := kinds(join(), EventIncident)
	if len(incidents) != len(base.Incidents) {
		t.Fatalf("incident events = %d, want %d (one per injected fault)", len(incidents), len(base.Incidents))
	}
	for _, ev := range incidents {
		if ev.Incident == nil || ev.Env == "" {
			t.Fatalf("incident event missing payload: %+v", ev)
		}
	}
}

// TestRunFullSecondCallReturnsErrStudyConsumed pins the satellite fix:
// studies are one-shot, and reuse is a defined error instead of silent
// merge corruption.
func TestRunFullSecondCallReturnsErrStudyConsumed(t *testing.T) {
	t.Parallel()
	st, err := NewFromSpec(&StudySpec{Seed: 3, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Store = nil
	if _, err := st.RunFull(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RunFull(); !errors.Is(err, ErrStudyConsumed) {
		t.Fatalf("second RunFull = %v, want ErrStudyConsumed", err)
	}
	// The context-aware surface answers identically.
	if _, err := st.Run(context.Background()); !errors.Is(err, ErrStudyConsumed) {
		t.Fatalf("Run after RunFull = %v, want ErrStudyConsumed", err)
	}
}

// TestRunnerSingleFlight: concurrent same-spec callers through one
// Runner share a single execution — every caller receives the same
// *Results value — and later callers are served from the memory tier
// with a study-cached event.
func TestRunnerSingleFlight(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 880001, Envs: []string{"azure-aks-cpu"}, Scales: []int{2, 4}, Iterations: 2}
	r := &Runner{disableStore: true}
	const callers = 8
	results := make([]*Results, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(context.Background(), spec)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different Results value: single-flight failed", i)
		}
	}

	// A later Start is a memory-tier hit, visible on its event stream.
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil || res != results[0] {
		t.Fatalf("memory-tier Start: res=%p err=%v, want shared %p", res, err, results[0])
	}
	ch, _ := sess.Subscribe()
	evs := collectEvents(ch)()
	cached := kinds(evs, EventStudyCached)
	if len(cached) != 1 || cached[0].Tier != "memory" {
		t.Fatalf("memory hit events = %+v, want one study-cached tier=memory", evs)
	}
}

// TestRunnerSharedCtxErrorNotMemoized: cancelling the leading session
// hands every concurrent caller the shared context error, and the
// cancellation is not memoized — the next caller computes fresh.
func TestRunnerSharedCtxErrorNotMemoized(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 880002, Workers: 1}
	r := &Runner{disableStore: true}
	leader, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := leader.Subscribe()
	// Wait until execution is demonstrably under way before attaching
	// followers and cancelling.
	for ev := range ch {
		if ev.Kind == EventEnvStarted || ev.Kind == EventUnitStarted {
			break
		}
	}
	var followers []*Session
	for i := 0; i < 3; i++ {
		f, err := r.Start(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, f)
	}
	leader.Cancel()
	if _, err := leader.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("leader Wait = %v, want context.Canceled", err)
	}
	for i, f := range followers {
		if _, err := f.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("follower %d Wait = %v, want the shared context.Canceled", i, err)
		}
	}
	// Not poisoned: a fresh caller computes and succeeds.
	res, err := r.Run(context.Background(), spec)
	if err != nil || res == nil {
		t.Fatalf("post-cancellation Run = (%v, %v), want a fresh dataset", res, err)
	}
}

// TestRunnerFollowerDetachesOnOwnCtx: a follower whose own context is
// cancelled detaches immediately while the shared execution keeps
// running to a successful result for everyone else.
func TestRunnerFollowerDetachesOnOwnCtx(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 880003, Workers: 1}
	r := &Runner{disableStore: true}
	leader, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	follower, err := r.Start(fctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fcancel()
	if _, err := follower.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("detached follower Wait = %v, want its own context.Canceled", err)
	}
	res, err := leader.Wait()
	if err != nil || res == nil {
		t.Fatalf("leader Wait after follower detach = (%v, %v), want success", res, err)
	}
}

// TestRunnerLogfCapturesStoreWarnings pins the injectable-logger
// satellite: a Runner's Logf receives the persist-layer warnings its
// executions raise (here, a corrupted study bundle degrading to
// recompute), and the shared store's own logger stays silent for them.
func TestRunnerLogfCapturesStoreWarnings(t *testing.T) {
	t.Parallel()
	rs, mem := quietStore(t)
	var storeOwn []string
	rs.Logf = func(format string, args ...any) { storeOwn = append(storeOwn, format) }
	spec := &StudySpec{Seed: 880004, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1}
	r := &Runner{Store: rs}
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	key := dropCacheEntry(t, spec)
	// Damage every layer of the stored bundle so the warm load degrades
	// and warns.
	m, _, err := rs.reg.Resolve("study/" + key)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Layers {
		if !mem.Corrupt(string(l.Digest)) {
			t.Fatalf("layer %s not in store", l.Digest)
		}
	}

	var mu sync.Mutex
	var captured []string
	r2 := &Runner{Store: rs, Logf: func(format string, args ...any) {
		mu.Lock()
		captured = append(captured, format)
		mu.Unlock()
	}}
	storeOwn = nil
	if _, err := r2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, f := range captured {
		if strings.Contains(f, "falling back to compute") || strings.Contains(f, "recomputing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected Logf captured %q, want a corrupt-fallback warning", captured)
	}
	for _, f := range storeOwn {
		if strings.Contains(f, "falling back") || strings.Contains(f, "recomputing") || strings.Contains(f, "warm hit") {
			t.Fatalf("store's own logger still received %q despite the injected one", f)
		}
	}
}

// TestRunnerStoreTierEmitsStudyCached: a Start served warm from the
// persistent store announces it on the event stream.
func TestRunnerStoreTierEmitsStudyCached(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	spec := &StudySpec{Seed: 880005, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1}
	r := &Runner{Store: rs}
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	dropCacheEntry(t, spec)
	sess, err := r.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	ch, _ := sess.Subscribe()
	evs := collectEvents(ch)()
	cached := kinds(evs, EventStudyCached)
	if len(cached) != 1 || cached[0].Tier != "store" {
		t.Fatalf("store-tier Start events = %+v, want one study-cached tier=store", evs)
	}
}

// TestRunnerConfigureBypassesCacheTiers: non-spec options produce
// datasets that depend on more than the spec, so configured runs are
// never served from (or memoized into) the study tiers.
func TestRunnerConfigureBypassesCacheTiers(t *testing.T) {
	t.Parallel()
	spec := &StudySpec{Seed: 880006, Envs: []string{"google-gke-cpu"}, Scales: []int{2}, Iterations: 1}
	plain := &Runner{disableStore: true}
	base, err := plain.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	configured := &Runner{disableStore: true, Configure: func(o *Options) { o.PauseBetweenScales = time.Hour }}
	a, err := configured.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := configured.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a == base || b == base {
		t.Fatal("configured run was served from the spec-keyed memory tier")
	}
	if a == b {
		t.Fatal("configured runs must not memoize: got the same Results twice")
	}
	// And the memory tier still serves the unconfigured dataset.
	again, err := plain.Run(context.Background(), spec)
	if err != nil || again != base {
		t.Fatalf("plain rerun = (%p, %v), want memoized %p", again, err, base)
	}
}
