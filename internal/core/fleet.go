package core

// The fleet seam: what internal/fleet needs from the executor to
// distribute (env, app) units across remote worker processes.
//
// A unit is the natural distribution quantum because it is already a
// pure function of spec-sliced inputs — UnitKey hashes exactly the
// inputs that determine a unit's bytes (seed, env row with effective
// scales, app, iterations, the env's chaos-plan slice), so any process
// that receives those inputs computes the identical artifact. UnitWork
// is that input tuple in wire form; ComputeUnitFiles is the worker-side
// recompute; AcceptUnit is the coordinator-side verification gate that
// admits a pushed artifact into the result store only after it decodes
// against the exact draw schedule the assembly will replay.
//
// Trust model: a worker is trusted to run the simulation honestly (the
// same trust a PR-7 sync peer gets — both feed the store), but nothing
// else. Framing, content addressing, metadata, and the (nodes, iter)
// schedule are all verified on arrival; an artifact that fails any check
// is refused and the unit degrades to local recompute, never to wrong
// bytes that could wedge the environment assembly.

import (
	"context"
	"fmt"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/network"
	"cloudhpc/internal/oras"
	"cloudhpc/internal/store"
)

// UnitWork is one (env, app) unit's complete input tuple — everything a
// remote process needs to recompute the unit byte-identically, and
// everything the coordinator needs to verify the result. Key is the
// UnitKey sub-hash of the other fields; a worker recomputes it from them
// and refuses mismatched work, so a corrupted assignment can never
// produce a plausibly-keyed artifact.
type UnitWork struct {
	Key        string `json:"key"`
	Seed       uint64 `json:"seed"`
	Env        string `json:"env"`
	Scales     []int  `json:"scales"`
	App        string `json:"app"`
	Iterations int    `json:"iterations"`
	// Chaos is the env's plan slice in plan-file syntax (chaos.Plan.String
	// of RulesFor(env)); empty when no rule targets the environment.
	Chaos string `json:"chaos,omitempty"`
}

// FleetDelegate is the executor's hook into a work-distribution
// coordinator. Offload publishes one unit for remote computation and
// blocks until a verified artifact for it has landed in the result store
// (true), or the coordinator decides the unit should be computed locally
// (false): no live workers, attempts exhausted, straggler deadline hit,
// coordinator shut down, or ctx cancelled. observe receives the unit's
// lease-lifecycle events (EventUnitLeased, EventUnitLeaseExpired) for
// the session stream; it may be invoked from coordinator goroutines and
// must be safe for that.
type FleetDelegate interface {
	Offload(ctx context.Context, work UnitWork, observe func(EventKind)) bool
}

// unitChaosText renders the chaos-plan slice of one environment in
// parseable plan-file syntax — the wire form of the same slice UnitKey
// hashes, so a worker that parses it back recomputes the identical key
// (RulesFor is idempotent on an already-sliced plan, and normalized
// rules round-trip through String/ParsePlan exactly).
func unitChaosText(plan *chaos.Plan, env string) string {
	if plan == nil {
		return ""
	}
	slice := &chaos.Plan{Rules: plan.RulesFor(env)}
	return slice.String()
}

// unitWork assembles the UnitWork tuple for one of the shard's units.
func (sh *shard) unitWork(key string, app string) UnitWork {
	return UnitWork{
		Key:        key,
		Seed:       sh.sim.Seed(),
		Env:        sh.spec.Key,
		Scales:     sh.spec.Scales,
		App:        app,
		Iterations: sh.iterations,
		Chaos:      unitChaosText(sh.opts.Chaos, sh.spec.Key),
	}
}

// unitEnv reconstructs the environment row a UnitWork describes: the
// study's canonical spec for the env key with the work's effective
// scales applied — exactly the row UnitKey hashed and planUnit visits.
func unitEnv(w UnitWork) (apps.EnvSpec, error) {
	env, err := apps.EnvByKey(w.Env)
	if err != nil {
		return apps.EnvSpec{}, err
	}
	if len(w.Scales) == 0 {
		return apps.EnvSpec{}, fmt.Errorf("core: unit work for %s/%s has no scales", w.Env, w.App)
	}
	env.Scales = w.Scales
	return env, nil
}

// ComputeUnitFiles computes one offloaded unit from first principles —
// the worker half of the fleet protocol. It rebuilds the environment
// row and chaos slice from the work tuple, verifies the tuple's key
// against a recomputed UnitKey (refusing corrupted or stale
// assignments), runs the same planUnit the local executor would, and
// returns the unit artifact's files (unit.json + runs.jsonl) ready to
// push. Byte-identity needs no further argument: the draws come from
// the stream named (env, app) of a simulation seeded with the study
// seed, exactly as they would locally.
func ComputeUnitFiles(w UnitWork) (map[string][]byte, error) {
	env, err := unitEnv(w)
	if err != nil {
		return nil, err
	}
	if w.Iterations <= 0 {
		return nil, fmt.Errorf("core: unit work for %s/%s has iterations %d", w.Env, w.App, w.Iterations)
	}
	var plan *chaos.Plan
	if w.Chaos != "" {
		if plan, err = chaos.ParsePlan(w.Chaos); err != nil {
			return nil, fmt.Errorf("core: unit work chaos slice: %w", err)
		}
	}
	if got := UnitKey(w.Seed, env, w.App, w.Iterations, plan); got != w.Key {
		return nil, fmt.Errorf("core: unit work key %s does not match its inputs (recomputed %s)", w.Key, got)
	}
	models, err := apps.SelectModels([]string{w.App})
	if err != nil {
		return nil, err
	}
	u := planUnit(w.Seed, env, models[0], w.Iterations, network.NewHookupModel())
	meta := dataset.UnitMeta{
		Version: storeSchemaVersion, Key: w.Key, Seed: w.Seed,
		Env: w.Env, App: w.App, Iterations: w.Iterations,
	}
	return dataset.MarshalUnit(meta, unitRecords(w.Env, w.App, u))
}

// AcceptUnit is the coordinator-side verification gate for one pushed
// unit artifact: the manifest at manifestDigest (delivered through the
// chunked sync ingest, so every blob already verified its content
// address) is decoded and validated against the exact (nodes, iter)
// schedule the work tuple implies — the same decodeUnitPlan check a
// warm load performs — and only then tagged "unit/<key>" first-write-
// wins. A failed check leaves the store untouched and the caller falls
// back to local compute; a duplicate completion finds the tag already
// bound and is a harmless no-op.
func (rs *ResultStore) AcceptUnit(w UnitWork, manifestDigest string) error {
	if !store.ValidDigest(manifestDigest) {
		return fmt.Errorf("core: accept unit %s: malformed manifest digest %q", w.Key, manifestDigest)
	}
	env, err := unitEnv(w)
	if err != nil {
		return err
	}
	files, err := rs.reg.PullDigest(oras.Digest(manifestDigest))
	if err != nil {
		return fmt.Errorf("core: accept unit %s: %w", w.Key, err)
	}
	meta, cur, err := dataset.UnitCursor(files)
	if err != nil {
		return fmt.Errorf("core: accept unit %s: %w", w.Key, err)
	}
	if meta.Version != storeSchemaVersion || meta.Key != w.Key || meta.Seed != w.Seed ||
		meta.Env != w.Env || meta.App != w.App || meta.Iterations != w.Iterations {
		return fmt.Errorf("core: accept unit %s: artifact metadata %s/%s v%d does not match the work tuple", w.Key, meta.Env, meta.App, meta.Version)
	}
	if _, err := decodeUnitPlan(env, w.App, w.Iterations, meta, cur); err != nil {
		return fmt.Errorf("core: accept unit %s: %w", w.Key, err)
	}
	if _, err := rs.reg.TagIfAbsent("unit/"+w.Key, oras.Digest(manifestDigest)); err != nil {
		return fmt.Errorf("core: accept unit %s: %w", w.Key, err)
	}
	return nil
}
