package core

// The persistent tier of the result pipeline. The paper's study archived
// every run dataset content-addressed in an OCI registry (25,541 of
// them); this file gives the reproduction the same durable-store
// discipline: study datasets and (env, app) unit outputs serialize into
// an oras registry over a shared blob store (in-memory for tests, on
// disk via -store for the cmd/ tools and CI), keyed by content hashes of
// exactly the inputs that determine them.
//
// Two artifact granularities live in the store:
//
//   - "study/<spec-hash>": a complete study dataset (runs, trace,
//     billing ledger, audits) under the spec's canonical hash — the
//     whole-study warm path of CachedRunSpec.
//   - "unit/<sub-hash>": one (env, app) unit's precomputed model and
//     hookup draws under a sub-hash of only that unit's inputs (seed,
//     env row with scales, app, iterations, the chaos-plan slice
//     matching the env) — the incremental path. Because the sub-hash
//     ignores every other environment in the spec, a spec that edits one
//     env re-executes only that env's units; unchanged envs decode their
//     units from the store.
//
// Warm results are byte-identical to cold compute: every float, duration
// and error message round-trips exactly (JSON floats use shortest
// round-trip encoding, durations are integer nanoseconds, errors flatten
// to their messages and known sentinels rehydrate). Any read failure —
// missing tag, corrupt blob, schema drift — degrades to a logged warning
// and a recompute, never an error: the store is a cache, the simulation
// is the truth.

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/cloud"
	"cloudhpc/internal/containers"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/jsonl"
	"cloudhpc/internal/oras"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/store"
	"cloudhpc/internal/trace"
)

// storeSchemaVersion is bumped whenever the serialized forms change;
// artifacts from another version are treated as misses and recomputed.
// v2: study metadata gained the container-build funnel.
const storeSchemaVersion = 2

// Record converts a live run record to its archived form (errors flatten
// to strings so the archive round-trips through JSON).
func (r RunRecord) Record() dataset.Record {
	rec := dataset.Record{
		Env: r.EnvKey, App: r.App, Nodes: r.Nodes, Iter: r.Iter,
		FOM: r.FOM, Unit: r.Unit, Wall: r.Wall, Hookup: r.Hookup, CostUSD: r.CostUSD,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	return rec
}

// Records converts the dataset's run list to archived form, in run
// order. cmd/archive pushes these through dataset.Push; the persistent
// store bundles them into study artifacts.
func (r *Results) Records() []dataset.Record {
	out := make([]dataset.Record, len(r.Runs))
	for i, run := range r.Runs {
		out[i] = run.Record()
	}
	return out
}

// runFromRecord is the decode inverse of RunRecord.Record.
func runFromRecord(rec dataset.Record) RunRecord {
	return RunRecord{
		EnvKey: rec.Env, App: rec.App, Nodes: rec.Nodes, Iter: rec.Iter,
		FOM: rec.FOM, Unit: rec.Unit, Err: runErr(rec.Error),
		Wall: rec.Wall, Hookup: rec.Hookup, CostUSD: rec.CostUSD,
	}
}

// runErrSentinels are the canonical run-error values a dataset can
// carry; decode maps archived messages back onto them so errors.Is
// answers identically for cold and warm datasets.
var runErrSentinels = []error{
	apps.ErrNotSupported, apps.ErrTimeout, apps.ErrSegfault, apps.ErrOutputLost,
}

// runErr rehydrates an archived error string. Known sentinels map back
// to their canonical values so errors.Is keeps working on decoded
// datasets; everything else keeps its message, which is all the golden
// snapshot and every report render.
func runErr(msg string) error {
	if msg == "" {
		return nil
	}
	for _, s := range runErrSentinels {
		if msg == s.Error() {
			return s
		}
	}
	return errors.New(msg)
}

// StoreStats is a snapshot of a result store's hit/miss accounting — the
// compute-count probe the incremental-execution tests assert against.
type StoreStats struct {
	StudyHits        int64 // whole-study warm loads served
	StudyMisses      int64 // whole-study lookups that fell through
	UnitHits         int64 // (env, app) units decoded instead of computed
	UnitMisses       int64 // (env, app) units that had to be computed
	CorruptFallbacks int64 // artifacts present but unreadable (fell back)
}

// ResultStore is the persistent tier between the in-process spec-hash
// cache and study execution: an oras registry over a pluggable blob
// store holding study bundles and unit artifacts. Safe for concurrent
// use. The zero value is not usable; use NewResultStore or
// OpenResultStore.
type ResultStore struct {
	reg *oras.Registry
	// Logf receives warm-hit notices and corruption warnings (default
	// log.Printf, so cmd/ tools surface them on stderr). Set to nil to
	// silence, or to a test capture to assert on them. Assign before
	// first use; the store calls it without synchronization.
	Logf func(format string, args ...any)

	studyHits, studyMisses, unitHits, unitMisses, corrupt atomic.Int64
}

// NewResultStore returns a result store over the given blob store.
func NewResultStore(bs store.BlobStore) *ResultStore {
	return &ResultStore{reg: oras.NewRegistryWith(bs), Logf: log.Printf}
}

// OpenResultStore opens (creating if needed) an on-disk result store —
// the -store DIR flag's implementation.
func OpenResultStore(dir string) (*ResultStore, error) {
	bs, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return NewResultStore(bs), nil
}

// Registry exposes the store's oras registry so other archival users
// (cmd/archive) can share one content-addressed store with the result
// tiers.
func (rs *ResultStore) Registry() *oras.Registry { return rs.reg }

// Stats returns a snapshot of the store's accounting.
func (rs *ResultStore) Stats() StoreStats {
	return StoreStats{
		StudyHits:        rs.studyHits.Load(),
		StudyMisses:      rs.studyMisses.Load(),
		UnitHits:         rs.unitHits.Load(),
		UnitMisses:       rs.unitMisses.Load(),
		CorruptFallbacks: rs.corrupt.Load(),
	}
}

// GC sweeps blobs unreachable from the store's artifacts (superseded
// bundles whose tags moved on, damaged leftovers) and reports how many
// were removed. The sweep is mutually exclusive with in-flight pushes
// (oras.Registry.GC holds the registry's write lock).
func (rs *ResultStore) GC() (int, error) {
	return rs.reg.GC()
}

func (rs *ResultStore) logf(format string, args ...any) {
	if rs.Logf != nil {
		rs.Logf(format, args...)
	}
}

// logvia routes a warning through an injected per-run logger when one is
// set (Runner.Logf → Study.Logf → here), else through the store's own
// Logf — the hook that lets a service embedder capture persist warnings
// without touching the shared store's default.
func (rs *ResultStore) logvia(logf func(format string, args ...any), format string, args ...any) {
	if logf != nil {
		logf(format, args...)
		return
	}
	rs.logf(format, args...)
}

// The process-default result store, set by internal/cli from the -store
// flag; nil means the persistent tier is disabled and the pipeline is
// memory → compute, exactly as before the store existed.
var defaultResultStore atomic.Pointer[ResultStore]

// SetDefaultResultStore installs (or, with nil, removes) the process
// default consulted by CachedRunSpec and attached to new studies.
func SetDefaultResultStore(rs *ResultStore) { defaultResultStore.Store(rs) }

// DefaultResultStore returns the process-default result store, or nil.
func DefaultResultStore() *ResultStore { return defaultResultStore.Load() }

// studyMeta is the "meta.json" of a study bundle: everything in Results
// that is not runs, trace, or billing ledger.
type studyMeta struct {
	Version   int                              `json:"version"`
	Hash      string                           `json:"hash"`
	Seed      uint64                           `json:"seed"`
	Runs      int                              `json:"runs"`
	ClockNs   int64                            `json:"clock_ns"`
	ECCOn     map[string]float64               `json:"ecc_on,omitempty"`
	Hookups   map[string]map[int]time.Duration `json:"hookups,omitempty"`
	Findings  []apps.Finding                   `json:"findings,omitempty"`
	Incidents []chaos.Incident                 `json:"incidents,omitempty"`
	Recovery  chaos.Accounting                 `json:"recovery"`
	Builds    containers.Funnel                `json:"builds"`
}

// SaveStudy archives a complete study dataset under the resolved spec's
// canonical hash. Saving is idempotent: identical datasets dedup to the
// same blobs. The four bundle files encode concurrently — they read
// disjoint, by-now-immutable parts of the results (runs, trace, ledger,
// metadata), so the encodes are independent and the bundle bytes are
// identical to a serial encode.
func (rs *ResultStore) SaveStudy(r *ResolvedSpec, res *Results) error {
	key := r.Hash()
	var (
		wg                                   sync.WaitGroup
		runs, traceData, meterData, metaData []byte
		runsErr, traceErr, meterErr, metaErr error
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		runs, runsErr = dataset.MarshalJSONL(res.Records())
	}()
	go func() {
		defer wg.Done()
		traceData, traceErr = res.Log.MarshalJSONL()
	}()
	go func() {
		defer wg.Done()
		meterData, meterErr = res.Meter.MarshalCharges()
	}()
	metaData, metaErr = json.Marshal(studyMeta{
		Version: storeSchemaVersion, Hash: key, Seed: r.Seed,
		Runs:    len(res.Runs),
		ClockNs: int64(res.Meter.Now()),
		ECCOn:   res.ECCOn, Hookups: res.Hookups, Findings: res.Findings,
		Incidents: res.Incidents, Recovery: res.Recovery, Builds: res.Builds,
	})
	wg.Wait()
	for _, err := range []error{runsErr, traceErr, meterErr, metaErr} {
		if err != nil {
			return err
		}
	}
	_, err := rs.reg.Push("study/"+key, dataset.StudyBundleType,
		map[string][]byte{
			"meta.json":   metaData,
			"runs.jsonl":  runs,
			"trace.jsonl": traceData,
			"meter.jsonl": meterData,
		},
		map[string]string{
			"cloudhpc.seed": strconv.FormatUint(r.Seed, 10),
			"cloudhpc.runs": strconv.Itoa(len(res.Runs)),
		})
	return err
}

// LoadStudy returns the archived dataset for a resolved spec, or (nil,
// false) on a miss. A present-but-unreadable artifact (corrupt blob,
// schema drift, torn write) is a logged warning and a miss — the caller
// falls back to compute.
func (rs *ResultStore) LoadStudy(r *ResolvedSpec) (*Results, bool) {
	return rs.loadStudyVia(r, nil)
}

// loadStudyVia is LoadStudy with an injectable warning logger (nil means
// the store's own).
func (rs *ResultStore) loadStudyVia(r *ResolvedSpec, logf func(format string, args ...any)) (*Results, bool) {
	key := r.Hash()
	files, err := rs.reg.Pull("study/" + key)
	if errors.Is(err, oras.ErrTagUnknown) {
		rs.studyMisses.Add(1)
		return nil, false
	}
	if err != nil {
		rs.corrupt.Add(1)
		rs.studyMisses.Add(1)
		rs.logvia(logf, "core: result store: study/%s unreadable (%v); falling back to compute", key, err)
		return nil, false
	}
	res, err := decodeStudy(r, key, files)
	if err != nil {
		rs.corrupt.Add(1)
		rs.studyMisses.Add(1)
		rs.logvia(logf, "core: result store: study/%s undecodable (%v); falling back to compute", key, err)
		return nil, false
	}
	rs.studyHits.Add(1)
	rs.logvia(logf, "core: result store: warm hit study/%s", key)
	return res, true
}

// decodeStudy rebuilds a Results from a study bundle's files. The meter
// is reconstructed against a fresh simulation advanced to the archived
// end-of-study clock, so lag-dependent views (ReportedSpend) read
// exactly as they did when the dataset was saved. The three JSONL files
// decode concurrently once the metadata validates — they are
// independent inputs, so the rebuilt Results is identical to a serial
// decode.
func decodeStudy(r *ResolvedSpec, key string, files map[string][]byte) (*Results, error) {
	// Every bundle file must be present: a missing runs.jsonl would
	// otherwise decode as a plausible-looking empty dataset (JSONL of
	// nothing is zero records, no error) instead of falling back.
	for _, name := range []string{"meta.json", "runs.jsonl", "trace.jsonl", "meter.jsonl"} {
		if _, ok := files[name]; !ok {
			return nil, fmt.Errorf("bundle missing %s", name)
		}
	}
	var meta studyMeta
	if err := json.Unmarshal(files["meta.json"], &meta); err != nil {
		return nil, fmt.Errorf("meta.json: %w", err)
	}
	if meta.Version != storeSchemaVersion {
		return nil, fmt.Errorf("schema version %d, want %d", meta.Version, storeSchemaVersion)
	}
	if meta.Hash != key {
		return nil, fmt.Errorf("bundle hash %s under tag study/%s", meta.Hash, key)
	}
	var (
		wg         sync.WaitGroup
		recs       []dataset.Record
		lg         *trace.Log
		chargeRecs []cloud.ChargeRecord
		traceErr   error
		meterErr   error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		lg, traceErr = trace.UnmarshalJSONL(files["trace.jsonl"])
	}()
	go func() {
		defer wg.Done()
		chargeRecs, meterErr = cloud.UnmarshalCharges(files["meter.jsonl"])
	}()
	recs, runsErr := dataset.UnmarshalJSONL(files["runs.jsonl"])
	wg.Wait()
	for _, err := range []error{runsErr, traceErr, meterErr} {
		if err != nil {
			return nil, err
		}
	}
	if len(recs) != meta.Runs {
		return nil, fmt.Errorf("bundle holds %d runs, metadata says %d", len(recs), meta.Runs)
	}

	s := sim.New(meta.Seed)
	s.Clock.AdvanceTo(time.Duration(meta.ClockNs))
	meter := cloud.NewMeter(s, lg)
	for _, p := range []cloud.Provider{cloud.AWS, cloud.Azure, cloud.Google} {
		meter.SetBudget(p, BudgetPerCloudUSD)
	}
	meter.RestoreCharges(chargeRecs)

	res := &Results{
		Runs: make([]RunRecord, 0, len(recs)),
		Log:  lg, Meter: meter, Envs: r.Envs,
		ECCOn: meta.ECCOn, Hookups: meta.Hookups,
		Findings: meta.Findings, Incidents: meta.Incidents, Recovery: meta.Recovery,
		Builds: meta.Builds,
	}
	if res.ECCOn == nil {
		res.ECCOn = make(map[string]float64)
	}
	if res.Hookups == nil {
		res.Hookups = make(map[string]map[int]time.Duration)
	}
	for _, rec := range recs {
		res.Runs = append(res.Runs, runFromRecord(rec))
	}
	return res, nil
}

// UnitKey computes the sub-hash one (env, app) unit is stored under: a
// content hash of exactly the unit's own slice of the spec-hash inputs —
// seed, the environment row (key and effective scales), the application,
// the iteration count, and the chaos-plan rules matching the environment.
// Everything else a spec says (which other environments it runs, its
// worker or granularity policy) is invisible here, which is what lets a
// spec edit that touches one environment reuse every other environment's
// stored units.
//
// Today's unit draws are chaos-independent (faults perturb the
// lifecycle after the draw), so the chaos slice makes the key strictly
// conservative: a plan edit that targets the environment re-keys its
// units even though their bytes would not change. That is deliberate
// cheap insurance — a future fault kind that does reach into the draw
// path can never silently serve pre-chaos units — at the cost of one
// redundant unit set per (env, plan-slice) pair.
func UnitKey(seed uint64, env apps.EnvSpec, app string, iterations int, plan *chaos.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unit v%d\nseed %d\n", storeSchemaVersion, seed)
	scales := make([]string, len(env.Scales))
	for i, n := range env.Scales {
		scales[i] = strconv.Itoa(n)
	}
	fmt.Fprintf(&b, "env %s scales=%s\napp %s\niterations %d\nchaos:\n",
		env.Key, strings.Join(scales, ","), app, iterations)
	if plan != nil {
		slice := &chaos.Plan{Rules: plan.RulesFor(env.Key)}
		b.WriteString(slice.String())
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}

// saveUnit archives one computed unit. Failures are warnings (routed
// through logf when injected): a unit that fails to store just
// recomputes next time.
func (rs *ResultStore) saveUnit(meta dataset.UnitMeta, u *unitPlan, logf func(format string, args ...any)) {
	files, err := dataset.MarshalUnit(meta, unitRecords(meta.Env, meta.App, u))
	if err == nil {
		_, err = rs.reg.Push("unit/"+meta.Key, dataset.UnitArtifactType, files, nil)
	}
	if err != nil {
		rs.logvia(logf, "core: result store: storing unit/%s failed: %v", meta.Key, err)
	}
}

// loadUnit returns the archived unit plan for a key, or (nil, false) on
// a miss; unreadable or mismatched artifacts warn (through logf when
// injected) and miss. The decoded
// runs are validated against the exact (nodes, iter) schedule the
// environment assembly will replay — a stale artifact that still
// decodes (a draw-schedule change not captured by the key or a schema
// bump) must degrade to recompute here, because once handed to the
// assembly an out-of-step plan fails the whole study.
func (rs *ResultStore) loadUnit(key string, env apps.EnvSpec, app string, iterations int, logf func(format string, args ...any)) (*unitPlan, bool) {
	files, err := rs.reg.Pull("unit/" + key)
	if errors.Is(err, oras.ErrTagUnknown) {
		rs.unitMisses.Add(1)
		return nil, false
	}
	if err != nil {
		rs.corrupt.Add(1)
		rs.unitMisses.Add(1)
		rs.logvia(logf, "core: result store: unit/%s unreadable (%v); recomputing", key, err)
		return nil, false
	}
	meta, cur, err := dataset.UnitCursor(files)
	if err == nil && (meta.Version != storeSchemaVersion || meta.Key != key || meta.Env != env.Key || meta.App != app) {
		err = fmt.Errorf("unit metadata %s/%s v%d under key %s", meta.Env, meta.App, meta.Version, key)
	}
	var u *unitPlan
	if err == nil {
		u, err = decodeUnitPlan(env, app, iterations, meta, cur)
	}
	if err != nil {
		rs.corrupt.Add(1)
		rs.unitMisses.Add(1)
		rs.logvia(logf, "core: result store: unit/%s undecodable (%v); recomputing", key, err)
		return nil, false
	}
	rs.unitHits.Add(1)
	return u, true
}

// decodeUnitPlan drains a unit artifact's record cursor into a unit
// plan in one streaming pass: each record is validated against the
// exact (nodes, iter) schedule planUnit would plan today as it decodes
// — the same loop shape, so the planned schedule and its archived form
// can never drift apart silently — and converted straight into its
// planned-run slot, with no intermediate record slice. A stale artifact
// that still decodes (a draw-schedule change not captured by the key or
// a schema bump) must fail here, because once handed to the assembly an
// out-of-step plan fails the whole study.
func decodeUnitPlan(env apps.EnvSpec, app string, iterations int, meta dataset.UnitMeta, cur *jsonl.Decoder[dataset.Record]) (*unitPlan, error) {
	u := &unitPlan{runs: make([]plannedRun, 0, meta.Records)}
	maxNodes := apps.MaxNodesFor(env)
	for _, nodes := range env.Scales {
		if nodes > maxNodes {
			continue
		}
		iters := itersFor(env, nodes, app, iterations)
		for it := 0; it < iters; it++ {
			rec, ok, err := cur.Next()
			if err != nil {
				return nil, err
			}
			if !ok || rec.Nodes != nodes || rec.Iter != it {
				return nil, fmt.Errorf("stale draw schedule at record %d (want nodes=%d iter=%d)", len(u.runs), nodes, it)
			}
			u.runs = append(u.runs, plannedRun{
				nodes: rec.Nodes, iter: rec.Iter,
				result: apps.Result{FOM: rec.FOM, Unit: rec.Unit, Wall: rec.Wall, Err: runErr(rec.Error)},
				hookup: rec.Hookup,
			})
		}
	}
	if rec, ok, err := cur.Next(); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("stale draw schedule: record (nodes=%d iter=%d) beyond the %d planned", rec.Nodes, rec.Iter, len(u.runs))
	}
	if len(u.runs) != meta.Records {
		return nil, fmt.Errorf("unit holds %d records, metadata says %d", len(u.runs), meta.Records)
	}
	return u, nil
}

// unitRecords converts a unit plan's draws to archived records (CostUSD
// stays zero: cost is lifecycle accounting, not a draw).
func unitRecords(env, app string, u *unitPlan) []dataset.Record {
	recs := make([]dataset.Record, 0, len(u.runs))
	for _, pr := range u.runs {
		rec := dataset.Record{
			Env: env, App: app, Nodes: pr.nodes, Iter: pr.iter,
			FOM: pr.result.FOM, Unit: pr.result.Unit,
			Wall: pr.result.Wall, Hookup: pr.hookup,
		}
		if pr.result.Err != nil {
			rec.Error = pr.result.Err.Error()
		}
		recs = append(recs, rec)
	}
	return recs
}
