package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
	"cloudhpc/internal/dataset"
	"cloudhpc/internal/store"
)

// quietStore returns a memory-backed result store that logs through the
// test instead of stderr.
func quietStore(t *testing.T) (*ResultStore, *store.Memory) {
	t.Helper()
	mem := store.NewMemory()
	rs := NewResultStore(mem)
	rs.Logf = t.Logf
	return rs, mem
}

// storedStudy resolves a spec and builds a study wired to rs (which may
// be nil for a store-free baseline).
func storedStudy(t *testing.T, spec *StudySpec, rs *ResultStore) (*Study, *ResolvedSpec) {
	t.Helper()
	r, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	st := newStudy(r, spec)
	st.Store = rs
	return st, r
}

// dropCacheEntry evicts a spec from the in-process memory tier so the
// next CachedRunSpec call exercises the store tier.
func dropCacheEntry(t *testing.T, spec *StudySpec) string {
	t.Helper()
	key, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	cacheMu.Lock()
	delete(cache, key)
	cacheMu.Unlock()
	return key
}

// TestStoreWarmAndIncrementalByteIdenticalSweep is the acceptance sweep
// for the persistent tier: across granularity × workers {1,4,32}, clean
// and chaotic, three paths must be byte-identical —
//
//  1. cold compute with a store attached (drawPlanned at every
//     granularity, units saved as they compute) — for the clean default
//     spec this is additionally pinned against the committed golden file;
//  2. a warm whole-study load (decode, no compute);
//  3. an incremental rerun that finds the units stored but not the study
//     bundle (the study tag is deleted), so every unit decodes from the
//     store while the lifecycle replays — the compute probe must read
//     zero.
func TestStoreWarmAndIncrementalByteIdenticalSweep(t *testing.T) {
	t.Parallel()
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_seed2025.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, chaosRef := range []string{"", "default"} {
		chaosRef := chaosRef
		name := "clean"
		if chaosRef != "" {
			name = "chaotic"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// Store-free baseline at default policy.
			baseSpec := &StudySpec{Seed: 2025, Chaos: chaosRef}
			stBase, _ := storedStudy(t, baseSpec, nil)
			resBase, err := stBase.RunFull()
			if err != nil {
				t.Fatal(err)
			}
			base := goldenSnapshot(resBase)
			if chaosRef == "" && base != string(golden) {
				t.Fatal("store-free baseline drifted from the committed golden file")
			}
			if chaosRef != "" && len(resBase.Incidents) == 0 {
				t.Fatal("chaotic baseline injected nothing; the sweep would prove nothing")
			}

			for _, g := range []Granularity{GranularityEnv, GranularityEnvApp} {
				for _, w := range []int{1, 4, 32} {
					rs, _ := quietStore(t)
					spec := &StudySpec{Seed: 2025, Chaos: chaosRef, Workers: w, Granularity: g}

					// Path 1: cold compute, store attached.
					stCold, r := storedStudy(t, spec, rs)
					resCold, err := stCold.RunFull()
					if err != nil {
						t.Fatal(err)
					}
					if got := goldenSnapshot(resCold); got != base {
						t.Fatalf("g=%s w=%d: cold store-attached dataset diverged from baseline", g, w)
					}
					if err := rs.SaveStudy(r, resCold); err != nil {
						t.Fatal(err)
					}

					// Path 2: whole-study warm load.
					resWarm, ok := rs.LoadStudy(r)
					if !ok {
						t.Fatalf("g=%s w=%d: saved study missed", g, w)
					}
					if got := goldenSnapshot(resWarm); got != base {
						t.Fatalf("g=%s w=%d: warm-from-store dataset not byte-identical", g, w)
					}

					// Path 3: incremental — units present, bundle gone.
					if err := rs.reg.Backend().DeleteRef("oras/tag/study/" + r.Hash()); err != nil {
						t.Fatal(err)
					}
					if _, ok := rs.LoadStudy(r); ok {
						t.Fatal("study tag deletion did not take")
					}
					stInc, _ := storedStudy(t, spec, rs)
					resInc, err := stInc.RunFull()
					if err != nil {
						t.Fatal(err)
					}
					if got := goldenSnapshot(resInc); got != base {
						t.Fatalf("g=%s w=%d: unit-reuse dataset not byte-identical", g, w)
					}
					if n := stInc.UnitComputes(); n != 0 {
						t.Fatalf("g=%s w=%d: incremental rerun recomputed %d units, want 0", g, w, n)
					}
					if stCold.UnitComputes() == 0 {
						t.Fatalf("g=%s w=%d: cold run computed no units — probe is broken", g, w)
					}
				}
			}
		})
	}
}

// TestStoreIncrementalOneEnvEdit is the incremental-execution acceptance
// probe: a spec that edits one environment of a previously stored study
// re-executes only that environment's units; every unchanged
// environment's units decode from the store.
func TestStoreIncrementalOneEnvEdit(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	models := len(apps.All())

	specA := &StudySpec{Seed: 771001, Envs: []string{"aws-eks-cpu", "google-gke-cpu"}}
	stA, _ := storedStudy(t, specA, rs)
	if _, err := stA.RunFull(); err != nil {
		t.Fatal(err)
	}
	if n := stA.UnitComputes(); n != int64(2*models) {
		t.Fatalf("first run computed %d units, want %d", n, 2*models)
	}

	// Edit one env: google-gke-cpu → azure-aks-cpu. aws-eks-cpu's units
	// must come from the store; only azure's may compute.
	specB := &StudySpec{Seed: 771001, Envs: []string{"aws-eks-cpu", "azure-aks-cpu"}}
	stB, _ := storedStudy(t, specB, rs)
	resB, err := stB.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if n := stB.UnitComputes(); n != int64(models) {
		t.Fatalf("one-env edit recomputed %d units, want exactly %d (the edited env's)", n, models)
	}
	if hits := rs.Stats().UnitHits; hits != int64(models) {
		t.Fatalf("one-env edit decoded %d units from the store, want %d", hits, models)
	}

	// And the reused dataset is byte-identical to a store-free compute.
	stC, _ := storedStudy(t, specB, nil)
	resC, err := stC.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if goldenSnapshot(resB) != goldenSnapshot(resC) {
		t.Fatal("unit-reuse dataset differs from store-free compute")
	}
}

// TestCachedRunSpecStoreTier pins the tier order: a store hit serves the
// dataset without executing the study.
func TestCachedRunSpecStoreTier(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	spec := &StudySpec{Seed: 771002, Envs: []string{"onprem-a-cpu"}, Apps: []string{"amg2023", "stream"}}

	res1, err := cachedRunSpecIn(rs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := rs.Stats(); s.StudyMisses != 1 || s.StudyHits != 0 {
		t.Fatalf("cold stats = %+v", s)
	}
	missesAfterCold := rs.Stats().UnitMisses

	dropCacheEntry(t, spec)
	res2, err := cachedRunSpecIn(rs, spec)
	if err != nil {
		t.Fatal(err)
	}
	s := rs.Stats()
	if s.StudyHits != 1 {
		t.Fatalf("warm call missed the store: %+v", s)
	}
	if s.UnitMisses != missesAfterCold {
		t.Fatalf("store hit still computed units: %+v", s)
	}
	if goldenSnapshot(res1) != goldenSnapshot(res2) {
		t.Fatal("store-served dataset differs from computed one")
	}
}

// TestCachedRunSpecCorruptBlobFallsBack pins the degraded path: a study
// bundle whose blob bytes no longer match their digest is a logged
// warning and a recompute, never an error or wrong data.
func TestCachedRunSpecCorruptBlobFallsBack(t *testing.T) {
	t.Parallel()
	mem := store.NewMemory()
	rs := NewResultStore(mem)
	var mu sync.Mutex
	var warnings []string
	rs.Logf = func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	spec := &StudySpec{Seed: 771003, Envs: []string{"onprem-a-cpu"}, Apps: []string{"amg2023"}}

	res1, err := cachedRunSpecIn(rs, spec)
	if err != nil {
		t.Fatal(err)
	}
	key := dropCacheEntry(t, spec)

	// Damage every layer of the stored bundle underneath the registry.
	m, _, err := rs.reg.Resolve("study/" + key)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Layers {
		if !mem.Corrupt(string(l.Digest)) {
			t.Fatalf("layer %s not in store", l.Digest)
		}
	}

	res2, err := cachedRunSpecIn(rs, spec)
	if err != nil {
		t.Fatalf("corrupt store must fall back to compute, got error: %v", err)
	}
	if goldenSnapshot(res1) != goldenSnapshot(res2) {
		t.Fatal("fallback compute produced a different dataset")
	}
	if rs.Stats().CorruptFallbacks == 0 {
		t.Fatal("corruption not accounted")
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "falling back to compute") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fallback warning logged; warnings: %v", warnings)
	}
}

// TestCachedRunSpecConcurrentSameSpecComputesOnce: duplicate concurrent
// callers coalesce onto one load-or-compute even with the store tier in
// the path.
func TestCachedRunSpecConcurrentSameSpecComputesOnce(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	spec := &StudySpec{Seed: 771004, Envs: []string{"onprem-b-gpu"}}
	models := len(apps.All())

	const callers = 8
	results := make([]*Results, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cachedRunSpecIn(rs, spec)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different result instances — study ran more than once")
		}
	}
	if s := rs.Stats(); s.StudyMisses != 1 || s.UnitMisses != int64(models) || s.UnitHits != 0 {
		t.Fatalf("concurrent callers did redundant work: %+v", s)
	}
}

// TestUnitKeyCoversExactlyUnitInputs pins the sub-hash boundary: the key
// moves with every input that changes a unit's draws or its consumption
// schedule, and with the environment's own chaos slice — and with
// nothing else.
func TestUnitKeyCoversExactlyUnitInputs(t *testing.T) {
	t.Parallel()
	spec, err := apps.EnvByKey("aws-eks-cpu")
	if err != nil {
		t.Fatal(err)
	}
	base := UnitKey(2025, spec, "lammps", 5, nil)
	if UnitKey(2025, spec, "lammps", 5, nil) != base {
		t.Fatal("key not deterministic")
	}
	if UnitKey(2026, spec, "lammps", 5, nil) == base {
		t.Fatal("seed not covered")
	}
	if UnitKey(2025, spec, "kripke", 5, nil) == base {
		t.Fatal("app not covered")
	}
	if UnitKey(2025, spec, "lammps", 4, nil) == base {
		t.Fatal("iterations not covered")
	}
	scaled := spec
	scaled.Scales = []int{8, 16}
	if UnitKey(2025, scaled, "lammps", 5, nil) == base {
		t.Fatal("scale override not covered")
	}

	// A plan whose rules match the env changes the key; a plan that only
	// targets other environments does not — chaos edits elsewhere must
	// not invalidate this env's units.
	matching := &chaos.Plan{Rules: []chaos.Rule{{Kind: chaos.SpotReclaim, Env: "aws-*", Prob: 0.1}}}
	if UnitKey(2025, spec, "lammps", 5, matching) == base {
		t.Fatal("matching chaos slice not covered")
	}
	elsewhere := &chaos.Plan{Rules: []chaos.Rule{{Kind: chaos.SpotReclaim, Env: "azure-*", Prob: 0.1}}}
	if UnitKey(2025, spec, "lammps", 5, elsewhere) != base {
		t.Fatal("non-matching chaos slice leaked into the key")
	}
}

// TestRunErrRehydratesSentinels: every canonical run-error value decodes
// back to itself, so errors.Is answers identically on cold and warm
// datasets; unknown messages survive as plain errors.
func TestRunErrRehydratesSentinels(t *testing.T) {
	t.Parallel()
	for _, s := range runErrSentinels {
		if got := runErr(s.Error()); got != s {
			t.Fatalf("sentinel %v rehydrated as %v", s, got)
		}
	}
	if runErr("") != nil {
		t.Fatal("empty message must decode to nil")
	}
	other := runErr("sched: node went away")
	if other == nil || other.Error() != "sched: node went away" {
		t.Fatalf("unknown message mangled: %v", other)
	}
}

// TestStaleUnitArtifactFallsBack: an artifact that decodes cleanly but
// carries a draw schedule the assembly would not replay (e.g. written
// before a schedule-affecting change that escaped the key) must degrade
// to recompute — never reach unitPlan.take and fail the study.
func TestStaleUnitArtifactFallsBack(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	env, err := apps.EnvByKey("onprem-a-cpu")
	if err != nil {
		t.Fatal(err)
	}
	key := UnitKey(771005, env, "stream", Iterations, nil)
	// A well-formed artifact under the right key with a wrong schedule:
	// one record at a node count the environment never runs first.
	files, err := dataset.MarshalUnit(dataset.UnitMeta{
		Version: storeSchemaVersion, Key: key, Seed: 771005,
		Env: env.Key, App: "stream", Iterations: Iterations,
	}, []dataset.Record{{Env: env.Key, App: "stream", Nodes: 7, Iter: 0, FOM: 1, Unit: "GB/s"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Registry().Push("unit/"+key, dataset.UnitArtifactType, files, nil); err != nil {
		t.Fatal(err)
	}

	spec := &StudySpec{Seed: 771005, Envs: []string{"onprem-a-cpu"}, Apps: []string{"stream"}}
	st, _ := storedStudy(t, spec, rs)
	res, err := st.RunFull()
	if err != nil {
		t.Fatalf("stale unit artifact must fall back to compute, got: %v", err)
	}
	if st.UnitComputes() != 1 || rs.Stats().CorruptFallbacks == 0 {
		t.Fatalf("fallback not taken: computes=%d stats=%+v", st.UnitComputes(), rs.Stats())
	}
	// And the dataset matches a store-free run.
	stPlain, _ := storedStudy(t, spec, nil)
	resPlain, err := stPlain.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if goldenSnapshot(res) != goldenSnapshot(resPlain) {
		t.Fatal("fallback dataset drifted")
	}
}

// TestStudyBundleMissingFileFallsBack: a bundle stripped of runs.jsonl
// must be a miss, not a silently empty dataset.
func TestStudyBundleMissingFileFallsBack(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	spec := &StudySpec{Seed: 771006, Envs: []string{"onprem-a-cpu"}, Apps: []string{"osu"}}
	st, r := storedStudy(t, spec, rs)
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SaveStudy(r, res); err != nil {
		t.Fatal(err)
	}
	// Re-push the bundle without runs.jsonl under the same tag.
	files, err := rs.Registry().Pull("study/" + r.Hash())
	if err != nil {
		t.Fatal(err)
	}
	delete(files, "runs.jsonl")
	if _, err := rs.Registry().Push("study/"+r.Hash(), dataset.StudyBundleType, files, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.LoadStudy(r); ok {
		t.Fatal("bundle without runs.jsonl was served as a hit")
	}
	if rs.Stats().CorruptFallbacks == 0 {
		t.Fatal("stripped bundle not accounted as corrupt")
	}
}

// TestResultStoreGCReclaimsSupersededBundles: after a bundle is
// re-pushed under the same tag (the recompute-overwrite path), GC
// reclaims the superseded blobs while every live study and unit
// artifact keeps loading.
func TestResultStoreGCReclaimsSupersededBundles(t *testing.T) {
	t.Parallel()
	rs, _ := quietStore(t)
	spec := &StudySpec{Seed: 771007, Envs: []string{"onprem-a-cpu"}, Apps: []string{"stream", "osu"}}
	st, r := storedStudy(t, spec, rs)
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SaveStudy(r, res); err != nil {
		t.Fatal(err)
	}
	if removed, err := rs.GC(); err != nil || removed != 0 {
		t.Fatalf("fresh store gc: removed %d, err %v", removed, err)
	}
	// Supersede the bundle: same tag, different (stripped-meta) content.
	files, err := rs.Registry().Pull("study/" + r.Hash())
	if err != nil {
		t.Fatal(err)
	}
	files["meter.jsonl"] = append(files["meter.jsonl"], '\n')
	if _, err := rs.Registry().Push("study/"+r.Hash(), dataset.StudyBundleType, files, nil); err != nil {
		t.Fatal(err)
	}
	removed, err := rs.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("superseded bundle blobs were not reclaimed")
	}
	if _, ok := rs.LoadStudy(r); !ok {
		t.Fatal("gc broke the live study bundle")
	}
}

// TestParallelCodecArtifactsSha256Identical pins the serialization
// rework at the artifact level: bundle files encode concurrently,
// units encode/decode as independent pool tasks at any granularity, and
// none of that may move a single byte — every stored artifact (the
// study bundle and each unit artifact) must hash identically across
// worker counts 1, 4, and 32. The dataset-level sweep above proves the
// decoded views agree; this proves the stored bytes themselves do.
func TestParallelCodecArtifactsSha256Identical(t *testing.T) {
	t.Parallel()
	artifactSums := func(rs *ResultStore) map[string]string {
		sums := make(map[string]string)
		for _, tag := range rs.Registry().Tags() {
			files, err := rs.Registry().Pull(tag)
			if err != nil {
				t.Fatalf("pull %s: %v", tag, err)
			}
			names := make([]string, 0, len(files))
			for n := range files {
				names = append(names, n)
			}
			sort.Strings(names)
			h := sha256.New()
			for _, n := range names {
				fmt.Fprintf(h, "%s %d\n", n, len(files[n]))
				h.Write(files[n])
			}
			sums[tag] = fmt.Sprintf("%x", h.Sum(nil))
		}
		return sums
	}

	var golden map[string]string
	goldenWorkers := 0
	for _, w := range []int{1, 4, 32} {
		spec := &StudySpec{Seed: 2025, Workers: w}
		rs, _ := quietStore(t)
		st, r := storedStudy(t, spec, rs)
		res, err := st.RunFull()
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.SaveStudy(r, res); err != nil {
			t.Fatal(err)
		}
		sums := artifactSums(rs)
		if len(sums) < 2 {
			t.Fatalf("workers=%d: only %d artifacts stored; expected a study bundle plus units", w, len(sums))
		}
		if golden == nil {
			golden, goldenWorkers = sums, w
			continue
		}
		if len(sums) != len(golden) {
			t.Fatalf("workers=%d stored %d artifacts, workers=%d stored %d", w, len(sums), goldenWorkers, len(golden))
		}
		for tag, sum := range sums {
			if golden[tag] != sum {
				t.Errorf("workers=%d: artifact %s sha256 %s != workers=%d's %s", w, tag, sum, goldenWorkers, golden[tag])
			}
		}
	}
}
