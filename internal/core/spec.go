package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/chaos"
)

// DefaultSeed is the study's published seed: the seed-2025 dataset is the
// golden reproduction every regression test pins.
const DefaultSeed = 2025

// Granularity selects the executor's work-partitioning unit. It is an
// execution knob like Options.Workers: the dataset is byte-identical for
// every granularity, only the shape of the parallelism changes.
type Granularity string

const (
	// GranularityEnv partitions the study into one unit per environment —
	// the classic shard. Parallelism is capped at the environment count.
	GranularityEnv Granularity = "env"
	// GranularityEnvApp additionally splits every environment's model
	// evaluations into one unit per (environment, application) pair. The
	// units precompute the per-run model and hookup draws from their
	// private "core/run/<env>/<app>" streams; the environment stage then
	// replays the lifecycle (provisioning, scheduling, chaos, audits)
	// consuming those draws in canonical order. With 13 environments and
	// 11 applications that is >140 units, so the pool keeps scaling past
	// 13 workers.
	GranularityEnvApp Granularity = "env-app"
)

// ParseGranularity parses a granularity name ("" means GranularityEnv).
func ParseGranularity(s string) (Granularity, error) {
	switch s {
	case "", string(GranularityEnv):
		return GranularityEnv, nil
	case string(GranularityEnvApp):
		return GranularityEnvApp, nil
	default:
		return "", fmt.Errorf("core: unknown granularity %q (want %q or %q)",
			s, GranularityEnv, GranularityEnvApp)
	}
}

// StudySpec is the declarative description of what a study runs: which
// environments, which applications, at which cluster sizes, how many
// iterations, under which fault plan — plus the execution policy (worker
// count, partitioning granularity) that does not affect the dataset. It
// replaces the hardcoded 13×11×4×5 matrix as the single source of truth:
// the default spec reproduces the paper's study exactly, and every other
// scenario is a different spec, not a code change.
//
// Specs are built programmatically or parsed from a line-oriented spec
// file (see ParseSpec). The zero value is normalized to the full default
// study at seed 0.
type StudySpec struct {
	// Seed is the root simulation seed every named stream derives from.
	Seed uint64
	// Envs selects environments from the study matrix: exact keys
	// ("aws-eks-cpu"), prefix globs ("azure-*"), or "*" for the whole
	// matrix. Empty means "*". Matrix order is preserved regardless of
	// pattern order.
	Envs []string
	// Apps selects applications by model name, or "*" for all eleven.
	// Empty means "*". The paper's §2.8 order is preserved.
	Apps []string
	// Scales, when non-empty, replaces every selected environment's
	// cluster sizes. Empty keeps the per-environment defaults.
	Scales []int
	// Iterations is the per-scale repeat count; 0 means the study default
	// (Iterations == 5).
	Iterations int
	// Chaos references a fault-injection plan: "" (unset) or "none"
	// (explicitly clean) for a fault-free study, "default" for the
	// built-in scenario, anything else is read as a chaos plan file path
	// (resolved when the spec is resolved). "" and "none" resolve and
	// hash identically; they differ only for tooling that fills an unset
	// reference with its own default (internal/cli), which an explicit
	// "none" blocks.
	Chaos string
	// Workers bounds concurrent work units; 0 means runtime.NumCPU().
	// Execution policy only — never part of the spec hash.
	Workers int
	// Granularity selects the work-partitioning unit ("" means env).
	// Execution policy only — never part of the spec hash.
	Granularity Granularity
}

// DefaultSpec returns the paper's full study at the given seed: every
// environment, every application, default scales, five iterations, no
// chaos.
func DefaultSpec(seed uint64) *StudySpec {
	s := &StudySpec{Seed: seed}
	s.normalize()
	return s
}

// normalize fills defaults into zero-valued fields. Seed is left alone —
// a programmatic zero seed is legitimate (spec *files* default a missing
// seed line to DefaultSeed in ParseSpec) — and Chaos keeps its spelling
// ("" unset vs "none" explicit; see the field doc).
func (s *StudySpec) normalize() {
	if len(s.Envs) == 0 {
		s.Envs = []string{"*"}
	}
	if len(s.Apps) == 0 {
		s.Apps = []string{"*"}
	}
	if s.Iterations == 0 {
		s.Iterations = Iterations
	}
	if s.Workers < 0 {
		s.Workers = 0 // the executor treats both as "all CPUs"
	}
	if s.Granularity == "" {
		s.Granularity = GranularityEnv
	}
}

// validate rejects specs that cannot be resolved deterministically.
func (s *StudySpec) validate() error {
	if s.Iterations < 1 || s.Iterations > 1000 {
		return fmt.Errorf("core: spec iterations %d outside [1, 1000]", s.Iterations)
	}
	if s.Workers > 1<<16 {
		return fmt.Errorf("core: spec workers %d above 65536", s.Workers)
	}
	if _, err := ParseGranularity(string(s.Granularity)); err != nil {
		return err
	}
	if len(s.Envs) > 256 || len(s.Apps) > 256 || len(s.Scales) > 64 {
		return fmt.Errorf("core: spec selector list too long")
	}
	for _, lst := range [][]string{s.Envs, s.Apps} {
		for _, tok := range lst {
			if tok == "" || strings.ContainsAny(tok, " \t\n#") {
				return fmt.Errorf("core: spec selector token %q contains whitespace or '#'", tok)
			}
		}
	}
	for i, n := range s.Scales {
		if n < 1 || n > 1<<20 {
			return fmt.Errorf("core: spec scale %d outside [1, 2^20]", n)
		}
		if i > 0 && n <= s.Scales[i-1] {
			return fmt.Errorf("core: spec scales must be strictly ascending, got %v", s.Scales)
		}
	}
	if strings.ContainsAny(s.Chaos, "\n#") {
		return fmt.Errorf("core: spec chaos reference %q contains newline or '#'", s.Chaos)
	}
	return nil
}

// String renders the spec in canonical spec-file syntax. For any
// normalized valid spec, ParseSpec(s.String()) reproduces s exactly.
func (s *StudySpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "envs %s\n", strings.Join(s.Envs, " "))
	fmt.Fprintf(&b, "apps %s\n", strings.Join(s.Apps, " "))
	if len(s.Scales) == 0 {
		b.WriteString("scales default\n")
	} else {
		nums := make([]string, len(s.Scales))
		for i, n := range s.Scales {
			nums[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(&b, "scales %s\n", strings.Join(nums, " "))
	}
	fmt.Fprintf(&b, "iterations %d\n", s.Iterations)
	if s.Chaos != "" {
		// An unset reference stays unset (no line) so the round trip is
		// exact and tooling defaults (internal/cli) can still fill it; an
		// explicit "none" is preserved and blocks them.
		fmt.Fprintf(&b, "chaos %s\n", s.Chaos)
	}
	fmt.Fprintf(&b, "workers %d\n", s.Workers)
	fmt.Fprintf(&b, "granularity %s\n", s.Granularity)
	return b.String()
}

// ParseSpec parses spec-file syntax: one directive per line,
//
//	<key> <value...>
//
// with '#' comments and blank lines ignored. Keys are seed, envs, apps,
// scales, iterations, chaos, workers, and granularity; all are optional
// (missing keys take the study defaults — a missing seed line means
// DefaultSeed) but none may repeat. Unknown keys, malformed values, and
// out-of-range values are errors. The parsed spec is normalized and
// validated.
func ParseSpec(src string) (*StudySpec, error) {
	s := &StudySpec{}
	seen := map[string]bool{}
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key, vals := fields[0], fields[1:]
		if seen[key] {
			return nil, fmt.Errorf("core: spec line %d: repeated key %q", lineNo+1, key)
		}
		seen[key] = true
		if len(vals) == 0 {
			return nil, fmt.Errorf("core: spec line %d: key %q has no value", lineNo+1, key)
		}
		single := func() (string, error) {
			if len(vals) != 1 {
				return "", fmt.Errorf("core: spec line %d: key %q wants one value, got %d", lineNo+1, key, len(vals))
			}
			return vals[0], nil
		}
		switch key {
		case "seed":
			v, err := single()
			if err != nil {
				return nil, err
			}
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: spec line %d: seed: %v", lineNo+1, err)
			}
			s.Seed = n
		case "envs":
			s.Envs = vals
		case "apps":
			s.Apps = vals
		case "scales":
			if len(vals) == 1 && vals[0] == "default" {
				break
			}
			for _, v := range vals {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("core: spec line %d: scales: %v", lineNo+1, err)
				}
				s.Scales = append(s.Scales, n)
			}
		case "iterations":
			v, err := single()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("core: spec line %d: iterations: %v", lineNo+1, err)
			}
			if n < 1 {
				// Explicit zero must not silently normalize to the default.
				return nil, fmt.Errorf("core: spec line %d: iterations %d outside [1, 1000]", lineNo+1, n)
			}
			s.Iterations = n
		case "chaos":
			v, err := single()
			if err != nil {
				return nil, err
			}
			s.Chaos = v
		case "workers":
			v, err := single()
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("core: spec line %d: workers: %v", lineNo+1, err)
			}
			s.Workers = n
		case "granularity":
			v, err := single()
			if err != nil {
				return nil, err
			}
			g, err := ParseGranularity(v)
			if err != nil {
				return nil, fmt.Errorf("core: spec line %d: %v", lineNo+1, err)
			}
			s.Granularity = g
		default:
			return nil, fmt.Errorf("core: spec line %d: unknown key %q", lineNo+1, key)
		}
	}
	if !seen["seed"] {
		// A seedless spec file means the published seed, not seed 0 — a
		// dataset that silently matches no golden artifact would be a trap.
		s.Seed = DefaultSeed
	}
	s.normalize()
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadSpec resolves a command-line -spec argument: "" or "default" yields
// the full default study at DefaultSeed; anything else is read as a spec
// file path.
func LoadSpec(arg string) (*StudySpec, error) {
	switch arg {
	case "", "default":
		return DefaultSpec(DefaultSeed), nil
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("core: reading spec: %w", err)
	}
	s, err := ParseSpec(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", arg, err)
	}
	return s, nil
}

// ResolvedSpec is a spec materialized against the study matrix: concrete
// environment rows (with any scale override applied), concrete models,
// and the loaded chaos plan.
type ResolvedSpec struct {
	Seed       uint64
	Envs       []apps.EnvSpec
	Models     []apps.Model
	Iterations int
	Plan       *chaos.Plan
}

// Resolve materializes the spec: environment patterns are matched against
// the study matrix (matrix order preserved), app names against the model
// list (§2.8 order preserved), the scale override is applied, and the
// chaos reference is loaded. A pattern or name that selects nothing is an
// error — a silent empty study hides typos.
func (s *StudySpec) Resolve() (*ResolvedSpec, error) {
	spec := *s // normalize a copy so Resolve is read-only on s
	spec.normalize()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	envs, err := apps.SelectEnvironments(spec.Envs)
	if err != nil {
		return nil, err
	}
	models, err := apps.SelectModels(spec.Apps)
	if err != nil {
		return nil, err
	}
	if len(spec.Scales) > 0 {
		for i := range envs {
			envs[i].Scales = append([]int(nil), spec.Scales...)
		}
	}
	plan, err := chaos.LoadPlan(spec.Chaos)
	if err != nil {
		return nil, err
	}
	return &ResolvedSpec{
		Seed:       spec.Seed,
		Envs:       envs,
		Models:     models,
		Iterations: spec.Iterations,
		Plan:       plan,
	}, nil
}

// Hash returns the canonical content hash of everything that determines
// the dataset: the seed, the resolved environment rows (keys and scales),
// the resolved model names, the iteration count, and the resolved chaos
// plan text (so two references to the same plan hash alike, and editing a
// plan file changes the hash). Execution policy — Workers, Granularity —
// is deliberately excluded: the dataset is invariant under it, so cache
// entries are shared across it.
func (s *StudySpec) Hash() (string, error) {
	r, err := s.Resolve()
	if err != nil {
		return "", err
	}
	return r.Hash(), nil
}

// Hash is the canonical content hash of the resolved spec (see
// StudySpec.Hash). Hashing the resolved form — not the spec's spelling —
// is what lets a materialized spec be hashed and executed from one
// resolution, with no window for a chaos plan file to change between
// computing the key and running the study.
func (r *ResolvedSpec) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", r.Seed)
	for _, e := range r.Envs {
		scales := make([]string, len(e.Scales))
		for i, n := range e.Scales {
			scales[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(&b, "env %s scales=%s\n", e.Key, strings.Join(scales, ","))
	}
	names := make([]string, len(r.Models))
	for i, m := range r.Models {
		names[i] = m.Name()
	}
	sort.Strings(names) // model order never affects per-app streams
	fmt.Fprintf(&b, "apps %s\n", strings.Join(names, ","))
	fmt.Fprintf(&b, "iterations %d\n", r.Iterations)
	fmt.Fprintf(&b, "chaos:\n%s", r.Plan.String())
	return fmt.Sprintf("%x", sha256.Sum256([]byte(b.String())))
}
