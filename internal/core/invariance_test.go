package core

import (
	"testing"

	"cloudhpc/internal/trace"
	"cloudhpc/internal/usability"
)

// TestTable3SeedInvariant verifies that the qualitative result of the
// study — the usability assessment — does not depend on the simulation
// seed. The quantitative FOMs jitter; the effort scores must not, because
// they rest on structural events (custom daemonsets, placement failures,
// container bases) and wide margins on the stochastic ones (stall
// pile-ups far above the scoring threshold).
func TestTable3SeedInvariant(t *testing.T) {
	type table map[string][4]usability.Effort
	snapshot := func(seed uint64) table {
		st, err := New(seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.RunFull()
		if err != nil {
			t.Fatal(err)
		}
		out := table{}
		for _, a := range res.Table3() {
			out[a.Env] = [4]usability.Effort{
				a.Scores[trace.Setup], a.Scores[trace.Development],
				a.Scores[trace.AppSetup], a.Scores[trace.Manual],
			}
		}
		return out
	}

	base := snapshot(2025)
	for _, seed := range []uint64{1, 31337, 987654321} {
		got := snapshot(seed)
		if len(got) != len(base) {
			t.Fatalf("seed %d: %d rows vs %d", seed, len(got), len(base))
		}
		for env, want := range base {
			if got[env] != want {
				t.Errorf("seed %d: %s scores %v, baseline %v — Table 3 must be seed-invariant",
					seed, env, got[env], want)
			}
		}
	}
}
