package core

import (
	"testing"

	"cloudhpc/internal/apps"
	"cloudhpc/internal/trace"
)

// pinnedIncident is one expected scripted narrative event.
type pinnedIncident struct {
	cat trace.Category
	sev trace.Severity
	msg string
}

// TestScriptedIncidentsPinned pins the narrative events per environment —
// the concrete §3.1 experiences the generic substrates cannot produce.
// The table is keyed by environment key and covers every provider ×
// orchestration combination in the matrix, so a refactor of the switch in
// ScriptedIncidents cannot silently drop, reorder, or reword the story.
func TestScriptedIncidentsPinned(t *testing.T) {
	t.Parallel()
	want := map[string][]pinnedIncident{
		// AWS ParallelCluster (Slurm on VMs): custom build.
		"aws-parallelcluster-cpu": {
			{trace.Setup, trace.Unexpected, "ParallelCluster required a custom build and multi-step configuration"},
		},
		"aws-parallelcluster-gpu": {
			{trace.Setup, trace.Unexpected, "ParallelCluster required a custom build and multi-step configuration"},
		},
		// AWS EKS (Flux on Kubernetes): eksctl bugs.
		"aws-eks-cpu": {
			{trace.Development, trace.Blocking, "eksctl bugs: erroneously created placement group and a missing cleanup step broke provisioning; custom build of the tool required"},
		},
		"aws-eks-gpu": {
			{trace.Development, trace.Blocking, "eksctl bugs: erroneously created placement group and a missing cleanup step broke provisioning; custom build of the tool required"},
		},
		// Azure CycleCloud (Slurm on VMs): deployment + container bases.
		"azure-cyclecloud-cpu": {
			{trace.Setup, trace.Blocking, "CycleCloud deployment took over a day; interfaces went out of sync with the Azure portal"},
			{trace.AppSetup, trace.Blocking, "Azure container bases (UCX, proprietary hpcx/hcoll/sharp) were challenging to build; best UCX transports found empirically"},
		},
		"azure-cyclecloud-gpu": {
			{trace.Setup, trace.Blocking, "CycleCloud deployment took over a day; interfaces went out of sync with the Azure portal"},
			{trace.AppSetup, trace.Blocking, "Azure container bases (UCX, proprietary hpcx/hcoll/sharp) were challenging to build; best UCX transports found empirically"},
		},
		// Azure AKS (Flux on Kubernetes): daemonset + container development.
		"azure-aks-cpu": {
			{trace.Setup, trace.Unexpected, "multiple stages of commands required to bring up clusters"},
			{trace.Development, trace.Blocking, "custom container base for proprietary software (hpcx, hcoll, sharp) and a custom InfiniBand daemonset had to be developed"},
			{trace.AppSetup, trace.Blocking, "Azure container bases were challenging to build; best performance needed OMPI_MCA_btl=^openib with UCX unified mode over ib"},
		},
		"azure-aks-gpu": {
			{trace.Setup, trace.Unexpected, "multiple stages of commands required to bring up clusters"},
			{trace.Development, trace.Blocking, "custom container base for proprietary software (hpcx, hcoll, sharp) and a custom InfiniBand daemonset had to be developed"},
			{trace.AppSetup, trace.Blocking, "Azure container bases were challenging to build; best performance needed OMPI_MCA_btl=^openib with UCX unified mode over ib"},
		},
		// Google Compute Engine (Flux on VMs): Cluster Toolkit friction.
		"google-computeengine-cpu": {
			{trace.Setup, trace.Unexpected, "could not customize configuration files for Cluster Toolkit"},
			{trace.Development, trace.Unexpected, "developed custom Terraform deployments for Flux Framework (GPU/Slurm issues with Cluster Toolkit)"},
		},
		"google-computeengine-gpu": {
			{trace.Setup, trace.Unexpected, "could not customize configuration files for Cluster Toolkit"},
			{trace.Development, trace.Unexpected, "developed custom Terraform deployments for Flux Framework (GPU/Slurm issues with Cluster Toolkit)"},
		},
		// Google GKE (Flux on Kubernetes): no scripted residue — the GKE
		// story is fully emergent from the substrates.
		"google-gke-cpu": nil,
		"google-gke-gpu": nil,
		// On-premises (Slurm cluster A, LSF cluster B): bare-metal builds
		// and bad-node monitoring.
		"onprem-a-cpu": {
			{trace.AppSetup, trace.Blocking, "bare-metal builds on the system via software modules and Spack; less control over the software environment"},
			{trace.Manual, trace.Unexpected, "jobs often errored and had to be monitored and debugged (bad nodes)"},
		},
		"onprem-b-gpu": {
			{trace.AppSetup, trace.Blocking, "bare-metal builds on the system via software modules and Spack; less control over the software environment"},
			{trace.Manual, trace.Unexpected, "jobs often errored and had to be monitored and debugged (bad nodes)"},
		},
	}

	envs, err := apps.StudyEnvironments()
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != len(want) {
		t.Fatalf("matrix has %d environments, table pins %d", len(envs), len(want))
	}
	for _, spec := range envs {
		expected, pinned := want[spec.Key]
		if !pinned {
			t.Errorf("%s: environment missing from the pinned table", spec.Key)
			continue
		}
		log := trace.NewLog()
		ScriptedIncidents(log, 0, spec)
		events := log.Events()
		if len(events) != len(expected) {
			t.Errorf("%s: %d scripted incidents, want %d", spec.Key, len(events), len(expected))
			continue
		}
		for i, e := range events {
			w := expected[i]
			if e.Category != w.cat || e.Severity != w.sev || e.Msg != w.msg {
				t.Errorf("%s: incident %d = (%s, %s, %q), want (%s, %s, %q)",
					spec.Key, i, e.Category, e.Severity, e.Msg, w.cat, w.sev, w.msg)
			}
			if e.Env != spec.Key {
				t.Errorf("%s: incident %d tagged %q", spec.Key, i, e.Env)
			}
		}
	}
}
