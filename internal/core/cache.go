package core

import "sync"

// The cached-dataset layer: one full-study execution per canonical spec
// hash, shared by every consumer that only needs a given spec's dataset
// (the root benchmark harness regenerating tables and figures,
// cmd/figures, cmd/report, cmd/trace, and the examples). The study takes
// a few hundred milliseconds; the artifacts derived from it take
// microseconds — without the cache every artifact would pay the study
// again.
//
// Keying by spec hash rather than by seed matters now that specs vary:
// two different specs at the same seed (an env subset vs the full
// matrix, a chaotic run vs a clean one) are different datasets and must
// not collide. The hash covers exactly the dataset-determining inputs —
// seed, resolved environments and scales, resolved models, iterations,
// resolved chaos plan text — and deliberately excludes the execution
// policy (Workers, Granularity), under which the dataset is invariant,
// so callers that differ only in policy share one entry.
//
// The map lock is held only for entry lookup; each entry runs its study
// under its own sync.Once, so concurrent calls for different specs
// execute in parallel while duplicate same-spec calls coalesce onto one
// run.
var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

type cacheEntry struct {
	once sync.Once
	res  *Results
	err  error
}

// CachedRunFull returns the default-spec study dataset for seed,
// executing it on first use and memoizing it for the life of the process.
// The returned Results are shared: treat them as read-only. Shorthand for
// CachedRunSpec(DefaultSpec(seed)).
func CachedRunFull(seed uint64) (*Results, error) {
	return CachedRunSpec(DefaultSpec(seed))
}

// CachedRunSpec returns the study dataset for a spec, executing it on
// first use and memoizing it under the spec's canonical hash for the life
// of the process. The returned Results are shared: treat them as
// read-only. Callers that need non-spec Options (pauses, test clusters,
// budget aborts) must build a Study and call RunFull themselves. The
// first caller's Workers/Granularity policy drives the one execution;
// since the dataset is policy-invariant, later callers observe no
// difference.
func CachedRunSpec(spec *StudySpec) (*Results, error) {
	// One resolution serves both the key and the execution, so the dataset
	// memoized under the hash is exactly the one that resolution described
	// (a chaos plan file edited between two resolutions could otherwise
	// cache a dataset under a stale key).
	r, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	key := r.Hash()
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()

	e.once.Do(func() {
		e.res, e.err = newStudy(r, spec).RunFull()
	})
	return e.res, e.err
}
