package core

import "sync"

// The cached-dataset layer: one full-study execution per seed, shared by
// every consumer that only needs the default-options dataset (the root
// benchmark harness regenerating tables and figures, cmd/figures,
// cmd/report, cmd/trace, and the examples). The study takes a few hundred
// milliseconds; the artifacts derived from it take microseconds — without
// the cache every artifact would pay the study again.
//
// The map lock is held only for entry lookup; each entry runs its study
// under its own sync.Once, so concurrent calls for different seeds execute
// in parallel while duplicate same-seed calls coalesce onto one run.
var (
	cacheMu sync.Mutex
	cache   = map[uint64]*cacheEntry{}
)

type cacheEntry struct {
	once sync.Once
	res  *Results
	err  error
}

// CachedRunFull returns the default-options study dataset for seed,
// executing it on first use and memoizing it for the life of the process.
// The returned Results are shared: treat them as read-only. Callers that
// need non-default Options must build a Study and call RunFull themselves.
func CachedRunFull(seed uint64) (*Results, error) {
	cacheMu.Lock()
	e, ok := cache[seed]
	if !ok {
		e = &cacheEntry{}
		cache[seed] = e
	}
	cacheMu.Unlock()

	e.once.Do(func() {
		st, err := New(seed)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = st.RunFull()
	})
	return e.res, e.err
}
