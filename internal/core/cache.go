package core

import "sync"

// The cached-dataset layer is a three-tier pipeline:
//
//	memory  → the process-wide map below, keyed by canonical spec hash
//	store   → the persistent ResultStore (when one is configured):
//	          whole-study bundles under "study/<hash>", and — during
//	          compute — per-(env, app) unit artifacts under
//	          "unit/<sub-hash>" for incremental reuse
//	compute → Study.RunFull
//
// Every consumer that only needs a given spec's dataset (the root
// benchmark harness, cmd/figures, cmd/report, cmd/trace, the examples)
// shares one execution per spec per process; with a store, one execution
// per spec per store *across* processes, and a spec that shares (env,
// app) units with a previously stored study recomputes only the units it
// doesn't share.
//
// Keying by spec hash rather than by seed matters now that specs vary:
// two different specs at the same seed (an env subset vs the full
// matrix, a chaotic run vs a clean one) are different datasets and must
// not collide. The hash covers exactly the dataset-determining inputs —
// seed, resolved environments and scales, resolved models, iterations,
// resolved chaos plan text — and deliberately excludes the execution
// policy (Workers, Granularity), under which the dataset is invariant,
// so callers that differ only in policy share one entry. The same
// invariance is what makes a store entry trustworthy: whatever policy
// computed it, a warm load is byte-identical.
//
// The map lock is held only for entry lookup; each entry resolves its
// dataset under its own sync.Once, so concurrent calls for different
// specs execute in parallel while duplicate same-spec calls coalesce
// onto one load-or-compute.
var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

type cacheEntry struct {
	once sync.Once
	res  *Results
	err  error
}

// FlushCachedRuns drops every memoized dataset from the in-process
// memory tier (the persistent store, if any, is untouched). It exists
// for benchmarks and tests that measure or exercise the store tier,
// which the memory tier would otherwise shadow; production callers never
// need it.
func FlushCachedRuns() {
	cacheMu.Lock()
	cache = map[string]*cacheEntry{}
	cacheMu.Unlock()
}

// CachedRunFull returns the default-spec study dataset for seed,
// executing it on first use and memoizing it for the life of the process.
// The returned Results are shared: treat them as read-only. Shorthand for
// CachedRunSpec(DefaultSpec(seed)).
func CachedRunFull(seed uint64) (*Results, error) {
	return CachedRunSpec(DefaultSpec(seed))
}

// CachedRunSpec returns the study dataset for a spec through the
// memory → store → compute tiers, using the process-default ResultStore
// (none means memory → compute). The returned Results are shared: treat
// them as read-only. Callers that need non-spec Options (pauses, test
// clusters, budget aborts) must build a Study and call RunFull
// themselves — such datasets depend on more than the spec and are never
// served from, or saved to, the study tier (their unit draws still are:
// units depend only on spec-sliced inputs). The first caller's
// Workers/Granularity policy drives the one execution; since the dataset
// is policy-invariant, later callers observe no difference.
func CachedRunSpec(spec *StudySpec) (*Results, error) {
	return cachedRunSpecIn(DefaultResultStore(), spec)
}

// cachedRunSpecIn is CachedRunSpec against an explicit store (nil
// disables the persistent tier). One resolution serves the key, the
// store lookup, and the execution, so the dataset memoized under the
// hash is exactly the one that resolution described (a chaos plan file
// edited between two resolutions could otherwise cache a dataset under a
// stale key).
func cachedRunSpecIn(rs *ResultStore, spec *StudySpec) (*Results, error) {
	r, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	key := r.Hash()
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()

	e.once.Do(func() {
		if rs != nil {
			if res, ok := rs.LoadStudy(r); ok {
				e.res = res
				return
			}
		}
		st := newStudy(r, spec)
		st.Store = rs
		e.res, e.err = st.RunFull()
		if e.err == nil && rs != nil {
			if err := rs.SaveStudy(r, e.res); err != nil {
				rs.logf("core: result store: saving study/%s failed: %v", key, err)
			}
		}
	})
	return e.res, e.err
}
