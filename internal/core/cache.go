package core

import (
	"context"
	"sync"
)

// The cached-dataset layer is a three-tier pipeline driven by Runner:
//
//	memory  → the process-wide map below, keyed by canonical spec hash
//	store   → the persistent ResultStore (when one is configured):
//	          whole-study bundles under "study/<hash>", and — during
//	          compute — per-(env, app) unit artifacts under
//	          "unit/<sub-hash>" for incremental reuse
//	compute → one context-aware study execution (Study.runSession)
//
// Every consumer that only needs a given spec's dataset (the root
// benchmark harness, cmd/figures, cmd/report, cmd/trace, the examples)
// shares one execution per spec per process; with a store, one execution
// per spec per store *across* processes, and a spec that shares (env,
// app) units with a previously stored study recomputes only the units it
// doesn't share.
//
// Keying by spec hash rather than by seed matters now that specs vary:
// two different specs at the same seed (an env subset vs the full
// matrix, a chaotic run vs a clean one) are different datasets and must
// not collide. The hash covers exactly the dataset-determining inputs —
// seed, resolved environments and scales, resolved models, iterations,
// resolved chaos plan text — and deliberately excludes the execution
// policy (Workers, Granularity), under which the dataset is invariant,
// so callers that differ only in policy share one entry. The same
// invariance is what makes a store entry trustworthy: whatever policy
// computed it, a warm load is byte-identical.
//
// The map lock is held only for entry lookup; each entry is resolved by
// exactly one leading Runner session (single-flight), so concurrent
// calls for different specs execute in parallel while duplicate
// same-spec calls coalesce onto one load-or-compute and all receive the
// shared result — or, if the leader's context is cancelled, the shared
// context error (which is then dropped from the map, never memoized).
var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

// cacheEntry is one single-flight memoization slot: the leader fills res
// and err, then closes done; followers wait on done (or their own
// context) and read the shared outcome.
type cacheEntry struct {
	done chan struct{}
	res  *Results
	err  error
}

// FlushCachedRuns drops every memoized dataset from the in-process
// memory tier (the persistent store, if any, is untouched). It exists
// for benchmarks and tests that measure or exercise the store tier,
// which the memory tier would otherwise shadow; production callers never
// need it. In-flight executions are unaffected: their entries are
// dropped from the map, but callers already attached still receive the
// shared outcome.
func FlushCachedRuns() {
	cacheMu.Lock()
	cache = map[string]*cacheEntry{}
	cacheMu.Unlock()
}

// CachedRunFull returns the default-spec study dataset for seed,
// executing it on first use and memoizing it for the life of the process.
// The returned Results are shared: treat them as read-only. Shorthand for
// CachedRunSpec(DefaultSpec(seed)).
func CachedRunFull(seed uint64) (*Results, error) {
	return CachedRunSpec(DefaultSpec(seed))
}

// CachedRunSpec returns the study dataset for a spec through the
// memory → store → compute tiers, using the process-default ResultStore
// (none means memory → compute). The returned Results are shared: treat
// them as read-only. It is a thin compatibility wrapper over Runner.Run
// with a background context; callers that want cancellation, progress
// events, or an injected logger use a Runner directly. Callers that need
// non-spec Options (pauses, test clusters, budget aborts) set
// Runner.Configure (or build a Study and call Run/RunFull themselves) —
// such datasets depend on more than the spec and are never served from,
// or saved to, the study tier (their unit draws still are: units depend
// only on spec-sliced inputs). The first caller's Workers/Granularity
// policy drives the one execution; since the dataset is policy-invariant,
// later callers observe no difference.
func CachedRunSpec(spec *StudySpec) (*Results, error) {
	return (&Runner{}).Run(context.Background(), spec)
}

// cachedRunSpecIn is CachedRunSpec against an explicit store (nil
// disables the persistent tier entirely, ignoring any process default).
func cachedRunSpecIn(rs *ResultStore, spec *StudySpec) (*Results, error) {
	return (&Runner{Store: rs, disableStore: rs == nil}).Run(context.Background(), spec)
}
