package core

import (
	"context"
	"errors"
)

// ErrStudyConsumed reports a second RunFull/Run on the same Study.
// Studies are one-shot by construction — a run merges the shards into
// the study-level substrates, so a rerun would stitch a second timeline
// onto an already-merged one and silently corrupt the dataset. The old
// API did exactly that; the redesigned surface makes reuse a defined
// error instead. Build a fresh Study, or use a Runner, for another run.
var ErrStudyConsumed = errors.New("core: study already consumed (RunFull/Run are one-shot; build a new Study or use a Runner)")

// Runner is the execution surface of the result pipeline: a handle that
// turns StudySpecs into datasets through the memory → store → compute
// tiers, with context cancellation, single-flight deduplication, and —
// via Start — an observable Session per execution. The zero value is
// ready to use and equivalent to the process defaults (the -store flag's
// result store, warnings to the store's own logger).
//
// Run and Start are safe for concurrent use. Concurrent calls for the
// same resolved spec share one execution: one caller leads (computes or
// loads), the rest follow and receive the shared Results — or, if the
// leader's context is cancelled, the shared context error. A
// cancellation error is never memoized: the next caller recomputes.
type Runner struct {
	// Store is the persistent result store consulted and fed by this
	// runner's executions; nil means the process default
	// (DefaultResultStore — the -store flag). Tests inside the package
	// can force the persistent tier off with disableStore.
	Store *ResultStore
	// Logf, when non-nil, receives the store/persist warnings (corrupt
	// artifacts, failed saves, warm-hit notices) raised by this runner's
	// executions instead of the store's own logger — the injection point
	// for service embedders that must capture them. Nil keeps the default
	// (ResultStore.Logf, which itself defaults to log.Printf).
	Logf func(format string, args ...any)
	// Configure, when non-nil, adjusts each study's Options before
	// execution — the hook for the non-spec knobs (pauses, test clusters,
	// budget aborts). Such datasets depend on more than the spec, so a
	// configured runner bypasses the memory and study-store tiers
	// entirely (unit draws still flow through the unit tier: units
	// depend only on spec-sliced inputs). The one exception is the
	// observation-only Options.ReplayEvents: a Configure that changes
	// nothing else keeps every cached tier, because the dataset does not
	// depend on how many events a session retains for replay.
	Configure func(*Options)
	// Fleet, when non-nil, is the work-distribution delegate attached to
	// every study this runner executes (effective only when a result
	// store is attached too — the store is the unit-artifact exchange).
	// The study-store and memory tiers still run first: only units that
	// miss both are offered to the fleet, and any fleet refusal falls
	// back to local compute.
	Fleet FleetDelegate

	// disableStore forces the persistent tier off even when a process
	// default store is installed (test hook; see cachedRunSpecIn).
	disableStore bool
}

// resultStore resolves the runner's persistent tier.
func (r *Runner) resultStore() *ResultStore {
	if r.disableStore {
		return nil
	}
	if r.Store != nil {
		return r.Store
	}
	return DefaultResultStore()
}

// Run resolves and executes spec through the cache tiers and returns the
// dataset — the context-aware, single-flight successor of the one-shot
// Study.RunFull. The returned Results are shared: treat them as
// read-only. On cancellation Run returns promptly with ctx's error; work
// already dispatched drains cleanly and the persistent store is left
// consistent (every artifact write is atomic).
func (r *Runner) Run(ctx context.Context, spec *StudySpec) (*Results, error) {
	sess, err := r.Start(ctx, spec)
	if err != nil {
		return nil, err
	}
	return sess.Wait()
}

// Start begins executing spec and returns its Session without waiting:
// subscribe for events, poll Progress, Cancel, and Wait for the dataset.
// Spec resolution errors surface here, before any execution.
//
// Concurrent Start calls for the same resolved spec share one
// execution. The leading session observes it fully (env, unit, incident
// events); following sessions observe it at study granularity only
// (started, then cached/failed) — their Wait returns the shared result
// either way. Cancelling the leading session cancels the shared
// execution; cancelling a follower detaches only that follower.
func (r *Runner) Start(ctx context.Context, spec *StudySpec) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rspec, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	sess := newSession(cancel)

	if r.Configure != nil {
		// Apply the hook to a probe copy of the options the study would
		// start with, so observation-only configuration (ReplayEvents)
		// can be told apart from dataset-affecting configuration.
		base := Options{Workers: spec.Workers, Granularity: spec.Granularity, Chaos: rspec.Plan}
		opts := base
		r.Configure(&opts)
		sess.setReplayBound(opts.ReplayEvents)
		if !observationOnlyConfigure(base, opts) {
			// Non-spec options: the dataset depends on more than the
			// spec, so it is never served from, or memoized into, the
			// study tiers.
			st := newStudy(rspec, spec)
			st.Opts = opts
			st.Store = r.resultStore()
			st.Logf = r.Logf
			st.Fleet = r.Fleet
			go func() {
				defer cancel()
				res, err := st.runSession(runCtx, sess)
				sess.finish(res, err)
			}()
			return sess, nil
		}
	}

	key := rspec.Hash()
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		cache[key] = e
	}
	cacheMu.Unlock()
	if ok {
		go sess.follow(runCtx, cancel, e)
		return sess, nil
	}
	go r.lead(runCtx, cancel, sess, rspec, spec, key, e)
	return sess, nil
}

// observationOnlyConfigure reports whether a Configure hook changed
// nothing but observation knobs (ReplayEvents): such runs still execute
// exactly the spec's dataset, so they keep the memory and study-store
// tiers — a service embedder can widen every session's replay window
// without giving up single-flight or warm loads.
func observationOnlyConfigure(base, configured Options) bool {
	base.ReplayEvents, configured.ReplayEvents = 0, 0
	return base == configured
}

// lead runs the single-flight execution for a cache entry: store tier
// first, compute otherwise, then publishes the outcome to the entry (for
// followers) and the session. A context error is broadcast but never
// memoized — the entry is dropped so the next caller recomputes —
// whereas a study error is memoized exactly as the old cached layer did.
func (r *Runner) lead(ctx context.Context, cancel context.CancelFunc, sess *Session, rspec *ResolvedSpec, spec *StudySpec, key string, e *cacheEntry) {
	defer cancel()
	rs := r.resultStore()
	var res *Results
	var err error
	if rs != nil {
		if warm, ok := rs.loadStudyVia(rspec, r.Logf); ok {
			res = warm
			sess.emit(Event{Kind: EventStudyCached, Tier: "store"})
		}
	}
	if res == nil {
		st := newStudy(rspec, spec)
		st.Store = rs
		st.Logf = r.Logf
		st.Fleet = r.Fleet
		res, err = st.runSession(ctx, sess)
		if err == nil && rs != nil {
			if serr := rs.SaveStudy(rspec, res); serr != nil {
				rs.logvia(r.Logf, "core: result store: saving study/%s failed: %v", key, serr)
			}
		}
	}
	if err != nil && errors.Is(err, ctx.Err()) {
		// Cancelled: share the error with current followers, but do not
		// poison the memoization for future callers.
		cacheMu.Lock()
		if cache[key] == e {
			delete(cache, key)
		}
		cacheMu.Unlock()
	}
	e.res, e.err = res, err
	close(e.done)
	sess.finish(res, err)
}

// follow attaches a session to an in-flight (or already-complete)
// single-flight entry: study-granularity events only, shared outcome.
// The follower's own context can detach it early; the shared execution
// keeps running for whoever leads it.
func (s *Session) follow(ctx context.Context, cancel context.CancelFunc, e *cacheEntry) {
	defer cancel()
	select {
	case <-e.done:
	default:
		// In flight: this session observes the study from the outside.
		s.emit(Event{Kind: EventStudyStarted})
		select {
		case <-e.done:
		case <-ctx.Done():
			s.finish(nil, ctx.Err())
			return
		}
	}
	if e.err == nil && e.res != nil {
		s.emit(Event{Kind: EventStudyCached, Tier: "memory"})
	}
	s.finish(e.res, e.err)
}
