package core

import (
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/cloud"
	"cloudhpc/internal/trace"
)

func TestDefaultOptionsMatchStudy(t *testing.T) {
	// The zero Options must not change the study: Table 3 assertions in
	// study_test.go run with defaults; here just confirm the shakeout and
	// pause leave no trace when off.
	st, err := New(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Log.Events() {
		if strings.Contains(e.Msg, "test cluster") || strings.Contains(e.Msg, "paused") {
			t.Fatalf("default options produced option events: %q", e.Msg)
		}
	}
}

func TestTestClustersShakeout(t *testing.T) {
	st, err := New(12)
	if err != nil {
		t.Fatal(err)
	}
	st.Opts.TestClusters = true
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	shakeouts := res.Log.Filter(func(e trace.Event) bool {
		return strings.Contains(e.Msg, "test cluster shakeout")
	})
	// 11 cloud environments get a shakeout (on-prem has no provisioning).
	if len(shakeouts) < 9 {
		t.Fatalf("shakeouts = %d, want one per deployable cloud env", len(shakeouts))
	}
}

func TestPauseBetweenScalesShrinksBlindSpot(t *testing.T) {
	run := func(pause time.Duration) float64 {
		st, err := New(13)
		if err != nil {
			t.Fatal(err)
		}
		st.Opts.PauseBetweenScales = pause
		// Azure environments run last in the matrix, so their freshest
		// charges are the blind spot visible at study end.
		if _, err := st.RunFull(); err != nil {
			t.Fatal(err)
		}
		return st.Meter.UnreportedSpend(cloud.Azure)
	}
	without := run(0)
	with := run(26 * time.Hour) // beyond every provider's reporting lag
	if with >= without {
		t.Fatalf("pausing should shrink the unreported blind spot: $%.2f vs $%.2f", with, without)
	}
	if with != 0 {
		t.Fatalf("a pause beyond the lag should clear the blind spot, $%.2f left", with)
	}
}

func TestAbortOverBudgetStopsEnvironment(t *testing.T) {
	st, err := New(14)
	if err != nil {
		t.Fatal(err)
	}
	st.Opts.AbortOverBudget = true
	st.Meter.SetBudget(cloud.Google, 50) // absurdly tight
	res, err := st.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	aborts := res.Log.Filter(func(e trace.Event) bool {
		return strings.Contains(e.Msg, "aborting") && strings.Contains(e.Msg, "google")
	})
	if len(aborts) == 0 {
		t.Fatalf("tight budget should abort Google environments")
	}
	// Google runs are cut short; other providers unaffected.
	google := len(res.RunsFor("google-gke-cpu", ""))
	full := len(res.RunsFor("aws-eks-cpu", ""))
	if google >= full {
		t.Fatalf("aborted env ran %d records vs %d on an unaborted one", google, full)
	}
}
