package chaos

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	t.Parallel()
	p, err := ParsePlan(DefaultPlanText)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("default plan has %d rules, want 5", len(p.Rules))
	}
	// String() emits parseable syntax that reproduces the plan exactly.
	again, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parsing String() output: %v", err)
	}
	if len(again.Rules) != len(p.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(again.Rules), len(p.Rules))
	}
	for i := range p.Rules {
		if p.Rules[i] != again.Rules[i] {
			t.Errorf("rule %d round-trip mismatch:\n  in:  %+v\n  out: %+v", i, p.Rules[i], again.Rules[i])
		}
	}
}

func TestParsePlanDefaults(t *testing.T) {
	t.Parallel()
	p, err := ParsePlan("spot-reclaim prob=0.5\nstockout prob=0.1\nquota-revoke prob=0.1\nnet-degrade prob=0.1\npull-fail prob=0.1\n")
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[Kind]Rule{}
	for _, r := range p.Rules {
		byKind[r.Kind] = r
	}
	if r := byKind[SpotReclaim]; r.Frac != 0.5 || r.DropOnReclaim || r.Env != "*" {
		t.Errorf("spot-reclaim defaults wrong: %+v", r)
	}
	if r := byKind[Stockout]; r.Retries != 3 || r.Backoff != 10*time.Minute {
		t.Errorf("stockout defaults wrong: %+v", r)
	}
	if r := byKind[QuotaRevoke]; r.Nodes != 8 || r.Regrant != time.Hour {
		t.Errorf("quota-revoke defaults wrong: %+v", r)
	}
	if r := byKind[NetDegrade]; r.Latency != 2.0 || r.Bandwidth != 1.0 {
		t.Errorf("net-degrade defaults wrong: %+v", r)
	}
	if r := byKind[PullFail]; r.Retries != 2 || r.Backoff != 30*time.Second {
		t.Errorf("pull-fail defaults wrong: %+v", r)
	}
}

func TestParsePlanRejects(t *testing.T) {
	t.Parallel()
	for _, src := range []string{
		"",                                  // no rules
		"# only a comment\n",                // no rules
		"meteor-strike prob=0.5",            // unknown kind
		"spot-reclaim prob=2",               // prob out of range
		"spot-reclaim prob=-0.1",            // negative prob
		"spot-reclaim prob=NaN",             // NaN never compares true
		"spot-reclaim prob=0.5 frac=1.5",    // frac out of range
		"spot-reclaim prob=0.5 prob=0.6",    // repeated key
		"spot-reclaim prob",                 // malformed field
		"spot-reclaim color=red",            // unknown key
		"stockout prob=0.1 retries=99",      // retries out of range
		"stockout prob=0.1 backoff=-5m",     // negative backoff
		"stockout prob=0.1 backoff=1y",      // unparseable duration
		"quota-revoke prob=0.1 nodes=-4",    // negative nodes
		"net-degrade prob=0.1 latency=0.5",  // speedup is not degradation
		"net-degrade prob=0.1 latency=1e9",  // absurd factor
		"pull-fail prob=0.1 retries=banana", // unparseable int
	} {
		if _, err := ParsePlan(src); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", src)
		}
	}
}

func TestParsePlanCommentsAndBlanks(t *testing.T) {
	t.Parallel()
	p, err := ParsePlan("# header\n\n  \nspot-reclaim prob=0.1 # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || p.Rules[0].Kind != SpotReclaim {
		t.Fatalf("unexpected rules: %+v", p.Rules)
	}
}

func TestRuleMatches(t *testing.T) {
	t.Parallel()
	cases := []struct {
		pattern, env string
		want         bool
	}{
		{"*", "aws-eks-cpu", true},
		{"aws-*", "aws-eks-cpu", true},
		{"aws-*", "azure-aks-cpu", false},
		{"aws-eks-cpu", "aws-eks-cpu", true},
		{"aws-eks-cpu", "aws-eks-gpu", false},
		{"azure-*", "azure-cyclecloud-gpu", true},
	}
	for _, c := range cases {
		r := Rule{Env: c.pattern}
		if got := r.Matches(c.env); got != c.want {
			t.Errorf("Matches(%q, %q) = %v, want %v", c.pattern, c.env, got, c.want)
		}
	}
}

func TestRulesForFirstMatchWins(t *testing.T) {
	t.Parallel()
	p, err := ParsePlan("net-degrade env=azure-* prob=0.9 latency=10\nnet-degrade env=* prob=0.1 latency=2\n")
	if err != nil {
		t.Fatal(err)
	}
	rules := p.RulesFor("azure-aks-cpu")
	if len(rules) != 1 || rules[0].Latency != 10 {
		t.Fatalf("specific rule should win: %+v", rules)
	}
	rules = p.RulesFor("aws-eks-cpu")
	if len(rules) != 1 || rules[0].Latency != 2 {
		t.Fatalf("catch-all should apply elsewhere: %+v", rules)
	}
}

func TestLoadPlan(t *testing.T) {
	t.Parallel()
	if p, err := LoadPlan(""); err != nil || p != nil {
		t.Fatalf(`LoadPlan("") = %v, %v; want nil plan`, p, err)
	}
	if p, err := LoadPlan("default"); err != nil || p.Empty() {
		t.Fatalf(`LoadPlan("default") = %v, %v; want the built-in plan`, p, err)
	}
	if _, err := LoadPlan("/does/not/exist.chaos"); err == nil {
		t.Fatal("LoadPlan of a missing file should fail")
	}
	f := t.TempDir() + "/plan.chaos"
	if err := os.WriteFile(f, []byte("pull-fail prob=0.3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || p.Rules[0].Kind != PullFail {
		t.Fatalf("unexpected plan from file: %+v", p.Rules)
	}
}

func TestPlanTargets(t *testing.T) {
	t.Parallel()
	p := DefaultPlan()
	got := p.Targets("azure-aks-cpu")
	want := []Kind{PullFail, QuotaRevoke, SpotReclaim, Stockout}
	if len(got) != len(want) {
		t.Fatalf("Targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets = %v, want %v", got, want)
		}
	}
	if ts := p.Targets("google-gke-gpu"); len(ts) != 4 || !containsKind(ts, NetDegrade) {
		t.Fatalf("google targets = %v, want net-degrade among 4", ts)
	}
}

func containsKind(ks []Kind, k Kind) bool {
	for _, v := range ks {
		if v == k {
			return true
		}
	}
	return false
}

func TestPlanEmpty(t *testing.T) {
	t.Parallel()
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if (&Plan{}).Empty() != true {
		t.Fatal("zero plan should be empty")
	}
	if DefaultPlan().Empty() {
		t.Fatal("default plan should not be empty")
	}
	if strings.TrimSpace(p.String()) != "" {
		t.Fatal("nil plan should render empty")
	}
}
