package chaos

import (
	"strings"
	"testing"
)

// FuzzPlanParse hardens the scenario-config parser: it must never panic,
// and any plan it accepts must be normalized (in-range probabilities,
// positive backoffs where relevant) and round-trip exactly through
// String() — the property the golden chaos datasets depend on.
func FuzzPlanParse(f *testing.F) {
	f.Add(DefaultPlanText)
	f.Add("spot-reclaim prob=0.5\n")
	f.Add("stockout env=aws-* prob=0.1 retries=3 backoff=10m\n")
	f.Add("quota-revoke env=azure-* prob=0.1 nodes=16 regrant=2h\n")
	f.Add("net-degrade prob=0.2 latency=2.5 bandwidth=1.15\n")
	f.Add("pull-fail prob=1 retries=2 backoff=45s\n")
	f.Add("# comment only\n")
	f.Add("spot-reclaim prob=NaN\n")
	f.Add("spot-reclaim prob=1e308\n")
	f.Add("stockout prob=0.1 backoff=9223372036854775807ns\n")
	f.Add("pull-fail prob=0.1 retries=-1\n")
	f.Add("net-degrade prob=0.1 latency=+Inf\n")
	f.Add("spot-reclaim env=* prob=0.1 frac=0.999999999\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlan(src)
		if err != nil {
			return
		}
		if len(p.Rules) == 0 {
			t.Fatal("accepted a plan with no rules")
		}
		for _, r := range p.Rules {
			if !validKind(r.Kind) {
				t.Fatalf("accepted unknown kind %q", r.Kind)
			}
			if !(r.Prob >= 0 && r.Prob <= 1) {
				t.Fatalf("accepted out-of-range prob %v", r.Prob)
			}
			if err := r.validate(); err != nil {
				t.Fatalf("accepted rule fails its own validation: %v", err)
			}
			if strings.ContainsAny(r.Env, " \t\n") {
				t.Fatalf("accepted env pattern with whitespace: %q", r.Env)
			}
		}
		// Accepted plans round-trip exactly through String().
		again, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("String() output does not re-parse: %v\n%s", err, p.String())
		}
		if len(again.Rules) != len(p.Rules) {
			t.Fatalf("round trip changed rule count: %d vs %d", len(again.Rules), len(p.Rules))
		}
		for i := range p.Rules {
			if p.Rules[i] != again.Rules[i] {
				t.Fatalf("rule %d did not round-trip:\n  in:  %+v\n  out: %+v", i, p.Rules[i], again.Rules[i])
			}
		}
	})
}
