package chaos

import (
	"sync"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func testEngine(t *testing.T, planText, env string, seed uint64) *Engine {
	t.Helper()
	p, err := ParsePlan(planText)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(p, env, 10.0, sim.New(seed), trace.NewLog())
}

func TestNewEngineNilForNonMatchingPlan(t *testing.T) {
	t.Parallel()
	p, err := ParsePlan("spot-reclaim env=azure-* prob=0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	if e := NewEngine(p, "aws-eks-cpu", 10, s, trace.NewLog()); e != nil {
		t.Fatal("engine should be nil when no rule targets the environment")
	}
	if e := NewEngine(nil, "aws-eks-cpu", 10, s, trace.NewLog()); e != nil {
		t.Fatal("engine should be nil for a nil plan")
	}
	if e := NewEngine(p, "azure-aks-cpu", 10, s, trace.NewLog()); e == nil {
		t.Fatal("engine should exist when a rule matches")
	}
}

func TestNilEngineIsInert(t *testing.T) {
	t.Parallel()
	var e *Engine
	if _, hit := e.Stockout(32, 1); hit {
		t.Fatal("nil engine injected a stockout")
	}
	if _, _, ok := e.JobFault("j", 4, time.Minute); ok {
		t.Fatal("nil engine injected a job fault")
	}
	if _, _, ok := e.QuotaRevocation(32); ok {
		t.Fatal("nil engine injected a revocation")
	}
	if w, h := e.DegradeRun(4, time.Minute, time.Second); w != time.Minute || h != time.Second {
		t.Fatal("nil engine degraded a run")
	}
	if _, fail := e.PullFault("tag"); fail {
		t.Fatal("nil engine injected a pull failure")
	}
	if e.Incidents() != nil || !e.Accounting().Empty() || e.Env() != "" {
		t.Fatal("nil engine should report nothing")
	}
}

// TestEngineDeterminism is the chaos analogue of the executor's core
// guarantee: the same (seed, plan, env) triple must produce the same
// fault sequence, draw for draw.
func TestEngineDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []Incident {
		e := testEngine(t, DefaultPlanText, "aws-eks-cpu", 42)
		for i := 0; i < 50; i++ {
			e.Stockout(32, 1)
			e.JobFault("job", 32, 30*time.Minute)
			e.QuotaRevocation(64)
			e.DegradeRun(32, 30*time.Minute, 10*time.Second)
			e.PullFault("amg2023-aws-CPU")
		}
		return e.Incidents()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("expected some incidents from 50 rounds of the default plan")
	}
	if len(a) != len(b) {
		t.Fatalf("incident counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("incident %d diverged:\n  a: %+v\n  b: %+v", i, a[i], b[i])
		}
	}
}

func TestPullFaultConsecutiveCap(t *testing.T) {
	t.Parallel()
	// prob=1: every pull fails — but never more than Retries in a row, so
	// retry loops always terminate.
	e := testEngine(t, "pull-fail prob=1 retries=2 backoff=30s\n", "aws-eks-cpu", 7)
	fails := 0
	for i := 0; i < 3; i++ {
		if _, fail := e.PullFault("tag"); fail {
			fails++
		} else {
			break
		}
	}
	if fails != 2 {
		t.Fatalf("got %d consecutive failures, want exactly 2 (the retries cap)", fails)
	}
	// After the forced success the counter resets and failures resume.
	if _, fail := e.PullFault("tag"); !fail {
		t.Fatal("failure sequence should restart after the cap reset")
	}
}

func TestStockoutRespectsAttemptCap(t *testing.T) {
	t.Parallel()
	e := testEngine(t, "stockout prob=1 retries=3 backoff=10m\n", "aws-eks-cpu", 7)
	for attempt := 1; attempt <= 3; attempt++ {
		backoff, hit := e.Stockout(32, attempt)
		if !hit {
			t.Fatalf("attempt %d should stock out at prob=1", attempt)
		}
		want := 10 * time.Minute << (attempt - 1)
		if backoff != want {
			t.Fatalf("attempt %d backoff = %v, want %v (exponential)", attempt, backoff, want)
		}
	}
	if _, hit := e.Stockout(32, 4); hit {
		t.Fatal("attempt beyond the retries cap must succeed")
	}
	if acct := e.Accounting(); acct.Stockouts != 3 {
		t.Fatalf("accounting recorded %d stockouts, want 3", acct.Stockouts)
	}
}

func TestJobFaultAccounting(t *testing.T) {
	t.Parallel()
	e := testEngine(t, "spot-reclaim prob=1 frac=0.5 requeue=true\n", "aws-eks-cpu", 7)
	frac, requeue, ok := e.JobFault("lammps-0", 16, 2*time.Hour)
	if !ok || frac != 0.5 || !requeue {
		t.Fatalf("JobFault = (%v, %v, %v), want (0.5, true, true)", frac, requeue, ok)
	}
	acct := e.Accounting()
	if acct.Preemptions != 1 || acct.RequeuedJobs != 1 {
		t.Fatalf("accounting: %+v", acct)
	}
	// 16 nodes × 1h lost (half of 2h) = 16 node-hours, at $10/h = $160.
	if acct.LostNodeHours != 16 {
		t.Fatalf("lost node-hours = %v, want 16", acct.LostNodeHours)
	}
	if acct.BillingDeltaUSD != 160 {
		t.Fatalf("billing delta = %v, want 160", acct.BillingDeltaUSD)
	}
}

// TestCodeBuiltRuleRequeuesByDefault guards the zero-value contract: a
// Rule literal built in code (not parsed) must behave like the plan-file
// line "spot-reclaim prob=1" — reclaimed jobs are requeued.
func TestCodeBuiltRuleRequeuesByDefault(t *testing.T) {
	t.Parallel()
	p := &Plan{Rules: []Rule{{Kind: SpotReclaim, Prob: 1}}}
	e := NewEngine(p, "aws-eks-cpu", 10, sim.New(7), trace.NewLog())
	_, requeue, ok := e.JobFault("job", 4, time.Hour)
	if !ok || !requeue {
		t.Fatalf("JobFault requeue = %v (ok=%v), want true — the zero value must mean requeue", requeue, ok)
	}
	if acct := e.Accounting(); acct.RequeuedJobs != 1 {
		t.Fatalf("RequeuedJobs = %d, want 1", acct.RequeuedJobs)
	}
}

func TestDegradeRunStretches(t *testing.T) {
	t.Parallel()
	e := testEngine(t, "net-degrade prob=1 latency=3 bandwidth=2\n", "google-gke-cpu", 7)
	wall, hookup := e.DegradeRun(8, 10*time.Minute, 10*time.Second)
	if wall != 20*time.Minute {
		t.Fatalf("wall = %v, want 20m (bandwidth ×2)", wall)
	}
	if hookup != 30*time.Second {
		t.Fatalf("hookup = %v, want 30s (latency ×3)", hookup)
	}
	if acct := e.Accounting(); acct.DegradedRuns != 1 || acct.LostNodeHours <= 0 {
		t.Fatalf("accounting: %+v", acct)
	}
}

// TestEngineConcurrentUse exercises every fault path from many goroutines
// for the race detector. The sharded executor is single-threaded per
// engine, but the engine's contract is full concurrency safety (shared
// registries and quota managers may be hammered from test harnesses).
func TestEngineConcurrentUse(t *testing.T) {
	t.Parallel()
	e := testEngine(t, DefaultPlanText, "aws-eks-cpu", 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Stockout(32, 1)
				e.JobFault("job", 8, time.Hour)
				e.QuotaRevocation(32)
				e.DegradeRun(8, time.Hour, time.Second)
				e.PullFault("tag")
				e.Incidents()
				e.Accounting()
			}
		}()
	}
	wg.Wait()
	acct := e.Accounting()
	if len(e.Incidents()) == 0 || acct.Empty() {
		t.Fatal("concurrent hammering should have injected something")
	}
}
