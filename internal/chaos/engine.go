package chaos

import (
	"strconv"
	"sync"
	"time"

	"cloudhpc/internal/network"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Incident is one injected fault together with its recovery cost. The
// study merger shifts At onto the serialized campaign timeline and
// surfaces incidents through core.Results.
type Incident struct {
	At     time.Duration
	Env    string
	Kind   Kind
	Detail string
	// LostNodeHours is compute paid for but thrown away recovering from
	// the fault (preempted partial runs, degraded stretch time).
	LostNodeHours float64
	// RequeuedJobs counts jobs resubmitted because of the fault.
	RequeuedJobs int
	// BillingDeltaUSD estimates the extra spend the fault caused at the
	// environment's node-hour rate.
	BillingDeltaUSD float64
}

// Accounting aggregates recovery costs across incidents. The study merger
// folds per-shard accountings into Results.Recovery in matrix order.
type Accounting struct {
	Preemptions      int
	RequeuedJobs     int
	Stockouts        int
	QuotaRevocations int
	DegradedRuns     int
	PullRetries      int
	LostNodeHours    float64
	BillingDeltaUSD  float64
}

// Add folds b into a.
func (a *Accounting) Add(b Accounting) {
	a.Preemptions += b.Preemptions
	a.RequeuedJobs += b.RequeuedJobs
	a.Stockouts += b.Stockouts
	a.QuotaRevocations += b.QuotaRevocations
	a.DegradedRuns += b.DegradedRuns
	a.PullRetries += b.PullRetries
	a.LostNodeHours += b.LostNodeHours
	a.BillingDeltaUSD += b.BillingDeltaUSD
}

// Empty reports whether no faults were injected at all.
func (a Accounting) Empty() bool { return a == Accounting{} }

// Engine injects one environment's share of a Plan. Every decision is
// drawn from the stream "chaos/<env>" of the shard's simulation, so a
// chaotic run is exactly as deterministic as a fault-free one: the same
// (seed, plan, env) always yields the same faults at the same virtual
// times, regardless of worker count or goroutine scheduling.
//
// All methods are safe on a nil *Engine (they report "no fault"), which
// is how fault-free shards run with zero chaos overhead and zero extra
// random draws. Methods are also safe for concurrent use — the sharded
// executor is single-threaded per engine, but external composers (race
// tests, shared-substrate harnesses) may hammer one engine from many
// goroutines.
type Engine struct {
	env  string
	rate float64 // node-hour USD of the environment's instance type
	sim  *sim.Simulation
	log  *trace.Log

	mu        sync.Mutex
	rng       *sim.Stream
	rules     map[Kind]Rule
	pullFails map[string]int // consecutive transient failures per tag
	incidents []Incident
	acct      Accounting
}

// NewEngine builds the fault injector for one environment shard.
// nodeHourUSD prices recovery accounting (0 for on-premises). A nil or
// empty plan, or one with no rules matching env, yields a nil engine —
// callers can attach it unconditionally.
func NewEngine(p *Plan, env string, nodeHourUSD float64, s *sim.Simulation, log *trace.Log) *Engine {
	if p.Empty() {
		return nil
	}
	matched := p.RulesFor(env)
	if len(matched) == 0 {
		return nil
	}
	rules := make(map[Kind]Rule, len(matched))
	for _, r := range matched {
		rr := r
		rr.normalize()
		rules[r.Kind] = rr
	}
	return &Engine{
		env:       env,
		rate:      nodeHourUSD,
		sim:       s,
		log:       log,
		rng:       s.Stream("chaos/" + env),
		rules:     rules,
		pullFails: make(map[string]int),
	}
}

// Env returns the environment key the engine injects for ("" when nil).
func (e *Engine) Env() string {
	if e == nil {
		return ""
	}
	return e.env
}

// record appends an incident, folds it into the accounting counters given
// by bump, and writes a trace event. Must be called with e.mu held.
func (e *Engine) record(inc Incident, bump func(*Accounting)) {
	inc.At = e.sim.Now()
	inc.Env = e.env
	e.incidents = append(e.incidents, inc)
	bump(&e.acct)
	e.acct.LostNodeHours += inc.LostNodeHours
	e.acct.RequeuedJobs += inc.RequeuedJobs
	e.acct.BillingDeltaUSD += inc.BillingDeltaUSD
	e.log.Addf(inc.At, e.env, trace.Manual, trace.Unexpected, "chaos %s: %s", inc.Kind, inc.Detail)
}

// Stockout implements the provisioner capacity hook
// (cloud.CapacityInjector): it reports whether bring-up attempt number
// attempt (1-based) hits a transient capacity stockout, and how long to
// back off before retrying. After Retries consecutive stockouts the
// provider "finds" capacity and the attempt succeeds.
func (e *Engine) Stockout(nodes, attempt int) (time.Duration, bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rules[Stockout]
	if !ok || attempt > r.Retries {
		return 0, false
	}
	if !e.rng.Bernoulli(r.Prob) {
		return 0, false
	}
	backoff := r.Backoff << (attempt - 1)
	// Hand-built "capacity stockout for %d nodes (attempt %d); backing off %v".
	var a [96]byte
	b := append(a[:0], "capacity stockout for "...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, " nodes (attempt "...)
	b = strconv.AppendInt(b, int64(attempt), 10)
	b = append(b, "); backing off "...)
	b = append(b, backoff.String()...)
	e.record(Incident{
		Kind:   Stockout,
		Detail: string(b),
	}, func(acct *Accounting) { acct.Stockouts++ })
	return backoff, true
}

// JobFault implements the scheduler hook (sched.FaultInjector): consulted
// once per started job, it reports whether the job is preempted by a spot
// reclaim, the fraction of its duration completed when the reclaim
// strikes, and whether the scheduler should requeue it.
func (e *Engine) JobFault(name string, nodes int, dur time.Duration) (frac float64, requeue, ok bool) {
	if e == nil {
		return 0, false, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, found := e.rules[SpotReclaim]
	if !found || !e.rng.Bernoulli(r.Prob) {
		return 0, false, false
	}
	lost := float64(nodes) * (time.Duration(r.Frac * float64(dur))).Hours()
	requeue = !r.DropOnReclaim
	requeued := 0
	if requeue {
		requeued = 1
	}
	// Hand-built "spot reclaim killed job %q at %d%% on %d nodes (requeue=%v)".
	var a [112]byte
	b := append(a[:0], "spot reclaim killed job "...)
	b = strconv.AppendQuote(b, name)
	b = append(b, " at "...)
	b = strconv.AppendInt(b, int64(r.Frac*100), 10)
	b = append(b, "% on "...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, " nodes (requeue="...)
	b = strconv.AppendBool(b, requeue)
	b = append(b, ')')
	e.record(Incident{
		Kind:            SpotReclaim,
		Detail:          string(b),
		LostNodeHours:   lost,
		RequeuedJobs:    requeued,
		BillingDeltaUSD: lost * e.rate,
	}, func(acct *Accounting) { acct.Preemptions++ })
	return r.Frac, requeue, true
}

// QuotaRevocation is consulted once per cluster scale: it reports whether
// the provider claws back part of the environment's granted quota, how
// many nodes it withdraws, and how long until a re-requested grant is
// usable.
func (e *Engine) QuotaRevocation(scaleNodes int) (revoke int, regrant time.Duration, ok bool) {
	if e == nil {
		return 0, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, found := e.rules[QuotaRevoke]
	if !found || !e.rng.Bernoulli(r.Prob) {
		return 0, 0, false
	}
	// Hand-built "provider revoked %d nodes of granted quota before the
	// %d-node scale; re-grant in %v".
	var a [112]byte
	b := append(a[:0], "provider revoked "...)
	b = strconv.AppendInt(b, int64(r.Nodes), 10)
	b = append(b, " nodes of granted quota before the "...)
	b = strconv.AppendInt(b, int64(scaleNodes), 10)
	b = append(b, "-node scale; re-grant in "...)
	b = append(b, r.Regrant.String()...)
	e.record(Incident{
		Kind:   QuotaRevoke,
		Detail: string(b),
	}, func(acct *Accounting) { acct.QuotaRevocations++ })
	return r.Nodes, r.Regrant, true
}

// DegradeRun is consulted once per application run with the healthy wall
// and hookup times; when the run hits a degraded network window it
// returns both stretched per the rule's latency/bandwidth multipliers.
// The stretch is priced as lost node-hours at the environment's rate.
func (e *Engine) DegradeRun(nodes int, wall, hookup time.Duration) (time.Duration, time.Duration) {
	if e == nil {
		return wall, hookup
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, found := e.rules[NetDegrade]
	if !found || !e.rng.Bernoulli(r.Prob) {
		return wall, hookup
	}
	deg := network.Degradation{Latency: r.Latency, Bandwidth: r.Bandwidth}
	newWall, newHookup := deg.ApplyBandwidth(wall), deg.ApplyLatency(hookup)
	lost := float64(nodes) * (newWall - wall + newHookup - hookup).Hours()
	// Hand-built "degraded interconnect (latency ×%g, bandwidth ÷%g):
	// hookup %v→%v, wall %v→%v on %d nodes".
	var a [160]byte
	b := append(a[:0], "degraded interconnect (latency ×"...)
	b = strconv.AppendFloat(b, r.Latency, 'g', -1, 64)
	b = append(b, ", bandwidth ÷"...)
	b = strconv.AppendFloat(b, r.Bandwidth, 'g', -1, 64)
	b = append(b, "): hookup "...)
	b = append(b, hookup.Round(time.Millisecond).String()...)
	b = append(b, "→"...)
	b = append(b, newHookup.Round(time.Millisecond).String()...)
	b = append(b, ", wall "...)
	b = append(b, wall.Round(time.Second).String()...)
	b = append(b, "→"...)
	b = append(b, newWall.Round(time.Second).String()...)
	b = append(b, " on "...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, " nodes"...)
	e.record(Incident{
		Kind:            NetDegrade,
		Detail:          string(b),
		LostNodeHours:   lost,
		BillingDeltaUSD: lost * e.rate,
	}, func(acct *Accounting) { acct.DegradedRuns++ })
	return newWall, newHookup
}

// PullFault implements the registry hook (containers.PullInjector): it
// reports whether this pull of tag fails transiently and how long to back
// off. At most Retries consecutive pulls of one tag fail before the
// registry recovers, so retry loops always terminate.
func (e *Engine) PullFault(tag string) (time.Duration, bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, found := e.rules[PullFail]
	if !found {
		return 0, false
	}
	if e.pullFails[tag] >= r.Retries || !e.rng.Bernoulli(r.Prob) {
		e.pullFails[tag] = 0
		return 0, false
	}
	e.pullFails[tag]++
	backoff := r.Backoff << (e.pullFails[tag] - 1)
	// Hand-built "registry pull of %q failed transiently (consecutive
	// failure %d); backing off %v".
	var a [128]byte
	b := append(a[:0], "registry pull of "...)
	b = strconv.AppendQuote(b, tag)
	b = append(b, " failed transiently (consecutive failure "...)
	b = strconv.AppendInt(b, int64(e.pullFails[tag]), 10)
	b = append(b, "); backing off "...)
	b = append(b, backoff.String()...)
	e.record(Incident{
		Kind:   PullFail,
		Detail: string(b),
	}, func(acct *Accounting) { acct.PullRetries++ })
	return backoff, true
}

// IncidentCount reports the number of recorded incidents without copying
// them — sizing information for the study merge's preallocation.
func (e *Engine) IncidentCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.incidents)
}

// Incidents returns a copy of the injected incidents in injection order.
func (e *Engine) Incidents() []Incident {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Incident, len(e.incidents))
	copy(out, e.incidents)
	return out
}

// Accounting returns the engine's recovery totals so far.
func (e *Engine) Accounting() Accounting {
	if e == nil {
		return Accounting{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.acct
}
