// Package chaos is the deterministic fault-injection engine of the study
// simulator. It perturbs a running study with scenario events — spot node
// reclaims, provisioner capacity stockouts, quota revocations, transient
// network degradation, and container-registry pull failures — without
// breaking the executor's core guarantee that the dataset is a pure
// function of (seed, plan, environment matrix).
//
// The design mirrors the sharded executor's determinism argument: every
// fault decision an environment experiences is drawn from the named stream
// "chaos/<env>" of that shard's private simulation, so the chaotic dataset
// is byte-identical for every worker count, exactly like the fault-free
// one. A Plan is shared read-only across shards; each shard owns a private
// Engine that records its incidents and recovery accounting, merged back
// in canonical matrix order by the study merger.
package chaos

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names a fault scenario class.
type Kind string

const (
	// SpotReclaim preempts running jobs the way a spot/preemptible node
	// reclaim does: the job dies partway through and is re-queued.
	SpotReclaim Kind = "spot-reclaim"
	// Stockout makes the provisioner's capacity pool transiently empty:
	// bring-up attempts are rejected and retried with exponential backoff.
	Stockout Kind = "stockout"
	// QuotaRevoke withdraws part of a granted quota mid-study; the
	// environment must re-request and wait for the re-grant.
	QuotaRevoke Kind = "quota-revoke"
	// NetDegrade applies transient latency/bandwidth multipliers to a run:
	// hookup time stretches by the latency factor and application wall time
	// by the bandwidth factor.
	NetDegrade Kind = "net-degrade"
	// PullFail makes container-registry pulls fail transiently; pulls are
	// retried with exponential backoff.
	PullFail Kind = "pull-fail"
)

// Kinds lists every fault kind, in plan-file order.
var Kinds = []Kind{SpotReclaim, Stockout, QuotaRevoke, NetDegrade, PullFail}

func validKind(k Kind) bool {
	for _, v := range Kinds {
		if v == k {
			return true
		}
	}
	return false
}

// Rule schedules one fault scenario against a set of environments. Only
// the fields relevant to the rule's Kind are consulted; the rest are
// ignored. Zero-valued relevant fields are replaced by per-kind defaults
// when the rule is normalized (ParsePlan and NewEngine both normalize).
type Rule struct {
	Kind Kind
	// Env selects target environments: an exact key ("aws-eks-cpu"), a
	// prefix glob ("azure-*"), or "*" for every environment.
	Env string
	// Prob is the per-opportunity probability of the fault firing, in
	// [0, 1]. An opportunity is one job start (SpotReclaim), one bring-up
	// attempt (Stockout), one cluster scale (QuotaRevoke), one run
	// (NetDegrade), or one registry pull (PullFail).
	Prob float64

	// Frac is the fraction of the run completed when a reclaim strikes
	// (SpotReclaim; default 0.5).
	Frac float64
	// DropOnReclaim leaves reclaimed jobs dead instead of resubmitting
	// them (SpotReclaim). The zero value requeues — the managed-spot
	// default — both for code-built rules and for plan files; write
	// "requeue=false" to model unmanaged spot usage.
	DropOnReclaim bool

	// Retries caps consecutive transient failures before the operation is
	// allowed to succeed (Stockout default 3, PullFail default 2).
	Retries int
	// Backoff is the base retry backoff, doubling per consecutive failure
	// (Stockout default 10m, PullFail default 30s).
	Backoff time.Duration

	// Nodes is how much granted quota a revocation withdraws
	// (QuotaRevoke; default 8).
	Nodes int
	// Regrant is how long until a re-requested grant is usable again
	// (QuotaRevoke; default 1h).
	Regrant time.Duration

	// Latency multiplies hookup time while degraded (NetDegrade;
	// default 2.0).
	Latency float64
	// Bandwidth divides effective bandwidth while degraded, stretching
	// application wall time by the same factor (NetDegrade; default 1.0 —
	// latency-only degradation).
	Bandwidth float64
}

// normalize fills per-kind defaults into zero-valued relevant fields.
func (r *Rule) normalize() {
	if r.Env == "" {
		r.Env = "*"
	}
	switch r.Kind {
	case SpotReclaim:
		if r.Frac == 0 {
			r.Frac = 0.5
		}
	case Stockout:
		if r.Retries == 0 {
			r.Retries = 3
		}
		if r.Backoff == 0 {
			r.Backoff = 10 * time.Minute
		}
	case QuotaRevoke:
		if r.Nodes == 0 {
			r.Nodes = 8
		}
		if r.Regrant == 0 {
			r.Regrant = time.Hour
		}
	case NetDegrade:
		if r.Latency == 0 {
			r.Latency = 2.0
		}
		if r.Bandwidth == 0 {
			r.Bandwidth = 1.0
		}
	case PullFail:
		if r.Retries == 0 {
			r.Retries = 2
		}
		if r.Backoff == 0 {
			r.Backoff = 30 * time.Second
		}
	}
}

// validate rejects rules that cannot be drawn from deterministically.
// Only the fields relevant to the rule's Kind are checked — a normalized
// rule leaves irrelevant fields at their zero values.
func (r Rule) validate() error {
	if !validKind(r.Kind) {
		return fmt.Errorf("chaos: unknown fault kind %q", r.Kind)
	}
	if !(r.Prob >= 0 && r.Prob <= 1) { // also rejects NaN
		return fmt.Errorf("chaos: %s: prob %v outside [0, 1]", r.Kind, r.Prob)
	}
	if strings.ContainsAny(r.Env, " \t\n") {
		return fmt.Errorf("chaos: env pattern %q contains whitespace", r.Env)
	}
	switch r.Kind {
	case SpotReclaim:
		if !(r.Frac > 0 && r.Frac < 1) {
			return fmt.Errorf("chaos: %s: frac %v outside (0, 1)", r.Kind, r.Frac)
		}
	case Stockout, PullFail:
		if r.Retries < 1 || r.Retries > 16 {
			return fmt.Errorf("chaos: %s: retries %d outside [1, 16]", r.Kind, r.Retries)
		}
		if r.Backoff <= 0 || r.Backoff > 24*time.Hour {
			return fmt.Errorf("chaos: %s: backoff %v outside (0, 24h]", r.Kind, r.Backoff)
		}
	case QuotaRevoke:
		if r.Nodes < 1 || r.Nodes > 1<<20 {
			return fmt.Errorf("chaos: %s: nodes %d outside [1, 2^20]", r.Kind, r.Nodes)
		}
		if r.Regrant <= 0 || r.Regrant > 30*24*time.Hour {
			return fmt.Errorf("chaos: %s: regrant %v outside (0, 30d]", r.Kind, r.Regrant)
		}
	case NetDegrade:
		if !(r.Latency >= 1 && r.Latency <= 1000) {
			return fmt.Errorf("chaos: %s: latency factor %v outside [1, 1000]", r.Kind, r.Latency)
		}
		if !(r.Bandwidth >= 1 && r.Bandwidth <= 1000) {
			return fmt.Errorf("chaos: %s: bandwidth factor %v outside [1, 1000]", r.Kind, r.Bandwidth)
		}
	}
	return nil
}

// Matches reports whether the rule targets the environment key. The
// empty pattern matches everything, like "*" — so zero-valued code-built
// rules target the whole matrix.
func (r Rule) Matches(env string) bool {
	switch {
	case r.Env == "" || r.Env == "*":
		return true
	case strings.HasSuffix(r.Env, "*"):
		return strings.HasPrefix(env, strings.TrimSuffix(r.Env, "*"))
	default:
		return r.Env == env
	}
}

// Plan is a full fault-injection scenario: an ordered rule list. For each
// fault kind and environment, the first matching rule wins, so specific
// rules should precede catch-alls.
type Plan struct {
	Rules []Rule
}

// RulesFor returns the effective rule per fault kind for one environment
// (first match wins), in Kinds order.
func (p *Plan) RulesFor(env string) []Rule {
	if p == nil {
		return nil
	}
	var out []Rule
	for _, k := range Kinds {
		for _, r := range p.Rules {
			if r.Kind == k && r.Matches(env) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool { return p == nil || len(p.Rules) == 0 }

// String renders the plan back into parseable plan-file syntax, with every
// relevant field explicit. ParsePlan(p.String()) reproduces p exactly for
// any normalized plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "%s env=%s prob=%s", r.Kind, r.Env, trimFloat(r.Prob))
		switch r.Kind {
		case SpotReclaim:
			fmt.Fprintf(&b, " frac=%s requeue=%v", trimFloat(r.Frac), !r.DropOnReclaim)
		case Stockout, PullFail:
			fmt.Fprintf(&b, " retries=%d backoff=%s", r.Retries, r.Backoff)
		case QuotaRevoke:
			fmt.Fprintf(&b, " nodes=%d regrant=%s", r.Nodes, r.Regrant)
		case NetDegrade:
			fmt.Fprintf(&b, " latency=%s bandwidth=%s", trimFloat(r.Latency), trimFloat(r.Bandwidth))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParsePlan parses plan-file syntax: one rule per line,
//
//	<kind> [key=value ...]
//
// with '#' comments and blank lines ignored. Keys are env, prob, frac,
// requeue, retries, backoff, nodes, regrant, latency, bandwidth; durations
// use Go syntax ("10m", "1h30m"). Unknown kinds, unknown keys, repeated
// keys, and out-of-range values are errors. Parsed rules are normalized
// (per-kind defaults filled in) and validated.
func ParsePlan(src string) (*Plan, error) {
	p := &Plan{}
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		r := Rule{Kind: Kind(fields[0])}
		if !validKind(r.Kind) {
			return nil, fmt.Errorf("chaos: line %d: unknown fault kind %q", lineNo+1, fields[0])
		}
		seen := map[string]bool{}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok || key == "" || val == "" {
				return nil, fmt.Errorf("chaos: line %d: malformed field %q (want key=value)", lineNo+1, f)
			}
			if seen[key] {
				return nil, fmt.Errorf("chaos: line %d: repeated key %q", lineNo+1, key)
			}
			seen[key] = true
			if key != "env" && key != "prob" && !kindKeys[r.Kind][key] {
				return nil, fmt.Errorf("chaos: line %d: key %q is not valid for %s", lineNo+1, key, r.Kind)
			}
			if err := r.setField(key, val); err != nil {
				return nil, fmt.Errorf("chaos: line %d: %v", lineNo+1, err)
			}
		}
		r.normalize()
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("chaos: plan contains no rules")
	}
	return p, nil
}

// kindKeys maps each fault kind to its relevant keys beyond the common
// env/prob pair. Irrelevant keys are parse errors, which keeps plans
// honest and makes ParsePlan/String an exact round trip.
var kindKeys = map[Kind]map[string]bool{
	SpotReclaim: {"frac": true, "requeue": true},
	Stockout:    {"retries": true, "backoff": true},
	QuotaRevoke: {"nodes": true, "regrant": true},
	NetDegrade:  {"latency": true, "bandwidth": true},
	PullFail:    {"retries": true, "backoff": true},
}

// setField assigns one key=value pair onto the rule.
func (r *Rule) setField(key, val string) error {
	switch key {
	case "env":
		r.Env = val
		return nil
	case "prob":
		return parseFloat(val, &r.Prob)
	case "frac":
		return parseFloat(val, &r.Frac)
	case "latency":
		return parseFloat(val, &r.Latency)
	case "bandwidth":
		return parseFloat(val, &r.Bandwidth)
	case "requeue":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("requeue: %v", err)
		}
		r.DropOnReclaim = !b
		return nil
	case "retries":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("retries: %v", err)
		}
		r.Retries = n
		return nil
	case "nodes":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("nodes: %v", err)
		}
		r.Nodes = n
		return nil
	case "backoff":
		return parseDuration(val, &r.Backoff)
	case "regrant":
		return parseDuration(val, &r.Regrant)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

func parseFloat(val string, dst *float64) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	*dst = f
	return nil
}

func parseDuration(val string, dst *time.Duration) error {
	d, err := time.ParseDuration(val)
	if err != nil {
		return err
	}
	*dst = d
	return nil
}

// DefaultPlanText is the built-in scenario ("default" to LoadPlan): a
// moderately hostile fleet day — occasional spot reclaims everywhere,
// capacity stockouts, an Azure quota clawback, degraded Google network
// paths, and flaky registry pulls.
const DefaultPlanText = `# built-in default chaos scenario
spot-reclaim  env=*        prob=0.08 frac=0.5 requeue=true
stockout      env=*        prob=0.15 retries=3 backoff=10m
quota-revoke  env=azure-*  prob=0.10 nodes=16 regrant=2h
net-degrade   env=google-* prob=0.20 latency=2.5 bandwidth=1.15
pull-fail     env=*        prob=0.20 retries=2 backoff=45s
`

// DefaultPlan returns the built-in scenario.
func DefaultPlan() *Plan {
	p, err := ParsePlan(DefaultPlanText)
	if err != nil {
		panic("chaos: default plan does not parse: " + err.Error())
	}
	return p
}

// LoadPlan resolves a command-line -chaos argument: "" or "none" yields a
// nil plan (no injection), "default" the built-in scenario, and anything
// else is read as a plan file path.
func LoadPlan(arg string) (*Plan, error) {
	switch arg {
	case "", "none":
		return nil, nil
	case "default":
		return DefaultPlan(), nil
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading plan: %w", err)
	}
	p, err := ParsePlan(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", arg, err)
	}
	return p, nil
}

// Targets returns the sorted fault kinds the plan can inject for an
// environment — a convenience for reports and tests.
func (p *Plan) Targets(env string) []Kind {
	var out []Kind
	for _, r := range p.RulesFor(env) {
		out = append(out, r.Kind)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
