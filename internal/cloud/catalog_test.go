package cloud

import "testing"

func TestCatalogHasAllTable2Rows(t *testing.T) {
	t.Parallel()
	c := NewCatalog()
	if got := len(c.All()); got != 8 {
		t.Fatalf("catalog has %d entries, want 8 (Table 2 distinct SKUs)", got)
	}
	cases := []struct {
		prov  Provider
		name  string
		cores int
		gpus  int
		cost  float64
	}{
		{OnPrem, "dell-xeon-8480", 112, 0, 0},
		{AWS, "Hpc6a", 96, 0, 2.88},
		{Google, "c2d-standard-112", 56, 0, 5.06},
		{Azure, "HB96rs v3", 96, 0, 3.60},
		{OnPrem, "ibm-power9-v100", 44, 4, 0},
		{AWS, "p3dn.24xlarge", 48, 8, 34.33},
		{Google, "n1-standard-32", 16, 8, 23.36},
		{Azure, "ND40rs v2", 48, 8, 22.03},
	}
	for _, tc := range cases {
		it, err := c.Lookup(tc.prov, tc.name)
		if err != nil {
			t.Fatalf("Lookup(%s/%s): %v", tc.prov, tc.name, err)
		}
		if it.Cores != tc.cores {
			t.Errorf("%s cores = %d, want %d", it, it.Cores, tc.cores)
		}
		if it.GPUs != tc.gpus {
			t.Errorf("%s GPUs = %d, want %d", it, it.GPUs, tc.gpus)
		}
		if it.HourlyUSD != tc.cost {
			t.Errorf("%s cost = %v, want %v", it, it.HourlyUSD, tc.cost)
		}
	}
}

func TestCatalogLookupUnknown(t *testing.T) {
	t.Parallel()
	c := NewCatalog()
	if _, err := c.Lookup(AWS, "nope"); err == nil {
		t.Fatalf("expected error for unknown type")
	}
}

func TestGoogleCPUCoreDisadvantage(t *testing.T) {
	t.Parallel()
	// The paper repeatedly flags that Google CPU instances had 56 cores vs
	// 96 on AWS/Azure; the catalog must preserve that.
	c := NewCatalog()
	g, _ := c.Lookup(Google, "c2d-standard-112")
	a, _ := c.Lookup(AWS, "Hpc6a")
	z, _ := c.Lookup(Azure, "HB96rs v3")
	if g.Cores >= a.Cores || g.Cores >= z.Cores {
		t.Fatalf("Google cores (%d) should be fewer than AWS (%d) and Azure (%d)", g.Cores, a.Cores, z.Cores)
	}
}

func TestOnPremGPUNodeHas4GPUs(t *testing.T) {
	t.Parallel()
	// Cluster B has 4 GPUs/node vs 8 on cloud — the study compares sizes
	// 8/16/32/64 on B to 4/8/16/32 on cloud because of this.
	c := NewCatalog()
	b, _ := c.Lookup(OnPrem, "ibm-power9-v100")
	if b.GPUs != 4 {
		t.Fatalf("cluster B GPUs/node = %d, want 4", b.GPUs)
	}
	for _, cloudName := range []struct {
		p Provider
		n string
	}{{AWS, "p3dn.24xlarge"}, {Google, "n1-standard-32"}, {Azure, "ND40rs v2"}} {
		it, _ := c.Lookup(cloudName.p, cloudName.n)
		if it.GPUs != 8 {
			t.Fatalf("%s GPUs/node = %d, want 8", it, it.GPUs)
		}
	}
}

func TestV100MemoryVariants(t *testing.T) {
	t.Parallel()
	// Google Cloud and cluster B have 16GB V100s; AWS and Azure have 32GB.
	// The study sized problems for the 16GB variant.
	c := NewCatalog()
	g, _ := c.Lookup(Google, "n1-standard-32")
	b, _ := c.Lookup(OnPrem, "ibm-power9-v100")
	if g.GPUMemGB != 16 || b.GPUMemGB != 16 {
		t.Fatalf("GCP/B V100 memory = %d/%d, want 16/16", g.GPUMemGB, b.GPUMemGB)
	}
	a, _ := c.Lookup(AWS, "p3dn.24xlarge")
	z, _ := c.Lookup(Azure, "ND40rs v2")
	if a.GPUMemGB != 32 || z.GPUMemGB != 32 {
		t.Fatalf("AWS/Azure V100 memory = %d/%d, want 32/32", a.GPUMemGB, z.GPUMemGB)
	}
}

func TestNodeDefectPredicates(t *testing.T) {
	t.Parallel()
	it := InstanceType{GPUs: 8, Cores: 48}
	n := Node{Type: it, VisibleGPUs: 7, VisibleCores: 48}
	if !n.DefectiveGPU() {
		t.Fatalf("7/8 GPUs should be defective")
	}
	if n.DefectiveCPU() {
		t.Fatalf("full cores should not be defective")
	}
	fish := Node{Type: it, VisibleGPUs: 8, VisibleCores: 2}
	if !fish.DefectiveCPU() {
		t.Fatalf("2/48 cores should be defective")
	}
}

func TestClusterAggregates(t *testing.T) {
	t.Parallel()
	it := InstanceType{GPUs: 8, Cores: 48}
	c := Cluster{Type: it}
	for i := 0; i < 4; i++ {
		c.Nodes = append(c.Nodes, &Node{Type: it, VisibleGPUs: 8, VisibleCores: 48, Healthy: true})
	}
	c.Nodes[2].VisibleGPUs = 7
	if c.TotalGPUs() != 31 {
		t.Fatalf("TotalGPUs = %d, want 31", c.TotalGPUs())
	}
	if c.TotalCores() != 192 {
		t.Fatalf("TotalCores = %d, want 192", c.TotalCores())
	}
	if len(c.HealthyNodes()) != 3 {
		t.Fatalf("HealthyNodes = %d, want 3", len(c.HealthyNodes()))
	}
}
