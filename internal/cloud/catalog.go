package cloud

import "fmt"

// Catalog is the instance-type inventory of the study — a faithful
// transcription of the paper's Table 2 ("Nodes and Network").
type Catalog struct {
	types map[string]InstanceType
	order []string
}

// NewCatalog returns the study catalog.
func NewCatalog() *Catalog {
	c := &Catalog{types: make(map[string]InstanceType)}
	for _, it := range studyInstanceTypes {
		c.add(it)
	}
	return c
}

func (c *Catalog) add(it InstanceType) {
	key := it.String()
	if _, dup := c.types[key]; dup {
		panic(fmt.Sprintf("cloud: duplicate catalog entry %s", key))
	}
	c.types[key] = it
	c.order = append(c.order, key)
}

// Lookup returns the instance type with the given provider and name.
func (c *Catalog) Lookup(p Provider, name string) (InstanceType, error) {
	it, ok := c.types[fmt.Sprintf("%s/%s", p, name)]
	if !ok {
		return InstanceType{}, fmt.Errorf("cloud: unknown instance type %s/%s", p, name)
	}
	return it, nil
}

// All returns every instance type in Table 2 order.
func (c *Catalog) All() []InstanceType {
	out := make([]InstanceType, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.types[k])
	}
	return out
}

// studyInstanceTypes transcribes Table 2. On-premises rows carry no cost
// (the center does not bill per instance-hour).
var studyInstanceTypes = []InstanceType{
	// --- CPU rows ---
	{
		Name: "dell-xeon-8480", Provider: OnPrem,
		Processor: "Intel Xeon Platinum 8480+", Cores: 112, ClockGHz: 3.8,
		MemoryGB: 256, Fabric: OmniPath100,
	},
	{
		Name: "Hpc6a", Provider: AWS,
		Processor: "AMD EPYC 7R13/7003", Cores: 96, ClockGHz: 3.6,
		MemoryGB: 384, Fabric: EFAGen15, HourlyUSD: 2.88,
	},
	{
		Name: "c2d-standard-112", Provider: Google,
		Processor: "AMD EPYC 7B13", Cores: 56, ClockGHz: 3.5,
		MemoryGB: 448, Fabric: GooglePremium, HourlyUSD: 5.06,
	},
	{
		Name: "HB96rs v3", Provider: Azure,
		Processor: "AMD EPYC 7003", Cores: 96, ClockGHz: 3.5,
		MemoryGB: 448, Fabric: InfiniBandHDR, HourlyUSD: 3.60,
	},
	// --- GPU rows ---
	{
		Name: "ibm-power9-v100", Provider: OnPrem,
		Processor: "IBM Power9", Cores: 44, ClockGHz: 3.5,
		MemoryGB: 256, GPUs: 4, GPUModel: "V100 16GB", GPUMemGB: 16,
		Fabric: InfiniBandEDR,
	},
	{
		Name: "p3dn.24xlarge", Provider: AWS,
		Processor: "Xeon Platinum 8175", Cores: 48, ClockGHz: 2.5,
		MemoryGB: 768, GPUs: 8, GPUModel: "V100 32GB", GPUMemGB: 32,
		Fabric: EFAGen1, HourlyUSD: 34.33,
	},
	{
		Name: "n1-standard-32", Provider: Google,
		Processor: "Xeon Haswell E5 v3", Cores: 16, ClockGHz: 2.3,
		MemoryGB: 120, GPUs: 8, GPUModel: "V100 16GB", GPUMemGB: 16,
		Fabric: GooglePremium, HourlyUSD: 23.36,
	},
	{
		Name: "ND40rs v2", Provider: Azure,
		Processor: "Xeon Platinum 8168", Cores: 48, ClockGHz: 2.7,
		MemoryGB: 672, GPUs: 8, GPUModel: "V100 32GB", GPUMemGB: 32,
		Fabric: InfiniBandEDR, HourlyUSD: 22.03,
	},
}
