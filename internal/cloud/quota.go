package cloud

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Quota errors.
var (
	// ErrReservationPending is returned while a capacity reservation has
	// been requested but not granted (the AWS GPU situation in the study:
	// an early-August request that was never granted for prototyping).
	ErrReservationPending = errors.New("cloud: capacity reservation pending")
	// ErrQuotaExceeded is returned when a request exceeds the granted quota.
	ErrQuotaExceeded = errors.New("cloud: quota exceeded")
)

// QuotaPolicy describes how a provider grants quota and reservations for
// one accelerator class. The defaults encode the paper's §3.1 experience:
// Azure and Google were "low" difficulty (granted immediately), AWS GPU was
// "medium" (reservation never granted until a late 48-hour capacity block).
type QuotaPolicy struct {
	// GrantDelay is how long after a request quota becomes usable.
	GrantDelay time.Duration
	// ReservationWindow: if non-zero, capacity is only usable inside
	// [WindowStart, WindowStart+ReservationWindow), recurring every
	// WindowPeriod (capacity blocks are granted per calendar month).
	WindowStart       time.Duration
	ReservationWindow time.Duration
	WindowPeriod      time.Duration
	// GuaranteesCapacity reports whether granted quota actually guarantees
	// that provisioning will succeed (paper §4.2: "for some clouds,
	// receiving quota is a confident assurance... for others it is not").
	GuaranteesCapacity bool
}

// QuotaManager tracks granted quota per (provider, accelerator). It is safe
// for concurrent use: grant bookkeeping is serialized by an internal mutex
// so parallel environment runners can share one instance.
type QuotaManager struct {
	sim *sim.Simulation
	log *trace.Log

	mu       sync.Mutex
	policies map[Provider]map[Accelerator]QuotaPolicy
	granted  map[Provider]map[Accelerator]int
	asked    map[Provider]map[Accelerator]time.Duration // when quota was requested
}

// NewQuotaManager returns a manager with the study's default policies.
func NewQuotaManager(s *sim.Simulation, log *trace.Log) *QuotaManager {
	qm := &QuotaManager{
		sim:      s,
		log:      log,
		policies: make(map[Provider]map[Accelerator]QuotaPolicy),
		granted:  make(map[Provider]map[Accelerator]int),
		asked:    make(map[Provider]map[Accelerator]time.Duration),
	}
	// Azure and Google: no issues with quotas or GPU provisioning.
	for _, p := range []Provider{Azure, Google, OnPrem} {
		qm.SetPolicy(p, CPU, QuotaPolicy{GuaranteesCapacity: true})
		qm.SetPolicy(p, GPU, QuotaPolicy{GuaranteesCapacity: true})
	}
	// AWS: CPU fine; GPU reservation pushed to a 48h block late in the
	// month (the study's prototyping reservation was never granted).
	qm.SetPolicy(AWS, CPU, QuotaPolicy{GuaranteesCapacity: true})
	qm.SetPolicy(AWS, GPU, QuotaPolicy{
		WindowStart:        21 * 24 * time.Hour, // "last week of the month"
		ReservationWindow:  48 * time.Hour,
		WindowPeriod:       30 * 24 * time.Hour,
		GuaranteesCapacity: false,
	})
	return qm
}

// SetPolicy overrides the policy for one (provider, accelerator).
func (qm *QuotaManager) SetPolicy(p Provider, acc Accelerator, pol QuotaPolicy) {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	if qm.policies[p] == nil {
		qm.policies[p] = make(map[Accelerator]QuotaPolicy)
	}
	qm.policies[p][acc] = pol
}

// Policy returns the active policy for one (provider, accelerator).
func (qm *QuotaManager) Policy(p Provider, acc Accelerator) QuotaPolicy {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	return qm.policies[p][acc]
}

// Request asks for quota of n nodes. The grant is recorded immediately but
// only becomes usable per the policy's delays.
func (qm *QuotaManager) Request(p Provider, acc Accelerator, n int) {
	qm.mu.Lock()
	if qm.granted[p] == nil {
		qm.granted[p] = make(map[Accelerator]int)
		qm.asked[p] = make(map[Accelerator]time.Duration)
	}
	if n > qm.granted[p][acc] {
		qm.granted[p][acc] = n
	}
	if _, ok := qm.asked[p][acc]; !ok {
		qm.asked[p][acc] = qm.sim.Now()
	}
	pol := qm.policies[p][acc]
	qm.mu.Unlock()
	sev := trace.Routine
	if pol.ReservationWindow > 0 {
		sev = trace.Unexpected // waiting on a capacity block is friction
	}
	qm.log.Addf(qm.sim.Now(), envKey(p, acc), trace.Setup, sev,
		"requested quota for %d %s nodes", n, acc)
}

// Revoke withdraws up to n nodes of granted quota — the injected analogue
// of a provider clawing back a grant mid-study. It returns how much was
// actually revoked (never below zero remaining). A later Request restores
// the grant; the request timestamp is reset so any GrantDelay applies
// again, exactly as if the team had to re-file the ask.
func (qm *QuotaManager) Revoke(p Provider, acc Accelerator, n int) int {
	qm.mu.Lock()
	if n < 0 || qm.granted[p] == nil {
		qm.mu.Unlock()
		return 0
	}
	have := qm.granted[p][acc]
	revoked := n
	if revoked > have {
		revoked = have
	}
	qm.granted[p][acc] = have - revoked
	if revoked > 0 {
		delete(qm.asked[p], acc)
	}
	qm.mu.Unlock()
	if revoked > 0 {
		qm.log.Addf(qm.sim.Now(), envKey(p, acc), trace.Manual, trace.Unexpected,
			"quota revoked: %d of %d granted %s nodes withdrawn", revoked, have, acc)
	}
	return revoked
}

// Granted returns the currently granted quota.
func (qm *QuotaManager) Granted(p Provider, acc Accelerator) int {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	return qm.granted[p][acc]
}

// Check reports whether n nodes may be provisioned right now. It returns
// ErrReservationPending outside a reservation window and ErrQuotaExceeded
// when the ask exceeds the grant.
func (qm *QuotaManager) Check(p Provider, acc Accelerator, n int) error {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	pol := qm.policies[p][acc]
	asked, requested := qm.asked[p][acc]
	if !requested {
		return fmt.Errorf("%w: no quota requested for %s/%s", ErrQuotaExceeded, p, acc)
	}
	now := qm.sim.Now()
	if now < asked+pol.GrantDelay {
		return ErrReservationPending
	}
	if pol.ReservationWindow > 0 {
		if _, inside := pol.windowPhase(now); !inside {
			return ErrReservationPending
		}
	}
	if n > qm.granted[p][acc] {
		return fmt.Errorf("%w: want %d, granted %d", ErrQuotaExceeded, n, qm.granted[p][acc])
	}
	return nil
}

// windowPhase locates now relative to the (possibly recurring) window.
// It returns the start of the next window at or after now, and whether
// now is inside a window.
func (pol QuotaPolicy) windowPhase(now time.Duration) (nextStart time.Duration, inside bool) {
	start := pol.WindowStart
	if pol.WindowPeriod > 0 {
		for start+pol.ReservationWindow <= now {
			start += pol.WindowPeriod
		}
	}
	if now >= start && now < start+pol.ReservationWindow {
		return start, true
	}
	return start, false
}

// NextWindowStart returns when capacity next becomes available at or
// after now (now itself if already inside a window). The boolean is false
// when the policy has no reservation window at all.
func (pol QuotaPolicy) NextWindowStart(now time.Duration) (time.Duration, bool) {
	if pol.ReservationWindow == 0 {
		return 0, false
	}
	start, inside := pol.windowPhase(now)
	if inside {
		return now, true
	}
	if start < now {
		// Non-recurring window already closed for good.
		return 0, false
	}
	return start, true
}

// envKey builds the canonical trace key "provider-accelerator" used when an
// event is not tied to one specific environment.
func envKey(p Provider, acc Accelerator) string {
	return fmt.Sprintf("%s-%s", p, acc)
}
