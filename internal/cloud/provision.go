package cloud

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// ErrProvisionFailed is returned when a cluster cannot be brought up.
var ErrProvisionFailed = errors.New("cloud: provisioning failed")

// CapacityInjector decides transient capacity stockouts at provisioning
// time — the injected analogue of a provider's pool running dry. The
// provisioner consults it once per bring-up attempt (1-based) and, while
// it reports a stockout, waits out the returned backoff and retries.
// Implementations must eventually stop reporting stockouts for a request
// and must be safe for concurrent use. A nil injector means capacity is
// always available.
type CapacityInjector interface {
	Stockout(nodes, attempt int) (backoff time.Duration, stockout bool)
}

// ProvisionRequest asks for a cluster.
type ProvisionRequest struct {
	Env        string // trace key, e.g. "aws-eks-gpu"
	Type       InstanceType
	Nodes      int
	Kubernetes bool // Kubernetes service vs VM cluster
	// AllowSpareNode requests quota for one extra node so a defective node
	// can be replaced (the study asked for 33 on Azure GPU anticipating
	// the recurring 7/8-GPU node).
	AllowSpareNode bool
}

// Provisioner brings clusters up and down, reproducing the study's observed
// failure modes per provider. It charges the meter for all time nodes are
// up, including time wasted on failures.
type Provisioner struct {
	sim       *sim.Simulation
	log       *trace.Log
	meter     *Meter
	quota     *QuotaManager
	placement *PlacementService

	// Capacity, when non-nil, injects transient stockouts into bring-up
	// attempts (the chaos engine implements it).
	Capacity CapacityInjector

	counter int

	// Failure-mode knobs, exported for ablation benches.

	// AzureGPUDefectProb is the chance an Azure GPU node exposes 7/8 GPUs
	// (observed repeatedly on the 32-node cluster; also reported by ORNL).
	AzureGPUDefectProb float64
	// AzureDefectReallocSticky: releasing the bad node re-allocates the
	// same node, so replacement requires spare quota.
	AzureDefectReallocSticky bool
	// EKSPlacementGroupBug: an erroneously created placement group causes
	// a partial instantiation of GPU clusters on first attempt.
	EKSPlacementGroupBug bool
	// EKSStuckAt256: *recreating* a 256-node EKS cluster never fully
	// provisions; the study burned ~$2.5k waiting (§4.1). The first
	// bring-up of each study size worked; the stall hits the second
	// attempt at ≥256 nodes.
	EKSStuckAt256 bool
	eks256Count   int
	// FishEveryN injects the "supermarket fish problem": every Nth Azure
	// node bring-up exposes a wildly different architecture (the one AKS
	// instance that reported two processors across ~450 node bring-ups).
	FishEveryN int
	azureNodes int
	// AzureECCOffProb is the chance an Azure GPU has ECC disabled; all
	// other clouds consistently enable ECC.
	AzureECCOffProb float64
}

// NewProvisioner wires a provisioner to the simulation spine.
func NewProvisioner(s *sim.Simulation, log *trace.Log, meter *Meter, quota *QuotaManager, placement *PlacementService) *Provisioner {
	return &Provisioner{
		sim: s, log: log, meter: meter, quota: quota, placement: placement,
		AzureGPUDefectProb:       0.8, // it happened on the one 32-node bring-up, and recurred
		AzureDefectReallocSticky: true,
		EKSPlacementGroupBug:     true,
		EKSStuckAt256:            true,
		FishEveryN:               900, // one anomalous node across the study's Azure fleet
		AzureECCOffProb:          0.2, // 12.5–25% Off across Azure environments
	}
}

// bootLatency returns how long one batch of nodes takes to come up.
func (p *Provisioner) bootLatency(req ProvisionRequest, rng *sim.Stream) time.Duration {
	base := 3 * time.Minute
	if req.Kubernetes {
		base = 5 * time.Minute // control plane + node pool
	}
	if req.Type.GPUs > 0 {
		base += 2 * time.Minute // driver install / health checks
	}
	// Larger clusters take longer to satisfy.
	base += time.Duration(req.Nodes/32) * time.Minute
	return time.Duration(rng.Jitter(float64(base), 0.15))
}

// Provision brings up a cluster, or returns an error after charging for any
// time wasted. The returned cluster is healthy and fully sized.
func (p *Provisioner) Provision(req ProvisionRequest) (*Cluster, error) {
	if req.Nodes <= 0 {
		return nil, fmt.Errorf("%w: non-positive node count %d", ErrProvisionFailed, req.Nodes)
	}
	acc := CPU
	if req.Type.GPUs > 0 {
		acc = GPU
	}
	if err := p.quota.Check(req.Type.Provider, acc, req.Nodes); err != nil {
		p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Unexpected, "quota check failed: %v", err)
		return nil, err
	}
	rng := p.sim.Stream("cloud/provision/" + req.Env)

	// Injected capacity stockouts: the pool is transiently dry, so the
	// request is rejected and retried with backoff. No nodes come up, so
	// nothing is charged — the cost is pure wall-clock (and, under a
	// reservation window, possibly the window itself).
	if p.Capacity != nil {
		for attempt := 1; ; attempt++ {
			backoff, stockout := p.Capacity.Stockout(req.Nodes, attempt)
			if !stockout {
				break
			}
			p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Unexpected,
				"capacity stockout: %d-node request rejected (attempt %d); retrying in %v", req.Nodes, attempt, backoff)
			p.sim.Clock.Advance(backoff)
		}
	}

	// Provider-specific first-attempt failures.
	if req.Type.Provider == AWS && req.Kubernetes && acc == GPU && p.EKSPlacementGroupBug {
		// Erroneous placement group → partial instantiation. Debugging and
		// fixing costs wall time and real money (nodes up but unusable).
		waste := time.Duration(rng.Uniform(40, 80)) * time.Minute
		partial := req.Nodes / 2
		p.meter.ChargeNodeHours(req.Env, req.Type, partial, waste, "partial instantiation (placement group bug)")
		p.sim.Clock.Advance(waste)
		p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Blocking,
			"erroneously created placement group: %d/%d nodes instantiated; deleted and recreated", partial, req.Nodes)
		p.EKSPlacementGroupBug = false // fixed for subsequent attempts
	}
	if req.Type.Provider == AWS && req.Kubernetes && acc == CPU && req.Nodes >= 256 {
		p.eks256Count++
	}
	if req.Type.Provider == AWS && req.Kubernetes && acc == CPU && req.Nodes >= 256 && p.eks256Count == 2 && p.EKSStuckAt256 {
		// Recreating the 256-node cluster: nodes never fully provision.
		waste := 4 * time.Hour
		upNodes := req.Nodes * 3 / 4
		cost := p.meter.ChargeNodeHours(req.Env, req.Type, upNodes, waste, "waiting for nodes that never provisioned")
		p.sim.Clock.Advance(waste)
		p.log.Addf(p.sim.Now(), req.Env, trace.Manual, trace.Blocking,
			"size-%d recreation stalled: total node count never provisioned ($%.0f wasted)", req.Nodes, cost)
		p.EKSStuckAt256 = false // one-time event in the study
	}

	boot := p.bootLatency(req, rng)
	p.sim.Clock.Advance(boot)

	placement := p.placement.Request(req.Type.Provider, req.Env, req.Nodes, req.Kubernetes)

	c := &Cluster{
		Name:      req.Env + "-" + strconv.Itoa(p.nextID()),
		Type:      req.Type,
		Placement: placement,
		CreatedAt: p.sim.Now(),
	}
	for i := 0; i < req.Nodes; i++ {
		c.Nodes = append(c.Nodes, p.newNode(req, rng, i))
	}

	// Azure GPU: a node that keeps coming up with 7/8 GPUs.
	if req.Type.Provider == Azure && acc == GPU && req.Nodes >= 32 && rng.Bernoulli(p.AzureGPUDefectProb) {
		bad := c.Nodes[rng.Intn(len(c.Nodes))]
		bad.VisibleGPUs = bad.Type.GPUs - 1
		debug := time.Duration(rng.Uniform(20, 30)) * time.Minute
		p.sim.Clock.Advance(debug)
		p.meter.ChargeNodeHours(req.Env, req.Type, req.Nodes, debug, "debugging 7/8-GPU node")
		p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Unexpected,
			"node %s exposes %d/%d GPUs; releasing re-allocates the same node", bad.ID, bad.VisibleGPUs, bad.Type.GPUs)
		if p.AzureDefectReallocSticky && !req.AllowSpareNode {
			p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Blocking,
				"no spare quota: cluster stuck with defective node")
			// Tear down everything we brought up and fail.
			p.meter.ChargeNodeHours(req.Env, req.Type, req.Nodes, p.sim.Now()-c.CreatedAt, "failed bring-up")
			return nil, fmt.Errorf("%w: defective GPU node and no spare quota", ErrProvisionFailed)
		}
		// Bring up a 33rd node and drop the defective one.
		replacement := p.newNode(req, rng, req.Nodes)
		for i, n := range c.Nodes {
			if n == bad {
				c.Nodes[i] = replacement
				break
			}
		}
		p.log.Addf(p.sim.Now(), req.Env, trace.Setup, trace.Routine,
			"brought up spare node %s and removed defective node", replacement.ID)
	}

	// Hand-built "cluster %s up: %d × %s in %v" (one per deploy).
	var a [96]byte
	b := append(a[:0], "cluster "...)
	b = append(b, c.Name...)
	b = append(b, " up: "...)
	b = strconv.AppendInt(b, int64(c.Size()), 10)
	b = append(b, " × "...)
	b = append(b, req.Type.Name...)
	b = append(b, " in "...)
	b = append(b, boot.Round(time.Second).String()...)
	p.log.Add(trace.Event{At: p.sim.Now(), Env: req.Env,
		Category: trace.Setup, Severity: trace.Routine, Msg: string(b)})
	return c, nil
}

// newNode constructs one node with defect/ECC rolls applied.
func (p *Provisioner) newNode(req ProvisionRequest, rng *sim.Stream, idx int) *Node {
	p.counter++
	// "%s-node-%04d": the counter is always positive, so the fmt zero-pad
	// is plain leading zeros.
	var a [48]byte
	b := append(a[:0], req.Env...)
	b = append(b, "-node-"...)
	if p.counter < 1000 {
		b = append(b, '0')
		if p.counter < 100 {
			b = append(b, '0')
			if p.counter < 10 {
				b = append(b, '0')
			}
		}
	}
	b = strconv.AppendInt(b, int64(p.counter), 10)
	n := &Node{
		ID:           string(b),
		Type:         req.Type,
		Zone:         "zone-a",
		BootedAt:     p.sim.Now(),
		VisibleGPUs:  req.Type.GPUs,
		VisibleCores: req.Type.Cores,
		ECCEnabled:   true,
		Healthy:      true,
	}
	if req.Type.Provider == Azure {
		p.azureNodes++
		if p.FishEveryN > 0 && p.azureNodes%p.FishEveryN == 0 {
			n.VisibleCores = 2 // the supermarket fish problem
		}
	}
	if req.Type.Provider == Azure && req.Type.GPUs > 0 && rng.Bernoulli(p.AzureECCOffProb) {
		n.ECCEnabled = false
	}
	return n
}

// Teardown deletes a cluster and charges for its full lifetime. Calling it
// twice is an error — the second charge would be double billing.
func (p *Provisioner) Teardown(c *Cluster) error {
	if c.torn {
		return fmt.Errorf("cloud: cluster %s already torn down", c.Name)
	}
	c.torn = true
	c.DeletedAt = p.sim.Now()
	life := c.DeletedAt - c.CreatedAt
	p.meter.ChargeNodeHours(c.Name[:clusterEnvLen(c.Name)], c.Type, c.Size(), life, "cluster lifetime")
	p.log.Addf(p.sim.Now(), c.Name[:clusterEnvLen(c.Name)], trace.Info, trace.Routine,
		"cluster %s deleted after %v", c.Name, life.Round(time.Second))
	return nil
}

func (p *Provisioner) nextID() int {
	p.counter++
	return p.counter
}

// clusterEnvLen recovers the env prefix length from "env-<id>".
func clusterEnvLen(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			return i
		}
	}
	return len(name)
}
