package cloud

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// harness builds the full cloud stack for tests.
func harness(seed uint64) (*sim.Simulation, *trace.Log, *Meter, *QuotaManager, *Provisioner, *Catalog) {
	s := sim.New(seed)
	log := trace.NewLog()
	meter := NewMeter(s, log)
	quota := NewQuotaManager(s, log)
	placement := NewPlacementService(s, log)
	prov := NewProvisioner(s, log, meter, quota, placement)
	return s, log, meter, quota, prov, NewCatalog()
}

func TestProvisionHappyPathGKE(t *testing.T) {
	t.Parallel()
	_, _, _, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(Google, "c2d-standard-112")
	quota.Request(Google, CPU, 256)
	c, err := prov.Provision(ProvisionRequest{Env: "google-gke-cpu", Type: it, Nodes: 64, Kubernetes: true})
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if c.Size() != 64 {
		t.Fatalf("size = %d, want 64", c.Size())
	}
	if !c.Placement.Full() {
		t.Fatalf("64-node GKE cluster should get full COMPACT placement")
	}
	if c.TotalCores() != 64*56 {
		t.Fatalf("TotalCores = %d, want %d", c.TotalCores(), 64*56)
	}
}

func TestProvisionWithoutQuotaFails(t *testing.T) {
	t.Parallel()
	_, _, _, _, prov, cat := harness(1)
	it, _ := cat.Lookup(Google, "c2d-standard-112")
	_, err := prov.Provision(ProvisionRequest{Env: "google-gke-cpu", Type: it, Nodes: 8, Kubernetes: true})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

func TestAWSGPUReservationWindow(t *testing.T) {
	t.Parallel()
	s, _, _, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(AWS, "p3dn.24xlarge")
	quota.Request(AWS, GPU, 32)
	// Before the capacity block: pending.
	_, err := prov.Provision(ProvisionRequest{Env: "aws-eks-gpu", Type: it, Nodes: 32, Kubernetes: true})
	if !errors.Is(err, ErrReservationPending) {
		t.Fatalf("err = %v, want ErrReservationPending before window", err)
	}
	// Inside the 48h block (day 21+): succeeds.
	s.Clock.AdvanceTo(21*24*time.Hour + time.Hour)
	c, err := prov.Provision(ProvisionRequest{Env: "aws-eks-gpu", Type: it, Nodes: 32, Kubernetes: true})
	if err != nil {
		t.Fatalf("Provision inside window: %v", err)
	}
	if c.Size() != 32 {
		t.Fatalf("size = %d, want 32", c.Size())
	}
	// After the block closes: pending again.
	s.Clock.AdvanceTo(24 * 24 * time.Hour)
	if _, err := prov.Provision(ProvisionRequest{Env: "aws-eks-gpu", Type: it, Nodes: 32, Kubernetes: true}); !errors.Is(err, ErrReservationPending) {
		t.Fatalf("err = %v, want ErrReservationPending after window", err)
	}
}

func TestEKSPlacementGroupBugChargesAndRecovers(t *testing.T) {
	t.Parallel()
	s, log, meter, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(AWS, "p3dn.24xlarge")
	quota.Request(AWS, GPU, 32)
	s.Clock.AdvanceTo(21*24*time.Hour + time.Hour)
	before := meter.Spend(AWS)
	c, err := prov.Provision(ProvisionRequest{Env: "aws-eks-gpu", Type: it, Nodes: 32, Kubernetes: true})
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if c.Size() != 32 {
		t.Fatalf("cluster should eventually be full size")
	}
	if meter.Spend(AWS) <= before {
		t.Fatalf("the placement group bug must cost money")
	}
	found := false
	for _, e := range log.ByEnv("aws-eks-gpu") {
		if e.Severity == trace.Blocking && strings.Contains(e.Msg, "placement group") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a blocking placement-group event in the trace")
	}
}

func TestEKS256StuckProvisioningOnRecreation(t *testing.T) {
	t.Parallel()
	_, log, meter, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(AWS, "Hpc6a")
	quota.Request(AWS, CPU, 256)
	// First bring-up of the study size works cleanly.
	c1, err := prov.Provision(ProvisionRequest{Env: "aws-eks-cpu", Type: it, Nodes: 256, Kubernetes: true})
	if err != nil || c1.Size() != 256 {
		t.Fatalf("first 256-node bring-up should work: %v", err)
	}
	before := meter.Spend(AWS)
	// Recreating it (§4.1) stalls and wastes ~$2.2k waiting.
	c2, err := prov.Provision(ProvisionRequest{Env: "aws-eks-cpu", Type: it, Nodes: 256, Kubernetes: true})
	if err != nil || c2.Size() != 256 {
		t.Fatalf("recreation eventually completes: %v", err)
	}
	waste := meter.Spend(AWS) - before
	if waste < 1500 || waste > 4000 {
		t.Fatalf("stuck recreation waste = $%.0f, want ~$2.2k", waste)
	}
	var sawStall bool
	for _, e := range log.ByEnv("aws-eks-cpu") {
		if strings.Contains(e.Msg, "never provisioned") {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatalf("expected stall event in trace")
	}
}

func TestSupermarketFishDeterministic(t *testing.T) {
	t.Parallel()
	_, _, _, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(Azure, "HB96rs v3")
	quota.Request(Azure, CPU, 512)
	prov.FishEveryN = 100
	var fish int
	for _, n := range []int{128, 128} {
		c, err := prov.Provision(ProvisionRequest{Env: "azure-aks-cpu", Type: it, Nodes: n, Kubernetes: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range c.Nodes {
			if node.DefectiveCPU() {
				fish++
			}
		}
	}
	if fish != 2 {
		t.Fatalf("fish injection: got %d anomalous nodes in 256 bring-ups with N=100, want 2", fish)
	}
}

func TestAzureGPUDefectNeedsSpareQuota(t *testing.T) {
	t.Parallel()
	// Without spare quota, the sticky 7/8-GPU node kills the bring-up.
	_, _, _, quota, prov, cat := harness(3)
	it, _ := cat.Lookup(Azure, "ND40rs v2")
	quota.Request(Azure, GPU, 33)
	prov.AzureGPUDefectProb = 1.0
	_, err := prov.Provision(ProvisionRequest{Env: "azure-aks-gpu", Type: it, Nodes: 32, Kubernetes: true})
	if !errors.Is(err, ErrProvisionFailed) {
		t.Fatalf("err = %v, want ErrProvisionFailed without spare quota", err)
	}
	// With spare quota (the study asked for 33 nodes), recovery works.
	c, err := prov.Provision(ProvisionRequest{Env: "azure-aks-gpu", Type: it, Nodes: 32, Kubernetes: true, AllowSpareNode: true})
	if err != nil {
		t.Fatalf("Provision with spare: %v", err)
	}
	for _, n := range c.Nodes {
		if n.DefectiveGPU() {
			t.Fatalf("defective node should have been replaced")
		}
	}
}

func TestAzureECCInconsistency(t *testing.T) {
	t.Parallel()
	_, _, _, quota, prov, cat := harness(7)
	quota.Request(Azure, GPU, 33)
	quota.Request(Google, GPU, 32)
	itAz, _ := cat.Lookup(Azure, "ND40rs v2")
	itG, _ := cat.Lookup(Google, "n1-standard-32")
	az, err := prov.Provision(ProvisionRequest{Env: "azure-aks-gpu", Type: itAz, Nodes: 32, Kubernetes: true, AllowSpareNode: true})
	if err != nil {
		t.Fatalf("azure: %v", err)
	}
	g, err := prov.Provision(ProvisionRequest{Env: "google-gke-gpu", Type: itG, Nodes: 32, Kubernetes: true})
	if err != nil {
		t.Fatalf("google: %v", err)
	}
	offAz := 0
	for _, n := range az.Nodes {
		if !n.ECCEnabled {
			offAz++
		}
	}
	if offAz == 0 {
		t.Fatalf("Azure fleet should contain ECC-off nodes (paper: 12.5–25%% off)")
	}
	for _, n := range g.Nodes {
		if !n.ECCEnabled {
			t.Fatalf("non-Azure clouds must have ECC on everywhere")
		}
	}
}

func TestTeardownChargesLifetimeOnce(t *testing.T) {
	t.Parallel()
	s, _, meter, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(Google, "c2d-standard-112")
	quota.Request(Google, CPU, 64)
	c, err := prov.Provision(ProvisionRequest{Env: "google-ce-cpu", Type: it, Nodes: 64})
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	s.Clock.Advance(2 * time.Hour)
	before := meter.Spend(Google)
	if err := prov.Teardown(c); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	charged := meter.Spend(Google) - before
	want := 64 * 2.0 * 5.06 // approximately: 64 nodes × ≥2h × $5.06
	if charged < want {
		t.Fatalf("lifetime charge = $%.2f, want ≥ $%.2f", charged, want)
	}
	if err := prov.Teardown(c); err == nil {
		t.Fatalf("double teardown must error (double billing)")
	}
}

func TestProvisionRejectsZeroNodes(t *testing.T) {
	t.Parallel()
	_, _, _, _, prov, cat := harness(1)
	it, _ := cat.Lookup(AWS, "Hpc6a")
	if _, err := prov.Provision(ProvisionRequest{Env: "x", Type: it, Nodes: 0}); err == nil {
		t.Fatalf("expected error for zero nodes")
	}
}

func TestBootLatencyGrowsWithSize(t *testing.T) {
	t.Parallel()
	s, _, _, quota, prov, cat := harness(1)
	it, _ := cat.Lookup(Google, "c2d-standard-112")
	quota.Request(Google, CPU, 256)
	start := s.Now()
	if _, err := prov.Provision(ProvisionRequest{Env: "g32", Type: it, Nodes: 32}); err != nil {
		t.Fatal(err)
	}
	small := s.Now() - start
	start = s.Now()
	if _, err := prov.Provision(ProvisionRequest{Env: "g256", Type: it, Nodes: 256}); err != nil {
		t.Fatal(err)
	}
	large := s.Now() - start
	if large <= small {
		t.Fatalf("256-node bring-up (%v) should take longer than 32-node (%v)", large, small)
	}
}
