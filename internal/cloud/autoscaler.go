package cloud

import (
	"fmt"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Autoscaler is the *active* counterpart to the cost formulas in
// autoscale.go: an event-driven controller that grows a worker pool when
// demand appears and shrinks it after idleness, paying real provisioning
// latency and billing real node-hours. It reproduces the §4.1 dynamics —
// a small persistent head, workers that lag demand by the scale-up
// delay, and the cost of nodes going up and down relative to the work.
type Autoscaler struct {
	sim   *sim.Simulation
	log   *trace.Log
	meter *Meter
	env   string
	itype InstanceType

	// MinWorkers/MaxWorkers bound the pool (head node excluded).
	MinWorkers int
	MaxWorkers int
	// ScaleUpDelay is the provisioning latency for new workers.
	ScaleUpDelay time.Duration
	// IdleTimeout is how long a surplus worker lingers before removal.
	IdleTimeout time.Duration

	workers   int
	pending   int // workers currently booting
	demand    int
	lastBusy  time.Duration
	opsUp     int
	opsDown   int
	idleCheck bool
}

// NewAutoscaler creates a controller billing against the meter.
func NewAutoscaler(s *sim.Simulation, log *trace.Log, meter *Meter, env string, it InstanceType) *Autoscaler {
	return &Autoscaler{
		sim: s, log: log, meter: meter, env: env, itype: it,
		MaxWorkers: 256, ScaleUpDelay: 5 * time.Minute, IdleTimeout: 10 * time.Minute,
	}
}

// Workers reports ready workers; Pending reports workers still booting.
func (a *Autoscaler) Workers() int { return a.workers }
func (a *Autoscaler) Pending() int { return a.pending }

// Ops reports (scale-up, scale-down) operation counts — the §4.1 metric
// to minimize.
func (a *Autoscaler) Ops() (up, down int) { return a.opsUp, a.opsDown }

// SetDemand tells the controller how many workers the queue currently
// needs; it reacts by scaling up (with delay) or arming the idle timer.
func (a *Autoscaler) SetDemand(n int) error {
	if n < 0 {
		return fmt.Errorf("cloud: negative demand %d", n)
	}
	a.demand = n
	a.reconcile()
	return nil
}

// reconcile drives the pool toward the demand.
func (a *Autoscaler) reconcile() {
	want := a.demand
	if want < a.MinWorkers {
		want = a.MinWorkers
	}
	if want > a.MaxWorkers {
		want = a.MaxWorkers
	}
	switch {
	case a.workers+a.pending < want:
		add := want - a.workers - a.pending
		a.pending += add
		a.opsUp++
		a.log.Addf(a.sim.Now(), a.env, trace.Info, trace.Routine,
			"autoscaler: scaling up by %d workers (op %d)", add, a.opsUp)
		a.sim.After(a.ScaleUpDelay, "workers ready", func() {
			// Bill boot time: nodes charge from request, not readiness.
			a.meter.ChargeNodeHours(a.env, a.itype, add, a.ScaleUpDelay, "worker boot")
			a.pending -= add
			a.workers += add
		})
	case a.workers > want:
		a.lastBusy = a.sim.Now()
		if !a.idleCheck {
			a.idleCheck = true
			a.armIdleTimer()
		}
	}
}

// armIdleTimer schedules the scale-down check.
func (a *Autoscaler) armIdleTimer() {
	a.sim.After(a.IdleTimeout, "idle check", func() {
		a.idleCheck = false
		want := a.demand
		if want < a.MinWorkers {
			want = a.MinWorkers
		}
		if a.workers > want && a.sim.Now()-a.lastBusy >= a.IdleTimeout {
			drop := a.workers - want
			// Idle lingering bills too.
			a.meter.ChargeNodeHours(a.env, a.itype, drop, a.IdleTimeout, "idle lingering before scale-down")
			a.workers = want
			a.opsDown++
			a.log.Addf(a.sim.Now(), a.env, trace.Info, trace.Routine,
				"autoscaler: scaled down by %d workers (op %d)", drop, a.opsDown)
		} else if a.workers > want {
			a.idleCheck = true
			a.armIdleTimer()
		}
	})
}

// RunBusy bills d of work on n workers (the caller's job accounting).
func (a *Autoscaler) RunBusy(n int, d time.Duration) error {
	if n > a.workers {
		return fmt.Errorf("cloud: %d workers busy but only %d ready", n, a.workers)
	}
	a.meter.ChargeNodeHours(a.env, a.itype, n, d, "busy workers")
	a.lastBusy = a.sim.Now() + d
	return nil
}
