package cloud

import (
	"fmt"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// PlacementKind names a provider's co-location mechanism (paper §2.6).
type PlacementKind string

const (
	// AWSClusterPlacement packs nodes closely in one availability zone.
	AWSClusterPlacement PlacementKind = "aws-cluster-placement-group"
	// AzureProximity creates instances in a single datacenter; in the study
	// it would not complete for 100 nodes or more on AKS.
	AzureProximity PlacementKind = "azure-proximity-placement-group"
	// GCPCompact places nodes in the same zone; at study time it was
	// available up to 150 nodes on GKE and unavailable on Compute Engine.
	GCPCompact PlacementKind = "gcp-compact-placement"
	// NoPlacement means no co-location was requested or possible.
	NoPlacement PlacementKind = "none"
)

// PlacementResult describes what a placement request actually achieved.
type PlacementResult struct {
	Kind      PlacementKind
	Requested int
	// Colocated is how many nodes ended up genuinely co-located. On AKS
	// beyond 100 nodes the interface reported "Colocation status is
	// currently unknown" and only a subset were included.
	Colocated int
	// StatusUnknown mirrors the AKS portal message for large groups.
	StatusUnknown bool
}

// Full reports whether every requested node is co-located.
func (r PlacementResult) Full() bool { return r.Colocated >= r.Requested && r.Requested > 0 }

// PlacementService models per-provider placement behaviour.
type PlacementService struct {
	sim *sim.Simulation
	log *trace.Log

	// GKECompactLimit is the maximum COMPACT size on GKE (150 at study
	// time; the paper notes it was later raised to 1500).
	GKECompactLimit int
	// AzureProximityLimit is the node count at and beyond which AKS
	// proximity placement stopped completing (100 in the study).
	AzureProximityLimit int
}

// NewPlacementService returns placement behaviour as observed in the study.
func NewPlacementService(s *sim.Simulation, log *trace.Log) *PlacementService {
	return &PlacementService{sim: s, log: log, GKECompactLimit: 150, AzureProximityLimit: 100}
}

// Request asks for co-location of n nodes in the named environment.
// kubernetes distinguishes GKE (COMPACT supported) from Compute Engine
// (COMPACT unavailable at study time).
func (ps *PlacementService) Request(p Provider, env string, n int, kubernetes bool) PlacementResult {
	switch p {
	case AWS:
		// A cluster placement group packs nodes in one AZ. (A separate
		// bug — the erroneously created placement group during EKS GPU
		// acquisition — is modelled in the provisioner, not here.)
		return ps.record(env, PlacementResult{Kind: AWSClusterPlacement, Requested: n, Colocated: n})
	case Azure:
		if n >= ps.AzureProximityLimit {
			// The operation does not complete; a manually scaled cluster
			// reports unknown colocation status with a strict subset
			// actually co-located.
			res := PlacementResult{
				Kind: AzureProximity, Requested: n,
				Colocated:     ps.AzureProximityLimit / 2,
				StatusUnknown: true,
			}
			ps.log.Addf(ps.sim.Now(), env, trace.Manual, trace.Blocking,
				"proximity placement group did not complete for %d nodes; colocation status unknown", n)
			return res
		}
		return ps.record(env, PlacementResult{Kind: AzureProximity, Requested: n, Colocated: n})
	case Google:
		if !kubernetes {
			// Compute Engine: no study size obtained COMPACT placement.
			ps.log.Addf(ps.sim.Now(), env, trace.Setup, trace.Unexpected,
				"COMPACT placement unavailable for Compute Engine at size %d", n)
			return PlacementResult{Kind: NoPlacement, Requested: n}
		}
		if n > ps.GKECompactLimit {
			// A documented product limit, not a debugging surprise — the
			// study simply got COMPACT up to the cap.
			ps.log.Addf(ps.sim.Now(), env, trace.Setup, trace.Routine,
				"COMPACT placement capped at %d nodes (requested %d)", ps.GKECompactLimit, n)
			return PlacementResult{Kind: GCPCompact, Requested: n, Colocated: ps.GKECompactLimit}
		}
		return ps.record(env, PlacementResult{Kind: GCPCompact, Requested: n, Colocated: n})
	case OnPrem:
		// The center's fabric is flat low-latency; placement is implicit.
		return PlacementResult{Kind: NoPlacement, Requested: n, Colocated: n}
	default:
		panic(fmt.Sprintf("cloud: unknown provider %q", p))
	}
}

func (ps *PlacementService) record(env string, r PlacementResult) PlacementResult {
	ps.log.Addf(ps.sim.Now(), env, trace.Setup, trace.Routine,
		"placement %s: %d/%d nodes colocated", r.Kind, r.Colocated, r.Requested)
	return r
}
