package cloud

import "time"

// The paper's §4.1 recommends auto-scaling only for infrequent batches of
// work, and static clusters of exactly the sizes needed when experiments
// are well defined. This file provides the two cost models the
// BenchmarkAutoscalingTradeoff ablation compares.

// WorkloadPhase is one burst of work in a plan: Width nodes busy for Busy,
// followed by Idle of no work before the next phase.
type WorkloadPhase struct {
	Width int
	Busy  time.Duration
	Idle  time.Duration
}

// AutoscaleConfig describes an autoscaler: a persistent head node plus
// scale-up latency paid at every phase boundary (nodes bill while booting).
type AutoscaleConfig struct {
	HeadNodes    int
	ScaleUpDelay time.Duration // per scale-up operation
	ScaleDownLag time.Duration // nodes linger after work completes
}

// StaticClusterCost prices running the whole plan on a fixed cluster sized
// to the widest phase, held up for the entire plan duration.
func StaticClusterCost(it InstanceType, plan []WorkloadPhase) float64 {
	width := 0
	var total time.Duration
	for _, ph := range plan {
		if ph.Width > width {
			width = ph.Width
		}
		total += ph.Busy + ph.Idle
	}
	return float64(width) * total.Hours() * it.HourlyUSD
}

// AutoscaleCost prices the same plan with an autoscaler: the head stays up
// for the whole plan; workers bill for busy time plus scale-up delay plus
// scale-down lag of each phase.
func AutoscaleCost(it InstanceType, cfg AutoscaleConfig, plan []WorkloadPhase) float64 {
	var total time.Duration
	var workerCost float64
	for _, ph := range plan {
		total += ph.Busy + ph.Idle
		up := ph.Busy + cfg.ScaleUpDelay + cfg.ScaleDownLag
		workerCost += float64(ph.Width-cfg.HeadNodes) * up.Hours() * it.HourlyUSD
	}
	headCost := float64(cfg.HeadNodes) * total.Hours() * it.HourlyUSD
	return headCost + workerCost
}

// ExactStaticCost prices the paper's preferred strategy for well-defined
// experiments: bring up a static cluster of exactly each phase's size for
// exactly its busy time (no idle, no autoscaler churn).
func ExactStaticCost(it InstanceType, plan []WorkloadPhase) float64 {
	var cost float64
	for _, ph := range plan {
		cost += float64(ph.Width) * ph.Busy.Hours() * it.HourlyUSD
	}
	return cost
}
