package cloud

import (
	"testing"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func newPlacement() (*PlacementService, *trace.Log) {
	s := sim.New(1)
	log := trace.NewLog()
	return NewPlacementService(s, log), log
}

func TestAWSPlacementAlwaysFull(t *testing.T) {
	t.Parallel()
	ps, _ := newPlacement()
	for _, n := range []int{32, 64, 128, 256} {
		r := ps.Request(AWS, "aws-pc-cpu", n, false)
		if !r.Full() || r.Kind != AWSClusterPlacement {
			t.Fatalf("AWS placement at %d nodes: %+v", n, r)
		}
	}
}

func TestAzureProximityFailsAtOrAbove100(t *testing.T) {
	t.Parallel()
	ps, log := newPlacement()
	ok := ps.Request(Azure, "azure-aks-cpu", 64, true)
	if !ok.Full() {
		t.Fatalf("64-node proximity group should complete: %+v", ok)
	}
	bad := ps.Request(Azure, "azure-aks-cpu", 128, true)
	if bad.Full() {
		t.Fatalf("128-node proximity group must not complete")
	}
	if !bad.StatusUnknown {
		t.Fatalf("large Azure groups report unknown colocation status")
	}
	if bad.Colocated >= bad.Requested {
		t.Fatalf("only a subset of nodes should be colocated")
	}
	hard := log.Filter(func(e trace.Event) bool { return e.Severity == trace.Blocking })
	if len(hard) == 0 {
		t.Fatalf("failed proximity placement should log a blocking manual-intervention event")
	}
}

func TestGKECompactLimit(t *testing.T) {
	t.Parallel()
	ps, _ := newPlacement()
	r := ps.Request(Google, "google-gke-cpu", 128, true)
	if !r.Full() {
		t.Fatalf("GKE COMPACT up to 128 nodes worked in the study: %+v", r)
	}
	big := ps.Request(Google, "google-gke-cpu", 256, true)
	if big.Full() {
		t.Fatalf("COMPACT was capped at 150 nodes")
	}
	if big.Colocated != 150 {
		t.Fatalf("capped colocation = %d, want 150", big.Colocated)
	}
}

func TestComputeEngineNoCompact(t *testing.T) {
	t.Parallel()
	ps, _ := newPlacement()
	r := ps.Request(Google, "google-ce-cpu", 32, false)
	if r.Kind != NoPlacement || r.Colocated != 0 {
		t.Fatalf("Compute Engine never obtained COMPACT in the study: %+v", r)
	}
}

func TestOnPremPlacementImplicit(t *testing.T) {
	t.Parallel()
	ps, _ := newPlacement()
	r := ps.Request(OnPrem, "onprem-cpu", 256, false)
	if !r.Full() {
		t.Fatalf("on-prem fabric is implicitly colocated: %+v", r)
	}
}

func TestPlacementFullZeroRequested(t *testing.T) {
	t.Parallel()
	var r PlacementResult
	if r.Full() {
		t.Fatalf("zero-value placement must not report Full")
	}
}
