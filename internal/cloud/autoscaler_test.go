package cloud

import (
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func newAS(seed uint64) (*sim.Simulation, *Meter, *Autoscaler) {
	s := sim.New(seed)
	log := trace.NewLog()
	meter := NewMeter(s, log)
	it := InstanceType{Name: "Hpc6a", Provider: AWS, HourlyUSD: 2.88}
	return s, meter, NewAutoscaler(s, log, meter, "aws-autoscale", it)
}

func TestScaleUpPaysDelayAndMoney(t *testing.T) {
	t.Parallel()
	s, meter, as := newAS(1)
	if err := as.SetDemand(16); err != nil {
		t.Fatal(err)
	}
	if as.Workers() != 0 || as.Pending() != 16 {
		t.Fatalf("workers should boot asynchronously: %d/%d", as.Workers(), as.Pending())
	}
	s.Run()
	if as.Workers() != 16 || as.Pending() != 0 {
		t.Fatalf("after boot: %d/%d", as.Workers(), as.Pending())
	}
	if s.Now() != as.ScaleUpDelay {
		t.Fatalf("scale-up took %v", s.Now())
	}
	if meter.Spend(AWS) == 0 {
		t.Fatalf("boot time must bill")
	}
}

func TestScaleDownAfterIdleTimeout(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(2)
	as.SetDemand(8)
	s.Run()
	as.SetDemand(0)
	s.Run()
	if as.Workers() != 0 {
		t.Fatalf("idle workers should be removed: %d left", as.Workers())
	}
	up, down := as.Ops()
	if up != 1 || down != 1 {
		t.Fatalf("ops = %d up / %d down", up, down)
	}
}

func TestMinWorkersFloor(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(3)
	as.MinWorkers = 1 // the persistent head
	as.SetDemand(4)
	s.Run()
	as.SetDemand(0)
	s.Run()
	if as.Workers() != 1 {
		t.Fatalf("head should survive scale-down: %d", as.Workers())
	}
}

func TestMaxWorkersCap(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(4)
	as.MaxWorkers = 10
	as.SetDemand(500)
	s.Run()
	if as.Workers() != 10 {
		t.Fatalf("cap ignored: %d", as.Workers())
	}
}

func TestDemandDuringBootCoalesces(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(5)
	as.SetDemand(4)
	as.SetDemand(8) // more demand while the first batch boots
	s.Run()
	if as.Workers() != 8 {
		t.Fatalf("workers = %d, want 8", as.Workers())
	}
	up, _ := as.Ops()
	if up != 2 {
		t.Fatalf("two scale-up operations expected, got %d", up)
	}
}

func TestBusyWorkDefersScaleDown(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(6)
	as.SetDemand(4)
	s.Run()
	if err := as.RunBusy(4, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	as.SetDemand(0)
	s.RunUntil(s.Now() + as.IdleTimeout/2)
	if as.Workers() == 0 {
		t.Fatalf("scale-down before the idle timeout")
	}
	s.Run()
	if as.Workers() != 0 {
		t.Fatalf("eventually idle workers must go: %d", as.Workers())
	}
}

func TestRunBusyRejectsOversubscription(t *testing.T) {
	t.Parallel()
	s, _, as := newAS(7)
	as.SetDemand(2)
	s.Run()
	if err := as.RunBusy(5, time.Minute); err == nil {
		t.Fatalf("cannot run on more workers than exist")
	}
	if err := as.SetDemand(-1); err == nil {
		t.Fatalf("negative demand accepted")
	}
}

func TestAutoscalerChurnCostVsStatic(t *testing.T) {
	t.Parallel()
	// §4.1 quantified: frequent small batches make the autoscaler pay
	// boot + idle-linger per batch; a static pool pays constant uptime.
	// For dense work the static pool wins; the formulas in autoscale.go
	// agree with the event-driven controller's accounting.
	s, meter, as := newAS(8)
	as.MinWorkers = 0
	for batch := 0; batch < 4; batch++ {
		as.SetDemand(8)
		s.Run()
		as.RunBusy(8, 10*time.Minute)
		s.Clock.Advance(10 * time.Minute)
		as.SetDemand(0)
		s.Run()
	}
	churn := meter.Spend(AWS)
	// Static equivalent: 8 nodes held for the whole span.
	static := 8.0 * s.Now().Hours() * 2.88
	if churn <= static*0.5 {
		t.Fatalf("dense batches should make churn comparable to static: $%.2f vs $%.2f", churn, static)
	}
	up, down := as.Ops()
	if up != 4 || down != 4 {
		t.Fatalf("ops = %d/%d, want 4/4", up, down)
	}
}
