package cloud

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"cloudhpc/internal/jsonl"
	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

// Meter accrues instance-hour charges per environment and models the
// per-provider cost-reporting lag the paper warns about (§4.2: usage data
// may not appear until the next day, so overspending is hard to catch).
// A Meter is safe for concurrent use: budget accounting is serialized by an
// internal mutex so parallel environment runners can share one instance or
// merge private ones afterwards (see Merge).
type Meter struct {
	sim *sim.Simulation
	log *trace.Log

	// ReportingLag is how stale each provider's billing view is.
	ReportingLag map[Provider]time.Duration

	mu      sync.Mutex
	charges []charge
	budgets map[Provider]float64
}

type charge struct {
	at     time.Duration
	prov   Provider
	env    string
	amount float64
	note   string
}

// NewMeter returns a meter with the study's reporting lags: roughly a day
// for the clouds, zero for on-prem (no billing at all).
func NewMeter(s *sim.Simulation, log *trace.Log) *Meter {
	return &Meter{
		sim: s,
		log: log,
		ReportingLag: map[Provider]time.Duration{
			AWS:    24 * time.Hour,
			Azure:  24 * time.Hour,
			Google: 12 * time.Hour,
			OnPrem: 0,
		},
		budgets: make(map[Provider]float64),
	}
}

// SetBudget sets the per-cloud budget ($49,000 per cloud in the study).
func (m *Meter) SetBudget(p Provider, usd float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budgets[p] = usd
}

// Budget returns the configured budget for a provider (0 if unset).
func (m *Meter) Budget(p Provider) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budgets[p]
}

// Budgets returns a copy of every configured budget. Environment shards use
// it to inherit the parent study's budgets, including test overrides.
func (m *Meter) Budgets() map[Provider]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Provider]float64, len(m.budgets))
	for p, b := range m.budgets {
		out[p] = b
	}
	return out
}

// Merge appends every charge of src with its timestamp shifted forward by
// shift, preserving src's charge order. It is the billing half of sharded
// study execution: each shard meters into a private Meter on a timeline
// starting at zero, and the merger lays the shards end to end. Budgets and
// reporting lags of src are not copied — the receiver keeps its own.
func (m *Meter) Merge(src *Meter, shift time.Duration) {
	src.mu.Lock()
	charges := make([]charge, len(src.charges))
	copy(charges, src.charges)
	src.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range charges {
		c.at += shift
		m.charges = append(m.charges, c)
	}
}

// ChargeNodeHours bills a cluster: nodes × duration × hourly rate.
// It returns the charged amount.
func (m *Meter) ChargeNodeHours(env string, it InstanceType, nodes int, d time.Duration, note string) float64 {
	amount := float64(nodes) * d.Hours() * it.HourlyUSD
	if amount == 0 {
		return 0
	}
	m.mu.Lock()
	m.charges = append(m.charges, charge{at: m.sim.Now(), prov: it.Provider, env: env, amount: amount, note: note})
	m.mu.Unlock()
	// Hand-built "charge: %d × %s × %.2fh (%s)" — one per teardown,
	// debug window, and reservation wait across the whole study.
	var a [96]byte
	b := append(a[:0], "charge: "...)
	b = strconv.AppendInt(b, int64(nodes), 10)
	b = append(b, " × "...)
	b = append(b, it.Name...)
	b = append(b, " × "...)
	b = strconv.AppendFloat(b, d.Hours(), 'f', 2, 64)
	b = append(b, "h ("...)
	b = append(b, note...)
	b = append(b, ')')
	m.log.Add(trace.Event{
		At: m.sim.Now(), Env: env, Category: trace.Billing, Severity: trace.Routine,
		Msg:  string(b),
		Cost: amount,
	})
	return amount
}

// Charge records an arbitrary amount (e.g. wasted spend while waiting for
// nodes that never provisioned).
func (m *Meter) Charge(p Provider, env string, usd float64, note string) {
	m.mu.Lock()
	m.charges = append(m.charges, charge{at: m.sim.Now(), prov: p, env: env, amount: usd, note: note})
	m.mu.Unlock()
	m.log.Add(trace.Event{
		At: m.sim.Now(), Env: env, Category: trace.Billing, Severity: trace.Unexpected,
		Msg: note, Cost: usd,
	})
}

// Spend returns total actual spend for a provider ("" sums all providers).
func (m *Meter) Spend(p Provider) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spendLocked(p)
}

func (m *Meter) spendLocked(p Provider) float64 {
	var sum float64
	for _, c := range m.charges {
		if p == "" || c.prov == p {
			sum += c.amount
		}
	}
	return sum
}

// SpendByEnv returns total spend keyed by environment.
func (m *Meter) SpendByEnv() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64)
	for _, c := range m.charges {
		out[c.env] += c.amount
	}
	return out
}

// ReportedSpend returns the spend *visible* to the user right now given the
// provider's reporting lag — charges newer than the lag are invisible.
func (m *Meter) ReportedSpend(p Provider) float64 {
	lag := m.ReportingLag[p]
	horizon := m.sim.Now() - lag
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for _, c := range m.charges {
		if c.prov == p && c.at <= horizon {
			sum += c.amount
		}
	}
	return sum
}

// UnreportedSpend is actual minus reported — the blind spot that makes
// retroactive overspend impossible to fix.
func (m *Meter) UnreportedSpend(p Provider) float64 {
	return m.Spend(p) - m.ReportedSpend(p)
}

// OverBudget reports whether actual spend exceeds the budget (if set).
func (m *Meter) OverBudget(p Provider) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.budgets[p]
	return ok && m.spendLocked(p) > b
}

// Statement renders a per-environment cost summary sorted by total cost
// ascending, mirroring the layout of the paper's Table 4.
func (m *Meter) Statement() []EnvCost {
	byEnv := m.SpendByEnv()
	out := make([]EnvCost, 0, len(byEnv))
	for env, usd := range byEnv {
		out = append(out, EnvCost{Env: env, TotalUSD: usd})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUSD != out[j].TotalUSD {
			return out[i].TotalUSD < out[j].TotalUSD
		}
		return out[i].Env < out[j].Env
	})
	return out
}

// EnvCost is one row of a cost statement.
type EnvCost struct {
	Env      string
	TotalUSD float64
}

// Now returns the meter's current virtual time — the timestamp new
// charges would carry. The persistent result store saves it alongside
// the charge ledger so a restored meter reports lagged spend exactly as
// the live one did at end of study.
func (m *Meter) Now() time.Duration { return m.sim.Now() }

// ChargeRecord is the archived wire form of one charge, used by the
// persistent result store to serialize a meter's ledger.
type ChargeRecord struct {
	AtNs      int64    `json:"at_ns"`
	Provider  Provider `json:"provider"`
	Env       string   `json:"env"`
	AmountUSD float64  `json:"amount_usd"`
	Note      string   `json:"note,omitempty"`
}

// MarshalCharges encodes the meter's ledger as JSON lines in charge
// order.
func (m *Meter) MarshalCharges() ([]byte, error) {
	m.mu.Lock()
	recs := make([]ChargeRecord, len(m.charges))
	for i, c := range m.charges {
		recs[i] = ChargeRecord{AtNs: int64(c.at), Provider: c.prov, Env: c.env, AmountUSD: c.amount, Note: c.note}
	}
	m.mu.Unlock()
	return jsonl.Marshal(recs)
}

// UnmarshalCharges decodes a ledger serialized by MarshalCharges.
func UnmarshalCharges(data []byte) ([]ChargeRecord, error) {
	return jsonl.Unmarshal[ChargeRecord]("cloud: charges", data)
}

// RestoreCharges appends archived charges to the ledger verbatim,
// without re-logging billing events (the restored trace already carries
// them). It is the decode half of the persistent result store's meter
// round trip: a meter restored from MarshalCharges output reports the
// same Spend, SpendByEnv, and — given the saved clock — ReportedSpend as
// the meter it was saved from.
func (m *Meter) RestoreCharges(recs []ChargeRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		m.charges = append(m.charges, charge{
			at: time.Duration(rec.AtNs), prov: rec.Provider, env: rec.Env,
			amount: rec.AmountUSD, note: rec.Note,
		})
	}
}
