package cloud

import (
	"errors"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func TestQuotaGrantAndCheck(t *testing.T) {
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(Google, CPU, 256)
	if qm.Granted(Google, CPU) != 256 {
		t.Fatalf("granted = %d, want 256", qm.Granted(Google, CPU))
	}
	if err := qm.Check(Google, CPU, 128); err != nil {
		t.Fatalf("Check within grant: %v", err)
	}
	if err := qm.Check(Google, CPU, 512); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Check above grant = %v, want ErrQuotaExceeded", err)
	}
}

func TestQuotaCheckWithoutRequest(t *testing.T) {
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	if err := qm.Check(Azure, GPU, 8); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("unrequested quota should fail: %v", err)
	}
}

func TestQuotaRequestIsMonotonic(t *testing.T) {
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(Azure, GPU, 33)
	qm.Request(Azure, GPU, 8) // smaller request must not shrink the grant
	if qm.Granted(Azure, GPU) != 33 {
		t.Fatalf("granted = %d, want 33", qm.Granted(Azure, GPU))
	}
}

func TestGrantDelay(t *testing.T) {
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.SetPolicy(Google, GPU, QuotaPolicy{GrantDelay: 2 * time.Hour, GuaranteesCapacity: true})
	qm.Request(Google, GPU, 32)
	if err := qm.Check(Google, GPU, 32); !errors.Is(err, ErrReservationPending) {
		t.Fatalf("inside grant delay: %v, want pending", err)
	}
	s.Clock.Advance(3 * time.Hour)
	if err := qm.Check(Google, GPU, 32); err != nil {
		t.Fatalf("after grant delay: %v", err)
	}
}

func TestAWSGPUPolicyIsWindowed(t *testing.T) {
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	pol := qm.Policy(AWS, GPU)
	if pol.ReservationWindow != 48*time.Hour {
		t.Fatalf("AWS GPU window = %v, want 48h", pol.ReservationWindow)
	}
	if pol.GuaranteesCapacity {
		t.Fatalf("AWS GPU quota must not guarantee capacity (paper §4.2)")
	}
	if qm.Policy(Azure, GPU).GuaranteesCapacity != true {
		t.Fatalf("Azure quota was a confident assurance in the study")
	}
}
