package cloud

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func TestQuotaGrantAndCheck(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(Google, CPU, 256)
	if qm.Granted(Google, CPU) != 256 {
		t.Fatalf("granted = %d, want 256", qm.Granted(Google, CPU))
	}
	if err := qm.Check(Google, CPU, 128); err != nil {
		t.Fatalf("Check within grant: %v", err)
	}
	if err := qm.Check(Google, CPU, 512); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Check above grant = %v, want ErrQuotaExceeded", err)
	}
}

func TestQuotaCheckWithoutRequest(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	if err := qm.Check(Azure, GPU, 8); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("unrequested quota should fail: %v", err)
	}
}

func TestQuotaRequestIsMonotonic(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(Azure, GPU, 33)
	qm.Request(Azure, GPU, 8) // smaller request must not shrink the grant
	if qm.Granted(Azure, GPU) != 33 {
		t.Fatalf("granted = %d, want 33", qm.Granted(Azure, GPU))
	}
}

func TestGrantDelay(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.SetPolicy(Google, GPU, QuotaPolicy{GrantDelay: 2 * time.Hour, GuaranteesCapacity: true})
	qm.Request(Google, GPU, 32)
	if err := qm.Check(Google, GPU, 32); !errors.Is(err, ErrReservationPending) {
		t.Fatalf("inside grant delay: %v, want pending", err)
	}
	s.Clock.Advance(3 * time.Hour)
	if err := qm.Check(Google, GPU, 32); err != nil {
		t.Fatalf("after grant delay: %v", err)
	}
}

func TestQuotaRevoke(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(Azure, CPU, 256)
	if got := qm.Revoke(Azure, CPU, 100); got != 100 {
		t.Fatalf("Revoke = %d, want 100", got)
	}
	if qm.Granted(Azure, CPU) != 156 {
		t.Fatalf("granted after revoke = %d, want 156", qm.Granted(Azure, CPU))
	}
	// Revoking more than remains clamps; the grant never goes negative.
	if got := qm.Revoke(Azure, CPU, 500); got != 156 {
		t.Fatalf("clamped Revoke = %d, want 156", got)
	}
	if qm.Granted(Azure, CPU) != 0 {
		t.Fatalf("granted after clamped revoke = %d, want 0", qm.Granted(Azure, CPU))
	}
	// A revocation voids the original ask: provisioning must fail until
	// the quota is re-requested.
	if err := qm.Check(Azure, CPU, 32); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Check after full revocation = %v, want ErrQuotaExceeded", err)
	}
	qm.Request(Azure, CPU, 256)
	if err := qm.Check(Azure, CPU, 256); err != nil {
		t.Fatalf("Check after re-request: %v", err)
	}
	// Revoking from an untouched (provider, accelerator) is a no-op.
	if got := qm.Revoke(Google, GPU, 5); got != 0 {
		t.Fatalf("Revoke on empty grant = %d, want 0", got)
	}
	if got := qm.Revoke(Azure, CPU, -3); got != 0 {
		t.Fatalf("negative Revoke = %d, want 0", got)
	}
}

// TestQuotaManagerConcurrentRevoke hammers the revocation path together
// with grants and checks from many goroutines; run with -race (the CI
// race matrix does) to prove the new fault path is lock-correct.
func TestQuotaManagerConcurrentRevoke(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	qm.Request(AWS, CPU, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				qm.Request(AWS, CPU, 1<<20)
				qm.Revoke(AWS, CPU, 64)
				qm.Granted(AWS, CPU)
				_ = qm.Check(AWS, CPU, 32)
				qm.Policy(AWS, CPU)
			}
		}()
	}
	wg.Wait()
	if g := qm.Granted(AWS, CPU); g < 0 || g > 1<<20 {
		t.Fatalf("granted quota out of range after concurrent revokes: %d", g)
	}
}

func TestAWSGPUPolicyIsWindowed(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	qm := NewQuotaManager(s, trace.NewLog())
	pol := qm.Policy(AWS, GPU)
	if pol.ReservationWindow != 48*time.Hour {
		t.Fatalf("AWS GPU window = %v, want 48h", pol.ReservationWindow)
	}
	if pol.GuaranteesCapacity {
		t.Fatalf("AWS GPU quota must not guarantee capacity (paper §4.2)")
	}
	if qm.Policy(Azure, GPU).GuaranteesCapacity != true {
		t.Fatalf("Azure quota was a confident assurance in the study")
	}
}
