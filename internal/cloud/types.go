// Package cloud simulates the infrastructure substrate of the study: the
// three public cloud providers plus the on-premises center, their instance
// catalogs (paper Table 2), quota and reservation behaviour, placement
// groups, cluster provisioning with the failure modes the paper observed,
// and metered billing with per-provider reporting lag.
package cloud

import (
	"fmt"
	"time"
)

// Provider identifies an infrastructure operator.
type Provider string

const (
	AWS    Provider = "aws"
	Azure  Provider = "azure"
	Google Provider = "google"
	OnPrem Provider = "onprem"
)

// Providers lists all providers in the study, in the paper's citation order.
var Providers = []Provider{AWS, Azure, Google, OnPrem}

// Accelerator distinguishes the two compute configurations of the study.
type Accelerator string

const (
	CPU Accelerator = "CPU"
	GPU Accelerator = "GPU"
)

// Fabric names a network interconnect. The concrete performance model for
// each fabric lives in package network; the catalog only records which
// fabric an instance type attaches to.
type Fabric string

const (
	EFAGen1       Fabric = "EFA Gen1"
	EFAGen15      Fabric = "EFA Gen1.5"
	InfiniBandHDR Fabric = "InfiniBand HDR"
	InfiniBandEDR Fabric = "InfiniBand EDR"
	OmniPath100   Fabric = "Omni-Path 100"
	GooglePremium Fabric = "Google Premium"
	GoogleTier1   Fabric = "Google Premium, Tier_1"
	GoogleStd     Fabric = "Google Standard"
)

// InstanceType describes a node SKU as in the paper's Table 2.
type InstanceType struct {
	Name      string // e.g. "Hpc6a", "HB96rs v3", "c2d-standard-112"
	Provider  Provider
	Processor string  // CPU model, and GPU model when GPUs > 0
	Cores     int     // physical cores per node
	ClockGHz  float64 // nominal frequency
	MemoryGB  int
	GPUs      int    // GPUs per node (0 for CPU SKUs)
	GPUModel  string // e.g. "V100 16GB"
	GPUMemGB  int
	Fabric    Fabric
	HourlyUSD float64 // per-instance cost including GPUs; 0 for on-prem
}

// String returns "provider/name".
func (it InstanceType) String() string { return fmt.Sprintf("%s/%s", it.Provider, it.Name) }

// Node is a provisioned instance.
type Node struct {
	ID       string
	Type     InstanceType
	Zone     string
	BootedAt time.Duration

	// Health defects observed in the study. A healthy node has none.
	VisibleGPUs  int  // usually Type.GPUs; Azure sometimes exposes 7/8
	VisibleCores int  // usually Type.Cores; the "supermarket fish" node saw 2
	ECCEnabled   bool // GPU error correction; Azure fleet was inconsistent
	Healthy      bool
}

// DefectiveGPU reports whether the node exposes fewer GPUs than its SKU.
func (n *Node) DefectiveGPU() bool { return n.Type.GPUs > 0 && n.VisibleGPUs < n.Type.GPUs }

// DefectiveCPU reports whether the node exposes fewer cores than its SKU.
func (n *Node) DefectiveCPU() bool { return n.VisibleCores < n.Type.Cores }

// Cluster is a provisioned set of nodes plus placement metadata.
type Cluster struct {
	Name      string
	Type      InstanceType
	Nodes     []*Node
	Placement PlacementResult
	CreatedAt time.Duration
	DeletedAt time.Duration // zero until Teardown
	torn      bool
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// TotalCores returns the sum of visible cores across nodes.
func (c *Cluster) TotalCores() int {
	sum := 0
	for _, n := range c.Nodes {
		sum += n.VisibleCores
	}
	return sum
}

// TotalGPUs returns the sum of visible GPUs across nodes.
func (c *Cluster) TotalGPUs() int {
	sum := 0
	for _, n := range c.Nodes {
		sum += n.VisibleGPUs
	}
	return sum
}

// HealthyNodes returns the nodes with no defects.
func (c *Cluster) HealthyNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.Healthy && !n.DefectiveGPU() && !n.DefectiveCPU() {
			out = append(out, n)
		}
	}
	return out
}
