package cloud

import (
	"math"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func TestChargeNodeHours(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "Hpc6a", Provider: AWS, HourlyUSD: 2.88}
	got := m.ChargeNodeHours("aws-pc-cpu", it, 32, 2*time.Hour, "run")
	want := 32 * 2 * 2.88
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("charge = %v, want %v", got, want)
	}
	if m.Spend(AWS) != got {
		t.Fatalf("Spend(AWS) = %v, want %v", m.Spend(AWS), got)
	}
}

func TestOnPremIsFree(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "dell", Provider: OnPrem, HourlyUSD: 0}
	if got := m.ChargeNodeHours("onprem-cpu", it, 256, 10*time.Hour, "run"); got != 0 {
		t.Fatalf("on-prem charge = %v, want 0", got)
	}
}

func TestReportingLagHidesRecentCharges(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "Hpc6a", Provider: AWS, HourlyUSD: 2.88}
	m.ChargeNodeHours("e", it, 10, time.Hour, "early")
	if m.ReportedSpend(AWS) != 0 {
		t.Fatalf("charge should be invisible inside the 24h lag")
	}
	if m.UnreportedSpend(AWS) != m.Spend(AWS) {
		t.Fatalf("everything should be unreported initially")
	}
	s.Clock.Advance(25 * time.Hour)
	if m.ReportedSpend(AWS) != m.Spend(AWS) {
		t.Fatalf("after the lag, reported should equal actual")
	}
}

func TestBudgetTracking(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	m.SetBudget(Azure, 49000)
	if m.OverBudget(Azure) {
		t.Fatalf("no spend yet")
	}
	it := InstanceType{Name: "ND40rs v2", Provider: Azure, HourlyUSD: 22.03}
	m.ChargeNodeHours("az", it, 32, 100*time.Hour, "big")
	if !m.OverBudget(Azure) {
		t.Fatalf("$%.0f should exceed $49k", m.Spend(Azure))
	}
	if m.OverBudget(Google) {
		t.Fatalf("unbudgeted provider is never over budget")
	}
}

func TestStatementSortedAscending(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	m.Charge(AWS, "expensive", 100, "x")
	m.Charge(AWS, "cheap", 1, "y")
	m.Charge(Azure, "middle", 50, "z")
	st := m.Statement()
	if len(st) != 3 {
		t.Fatalf("statement rows = %d, want 3", len(st))
	}
	for i := 1; i < len(st); i++ {
		if st[i].TotalUSD < st[i-1].TotalUSD {
			t.Fatalf("statement not ascending: %v", st)
		}
	}
}

func TestAutoscaleVsStaticCosts(t *testing.T) {
	t.Parallel()
	it := InstanceType{HourlyUSD: 3.0}
	// Infrequent bursts with long idle: autoscaling should win.
	bursty := []WorkloadPhase{
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
	}
	cfg := AutoscaleConfig{HeadNodes: 1, ScaleUpDelay: 10 * time.Minute, ScaleDownLag: 5 * time.Minute}
	if AutoscaleCost(it, cfg, bursty) >= StaticClusterCost(it, bursty) {
		t.Fatalf("autoscaling should beat a static cluster for bursty work")
	}
	// Back-to-back dense work: exact static clusters (the paper's advice
	// for well-defined experiments) beat the autoscaler's churn.
	dense := []WorkloadPhase{
		{Width: 64, Busy: 30 * time.Minute},
		{Width: 64, Busy: 30 * time.Minute},
		{Width: 64, Busy: 30 * time.Minute},
	}
	if ExactStaticCost(it, dense) >= AutoscaleCost(it, cfg, dense) {
		t.Fatalf("exact static clusters should beat autoscaling churn for dense plans")
	}
}

func TestExactStaticIgnoresIdle(t *testing.T) {
	t.Parallel()
	it := InstanceType{HourlyUSD: 2.0}
	plan := []WorkloadPhase{{Width: 10, Busy: time.Hour, Idle: 100 * time.Hour}}
	if got, want := ExactStaticCost(it, plan), 20.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExactStaticCost = %v, want %v", got, want)
	}
}

// TestChargeLedgerRoundTrip pins the persistent result store's meter
// serialization: a restored ledger reports identical spend — total,
// per-env, and lag-dependent — to the meter it was saved from.
func TestChargeLedgerRoundTrip(t *testing.T) {
	t.Parallel()
	s := sim.New(7)
	log := trace.NewLog()
	m := NewMeter(s, log)
	it, err := NewCatalog().Lookup(AWS, "Hpc6a")
	if err != nil {
		t.Fatal(err)
	}
	m.ChargeNodeHours("aws-eks-cpu", it, 32, 90*time.Minute, "cluster")
	s.Clock.Advance(30 * time.Hour)
	m.Charge(Google, "google-gke-cpu", 123.456789, "wasted bring-up")

	data, err := m.MarshalCharges()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := UnmarshalCharges(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Note != "cluster" || recs[1].AmountUSD != 123.456789 {
		t.Fatalf("decoded %+v", recs)
	}

	s2 := sim.New(7)
	s2.Clock.AdvanceTo(m.Now())
	log2 := trace.NewLog()
	m2 := NewMeter(s2, log2)
	m2.RestoreCharges(recs)
	for _, p := range []Provider{AWS, Google, Azure} {
		if m2.Spend(p) != m.Spend(p) {
			t.Fatalf("%s spend drifted: %v vs %v", p, m2.Spend(p), m.Spend(p))
		}
		if m2.ReportedSpend(p) != m.ReportedSpend(p) {
			t.Fatalf("%s reported spend drifted: %v vs %v", p, m2.ReportedSpend(p), m.ReportedSpend(p))
		}
	}
	got, want := m2.SpendByEnv(), m.SpendByEnv()
	if len(got) != len(want) || got["aws-eks-cpu"] != want["aws-eks-cpu"] {
		t.Fatalf("per-env spend drifted: %v vs %v", got, want)
	}
	if log2.Len() != 0 {
		t.Fatalf("RestoreCharges must not re-log billing events, logged %d", log2.Len())
	}
}
