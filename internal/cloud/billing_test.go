package cloud

import (
	"math"
	"testing"
	"time"

	"cloudhpc/internal/sim"
	"cloudhpc/internal/trace"
)

func TestChargeNodeHours(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "Hpc6a", Provider: AWS, HourlyUSD: 2.88}
	got := m.ChargeNodeHours("aws-pc-cpu", it, 32, 2*time.Hour, "run")
	want := 32 * 2 * 2.88
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("charge = %v, want %v", got, want)
	}
	if m.Spend(AWS) != got {
		t.Fatalf("Spend(AWS) = %v, want %v", m.Spend(AWS), got)
	}
}

func TestOnPremIsFree(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "dell", Provider: OnPrem, HourlyUSD: 0}
	if got := m.ChargeNodeHours("onprem-cpu", it, 256, 10*time.Hour, "run"); got != 0 {
		t.Fatalf("on-prem charge = %v, want 0", got)
	}
}

func TestReportingLagHidesRecentCharges(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	it := InstanceType{Name: "Hpc6a", Provider: AWS, HourlyUSD: 2.88}
	m.ChargeNodeHours("e", it, 10, time.Hour, "early")
	if m.ReportedSpend(AWS) != 0 {
		t.Fatalf("charge should be invisible inside the 24h lag")
	}
	if m.UnreportedSpend(AWS) != m.Spend(AWS) {
		t.Fatalf("everything should be unreported initially")
	}
	s.Clock.Advance(25 * time.Hour)
	if m.ReportedSpend(AWS) != m.Spend(AWS) {
		t.Fatalf("after the lag, reported should equal actual")
	}
}

func TestBudgetTracking(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	m.SetBudget(Azure, 49000)
	if m.OverBudget(Azure) {
		t.Fatalf("no spend yet")
	}
	it := InstanceType{Name: "ND40rs v2", Provider: Azure, HourlyUSD: 22.03}
	m.ChargeNodeHours("az", it, 32, 100*time.Hour, "big")
	if !m.OverBudget(Azure) {
		t.Fatalf("$%.0f should exceed $49k", m.Spend(Azure))
	}
	if m.OverBudget(Google) {
		t.Fatalf("unbudgeted provider is never over budget")
	}
}

func TestStatementSortedAscending(t *testing.T) {
	t.Parallel()
	s := sim.New(1)
	m := NewMeter(s, trace.NewLog())
	m.Charge(AWS, "expensive", 100, "x")
	m.Charge(AWS, "cheap", 1, "y")
	m.Charge(Azure, "middle", 50, "z")
	st := m.Statement()
	if len(st) != 3 {
		t.Fatalf("statement rows = %d, want 3", len(st))
	}
	for i := 1; i < len(st); i++ {
		if st[i].TotalUSD < st[i-1].TotalUSD {
			t.Fatalf("statement not ascending: %v", st)
		}
	}
}

func TestAutoscaleVsStaticCosts(t *testing.T) {
	t.Parallel()
	it := InstanceType{HourlyUSD: 3.0}
	// Infrequent bursts with long idle: autoscaling should win.
	bursty := []WorkloadPhase{
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
		{Width: 64, Busy: time.Hour, Idle: 10 * time.Hour},
	}
	cfg := AutoscaleConfig{HeadNodes: 1, ScaleUpDelay: 10 * time.Minute, ScaleDownLag: 5 * time.Minute}
	if AutoscaleCost(it, cfg, bursty) >= StaticClusterCost(it, bursty) {
		t.Fatalf("autoscaling should beat a static cluster for bursty work")
	}
	// Back-to-back dense work: exact static clusters (the paper's advice
	// for well-defined experiments) beat the autoscaler's churn.
	dense := []WorkloadPhase{
		{Width: 64, Busy: 30 * time.Minute},
		{Width: 64, Busy: 30 * time.Minute},
		{Width: 64, Busy: 30 * time.Minute},
	}
	if ExactStaticCost(it, dense) >= AutoscaleCost(it, cfg, dense) {
		t.Fatalf("exact static clusters should beat autoscaling churn for dense plans")
	}
}

func TestExactStaticIgnoresIdle(t *testing.T) {
	t.Parallel()
	it := InstanceType{HourlyUSD: 2.0}
	plan := []WorkloadPhase{{Width: 10, Busy: time.Hour, Idle: 100 * time.Hour}}
	if got, want := ExactStaticCost(it, plan), 20.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExactStaticCost = %v, want %v", got, want)
	}
}
